// Experiment F2 [reconstructed]: vectorization speedup of the B-spline MI
// kernel — the paper's central single-thread optimization claim (scalar vs
// 512-bit VPU formulation on the Phi; scalar vs AVX here).
//
// Two outputs:
//   1. a paper-style table (kernel variant x sample count -> pairs/s and
//      speedup over scalar),
//   2. google-benchmark microbenchmarks for kernel-grade timing.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mi/bspline_mi.h"
#include "preprocess/rank_transform.h"

namespace {

using namespace tinge;

constexpr int kBins = 10;
constexpr int kOrder = 3;

double measure_pairs_per_second(const BsplineMi& estimator,
                                const RankedMatrix& ranks, MiKernel kernel,
                                double budget_seconds = 0.3) {
  JointHistogram scratch = estimator.make_scratch();
  const std::size_t n = ranks.n_genes();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  while (watch.seconds() < budget_seconds) {
    for (std::size_t i = 0; i + 1 < n && watch.seconds() < budget_seconds;
         ++i) {
      sink += estimator.mi(ranks.ranks(i), ranks.ranks(i + 1), scratch, kernel);
      ++pairs;
    }
  }
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(pairs) / watch.seconds();
}

void summary_table(bench::BenchJson& out) {
  bench::print_header(
      "F2: MI kernel vectorization speedup (single thread)",
      "pairs/s per kernel variant; speedup relative to the scalar kernel. "
      "b=10, k=3 (TINGe defaults).");

  const std::vector<std::size_t> sample_counts{256, 1024, 3137};
  std::vector<MiKernel> kernels{MiKernel::Scalar, MiKernel::Unrolled,
                                MiKernel::Simd, MiKernel::Replicated};
  if (gather512_available()) kernels.push_back(MiKernel::Gather512);

  Table table({"m (samples)", "kernel", "pairs/s", "Mcells/s", "speedup"});
  for (const std::size_t m : sample_counts) {
    const bench::RandomRanks data(64, m);
    const BsplineMi estimator(kBins, kOrder, m);

    // Ablation baseline: no shared weight table at all — per-pair B-spline
    // basis evaluation (the pre-rank-transform formulation).
    {
      std::vector<std::vector<float>> unit(64, std::vector<float>(m));
      for (std::size_t g = 0; g < 64; ++g)
        for (std::size_t s = 0; s < m; ++s)
          unit[g][s] = rank_to_unit(
              static_cast<float>(data.ranked().ranks(g)[s]), m);
      Stopwatch watch;
      std::size_t pairs = 0;
      double sink = 0.0;
      while (watch.seconds() < 0.3) {
        for (std::size_t i = 0; i + 1 < 64 && watch.seconds() < 0.3; ++i) {
          sink += bspline_mi_direct(unit[i], unit[i + 1], kBins, kOrder);
          ++pairs;
        }
      }
      if (sink == 7e77) std::printf("?");
      const double rate = static_cast<double>(pairs) / watch.seconds();
      table.add_row({std::to_string(m), "no-table (direct)",
                     bench::rate_str(rate),
                     strprintf("%.1f", rate * static_cast<double>(m) / 1e6),
                     "-"});
    }

    double scalar_rate = 0.0;
    for (const MiKernel kernel : kernels) {
      const double rate =
          measure_pairs_per_second(estimator, data.ranked(), kernel);
      if (kernel == MiKernel::Scalar) scalar_rate = rate;
      table.add_row({std::to_string(m), kernel_name(kernel),
                     bench::rate_str(rate),
                     strprintf("%.1f", rate * static_cast<double>(m) / 1e6),
                     strprintf("%.2fx", rate / scalar_rate)});
      obs::Json json = obs::Json::object();
      json["table"] = obs::Json(std::string("kernel_ladder"));
      json["samples"] = obs::Json(m);
      json["kernel"] = obs::Json(std::string(kernel_name(kernel)));
      json["pairs_per_second"] = obs::Json(rate);
      json["speedup_vs_scalar"] = obs::Json(rate / scalar_rate);
      out.add_row(std::move(json));
    }
  }
  table.print();
  std::printf(
      "\nPaper shape to compare: the vectorized kernel wins by a large\n"
      "integer factor that grows with m (the accumulation loop dominates).\n\n");
}

// ---- panel (row-reuse) vs per-pair -----------------------------------------

double measure_panel_pairs_per_second(const BsplineMi& estimator,
                                      const RankedMatrix& ranks,
                                      MiKernel kernel, std::size_t width,
                                      double budget_seconds = 0.3) {
  JointHistogram scratch = estimator.make_scratch();
  const std::size_t n = ranks.n_genes();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  double mi[kMaxPanelWidth];
  const std::uint32_t* ry[kMaxPanelWidth];
  while (watch.seconds() < budget_seconds) {
    for (std::size_t i = 0; i + width < n && watch.seconds() < budget_seconds;
         i += width) {
      for (std::size_t p = 0; p < width; ++p)
        ry[p] = ranks.ranks(i + 1 + p).data();
      estimator.mi_panel(ranks.ranks(i), ry, width, scratch, kernel, mi);
      for (std::size_t p = 0; p < width; ++p) sink += mi[p];
      pairs += width;
    }
  }
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(pairs) / watch.seconds();
}

void panel_table() {
  bench::print_header(
      "Panel blocking: row-reuse MI sweep vs per-pair kernels",
      "pairs/s for the panel path (one row gene amortized over B column "
      "genes) against the best per-pair kernel. b=10, k=3.");

  const std::vector<std::size_t> sample_counts{256, 1024, 2048, 3137};
  std::vector<MiKernel> pair_kernels{MiKernel::Scalar, MiKernel::Simd,
                                     MiKernel::Replicated};
  if (gather512_available()) pair_kernels.push_back(MiKernel::Gather512);
  std::vector<MiKernel> panel_kernels{MiKernel::Simd};
  if (gather512_available()) panel_kernels.push_back(MiKernel::Gather512);

  Table table({"m (samples)", "path", "B", "pairs/s", "speedup vs best pair"});
  for (const std::size_t m : sample_counts) {
    const bench::RandomRanks data(64, m);
    const BsplineMi estimator(kBins, kOrder, m);

    double best_pair = 0.0;
    const char* best_pair_name = "?";
    for (const MiKernel kernel : pair_kernels) {
      const double rate =
          measure_pairs_per_second(estimator, data.ranked(), kernel);
      if (rate > best_pair) {
        best_pair = rate;
        best_pair_name = kernel_name(kernel);
      }
    }
    table.add_row({std::to_string(m),
                   strprintf("pair/%s (best)", best_pair_name), "1",
                   bench::rate_str(best_pair), "1.00x"});

    for (const MiKernel kernel : panel_kernels) {
      for (const std::size_t width : {std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
        const double rate = measure_panel_pairs_per_second(
            estimator, data.ranked(), kernel, width);
        table.add_row({std::to_string(m),
                       strprintf("panel/%s", kernel_name(kernel)),
                       std::to_string(width), bench::rate_str(rate),
                       strprintf("%.2fx", rate / best_pair)});
      }
    }
    const int auto_width = auto_panel_width(estimator.table());
    const double auto_rate = measure_panel_pairs_per_second(
        estimator, data.ranked(), MiKernel::Auto,
        static_cast<std::size_t>(auto_width));
    table.add_row({std::to_string(m), "panel/auto",
                   std::to_string(auto_width), bench::rate_str(auto_rate),
                   strprintf("%.2fx", auto_rate / best_pair)});
  }
  table.print();
  std::printf(
      "\nThe panel path amortizes the row gene's offset/weight lookups over\n"
      "B histograms and needs no replica merge; the engine uses it for all\n"
      "tile sweeps. Target: >= 1.3x over the best per-pair kernel at m >=\n"
      "2048.\n\n");
}

// ---- memory-side panel knobs (F2c) -----------------------------------------

// Measures the FMA panel with an explicit PanelOptions policy over rank rows
// served by `row` (uint32 or uint16 — deduced).
template <typename RowFn>
double measure_panel_options(const BsplineMi& estimator, std::size_t n,
                             RowFn row, const PanelOptions& options,
                             std::size_t width, double budget_seconds = 0.3) {
  JointHistogram scratch = estimator.make_scratch();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  double mi[kMaxPanelWidth];
  using RankPtr = decltype(row(std::size_t{0}));
  RankPtr ry[kMaxPanelWidth];
  while (watch.seconds() < budget_seconds) {
    for (std::size_t i = 0; i + width < n && watch.seconds() < budget_seconds;
         i += width) {
      for (std::size_t p = 0; p < width; ++p) ry[p] = row(i + 1 + p);
      estimator.mi_panel(row(i), ry, width, scratch, options, mi);
      for (std::size_t p = 0; p < width; ++p) sink += mi[p];
      pairs += width;
    }
  }
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(pairs) / watch.seconds();
}

// One row per memory-side knob against the panel-FMA baseline (all knobs
// off, uint32 ranks). Every variant computes bit-identical MI values — the
// knobs change where bytes come from, not which floats are multiplied.
void panel_knob_table(bench::BenchJson& out) {
  bench::print_header(
      "F2c: panel-FMA memory-side knobs (single thread)",
      "pairs/s of the B=8 FMA panel with each knob alone, then all "
      "together; speedup vs the all-off baseline. b=10, k=3.");

  const std::vector<std::size_t> sample_counts{2048, 3137};
  constexpr std::size_t kWidth = 8;
  constexpr std::size_t kGenes = 64;

  struct Variant {
    const char* name;
    bool u16;
    PanelOptions options;
  };
  const PanelOptions base{MiKernel::Simd, /*prefetch=*/false,
                          /*packed=*/false};
  const std::vector<Variant> variants{
      {"baseline (u32, all off)", false, base},
      {"+uint16 rank staging", true, base},
      {"+packed weight table", false,
       PanelOptions{MiKernel::Simd, false, true}},
      {"+software prefetch", false, PanelOptions{MiKernel::Simd, true, false}},
      {"all on", true, PanelOptions{MiKernel::Simd, true, true}},
  };

  Table table({"m (samples)", "variant", "pairs/s", "speedup"});
  for (const std::size_t m : sample_counts) {
    const bench::RandomRanks data(kGenes, m);
    const BsplineMi estimator(kBins, kOrder, m);
    const StagedRankMatrix staged(data.ranked());
    const auto row32 = [&](std::size_t g) {
      return data.ranked().ranks(g).data();
    };
    const auto row16 = [&](std::size_t g) { return staged.row(g); };

    double baseline_rate = 0.0;
    for (const Variant& variant : variants) {
      const double rate =
          variant.u16 ? measure_panel_options(estimator, kGenes, row16,
                                              variant.options, kWidth)
                      : measure_panel_options(estimator, kGenes, row32,
                                              variant.options, kWidth);
      if (baseline_rate == 0.0) baseline_rate = rate;
      table.add_row({std::to_string(m), variant.name, bench::rate_str(rate),
                     strprintf("%.2fx", rate / baseline_rate)});
      obs::Json json = obs::Json::object();
      json["table"] = obs::Json(std::string("panel_knobs"));
      json["samples"] = obs::Json(m);
      json["variant"] = obs::Json(std::string(variant.name));
      json["pairs_per_second"] = obs::Json(rate);
      json["speedup_vs_baseline"] = obs::Json(rate / baseline_rate);
      out.add_row(std::move(json));
    }
  }
  table.print();
  std::printf(
      "\nAll rows are bit-identical in output; the deltas are pure memory-\n"
      "system effects (rank-stream bytes, table-row loads, miss latency).\n\n");
}

// ---- google-benchmark microbenchmarks --------------------------------------

void BM_JointEntropy(benchmark::State& state) {
  const auto kernel = static_cast<MiKernel>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const bench::RandomRanks data(8, m);
  const BsplineMi estimator(kBins, kOrder, m);
  JointHistogram scratch = estimator.make_scratch();
  std::size_t i = 0;
  for (auto _ : state) {
    const double h = estimator.joint_entropy(data.ranked().ranks(i % 8),
                                             data.ranked().ranks((i + 1) % 8),
                                             scratch, kernel);
    benchmark::DoNotOptimize(h);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
  state.SetLabel(kernel_name(kernel));
}

void BM_JointEntropyPanel(benchmark::State& state) {
  const auto kernel = static_cast<MiKernel>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto width = static_cast<std::size_t>(state.range(2));
  const bench::RandomRanks data(16, m);
  const BsplineMi estimator(kBins, kOrder, m);
  JointHistogram scratch = estimator.make_scratch();
  double mi[kMaxPanelWidth];
  const std::uint32_t* ry[kMaxPanelWidth];
  std::size_t i = 0;
  for (auto _ : state) {
    for (std::size_t p = 0; p < width; ++p)
      ry[p] = data.ranked().ranks((i + 1 + p) % 16).data();
    estimator.mi_panel(data.ranked().ranks(i % 16), ry, width, scratch,
                       kernel, mi);
    benchmark::DoNotOptimize(mi[0]);
    i += width;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width) *
                          static_cast<std::int64_t>(m));
  state.SetLabel(strprintf("%s B=%zu", kernel_name(kernel), width));
}

void register_benchmarks() {
  std::vector<MiKernel> kernels{MiKernel::Scalar, MiKernel::Unrolled,
                                MiKernel::Simd, MiKernel::Replicated};
  if (gather512_available()) kernels.push_back(MiKernel::Gather512);
  for (const MiKernel kernel : kernels) {
    for (const std::int64_t m : {256, 1024, 3137}) {
      benchmark::RegisterBenchmark(
          strprintf("BM_JointEntropy/%s/m=%lld", kernel_name(kernel),
                    static_cast<long long>(m))
              .c_str(),
          BM_JointEntropy)
          ->Args({static_cast<std::int64_t>(kernel), m});
    }
  }
  std::vector<MiKernel> panel_kernels{MiKernel::Simd};
  if (gather512_available()) panel_kernels.push_back(MiKernel::Gather512);
  for (const MiKernel kernel : panel_kernels) {
    for (const std::int64_t m : {1024, 3137}) {
      for (const std::int64_t width : {4, 8}) {
        benchmark::RegisterBenchmark(
            strprintf("BM_JointEntropyPanel/%s/m=%lld/B=%lld",
                      kernel_name(kernel), static_cast<long long>(m),
                      static_cast<long long>(width))
                .c_str(),
            BM_JointEntropyPanel)
            ->Args({static_cast<std::int64_t>(kernel), m, width});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson out("mi_kernels");
  summary_table(out);
  panel_table();
  panel_knob_table(out);
  std::printf("wrote %s\n", out.write().c_str());
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
