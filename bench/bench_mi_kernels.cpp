// Experiment F2 [reconstructed]: vectorization speedup of the B-spline MI
// kernel — the paper's central single-thread optimization claim (scalar vs
// 512-bit VPU formulation on the Phi; scalar vs AVX here).
//
// Two outputs:
//   1. a paper-style table (kernel variant x sample count -> pairs/s and
//      speedup over scalar),
//   2. google-benchmark microbenchmarks for kernel-grade timing.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mi/bspline_mi.h"
#include "preprocess/rank_transform.h"

namespace {

using namespace tinge;

constexpr int kBins = 10;
constexpr int kOrder = 3;

double measure_pairs_per_second(const BsplineMi& estimator,
                                const RankedMatrix& ranks, MiKernel kernel,
                                double budget_seconds = 0.3) {
  JointHistogram scratch = estimator.make_scratch();
  const std::size_t n = ranks.n_genes();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  while (watch.seconds() < budget_seconds) {
    for (std::size_t i = 0; i + 1 < n && watch.seconds() < budget_seconds;
         ++i) {
      sink += estimator.mi(ranks.ranks(i), ranks.ranks(i + 1), scratch, kernel);
      ++pairs;
    }
  }
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(pairs) / watch.seconds();
}

void summary_table() {
  bench::print_header(
      "F2: MI kernel vectorization speedup (single thread)",
      "pairs/s per kernel variant; speedup relative to the scalar kernel. "
      "b=10, k=3 (TINGe defaults).");

  const std::vector<std::size_t> sample_counts{256, 1024, 3137};
  std::vector<MiKernel> kernels{MiKernel::Scalar, MiKernel::Unrolled,
                                MiKernel::Simd, MiKernel::Replicated};
  if (gather512_available()) kernels.push_back(MiKernel::Gather512);

  Table table({"m (samples)", "kernel", "pairs/s", "Mcells/s", "speedup"});
  for (const std::size_t m : sample_counts) {
    const bench::RandomRanks data(64, m);
    const BsplineMi estimator(kBins, kOrder, m);

    // Ablation baseline: no shared weight table at all — per-pair B-spline
    // basis evaluation (the pre-rank-transform formulation).
    {
      std::vector<std::vector<float>> unit(64, std::vector<float>(m));
      for (std::size_t g = 0; g < 64; ++g)
        for (std::size_t s = 0; s < m; ++s)
          unit[g][s] = rank_to_unit(
              static_cast<float>(data.ranked().ranks(g)[s]), m);
      Stopwatch watch;
      std::size_t pairs = 0;
      double sink = 0.0;
      while (watch.seconds() < 0.3) {
        for (std::size_t i = 0; i + 1 < 64 && watch.seconds() < 0.3; ++i) {
          sink += bspline_mi_direct(unit[i], unit[i + 1], kBins, kOrder);
          ++pairs;
        }
      }
      if (sink == 7e77) std::printf("?");
      const double rate = static_cast<double>(pairs) / watch.seconds();
      table.add_row({std::to_string(m), "no-table (direct)",
                     bench::rate_str(rate),
                     strprintf("%.1f", rate * static_cast<double>(m) / 1e6),
                     "-"});
    }

    double scalar_rate = 0.0;
    for (const MiKernel kernel : kernels) {
      const double rate =
          measure_pairs_per_second(estimator, data.ranked(), kernel);
      if (kernel == MiKernel::Scalar) scalar_rate = rate;
      table.add_row({std::to_string(m), kernel_name(kernel),
                     bench::rate_str(rate),
                     strprintf("%.1f", rate * static_cast<double>(m) / 1e6),
                     strprintf("%.2fx", rate / scalar_rate)});
    }
  }
  table.print();
  std::printf(
      "\nPaper shape to compare: the vectorized kernel wins by a large\n"
      "integer factor that grows with m (the accumulation loop dominates).\n\n");
}

// ---- google-benchmark microbenchmarks --------------------------------------

void BM_JointEntropy(benchmark::State& state) {
  const auto kernel = static_cast<MiKernel>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const bench::RandomRanks data(8, m);
  const BsplineMi estimator(kBins, kOrder, m);
  JointHistogram scratch = estimator.make_scratch();
  std::size_t i = 0;
  for (auto _ : state) {
    const double h = estimator.joint_entropy(data.ranked().ranks(i % 8),
                                             data.ranked().ranks((i + 1) % 8),
                                             scratch, kernel);
    benchmark::DoNotOptimize(h);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
  state.SetLabel(kernel_name(kernel));
}

void register_benchmarks() {
  std::vector<MiKernel> kernels{MiKernel::Scalar, MiKernel::Unrolled,
                                MiKernel::Simd, MiKernel::Replicated};
  if (gather512_available()) kernels.push_back(MiKernel::Gather512);
  for (const MiKernel kernel : kernels) {
    for (const std::int64_t m : {256, 1024, 3137}) {
      benchmark::RegisterBenchmark(
          strprintf("BM_JointEntropy/%s/m=%lld", kernel_name(kernel),
                    static_cast<long long>(m))
              .c_str(),
          BM_JointEntropy)
          ->Args({static_cast<std::int64_t>(kernel), m});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  summary_table();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
