// Experiment T2 [reconstructed]: Xeon vs Xeon Phi comparison.
//
// The physical machines are gone; per DESIGN.md §2 this harness (1) measures
// the real single-thread kernel throughput on this host, (2) calibrates the
// analytic device model with it, and (3) prints the paper-style comparison
// for the published specs of the two machines in the paper's evaluation,
// including the headline Arabidopsis-scale prediction.
//
// Section 2 closes the loop on this host: the heterogeneous lane scheduler
// (DESIGN.md §6i) runs the engine with --hetero=auto and reports the model's
// *predicted* lane partition next to the *measured* one reconstructed from
// live per-tile timings — pass 1 predicts from the static efficiency
// constant, pass 2 from pass 1's observations, so the second row pair shows
// how far one pass of live calibration closes the gap.
#include "bench_common.h"
#include "device/offload.h"
#include "device/perf_model.h"
#include "mi/bspline_mi.h"
#include "util/args.h"

using namespace tinge;

namespace {

double measure_single_thread_gflops(std::size_t m) {
  const bench::RandomRanks data(64, m);
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  while (watch.seconds() < 0.5) {
    for (std::size_t i = 0; i + 1 < 64; ++i) {
      sink += estimator.mi(data.ranked().ranks(i), data.ranked().ranks(i + 1),
                           scratch);
      ++pairs;
    }
  }
  const double seconds = watch.seconds();
  if (sink == 12345.0) std::printf("?");  // keep the sum alive
  const MiWorkload per_pair{1, m, 3, 10};
  return static_cast<double>(pairs) * per_pair.flops() / seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes for the comparison workload", "15575");
  args.add("samples", "experiments per gene", "3137");
  args.add("lane-genes", "genes for the live lane-calibration run", "512");
  args.add("lane-samples", "samples for the live lane-calibration run", "200");
  args.add("json", "write BENCH_device.json", "1");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  bench::print_header(
      "T2: Xeon vs Xeon Phi comparison (calibrated device model)",
      strprintf("workload: all-pairs MI, %zu genes x %zu samples", n, m));

  bench::BenchJson json("device");

  const DeviceSpec host = host_device();
  const double measured = measure_single_thread_gflops(m);
  const PerfModel model(host, measured);
  std::printf("measured single-thread kernel rate: %.2f GFLOP/s\n", measured);
  std::printf("host single-thread peak:            %.2f GFLOP/s\n",
              host.core_sp_gflops(1));
  std::printf("calibrated kernel efficiency:       %.1f%% of peak\n\n",
              100.0 * model.efficiency());

  const MiWorkload workload = MiWorkload::all_pairs(n, m, 3, 10);
  const DeviceSpec xeon = dual_xeon_e5_2670();
  const DeviceSpec phi = xeon_phi_5110p();

  Table table({"device", "threads", "peak GF/s", "model GF/s",
               "predicted time"});
  const auto add_device = [&](const DeviceSpec& spec, int threads) {
    table.add_row({spec.name, std::to_string(threads),
                   strprintf("%.0f", spec.peak_sp_gflops()),
                   strprintf("%.0f", model.device_gflops(spec, threads)),
                   format_duration(
                       model.predict_seconds(spec, workload, threads))});
    obs::Json row = obs::Json::object();
    row["section"] = obs::Json(std::string("modeled"));
    row["device"] = obs::Json(spec.name);
    row["threads"] = obs::Json(threads);
    row["peak_gflops"] = obs::Json(spec.peak_sp_gflops());
    row["model_gflops"] = obs::Json(model.device_gflops(spec, threads));
    row["predicted_seconds"] =
        obs::Json(model.predict_seconds(spec, workload, threads));
    json.add_row(std::move(row));
  };
  add_device(xeon, 16);
  add_device(xeon, 32);
  add_device(phi, 60);
  add_device(phi, 120);
  add_device(phi, 240);
  const DeviceSpec knl = xeon_phi_7250_knl();
  add_device(knl, 272);
  table.print();

  const double t_xeon = model.predict_seconds(xeon, workload, 32);
  const double t_phi = model.predict_seconds(phi, workload, 240);
  std::printf("\nPhi vs 2xXeon speedup (modeled): %.2fx\n", t_xeon / t_phi);

  const OffloadPlan plan = plan_offload(model, xeon, 32, phi, workload);
  std::printf(
      "heterogeneous split: %.0f%% host / %.0f%% coprocessor -> %s "
      "(%.2fx vs host alone)\n",
      100.0 * plan.host_fraction, 100.0 * plan.device_fraction,
      format_duration(plan.combined_seconds).c_str(), plan.speedup_vs_host);

  // ---- section 2: live lane partition, predicted vs measured ---------------
  const auto lane_genes =
      static_cast<std::size_t>(args.get_int("lane-genes"));
  const auto lane_samples =
      static_cast<std::size_t>(args.get_int("lane-samples"));
  const int lane_threads =
      std::max(2, std::min(par::ThreadPool::global().max_threads(), 8));

  std::printf(
      "\nlive lane calibration: %zu genes x %zu samples, --hetero=auto, "
      "%d threads\n",
      lane_genes, lane_samples, lane_threads);

  bench::EngineFixture fixture(lane_genes, lane_samples);
  par::ThreadPool pool(lane_threads);
  TingeConfig config = bench::engine_config(lane_threads, /*tile_size=*/32);
  config.hetero = "auto";

  Table lanes({"pass", "lane", "predicted", "measured", "GF/s per thread"});
  const auto run_pass = [&](const char* pass) {
    EngineStats stats;
    fixture.engine().compute_network(/*threshold=*/10.0, config, pool, &stats);
    for (const EngineStats::LaneStats& lane : stats.lanes) {
      lanes.add_row({pass, lane.label,
                     strprintf("%.1f%%", 100.0 * lane.predicted_fraction),
                     strprintf("%.1f%%", 100.0 * lane.measured_fraction),
                     strprintf("%.2f", lane.observed_gflops)});
      obs::Json row = obs::Json::object();
      row["section"] = obs::Json(std::string("live_lanes"));
      row["pass"] = obs::Json(std::string(pass));
      row["lane"] = obs::Json(lane.label);
      row["kernel"] = obs::Json(std::string(lane.kernel));
      row["threads"] = obs::Json(lane.threads);
      row["predicted_fraction"] = obs::Json(lane.predicted_fraction);
      row["measured_fraction"] = obs::Json(lane.measured_fraction);
      row["tiles"] = obs::Json(lane.tiles);
      row["busy_seconds"] = obs::Json(lane.busy_seconds);
      row["observed_gflops"] = obs::Json(lane.observed_gflops);
      json.add_row(std::move(row));
    }
  };
  // Pass 1 seeds from the static efficiency assumption; the engine keeps
  // the perf model across passes, so pass 2's prediction comes from the
  // per-tile rates pass 1 observed.
  run_pass("assumed");
  run_pass("calibrated");
  lanes.print();

  std::printf(
      "\nPaper shape to compare: the Phi beats the dual Xeon by ~2-3x on\n"
      "this kernel; the paper's absolute 22-minute figure also contains\n"
      "per-pair significance work and lower achieved efficiency — see\n"
      "EXPERIMENTS.md for the reconciliation.\n");

  if (args.get_int("json") != 0)
    std::printf("json: %s\n", json.write().c_str());
  return 0;
}
