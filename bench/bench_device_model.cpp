// Experiment T2 [reconstructed]: Xeon vs Xeon Phi comparison.
//
// The physical machines are gone; per DESIGN.md §2 this harness (1) measures
// the real single-thread kernel throughput on this host, (2) calibrates the
// analytic device model with it, and (3) prints the paper-style comparison
// for the published specs of the two machines in the paper's evaluation,
// including the headline Arabidopsis-scale prediction.
#include "bench_common.h"
#include "device/offload.h"
#include "device/perf_model.h"
#include "mi/bspline_mi.h"
#include "util/args.h"

using namespace tinge;

namespace {

double measure_single_thread_gflops(std::size_t m) {
  const bench::RandomRanks data(64, m);
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  while (watch.seconds() < 0.5) {
    for (std::size_t i = 0; i + 1 < 64; ++i) {
      sink += estimator.mi(data.ranked().ranks(i), data.ranked().ranks(i + 1),
                           scratch);
      ++pairs;
    }
  }
  const double seconds = watch.seconds();
  if (sink == 12345.0) std::printf("?");  // keep the sum alive
  const MiWorkload per_pair{1, m, 3, 10};
  return static_cast<double>(pairs) * per_pair.flops() / seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes for the comparison workload", "15575");
  args.add("samples", "experiments per gene", "3137");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  bench::print_header(
      "T2: Xeon vs Xeon Phi comparison (calibrated device model)",
      strprintf("workload: all-pairs MI, %zu genes x %zu samples", n, m));

  const DeviceSpec host = host_device();
  const double measured = measure_single_thread_gflops(m);
  const PerfModel model(host, measured);
  std::printf("measured single-thread kernel rate: %.2f GFLOP/s\n", measured);
  std::printf("host single-thread peak:            %.2f GFLOP/s\n",
              host.core_sp_gflops(1));
  std::printf("calibrated kernel efficiency:       %.1f%% of peak\n\n",
              100.0 * model.efficiency());

  const MiWorkload workload = MiWorkload::all_pairs(n, m, 3, 10);
  const DeviceSpec xeon = dual_xeon_e5_2670();
  const DeviceSpec phi = xeon_phi_5110p();

  Table table({"device", "threads", "peak GF/s", "model GF/s",
               "predicted time"});
  const auto add_device = [&](const DeviceSpec& spec, int threads) {
    table.add_row({spec.name, std::to_string(threads),
                   strprintf("%.0f", spec.peak_sp_gflops()),
                   strprintf("%.0f", model.device_gflops(spec, threads)),
                   format_duration(
                       model.predict_seconds(spec, workload, threads))});
  };
  add_device(xeon, 16);
  add_device(xeon, 32);
  add_device(phi, 60);
  add_device(phi, 120);
  add_device(phi, 240);
  const DeviceSpec knl = xeon_phi_7250_knl();
  add_device(knl, 272);
  table.print();

  const double t_xeon = model.predict_seconds(xeon, workload, 32);
  const double t_phi = model.predict_seconds(phi, workload, 240);
  std::printf("\nPhi vs 2xXeon speedup (modeled): %.2fx\n", t_xeon / t_phi);

  const OffloadPlan plan = plan_offload(model, xeon, 32, phi, workload);
  std::printf(
      "heterogeneous split: %.0f%% host / %.0f%% coprocessor -> %s "
      "(%.2fx vs host alone)\n",
      100.0 * plan.host_fraction, 100.0 * plan.device_fraction,
      format_duration(plan.combined_seconds).c_str(), plan.speedup_vs_host);

  std::printf(
      "\nPaper shape to compare: the Phi beats the dual Xeon by ~2-3x on\n"
      "this kernel; the paper's absolute 22-minute figure also contains\n"
      "per-pair significance work and lower achieved efficiency — see\n"
      "EXPERIMENTS.md for the reconciliation.\n");
  return 0;
}
