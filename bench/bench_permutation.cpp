// Experiment T3 [reconstructed]: the cost of significance testing —
// TINGe's universal permutation null vs the naive per-pair permutation test.
//
// The universal null costs q MI evaluations TOTAL; the naive scheme costs
// q MI evaluations PER PAIR. This table shows the measured cost of both at
// small n and the extrapolated cost at whole-genome scale, plus the
// statistical agreement between the two thresholds.
#include "bench_common.h"
#include "core/null_distribution.h"
#include "core/permutation_test.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes for the measured comparison", "48");
  args.add("samples", "experiments per gene", "512");
  args.add("permutations", "q draws per test", "500");
  args.add("alpha", "significance level", "0.01");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  const auto q = static_cast<std::size_t>(args.get_int("permutations"));
  const double alpha = args.get_double("alpha");

  bench::print_header(
      "T3: universal null vs per-pair permutation testing",
      strprintf("%zu genes x %zu samples, q=%zu, alpha=%g", n, m, q, alpha));

  const bench::RandomRanks data(n, m);
  const BsplineMi estimator(10, 3, m);
  par::ThreadPool pool(par::detect_host_topology().total_threads());

  // Universal null: q draws once.
  Stopwatch universal_watch;
  const EmpiricalDistribution null =
      build_null_distribution(estimator, q, 42, pool, 0);
  const double universal_seconds = universal_watch.seconds();
  const double threshold = threshold_for_alpha(null, alpha);

  // Naive per-pair testing over all pairs.
  Stopwatch naive_watch;
  JointHistogram scratch = estimator.make_scratch();
  std::size_t pairs = 0, naive_significant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto result = pair_permutation_test(
          estimator, data.ranked().ranks(i), data.ranked().ranks(j), q,
          1000 + pairs, scratch);
      if (result.p_value <= alpha) ++naive_significant;
      ++pairs;
    }
  }
  const double naive_seconds = naive_watch.seconds();

  // Universal-threshold decisions on the same pairs.
  std::size_t universal_significant = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (estimator.mi(data.ranked().ranks(i), data.ranked().ranks(j),
                       scratch) >= threshold)
        ++universal_significant;

  Table table({"scheme", "MI evals", "seconds", "per pair", "flagged pairs"});
  table.add_row({"universal null (TINGe)", std::to_string(q),
                 strprintf("%.3f", universal_seconds),
                 strprintf("%.2f us", 0.0), std::to_string(universal_significant)});
  table.add_row({"per-pair permutation", std::to_string((q + 1) * pairs),
                 strprintf("%.3f", naive_seconds),
                 strprintf("%.0f us", naive_seconds / static_cast<double>(pairs) * 1e6),
                 std::to_string(naive_significant)});
  table.print();

  std::printf("\nthreshold I_alpha = %.5f nats; measured cost ratio %.0fx\n",
              threshold, naive_seconds / universal_seconds);

  // Extrapolation to the headline scale.
  const double genome_pairs = 15575.0 * 15574.0 / 2.0;
  const double per_pair_test = naive_seconds / static_cast<double>(pairs);
  std::printf(
      "extrapolated to 15,575 genes: universal null stays %s; per-pair\n"
      "testing would add %s of pure permutation work on one host thread.\n",
      format_duration(universal_seconds).c_str(),
      format_duration(per_pair_test * genome_pairs).c_str());

  // Null-distribution summary (the statistical content of the stage).
  Table null_table({"quantile", "MI (nats)"});
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    null_table.add_row({strprintf("%.3f", p),
                        strprintf("%.5f", null.quantile(p))});
  }
  null_table.add_row({"max", strprintf("%.5f", null.max())});
  std::printf("\nuniversal null distribution (q=%zu draws):\n", q);
  null_table.print();

  // Threshold vs m: the plug-in null scale shrinks like 1/m, so larger
  // compendia admit weaker interactions at the same alpha — the statistical
  // argument for assembling thousands of arrays in the first place.
  std::printf("\nthreshold I_alpha(%.2g) vs number of experiments m:\n", alpha);
  Table m_table({"m", "I_alpha (nats)", "m * I_alpha"});
  for (const std::size_t m_sweep : {128u, 256u, 512u, 1024u, 2048u}) {
    const BsplineMi sweep_estimator(10, 3, m_sweep);
    const EmpiricalDistribution sweep_null =
        build_null_distribution(sweep_estimator, q, 42, pool, 0);
    const double sweep_threshold = threshold_for_alpha(sweep_null, alpha);
    m_table.add_row({std::to_string(m_sweep),
                     strprintf("%.5f", sweep_threshold),
                     strprintf("%.2f", sweep_threshold *
                                           static_cast<double>(m_sweep))});
  }
  m_table.print();
  std::printf("(m * I_alpha roughly constant: the 1/m null scaling)\n");

  std::printf(
      "\nPaper shape to compare: both schemes flag essentially the same\n"
      "pairs, but per-pair testing multiplies the whole computation by q —\n"
      "the universal null is what makes whole-genome significance testing\n"
      "free.\n");
  return 0;
}
