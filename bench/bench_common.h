// Shared helpers for the experiment harnesses in bench/.
//
// Every binary prints a provenance header (ISA, topology, build) so recorded
// numbers are interpretable, then one or more paper-style tables. Defaults
// are sized to finish in seconds; flags scale any experiment up to paper
// scale.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"

#include "core/config.h"
#include "core/mi_engine.h"
#include "data/expression_matrix.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "parallel/topology.h"
#include "preprocess/rank_transform.h"
#include "simd/feature.h"
#include "stats/rng.h"
#include "synth/expression.h"
#include "util/str.h"
#include "util/table.h"
#include "util/timer.h"

namespace tinge::bench {

inline void print_header(const std::string& title, const std::string& what) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("isa: %s\n", simd::isa_report().c_str());
  std::printf("host: %s\n", par::detect_host_topology().to_string().c_str());
  std::printf("==================================================================\n\n");
}

/// Random-permutation rank profiles — the exact data shape the MI engine
/// consumes — without the cost of simulating expression first. Suitable for
/// all performance experiments (MI cost is data-independent).
class RandomRanks {
 public:
  RandomRanks(std::size_t n_genes, std::size_t m, std::uint64_t seed = 99) {
    ExpressionMatrix matrix(n_genes, m);
    Xoshiro256 rng(seed);
    for (std::size_t g = 0; g < n_genes; ++g) {
      auto row = matrix.row(g);
      for (std::size_t s = 0; s < m; ++s)
        row[s] = static_cast<float>(rng.normal());
    }
    ranked_ = RankedMatrix(matrix);
  }

  const RankedMatrix& ranked() const { return ranked_; }

 private:
  RankedMatrix ranked_;
};

/// The engine rig every scaling/ablation harness shares: random rank
/// profiles plus the paper's b=10, k=3 estimator and an MiEngine over them.
class EngineFixture {
 public:
  EngineFixture(std::size_t n_genes, std::size_t m, std::uint64_t seed = 99)
      : data_(n_genes, m, seed),
        estimator_(10, 3, m),
        engine_(estimator_, data_.ranked()) {}

  const RankedMatrix& ranked() const { return data_.ranked(); }
  const BsplineMi& estimator() const { return estimator_; }
  const MiEngine& engine() const { return engine_; }

 private:
  RandomRanks data_;
  BsplineMi estimator_;
  MiEngine engine_;
};

/// Engine config for a perf pass. tile_size 0 keeps the library default.
inline TingeConfig engine_config(
    int threads, std::size_t tile_size = 0,
    par::Schedule schedule = par::Schedule::Dynamic) {
  TingeConfig config;
  config.threads = threads;
  if (tile_size > 0) config.tile_size = tile_size;
  config.schedule = schedule;
  return config;
}

/// Thresholded engine passes with warmup: one untimed warmup pass (page
/// faults, kernel auto-resolution, staging) followed by `samples` timed
/// passes; the stats of the median-seconds pass are returned, so a single
/// descheduling blip cannot masquerade as a kernel regression. The
/// threshold (10 nats) sits above any attainable MI, so the edge set stays
/// empty and the timing is pure sweep cost.
inline EngineStats timed_pass(const MiEngine& engine, par::ThreadPool& pool,
                              const TingeConfig& config, int samples = 3) {
  EngineStats warmup;
  engine.compute_network(/*threshold=*/10.0, config, pool, &warmup);
  std::vector<EngineStats> passes(static_cast<std::size_t>(
      std::max(samples, 1)));
  for (EngineStats& stats : passes)
    engine.compute_network(/*threshold=*/10.0, config, pool, &stats);
  std::sort(passes.begin(), passes.end(),
            [](const EngineStats& a, const EngineStats& b) {
              return a.seconds < b.seconds;
            });
  return passes[passes.size() / 2];
}

/// Synthetic GRN-backed expression dataset for accuracy experiments.
inline SyntheticDataset accuracy_dataset(std::size_t genes, std::size_t samples,
                                         std::uint64_t seed = 7) {
  GrnParams grn_params;
  grn_params.n_genes = genes;
  grn_params.mean_regulators = 1.5;
  grn_params.seed = seed;
  ExpressionParams expr;
  expr.n_samples = samples;
  expr.noise_sd = 1.0;
  // A third of the regulatory edges respond non-monotonically: the
  // dependency class correlation misses and MI exists to catch.
  expr.nonmonotone_fraction = 0.35;
  expr.seed = seed + 1;
  return make_synthetic_dataset(grn_params, expr);
}

/// Machine-readable companion to the printed tables: collects one JSON
/// object per table row and writes BENCH_<name>.json via the obs manifest
/// writer (atomic rename), so CI can compare runs mechanically instead of
/// scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    root_ = obs::Json::object();
    root_["benchmark"] = obs::Json(name_);
    root_["isa"] = obs::Json(simd::isa_report());
    root_["host"] = obs::Json(par::detect_host_topology().to_string());
    rows_ = obs::Json::array();
  }

  void add_row(obs::Json row) { rows_.push_back(std::move(row)); }

  /// Writes BENCH_<name>.json (default) or `path`; returns the path.
  std::string write(std::string path = {}) {
    if (path.empty()) path = "BENCH_" + name_ + ".json";
    root_["rows"] = std::move(rows_);
    rows_ = obs::Json::array();
    obs::write_json_file(root_, path);
    return path;
  }

 private:
  std::string name_;
  obs::Json root_;
  obs::Json rows_;
};

/// pairs/s formatted for tables.
inline std::string rate_str(double pairs_per_second) {
  if (pairs_per_second >= 1e6)
    return strprintf("%.2fM", pairs_per_second / 1e6);
  if (pairs_per_second >= 1e3)
    return strprintf("%.1fk", pairs_per_second / 1e3);
  return strprintf("%.0f", pairs_per_second);
}

}  // namespace tinge::bench
