// Experiment F5 [reconstructed]: cache-blocking tile-size ablation.
// A tile of T x T gene pairs touches 2T rank profiles (T * m * 4 bytes per
// side) plus the private histogram; too-small tiles lose locality between
// pairs sharing a gene, too-large tiles spill the profile working set out of
// cache. The paper tunes this knob for the Phi's 512 KB per-core L2.
#include "bench_common.h"
#include "core/mi_engine.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the test matrix", "512");
  args.add("samples", "experiments per gene", "1024");
  args.add("threads", "threads to run with", "0");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  int threads = static_cast<int>(args.get_int("threads"));
  if (threads <= 0) threads = par::detect_host_topology().total_threads();

  bench::print_header(
      "F5: tile-size ablation (cache blocking)",
      strprintf("%zu genes x %zu samples, %d threads; per-tile rank working "
                "set = 2*T*%zu bytes",
                n, m, threads, m * sizeof(std::uint32_t)));

  const bench::EngineFixture fixture(n, m);
  par::ThreadPool pool(threads);

  Table table({"tile T", "tiles", "working set", "seconds", "pairs/s",
               "vs best"});
  struct Row {
    std::size_t tile;
    std::size_t tiles;
    double seconds;
    std::size_t pairs;
  };
  std::vector<Row> rows;
  double best = 1e300;
  for (std::size_t tile : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    if (tile > n) break;
    const EngineStats stats = bench::timed_pass(
        fixture.engine(), pool, bench::engine_config(threads, tile));
    rows.push_back(Row{tile, stats.tiles, stats.seconds, stats.pairs_computed});
    best = std::min(best, stats.seconds);
  }
  for (const Row& row : rows) {
    const std::size_t bytes = 2 * row.tile * m * sizeof(std::uint32_t);
    table.add_row({std::to_string(row.tile), std::to_string(row.tiles),
                   strprintf("%zu KB", bytes / 1024),
                   strprintf("%.3f", row.seconds),
                   bench::rate_str(static_cast<double>(row.pairs) / row.seconds),
                   strprintf("%.2fx", row.seconds / best)});
  }
  table.print();
  std::printf(
      "\nPaper shape to compare: a U-curve — tiny tiles pay scheduling and\n"
      "locality costs, huge tiles spill the L2; the sweet spot sits where\n"
      "the working set fills a core's private cache.\n");
  return 0;
}
