// Experiment F5 [reconstructed]: cache-blocking tile-size ablation, plus
// the F2c memory-side knob ablation.
// A tile of T x T gene pairs touches 2T rank profiles (T * m * 4 bytes per
// side) plus the private histogram; too-small tiles lose locality between
// pairs sharing a gene, too-large tiles spill the profile working set out of
// cache. The paper tunes this knob for the Phi's 512 KB per-core L2.
#include "bench_common.h"
#include "core/mi_engine.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

namespace {

void tile_size_table(const bench::EngineFixture& fixture, par::ThreadPool& pool,
                     std::size_t n, std::size_t m, int threads,
                     bench::BenchJson& out) {
  bench::print_header(
      "F5: tile-size ablation (cache blocking)",
      strprintf("%zu genes x %zu samples, %d threads; per-tile rank working "
                "set = 2*T*%zu bytes",
                n, m, threads, m * sizeof(std::uint32_t)));

  Table table({"tile T", "tiles", "working set", "seconds", "pairs/s",
               "vs best"});
  struct Row {
    std::size_t tile;
    std::size_t tiles;
    double seconds;
    std::size_t pairs;
  };
  std::vector<Row> rows;
  double best = 1e300;
  for (std::size_t tile : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    if (tile > n) break;
    const EngineStats stats = bench::timed_pass(
        fixture.engine(), pool, bench::engine_config(threads, tile));
    rows.push_back(Row{tile, stats.tiles, stats.seconds, stats.pairs_computed});
    best = std::min(best, stats.seconds);
  }
  for (const Row& row : rows) {
    const std::size_t bytes = 2 * row.tile * m * sizeof(std::uint32_t);
    const double rate = static_cast<double>(row.pairs) / row.seconds;
    table.add_row({std::to_string(row.tile), std::to_string(row.tiles),
                   strprintf("%zu KB", bytes / 1024),
                   strprintf("%.3f", row.seconds), bench::rate_str(rate),
                   strprintf("%.2fx", row.seconds / best)});
    obs::Json json = obs::Json::object();
    json["table"] = obs::Json(std::string("tile_size"));
    json["tile"] = obs::Json(row.tile);
    json["seconds"] = obs::Json(row.seconds);
    json["pairs_per_second"] = obs::Json(rate);
    out.add_row(std::move(json));
  }
  table.print();
  std::printf(
      "\nPaper shape to compare: a U-curve — tiny tiles pay scheduling and\n"
      "locality costs, huge tiles spill the L2; the sweet spot sits where\n"
      "the working set fills a core's private cache.\n");
}

// F2c: each memory-side knob measured one at a time against the panel-FMA
// baseline with every knob off. All variants produce bit-identical networks
// (the knobs change where bytes come from, not which floats are multiplied),
// so the speedup column is the entire story.
void knob_ablation_table(const bench::EngineFixture& fixture,
                         par::ThreadPool& pool, std::size_t n, std::size_t m,
                         int threads, bench::BenchJson& out) {
  bench::print_header(
      "F2c: memory-side knob ablation (panel-FMA baseline, all knobs off)",
      strprintf("%zu genes x %zu samples, %d threads, %d NUMA node(s); "
                "speedup of each knob alone, then all together.",
                n, m, threads, par::detect_numa_layout().nodes));

  TingeConfig baseline = bench::engine_config(threads);
  baseline.kernel = MiKernel::Simd;  // pin the FMA panel: knobs only
  baseline.stage_ranks = false;
  baseline.packed_table = KnobMode::Off;
  baseline.prefetch = KnobMode::Off;
  baseline.numa = KnobMode::Off;

  struct Variant {
    const char* name;
    TingeConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (all off)", baseline});
  {
    TingeConfig c = baseline;
    c.stage_ranks = true;
    variants.push_back({"+uint16 rank staging", c});
  }
  {
    TingeConfig c = baseline;
    c.packed_table = KnobMode::On;
    variants.push_back({"+packed weight table", c});
  }
  {
    TingeConfig c = baseline;
    c.prefetch = KnobMode::On;
    variants.push_back({"+software prefetch", c});
  }
  {
    TingeConfig c = baseline;
    c.numa = KnobMode::On;
    variants.push_back({"+NUMA tile scheduling", c});
  }
  {
    TingeConfig c = baseline;
    c.stage_ranks = true;
    c.packed_table = KnobMode::On;
    c.prefetch = KnobMode::On;
    c.numa = KnobMode::On;
    variants.push_back({"all on", c});
  }
  {
    // What the engine actually ships: measured-auto keeps the knobs that
    // win on this host and drops the ones that lose, so this row should
    // never fall below the baseline by more than measurement noise.
    TingeConfig c = baseline;
    c.stage_ranks = true;
    c.packed_table = KnobMode::Auto;
    c.prefetch = KnobMode::Auto;
    c.numa = KnobMode::Auto;
    variants.push_back({"auto (default knobs)", c});
  }

  Table table({"variant", "seconds", "pairs/s", "speedup"});
  double baseline_seconds = 0.0;
  for (const Variant& variant : variants) {
    const EngineStats stats =
        bench::timed_pass(fixture.engine(), pool, variant.config);
    if (baseline_seconds == 0.0) baseline_seconds = stats.seconds;
    const double rate =
        static_cast<double>(stats.pairs_computed) / stats.seconds;
    const double speedup = baseline_seconds / stats.seconds;
    table.add_row({variant.name, strprintf("%.3f", stats.seconds),
                   bench::rate_str(rate), strprintf("%.2fx", speedup)});
    obs::Json json = obs::Json::object();
    json["table"] = obs::Json(std::string("knob_ablation"));
    json["variant"] = obs::Json(std::string(variant.name));
    json["samples"] = obs::Json(m);
    json["seconds"] = obs::Json(stats.seconds);
    json["pairs_per_second"] = obs::Json(rate);
    json["speedup_vs_baseline"] = obs::Json(speedup);
    out.add_row(std::move(json));
  }
  table.print();
  std::printf(
      "\nAll rows compute the identical network; differences are pure\n"
      "memory-system effects. NUMA shows 1.00x on single-node hosts (the\n"
      "scheduler degenerates to the shared queue by design).\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the test matrix", "512");
  args.add("samples", "experiments per gene", "2048");
  args.add("threads", "threads to run with", "0");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  int threads = static_cast<int>(args.get_int("threads"));
  if (threads <= 0) threads = par::detect_host_topology().total_threads();

  const bench::EngineFixture fixture(n, m);
  par::ThreadPool pool(threads);

  bench::BenchJson out("tile_ablation");
  tile_size_table(fixture, pool, n, m, threads, out);
  knob_ablation_table(fixture, pool, n, m, threads, out);
  std::printf("\nwrote %s\n", out.write().c_str());
  return 0;
}
