// Experiment E1 [headline]: the whole-genome run.
//
// The paper constructs a 15,575-gene network of Arabidopsis thaliana from
// 3,137 microarrays in 22 minutes on one Xeon Phi 5110P. This harness runs
// the identical pipeline end-to-end on a synthetic matrix of configurable
// size (default scaled down to finish in ~1 minute on a small container),
// then extrapolates the measured throughput to the full 15,575 x 3,137
// problem and prints the calibrated device-model predictions for the
// paper's machines next to the paper's published figure.
//
// Run the real thing with: bench_wholegenome --genes=15575 --samples=3137
#include "bench_common.h"
#include "core/network_builder.h"
#include "device/perf_model.h"
#include "obs/trace.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes to run end-to-end", "1500");
  args.add("samples", "experiments per gene", "512");
  args.add("permutations", "null draws q", "2000");
  args.add("alpha", "significance level", "0.0001");
  args.add("threads", "threads (0 = all)", "0");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  bench::print_header(
      "E1: whole-genome network construction (headline experiment)",
      strprintf("end-to-end pipeline on %zu genes x %zu experiments "
                "(paper: 15,575 x 3,137 in 22 min on one Xeon Phi)",
                n, m));

  // Synthetic microarray compendium (generation time excluded, as the
  // paper's load time is excluded from its 22 minutes).
  Stopwatch gen_watch;
  GrnParams grn_params;
  grn_params.n_genes = n;
  grn_params.mean_regulators = 2.0;
  ExpressionParams expr_params;
  expr_params.n_samples = m;
  expr_params.noise_sd = 0.8;
  expr_params.missing_fraction = 0.01;
  SyntheticDataset dataset = make_synthetic_dataset(grn_params, expr_params);
  std::printf("synthetic compendium generated in %s\n\n",
              format_duration(gen_watch.seconds()).c_str());

  TingeConfig config;
  config.permutations = static_cast<std::size_t>(args.get_int("permutations"));
  config.alpha = args.get_double("alpha");
  config.threads = static_cast<int>(args.get_int("threads"));
  NetworkBuilder builder(config);
  builder.set_logger([](std::string_view message) {
    std::printf("  [pipeline] %.*s\n", static_cast<int>(message.size()),
                message.data());
  });
  const BuildResult result = builder.build(std::move(dataset.expression));

  std::printf("\n");
  Table table({"quantity", "value"});
  table.add_row({"genes used", std::to_string(result.genes_used)});
  table.add_row({"pairs computed", std::to_string(result.engine.pairs_computed)});
  table.add_row({"significant edges", std::to_string(result.network.n_edges())});
  table.add_row({"threshold I_alpha (nats)", strprintf("%.5f", result.threshold)});
  // Stage timings read from the run's trace tree (the one timing substrate).
  const obs::SpanNode& span_root = result.trace->root();
  const double mi_pass_seconds = obs::span_seconds(span_root, "mi_sweep");
  table.add_row({"total wall time", format_duration(span_root.seconds)});
  table.add_row({"MI-pass time", format_duration(mi_pass_seconds)});
  table.add_row(
      {"MI throughput", bench::rate_str(static_cast<double>(
                            result.engine.pairs_computed) /
                        mi_pass_seconds) + " pairs/s"});
  table.print();

  // ---- extrapolation to the paper's full problem --------------------------
  const double pair_rate = static_cast<double>(result.engine.pairs_computed) /
                           mi_pass_seconds;
  const double cell_rate = pair_rate * static_cast<double>(m);
  const double full_pairs = 15575.0 * 15574.0 / 2.0;
  const double full_cells = full_pairs * 3137.0;
  const double host_full_seconds = full_cells / cell_rate;

  const MiWorkload per_pair{1, m, 3, 10};
  const double measured_gflops =
      pair_rate * per_pair.flops() / 1e9 /
      std::max(1, config.threads > 0
                      ? config.threads
                      : par::detect_host_topology().total_threads());
  const PerfModel model(host_device(), measured_gflops);
  const MiWorkload full = MiWorkload::all_pairs(15575, 3137, 3, 10);

  std::printf("\nextrapolation to the paper's 15,575 x 3,137 problem:\n");
  Table extra({"platform", "basis", "time"});
  extra.add_row({"this host (all threads)", "measured cell rate",
                 format_duration(host_full_seconds)});
  extra.add_row({"2x Xeon E5-2670 (32 thr)", "calibrated model",
                 format_duration(model.predict_seconds(dual_xeon_e5_2670(),
                                                       full, 32))});
  extra.add_row({"Xeon Phi 5110P (240 thr)", "calibrated model",
                 format_duration(model.predict_seconds(xeon_phi_5110p(),
                                                       full, 240))});
  extra.add_row({"Xeon Phi 5110P (paper)", "published", "22.0 min"});
  extra.print();

  std::printf(
      "\nShape to compare: a single chip handles the whole-genome problem in\n"
      "minutes-not-days; the Phi model lands well under the paper's 22 min\n"
      "because our pipeline needs one MI evaluation per pair (universal\n"
      "null), while the paper's figure includes its per-pair significance\n"
      "machinery and real-hardware efficiency losses. See EXPERIMENTS.md.\n");
  return 0;
}
