// Experiment T4 [reconstructed]: the cluster baseline the paper replaces.
//
// Prior work (TINGe-classic) needed a distributed-memory cluster for
// whole-genome MI networks; the paper's contribution is doing it on one
// chip. This harness runs the actual ring-pipelined distributed algorithm
// and reports what the cluster costs beyond the computation itself: bytes
// moved around the ring, messages, load balance — and extrapolates the
// communication volume to the paper's full problem.
//
// Two transports (--transport=inproc|tcp|both):
//   * inproc — rank-threads with mailbox copies: measures communication
//     volume and algorithmic structure, not latency;
//   * tcp — every rank speaks real framed localhost sockets, so the
//     seconds column includes genuine kernel/network time for the same
//     byte volume.
#include "bench_common.h"
#include "cluster/faulty_transport.h"
#include "cluster/lease_mi.h"
#include "cluster/ring_mi.h"
#include "core/mi_engine.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the test matrix", "256");
  args.add("samples", "experiments per gene", "512");
  args.add("max-ranks", "largest simulated cluster size", "8");
  args.add("transport", "cluster transport to bench: inproc|tcp|both",
           "both");
  args.add("straggler-ms", "per-tile straggle injected on rank 1 in the "
           "elastic comparison", "20");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  const int max_ranks = static_cast<int>(args.get_int("max-ranks"));
  const std::string transport_arg = args.get("transport");
  const double straggler_ms = args.get_double("straggler-ms");

  std::vector<cluster::TransportKind> kinds;
  if (transport_arg == "both") {
    kinds = {cluster::TransportKind::InProcess, cluster::TransportKind::Tcp};
  } else {
    kinds = {cluster::parse_transport_kind(transport_arg)};
  }

  bench::print_header(
      "T4: single chip vs cluster transports (TINGe-classic baseline)",
      strprintf("all-pairs MI over %zu genes x %zu samples; ring-pipelined "
                "block distribution, real buffer movement",
                n, m));

  const bench::RandomRanks data(n, m);
  const BsplineMi estimator(10, 3, m);
  const BsplineStat statistic(estimator);
  TingeConfig config;
  const double threshold = 0.033;  // ~1% tail of the m=512 null

  // Reference: the single-chip engine (what the paper builds). One warmup
  // pass first so the timed run is not paying page faults and ramp-up.
  const MiEngine engine(estimator, data.ranked());
  par::ThreadPool pool(1);
  TingeConfig single_config;
  single_config.threads = 1;
  EngineStats single_stats;
  engine.compute_network(threshold, single_config, pool, &single_stats);
  const GeneNetwork reference =
      engine.compute_network(threshold, single_config, pool, &single_stats);

  Table table({"configuration", "transport", "ring MB moved", "messages",
               "imbalance", "edges", "seconds"});
  table.add_row({"single chip (paper)", "-", "0.0", "0", "1.00",
                 std::to_string(reference.n_edges()),
                 strprintf("%.3f", single_stats.seconds)});

  for (const cluster::TransportKind kind : kinds) {
    for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
      cluster::ClusterStats stats;
      const GeneNetwork network = cluster::cluster_compute_network(
          statistic, data.ranked(), threshold, ranks, config, &stats, kind);
      table.add_row(
          {strprintf("%d-rank cluster", ranks), stats.transport,
           strprintf("%.1f",
                     static_cast<double>(stats.bytes_transferred) / 1e6),
           std::to_string(stats.messages),
           strprintf("%.2f", stats.imbalance()),
           std::to_string(network.n_edges()),
           strprintf("%.3f", stats.seconds)});
    }
  }
  table.print();
  std::printf(
      "(inproc rows measure arithmetic plus transport copies only; tcp rows\n"
      "add real localhost socket time — framing, kernel buffers, wakeups —\n"
      "for the same byte volume. MB moved, messages and imbalance are\n"
      "transport-invariant, and the edge lists are identical by test.)\n");

  // Communication volume at the paper's scale: each of the P blocks of
  // n/P genes x m u32 ranks traverses P-1 hops, plus the edge gather.
  std::printf("\nextrapolated ring volume at 15,575 genes x 3,137 arrays:\n");
  Table extra({"cluster size", "block data", "total ring traffic"});
  for (const int p : {16, 64, 256}) {
    const double block_bytes = 15575.0 / p * 3137.0 * 4.0;
    const double ring_bytes = block_bytes * p * (p - 1);
    extra.add_row({std::to_string(p),
                   strprintf("%.1f MB", block_bytes / 1e6),
                   strprintf("%.1f GB", ring_bytes / 1e9)});
  }
  extra.print();

  std::printf(
      "\nShape to compare: the distributed baseline produces the identical\n"
      "network (test-enforced) but pays ring traffic that grows linearly\n"
      "with cluster size — hundreds of GB at the scale prior work used —\n"
      "plus scheduling imbalance. The paper's single-chip solution makes\n"
      "all of it disappear; that is its whole argument.\n");

  // F6b: static vs lease balancing, with and without a straggling rank.
  //
  // The static ring's weakness is that the slowest rank gates the sweep;
  // the tile-lease protocol exists to absorb exactly that. Each cell runs
  // the same seeded input in-process (imbalance and steals are
  // transport-invariant), with rank 1 optionally straggled by
  // --straggler-ms per tile through the fault decorator. tile=32 gives the
  // ledger 36 tiles — enough granularity that 8 ranks can steal.
  std::printf("\nelastic balancing: static ring vs tile leases "
              "(straggler = %.0f ms/tile on rank 1)\n", straggler_ms);

  TingeConfig elastic_config;
  elastic_config.tile_size = 32;

  struct ElasticCell {
    double seconds = 0.0;
    double pre = 1.0;   // predicted wall imbalance of a static split
    double post = 1.0;  // realized max/min busy seconds
    std::size_t steals = 0;
    std::size_t granted = 0;
  };

  const auto elastic_pass = [&](int ranks, const std::string& balance,
                                bool straggled) {
    TingeConfig pass_config = elastic_config;
    pass_config.cluster_balance = balance;
    cluster::FaultPlan fault;
    fault.rank = 1;
    fault.tile_delay_ms = straggled ? straggler_ms : 0.0;
    ElasticCell cell;
    cluster::ClusterStats stats;  // only for the imbalance accessors
    const Stopwatch watch;
    const auto cluster =
        cluster::make_cluster(cluster::TransportKind::InProcess, ranks);
    cluster->run([&](cluster::Comm& comm) {
      const auto rank_body = [&](cluster::Comm& endpoint) {
        if (balance == "lease") {
          cluster::LeaseSweepReport report;
          cluster::lease_sweep(endpoint, statistic, data.ranked(), threshold,
                               pass_config, &report);
          if (comm.rank() == 0) {
            stats.pairs_per_rank = std::move(report.pairs_per_rank);
            stats.busy_seconds_per_rank =
                std::move(report.busy_seconds_per_rank);
            cell.steals = report.steals;
            cell.granted = report.leases_granted;
          }
          return;
        }
        std::vector<std::size_t> pairs;
        std::vector<double> busy;
        cluster::ring_sweep(endpoint, statistic, data.ranked(), threshold,
                            pass_config, &pairs, /*cancel=*/nullptr, &busy);
        if (comm.rank() == 0) {
          stats.pairs_per_rank = std::move(pairs);
          stats.busy_seconds_per_rank = std::move(busy);
        }
      };
      if (fault.tile_delay_ms > 0.0 && comm.rank() == fault.rank) {
        cluster::FaultyTransport faulty(comm.transport(), fault);
        cluster::Comm endpoint(faulty);
        rank_body(endpoint);
      } else {
        rank_body(comm);
      }
    });
    cell.seconds = watch.seconds();
    cell.pre = stats.imbalance_pre();
    cell.post = stats.imbalance_post();
    return cell;
  };

  bench::BenchJson elastic_json("elastic");
  Table elastic_table({"ranks", "straggler", "balance", "imbalance pre",
                       "imbalance post", "steals", "seconds"});
  for (const int ranks : {2, 4, 8}) {
    if (ranks > max_ranks) continue;
    for (const bool straggled : {false, true}) {
      for (const std::string balance : {"static", "lease"}) {
        const ElasticCell cell = elastic_pass(ranks, balance, straggled);
        elastic_table.add_row(
            {std::to_string(ranks), straggled ? "yes" : "no", balance,
             strprintf("%.2f", cell.pre), strprintf("%.2f", cell.post),
             std::to_string(cell.steals), strprintf("%.3f", cell.seconds)});
        obs::Json row = obs::Json::object();
        row["ranks"] = obs::Json(static_cast<double>(ranks));
        row["straggler_ms"] =
            obs::Json(straggled ? straggler_ms : 0.0);
        row["balance"] = obs::Json(balance);
        row["imbalance_pre"] = obs::Json(cell.pre);
        row["imbalance_post"] = obs::Json(cell.post);
        row["steals"] = obs::Json(static_cast<double>(cell.steals));
        row["leases_granted"] =
            obs::Json(static_cast<double>(cell.granted));
        row["seconds"] = obs::Json(cell.seconds);
        elastic_json.add_row(std::move(row));
      }
    }
  }
  elastic_table.print();
  const std::string elastic_path = elastic_json.write();
  std::printf(
      "(imbalance pre is the predicted wall imbalance of a static split of\n"
      "this rank mix — max/min per-rank compute rate; imbalance post is the\n"
      "realized max/min busy seconds. Without a straggler the two schemes\n"
      "tie; with one, the static rows inherit the full rate skew while the\n"
      "lease rows absorb it by moving tiles — the steals column — off the\n"
      "slow rank. Machine-readable copy: %s)\n", elastic_path.c_str());
  return 0;
}
