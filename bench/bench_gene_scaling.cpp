// Experiment F3 [reconstructed]: runtime vs number of genes at fixed m.
// The pair count is n(n-1)/2, so total time must scale quadratically in n —
// the figure every whole-genome paper shows to justify why n ~ 15,575 needs
// this much machinery.
#include "bench_common.h"
#include "core/mi_engine.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("samples", "experiments per gene", "384");
  args.add("max-genes", "largest gene count in the sweep", "1024");
  args.add("threads", "threads to run with", "0");
  args.parse(argc, argv);

  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  const auto max_genes = static_cast<std::size_t>(args.get_int("max-genes"));
  int threads = static_cast<int>(args.get_int("threads"));
  if (threads <= 0) threads = par::detect_host_topology().total_threads();

  bench::print_header(
      "F3: runtime vs number of genes (fixed m)",
      strprintf("m=%zu samples, %d threads; expect t ~ n^2", m, threads));

  par::ThreadPool pool(threads);

  Table table({"genes", "pairs", "seconds", "pairs/s", "t/t_prev", "n^2 ratio"});
  double previous_seconds = 0.0;
  std::size_t previous_n = 0;
  for (std::size_t n = max_genes / 8; n <= max_genes; n *= 2) {
    const bench::EngineFixture fixture(n, m);
    const EngineStats stats = bench::timed_pass(
        fixture.engine(), pool, bench::engine_config(threads));
    std::string growth = "-", expected = "-";
    if (previous_n != 0) {
      growth = strprintf("%.2fx", stats.seconds / previous_seconds);
      const double n_ratio = static_cast<double>(n * (n - 1)) /
                             static_cast<double>(previous_n * (previous_n - 1));
      expected = strprintf("%.2fx", n_ratio);
    }
    table.add_row({std::to_string(n), std::to_string(stats.pairs_computed),
                   strprintf("%.3f", stats.seconds),
                   bench::rate_str(static_cast<double>(stats.pairs_computed) /
                                   stats.seconds),
                   growth, expected});
    previous_seconds = stats.seconds;
    previous_n = n;
  }
  table.print();
  std::printf(
      "\nPaper shape to compare: doubling n multiplies runtime by ~4x\n"
      "(t/t_prev column tracks the n^2 ratio column).\n");
  return 0;
}
