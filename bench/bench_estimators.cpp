// Experiment A1 (ours): estimator-quality ablation the paper presupposes —
// why B-spline MI, rather than hard-binned MI or correlation, is worth
// vectorizing in the first place.
//
// Panel 1: accuracy against the analytic MI of bivariate Gaussians.
// Panel 2: network recovery (AUPR) on a synthetic GRN with a nonlinear
//          (tanh) regulatory response, where correlation underperforms.
// Panel 3: single-thread cost of each estimator.
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "core/mi_engine.h"
#include "core/pair_statistic.h"
#include "graph/metrics.h"
#include "mi/bspline_mi.h"
#include "mi/correlation.h"
#include "mi/histogram_mi.h"
#include "mi/ksg_mi.h"
#include "mi/phi_mixing.h"
#include "parallel/thread_pool.h"
#include "stats/gaussian.h"
#include "util/args.h"

using namespace tinge;

namespace {

void gaussian_pair(std::size_t m, double rho, std::uint64_t seed,
                   std::vector<float>& x, std::vector<float>& y) {
  Xoshiro256 rng(seed);
  x.resize(m);
  y.resize(m);
  const double noise = std::sqrt(1.0 - rho * rho);
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(rho * u + noise * rng.normal());
  }
}

void accuracy_panel(std::size_t m) {
  std::printf("Panel 1: estimated vs analytic MI on bivariate Gaussians "
              "(m=%zu, mean of 5 trials)\n", m);
  Table table({"rho", "true MI", "bspline b10k3", "histogram b10",
               "hist+MM b10", "KSG k=4", "|r| (Pearson)"});
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  std::vector<float> x, y;
  for (const double rho : {0.0, 0.3, 0.6, 0.9}) {
    double bspline = 0, hist = 0, mm = 0, ksg = 0, pear = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      gaussian_pair(m, rho, 100 + static_cast<std::uint64_t>(t), x, y);
      const auto rx = rank_order(x);
      const auto ry = rank_order(y);
      bspline += estimator.mi(rx, ry, scratch);
      hist += histogram_mi_from_ranks(rx, ry, 10);
      mm += histogram_mi_miller_madow(rx, ry, 10);
      ksg += ksg_mi(x, y, 4);
      pear += std::fabs(pearson_correlation(x, y));
    }
    table.add_row({strprintf("%.1f", rho),
                   strprintf("%.4f", gaussian_mi_nats(rho)),
                   strprintf("%.4f", bspline / trials),
                   strprintf("%.4f", hist / trials),
                   strprintf("%.4f", mm / trials),
                   strprintf("%.4f", ksg / trials),
                   strprintf("%.3f", pear / trials)});
  }
  table.print();
  std::printf("\n");
}

void bins_sweep_panel(std::size_t m) {
  std::printf("Panel 1b: bins sweep — bias at independence vs fidelity at "
              "rho=0.6 (m=%zu, k=3, mean of 5 trials; suggest_bins=%d)\n",
              m, suggest_bins(m));
  Table table({"bins", "MI at rho=0 (bias)", "MI at rho=0.6 (true 0.2231)"});
  std::vector<float> x, y;
  for (const int bins : {5, 10, 15, 20, 27}) {
    const BsplineMi estimator(bins, 3, m);
    JointHistogram scratch = estimator.make_scratch();
    double at_zero = 0, at_six = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      gaussian_pair(m, 0.0, 500 + static_cast<std::uint64_t>(t), x, y);
      at_zero += estimator.mi(rank_order(x), rank_order(y), scratch);
      gaussian_pair(m, 0.6, 600 + static_cast<std::uint64_t>(t), x, y);
      at_six += estimator.mi(rank_order(x), rank_order(y), scratch);
    }
    table.add_row({std::to_string(bins), strprintf("%.4f", at_zero / trials),
                   strprintf("%.4f", at_six / trials)});
  }
  table.print();
  std::printf(
      "Small b underestimates real dependence; large b inflates the\n"
      "independence bias ~ (b-1)^2/(2m). The suggest_bins rule sits between.\n\n");
}

void recovery_panel(std::size_t genes, std::size_t samples) {
  std::printf("Panel 2: network recovery on a nonlinear synthetic GRN "
              "(%zu genes x %zu samples)\n", genes, samples);
  const SyntheticDataset dataset = bench::accuracy_dataset(genes, samples);
  const double chance = static_cast<double>(dataset.truth.n_edges()) /
                        static_cast<double>(genes * (genes - 1) / 2);

  // Every estimator scores through the same lattice the pipeline exposes
  // as --estimator=...: make_pair_statistic + the engine's dense sweep.
  const RankedMatrix ranked(dataset.expression);
  par::ThreadPool pool(par::detect_host_topology().total_threads());
  Table table({"estimator", "AUPR", "vs chance", "AUROC"});
  const auto add = [&](const char* name, const GeneNetwork& network) {
    const double aupr = average_precision(network, dataset.truth);
    table.add_row({name, strprintf("%.4f", aupr),
                   strprintf("%.1fx", aupr / chance),
                   strprintf("%.3f", auroc(network, dataset.truth))});
  };
  for (const EstimatorKind kind :
       {EstimatorKind::Bspline, EstimatorKind::Histogram, EstimatorKind::Ksg,
        EstimatorKind::Pearson, EstimatorKind::Spearman, EstimatorKind::Phi}) {
    TingeConfig config;
    config.estimator = kind;
    const std::unique_ptr<PairStatistic> statistic =
        make_pair_statistic(config, ranked, &dataset.expression);
    const MiEngine engine(*statistic, ranked);
    const auto dense = engine.compute_dense(config, pool);
    GeneNetwork network(dataset.expression.gene_names());
    for (std::size_t i = 0; i < genes; ++i)
      for (std::size_t j = i + 1; j < genes; ++j)
        network.add_edge(static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j),
                         dense[i * genes + j]);
    network.finalize();
    add(estimator_name(kind), network);
  }
  table.print();
  std::printf("chance AUPR = %.4f\n\n", chance);
}

void cost_panel(std::size_t m) {
  std::printf("Panel 3: single-thread cost per pair (m=%zu)\n", m);
  const bench::RandomRanks data(32, m);
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();

  // Raw value profiles for the correlation estimators.
  std::vector<std::vector<float>> values(32, std::vector<float>(m));
  Xoshiro256 rng(5);
  for (auto& row : values)
    for (auto& v : row) v = static_cast<float>(rng.normal());

  Table table({"estimator", "us/pair"});
  const auto time_it = [&](const char* name, auto&& body) {
    Stopwatch watch;
    std::size_t pairs = 0;
    double sink = 0.0;
    while (watch.seconds() < 0.3) {
      for (std::size_t i = 0; i + 1 < 32; ++i) {
        sink += body(i, i + 1);
        ++pairs;
      }
    }
    if (sink == 1234.5) std::printf("?");
    table.add_row({name, strprintf("%.2f",
                                   watch.seconds() /
                                       static_cast<double>(pairs) * 1e6)});
  };
  time_it("B-spline MI (auto kernel)", [&](std::size_t i, std::size_t j) {
    return estimator.mi(data.ranked().ranks(i), data.ranked().ranks(j), scratch);
  });
  time_it("histogram MI", [&](std::size_t i, std::size_t j) {
    return histogram_mi_from_ranks(data.ranked().ranks(i),
                                   data.ranked().ranks(j), 10);
  });
  time_it("Pearson", [&](std::size_t i, std::size_t j) {
    return pearson_correlation(values[i], values[j]);
  });
  time_it("Spearman", [&](std::size_t i, std::size_t j) {
    return spearman_correlation(values[i], values[j]);
  });
  time_it("phi-mixing (b=10)", [&](std::size_t i, std::size_t j) {
    return phi_mixing_symmetric(data.ranked().ranks(i),
                                data.ranked().ranks(j), 10);
  });
  time_it("KSG k=4 (O(m^2))", [&](std::size_t i, std::size_t j) {
    return ksg_mi(values[i], values[j], 4);
  });
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes for the recovery panel", "80");
  args.add("samples", "experiments per gene", "400");
  args.parse(argc, argv);

  bench::print_header(
      "A1: estimator-quality ablation",
      "B-spline MI vs histogram MI vs correlation baselines");

  accuracy_panel(2000);
  bins_sweep_panel(2000);
  recovery_panel(static_cast<std::size_t>(args.get_int("genes")),
                 static_cast<std::size_t>(args.get_int("samples")));
  cost_panel(1024);

  std::printf(
      "\nShape to compare: the B-spline estimator tracks the analytic MI\n"
      "with far less bias than hard binning, and matches or beats all\n"
      "baselines on nonlinear-network recovery — at a per-pair cost that\n"
      "the paper's vectorization then drives down.\n");
  return 0;
}
