// Experiment F6 [reconstructed]: characterization of the inferred network —
// the "what did we actually build" figure (the paper reports an Arabidopsis
// whole-genome network; papers in this lineage summarize it by degree
// distribution, hubs and clustering).
//
// Two panels:
//   1. the network inferred from a scale-free synthetic compendium vs the
//      one inferred from an Erdős–Rényi control (same size/noise): the
//      pipeline must transport the topology class from data to network;
//   2. degree distribution of the scale-free-derived network (log-binned),
//      with the power-law tail exponent.
#include "bench_common.h"
#include "core/network_builder.h"
#include "graph/analysis.h"
#include "graph/metrics.h"
#include "util/args.h"

using namespace tinge;

namespace {

BuildResult infer(const SyntheticDataset& dataset) {
  TingeConfig config;
  config.alpha = 1e-3;
  config.permutations = 2000;
  return NetworkBuilder(config).build(dataset.expression);
}

SyntheticDataset dataset_with_topology(GrnTopology topology, std::size_t genes,
                                       std::size_t samples) {
  GrnParams grn;
  grn.n_genes = genes;
  grn.mean_regulators = 2.0;
  grn.topology = topology;
  grn.seed = 31;
  ExpressionParams arrays;
  arrays.n_samples = samples;
  arrays.noise_sd = 0.9;
  arrays.seed = 32;
  return make_synthetic_dataset(grn, arrays);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the compendium", "800");
  args.add("samples", "experiments per gene", "384");
  args.parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  bench::print_header(
      "F6: inferred-network characterization",
      strprintf("pipeline on %zu genes x %zu samples; scale-free vs "
                "Erdős–Rényi ground truth",
                n, m));

  Table compare({"quantity", "scale-free truth", "ER truth"});
  NetworkSummary summaries[2];
  GeneNetwork networks[2];
  double truth_gamma[2];
  const GrnTopology topologies[2] = {GrnTopology::ScaleFree,
                                     GrnTopology::ErdosRenyi};
  for (int t = 0; t < 2; ++t) {
    const SyntheticDataset dataset = dataset_with_topology(topologies[t], n, m);
    truth_gamma[t] = powerlaw_exponent_mle(dataset.truth, 3);
    BuildResult result = infer(dataset);
    networks[t] = std::move(result.network);
    summaries[t] = summarize_network(networks[t]);
  }
  const auto row = [&](const char* name, auto value_of) {
    compare.add_row({name, value_of(0), value_of(1)});
  };
  row("edges", [&](int t) { return std::to_string(summaries[t].edges); });
  row("mean degree",
      [&](int t) { return strprintf("%.2f", summaries[t].mean_degree); });
  row("max degree",
      [&](int t) { return std::to_string(summaries[t].max_degree); });
  row("isolated genes",
      [&](int t) { return std::to_string(summaries[t].isolated_nodes); });
  row("components",
      [&](int t) { return std::to_string(summaries[t].components); });
  row("clustering coeff",
      [&](int t) { return strprintf("%.4f", summaries[t].clustering); });
  row("gamma (inferred net)", [&](int t) {
    return summaries[t].powerlaw_gamma > 0
               ? strprintf("%.2f", summaries[t].powerlaw_gamma)
               : std::string("n/a");
  });
  row("gamma (truth GRN)",
      [&](int t) { return strprintf("%.2f", truth_gamma[t]); });
  compare.print();

  // Panel 2: log-binned degree distribution of the scale-free network.
  std::printf("\ndegree distribution (scale-free truth), log-binned:\n");
  const auto histogram = degree_histogram(networks[0]);
  Table dist({"degree range", "genes", "fraction"});
  std::size_t lo = 1;
  while (lo < histogram.size()) {
    const std::size_t hi = std::max(lo * 2, lo + 1);
    std::size_t count = 0;
    for (std::size_t d = lo; d < hi && d < histogram.size(); ++d)
      count += histogram[d];
    if (count > 0) {
      dist.add_row({strprintf("%zu-%zu", lo, hi - 1), std::to_string(count),
                    strprintf("%.4f", static_cast<double>(count) /
                                          static_cast<double>(n))});
    }
    lo = hi;
  }
  dist.print();

  std::printf("\ntop hubs:");
  for (const HubInfo& hub : top_hubs(networks[0], 8))
    std::printf(" %s(%zu)", hub.name.c_str(), hub.degree);
  std::printf(
      "\n\nShape to compare: the scale-free compendium yields a hub-heavy,\n"
      "heavy-tailed network (a few very-high-degree regulators, many\n"
      "low-degree genes) while the ER control does not — the property such\n"
      "papers report for real regulatory networks.\n");
  return 0;
}
