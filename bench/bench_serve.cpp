// T2 (serve): load test of the tinge_serve query daemon.
//
// Builds a synthetic dataset's network once, starts the serve daemon
// in-process on loopback, then hammers it with N concurrent clients, each
// a real framed-TCP connection issuing a mixed query stream (MI pairs,
// neighborhoods, top-k). Reports throughput and latency percentiles twice:
// once measured client-side (wall clock around each round trip) and once
// from the daemon's own serve.query.seconds histogram in the metrics
// registry — the number a production deployment would scrape. Also reports
// the tile-cache hit rate, the whole point of serving from a resident
// planner instead of re-running the batch pipeline per question.
//
// Defaults finish in seconds; --clients=500 --queries=100 scales it up.

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "cluster/serve_client.h"
#include "cluster/serve_server.h"
#include "obs/metrics.h"
#include "stats/rng.h"
#include "synth/expression.h"
#include "util/args.h"

using namespace tinge;

namespace {

double nearest_rank(std::vector<double>& sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const std::size_t rank = std::min(
      sorted_samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_samples.size())));
  return sorted_samples[rank];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the synthetic dataset", "160");
  args.add("samples", "experiments per gene", "128");
  args.add("clients", "concurrent client connections", "100");
  args.add("queries", "queries per client", "20");
  args.add("pairs-per-query", "gene pairs per MI query", "4");
  args.add("permutations", "null-distribution draws", "300");
  args.add("flush-ms", "pair-batch window in milliseconds", "2");
  args.add("cache-mb", "tile-cache budget in MiB", "64");
  args.add("threads", "daemon sweep threads (0 = all)", "0");
  args.add("seed", "workload RNG seed", "7");
  args.add("json", "write BENCH_serve.json", "1");
  args.parse(argc, argv);

  const auto n_genes = static_cast<std::size_t>(args.get_int("genes"));
  const auto n_samples = static_cast<std::size_t>(args.get_int("samples"));
  const int n_clients = static_cast<int>(args.get_int("clients"));
  const int n_queries = static_cast<int>(args.get_int("queries"));
  const int pairs_per_query =
      static_cast<int>(args.get_int("pairs-per-query"));

  bench::print_header(
      "T2 (serve): concurrent query load on the tinge_serve daemon",
      strprintf("%d clients x %d queries, %zu genes x %zu samples",
                n_clients, n_queries, n_genes, n_samples));

  GrnParams grn;
  grn.n_genes = n_genes;
  ExpressionParams arrays;
  arrays.n_samples = n_samples;
  ExpressionMatrix expression =
      simulate_expression(generate_grn(grn), arrays);

  TingeConfig config;
  config.permutations = static_cast<std::size_t>(args.get_int("permutations"));
  config.threads = static_cast<int>(args.get_int("threads"));

  cluster::ServeOptions options;
  options.flush_deadline_ms = args.get_double("flush-ms");
  options.cache_bytes = static_cast<std::size_t>(args.get_int("cache-mb"))
                        << 20;

  const Stopwatch build_watch;
  cluster::ServeState state(std::move(expression), config, options);
  cluster::ServeServer server(state, options);
  std::printf("daemon up on port %d: %zu-gene network, %zu edges, %.2f s "
              "build\n\n",
              server.port(), state.n_genes(), state.network().n_edges(),
              build_watch.seconds());

  const std::size_t n = state.n_genes();
  const auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t hits_before = state.cache().hits();
  const std::uint64_t misses_before = state.cache().misses();

  // Every client thread records its own per-query wall times; the vectors
  // are preallocated so the measurement loop never allocates under timing.
  std::vector<std::vector<double>> latencies(n_clients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const Stopwatch load_watch;
  for (int c = 0; c < n_clients; ++c) {
    latencies[c].reserve(n_queries);
    clients.emplace_back([&, c] {
      try {
        cluster::ServeClient client("127.0.0.1", server.port());
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(c));
        for (int q = 0; q < n_queries; ++q) {
          const Stopwatch watch;
          if (q % 5 == 4) {
            // Every fifth query reads the built network instead of MI.
            const auto gene =
                static_cast<std::uint32_t>(rng() % n);
            if (q % 10 == 4)
              client.neighborhood(gene, 8);
            else
              client.top_edges(16);
          } else {
            std::vector<GenePair> pairs;
            for (int i = 0; i < pairs_per_query; ++i) {
              const auto a =
                  static_cast<std::uint32_t>(rng() % n);
              auto b = static_cast<std::uint32_t>(rng() % (n - 1));
              if (b >= a) ++b;
              pairs.push_back(GenePair{a, b});
            }
            client.mi_pairs(pairs);
          }
          latencies[c].push_back(watch.seconds());
        }
      } catch (const std::exception& error) {
        failures.fetch_add(1);
        std::fprintf(stderr, "client %d failed: %s\n", c, error.what());
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const double wall = load_watch.seconds();

  std::vector<double> all;
  for (const auto& samples : latencies)
    all.insert(all.end(), samples.begin(), samples.end());
  std::sort(all.begin(), all.end());
  const double qps = wall > 0.0 ? static_cast<double>(all.size()) / wall : 0.0;

  const obs::MetricsSnapshot after = registry.snapshot();
  const obs::HistogramSummary served =
      after.histograms.at("serve.query.seconds");
  const std::uint64_t hits = state.cache().hits() - hits_before;
  const std::uint64_t misses = state.cache().misses() - misses_before;
  server.stop();

  Table table({"source", "queries", "qps", "p50 ms", "p95 ms", "p99 ms",
               "max ms"});
  table.add_row({"client wall clock", std::to_string(all.size()),
                 strprintf("%.0f", qps),
                 strprintf("%.3f", 1e3 * nearest_rank(all, 0.50)),
                 strprintf("%.3f", 1e3 * nearest_rank(all, 0.95)),
                 strprintf("%.3f", 1e3 * nearest_rank(all, 0.99)),
                 strprintf("%.3f", all.empty() ? 0.0 : 1e3 * all.back())});
  table.add_row({"metrics registry", std::to_string(served.count),
                 strprintf("%.0f", qps), strprintf("%.3f", 1e3 * served.p50),
                 strprintf("%.3f", 1e3 * served.p95),
                 strprintf("%.3f", 1e3 * served.p99),
                 strprintf("%.3f", 1e3 * served.max)});
  table.print();
  std::printf(
      "\ntile cache: %llu hits / %llu misses (%.1f%% hit rate), "
      "%d client failures\n",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      hits + misses > 0
          ? 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses)
          : 0.0,
      failures.load());

  if (args.get_int("json") != 0) {
    bench::BenchJson json("serve");
    obs::Json row = obs::Json::object();
    row["clients"] = obs::Json(n_clients);
    row["queries"] = obs::Json(static_cast<double>(all.size()));
    row["wall_seconds"] = obs::Json(wall);
    row["qps"] = obs::Json(qps);
    row["client_p50_s"] = obs::Json(nearest_rank(all, 0.50));
    row["client_p95_s"] = obs::Json(nearest_rank(all, 0.95));
    row["client_p99_s"] = obs::Json(nearest_rank(all, 0.99));
    row["registry_p50_s"] = obs::Json(served.p50);
    row["registry_p95_s"] = obs::Json(served.p95);
    row["registry_p99_s"] = obs::Json(served.p99);
    row["registry_count"] = obs::Json(static_cast<double>(served.count));
    row["cache_hits"] = obs::Json(static_cast<double>(hits));
    row["cache_misses"] = obs::Json(static_cast<double>(misses));
    row["failures"] = obs::Json(failures.load());
    json.add_row(std::move(row));
    std::printf("wrote %s\n", json.write().c_str());
  }
  return failures.load() == 0 ? 0 : 1;
}
