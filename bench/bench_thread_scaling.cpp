// Experiment F1 [reconstructed]: strong scaling of the all-pairs MI engine
// with thread count — the paper's core-level/thread-level parallelism figure
// (1..240 threads on the Phi, 1..32 on the Xeon).
//
// Two panels:
//   1. MEASURED on this host (honest: this container may have very few
//      cores, in which case the curve flattens at the physical count and
//      the oversubscribed tail shows scheduler overhead, not the Phi SMT
//      effect);
//   2. MODELED for the paper's two machines via the calibrated device model
//      (see DESIGN.md §2), which reproduces the published scaling shape.
#include "bench_common.h"
#include "core/mi_engine.h"
#include "device/perf_model.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the test matrix", "192");
  args.add("samples", "experiments per gene", "512");
  args.add("max-threads", "largest thread count to sweep", "16");
  args.add("schedule", "static|dynamic|guided", "dynamic");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  const int max_threads = static_cast<int>(args.get_int("max-threads"));

  bench::print_header(
      "F1: strong scaling vs thread count",
      strprintf("all-pairs MI over %zu genes x %zu samples (%zu pairs)", n, m,
                n * (n - 1) / 2));

  const bench::EngineFixture fixture(n, m);

  par::Schedule schedule = par::Schedule::Dynamic;
  if (args.get("schedule") == "static") schedule = par::Schedule::Static;
  if (args.get("schedule") == "guided") schedule = par::Schedule::Guided;

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  Table measured({"threads", "seconds", "pairs/s", "speedup", "efficiency"});
  double t1 = 0.0;
  double single_thread_rate = 0.0;
  for (const int threads : thread_counts) {
    par::ThreadPool pool(threads);
    const EngineStats stats = bench::timed_pass(
        fixture.engine(), pool, bench::engine_config(threads, 32, schedule));
    if (threads == 1) {
      t1 = stats.seconds;
      single_thread_rate =
          static_cast<double>(stats.pairs_computed) / stats.seconds;
    }
    const double speedup = t1 / stats.seconds;
    measured.add_row(
        {std::to_string(threads), strprintf("%.3f", stats.seconds),
         bench::rate_str(static_cast<double>(stats.pairs_computed) /
                         stats.seconds),
         strprintf("%.2fx", speedup),
         strprintf("%.0f%%", 100.0 * speedup / threads)});
  }
  std::printf("measured on this host (schedule: %s):\n",
              par::schedule_name(schedule));
  measured.print();

  // Scheduling-policy ablation at a fixed thread count: dynamic scheduling
  // is the paper's choice because edge tiles and cache effects make tile
  // cost non-uniform; static suffers when costs skew, guided splits the
  // difference.
  {
    Table sched_table({"schedule", "seconds", "pairs/s"});
    const int sched_threads = std::min(4, max_threads);
    par::ThreadPool pool(sched_threads);
    for (const par::Schedule s : {par::Schedule::Static, par::Schedule::Dynamic,
                                  par::Schedule::Guided}) {
      const EngineStats stats = bench::timed_pass(
          fixture.engine(), pool, bench::engine_config(sched_threads, 32, s));
      sched_table.add_row({par::schedule_name(s),
                           strprintf("%.3f", stats.seconds),
                           bench::rate_str(
                               static_cast<double>(stats.pairs_computed) /
                               stats.seconds)});
    }
    std::printf("\nschedule ablation (%d threads, T=32):\n", sched_threads);
    sched_table.print();
  }

  // Team mode (the Phi's threads-of-a-core cooperating on one tile). On a
  // machine with private-cache pressure the teamed variant wins by sharing
  // a tile's gene blocks; measured here for structural comparison.
  {
    Table teamed({"threads", "team size", "seconds", "pairs/s"});
    const int team_threads = std::max(4, max_threads);
    par::ThreadPool pool(team_threads);
    for (const int team_size : {1, 2, 4}) {
      if (team_threads % team_size != 0) continue;
      TingeConfig config = bench::engine_config(team_threads, 32);
      config.team_size = team_size;
      const EngineStats stats =
          bench::timed_pass(fixture.engine(), pool, config);
      teamed.add_row({std::to_string(team_threads), std::to_string(team_size),
                      strprintf("%.3f", stats.seconds),
                      bench::rate_str(
                          static_cast<double>(stats.pairs_computed) /
                          stats.seconds)});
    }
    std::printf("\nteam mode (one tile per team, pairs split among members):\n");
    teamed.print();
  }

  // ---- modeled panels for the paper's machines ---------------------------
  const double measured_gflops = single_thread_rate *
                                 MiWorkload{1, m, 3, 10}.flops();
  const PerfModel model(host_device(), measured_gflops / 1e9);
  const MiWorkload workload = MiWorkload::all_pairs(n, m, 3, 10);

  const auto print_modeled = [&](const DeviceSpec& spec,
                                 const std::vector<int>& threads) {
    Table modeled({"threads", "seconds", "speedup"});
    const double base = model.predict_seconds(spec, workload, 1);
    for (const int t : threads) {
      const double seconds = model.predict_seconds(spec, workload, t);
      modeled.add_row({std::to_string(t), strprintf("%.4f", seconds),
                       strprintf("%.1fx", base / seconds)});
    }
    std::printf("\nmodeled: %s (calibrated eff=%.1f%% of peak)\n",
                spec.name.c_str(), 100.0 * model.efficiency());
    modeled.print();
  };
  print_modeled(dual_xeon_e5_2670(), {1, 2, 4, 8, 16, 32});
  print_modeled(xeon_phi_5110p(), {1, 15, 30, 60, 120, 180, 240});

  std::printf(
      "\nPaper shape to compare: near-linear scaling to the core count;\n"
      "on the Phi, throughput keeps growing from 60 to 120 threads (the\n"
      "in-order core needs 2 threads to saturate its VPU) and flattens\n"
      "from 120 to 240.\n");
  return 0;
}
