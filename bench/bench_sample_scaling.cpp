// Experiment F4 [reconstructed]: runtime vs number of experiments (m) at
// fixed n. Per-pair work is m * k^2 accumulate FMAs plus an m-independent
// entropy pass, so time grows linearly in m with a constant offset — the
// offset is visible at small m, the slope dominates at microarray-compendium
// sizes.
#include "bench_common.h"
#include "core/mi_engine.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes in the test matrix", "256");
  args.add("max-samples", "largest sample count in the sweep", "4096");
  args.add("threads", "threads to run with", "0");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto max_m = static_cast<std::size_t>(args.get_int("max-samples"));
  int threads = static_cast<int>(args.get_int("threads"));
  if (threads <= 0) threads = par::detect_host_topology().total_threads();

  bench::print_header(
      "F4: runtime vs number of experiments (fixed n)",
      strprintf("n=%zu genes (%zu pairs), %d threads; expect t ~ a + b*m", n,
                n * (n - 1) / 2, threads));

  par::ThreadPool pool(threads);
  Table table({"m", "seconds", "pairs/s", "ns/cell", "t/t_prev", "m ratio"});
  double previous_seconds = 0.0;
  std::size_t previous_m = 0;
  for (std::size_t m = max_m / 16; m <= max_m; m *= 2) {
    const bench::EngineFixture fixture(n, m);
    const EngineStats stats = bench::timed_pass(
        fixture.engine(), pool, bench::engine_config(threads));
    std::string growth = "-", expected = "-";
    if (previous_m != 0) {
      growth = strprintf("%.2fx", stats.seconds / previous_seconds);
      expected = strprintf("%.2fx", static_cast<double>(m) /
                                        static_cast<double>(previous_m));
    }
    const double cells = static_cast<double>(stats.pairs_computed) *
                         static_cast<double>(m);
    table.add_row({std::to_string(m), strprintf("%.3f", stats.seconds),
                   bench::rate_str(static_cast<double>(stats.pairs_computed) /
                                   stats.seconds),
                   strprintf("%.2f", stats.seconds / cells * 1e9), growth,
                   expected});
    previous_seconds = stats.seconds;
    previous_m = m;
  }
  table.print();
  std::printf(
      "\nPaper shape to compare: t/t_prev approaches the m ratio as m grows\n"
      "(the entropy pass is amortized); ns/cell converges to a constant.\n");
  return 0;
}
