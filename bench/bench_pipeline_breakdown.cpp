// Experiment T1 [reconstructed]: per-stage time breakdown of one full
// network construction — the table that shows the O(n^2) MI pass dominating
// and preprocessing/null-building amortized to noise, which is what makes
// the paper's kernel-level optimization effort worthwhile.
#include "bench_common.h"
#include "core/network_builder.h"
#include "obs/trace.h"
#include "util/args.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  args.add("genes", "genes to simulate", "400");
  args.add("samples", "experiments per gene", "512");
  args.add("permutations", "null-distribution draws", "2000");
  args.add("alpha", "significance level", "0.001");
  args.add_flag("dpi", "apply the DPI post-processing stage");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  bench::print_header(
      "T1: pipeline stage breakdown",
      strprintf("synthetic GRN dataset, %zu genes x %zu samples", n, m));

  const SyntheticDataset dataset = bench::accuracy_dataset(n, m);

  TingeConfig config;
  config.permutations = static_cast<std::size_t>(args.get_int("permutations"));
  config.alpha = args.get_double("alpha");
  config.apply_dpi = args.get_flag("dpi");
  NetworkBuilder builder(config);
  const BuildResult result = builder.build(dataset.expression);

  // The rows come straight from the run's trace tree: one row per stage
  // span, sub-spans (preprocess children) indented under their parent.
  const obs::SpanNode& root = result.trace->root();
  Table table({"stage", "seconds", "share"});
  const auto share = [&](double t) {
    return strprintf("%.1f%%", 100.0 * t / root.seconds);
  };
  for (const auto& stage : root.children) {
    table.add_row({stage->name, strprintf("%.3f", stage->seconds),
                   share(stage->seconds)});
    for (const auto& child : stage->children) {
      table.add_row({"  " + child->name, strprintf("%.3f", child->seconds),
                     share(child->seconds)});
    }
  }
  table.add_row({"total", strprintf("%.3f", root.seconds), "100%"});
  table.print();

  std::printf("\nthreshold I_alpha = %.5f nats (H_marginal = %.4f)\n",
              result.threshold, result.marginal_entropy);
  std::printf("edges kept: %zu of %zu pairs (%.3f%%)\n",
              result.network.n_edges(), result.engine.pairs_computed,
              100.0 * static_cast<double>(result.network.n_edges()) /
                  static_cast<double>(result.engine.pairs_computed));
  std::printf(
      "\nPaper shape to compare: the MI pass owns the overwhelming share at\n"
      "whole-genome n; the null is O(q*m), independent of n, so its share\n"
      "vanishes as n grows.\n");
  return 0;
}
