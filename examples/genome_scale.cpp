// The Arabidopsis-shaped scenario: construct a whole-genome-scale network
// from a large synthetic microarray compendium with every optimization the
// library has (shared weight table, universal null, tiled dynamic-scheduled
// SIMD engine), reporting per-stage progress the way a production run would.
//
// Default size is container-friendly; the paper's full scale is
//   genome_scale --genes=15575 --samples=3137
#include <cstdio>

#include "core/network_builder.h"
#include "graph/analysis.h"
#include "graph/graph_io.h"
#include "graph/metrics.h"
#include "simd/feature.h"
#include "synth/expression.h"
#include "util/args.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  args.add("genes", "genes in the compendium", "2000");
  args.add("samples", "microarray experiments", "512");
  args.add("alpha", "significance level", "0.0001");
  args.add("threads", "threads (0 = all)", "0");
  args.add("out", "edge-list output path", "genome_network.tsv");
  args.add_flag("dpi", "apply DPI indirect-edge filtering");
  args.add_flag("help", "show usage");
  args.parse(argc, argv);
  if (args.get_flag("help")) {
    std::fputs(args.usage("genome_scale",
                          "Whole-genome-scale network construction demo.")
                   .c_str(),
               stdout);
    return 0;
  }

  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));
  std::printf("genome_scale: %zu genes x %zu experiments\n", n, m);
  std::printf("simd: %s\n\n", simd::isa_report().c_str());

  std::printf("generating synthetic compendium (scale-free GRN, tanh "
              "response, 1%% missing spots)...\n");
  Stopwatch gen_watch;
  GrnParams grn;
  grn.n_genes = n;
  grn.mean_regulators = 2.0;
  ExpressionParams arrays;
  arrays.n_samples = m;
  arrays.noise_sd = 0.8;
  arrays.missing_fraction = 0.01;
  SyntheticDataset dataset = make_synthetic_dataset(grn, arrays);
  std::printf("  done in %s (%zu true regulatory edges)\n\n",
              format_duration(gen_watch.seconds()).c_str(),
              dataset.grn.edges.size());

  TingeConfig config;
  config.alpha = args.get_double("alpha");
  config.permutations = 5000;
  config.threads = static_cast<int>(args.get_int("threads"));
  config.apply_dpi = args.get_flag("dpi");
  NetworkBuilder builder(config);
  builder.set_logger([](std::string_view message) {
    std::printf("  %.*s\n", static_cast<int>(message.size()), message.data());
  });

  std::printf("constructing network...\n");
  const GeneNetwork truth = std::move(dataset.truth);
  const BuildResult result = builder.build(std::move(dataset.expression));

  std::printf("\nstage times: preprocess %s | table %s | null %s | mi %s",
              format_duration(result.times.preprocess).c_str(),
              format_duration(result.times.weight_table).c_str(),
              format_duration(result.times.null_build).c_str(),
              format_duration(result.times.mi_pass).c_str());
  if (config.apply_dpi)
    std::printf(" | dpi %s", format_duration(result.times.dpi).c_str());
  std::printf(" | total %s\n", format_duration(result.times.total).c_str());
  std::printf("MI throughput: %.2fM pair-cells/s\n",
              result.engine.cell_rate(m) / 1e6);

  // Because the compendium is synthetic we can also score the result —
  // something the paper could not do for Arabidopsis.
  const Confusion confusion = compare_networks(result.network, truth);
  std::printf("\nrecovery vs planted GRN: precision %.3f, recall %.3f "
              "(%zu edges, %zu true)\n",
              confusion.precision(), confusion.recall(),
              result.network.n_edges(), truth.n_edges());

  // Structural characterization — the kind of summary the paper gives for
  // its Arabidopsis network.
  std::printf("\nnetwork structure:\n%s",
              to_string(summarize_network(result.network)).c_str());
  std::printf("top hubs:");
  for (const HubInfo& hub : top_hubs(result.network, 5))
    std::printf(" %s(%zu)", hub.name.c_str(), hub.degree);
  std::printf("\n");

  write_edge_list_file(result.network, args.get("out"));
  std::printf("network written to %s\n", args.get("out").c_str());
  return 0;
}
