// tinge_serve: the resident query daemon over one dataset.
//
// Loads (or synthesizes) an expression matrix once, runs the same pipeline
// stages as tinge_cli — impute, filter, rank, weight table, permutation
// null, thresholded MI sweep — and then, instead of writing an edge list
// and exiting, keeps everything resident and serves queries over framed
// TCP on loopback: on-demand MI(x, y) for any estimator, neighborhood /
// top-k / subgraph extraction, live metrics, and sweep-job submissions
// with streamed progress. See examples/tinge_client.cpp for the matching
// client. With --checkpoint the network build journals its tiles and the
// journal is kept, so restarting the daemon restores the network from it
// instead of recomputing.
//
//   tinge_serve --synthetic=200 --permutations=500 --port-file=/tmp/serve.port
//   tinge_client --port-file=/tmp/serve.port --query=mi --pairs=3:10,5:7

#include <cstdio>

#include "cli_common.h"
#include "cluster/serve_server.h"
#include "util/contracts.h"

using namespace tinge;

int main(int argc, char** argv) {
  ArgParser args;
  cli::add_dataset_options(args);
  cli::add_pipeline_options(args);
  args.add("port", "TCP port to listen on (0 = ephemeral)", "0");
  args.add("port-file",
           "publish the bound port here (rendezvous format: '<port> "
           "<nonce>')");
  args.add("nonce", "run nonce stamped into the port file (0 = unstamped)",
           "0");
  args.add("flush-ms",
           "pair-query batch window: queries arriving within this many "
           "milliseconds of the first coalesce into one planner sweep",
           "2");
  args.add("cache-mb", "tile-cache budget in MiB (0 disables caching)", "64");
  args.add("dataset-id", "dataset identity baked into tile-cache keys",
           "default");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }

  try {
    ExpressionMatrix expression = cli::load_dataset(args, /*quiet=*/false);
    const TingeConfig config = cli::config_from_args(args);

    cluster::ServeOptions options;
    options.port = static_cast<int>(args.get_int("port"));
    if (args.has("port-file")) options.port_file = args.get("port-file");
    options.run_nonce = static_cast<std::uint64_t>(args.get_int("nonce"));
    options.flush_deadline_ms = args.get_double("flush-ms");
    options.cache_bytes =
        static_cast<std::size_t>(args.get_int("cache-mb")) << 20;
    options.dataset_id = args.get("dataset-id");

    std::printf("building network (%zu genes x %zu samples)...\n",
                expression.n_genes(), expression.n_samples());
    cluster::ServeState state(std::move(expression), config, options);
    const EngineStats& build = state.build_stats();
    std::printf(
        "network ready: %zu edges, threshold %.5f nats, kernel=%s "
        "(%zu/%zu tiles restored from checkpoint)\n",
        state.network().n_edges(), state.threshold(), build.kernel,
        build.tiles_resumed, build.tiles);

    cluster::ServeServer server(state, options);
    std::printf("serving on 127.0.0.1:%d (cache %zu MiB, flush %.1f ms)\n",
                server.port(), options.cache_bytes >> 20,
                options.flush_deadline_ms);
    std::fflush(stdout);
    server.wait();
    server.stop();
    std::printf("shutdown: %zu clients served\n", server.clients_served());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tinge_serve: %s\n", error.what());
    return 1;
  }
  return 0;
}
