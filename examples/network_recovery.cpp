// Network recovery study: generate a GRN with known ground truth, infer
// networks with the B-spline MI pipeline and the baseline estimators, and
// compare precision/recall/AUPR — including the effect of DPI filtering.
//
// The baselines go through the same PairStatistic lattice the pipeline
// uses (--estimator=...), so this doubles as a smoke test that every
// estimator kind scores the same dataset through MiEngine.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/mi_engine.h"
#include "core/network_builder.h"
#include "core/pair_statistic.h"
#include "graph/metrics.h"
#include "parallel/thread_pool.h"
#include "preprocess/rank_transform.h"
#include "synth/expression.h"
#include "util/args.h"
#include "util/str.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  args.add("genes", "genes in the GRN", "120");
  args.add("samples", "microarray experiments", "400");
  args.add("alpha", "significance level", "0.001");
  args.parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  GrnParams grn;
  grn.n_genes = n;
  grn.mean_regulators = 1.5;
  ExpressionParams arrays;
  arrays.n_samples = m;
  arrays.noise_sd = 1.0;
  // 35% of edges respond non-monotonically (dosage-style): informative for
  // MI, nearly invisible to Pearson/Spearman.
  arrays.nonmonotone_fraction = 0.35;
  const SyntheticDataset dataset = make_synthetic_dataset(grn, arrays);
  const double chance = static_cast<double>(dataset.truth.n_edges()) /
                        static_cast<double>(n * (n - 1) / 2);

  std::printf("network_recovery: %zu genes x %zu samples, %zu true edges "
              "(chance AUPR %.4f)\n\n",
              n, m, dataset.truth.n_edges(), chance);

  Table table({"method", "edges", "precision", "recall", "F1", "AUPR", "AUROC"});
  const auto score = [&](const std::string& name, const GeneNetwork& network) {
    const Confusion c = compare_networks(network, dataset.truth);
    table.add_row({name, std::to_string(network.n_edges()),
                   strprintf("%.3f", c.precision()),
                   strprintf("%.3f", c.recall()), strprintf("%.3f", c.f1()),
                   strprintf("%.4f", average_precision(network, dataset.truth)),
                   strprintf("%.3f", auroc(network, dataset.truth))});
  };

  // 1. Full pipeline, no DPI.
  TingeConfig config;
  config.alpha = args.get_double("alpha");
  config.permutations = 3000;
  score("B-spline MI + permutation test",
        NetworkBuilder(config).build(dataset.expression).network);

  // 2. Full pipeline with DPI.
  config.apply_dpi = true;
  config.dpi_tolerance = 0.15;
  score("  + DPI filtering",
        NetworkBuilder(config).build(dataset.expression).network);

  // 3. Baseline estimators thresholded to the same edge budget as (1).
  // Each goes through the estimator lattice — the same selection the
  // pipeline exposes as --estimator=... — instead of ad-hoc scoring code.
  config.apply_dpi = false;
  const std::size_t budget =
      NetworkBuilder(config).build(dataset.expression).network.n_edges();
  const RankedMatrix ranked(dataset.expression);
  par::ThreadPool& pool = par::ThreadPool::global();
  const auto estimator_network = [&](EstimatorKind kind) {
    TingeConfig member = config;
    member.estimator = kind;
    const std::unique_ptr<PairStatistic> statistic =
        make_pair_statistic(member, ranked, &dataset.expression);
    const GeneNetwork network =
        MiEngine(*statistic, ranked).compute_network(0.0, member, pool);
    // Keep the strongest `budget` edges for a like-for-like comparison.
    std::vector<Edge> edges(network.edges().begin(), network.edges().end());
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
    if (edges.size() > budget) edges.resize(budget);
    GeneNetwork top(dataset.expression.gene_names());
    for (const Edge& e : edges) top.add_edge(e.u, e.v, e.weight);
    top.finalize();
    return top;
  };
  for (const EstimatorKind kind :
       {EstimatorKind::Histogram, EstimatorKind::Pearson,
        EstimatorKind::Spearman, EstimatorKind::Phi}) {
    score(strprintf("%s (same edge budget)", estimator_name(kind)),
          estimator_network(kind));
  }

  table.print();
  std::printf(
      "\nReading: MI matches the monotone baselines where they are strong\n"
      "and wins where the tanh regulatory response bends relationships out\n"
      "of the linear regime; DPI trades recall for precision by removing\n"
      "indirect (distance-2) edges.\n");
  return 0;
}
