// Network recovery study: generate a GRN with known ground truth, infer
// networks with the B-spline MI pipeline and the baseline estimators, and
// compare precision/recall/AUPR — including the effect of DPI filtering.
#include <cmath>
#include <cstdio>

#include "core/network_builder.h"
#include "graph/metrics.h"
#include "mi/correlation.h"
#include "synth/expression.h"
#include "util/args.h"
#include "util/str.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  args.add("genes", "genes in the GRN", "120");
  args.add("samples", "microarray experiments", "400");
  args.add("alpha", "significance level", "0.001");
  args.parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  GrnParams grn;
  grn.n_genes = n;
  grn.mean_regulators = 1.5;
  ExpressionParams arrays;
  arrays.n_samples = m;
  arrays.noise_sd = 1.0;
  // 35% of edges respond non-monotonically (dosage-style): informative for
  // MI, nearly invisible to Pearson/Spearman.
  arrays.nonmonotone_fraction = 0.35;
  const SyntheticDataset dataset = make_synthetic_dataset(grn, arrays);
  const double chance = static_cast<double>(dataset.truth.n_edges()) /
                        static_cast<double>(n * (n - 1) / 2);

  std::printf("network_recovery: %zu genes x %zu samples, %zu true edges "
              "(chance AUPR %.4f)\n\n",
              n, m, dataset.truth.n_edges(), chance);

  Table table({"method", "edges", "precision", "recall", "F1", "AUPR", "AUROC"});
  const auto score = [&](const char* name, const GeneNetwork& network) {
    const Confusion c = compare_networks(network, dataset.truth);
    table.add_row({name, std::to_string(network.n_edges()),
                   strprintf("%.3f", c.precision()),
                   strprintf("%.3f", c.recall()), strprintf("%.3f", c.f1()),
                   strprintf("%.4f", average_precision(network, dataset.truth)),
                   strprintf("%.3f", auroc(network, dataset.truth))});
  };

  // 1. Full pipeline, no DPI.
  TingeConfig config;
  config.alpha = args.get_double("alpha");
  config.permutations = 3000;
  score("B-spline MI + permutation test",
        NetworkBuilder(config).build(dataset.expression).network);

  // 2. Full pipeline with DPI.
  config.apply_dpi = true;
  config.dpi_tolerance = 0.15;
  score("  + DPI filtering",
        NetworkBuilder(config).build(dataset.expression).network);

  // 3. Correlation baselines thresholded to the same edge budget as (1).
  config.apply_dpi = false;
  const std::size_t budget =
      NetworkBuilder(config).build(dataset.expression).network.n_edges();
  const auto correlation_network = [&](bool spearman) {
    GeneNetwork network(dataset.expression.gene_names());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double r =
            spearman ? spearman_correlation(dataset.expression.row(i),
                                            dataset.expression.row(j))
                     : pearson_correlation(dataset.expression.row(i),
                                           dataset.expression.row(j));
        network.add_edge(static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j),
                         static_cast<float>(std::fabs(r)));
      }
    }
    network.finalize();
    // Keep the strongest `budget` edges for a like-for-like comparison.
    std::vector<Edge> edges(network.edges().begin(), network.edges().end());
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
    if (edges.size() > budget) edges.resize(budget);
    GeneNetwork top(dataset.expression.gene_names());
    for (const Edge& e : edges) top.add_edge(e.u, e.v, e.weight);
    top.finalize();
    return top;
  };
  score("|Pearson| (same edge budget)", correlation_network(false));
  score("|Spearman| (same edge budget)", correlation_network(true));

  table.print();
  std::printf(
      "\nReading: MI matches the monotone baselines where they are strong\n"
      "and wins where the tanh regulatory response bends relationships out\n"
      "of the linear regime; DPI trades recall for precision by removing\n"
      "indirect (distance-2) edges.\n");
  return 0;
}
