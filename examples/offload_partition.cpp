// Host/coprocessor partitioning demo.
//
// Shows the device-model workflow end to end: measure the real kernel on
// this host, calibrate the model, and plan a heterogeneous split of a
// whole-genome workload between the paper's dual-Xeon host and a Xeon Phi,
// the configuration the TINGe lineage targets. The coprocessor side is
// modeled (no Phi exists to run on); the partition arithmetic is the part
// that transfers to any heterogeneous deployment.
#include <cstdio>

#include "device/offload.h"
#include "device/perf_model.h"
#include "mi/bspline_mi.h"
#include "preprocess/rank_transform.h"
#include "stats/rng.h"
#include "util/args.h"
#include "util/str.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  args.add("genes", "genes in the planned workload", "15575");
  args.add("samples", "experiments per gene", "3137");
  args.parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("genes"));
  const auto m = static_cast<std::size_t>(args.get_int("samples"));

  // --- 1. measure the actual kernel on this machine (single thread) -------
  std::printf("calibrating: timing the real MI kernel on this host...\n");
  const std::size_t cal_m = 1024;
  ExpressionMatrix matrix(32, cal_m);
  Xoshiro256 rng(1);
  for (std::size_t g = 0; g < 32; ++g)
    for (std::size_t s = 0; s < cal_m; ++s)
      matrix.at(g, s) = static_cast<float>(rng.normal());
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(10, 3, cal_m);
  JointHistogram scratch = estimator.make_scratch();
  Stopwatch watch;
  std::size_t pairs = 0;
  double sink = 0.0;
  while (watch.seconds() < 0.5) {
    for (std::size_t i = 0; i + 1 < 32; ++i) {
      sink += estimator.mi(ranked.ranks(i), ranked.ranks(i + 1), scratch);
      ++pairs;
    }
  }
  if (sink == 9e99) std::printf("?");
  const MiWorkload per_pair{1, cal_m, 3, 10};
  const double gflops =
      static_cast<double>(pairs) * per_pair.flops() / watch.seconds() / 1e9;
  std::printf("  measured %.2f GFLOP/s single-thread\n\n", gflops);

  // --- 2. calibrate and plan ------------------------------------------------
  const PerfModel model(host_device(), gflops);
  const DeviceSpec xeon = dual_xeon_e5_2670();
  const DeviceSpec phi = xeon_phi_5110p();
  const MiWorkload workload = MiWorkload::all_pairs(n, m, 3, 10);

  std::printf("planning: all-pairs MI over %zu genes x %zu samples\n", n, m);
  std::printf("kernel efficiency carried to the models: %.1f%% of peak\n\n",
              100.0 * model.efficiency());

  Table table({"configuration", "time", "speedup vs host"});
  const double host_only = model.predict_seconds(xeon, workload, 32);
  table.add_row({"2x Xeon E5-2670 alone (32 thr)",
                 format_duration(host_only), "1.00x"});
  const double phi_only = model.predict_seconds(phi, workload, 240);
  table.add_row({"Xeon Phi 5110P alone (240 thr)", format_duration(phi_only),
                 strprintf("%.2fx", host_only / phi_only)});
  const OffloadPlan plan = plan_offload(model, xeon, 32, phi, workload);
  table.add_row({"heterogeneous (host + Phi)",
                 format_duration(plan.combined_seconds),
                 strprintf("%.2fx", plan.speedup_vs_host)});
  table.print();

  std::printf(
      "\npartition: keep %.1f%% of the pair tiles on the host, offload "
      "%.1f%%\n(both sides finish together: host %s, coprocessor %s)\n",
      100.0 * plan.host_fraction, 100.0 * plan.device_fraction,
      format_duration(plan.host_seconds).c_str(),
      format_duration(plan.device_seconds).c_str());
  std::printf(
      "\nnote: coprocessor times come from the calibrated analytic model\n"
      "(DESIGN.md section 2) — the hardware is discontinued; the partition\n"
      "logic itself is exactly what a real offload runtime would use.\n");
  return 0;
}
