// tinge_cli — production-style command line for the full pipeline:
//
//   tinge_cli --in=expression.tsv --out=network.tsv [options]
//   tinge_cli --synthetic=500 --out=network.tsv           (demo without data)
//   tinge_cli --synthetic=500 --cluster=4 --transport=tcp (sharded run)
//
// Reads a TSV expression matrix (genes x experiments, NA for missing),
// constructs the mutual-information network with permutation-test
// thresholding, and writes a weighted edge list (and optionally SIF).
//
// With --cluster=N the pipeline runs sharded over N ranks using the
// TINGe-classic ring sweep: --transport=inproc executes the ranks as
// threads in this process, --transport=tcp spawns N tinge_worker
// processes that rendezvous over localhost sockets. Both produce the
// same network as the single-process engine for the same inputs.
#include <cstdio>

#include "cli_common.h"
#include "cluster/faulty_transport.h"
#include "cluster/launcher.h"
#include "cluster/sharded_pipeline.h"
#include "core/network_builder.h"
#include "core/run_manifest.h"
#include "graph/graph_io.h"
#include "simd/feature.h"
#include "util/args.h"

namespace {

/// Sharded run over in-process rank-threads: same process, simulated
/// network, identical result.
int run_cluster_inproc(const tinge::ArgParser& args,
                       const tinge::TingeConfig& config,
                       const tinge::ExpressionMatrix& expression) {
  using namespace tinge;
  cluster::TransportOptions options;
  options.recv_timeout_seconds = args.get_double("recv-timeout");
  const auto cluster = cluster::make_cluster(cluster::TransportKind::InProcess,
                                             config.cluster_ranks, options);
  // Fault injection on the in-process backend always throws (mode=exit
  // would _exit the whole process, ranks and caller alike).
  cluster::FaultPlan fault;
  if (args.has("fault")) {
    fault = cluster::parse_fault_plan(args.get("fault"));
    fault.kill_mode = cluster::KillMode::Throw;
    cluster::resolve_kill_fraction(fault, config.cluster_ranks);
  }
  cluster::ShardedBuildResult result;
  bool have_result = false;
  try {
    cluster->run([&](cluster::Comm& comm) {
      cluster::FaultyTransport faulty(comm.transport(), fault);
      cluster::Comm endpoint =
          args.has("fault") ? cluster::Comm(faulty) : comm;
      cluster::ShardedBuildResult local =
          cluster::sharded_build(endpoint, expression, config);
      if (comm.rank() == 0) {
        result = std::move(local);
        have_result = true;
      }
    });
  } catch (const std::runtime_error&) {
    // Under lease balancing a worker's injected death is survivable: rank 0
    // reclaims its leases, finishes the sweep and carries the result out.
    // Cluster::run still rethrows the victim's InjectedFault (or a peer's
    // PeerFailureError) after every rank thread has joined — swallow it
    // when rank 0 delivered. A dead rank 0 (no result) stays fatal, and
    // static mode keeps its fail-stop semantics either way.
    if (config.cluster_balance != "lease" || !have_result) throw;
  }

  cli::write_network_outputs(args, result.network, result.null);
  if (args.has("metrics-out"))
    cluster::write_cluster_run_manifest(result, config,
                                        args.get("metrics-out"));
  if (!args.get_flag("quiet")) {
    std::printf(
        "done (cluster inproc, %d ranks): %zu genes, %zu edges, threshold "
        "%.5f nats, %.2f s total\n",
        config.cluster_ranks, result.genes_used, result.network.n_edges(),
        result.threshold, result.seconds);
    std::printf("cluster traffic: %llu bytes in %llu messages, imbalance "
                "%.2f\n",
                static_cast<unsigned long long>(
                    result.cluster.bytes_transferred),
                static_cast<unsigned long long>(result.cluster.messages),
                result.cluster.imbalance());
    std::printf("network written to %s\n", args.get("out").c_str());
  }
  return 0;
}

/// Single-quotes a word for a copy-pasteable shell command line.
std::string shell_quote(const std::string& word) {
  if (!word.empty() &&
      word.find_first_of(" \t\n'\"\\$`&|;<>()*?[]{}~#") == std::string::npos)
    return word;
  std::string quoted = "'";
  for (const char c : word)
    if (c == '\'')
      quoted += "'\\''";
    else
      quoted += c;
  quoted += "'";
  return quoted;
}

/// The command line that reruns this invocation without the injected fault:
/// checkpointed tiles replay from the journal, the rest recompute, and the
/// pipeline is deterministic, so the rerun's outputs are byte-identical to
/// what the faulted run would have produced.
std::string resume_command_line(int argc, const char* const* argv) {
  std::string command = shell_quote(argv[0]);
  for (const std::string& arg :
       tinge::cli::forward_args(argc, argv, {"fault"})) {
    command += ' ';
    command += shell_quote(arg);
  }
  return command;
}

/// Sharded run over real worker processes: spawn N tinge_worker siblings,
/// hand them this invocation's options and a fresh rendezvous directory.
int run_cluster_tcp(const tinge::ArgParser& args,
                    const tinge::TingeConfig& config, int argc,
                    const char* const* argv) {
  using namespace tinge;
  const std::string worker =
      cluster::sibling_binary_path(argv[0], "tinge_worker");
  // The workers re-parse this invocation minus the dispatch options (the
  // launcher appends their per-rank identity).
  std::vector<std::string> worker_args =
      cli::forward_args(argc, argv, {"cluster", "transport"});
  worker_args.push_back("--transport=tcp");
  const std::string rendezvous = cluster::make_rendezvous_dir();
  if (!args.get_flag("quiet"))
    std::printf("cluster tcp: launching %d x %s\n", config.cluster_ranks,
                worker.c_str());
  std::vector<cluster::WorkerExit> exits;
  try {
    exits = cluster::launch_workers(worker, worker_args, config.cluster_ranks,
                                    rendezvous);
  } catch (...) {
    cluster::remove_rendezvous_dir(rendezvous);
    throw;
  }
  cluster::remove_rendezvous_dir(rendezvous);
  if (!cluster::all_workers_succeeded(exits)) {
    // Attribute the failure: the first worker reaped with a bad status is
    // almost always the root cause — everything after it died of peer
    // failure or teardown.
    for (const cluster::WorkerExit& exit : exits)
      if (exit.failed())
        std::fprintf(stderr, "error: worker rank %d %s\n", exit.rank,
                     cluster::describe_worker_exit(exit).c_str());
    const cluster::WorkerExit* first = cluster::first_failure(exits);
    const std::string resume = resume_command_line(argc, argv);
    if (first != nullptr)
      std::fprintf(stderr,
                   "error: cluster run failed: rank %d failed first (%s); "
                   "the other ranks died of peer failure or teardown\n",
                   first->rank,
                   cluster::describe_worker_exit(*first).c_str());
    std::fprintf(stderr,
                 "to rerun (checkpointed tiles replay from the journal; the "
                 "result is byte-identical):\n  %s\n",
                 resume.c_str());
    if (args.has("metrics-out"))
      cluster::write_cluster_failure_manifest(config, exits, resume,
                                              args.get("metrics-out"));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  cli::add_dataset_options(args);
  args.add("out", "output edge list path", "network.tsv");
  args.add("sif", "also write a Cytoscape SIF file to this path");
  cli::add_pipeline_options(args);
  {
    const TingeConfig defaults;
    args.add("cluster",
             "run sharded over N ranks (0 = single-process engine)",
             strprintf("%d", defaults.cluster_ranks));
    args.add("transport", "cluster transport: inproc|tcp",
             defaults.cluster_transport);
  }
  args.add("recv-timeout",
           "cluster runs: seconds a recv/barrier may wait before the peer "
           "is declared dead (0 = wait forever)",
           "300");
  args.add("fault",
           "cluster runs: fault-injection plan, e.g. "
           "rank=1,kill-at=0.5,mode=exit (testing only)");
  args.add("metrics-out", "write a JSON run manifest (stages, metrics) here");
  args.add_flag("trace", "print the per-stage trace tree to stderr");
  args.add_flag("describe", "print a dataset summary and exit (no inference)");
  args.add_flag("pvalues", "append a null-p-value column to the edge list");
  args.add_flag("quiet", "suppress progress output");
  args.add_flag("help", "show this help");

  try {
    args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  if (args.get_flag("help")) {
    std::fputs(
        args.usage("tinge_cli",
                   "Mutual-information gene network construction (TINGe "
                   "pipeline, IPDPS 2014 reproduction).")
            .c_str(),
        stdout);
    return 0;
  }

  try {
    // ---- configure (before load: flag errors should fail fast) ------------
    TingeConfig config = cli::config_from_args(args);
    config.cluster_ranks = static_cast<int>(args.get_int("cluster"));
    config.cluster_transport = args.get("transport");
    config.validate();

    // The TCP path never loads data here — the workers load it themselves
    // (--describe still runs locally; it does no inference).
    if (config.cluster_ranks > 0 && config.cluster_transport == "tcp" &&
        !args.get_flag("describe"))
      return run_cluster_tcp(args, config, argc, argv);

    // ---- load ---------------------------------------------------------------
    ExpressionMatrix expression =
        cli::load_dataset(args, args.get_flag("quiet"));

    if (args.get_flag("describe")) {
      std::printf("dataset: %zu genes x %zu samples\n", expression.n_genes(),
                  expression.n_samples());
      const std::size_t missing = expression.count_missing();
      std::printf("missing spots: %zu (%.3f%%)\n", missing,
                  expression.n_genes() * expression.n_samples() > 0
                      ? 100.0 * static_cast<double>(missing) /
                            static_cast<double>(expression.n_genes() *
                                                 expression.n_samples())
                      : 0.0);
      const FilterResult filtered =
          filter_genes(expression, TingeConfig{}.filter);
      std::printf("usable genes at default filters: %zu (%zu low-variance, "
                  "%zu too-missing)\n",
                  filtered.matrix.n_genes(), filtered.dropped_low_variance,
                  filtered.dropped_missing);
      std::printf("suggested bins for m=%zu: %d\n", expression.n_samples(),
                  suggest_bins(std::max<std::size_t>(expression.n_samples(), 2)));
      return 0;
    }

    if (config.cluster_ranks > 0)
      return run_cluster_inproc(args, config, expression);

    NetworkBuilder builder(config);
    if (!args.get_flag("quiet")) {
      std::printf("simd: %s\n", simd::isa_report().c_str());
      builder.set_logger([](std::string_view message) {
        std::printf("  %.*s\n", static_cast<int>(message.size()),
                    message.data());
      });
    }

    // ---- run ---------------------------------------------------------------------
    const BuildResult result = builder.build(std::move(expression));

    // ---- write ----------------------------------------------------------------
    {
      const obs::TraceSpan output_span(*result.trace, "output");
      cli::write_network_outputs(args, result.network, result.null);
    }
    result.trace->finish();  // fold the output span into the root's total

    if (args.has("metrics-out"))
      write_run_manifest(result, config, args.get("metrics-out"));
    if (args.get_flag("trace"))
      std::fputs(obs::format_trace(result.trace->root()).c_str(), stderr);

    if (!args.get_flag("quiet")) {
      std::printf(
          "done: %zu genes, %zu edges, threshold %.5f nats, %.2f s total\n",
          result.genes_used, result.network.n_edges(), result.threshold,
          result.times.total);
      if (result.consensus.resamples > 0) {
        std::printf("consensus: %zu resamples x %zu estimators, %zu of %zu "
                    "candidate edges kept (%.2f s)\n",
                    result.consensus.resamples, result.consensus.estimators,
                    result.consensus.kept_edges,
                    result.consensus.candidate_edges,
                    result.consensus.seconds);
      } else {
        std::printf("mi kernel: %s, panel width %d (%.0f pairs/s)\n",
                    result.engine.kernel, result.engine.panel_width,
                    result.engine.seconds > 0.0
                        ? static_cast<double>(result.engine.pairs_computed) /
                              result.engine.seconds
                        : 0.0);
        for (const EngineStats::LaneStats& lane : result.engine.lanes) {
          std::printf(
              "lane %s: %llu tiles, predicted %.1f%% vs measured %.1f%% "
              "(%.2f GF/s per thread)\n",
              lane.label.c_str(),
              static_cast<unsigned long long>(lane.tiles),
              100.0 * lane.predicted_fraction, 100.0 * lane.measured_fraction,
              lane.observed_gflops);
        }
      }
      std::printf("network written to %s\n", args.get("out").c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
