// tinge_cli — production-style command line for the full pipeline:
//
//   tinge_cli --in=expression.tsv --out=network.tsv [options]
//   tinge_cli --synthetic=500 --out=network.tsv           (demo without data)
//
// Reads a TSV expression matrix (genes x experiments, NA for missing),
// constructs the mutual-information network with permutation-test
// thresholding, and writes a weighted edge list (and optionally SIF).
#include <cstdio>

#include "core/network_builder.h"
#include "core/run_manifest.h"
#include "data/binary_io.h"
#include "data/series_matrix.h"
#include "data/tsv_io.h"
#include "graph/graph_io.h"
#include "simd/feature.h"
#include "synth/expression.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  args.add("in", "input expression TSV (gene rows, sample columns)");
  args.add("binary-in", "input expression matrix in TNGX binary format");
  args.add("series-matrix", "input NCBI GEO Series Matrix file");
  args.add("synthetic", "generate a synthetic dataset of N genes instead", "0");
  args.add("out", "output edge list path", "network.tsv");
  args.add("sif", "also write a Cytoscape SIF file to this path");
  args.add("bins", "B-spline histogram bins", "10");
  args.add("order", "B-spline order", "3");
  args.add("alpha", "permutation-test significance level", "0.0001");
  args.add("permutations", "null-distribution draws", "10000");
  args.add("threads", "worker threads (0 = all)", "0");
  args.add("tile", "tile size (genes per tile side)", "64");
  args.add("panel", "MI panel width B, 1-8 (0 = auto from cache footprint)",
           "0");
  args.add("kernel", "MI kernel: auto|scalar|unrolled|simd|replicated|gather512",
           "auto");
  args.add("seed", "RNG seed for the permutation null", "20140519");
  args.add("min-variance", "drop genes with variance below this", "1e-12");
  args.add("max-missing", "drop genes with more than this missing fraction",
           "0.3");
  args.add("dpi-tolerance", "DPI tolerance (with --dpi)", "0.1");
  args.add("checkpoint", "journal completed tiles here; resumes if present");
  args.add("metrics-out", "write a JSON run manifest (stages, metrics) here");
  args.add_flag("trace", "print the per-stage trace tree to stderr");
  args.add_flag("dpi", "apply DPI indirect-edge filtering");
  args.add_flag("describe", "print a dataset summary and exit (no inference)");
  args.add_flag("pvalues", "append a null-p-value column to the edge list");
  args.add_flag("quiet", "suppress progress output");
  args.add_flag("help", "show this help");

  try {
    args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  if (args.get_flag("help")) {
    std::fputs(
        args.usage("tinge_cli",
                   "Mutual-information gene network construction (TINGe "
                   "pipeline, IPDPS 2014 reproduction).")
            .c_str(),
        stdout);
    return 0;
  }

  try {
    // ---- load ---------------------------------------------------------------
    ExpressionMatrix expression;
    if (args.has("in")) {
      if (!args.get_flag("quiet"))
        std::printf("reading %s...\n", args.get("in").c_str());
      expression = read_expression_tsv_file(args.get("in"));
    } else if (args.has("binary-in")) {
      expression = read_expression_binary_file(args.get("binary-in"));
    } else if (args.has("series-matrix")) {
      SeriesMatrix series = read_series_matrix_file(args.get("series-matrix"));
      expression = std::move(series.expression);
      if (!args.get_flag("quiet")) {
        const auto title = series.metadata.find("Series_title");
        std::printf("series: %s (%zu probes x %zu samples)\n",
                    title != series.metadata.end() ? title->second.c_str()
                                                   : "untitled",
                    expression.n_genes(), expression.n_samples());
      }
    } else if (args.get_int("synthetic") > 0) {
      GrnParams grn;
      grn.n_genes = static_cast<std::size_t>(args.get_int("synthetic"));
      ExpressionParams arrays;
      arrays.n_samples = 400;
      expression = simulate_expression(generate_grn(grn), arrays);
      if (!args.get_flag("quiet"))
        std::printf("generated synthetic dataset: %zu genes x %zu samples\n",
                    expression.n_genes(), expression.n_samples());
    } else {
      std::fprintf(stderr,
                   "error: provide --in=<tsv>, --binary-in=<tngx>, --series-matrix=<txt> "
                   "or --synthetic=<genes> (see --help)\n");
      return 2;
    }

    if (args.get_flag("describe")) {
      std::printf("dataset: %zu genes x %zu samples\n", expression.n_genes(),
                  expression.n_samples());
      const std::size_t missing = expression.count_missing();
      std::printf("missing spots: %zu (%.3f%%)\n", missing,
                  expression.n_genes() * expression.n_samples() > 0
                      ? 100.0 * static_cast<double>(missing) /
                            static_cast<double>(expression.n_genes() *
                                                 expression.n_samples())
                      : 0.0);
      const FilterResult filtered =
          filter_genes(expression, TingeConfig{}.filter);
      std::printf("usable genes at default filters: %zu (%zu low-variance, "
                  "%zu too-missing)\n",
                  filtered.matrix.n_genes(), filtered.dropped_low_variance,
                  filtered.dropped_missing);
      std::printf("suggested bins for m=%zu: %d\n", expression.n_samples(),
                  suggest_bins(std::max<std::size_t>(expression.n_samples(), 2)));
      return 0;
    }

    // ---- configure ------------------------------------------------------------
    TingeConfig config;
    config.bins = static_cast<int>(args.get_int("bins"));
    config.spline_order = static_cast<int>(args.get_int("order"));
    config.alpha = args.get_double("alpha");
    config.permutations =
        static_cast<std::size_t>(args.get_int("permutations"));
    config.threads = static_cast<int>(args.get_int("threads"));
    config.tile_size = static_cast<std::size_t>(args.get_int("tile"));
    config.panel_width = static_cast<int>(args.get_int("panel"));
    {
      const std::string kernel_arg = args.get("kernel");
      bool matched = false;
      for (const MiKernel candidate :
           {MiKernel::Auto, MiKernel::Scalar, MiKernel::Unrolled,
            MiKernel::Simd, MiKernel::Replicated, MiKernel::Gather512}) {
        if (kernel_arg == kernel_name(candidate)) {
          config.kernel = candidate;
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::fprintf(stderr, "error: unknown --kernel=%s\n",
                     kernel_arg.c_str());
        return 2;
      }
    }
    config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    config.apply_dpi = args.get_flag("dpi");
    config.dpi_tolerance = args.get_double("dpi-tolerance");
    if (args.has("checkpoint")) config.checkpoint_path = args.get("checkpoint");
    config.filter.min_variance = args.get_double("min-variance");
    config.filter.max_missing_fraction = args.get_double("max-missing");

    NetworkBuilder builder(config);
    if (!args.get_flag("quiet")) {
      std::printf("simd: %s\n", simd::isa_report().c_str());
      builder.set_logger([](std::string_view message) {
        std::printf("  %.*s\n", static_cast<int>(message.size()),
                    message.data());
      });
    }

    // ---- run ---------------------------------------------------------------------
    const BuildResult result = builder.build(std::move(expression));

    // ---- write ----------------------------------------------------------------
    {
      const obs::TraceSpan output_span(*result.trace, "output");
      if (args.get_flag("pvalues")) {
        const auto null = result.null;
        write_edge_list_with_pvalues_file(
            result.network,
            [null](float mi) { return null->p_value(static_cast<double>(mi)); },
            args.get("out"));
      } else {
        write_edge_list_file(result.network, args.get("out"));
      }
      if (args.has("sif")) write_sif_file(result.network, args.get("sif"));
    }
    result.trace->finish();  // fold the output span into the root's total

    if (args.has("metrics-out"))
      write_run_manifest(result, config, args.get("metrics-out"));
    if (args.get_flag("trace"))
      std::fputs(obs::format_trace(result.trace->root()).c_str(), stderr);

    if (!args.get_flag("quiet")) {
      std::printf(
          "done: %zu genes, %zu edges, threshold %.5f nats, %.2f s total\n",
          result.genes_used, result.network.n_edges(), result.threshold,
          result.times.total);
      std::printf("mi kernel: %s, panel width %d (%.0f pairs/s)\n",
                  result.engine.kernel, result.engine.panel_width,
                  result.engine.seconds > 0.0
                      ? static_cast<double>(result.engine.pairs_computed) /
                            result.engine.seconds
                      : 0.0);
      std::printf("network written to %s\n", args.get("out").c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
