// Shared command-line wiring for tinge_cli and tinge_worker.
//
// One source of truth for pipeline defaults: every option default below is
// rendered from a default-constructed TingeConfig / FilterCriteria, so the
// CLI help, the worker and the library can never disagree about what "the
// default alpha" is.
#pragma once

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/null_distribution.h"
#include "data/binary_io.h"
#include "data/series_matrix.h"
#include "data/tsv_io.h"
#include "graph/graph_io.h"
#include "synth/expression.h"
#include "util/args.h"
#include "util/str.h"

namespace tinge::cli {

inline void add_dataset_options(ArgParser& args) {
  args.add("in", "input expression TSV (gene rows, sample columns)");
  args.add("binary-in", "input expression matrix in TNGX binary format");
  args.add("series-matrix", "input NCBI GEO Series Matrix file");
  args.add("synthetic", "generate a synthetic dataset of N genes instead",
           "0");
}

inline void add_pipeline_options(ArgParser& args) {
  const TingeConfig defaults;
  args.add("estimator",
           "pair statistic: bspline|histogram|ksg|pearson|spearman|phi",
           std::string(estimator_name(defaults.estimator)));
  args.add("consensus",
           "bootstrap resamples B for consensus mode (0 = off)",
           strprintf("%zu", defaults.consensus_resamples));
  args.add("consensus-estimators",
           "comma-separated estimators voting per resample (empty = "
           "--estimator only)",
           defaults.consensus_estimators);
  args.add("consensus-min",
           "keep consensus edges with frequency >= this",
           strprintf("%g", defaults.consensus_min_frequency));
  args.add("bins", "histogram/B-spline/phi bins",
           strprintf("%d", defaults.bins));
  args.add("order", "B-spline order", strprintf("%d", defaults.spline_order));
  args.add("alpha", "permutation-test significance level",
           strprintf("%g", defaults.alpha));
  args.add("permutations", "null-distribution draws",
           strprintf("%zu", defaults.permutations));
  args.add("threads", "worker threads (0 = all)",
           strprintf("%d", defaults.threads));
  args.add("tile", "tile size (genes per tile side)",
           strprintf("%zu", defaults.tile_size));
  args.add("team", "threads per tile-claiming team (must divide threads)",
           strprintf("%d", defaults.team_size));
  args.add("panel", "MI panel width B, 1-8 (0 = auto from cache footprint)",
           strprintf("%d", defaults.panel_width));
  args.add("kernel",
           "MI kernel: auto|scalar|unrolled|simd|replicated|gather512",
           std::string(kernel_name(defaults.kernel)));
  args.add("numa", "NUMA-aware tile scheduling: on|off|auto",
           std::string(knob_mode_name(defaults.numa)));
  args.add("hetero",
           "heterogeneous executor lanes: off|auto|kernel:threads,... "
           "(explicit lane threads must sum to --threads)",
           defaults.hetero);
  args.add("stage-ranks",
           "stage rank rows as uint16 when samples <= 65536: on|off",
           defaults.stage_ranks ? "on" : "off");
  args.add("prefetch", "software prefetch in the panel kernels: on|off|auto",
           std::string(knob_mode_name(defaults.prefetch)));
  args.add("packed-table",
           "read the packed interleaved weight table in FMA panels: "
           "on|off|auto",
           std::string(knob_mode_name(defaults.packed_table)));
  args.add("seed", "RNG seed for the permutation null",
           strprintf("%llu",
                     static_cast<unsigned long long>(defaults.seed)));
  args.add("min-variance", "drop genes with variance below this",
           strprintf("%g", defaults.filter.min_variance));
  args.add("max-missing", "drop genes with more than this missing fraction",
           strprintf("%g", defaults.filter.max_missing_fraction));
  args.add("dpi-tolerance", "DPI tolerance (with --dpi)",
           strprintf("%g", defaults.dpi_tolerance));
  args.add("checkpoint", "journal completed tiles here; resumes if present");
  args.add("balance",
           "cluster tile assignment: static (ring block-pair rule) or lease "
           "(rank-0 tile leases with work stealing)",
           defaults.cluster_balance);
  args.add_flag("dpi", "apply DPI indirect-edge filtering");
}

/// Loads the dataset selected by the dataset options. Throws
/// std::invalid_argument if none was selected.
inline ExpressionMatrix load_dataset(const ArgParser& args, bool quiet) {
  if (args.has("in")) {
    if (!quiet) std::printf("reading %s...\n", args.get("in").c_str());
    return read_expression_tsv_file(args.get("in"));
  }
  if (args.has("binary-in"))
    return read_expression_binary_file(args.get("binary-in"));
  if (args.has("series-matrix")) {
    SeriesMatrix series = read_series_matrix_file(args.get("series-matrix"));
    if (!quiet) {
      const auto title = series.metadata.find("Series_title");
      std::printf("series: %s (%zu probes x %zu samples)\n",
                  title != series.metadata.end() ? title->second.c_str()
                                                 : "untitled",
                  series.expression.n_genes(), series.expression.n_samples());
    }
    return std::move(series.expression);
  }
  if (args.get_int("synthetic") > 0) {
    GrnParams grn;
    grn.n_genes = static_cast<std::size_t>(args.get_int("synthetic"));
    ExpressionParams arrays;
    arrays.n_samples = 400;
    ExpressionMatrix expression =
        simulate_expression(generate_grn(grn), arrays);
    if (!quiet)
      std::printf("generated synthetic dataset: %zu genes x %zu samples\n",
                  expression.n_genes(), expression.n_samples());
    return expression;
  }
  throw std::invalid_argument(
      "provide --in=<tsv>, --binary-in=<tngx>, --series-matrix=<txt> or "
      "--synthetic=<genes> (see --help)");
}

/// Builds a TingeConfig from the pipeline options. Throws
/// std::invalid_argument on an unknown kernel name.
inline TingeConfig config_from_args(const ArgParser& args) {
  TingeConfig config;
  config.estimator = parse_estimator(args.get("estimator"));
  config.consensus_resamples =
      static_cast<std::size_t>(args.get_int("consensus"));
  config.consensus_estimators = args.get("consensus-estimators");
  config.consensus_min_frequency = args.get_double("consensus-min");
  config.bins = static_cast<int>(args.get_int("bins"));
  config.spline_order = static_cast<int>(args.get_int("order"));
  config.alpha = args.get_double("alpha");
  config.permutations = static_cast<std::size_t>(args.get_int("permutations"));
  config.threads = static_cast<int>(args.get_int("threads"));
  config.tile_size = static_cast<std::size_t>(args.get_int("tile"));
  config.team_size = static_cast<int>(args.get_int("team"));
  config.panel_width = static_cast<int>(args.get_int("panel"));
  const std::string kernel_arg = args.get("kernel");
  bool matched = false;
  for (const MiKernel candidate :
       {MiKernel::Auto, MiKernel::Scalar, MiKernel::Unrolled, MiKernel::Simd,
        MiKernel::Replicated, MiKernel::Gather512}) {
    if (kernel_arg == kernel_name(candidate)) {
      config.kernel = candidate;
      matched = true;
      break;
    }
  }
  if (!matched)
    throw std::invalid_argument("unknown --kernel=" + kernel_arg);
  const auto parse_knob = [&](const char* name) {
    const std::string value = args.get(name);
    if (value == "auto") return KnobMode::Auto;
    if (value == "on") return KnobMode::On;
    if (value == "off") return KnobMode::Off;
    throw std::invalid_argument(strprintf("--%s=%s: expected on|off|auto",
                                          name, value.c_str()));
  };
  const auto parse_switch = [&](const char* name) {
    const std::string value = args.get(name);
    if (value == "on") return true;
    if (value == "off") return false;
    throw std::invalid_argument(
        strprintf("--%s=%s: expected on|off", name, value.c_str()));
  };
  config.numa = parse_knob("numa");
  config.hetero = args.get("hetero");
  config.prefetch = parse_knob("prefetch");
  config.stage_ranks = parse_switch("stage-ranks");
  config.packed_table = parse_knob("packed-table");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.apply_dpi = args.get_flag("dpi");
  config.dpi_tolerance = args.get_double("dpi-tolerance");
  if (args.has("checkpoint")) config.checkpoint_path = args.get("checkpoint");
  config.cluster_balance = args.get("balance");
  config.filter.min_variance = args.get_double("min-variance");
  config.filter.max_missing_fraction = args.get_double("max-missing");
  return config;
}

/// Writes the edge list (optionally with null p-values) and the optional
/// SIF file. Requires the "out"/"sif"/"pvalues" options to be registered.
inline void write_network_outputs(
    const ArgParser& args, const GeneNetwork& network,
    const std::shared_ptr<const EmpiricalDistribution>& null) {
  if (args.get_flag("pvalues") && null != nullptr) {
    write_edge_list_with_pvalues_file(
        network,
        [null](float mi) { return null->p_value(static_cast<double>(mi)); },
        args.get("out"));
  } else {
    write_edge_list_file(network, args.get("out"));
  }
  if (args.has("sif")) write_sif_file(network, args.get("sif"));
}

/// argv minus the program name and minus `drop_options` (given without the
/// leading "--"; both the "--name=value" and "--name value" spellings are
/// removed). Used to hand a tinge_cli invocation through to tinge_worker.
inline std::vector<std::string> forward_args(
    int argc, const char* const* argv,
    const std::vector<std::string>& drop_options) {
  std::vector<std::string> kept;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool dropped = false;
    for (const std::string& name : drop_options) {
      const std::string prefix = "--" + name;
      if (arg == prefix) {
        ++i;  // separate-value spelling: drop the value too
        dropped = true;
        break;
      }
      if (arg.rfind(prefix + "=", 0) == 0) {
        dropped = true;
        break;
      }
    }
    if (!dropped) kept.push_back(arg);
  }
  return kept;
}

}  // namespace tinge::cli
