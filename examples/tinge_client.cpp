// tinge_client: command-line client for a running tinge_serve daemon.
//
// One invocation is one query (optionally repeated with --repeat, which is
// how warm-cache behavior is demonstrated from the shell). Results print
// as TSV on stdout:
//
//   mi          a<TAB>b<TAB>value     (%.17g — the full double the sweep
//                                      computed, bit-identical to batch)
//   neighbors/
//   top/
//   subgraph    u<TAB>v<TAB>weight    (%.9g, the edge-list float format)
//   metrics     the metrics-registry snapshot JSON
//   sweep       progress events on stderr, summary JSON on stdout
//
//   tinge_client --port-file=/tmp/serve.port --query=mi --pairs=3:10,5:7
//   tinge_client --port=7070 --query=neighbors --gene=12 --k=5

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/serve_client.h"
#include "util/args.h"
#include "util/str.h"

using namespace tinge;
using cluster::ServeClient;

namespace {

std::vector<GenePair> parse_pairs(const std::string& text) {
  std::vector<GenePair> pairs;
  for (const std::string_view item : split_view(text, ',')) {
    const std::vector<std::string_view> ends = split_view(item, ':');
    if (ends.size() != 2)
      throw std::invalid_argument(
          "--pairs expects comma-separated a:b gene-id pairs");
    pairs.push_back(GenePair{
        static_cast<std::uint32_t>(std::stoul(std::string(ends[0]))),
        static_cast<std::uint32_t>(std::stoul(std::string(ends[1])))});
  }
  return pairs;
}

std::vector<std::uint32_t> parse_ids(const std::string& text) {
  std::vector<std::uint32_t> ids;
  for (const std::string_view item : split_view(text, ','))
    ids.push_back(static_cast<std::uint32_t>(std::stoul(std::string(item))));
  return ids;
}

void print_edges(const std::vector<cluster::ServeEdge>& edges) {
  for (const cluster::ServeEdge& edge : edges)
    std::printf("%u\t%u\t%s\n", edge.u, edge.v,
                strprintf("%.9g", static_cast<double>(edge.weight)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add("port", "daemon port (alternative to --port-file)", "0");
  args.add("port-file", "read the daemon port from this rendezvous file");
  args.add("nonce", "required port-file nonce (0 = accept any)", "0");
  args.add("query",
           "ping|mi|neighbors|top|subgraph|metrics|sweep|shutdown", "ping");
  args.add("pairs", "mi: comma-separated a:b gene-id pairs");
  args.add("estimator",
           "mi: estimator name (empty = whatever the daemon was built "
           "with)");
  args.add("gene", "neighbors: the gene id", "0");
  args.add("k", "neighbors/top: result limit (0 = all)", "0");
  args.add("genes", "subgraph: comma-separated gene ids");
  args.add("repeat", "issue the query this many times (prints once)", "1");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }

  try {
    ServeClient client =
        args.has("port-file")
            ? ServeClient::from_port_file(
                  args.get("port-file"),
                  static_cast<std::uint64_t>(args.get_int("nonce")))
            : ServeClient("127.0.0.1",
                          static_cast<int>(args.get_int("port")));

    const std::string query = args.get("query");
    const int repeat = std::max(1, static_cast<int>(args.get_int("repeat")));
    const auto k = static_cast<std::uint32_t>(args.get_int("k"));
    for (int round = 0; round < repeat; ++round) {
      const bool last = round == repeat - 1;
      if (query == "ping") {
        client.ping();
        if (last) std::printf("ok\n");
      } else if (query == "mi") {
        const std::vector<GenePair> pairs =
            parse_pairs(args.get("pairs"));
        const std::vector<double> values =
            args.has("estimator") && !args.get("estimator").empty()
                ? client.mi_pairs(pairs,
                                  parse_estimator(args.get("estimator")))
                : client.mi_pairs(pairs);
        if (last)
          for (std::size_t i = 0; i < pairs.size(); ++i)
            std::printf("%u\t%u\t%.17g\n", pairs[i].a, pairs[i].b,
                        values[i]);
      } else if (query == "neighbors") {
        const auto edges = client.neighborhood(
            static_cast<std::uint32_t>(args.get_int("gene")), k);
        if (last) print_edges(edges);
      } else if (query == "top") {
        const auto edges = client.top_edges(k);
        if (last) print_edges(edges);
      } else if (query == "subgraph") {
        const auto edges = client.subgraph(parse_ids(args.get("genes")));
        if (last) print_edges(edges);
      } else if (query == "metrics") {
        if (last)
          std::printf("%s\n", client.metrics_json().c_str());
        else
          client.metrics_json();
      } else if (query == "sweep") {
        const cluster::SweepJobResult result =
            client.sweep_job([](const std::string& event) {
              std::fprintf(stderr, "%s\n", event.c_str());
            });
        if (last)
          std::printf(
              "sweep done: %zu pairs, %zu edges, %zu/%zu tiles resumed, "
              "%.3f s (kernel=%s estimator=%s)\n",
              result.pairs, result.edges, result.tiles_resumed, result.tiles,
              result.seconds, result.kernel.c_str(),
              result.estimator.c_str());
      } else if (query == "shutdown") {
        client.shutdown_server();
        if (last) std::printf("ok\n");
      } else {
        std::fprintf(stderr, "unknown --query=%s\n", query.c_str());
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tinge_client: %s\n", error.what());
    return 1;
  }
  return 0;
}
