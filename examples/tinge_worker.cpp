// tinge_worker — one rank of a multi-process sharded pipeline run.
//
// Not usually invoked by hand: tinge_cli --cluster=N --transport=tcp
// spawns N copies of this binary (see cluster/launcher.h), each of which
// joins the TCP mesh through the shared rendezvous directory, runs its
// share of the pipeline (cluster/sharded_pipeline.h), and exits. Rank 0
// writes the outputs. For debugging, a mesh can be assembled manually:
//
//   mkdir /tmp/rdv
//   tinge_worker --synthetic=80 --cluster-rank=0 --cluster-size=2
//                --rendezvous=/tmp/rdv &        (one line, backgrounded)
//   tinge_worker --synthetic=80 --cluster-rank=1 --cluster-size=2
//                --rendezvous=/tmp/rdv          (one line)
#include <signal.h>

#include <atomic>
#include <cstdio>

#include "cli_common.h"
#include "cluster/faulty_transport.h"
#include "cluster/launcher.h"
#include "cluster/sharded_pipeline.h"
#include "cluster/transport.h"
#include "core/sweep.h"
#include "util/args.h"

namespace {

/// Flipped by SIGTERM (the launcher's survivor-teardown signal) and polled
/// by the sweep between tiles, so a doomed rank abandons its compute
/// instead of finishing a result nobody will merge. A second SIGTERM kills
/// outright (SA_RESETHAND) in case the rank is wedged outside the sweep.
std::atomic<bool> g_terminate{false};

void handle_sigterm(int /*signum*/) { g_terminate.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace tinge;

  ArgParser args;
  cli::add_dataset_options(args);
  args.add("out", "output edge list path (written by rank 0)", "network.tsv");
  args.add("sif", "also write a Cytoscape SIF file to this path");
  cli::add_pipeline_options(args);
  args.add("cluster-rank", "this worker's rank", "0");
  args.add("cluster-size", "total ranks in the cluster", "1");
  args.add("rendezvous", "shared rendezvous directory for the TCP mesh");
  args.add("rendezvous-nonce",
           "run nonce stamped into/required of rendezvous port files "
           "(0 = accept any; the launcher always sets one)",
           "0");
  args.add("transport", "cluster transport: tcp (inproc only for size 1)",
           "tcp");
  args.add("connect-timeout", "seconds to wait for the mesh to assemble",
           "30");
  args.add("recv-timeout",
           "seconds a recv/barrier may wait before the peer is declared "
           "dead (0 = wait forever)",
           "300");
  args.add("fault",
           "fault-injection plan, e.g. rank=1,kill-after=4,mode=exit "
           "(testing only)");
  args.add("metrics-out", "write a JSON cluster run manifest here (rank 0)");
  args.add_flag("trace", "accepted for tinge_cli compatibility (ignored)");
  args.add_flag("pvalues", "append a null-p-value column to the edge list");
  args.add_flag("quiet", "suppress progress output");
  args.add_flag("help", "show this help");

  try {
    args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  if (args.get_flag("help")) {
    std::fputs(args.usage("tinge_worker",
                          "One rank of a sharded TINGe pipeline run "
                          "(spawned by tinge_cli --cluster=N).")
                   .c_str(),
               stdout);
    return 0;
  }

  const int rank = static_cast<int>(args.get_int("cluster-rank"));
  const int size = static_cast<int>(args.get_int("cluster-size"));

  {
    // SIGTERM = launcher teardown after a peer failed. Request a graceful
    // sweep abort; SA_RESETHAND restores the default so a second SIGTERM
    // (or a wedged rank) still dies.
    struct sigaction action = {};
    action.sa_handler = handle_sigterm;
    action.sa_flags = SA_RESETHAND;
    ::sigaction(SIGTERM, &action, nullptr);
  }

  try {
    TingeConfig config = cli::config_from_args(args);
    config.cluster_ranks = size;
    config.cluster_transport = args.get("transport");
    config.validate();

    cluster::TransportOptions options;
    options.rank = rank;
    options.size = size;
    if (args.has("rendezvous")) options.rendezvous_dir = args.get("rendezvous");
    options.connect_timeout_seconds = args.get_double("connect-timeout");
    options.recv_timeout_seconds = args.get_double("recv-timeout");
    options.run_nonce =
        static_cast<std::uint64_t>(args.get_int("rendezvous-nonce"));

    const std::unique_ptr<cluster::Transport> transport =
        cluster::make_transport(
            cluster::parse_transport_kind(config.cluster_transport), options);

    // Fault injection (tests and the CI fault smoke): wrap the real
    // endpoint in the decorator; the plan arms only on its target rank.
    std::unique_ptr<cluster::FaultyTransport> faulty;
    cluster::Transport* endpoint = transport.get();
    if (args.has("fault")) {
      cluster::FaultPlan plan = cluster::parse_fault_plan(args.get("fault"));
      cluster::resolve_kill_fraction(plan, size);
      faulty = std::make_unique<cluster::FaultyTransport>(*transport, plan);
      endpoint = faulty.get();
    }
    cluster::Comm comm(*endpoint);

    // Every rank loads and preprocesses locally (deterministic, so this is
    // replication, not divergence).
    const bool quiet = args.get_flag("quiet") || rank != 0;
    const ExpressionMatrix expression = cli::load_dataset(args, quiet);

    cluster::LocalPipelineHooks hooks;
    hooks.cancel = &g_terminate;
    const cluster::ShardedBuildResult result =
        cluster::sharded_build(comm, expression, config, hooks);

    if (rank == 0) {
      cli::write_network_outputs(args, result.network, result.null);
      if (args.has("metrics-out"))
        cluster::write_cluster_run_manifest(result, config,
                                            args.get("metrics-out"));
      if (!quiet) {
        std::printf(
            "done (cluster %s, %d ranks): %zu genes, %zu edges, threshold "
            "%.5f nats, %.2f s total\n",
            result.cluster.transport.c_str(), size, result.genes_used,
            result.network.n_edges(), result.threshold, result.seconds);
        std::printf(
            "cluster traffic: %llu bytes in %llu messages, imbalance %.2f\n",
            static_cast<unsigned long long>(result.cluster.bytes_transferred),
            static_cast<unsigned long long>(result.cluster.messages),
            result.cluster.imbalance());
        std::printf("network written to %s\n", args.get("out").c_str());
      }
    }
    return 0;
  } catch (const SweepAborted&) {
    std::fprintf(stderr,
                 "worker rank %d: sweep aborted (termination requested)\n",
                 rank);
    return 128 + SIGTERM;  // same report a hard SIGTERM kill would produce
  } catch (const cluster::TimeoutError& error) {
    std::fprintf(stderr,
                 "error: worker rank %d: peer timeout: %s\n"
                 "       (peer alive but silent past --recv-timeout; raise "
                 "the deadline if the run is just slow)\n",
                 rank, error.what());
    return cluster::kWorkerExitPeerFailure;
  } catch (const cluster::PeerFailureError& error) {
    std::fprintf(stderr, "error: worker rank %d: peer failure: %s\n", rank,
                 error.what());
    return cluster::kWorkerExitPeerFailure;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: worker rank %d: %s\n", rank, error.what());
    return 1;
  }
}
