// Quickstart: infer a gene network from expression data in ~30 lines.
//
//   1. get an expression matrix (here: simulated; normally read TSV),
//   2. configure the pipeline,
//   3. build, inspect, save.
#include <cstdio>

#include "core/network_builder.h"
#include "graph/graph_io.h"
#include "synth/expression.h"

int main() {
  using namespace tinge;

  // 1. A small synthetic dataset: 200 genes, 300 microarray experiments.
  GrnParams grn;
  grn.n_genes = 200;
  ExpressionParams arrays;
  arrays.n_samples = 300;
  SyntheticDataset dataset = make_synthetic_dataset(grn, arrays);

  // 2. TINGe-style configuration: B-spline MI (b=10, k=3), permutation
  //    threshold at alpha = 1e-3 from 2000 null draws.
  TingeConfig config;
  config.alpha = 1e-3;
  config.permutations = 2000;

  // 3. Run the pipeline.
  NetworkBuilder builder(config);
  const BuildResult result = builder.build(std::move(dataset.expression));

  std::printf("built a network over %zu genes: %zu significant edges "
              "(I_alpha = %.4f nats) in %.2f s\n",
              result.genes_used, result.network.n_edges(), result.threshold,
              result.times.total);

  // Inspect the strongest edge and save the network for Cytoscape & co.
  if (result.network.n_edges() > 0) {
    const Edge strongest = *std::max_element(
        result.network.edges().begin(), result.network.edges().end(),
        [](const Edge& a, const Edge& b) { return a.weight < b.weight; });
    std::printf("strongest interaction: %s -- %s (MI = %.3f nats)\n",
                result.network.node_names()[strongest.u].c_str(),
                result.network.node_names()[strongest.v].c_str(),
                strongest.weight);
  }
  write_edge_list_file(result.network, "quickstart_network.tsv");
  std::printf("edge list written to quickstart_network.tsv\n");
  return 0;
}
