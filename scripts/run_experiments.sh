#!/usr/bin/env bash
# Regenerates every experiment table (DESIGN.md §4) into results/.
# Usage: scripts/run_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"
status=0
for bench in "$BUILD_DIR"/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "=== $name"
  if ! "$bench" >"$RESULTS_DIR/$name.txt" 2>&1; then
    echo "    FAILED (see $RESULTS_DIR/$name.txt)" >&2
    status=1
  fi
done

echo
echo "results written to $RESULTS_DIR/"
exit $status
