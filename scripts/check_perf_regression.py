#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a checked-in baseline.

Absolute pairs/s depend on the runner and are useless across CI hosts, so
the comparison unit is the *speedup ratio* each row already carries
(speedup_vs_scalar for the kernel ladder, speedup_vs_baseline for the
memory-side knob rows): those are measured against a same-host, same-run
reference and stay meaningful on any machine.

A row regresses when its ratio drops below baseline * tolerance (default
0.8, i.e. fail on a >20% regression). Rows present in the current run but
not in the baseline are ignored (new benchmarks don't need a flag day);
rows in the baseline but missing from the run fail loudly — a silently
vanished kernel row must not read as a pass.

Usage: check_perf_regression.py <baseline.json> <current.json> [tolerance]
"""

import json
import sys


def row_key(row):
    """Identity of one benchmark row across runs."""
    return (
        row.get("table"),
        row.get("samples"),
        row.get("kernel") or row.get("variant"),
    )


def row_ratio(row):
    """The host-independent speedup metric of a row, if it carries one."""
    for field in ("speedup_vs_scalar", "speedup_vs_baseline"):
        if field in row:
            return row[field]
    return None


def load_rows(path):
    with open(path) as handle:
        document = json.load(handle)
    rows = {}
    for row in document.get("rows", []):
        ratio = row_ratio(row)
        if ratio is not None:
            rows[row_key(row)] = ratio
    return rows


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    tolerance = float(argv[3]) if len(argv) == 4 else 0.8

    baseline = load_rows(baseline_path)
    current = load_rows(current_path)
    if not baseline:
        print(f"error: no comparable rows in baseline {baseline_path}",
              file=sys.stderr)
        return 2

    failures = []
    for key, reference in sorted(baseline.items()):
        table, samples, variant = key
        label = f"{table}/m={samples}/{variant}"
        if key not in current:
            failures.append(f"{label}: missing from current run")
            continue
        measured = current[key]
        floor = reference * tolerance
        verdict = "ok" if measured >= floor else "REGRESSED"
        print(f"{label}: baseline {reference:.2f}x, measured {measured:.2f}x "
              f"(floor {floor:.2f}x) {verdict}")
        if measured < floor:
            failures.append(
                f"{label}: {measured:.2f}x < {floor:.2f}x "
                f"(baseline {reference:.2f}x, tolerance {tolerance:g})")

    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} baseline rows within tolerance {tolerance:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
