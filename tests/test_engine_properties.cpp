// Engine property sweeps: the dense MI matrix must be invariant across
// every (tile size x schedule x thread count x kernel) combination — the
// strongest statement that the parallel decomposition is correct.
#include <gtest/gtest.h>

#include <tuple>

#include "core/mi_engine.h"
#include "stats/rng.h"

namespace tinge {
namespace {

// One fixed dataset and its reference (serial, scalar-kernel) MI matrix,
// shared by every sweep instance.
class EngineReference {
 public:
  static constexpr std::size_t kGenes = 24;
  static constexpr std::size_t kSamples = 80;

  static const EngineReference& get() {
    static EngineReference instance;
    return instance;
  }

  const RankedMatrix& ranked() const { return ranked_; }
  const BsplineMi& estimator() const { return estimator_; }
  const std::vector<float>& reference() const { return reference_; }

 private:
  EngineReference() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(2024);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix.at(g, s) = static_cast<float>(
            g % 3 == 0 ? driver + 0.5 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix);
    const MiEngine engine(estimator_, ranked_);
    par::ThreadPool pool(1);
    TingeConfig config;
    config.threads = 1;
    config.kernel = MiKernel::Scalar;
    reference_ = engine.compute_dense(config, pool);
  }

  BsplineMi estimator_;
  RankedMatrix ranked_;
  std::vector<float> reference_;
};

using SweepParam = std::tuple<int /*tile*/, par::Schedule, int /*threads*/,
                              MiKernel>;

class EngineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweep, DenseMatrixMatchesReference) {
  const auto [tile, schedule, threads, kernel] = GetParam();
  const EngineReference& ref = EngineReference::get();
  const MiEngine engine(ref.estimator(), ref.ranked());
  par::ThreadPool pool(threads);
  TingeConfig config;
  config.tile_size = static_cast<std::size_t>(tile);
  config.schedule = schedule;
  config.threads = threads;
  config.kernel = kernel;
  const auto dense = engine.compute_dense(config, pool);
  ASSERT_EQ(dense.size(), ref.reference().size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    // Kernels differ in float summation order; tolerance covers that.
    EXPECT_NEAR(dense[i], ref.reference()[i], 2e-4) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, EngineSweep,
    ::testing::Combine(
        ::testing::Values(1, 5, 24, 100),  // tile size (incl. degenerate)
        ::testing::Values(par::Schedule::Static, par::Schedule::Dynamic,
                          par::Schedule::Guided),
        ::testing::Values(1, 3, 7),  // thread counts (odd on purpose)
        ::testing::Values(MiKernel::Scalar, MiKernel::Replicated,
                          MiKernel::Gather512)),
    [](const auto& param_info) {
      return "t" + std::to_string(std::get<0>(param_info.param)) + "_" +
             par::schedule_name(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param)) + "_" +
             kernel_name(std::get<3>(param_info.param));
    });

TEST(EngineEdgeCases, TwoGenes) {
  ExpressionMatrix matrix(2, 32);
  Xoshiro256 rng(1);
  for (std::size_t g = 0; g < 2; ++g)
    for (std::size_t s = 0; s < 32; ++s)
      matrix.at(g, s) = static_cast<float>(rng.normal());
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(8, 3, 32);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(2);
  TingeConfig config;
  EngineStats stats;
  const GeneNetwork network = engine.compute_network(-1.0, config, pool, &stats);
  EXPECT_EQ(stats.pairs_computed, 1u);
  EXPECT_EQ(network.n_edges(), 1u);  // threshold below 0 keeps everything
}

TEST(EngineEdgeCases, ThresholdAboveEverythingGivesEmptyNetwork) {
  const EngineReference& ref = EngineReference::get();
  const MiEngine engine(ref.estimator(), ref.ranked());
  par::ThreadPool pool(2);
  TingeConfig config;
  const GeneNetwork network = engine.compute_network(1e9, config, pool);
  EXPECT_EQ(network.n_edges(), 0u);
  EXPECT_EQ(network.n_nodes(), EngineReference::kGenes);
}

TEST(EngineEdgeCases, MinimumSampleCount) {
  // m = 2 is the smallest the weight table accepts.
  ExpressionMatrix matrix(3, 2);
  matrix.at(0, 0) = 1.0f;
  matrix.at(1, 1) = 2.0f;
  matrix.at(2, 0) = -1.0f;
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(3, 2, 2);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(1);
  TingeConfig config;
  config.bins = 3;
  config.spline_order = 2;
  const auto dense = engine.compute_dense(config, pool);
  for (const float v : dense) EXPECT_TRUE(std::isfinite(v));
}


// ---- team mode ---------------------------------------------------------------

class TeamSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TeamSweep, TeamedNetworkMatchesPlainEngine) {
  const auto [team_size, n_teams] = GetParam();
  const int threads = team_size * n_teams;
  const EngineReference& ref = EngineReference::get();
  const MiEngine engine(ref.estimator(), ref.ranked());
  par::ThreadPool pool(threads);
  TingeConfig config;
  config.tile_size = 5;
  config.threads = threads;
  const double threshold = 0.15;

  const GeneNetwork plain = engine.compute_network(threshold, config, pool);
  EngineStats stats;
  const GeneNetwork teamed =
      engine.compute_network_teamed(threshold, config, pool, team_size, &stats);

  ASSERT_EQ(teamed.n_edges(), plain.n_edges());
  for (std::size_t i = 0; i < plain.n_edges(); ++i) {
    EXPECT_EQ(teamed.edges()[i].u, plain.edges()[i].u);
    EXPECT_EQ(teamed.edges()[i].v, plain.edges()[i].v);
    EXPECT_EQ(teamed.edges()[i].weight, plain.edges()[i].weight);
  }
  EXPECT_EQ(stats.pairs_computed,
            EngineReference::kGenes * (EngineReference::kGenes - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    TeamShapes, TeamSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),   // threads per team
                       ::testing::Values(1, 2, 3)),  // teams
    [](const auto& param_info) {
      return "t" + std::to_string(std::get<0>(param_info.param)) + "x" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(TeamMode, RejectsIndivisibleTeamSize) {
  const EngineReference& ref = EngineReference::get();
  const MiEngine engine(ref.estimator(), ref.ranked());
  par::ThreadPool pool(4);
  TingeConfig config;
  config.threads = 4;
  EXPECT_THROW(engine.compute_network_teamed(0.1, config, pool, 3),
               ContractViolation);
}

}  // namespace
}  // namespace tinge
