// Parallel runtime: thread pool region semantics, the three loop schedules,
// barriers, per-thread reduction slots, topology/affinity helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "parallel/barrier.h"
#include "parallel/parallel_for.h"
#include "parallel/reduction.h"
#include "parallel/thread_pool.h"
#include "parallel/topology.h"

namespace tinge::par {
namespace {

TEST(ThreadPool, RunsEveryContextExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> mask{0};
  pool.run(4, [&](int tid, int width) {
    EXPECT_EQ(width, 4);
    mask.fetch_or(1 << tid);
  });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  pool.run(1, [&](int tid, int width) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(width, 1);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, NarrowerRegionsThanPool) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.run(3, [&](int, int) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SequentialRegionsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.run(4, [&](int, int) { ++total; });
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, CallerExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(2,
                        [&](int tid, int) {
                          if (tid == 0) throw std::runtime_error("caller boom");
                        }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.run(2, [&](int, int) { ++count; });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WorkerExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(2,
                        [&](int tid, int) {
                          if (tid == 1) throw std::runtime_error("worker boom");
                        }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.run(2, [&](int, int) { ++count; });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, RejectsOverwideRegions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(3, [](int, int) {}), ContractViolation);
  EXPECT_THROW(pool.run(0, [](int, int) {}), ContractViolation);
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().max_threads(), 1);
}

// ---- parallel_for ------------------------------------------------------------

class ScheduleTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(ScheduleTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1013;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 4, 0, n, 7, GetParam(),
               [&](std::size_t lo, std::size_t hi, int) {
                 for (std::size_t i = lo; i < hi; ++i) ++hits[i];
               });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(ScheduleTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 2, 5, 5, 1, GetParam(),
               [&](std::size_t, std::size_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_P(ScheduleTest, OffsetRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 3, 100, 200, 9, GetParam(),
               [&](std::size_t lo, std::size_t hi, int) {
                 std::size_t local = 0;
                 for (std::size_t i = lo; i < hi; ++i) local += i;
                 sum += local;
               });
  std::size_t expected = 0;
  for (std::size_t i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST_P(ScheduleTest, TidsWithinWidth) {
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  parallel_for(pool, 4, 0, 500, 3, GetParam(),
               [&](std::size_t, std::size_t, int tid) {
                 if (tid < 0 || tid >= 4) ++bad;
               });
  EXPECT_EQ(bad.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ScheduleTest,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic,
                                           Schedule::Guided),
                         [](const auto& param_info) {
                           return std::string(schedule_name(param_info.param));
                         });

TEST(ParallelFor, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, 8, 0, 3, 1, Schedule::Dynamic,
               [&](std::size_t lo, std::size_t hi, int) {
                 for (std::size_t i = lo; i < hi; ++i) ++hits[i];
               });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, StaticSliceSizesDifferByAtMostOne) {
  ThreadPool pool(4);
  std::vector<std::size_t> sizes(4, 0);
  std::mutex mu;
  parallel_for(pool, 4, 0, 10, 1, Schedule::Static,
               [&](std::size_t lo, std::size_t hi, int tid) {
                 std::lock_guard<std::mutex> lock(mu);
                 sizes[static_cast<std::size_t>(tid)] += hi - lo;
               });
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*max_it - *min_it, 1u);
}

TEST(ParallelFor, GlobalOverloadCovers) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, 10, [&](std::size_t lo, std::size_t hi, int) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---- barrier --------------------------------------------------------------------

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> torn{false};
  pool.run(kThreads, [&](int, int) {
    for (int phase = 0; phase < 20; ++phase) {
      ++phase_counter;
      barrier.arrive_and_wait();
      // After the barrier every thread must observe the full increment.
      if (phase_counter.load() < kThreads * (phase + 1)) torn = true;
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(phase_counter.load(), kThreads * 20);
}

TEST(SpinBarrier, SingleParticipantNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

// ---- reduction --------------------------------------------------------------------

TEST(PerThread, SlotsAreIndependentAndCombine) {
  ThreadPool pool(4);
  PerThread<std::size_t> sums(4, 0);
  parallel_for(pool, 4, 0, 1000, 10, Schedule::Dynamic,
               [&](std::size_t lo, std::size_t hi, int tid) {
                 for (std::size_t i = lo; i < hi; ++i) sums.local(tid) += i;
               });
  const std::size_t total =
      sums.combine(std::size_t{0},
                   [](std::size_t acc, std::size_t v) { return acc + v; });
  EXPECT_EQ(total, 999u * 1000u / 2u);
}

TEST(PerThread, InitialValueApplies) {
  PerThread<int> slots(3, 7);
  EXPECT_EQ(slots.local(0), 7);
  EXPECT_EQ(slots.local(2), 7);
  EXPECT_THROW(slots.local(3), ContractViolation);
}

// ---- topology ---------------------------------------------------------------------

TEST(Topology, DetectionIsSane) {
  const Topology topo = detect_host_topology();
  EXPECT_GE(topo.cores, 1);
  EXPECT_GE(topo.threads_per_core, 1);
  EXPECT_GE(topo.total_threads(), 1);
  EXPECT_NE(topo.to_string().find("cores"), std::string::npos);
}

TEST(Topology, ScatterSpreadsAcrossCoresFirst) {
  const Topology topo{4, 2};
  // First 4 logical threads land on 4 distinct cores.
  std::set<int> first_wave;
  for (int t = 0; t < 4; ++t) first_wave.insert(topo.scatter_cpu(t) % 4);
  EXPECT_EQ(first_wave.size(), 4u);
  // Thread 4 shares core 0 (sibling cpu = 4).
  EXPECT_EQ(topo.scatter_cpu(4), 4);
}

TEST(Topology, CompactFillsCoreFirst) {
  const Topology topo{4, 2};
  EXPECT_EQ(topo.compact_cpu(0), 0);
  EXPECT_EQ(topo.compact_cpu(1), 4);  // sibling of core 0
  EXPECT_EQ(topo.compact_cpu(2), 1);  // next core
}

TEST(Topology, PlacementNamesStable) {
  EXPECT_STREQ(placement_name(Placement::None), "none");
  EXPECT_STREQ(placement_name(Placement::Scatter), "scatter");
  EXPECT_STREQ(placement_name(Placement::Compact), "compact");
}

TEST(Affinity, PinningDoesNotCrash) {
  // May fail (restricted environments) but must not throw or crash.
  pin_current_thread(0);
  EXPECT_FALSE(pin_current_thread(-1));
  SUCCEED();
}

TEST(ThreadPool, OversubscriptionWorks) {
  // 32 logical contexts on however few cores: the Phi-style sweep relies on
  // regions far wider than physical concurrency completing correctly.
  ThreadPool pool(32);
  std::atomic<int> count{0};
  pool.run(32, [&](int, int) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, PlacementOptionsConstruct) {
  const Topology topo{1, 1};
  ThreadPool scatter(2, Placement::Scatter, topo);
  ThreadPool compact(2, Placement::Compact, topo);
  std::atomic<int> count{0};
  scatter.run(2, [&](int, int) { ++count; });
  compact.run(2, [&](int, int) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace tinge::par
