// Engine observability: instrumentation must never change results
// (stats-requested and stats-free runs are bit-identical on every path),
// the four paths must report consistent EngineStats through the shared
// finalizer, resumed runs must account for the full pass, and a run-scoped
// registry delta must reconstruct the same numbers (EngineStats as a view
// over the registry).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "core/checkpoint.h"
#include "core/mi_engine.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "preprocess/rank_transform.h"
#include "stats/rng.h"

namespace tinge {
namespace {

void expect_identical(const GeneNetwork& a, const GeneNetwork& b) {
  ASSERT_EQ(a.n_edges(), b.n_edges());
  for (std::size_t i = 0; i < a.n_edges(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

class EngineObservability : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 30;
  static constexpr std::size_t kSamples = 80;
  static constexpr double kThreshold = 0.2;

  EngineObservability() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(123);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix.at(g, s) = static_cast<float>(
            g < 8 ? driver + 0.5 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix);
  }

  // Kernel pinned so every path resolves the identical variant (Auto's
  // measured pick could legitimately differ between calls).
  TingeConfig config() const {
    TingeConfig c;
    c.tile_size = 8;
    c.threads = 2;
    c.kernel = MiKernel::Scalar;
    c.progress_tile_interval = 1;
    return c;
  }

  std::string checkpoint_path(const char* tag) const {
    return std::filesystem::temp_directory_path() /
           ("tingex_obs_" + std::string(tag) + "_" +
            std::to_string(::getpid()) + ".ckpt");
  }

  BsplineMi estimator_;
  RankedMatrix ranked_;
};

// ---- zero interference ----------------------------------------------------

TEST_F(EngineObservability, StatsRequestDoesNotChangeThePlainNetwork) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const GeneNetwork bare = engine.compute_network(kThreshold, config(), pool);
  EngineStats stats;
  const GeneNetwork observed =
      engine.compute_network(kThreshold, config(), pool, &stats);
  expect_identical(bare, observed);
  EXPECT_EQ(stats.edges_emitted, observed.n_edges());
}

TEST_F(EngineObservability, StatsRequestDoesNotChangeTheCheckpointedNetwork) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const GeneNetwork bare = engine.compute_network_checkpointed(
      kThreshold, config(), pool, checkpoint_path("bare"));
  EngineStats stats;
  const GeneNetwork observed = engine.compute_network_checkpointed(
      kThreshold, config(), pool, checkpoint_path("observed"), &stats);
  expect_identical(bare, observed);
  EXPECT_EQ(stats.edges_emitted, observed.n_edges());
}

TEST_F(EngineObservability, StatsRequestDoesNotChangeTheTeamedNetwork) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const GeneNetwork bare =
      engine.compute_network_teamed(kThreshold, config(), pool, 2);
  EngineStats stats;
  const GeneNetwork observed =
      engine.compute_network_teamed(kThreshold, config(), pool, 2, &stats);
  expect_identical(bare, observed);
  EXPECT_EQ(stats.edges_emitted, observed.n_edges());
}

TEST_F(EngineObservability, StatsRequestDoesNotChangeTheDenseMatrix) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const std::vector<float> bare = engine.compute_dense(config(), pool);
  EngineStats stats;
  const std::vector<float> observed =
      engine.compute_dense(config(), pool, &stats);
  ASSERT_EQ(bare.size(), observed.size());
  EXPECT_EQ(std::memcmp(bare.data(), observed.data(),
                        bare.size() * sizeof(float)),
            0);
  EXPECT_EQ(stats.pairs_computed, kGenes * (kGenes - 1) / 2);
}

// ---- cross-path consistency -----------------------------------------------

TEST_F(EngineObservability, AllFourPathsReportConsistentStats) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);

  EngineStats plain, checkpointed, teamed, dense;
  const GeneNetwork plain_net =
      engine.compute_network(kThreshold, config(), pool, &plain);
  engine.compute_network_checkpointed(kThreshold, config(), pool,
                                      checkpoint_path("consistency"),
                                      &checkpointed);
  engine.compute_network_teamed(kThreshold, config(), pool, 2, &teamed);
  engine.compute_dense(config(), pool, &dense);

  constexpr std::size_t kPairs = kGenes * (kGenes - 1) / 2;
  for (const EngineStats* stats :
       {&plain, &checkpointed, &teamed, &dense}) {
    EXPECT_EQ(stats->pairs_computed, kPairs);
    EXPECT_EQ(stats->pairs_resumed, 0u);
    EXPECT_EQ(stats->tiles, TileSet(kGenes, 8).count());
    EXPECT_EQ(stats->tiles_resumed, 0u);
    EXPECT_EQ(stats->panels_swept, plain.panels_swept);
    EXPECT_STREQ(stats->kernel, plain.kernel);
    EXPECT_EQ(stats->panel_width, plain.panel_width);
    EXPECT_GT(stats->seconds, 0.0);

    // Scheduler accounting: one slot per context, covering all work.
    ASSERT_EQ(stats->tiles_per_thread.size(), 2u);
    ASSERT_EQ(stats->pairs_per_thread.size(), 2u);
    std::uint64_t tile_sum = 0, pair_sum = 0;
    for (const std::uint64_t t : stats->tiles_per_thread) tile_sum += t;
    for (const std::uint64_t p : stats->pairs_per_thread) pair_sum += p;
    EXPECT_EQ(tile_sum, stats->tiles);
    EXPECT_EQ(pair_sum, stats->pairs_computed);

    EXPECT_GT(stats->panel_fill_ratio(), 0.0);
    EXPECT_LE(stats->panel_fill_ratio(), 1.0);
  }
  EXPECT_EQ(plain.edges_emitted, plain_net.n_edges());
  EXPECT_EQ(checkpointed.edges_emitted, plain.edges_emitted);
  EXPECT_EQ(teamed.edges_emitted, plain.edges_emitted);
  EXPECT_EQ(dense.edges_emitted, 0u);  // dense mode emits a matrix, not edges
}

// ---- resume accounting ----------------------------------------------------

TEST_F(EngineObservability, ResumedRunAccountsForTheFullPass) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const std::string path = checkpoint_path("resume");
  const GeneNetwork expected =
      engine.compute_network(kThreshold, config(), pool);

  struct InjectedCrash : std::runtime_error {
    InjectedCrash() : std::runtime_error("injected") {}
  };
  EXPECT_THROW(engine.compute_network_checkpointed(
                   kThreshold, config(), pool, path, nullptr,
                   [](std::size_t done, std::size_t) {
                     if (done >= 3) throw InjectedCrash();
                   }),
               InjectedCrash);
  const std::size_t journaled =
      load_checkpoint(path).completed_tiles().size();
  ASSERT_GT(journaled, 0u);

  EngineStats stats;
  const GeneNetwork resumed = engine.compute_network_checkpointed(
      kThreshold, config(), pool, path, &stats);
  expect_identical(expected, resumed);

  // Full-pass totals with the replayed subset broken out.
  EXPECT_EQ(stats.pairs_computed, kGenes * (kGenes - 1) / 2);
  EXPECT_EQ(stats.tiles, TileSet(kGenes, 8).count());
  EXPECT_EQ(stats.tiles_resumed, journaled);
  EXPECT_GT(stats.pairs_resumed, 0u);
  EXPECT_LT(stats.pairs_resumed, stats.pairs_computed);

  // The per-thread scheduler counters cover only work this run executed.
  std::uint64_t tile_sum = 0, pair_sum = 0;
  for (const std::uint64_t t : stats.tiles_per_thread) tile_sum += t;
  for (const std::uint64_t p : stats.pairs_per_thread) pair_sum += p;
  EXPECT_EQ(tile_sum, stats.tiles - stats.tiles_resumed);
  EXPECT_EQ(pair_sum, stats.pairs_computed - stats.pairs_resumed);
}

// ---- EngineStats as a view over the registry ------------------------------

TEST_F(EngineObservability, RegistryDeltaReconstructsEngineStats) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);

  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::global().snapshot();
  EngineStats stats;
  engine.compute_network(kThreshold, config(), pool, &stats);
  const obs::MetricsSnapshot delta = obs::snapshot_delta(
      before, obs::MetricsRegistry::global().snapshot());

  const EngineStats reconstructed = engine_stats_from_metrics(delta);
  EXPECT_EQ(reconstructed.pairs_computed, stats.pairs_computed);
  EXPECT_EQ(reconstructed.pairs_resumed, stats.pairs_resumed);
  EXPECT_EQ(reconstructed.edges_emitted, stats.edges_emitted);
  EXPECT_EQ(reconstructed.tiles, stats.tiles);
  EXPECT_EQ(reconstructed.tiles_resumed, stats.tiles_resumed);
  EXPECT_EQ(reconstructed.panels_swept, stats.panels_swept);
  EXPECT_EQ(reconstructed.panel_width, stats.panel_width);
  EXPECT_EQ(reconstructed.seconds, stats.seconds);
  // Per-thread counters round-trip through their engine.thread.<tid> names.
  // A context that did no work is dropped from the delta (its counters
  // never moved), which reads back as zero.
  const auto at_or_zero = [](const std::vector<std::uint64_t>& v,
                             std::size_t i) {
    return i < v.size() ? v[i] : std::uint64_t{0};
  };
  for (std::size_t tid = 0; tid < stats.tiles_per_thread.size(); ++tid) {
    EXPECT_EQ(at_or_zero(reconstructed.tiles_per_thread, tid),
              stats.tiles_per_thread[tid]);
    EXPECT_EQ(at_or_zero(reconstructed.pairs_per_thread, tid),
              stats.pairs_per_thread[tid]);
  }
}

}  // namespace
}  // namespace tinge
