// Concurrency stress: many-message transports, concurrent checkpoint
// appends, thread-pool churn under repeated narrow/wide regions — the
// situations that surface lost-wakeup and ordering bugs.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <numeric>
#include <unistd.h>

#include "cluster/comm.h"
#include "core/checkpoint.h"
#include "parallel/barrier.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "stats/rng.h"

namespace tinge {
namespace {

TEST(StressComm, ManySmallMessagesAllToAll) {
  constexpr int kRanks = 5;
  constexpr int kRounds = 50;
  cluster::InProcessCluster net(kRanks);
  std::atomic<long long> checksum{0};
  net.run([&](cluster::Comm& comm) {
    for (int round = 0; round < kRounds; ++round) {
      for (int dest = 0; dest < kRanks; ++dest) {
        if (dest == comm.rank()) continue;
        comm.send_vector(dest, std::vector<int>{comm.rank(), round}, round);
      }
      long long local = 0;
      for (int src = 0; src < kRanks; ++src) {
        if (src == comm.rank()) continue;
        const auto message = comm.recv_vector<int>(src, round);
        local += message.at(0) + message.at(1);
      }
      checksum += local;
    }
  });
  // Every rank sums (sum of other ranks) + (kRanks-1)*round per round.
  long long expected = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int receiver = 0; receiver < kRanks; ++receiver) {
      for (int src = 0; src < kRanks; ++src) {
        if (src == receiver) continue;
        expected += src + round;
      }
    }
  }
  EXPECT_EQ(checksum.load(), expected);
  EXPECT_EQ(net.messages_sent(),
            static_cast<std::uint64_t>(kRanks) * (kRanks - 1) * kRounds);
}

TEST(StressComm, LargePayloadIntegrity) {
  cluster::InProcessCluster net(2);
  net.run([&](cluster::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> big(1 << 18);  // 2 MB
      std::iota(big.begin(), big.end(), 7ULL);
      comm.send_vector(1, big, 1);
    } else {
      const auto big = comm.recv_vector<std::uint64_t>(0, 1);
      ASSERT_EQ(big.size(), static_cast<std::size_t>(1 << 18));
      for (std::size_t i = 0; i < big.size(); i += 4096)
        ASSERT_EQ(big[i], 7ULL + i);
      EXPECT_EQ(big.back(), 7ULL + big.size() - 1);
    }
  });
  EXPECT_EQ(net.bytes_transferred(), (1u << 18) * sizeof(std::uint64_t));
}

TEST(StressCheckpoint, ConcurrentAppendsAllSurvive) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path =
      (dir / ("tingex_stress_" + std::to_string(::getpid()) + ".ckpt")).string();
  constexpr int kThreads = 6;
  constexpr int kTilesPerThread = 40;
  {
    CheckpointWriter writer(path, RunSignature{10, 10, 2, 10, 3, 0.1});
    par::ThreadPool pool(kThreads);
    pool.run(kThreads, [&](int tid, int) {
      for (int t = 0; t < kTilesPerThread; ++t) {
        const auto tile =
            static_cast<std::size_t>(tid * kTilesPerThread + t);
        const Edge edge{static_cast<std::uint32_t>(tid),
                        static_cast<std::uint32_t>(tid + 1 + t % 3),
                        static_cast<float>(tile)};
        const Edge edges[] = {edge};
        writer.append_tile(tile, edges);
      }
    });
  }
  const CheckpointState state = load_checkpoint(path);
  EXPECT_FALSE(state.tail_truncated);
  EXPECT_EQ(state.records.size(),
            static_cast<std::size_t>(kThreads * kTilesPerThread));
  // Every tile id present exactly once, each carrying its own edge.
  const auto tiles = state.completed_tiles();
  for (std::size_t i = 0; i < tiles.size(); ++i) EXPECT_EQ(tiles[i], i);
  for (const TileRecord& record : state.records) {
    ASSERT_EQ(record.edges.size(), 1u);
    EXPECT_FLOAT_EQ(record.edges[0].weight,
                    static_cast<float>(record.tile_index));
  }
  std::filesystem::remove(path);
}

TEST(StressThreadPool, RapidRegionWidthChurn) {
  par::ThreadPool pool(8);
  std::atomic<long long> total{0};
  Xoshiro256 rng(17);
  long long expected = 0;
  for (int round = 0; round < 200; ++round) {
    const int width = 1 + static_cast<int>(rng.below(8));
    expected += width;
    pool.run(width, [&](int, int) { ++total; });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(StressParallelFor, NestedSequentialLoopsKeepCounts) {
  par::ThreadPool pool(4);
  std::atomic<std::size_t> grand_total{0};
  for (int outer = 0; outer < 30; ++outer) {
    par::parallel_for(pool, 4, 0, 257, 3, par::Schedule::Guided,
                      [&](std::size_t lo, std::size_t hi, int) {
                        grand_total += hi - lo;
                      });
  }
  EXPECT_EQ(grand_total.load(), 30u * 257u);
}

TEST(StressBarrier, ManyParticipantsManyPhases) {
  constexpr int kThreads = 12;  // heavy oversubscription on this host
  par::ThreadPool pool(kThreads);
  par::SpinBarrier barrier(kThreads);
  std::atomic<int> phase_sum{0};
  pool.run(kThreads, [&](int, int) {
    for (int phase = 0; phase < 25; ++phase) {
      ++phase_sum;
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(phase_sum.load(), kThreads * 25);
}

}  // namespace
}  // namespace tinge
