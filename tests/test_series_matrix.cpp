// GEO Series Matrix parser: the real-world ingestion path for public
// microarray compendia.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/series_matrix.h"
#include "data/tsv_io.h"

namespace tinge {
namespace {

constexpr const char* kSmallSeries =
    "!Series_title\t\"Arabidopsis stress panel\"\n"
    "!Series_platform_id\t\"GPL198\"\n"
    "!Sample_title\t\"cold 2h\"\t\"heat 2h\"\n"
    "\n"
    "!series_matrix_table_begin\n"
    "\"ID_REF\"\t\"GSM100\"\t\"GSM101\"\t\"GSM102\"\n"
    "\"AT1G01010\"\t7.31\t6.90\t7.05\n"
    "\"AT1G01020\"\t5.5\tnull\t5.9\n"
    "AT1G01030\t1.25e1\t-0.5\t\"3.75\"\n"
    "!series_matrix_table_end\n"
    "!Series_summary\t\"unused trailing metadata\"\n";

TEST(SeriesMatrix, ParsesTableAndMetadata) {
  std::stringstream in(kSmallSeries);
  const SeriesMatrix series = read_series_matrix(in);
  const ExpressionMatrix& m = series.expression;
  ASSERT_EQ(m.n_genes(), 3u);
  ASSERT_EQ(m.n_samples(), 3u);
  EXPECT_EQ(m.gene_name(0), "AT1G01010");
  EXPECT_EQ(m.gene_name(2), "AT1G01030");
  EXPECT_EQ(m.sample_names()[1], "GSM101");
  EXPECT_FLOAT_EQ(m.at(0, 0), 7.31f);
  EXPECT_TRUE(std::isnan(m.at(1, 1)));          // null cell
  EXPECT_FLOAT_EQ(m.at(2, 0), 12.5f);           // scientific notation
  EXPECT_FLOAT_EQ(m.at(2, 2), 3.75f);           // quoted number
  EXPECT_EQ(series.metadata.at("Series_title"), "Arabidopsis stress panel");
  EXPECT_EQ(series.metadata.at("Series_platform_id"), "GPL198");
  EXPECT_EQ(series.metadata.at("Sample_title"), "cold 2h");  // first value
}

TEST(SeriesMatrix, FreeTextOutsideTableIsIgnored) {
  std::stringstream in(
      "random preamble that some exports contain\n"
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\n"
      "g1\t1.0\n"
      "!series_matrix_table_end\n"
      "trailing junk\n");
  const SeriesMatrix series = read_series_matrix(in);
  EXPECT_EQ(series.expression.n_genes(), 1u);
}

TEST(SeriesMatrix, RejectsMissingTable) {
  std::stringstream in("!Series_title\t\"no table here\"\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, RejectsUnterminatedTable) {
  std::stringstream in(
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\n"
      "g1\t1.0\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, RejectsWrongHeader) {
  std::stringstream in(
      "!series_matrix_table_begin\n"
      "PROBE\tGSM1\n"
      "g1\t1.0\n"
      "!series_matrix_table_end\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, RejectsRaggedRows) {
  std::stringstream in(
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\tGSM2\n"
      "g1\t1.0\n"
      "!series_matrix_table_end\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, RejectsGarbageCells) {
  std::stringstream in(
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\n"
      "g1\tbanana\n"
      "!series_matrix_table_end\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, RejectsEmptyTable) {
  std::stringstream in(
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\n"
      "!series_matrix_table_end\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, RejectsSecondTable) {
  std::stringstream in(
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\n"
      "g1\t1\n"
      "!series_matrix_table_end\n"
      "!series_matrix_table_begin\n"
      "ID_REF\tGSM1\n"
      "g2\t2\n"
      "!series_matrix_table_end\n");
  EXPECT_THROW(read_series_matrix(in), IoError);
}

TEST(SeriesMatrix, MissingFileThrows) {
  EXPECT_THROW(read_series_matrix_file("/nonexistent/file.txt"), IoError);
}

}  // namespace
}  // namespace tinge
