// Parser robustness: every text/binary reader must reject arbitrary garbage
// with IoError — never crash, hang, or silently accept. Deterministic
// pseudo-random inputs stand in for a fuzzer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/binary_io.h"
#include "data/series_matrix.h"
#include "data/tsv_io.h"
#include "graph/graph_io.h"
#include "stats/rng.h"

namespace tinge {
namespace {

std::string random_bytes(std::size_t length, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string bytes(length, '\0');
  for (auto& c : bytes) c = static_cast<char>(rng.below(256));
  return bytes;
}

std::string random_texty(std::size_t length, std::uint64_t seed) {
  // Printable chars, tabs and newlines — the adversarial-but-plausible case.
  static constexpr char kAlphabet[] =
      "abcXYZ0123456789.-+eE\t\t\n\n \"!#";
  Xoshiro256 rng(seed);
  std::string text(length, '\0');
  for (auto& c : text)
    c = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  return text;
}

class GarbageInputs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GarbageInputs, TsvReaderThrowsOrParses) {
  std::stringstream in(random_texty(600, GetParam()));
  try {
    const ExpressionMatrix m = read_expression_tsv(in);
    // Accepting is fine only if the result is self-consistent.
    EXPECT_EQ(m.gene_names().size(), m.n_genes());
  } catch (const IoError&) {
    SUCCEED();
  }
}

TEST_P(GarbageInputs, SeriesMatrixReaderThrowsOrParses) {
  std::stringstream in(random_texty(600, GetParam() + 100));
  try {
    read_series_matrix(in);
  } catch (const IoError&) {
    SUCCEED();
  }
}

TEST_P(GarbageInputs, EdgeListReaderThrowsOrParses) {
  std::stringstream in(random_texty(400, GetParam() + 200));
  try {
    const GeneNetwork network = read_edge_list(in);
    EXPECT_TRUE(network.finalized());
  } catch (const IoError&) {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputs,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(GarbageBinary, BinaryMatrixReaderRejectsRandomBytes) {
  const auto dir = std::filesystem::temp_directory_path();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::string path =
        (dir / ("tingex_fuzz_" + std::to_string(seed) + ".bin")).string();
    {
      std::ofstream out(path, std::ios::binary);
      out << random_bytes(256, seed);
    }
    EXPECT_THROW(read_expression_binary_file(path), IoError) << seed;
    std::filesystem::remove(path);
  }
}

TEST(GarbageBinary, ValidMagicWithGarbageBodyRejected) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tingex_fuzz_magic.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "TNGX";
    out << random_bytes(128, 99);
  }
  EXPECT_THROW(read_expression_binary_file(path), IoError);
  std::filesystem::remove(path);
}

TEST(GarbageBinary, ImplausibleNameLengthRejected) {
  // Craft a header whose first gene-name length is absurd.
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tingex_fuzz_name.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "TNGX";
    const std::uint32_t version = 1;
    const std::uint64_t genes = 1, samples = 1;
    const std::uint32_t absurd = 0xFFFFFFFFu;
    out.write(reinterpret_cast<const char*>(&version), 4);
    out.write(reinterpret_cast<const char*>(&genes), 8);
    out.write(reinterpret_cast<const char*>(&samples), 8);
    out.write(reinterpret_cast<const char*>(&absurd), 4);
  }
  EXPECT_THROW(read_expression_binary_file(path), IoError);
  std::filesystem::remove(path);
}

TEST(GarbageCheckpointLike, TruncatedAtEveryByteBoundary) {
  // A valid TSV truncated at every prefix must parse or throw, never hang.
  const std::string full =
      "gene\ts1\ts2\ng1\t1.0\t2.0\ng2\t3.0\t4.0\n";
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream in(full.substr(0, cut));
    try {
      read_expression_tsv(in);
    } catch (const IoError&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace tinge
