// Fault-injection layer: plan parsing, the FaultyTransport decorator, and
// how an injected kill plays out across a live cluster — the faulted rank
// dies with InjectedFault, the survivors observe it as PeerFailureError /
// TimeoutError instead of hanging.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/faulty_transport.h"
#include "cluster/transport.h"

namespace tinge::cluster {
namespace {

// ---- plan parsing ----------------------------------------------------------

TEST(FaultPlanTransportTest, ParsesFullSpec) {
  const FaultPlan plan = parse_fault_plan(
      "rank=2,delay-ms=5,jitter-ms=3,drop-after=7,kill-after=11,mode=exit,"
      "exit-code=42,seed=99");
  EXPECT_EQ(plan.rank, 2);
  EXPECT_DOUBLE_EQ(plan.delay_ms, 5.0);
  EXPECT_DOUBLE_EQ(plan.jitter_ms, 3.0);
  EXPECT_EQ(plan.drop_after, 7);
  EXPECT_EQ(plan.kill_after, 11);
  EXPECT_EQ(plan.kill_mode, KillMode::Exit);
  EXPECT_EQ(plan.exit_code, 42);
  EXPECT_EQ(plan.seed, 99u);
}

TEST(FaultPlanTransportTest, DefaultsAreInert) {
  const FaultPlan plan = parse_fault_plan("");
  EXPECT_EQ(plan.rank, -1);
  EXPECT_EQ(plan.drop_after, -1);
  EXPECT_EQ(plan.kill_after, -1);
  EXPECT_LT(plan.kill_at_fraction, 0.0);
  EXPECT_EQ(plan.kill_mode, KillMode::Throw);
}

TEST(FaultPlanTransportTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("bogus-key=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("rank"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("rank=one"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("delay-ms=fast"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("mode=segfault"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill-at=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill-at=-0.1"), std::invalid_argument);
}

TEST(FaultPlanTransportTest, KillFractionResolvesToAnOpCount) {
  FaultPlan plan = parse_fault_plan("rank=1,kill-at=0.5");
  EXPECT_EQ(plan.kill_after, -1);
  resolve_kill_fraction(plan, /*cluster_size=*/4);
  // Expected ops at P=4: 2 + 2*3 + 2 = 10; half of that is 5.
  EXPECT_EQ(plan.kill_after, 5);

  // Tiny fractions still kill at op 1, never op 0 (which would fire
  // before any data moved).
  FaultPlan early = parse_fault_plan("kill-at=0.0");
  resolve_kill_fraction(early, 4);
  EXPECT_EQ(early.kill_after, 1);

  // An explicit kill-after wins over the fraction.
  FaultPlan fixed = parse_fault_plan("kill-at=0.5,kill-after=3");
  resolve_kill_fraction(fixed, 4);
  EXPECT_EQ(fixed.kill_after, 3);
}

// ---- the decorator against a live endpoint ---------------------------------

/// A 1-rank loopback endpoint: enough to exercise the decorator's own
/// logic (arming, op counting, drops, kills) without a full mesh.
std::unique_ptr<Transport> loopback() {
  return make_transport(TransportKind::InProcess, TransportOptions{});
}

TEST(FaultyTransportTest, DisarmedOnOtherRanksAndForwards) {
  const auto inner = loopback();
  FaultPlan plan = parse_fault_plan("rank=1,kill-after=1");
  FaultyTransport faulty(*inner, plan);  // loopback is rank 0: plan inert
  EXPECT_FALSE(faulty.armed());
  Comm comm(faulty);
  comm.send_vector(0, std::vector<int>{5}, 1);
  EXPECT_EQ(comm.recv_vector<int>(0, 1).at(0), 5);
  EXPECT_EQ(faulty.ops(), 2);  // ops are counted even when disarmed
  EXPECT_EQ(faulty.dropped_sends(), 0);
}

TEST(FaultyTransportTest, KillAfterThrowsAtTheConfiguredOp) {
  const auto inner = loopback();
  FaultPlan plan = parse_fault_plan("rank=0,kill-after=3,mode=throw");
  FaultyTransport faulty(*inner, plan);
  ASSERT_TRUE(faulty.armed());
  Comm comm(faulty);
  comm.send_vector(0, std::vector<int>{1}, 1);               // op 1
  EXPECT_EQ(comm.recv_vector<int>(0, 1).at(0), 1);           // op 2
  EXPECT_THROW(comm.send_vector(0, std::vector<int>{2}, 1),  // op 3: boom
               InjectedFault);
  EXPECT_EQ(faulty.ops(), 3);
}

TEST(FaultyTransportTest, ArmedKillAlsoFiresAtABarrier) {
  // kill-after=0 means "dead before any data op"; a barrier-only phase
  // must still fire the kill rather than let the doomed rank slip through.
  const auto inner = loopback();
  const FaultPlan plan = parse_fault_plan("kill-after=0");
  FaultyTransport faulty(*inner, plan);
  Comm comm(faulty);
  EXPECT_THROW(comm.barrier(), InjectedFault);
}

TEST(FaultyTransportTest, DropAfterSwallowsSendsSilently) {
  const auto inner = loopback();
  FaultPlan plan = parse_fault_plan("rank=0,drop-after=1");
  FaultyTransport faulty(*inner, plan);
  Comm comm(faulty);
  comm.send_vector(0, std::vector<int>{1}, 1);  // delivered
  comm.send_vector(0, std::vector<int>{2}, 1);  // dropped
  comm.send_vector(0, std::vector<int>{3}, 1);  // dropped
  EXPECT_EQ(faulty.dropped_sends(), 2);
  EXPECT_EQ(comm.recv_vector<int>(0, 1).at(0), 1);
  // Only the delivered message reached the inner endpoint's accounting.
  EXPECT_EQ(inner->messages_sent(), 1u);
}

// ---- fault playing out across a cluster ------------------------------------

TEST(FaultyClusterTest, SurvivorsObserveAnInjectedKill) {
  // Rank 1 dies on its 2nd data op (the recv below); rank 0, blocked on a
  // recv from it, must observe PeerFailureError via the done-roster — the
  // cluster terminates with the injected fault, nobody hangs.
  const auto cluster = make_cluster(TransportKind::InProcess, 2);
  const FaultPlan plan = parse_fault_plan("rank=1,kill-after=2,mode=throw");
  std::atomic<int> peer_failures{0};
  EXPECT_THROW(cluster->run([&](Comm& comm) {
                 FaultyTransport faulty(comm.transport(), plan);
                 Comm faulted(faulty);
                 if (comm.rank() == 1) {
                   faulted.send_vector(0, std::vector<int>{1}, 1);  // op 1
                   faulted.recv(0, 2);  // op 2: killed here
                 } else {
                   try {
                     comm.recv(1, 3);  // never sent: fails via done-roster
                   } catch (const PeerFailureError&) {
                     ++peer_failures;
                     throw;
                   }
                 }
               }),
               std::runtime_error);  // first error wins; either side's works
  EXPECT_EQ(peer_failures.load(), 1);
}

TEST(FaultyClusterTest, DroppedMessageSurfacesAsRecvTimeout) {
  // The classic lost-message fault: the sender keeps running but its send
  // was swallowed, so only the receiver's deadline can catch it.
  const auto cluster = make_cluster(TransportKind::InProcess, 2);
  const FaultPlan plan = parse_fault_plan("rank=1,drop-after=0");
  std::atomic<bool> timed_out{false};
  EXPECT_THROW(cluster->run([&](Comm& comm) {
                 FaultyTransport faulty(comm.transport(), plan);
                 Comm faulted(faulty);
                 if (comm.rank() == 1) {
                   faulted.send_vector(0, std::vector<int>{9}, 1);  // dropped
                   faulted.recv(0, 2);  // stays alive, waiting forever
                 } else {
                   try {
                     comm.recv(1, 1, /*timeout_seconds=*/0.3);
                   } catch (const TimeoutError&) {
                     timed_out = true;
                     throw;
                   }
                 }
               }),
               std::runtime_error);
  EXPECT_TRUE(timed_out.load());
}

}  // namespace
}  // namespace tinge::cluster
