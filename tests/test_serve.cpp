// Serve-path correctness: every answer the query daemon hands out must be
// bit-identical to what the batch pipeline computes for the same dataset,
// estimator and seed — cold cache, warm cache, direct planner calls or the
// full framed-TCP round trip. Plus the daemon's failure discipline: a
// client vanishing mid-frame is routine, never fatal.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "cluster/framing.h"
#include "cluster/serve_client.h"
#include "cluster/serve_server.h"
#include "core/mi_engine.h"
#include "core/mi_query.h"
#include "core/pair_statistic.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "preprocess/filter.h"
#include "preprocess/rank_transform.h"
#include "synth/expression.h"
#include "util/contracts.h"

namespace tinge {
namespace {

using cluster::ServeClient;
using cluster::ServeEdge;
using cluster::ServeOptions;
using cluster::ServeServer;
using cluster::ServeState;

ExpressionMatrix test_expression(std::size_t n_genes, std::size_t n_samples) {
  GrnParams grn;
  grn.n_genes = n_genes;
  ExpressionParams arrays;
  arrays.n_samples = n_samples;
  return simulate_expression(generate_grn(grn), arrays);
}

TingeConfig test_config() {
  TingeConfig config;
  config.permutations = 100;  // the null only gates the network threshold
  config.tile_size = 16;      // several blocks even at test sizes
  config.threads = 2;
  return config;
}

/// The batch pipeline's dense MI matrix over the same preprocessing the
/// serve state runs — the bit-level reference every query must match.
struct BatchReference {
  ExpressionMatrix working;
  RankedMatrix ranked;
  std::unique_ptr<PairStatistic> statistic;
  std::vector<float> dense;

  BatchReference(ExpressionMatrix&& expression, const TingeConfig& config) {
    working = std::move(expression);
    impute_missing_with_median(working);
    FilterResult filtered = filter_genes(working, config.filter);
    working = std::move(filtered.matrix);
    ranked = RankedMatrix(working);
    statistic = make_pair_statistic(config, ranked, &working);
    par::ThreadPool pool(2);
    const MiEngine engine(*statistic, ranked);
    dense = engine.compute_dense(config, pool);
  }
};

// ---- the query planner, called directly ------------------------------------

class ServeQueryEngineTest : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(ServeQueryEngineTest, ColdAndWarmQueriesBitMatchTheBatchSweep) {
  TingeConfig config = test_config();
  config.estimator = GetParam();
  const ExpressionMatrix expression = test_expression(40, 96);
  const BatchReference reference(expression.clone(), config);
  const std::size_t n = reference.ranked.n_genes();
  ASSERT_GE(n, 2u);

  par::ThreadPool pool(2);
  TileCache cache(std::size_t(16) << 20);
  MiQueryEngine engine(*reference.statistic, reference.ranked, config, &pool,
                       cache, "test");

  std::vector<GenePair> pairs;
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = a + 1; b < n; ++b)
      pairs.push_back(GenePair{a, b});

  // Cold: every tile is swept through the same executor as the batch pass.
  const std::vector<double> cold = engine.pair_values(pairs);
  ASSERT_EQ(cold.size(), pairs.size());
  const std::uint64_t tiles_cold = engine.tiles_swept();
  EXPECT_GT(tiles_cold, 1u);  // tile_size 16 over 40 genes: several blocks
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const float batch = reference.dense[pairs[i].a * n + pairs[i].b];
    const float served = static_cast<float>(cold[i]);
    ASSERT_EQ(std::memcmp(&batch, &served, sizeof(float)), 0)
        << "pair (" << pairs[i].a << ", " << pairs[i].b << ") diverged";
  }

  // Warm: the cache answers alone — same bits, zero new sweeps.
  const std::uint64_t hits_before = cache.hits();
  const std::vector<double> warm = engine.pair_values(pairs);
  EXPECT_EQ(engine.tiles_swept(), tiles_cold)
      << "a warm pair query re-ran its panel sweep";
  EXPECT_GT(cache.hits(), hits_before);
  EXPECT_EQ(cold, warm);
}

INSTANTIATE_TEST_SUITE_P(Estimators, ServeQueryEngineTest,
                         ::testing::Values(EstimatorKind::Bspline,
                                           EstimatorKind::Pearson),
                         [](const auto& param_info) {
                           return std::string(
                               estimator_name(param_info.param));
                         });

TEST(ServeQueryEngine, DisabledCacheStillAnswersIdentically) {
  const TingeConfig config = test_config();
  const ExpressionMatrix expression = test_expression(24, 64);
  const BatchReference reference(expression.clone(), config);
  const std::size_t n = reference.ranked.n_genes();

  TileCache cold_cache(0);  // disabled: every query re-sweeps
  MiQueryEngine engine(*reference.statistic, reference.ranked, config,
                       nullptr, cold_cache, "test");
  const std::vector<GenePair> pairs{{0, 1}, {2, 3}, {0, static_cast<std::uint32_t>(n - 1)}};
  const std::vector<double> first = engine.pair_values(pairs);
  const std::uint64_t swept = engine.tiles_swept();
  const std::vector<double> second = engine.pair_values(pairs);
  EXPECT_EQ(first, second);
  EXPECT_GT(engine.tiles_swept(), swept);  // nothing was retained
  EXPECT_EQ(cold_cache.entries(), 0u);
}

TEST(ServeQueryEngine, RejectsDegenerateAndOutOfRangePairs) {
  const TingeConfig config = test_config();
  const ExpressionMatrix expression = test_expression(24, 64);
  const BatchReference reference(expression.clone(), config);
  TileCache cache(1 << 20);
  MiQueryEngine engine(*reference.statistic, reference.ranked, config,
                       nullptr, cache, "test");
  EXPECT_THROW(engine.pair_values(std::vector<GenePair>{{3, 3}}),
               ContractViolation);
  EXPECT_THROW(engine.pair_values(std::vector<GenePair>{{0, 100000}}),
               ContractViolation);
}

TEST(ServeTileCache, EvictsLeastRecentlyUsedWithinBudget) {
  Tile tile;
  tile.row_begin = 0;
  tile.row_end = 8;
  tile.col_begin = 0;
  tile.col_end = 8;
  const auto values = std::make_shared<TileValues>(tile);
  const std::size_t unit = values->bytes();

  TileCache cache(2 * unit + unit / 2);  // room for two entries
  const auto key = [](std::size_t block) {
    return TileCacheKey{"d", EstimatorKind::Bspline, "k", block, block};
  };
  cache.put(key(0), values);
  cache.put(key(1), std::make_shared<TileValues>(tile));
  EXPECT_EQ(cache.entries(), 2u);
  ASSERT_NE(cache.get(key(0)), nullptr);  // touch 0: 1 becomes the LRU
  cache.put(key(2), std::make_shared<TileValues>(tile));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.get(key(0)), nullptr);
  EXPECT_EQ(cache.get(key(1)), nullptr);  // the evicted one
  EXPECT_NE(cache.get(key(2)), nullptr);

  // An entry evicted while a request still holds the shared_ptr stays
  // valid for that request.
  EXPECT_EQ(values->tile().row_end, 8u);
}

// ---- the resident state ----------------------------------------------------

TEST(ServeState, CheckpointJournalRestoresTheNetworkOnRestart) {
  const std::string path =
      ::testing::TempDir() + "serve_restore_test.ckpt";
  std::remove(path.c_str());
  TingeConfig config = test_config();
  config.checkpoint_path = path;
  const ExpressionMatrix expression = test_expression(40, 96);
  const ServeOptions options;

  const ServeState first(expression.clone(), config, options);
  EXPECT_EQ(first.build_stats().tiles_resumed, 0u);
  ASSERT_GT(first.build_stats().tiles, 0u);

  // Second daemon start, same dataset and config: the kept journal must
  // restore every tile instead of recomputing.
  const ServeState second(expression.clone(), config, options);
  EXPECT_EQ(second.build_stats().tiles_resumed,
            second.build_stats().tiles);
  ASSERT_EQ(second.network().n_edges(), first.network().n_edges());
  const auto first_edges = first.network().edges();
  const auto second_edges = second.network().edges();
  for (std::size_t i = 0; i < first_edges.size(); ++i) {
    EXPECT_EQ(first_edges[i].u, second_edges[i].u);
    EXPECT_EQ(first_edges[i].v, second_edges[i].v);
    EXPECT_EQ(first_edges[i].weight, second_edges[i].weight);
  }
  std::remove(path.c_str());
}

// ---- the daemon over real sockets ------------------------------------------

class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = test_config();
    expression_ = test_expression(40, 96);
    options_.flush_deadline_ms = 1.0;
    state_ = std::make_unique<ServeState>(expression_.clone(), config_,
                                          options_);
    server_ = std::make_unique<ServeServer>(*state_, options_);
  }

  TingeConfig config_;
  ExpressionMatrix expression_;
  ServeOptions options_;
  std::unique_ptr<ServeState> state_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeDaemonTest, PairQueriesOverTcpBitMatchTheBatchPipeline) {
  const BatchReference reference(expression_.clone(), config_);
  const std::size_t n = reference.ranked.n_genes();
  ServeClient client("127.0.0.1", server_->port());

  std::vector<GenePair> pairs;
  for (std::uint32_t a = 0; a < n; a += 3)
    for (std::uint32_t b = a + 1; b < n; b += 5)
      pairs.push_back(GenePair{a, b});
  const std::vector<double> values = client.mi_pairs(pairs);
  ASSERT_EQ(values.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const float batch = reference.dense[pairs[i].a * n + pairs[i].b];
    const float served = static_cast<float>(values[i]);
    ASSERT_EQ(std::memcmp(&batch, &served, sizeof(float)), 0);
  }

  // Second round trip: answered from the warm tile cache, same bits.
  const std::uint64_t hits = state_->cache().hits();
  EXPECT_EQ(client.mi_pairs(pairs), values);
  EXPECT_GT(state_->cache().hits(), hits);
}

TEST_F(ServeDaemonTest, SecondaryEstimatorIsServedOnDemand) {
  TingeConfig pearson = config_;
  pearson.estimator = EstimatorKind::Pearson;
  const BatchReference reference(expression_.clone(), pearson);
  const std::size_t n = reference.ranked.n_genes();
  ServeClient client("127.0.0.1", server_->port());
  const std::vector<GenePair> pairs{{0, 1}, {5, 9}, {2, static_cast<std::uint32_t>(n - 1)}};
  const std::vector<double> values =
      client.mi_pairs(pairs, EstimatorKind::Pearson);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const float batch = reference.dense[pairs[i].a * n + pairs[i].b];
    const float served = static_cast<float>(values[i]);
    ASSERT_EQ(std::memcmp(&batch, &served, sizeof(float)), 0);
  }
}

TEST_F(ServeDaemonTest, GraphQueriesMatchTheBuiltNetwork) {
  ServeClient client("127.0.0.1", server_->port());
  const GeneNetwork& network = state_->network();

  // Subgraph over every node = the whole edge set in network order.
  std::vector<std::uint32_t> all_nodes(network.n_nodes());
  for (std::uint32_t g = 0; g < all_nodes.size(); ++g) all_nodes[g] = g;
  const std::vector<ServeEdge> everything = client.subgraph(all_nodes);
  ASSERT_EQ(everything.size(), network.n_edges());
  const auto edges = network.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(everything[i].u, edges[i].u);
    EXPECT_EQ(everything[i].v, edges[i].v);
    EXPECT_EQ(everything[i].weight, edges[i].weight);
  }

  // Top-k: the k heaviest, descending.
  const std::vector<ServeEdge> top = client.top_edges(5);
  ASSERT_LE(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].weight, top[i].weight);
  if (!top.empty()) {
    float heaviest = 0.0f;
    for (const Edge& edge : edges) heaviest = std::max(heaviest, edge.weight);
    EXPECT_EQ(top[0].weight, heaviest);
  }

  // Neighborhood: every returned edge must exist with that exact weight.
  const std::vector<ServeEdge> hood = client.neighborhood(0, 0);
  EXPECT_EQ(hood.size(), state_->adjacency().neighbors(0).size());
  for (const ServeEdge& edge : hood) {
    EXPECT_EQ(edge.u, 0u);
    EXPECT_EQ(network.edge_weight(edge.u, edge.v), edge.weight);
  }
}

TEST_F(ServeDaemonTest, MetricsQueryReturnsTheLiveRegistrySnapshot) {
  ServeClient client("127.0.0.1", server_->port());
  client.mi_pairs(std::vector<GenePair>{{0, 1}});
  const obs::Json metrics = obs::Json::parse(client.metrics_json());
  ASSERT_NE(metrics.find("counters"), nullptr);
  EXPECT_GE(metrics.at("counters").at("serve.queries").as_int(), 1);
}

TEST_F(ServeDaemonTest, ClientVanishingMidFrameLeavesTheDaemonServing) {
  // A client that dies mid-frame: open a raw socket, send half a frame
  // header, and slam the connection shut.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(server_->port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  const std::uint32_t half_header[2] = {cluster::kFrameMagic,
                                        cluster::kFrameServeRequest};
  ASSERT_EQ(::send(fd, half_header, sizeof(half_header), 0),
            static_cast<ssize_t>(sizeof(half_header)));
  ::close(fd);

  // And one that talks garbage (wrong magic) — dropped, not fatal.
  const int junk = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(junk, 0);
  ASSERT_EQ(::connect(junk, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  const char noise[24] = "this is not a frame....";
  ASSERT_EQ(::send(junk, noise, sizeof(noise), 0),
            static_cast<ssize_t>(sizeof(noise)));
  ::close(junk);

  // The daemon must still answer a well-behaved client.
  ServeClient client("127.0.0.1", server_->port());
  client.ping();
  const std::vector<double> values =
      client.mi_pairs(std::vector<GenePair>{{1, 2}});
  EXPECT_EQ(values.size(), 1u);
}

TEST_F(ServeDaemonTest, SweepJobStreamsProgressAndSummarizes) {
  ServeClient client("127.0.0.1", server_->port());
  std::vector<std::string> events;
  const cluster::SweepJobResult result = client.sweep_job(
      [&events](const std::string& event) { events.push_back(event); });
  EXPECT_GT(result.pairs, 0u);
  EXPECT_GT(result.tiles, 0u);
  ASSERT_GE(events.size(), 1u);
  const obs::Json event = obs::Json::parse(events.back());
  ASSERT_NE(event.find("done"), nullptr);
  ASSERT_NE(event.find("metrics"), nullptr);
}

TEST_F(ServeDaemonTest, ShutdownQueryReleasesWait) {
  std::thread waiter([this] { server_->wait(); });
  ServeClient client("127.0.0.1", server_->port());
  client.shutdown_server();
  waiter.join();  // deadlocks here = the query did not release wait()
  server_->stop();
  EXPECT_GE(server_->clients_served(), 1u);
}

}  // namespace
}  // namespace tinge
