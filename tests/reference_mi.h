// Slow, obviously-correct double-precision reference implementations used
// to validate the optimized kernels. Test-only code.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "mi/bspline.h"
#include "preprocess/rank_transform.h"

namespace tinge::testref {

/// Joint entropy H(X,Y) in nats via a dense double-precision histogram,
/// evaluating B-spline weights from scratch for every sample.
inline double joint_entropy_reference(std::span<const std::uint32_t> ranks_x,
                                      std::span<const std::uint32_t> ranks_y,
                                      int bins, int order) {
  const BsplineBasis basis(bins, order);
  const std::size_t m = ranks_x.size();
  const auto b = static_cast<std::size_t>(bins);
  std::vector<double> joint(b * b, 0.0);
  std::vector<float> wx(static_cast<std::size_t>(order));
  std::vector<float> wy(static_cast<std::size_t>(order));
  for (std::size_t j = 0; j < m; ++j) {
    const int fx = basis.evaluate(
        rank_to_unit(static_cast<float>(ranks_x[j]), m), wx.data());
    const int fy = basis.evaluate(
        rank_to_unit(static_cast<float>(ranks_y[j]), m), wy.data());
    for (int a = 0; a < order; ++a)
      for (int c = 0; c < order; ++c)
        joint[static_cast<std::size_t>(fx + a) * b +
              static_cast<std::size_t>(fy + c)] +=
            static_cast<double>(wx[static_cast<std::size_t>(a)]) *
            static_cast<double>(wy[static_cast<std::size_t>(c)]);
  }
  double h = 0.0;
  const double inv_m = 1.0 / static_cast<double>(m);
  for (const double cell : joint) {
    const double p = cell * inv_m;
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

/// Marginal entropy of the shared rank distribution, same construction.
inline double marginal_entropy_reference(std::size_t m, int bins, int order) {
  const BsplineBasis basis(bins, order);
  const auto b = static_cast<std::size_t>(bins);
  std::vector<double> marginal(b, 0.0);
  std::vector<float> w(static_cast<std::size_t>(order));
  for (std::size_t r = 0; r < m; ++r) {
    const int first =
        basis.evaluate(rank_to_unit(static_cast<float>(r), m), w.data());
    for (int a = 0; a < order; ++a)
      marginal[static_cast<std::size_t>(first + a)] +=
          static_cast<double>(w[static_cast<std::size_t>(a)]);
  }
  double h = 0.0;
  const double inv_m = 1.0 / static_cast<double>(m);
  for (const double cell : marginal) {
    const double p = cell * inv_m;
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

/// Reference MI from ranks.
inline double mi_reference(std::span<const std::uint32_t> ranks_x,
                           std::span<const std::uint32_t> ranks_y, int bins,
                           int order) {
  return 2.0 * marginal_entropy_reference(ranks_x.size(), bins, order) -
         joint_entropy_reference(ranks_x, ranks_y, bins, order);
}

}  // namespace tinge::testref
