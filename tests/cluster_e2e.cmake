# End-to-end cluster equivalence check, run as a ctest script:
#
#   cmake -DTINGE_CLI=<path> -DWORK_DIR=<dir> -P cluster_e2e.cmake
#
# The same seeded synthetic run must produce byte-identical edge lists:
#   * single-process engine,
#   * --cluster=2 --transport=inproc  (rank-threads, simulated network),
#   * --cluster=2 --transport=tcp    (real worker processes + sockets),
#   * --cluster=4 --transport=tcp,
# and the cluster manifests must carry the per-rank traffic section.

if(NOT TINGE_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DTINGE_CLI=... -DWORK_DIR=... -P cluster_e2e.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(COMMON --synthetic=60 --permutations=300 --alpha=0.01 --quiet)

function(run_cli)
  execute_process(COMMAND "${TINGE_CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tinge_cli ${ARGN} failed (exit ${rc}):\n${out}\n${err}")
  endif()
endfunction()

function(require_identical reference candidate)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${reference}" "${candidate}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${candidate} differs from ${reference}")
  endif()
endfunction()

function(require_manifest_key path key)
  file(READ "${path}" manifest)
  string(FIND "${manifest}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${path} is missing ${key}")
  endif()
endfunction()

run_cli(${COMMON} --out=${WORK_DIR}/single.tsv)
run_cli(${COMMON} --cluster=2 --transport=inproc
        --out=${WORK_DIR}/inproc2.tsv --metrics-out=${WORK_DIR}/inproc2.json)
run_cli(${COMMON} --cluster=2 --transport=tcp
        --out=${WORK_DIR}/tcp2.tsv --metrics-out=${WORK_DIR}/tcp2.json)
run_cli(${COMMON} --cluster=4 --transport=tcp --out=${WORK_DIR}/tcp4.tsv)

require_identical(${WORK_DIR}/single.tsv ${WORK_DIR}/inproc2.tsv)
require_identical(${WORK_DIR}/single.tsv ${WORK_DIR}/tcp2.tsv)
require_identical(${WORK_DIR}/single.tsv ${WORK_DIR}/tcp4.tsv)

require_manifest_key(${WORK_DIR}/inproc2.json "\"cluster\"")
require_manifest_key(${WORK_DIR}/inproc2.json "\"bytes_per_rank\"")
require_manifest_key(${WORK_DIR}/inproc2.json "\"imbalance\"")
require_manifest_key(${WORK_DIR}/tcp2.json "\"cluster\"")
require_manifest_key(${WORK_DIR}/tcp2.json "\"transport\": \"tcp\"")
require_manifest_key(${WORK_DIR}/tcp2.json "\"bytes_per_rank\"")

message(STATUS "cluster e2e: all transports produced identical networks")
