# End-to-end fault-tolerance check for the cluster runtime, run as a ctest
# script:
#
#   cmake -DTINGE_CLI=<path> -DWORK_DIR=<dir> -P cluster_fault_e2e.cmake
#
# Scenario (the acceptance criterion of the fault-tolerance layer):
#   * a 4-rank TCP run with an injected mid-sweep kill on rank 1 must
#     terminate promptly (well inside the recv deadline + teardown grace),
#     exit nonzero, and name the first failed rank in the failure manifest;
#   * the resume command the CLI prints (this invocation minus --fault)
#     must complete and produce a byte-identical edge list to an unfaulted
#     run of the same seeded input.

if(NOT TINGE_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DTINGE_CLI=... -DWORK_DIR=... -P cluster_fault_e2e.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(COMMON --synthetic=60 --permutations=300 --alpha=0.01 --quiet)

function(run_cli)
  execute_process(COMMAND "${TINGE_CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tinge_cli ${ARGN} failed (exit ${rc}):\n${out}\n${err}")
  endif()
endfunction()

function(require_identical reference candidate)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${reference}" "${candidate}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${candidate} differs from ${reference}")
  endif()
endfunction()

function(require_manifest_key path key)
  file(READ "${path}" manifest)
  string(FIND "${manifest}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${path} is missing ${key}")
  endif()
endfunction()

# Baseline: the unfaulted network this seeded input must produce.
run_cli(${COMMON} --cluster=4 --transport=tcp --out=${WORK_DIR}/base.tsv)

# Faulted run: rank 1 is killed (simulated crash, no unwinding) halfway
# through its expected data ops. Must fail fast — the 20 s recv deadline is
# the backstop, not the expected path (the launcher reaps the corpse and
# tears the survivors down immediately) — and must fail attributably.
execute_process(COMMAND "${TINGE_CLI}" ${COMMON} --cluster=4 --transport=tcp
                        --recv-timeout=20
                        --fault=rank=1,kill-at=0.5,mode=exit
                        --out=${WORK_DIR}/faulted.tsv
                        --metrics-out=${WORK_DIR}/failure.json
                RESULT_VARIABLE fault_rc
                OUTPUT_VARIABLE fault_out
                ERROR_VARIABLE fault_err
                TIMEOUT 60)
if(fault_rc EQUAL 0)
  message(FATAL_ERROR "faulted run reported success:\n${fault_out}")
endif()

require_manifest_key(${WORK_DIR}/failure.json "\"status\": \"failed\"")
require_manifest_key(${WORK_DIR}/failure.json "\"first_failed_rank\": 1")
require_manifest_key(${WORK_DIR}/failure.json "\"resume_command\"")

# The printed diagnosis names the culprit and hands back a resume command.
string(FIND "${fault_err}" "rank 1 failed first" diag_pos)
if(diag_pos EQUAL -1)
  message(FATAL_ERROR "diagnosis does not attribute rank 1:\n${fault_err}")
endif()

# Replay the resume command exactly as the manifest recorded it: it must
# succeed and reproduce the unfaulted network byte-for-byte.
file(READ "${WORK_DIR}/failure.json" manifest)
string(REGEX MATCH "\"resume_command\": \"([^\"]+)\"" _ "${manifest}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "could not extract resume_command from failure.json")
endif()
separate_arguments(resume_args UNIX_COMMAND "${CMAKE_MATCH_1}")
execute_process(COMMAND ${resume_args}
                RESULT_VARIABLE resume_rc
                OUTPUT_VARIABLE resume_out
                ERROR_VARIABLE resume_err)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "resume command failed (exit ${resume_rc}):\n${resume_out}\n${resume_err}")
endif()
require_identical(${WORK_DIR}/base.tsv ${WORK_DIR}/faulted.tsv)

# The resumed (successful) run overwrote the failure manifest with a
# normal cluster manifest.
require_manifest_key(${WORK_DIR}/failure.json "\"bytes_per_rank\"")

message(STATUS "cluster fault e2e: injected kill attributed, resume byte-identical")
