// Panel (row-reuse) kernel equivalence: joint_entropy_panel must reproduce
// the per-pair joint_entropy bit-identically for the matching kernel, across
// every supported shape, panel width, and ragged tail; and the engine's
// panel-swept network must equal a per-pair recomputation exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "core/mi_engine.h"
#include "mi/bspline_kernels.h"
#include "mi/bspline_mi.h"
#include "preprocess/rank_transform.h"
#include "reference_mi.h"
#include "stats/rng.h"

namespace tinge {
namespace {

std::vector<std::uint32_t> random_ranks(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_permutation(m, rng);
}

// bins x order x panel width x samples. Orders cover the full 1..8 ladder
// (both the 4-float and 8-float padded weight rows); m values are chosen so
// neither is a multiple of the vector or panel width (ragged tails).
class PanelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PanelEquivalence, BitIdenticalToPerPairKernels) {
  const auto [bins, order, width_int, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const auto width = static_cast<std::size_t>(width_int);
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();

  const auto rx = random_ranks(m, 4242);
  std::vector<std::vector<std::uint32_t>> ys;
  const std::uint32_t* ry[kMaxPanelWidth];
  for (std::size_t p = 0; p < width; ++p) {
    ys.push_back(random_ranks(m, 100 + p));
    ry[p] = ys.back().data();
  }

  // Per-pair references, one per kernel family.
  std::vector<double> pair_scalar(width), pair_unrolled(width),
      pair_simd(width);
  for (std::size_t p = 0; p < width; ++p) {
    pair_scalar[p] = tinge::joint_entropy(estimator.table(), rx.data(), ry[p],
                                          m, scratch, MiKernel::Scalar);
    pair_unrolled[p] = tinge::joint_entropy(estimator.table(), rx.data(),
                                            ry[p], m, scratch,
                                            MiKernel::Unrolled);
    pair_simd[p] = tinge::joint_entropy(estimator.table(), rx.data(), ry[p],
                                        m, scratch, MiKernel::Simd);
  }

  double panel[kMaxPanelWidth];

  joint_entropy_panel(estimator.table(), rx.data(), ry, width, m, scratch,
                      MiKernel::Scalar, panel);
  for (std::size_t p = 0; p < width; ++p)
    EXPECT_EQ(panel[p], pair_scalar[p]) << "scalar panel, member " << p;

  joint_entropy_panel(estimator.table(), rx.data(), ry, width, m, scratch,
                      MiKernel::Unrolled, panel);
  for (std::size_t p = 0; p < width; ++p)
    EXPECT_EQ(panel[p], pair_unrolled[p]) << "unrolled panel, member " << p;

  joint_entropy_panel(estimator.table(), rx.data(), ry, width, m, scratch,
                      MiKernel::Simd, panel);
  for (std::size_t p = 0; p < width; ++p)
    EXPECT_EQ(panel[p], pair_simd[p]) << "simd panel, member " << p;

  // Replicated and Auto map onto the panel FMA-SIMD accumulation order.
  joint_entropy_panel(estimator.table(), rx.data(), ry, width, m, scratch,
                      MiKernel::Replicated, panel);
  for (std::size_t p = 0; p < width; ++p)
    EXPECT_EQ(panel[p], pair_simd[p]) << "replicated panel, member " << p;

  if (gather512_available() && order <= 4) {
    joint_entropy_panel(estimator.table(), rx.data(), ry, width, m, scratch,
                        MiKernel::Gather512, panel);
    for (std::size_t p = 0; p < width; ++p)
      EXPECT_EQ(panel[p], pair_simd[p]) << "gather512 panel, member " << p;
  }
}

TEST_P(PanelEquivalence, MatchesDoublePrecisionReference) {
  const auto [bins, order, width_int, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const auto width = static_cast<std::size_t>(width_int);
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();

  const auto rx = random_ranks(m, 77);
  std::vector<std::vector<std::uint32_t>> ys;
  const std::uint32_t* ry[kMaxPanelWidth];
  for (std::size_t p = 0; p < width; ++p) {
    ys.push_back(random_ranks(m, 500 + p));
    ry[p] = ys.back().data();
  }
  double panel[kMaxPanelWidth];
  joint_entropy_panel(estimator.table(), rx.data(), ry, width, m, scratch,
                      MiKernel::Auto, panel);
  for (std::size_t p = 0; p < width; ++p) {
    const double reference =
        testref::joint_entropy_reference(rx, ys[p], bins, order);
    EXPECT_NEAR(panel[p], reference, 5e-4) << "member " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Panels, PanelEquivalence,
    ::testing::Combine(::testing::Values(9, 12, 16),        // bins
                       ::testing::Values(1, 2, 3, 4, 5, 6, 8),  // order
                       ::testing::Values(1, 3, 4, 8),       // panel width B
                       ::testing::Values(97, 333)),         // samples (ragged)
    [](const auto& param_info) {
      return "b" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param)) + "_B" +
             std::to_string(std::get<2>(param_info.param)) + "_m" +
             std::to_string(std::get<3>(param_info.param));
    });

TEST(PanelScratch, CarriesEnoughRegionsForAnyPanel) {
  const BsplineMi estimator(10, 3, 64);
  const JointHistogram scratch = estimator.make_scratch();
  EXPECT_GE(scratch.replicas(), kMaxPanelWidth);
  EXPECT_GE(scratch.replicas(), kHistogramReplicas);
}

TEST(PanelScratch, PanelAndPairCallsInterleaveSafely) {
  // Per-pair kernels clear only the regions they use; a panel call must not
  // poison a following per-pair call and vice versa.
  const std::size_t m = 128;
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = random_ranks(m, 1);
  const auto a = random_ranks(m, 2);
  const auto b = random_ranks(m, 3);
  const std::uint32_t* ry[2] = {a.data(), b.data()};

  const double pair_first =
      tinge::joint_entropy(estimator.table(), rx.data(), a.data(), m, scratch,
                           MiKernel::Replicated);
  double panel[2];
  joint_entropy_panel(estimator.table(), rx.data(), ry, 2, m, scratch,
                      MiKernel::Auto, panel);
  const double pair_again =
      tinge::joint_entropy(estimator.table(), rx.data(), a.data(), m, scratch,
                           MiKernel::Replicated);
  EXPECT_EQ(pair_first, pair_again);
  double panel_again[2];
  joint_entropy_panel(estimator.table(), rx.data(), ry, 2, m, scratch,
                      MiKernel::Auto, panel_again);
  EXPECT_EQ(panel[0], panel_again[0]);
  EXPECT_EQ(panel[1], panel_again[1]);
}

TEST(PanelPolicy, AutoWidthIsInRangeAndShrinksWithBins) {
  const WeightTable small(64, BsplineBasis(10, 3));
  const int w_small = auto_panel_width(small);
  EXPECT_GE(w_small, 1);
  EXPECT_LE(w_small, kMaxPanelWidth);
  // TINGe-default histograms are a few KB; the budget fits the full panel.
  EXPECT_EQ(w_small, kMaxPanelWidth);
  const WeightTable big(64, BsplineBasis(30, 3));
  EXPECT_LE(auto_panel_width(big), w_small);
}

TEST(PanelPolicy, PanelResolutionLadder) {
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Scalar, 3), MiKernel::Scalar);
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Unrolled, 3), MiKernel::Unrolled);
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Simd, 3), MiKernel::Simd);
  // Panel interleaving replaces histogram replication.
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Replicated, 3), MiKernel::Simd);
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Auto, 3), MiKernel::Simd);
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Auto, 6), MiKernel::Simd);
  // Gather512 runs only where the per-pair kernel would (ISA + order gate).
  if (gather512_available()) {
    EXPECT_EQ(resolve_panel_kernel(MiKernel::Gather512, 3),
              MiKernel::Gather512);
  } else {
    EXPECT_EQ(resolve_panel_kernel(MiKernel::Gather512, 3), MiKernel::Simd);
  }
  EXPECT_EQ(resolve_panel_kernel(MiKernel::Gather512, 6), MiKernel::Simd);
}

TEST(PanelPolicy, MeasuredAutoPicksAConcreteEligibleKernel) {
  const WeightTable table(256, BsplineBasis(10, 3));
  const MiKernel pair = resolve_kernel_measured(MiKernel::Auto, table, 1);
  EXPECT_TRUE(pair == MiKernel::Replicated || pair == MiKernel::Gather512);
  if (!gather512_available()) EXPECT_EQ(pair, MiKernel::Replicated);
  const MiKernel panel = resolve_kernel_measured(MiKernel::Auto, table, 8);
  EXPECT_TRUE(panel == MiKernel::Simd || panel == MiKernel::Gather512);
  // Explicit kernels pass through untouched (the config override).
  EXPECT_EQ(resolve_kernel_measured(MiKernel::Scalar, table, 8),
            MiKernel::Scalar);
  EXPECT_EQ(resolve_kernel_measured(MiKernel::Gather512, table, 1),
            MiKernel::Gather512);
  // One-shot: the verdict is cached and stable within a process.
  EXPECT_EQ(panel, resolve_kernel_measured(MiKernel::Auto, table, 8));
}

// ---- engine determinism: panel sweep vs per-pair seed path -----------------

struct EdgeKey {
  std::uint32_t u, v;
  float w;
  bool operator<(const EdgeKey& o) const {
    return std::tie(u, v, w) < std::tie(o.u, o.v, o.w);
  }
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

class PanelEngineFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 30;
  static constexpr std::size_t kSamples = 120;

  PanelEngineFixture() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(20260806);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix.at(g, s) = static_cast<float>(
            g % 4 == 0 ? driver + 0.7 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix);
  }

  /// Per-pair recomputation with an explicit kernel — the seed code path.
  std::set<EdgeKey> per_pair_edges(MiKernel kernel, double threshold) const {
    JointHistogram scratch = estimator_.make_scratch();
    std::set<EdgeKey> edges;
    const auto threshold_f = static_cast<float>(threshold);
    for (std::size_t i = 0; i < kGenes; ++i) {
      for (std::size_t j = i + 1; j < kGenes; ++j) {
        const auto mi = static_cast<float>(estimator_.mi(
            ranked_.ranks(i), ranked_.ranks(j), scratch, kernel));
        if (mi >= threshold_f)
          edges.insert({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(j), mi});
      }
    }
    return edges;
  }

  static std::set<EdgeKey> to_set(const GeneNetwork& network) {
    std::set<EdgeKey> edges;
    for (const Edge& e : network.edges()) edges.insert({e.u, e.v, e.weight});
    return edges;
  }

  BsplineMi estimator_;
  RankedMatrix ranked_;
};

TEST_F(PanelEngineFixture, NetworkEdgesIdenticalToPerPairPath) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(3);
  const double threshold = 0.12;
  // Simd maps to the identical panel accumulation order, so the edge sets
  // (including weights, bit for bit) must match the per-pair seed path.
  for (const MiKernel kernel : {MiKernel::Scalar, MiKernel::Simd}) {
    const std::set<EdgeKey> expected = per_pair_edges(kernel, threshold);
    for (const int panel_width : {0, 1, 3, 8}) {
      TingeConfig config;
      config.kernel = kernel;
      config.panel_width = panel_width;
      config.tile_size = 7;  // forces ragged tile edges
      config.threads = 3;
      EngineStats stats;
      const GeneNetwork network =
          engine.compute_network(threshold, config, pool, &stats);
      EXPECT_EQ(to_set(network), expected)
          << kernel_name(kernel) << " B=" << panel_width;
      EXPECT_GE(stats.panel_width, 1);
      if (panel_width > 0) EXPECT_EQ(stats.panel_width, panel_width);
    }
  }
}

TEST_F(PanelEngineFixture, DensePanelMatchesPerPairBitwise) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  TingeConfig config;
  config.kernel = MiKernel::Simd;
  config.tile_size = 9;
  const auto dense = engine.compute_dense(config, pool);
  JointHistogram scratch = estimator_.make_scratch();
  for (std::size_t i = 0; i < kGenes; ++i) {
    for (std::size_t j = i + 1; j < kGenes; ++j) {
      const auto expected = static_cast<float>(estimator_.mi(
          ranked_.ranks(i), ranked_.ranks(j), scratch, MiKernel::Simd));
      EXPECT_EQ(dense[i * kGenes + j], expected) << i << "," << j;
      EXPECT_EQ(dense[j * kGenes + i], expected) << j << "," << i;
    }
  }
}

TEST_F(PanelEngineFixture, StatsReportResolvedKernelAndPanelWidth) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  TingeConfig config;
  EngineStats stats;
  engine.compute_network(0.2, config, pool, &stats);
  EXPECT_STRNE(stats.kernel, "?");
  // Auto resolves to a concrete variant name, never the policy name.
  EXPECT_STRNE(stats.kernel, "auto");
  EXPECT_GE(stats.panel_width, 1);
  EXPECT_LE(stats.panel_width, kMaxPanelWidth);

  config.kernel = MiKernel::Scalar;
  config.panel_width = 5;
  engine.compute_network(0.2, config, pool, &stats);
  EXPECT_STREQ(stats.kernel, "scalar");
  EXPECT_EQ(stats.panel_width, 5);
}

}  // namespace
}  // namespace tinge
