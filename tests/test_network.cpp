// Graph substrate: network container invariants, adjacency, components,
// edge-list/SIF I/O, recovery metrics.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <unistd.h>

#include "data/tsv_io.h"
#include "graph/graph_io.h"
#include "graph/metrics.h"
#include "graph/network.h"

namespace tinge {
namespace {

GeneNetwork small_network() {
  GeneNetwork network({"a", "b", "c", "d", "e"});
  network.add_edge(0, 1, 0.9f);
  network.add_edge(1, 2, 0.5f);
  network.add_edge(3, 0, 0.2f);  // reversed endpoints on purpose
  network.finalize();
  return network;
}

TEST(GeneNetwork, NormalizesEndpointOrder) {
  const GeneNetwork network = small_network();
  for (const Edge& e : network.edges()) EXPECT_LT(e.u, e.v);
  EXPECT_TRUE(network.has_edge(0, 3));
  EXPECT_TRUE(network.has_edge(3, 0));
  EXPECT_FLOAT_EQ(network.edge_weight(3, 0), 0.2f);
}

TEST(GeneNetwork, RejectsSelfLoopsAndBadNodes) {
  GeneNetwork network({"a", "b"});
  EXPECT_THROW(network.add_edge(0, 0, 1.0f), ContractViolation);
  EXPECT_THROW(network.add_edge(0, 2, 1.0f), ContractViolation);
}

TEST(GeneNetwork, FinalizeMergesDuplicatesKeepingMax) {
  GeneNetwork network({"a", "b"});
  network.add_edge(0, 1, 0.3f);
  network.add_edge(1, 0, 0.7f);
  network.add_edge(0, 1, 0.5f);
  network.finalize();
  EXPECT_EQ(network.n_edges(), 1u);
  EXPECT_FLOAT_EQ(network.edge_weight(0, 1), 0.7f);
}

TEST(GeneNetwork, EdgeWeightNegativeWhenAbsent) {
  const GeneNetwork network = small_network();
  EXPECT_LT(network.edge_weight(2, 4), 0.0f);
  EXPECT_FALSE(network.has_edge(2, 4));
  EXPECT_FALSE(network.has_edge(1, 1));
}

TEST(GeneNetwork, QueriesRequireFinalize) {
  GeneNetwork network({"a", "b"});
  network.add_edge(0, 1, 1.0f);
  EXPECT_THROW(network.edge_weight(0, 1), ContractViolation);
  EXPECT_THROW(network.degrees(), ContractViolation);
}

TEST(GeneNetwork, Degrees) {
  const auto degrees = small_network().degrees();
  EXPECT_EQ(degrees, (std::vector<std::size_t>{2, 2, 1, 1, 0}));
}

TEST(GeneNetwork, ThresholdedKeepsStrongEdges) {
  const GeneNetwork filtered = small_network().thresholded(0.5f);
  EXPECT_EQ(filtered.n_edges(), 2u);
  EXPECT_TRUE(filtered.has_edge(0, 1));
  EXPECT_TRUE(filtered.has_edge(1, 2));
  EXPECT_FALSE(filtered.has_edge(0, 3));
}

TEST(GeneNetwork, AddEdgesBulkValidates) {
  GeneNetwork network({"a", "b", "c"});
  const Edge good[] = {{0, 1, 1.0f}};
  network.add_edges(good);
  const Edge bad_order[] = {{1, 0, 1.0f}};
  EXPECT_THROW(network.add_edges(bad_order), ContractViolation);
  const Edge bad_node[] = {{0, 3, 1.0f}};
  EXPECT_THROW(network.add_edges(bad_node), ContractViolation);
}

TEST(Adjacency, NeighborsSortedWithWeights) {
  const Adjacency adjacency(small_network());
  const auto n1 = adjacency.neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].node, 0u);
  EXPECT_FLOAT_EQ(n1[0].weight, 0.9f);
  EXPECT_EQ(n1[1].node, 2u);
  const auto n4 = adjacency.neighbors(4);
  EXPECT_TRUE(n4.empty());
}

TEST(Components, CountsIsolatedNodes) {
  EXPECT_EQ(connected_components(small_network()), 2u);  // {a,b,c,d} and {e}
  GeneNetwork empty({"x", "y", "z"});
  empty.finalize();
  EXPECT_EQ(connected_components(empty), 3u);
}

// ---- I/O ------------------------------------------------------------------------

TEST(GraphIo, EdgeListRoundtripPreservesEverything) {
  const GeneNetwork network = small_network();
  std::stringstream stream;
  write_edge_list(network, stream);
  const GeneNetwork back = read_edge_list(stream);
  EXPECT_EQ(back.n_nodes(), network.n_nodes());  // isolated "e" survives
  EXPECT_EQ(back.n_edges(), network.n_edges());
  EXPECT_EQ(back.node_names(), network.node_names());
  for (const Edge& e : network.edges())
    EXPECT_FLOAT_EQ(back.edge_weight(e.u, e.v), e.weight);
}

TEST(GraphIo, ReadsHeaderlessEdgeLists) {
  std::stringstream stream("x\ty\t0.5\ny\tz\t0.25\n");
  const GeneNetwork network = read_edge_list(stream);
  EXPECT_EQ(network.n_nodes(), 3u);
  EXPECT_EQ(network.n_edges(), 2u);
  EXPECT_FLOAT_EQ(
      network.edge_weight(0, 1), 0.5f);  // first-appearance ids: x=0, y=1
}

TEST(GraphIo, RejectsMalformedRows) {
  std::stringstream stream("a\tb\n");
  EXPECT_THROW(read_edge_list(stream), IoError);
  std::stringstream stream2("a\tb\tnotanumber\n");
  EXPECT_THROW(read_edge_list(stream2), IoError);
}

TEST(GraphIo, SifFormat) {
  std::stringstream stream;
  write_sif(small_network(), stream);
  const std::string sif = stream.str();
  EXPECT_NE(sif.find("a\tmi\tb"), std::string::npos);
  EXPECT_NE(sif.find("b\tmi\tc"), std::string::npos);
}

TEST(GraphIo, FileRoundtrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tingex_graph_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "net.tsv").string();
  write_edge_list_file(small_network(), path);
  const GeneNetwork back = read_edge_list_file(path);
  EXPECT_EQ(back.n_edges(), 3u);
  std::filesystem::remove_all(dir);
}

// ---- metrics -----------------------------------------------------------------------

TEST(Metrics, ConfusionHandComputed) {
  GeneNetwork truth({"a", "b", "c", "d"});
  truth.add_edge(0, 1, 1.0f);
  truth.add_edge(1, 2, 1.0f);
  truth.finalize();
  GeneNetwork predicted({"a", "b", "c", "d"});
  predicted.add_edge(0, 1, 0.9f);  // TP
  predicted.add_edge(2, 3, 0.8f);  // FP
  predicted.finalize();
  const Confusion c = compare_networks(predicted, truth);
  EXPECT_EQ(c.true_positive, 1u);
  EXPECT_EQ(c.false_positive, 1u);
  EXPECT_EQ(c.false_negative, 1u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
}

TEST(Metrics, ConfusionDegenerateCases) {
  GeneNetwork empty({"a", "b"});
  empty.finalize();
  const Confusion c = compare_networks(empty, empty);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Metrics, PerfectRankingGivesAveragePrecisionOne) {
  GeneNetwork truth({"a", "b", "c", "d"});
  truth.add_edge(0, 1, 1.0f);
  truth.add_edge(2, 3, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c", "d"});
  scored.add_edge(0, 1, 0.9f);
  scored.add_edge(2, 3, 0.8f);
  scored.add_edge(0, 2, 0.1f);  // false edge ranked last
  scored.finalize();
  EXPECT_DOUBLE_EQ(average_precision(scored, truth), 1.0);
}

TEST(Metrics, WorstRankingGivesLowAveragePrecision) {
  GeneNetwork truth({"a", "b", "c", "d"});
  truth.add_edge(0, 1, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c", "d"});
  scored.add_edge(0, 2, 0.9f);
  scored.add_edge(1, 3, 0.8f);
  scored.add_edge(0, 1, 0.1f);  // the true edge ranked last
  scored.finalize();
  EXPECT_NEAR(average_precision(scored, truth), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, MissedEdgesLowerAveragePrecision) {
  GeneNetwork truth({"a", "b", "c", "d"});
  truth.add_edge(0, 1, 1.0f);
  truth.add_edge(2, 3, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c", "d"});
  scored.add_edge(0, 1, 0.9f);  // only recovers half
  scored.finalize();
  EXPECT_DOUBLE_EQ(average_precision(scored, truth), 0.5);
}

TEST(Metrics, EmptyTruthGivesZero) {
  GeneNetwork truth({"a", "b"});
  truth.finalize();
  GeneNetwork scored({"a", "b"});
  scored.add_edge(0, 1, 1.0f);
  scored.finalize();
  EXPECT_DOUBLE_EQ(average_precision(scored, truth), 0.0);
}

TEST(Metrics, DegreeHistogram) {
  const auto histogram = degree_histogram(small_network());
  // degrees: 2,2,1,1,0 -> hist[0]=1, hist[1]=2, hist[2]=2
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 2u);
}

TEST(Metrics, MismatchedNodeUniverseRejected) {
  GeneNetwork a({"x", "y"});
  a.finalize();
  GeneNetwork b({"x", "y", "z"});
  b.finalize();
  EXPECT_THROW(compare_networks(a, b), ContractViolation);
  EXPECT_THROW(average_precision(a, b), ContractViolation);
}


TEST(Auroc, PerfectRankingGivesOne) {
  GeneNetwork truth({"a", "b", "c", "d"});
  truth.add_edge(0, 1, 1.0f);
  truth.add_edge(2, 3, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c", "d"});
  scored.add_edge(0, 1, 0.9f);
  scored.add_edge(2, 3, 0.8f);
  scored.add_edge(0, 2, 0.1f);
  scored.finalize();
  EXPECT_DOUBLE_EQ(auroc(scored, truth), 1.0);
}

TEST(Auroc, WorstRankingGivesZero) {
  // All 5 non-edges scored above the single true edge, which is itself
  // scored (so no unscored-tie credit).
  GeneNetwork truth({"a", "b", "c", "d"});
  truth.add_edge(0, 1, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c", "d"});
  scored.add_edge(0, 2, 0.9f);
  scored.add_edge(0, 3, 0.8f);
  scored.add_edge(1, 2, 0.7f);
  scored.add_edge(1, 3, 0.6f);
  scored.add_edge(2, 3, 0.5f);
  scored.add_edge(0, 1, 0.1f);
  scored.finalize();
  EXPECT_DOUBLE_EQ(auroc(scored, truth), 0.0);
}

TEST(Auroc, TiesShareCredit) {
  // One positive tied with one negative, one negative strictly below:
  // AUC = (0.5 + 1) / 2.
  GeneNetwork truth({"a", "b", "c"});
  truth.add_edge(0, 1, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c"});
  scored.add_edge(0, 1, 0.5f);
  scored.add_edge(0, 2, 0.5f);
  scored.add_edge(1, 2, 0.1f);
  scored.finalize();
  EXPECT_DOUBLE_EQ(auroc(scored, truth), 0.75);
}

TEST(Auroc, UnscoredPositivesGetHalfCreditAgainstUnscoredNegatives) {
  // Truth edge absent from scored; one negative scored above, one negative
  // unscored (tied): AUC = (0 + 0.5) / 2.
  GeneNetwork truth({"a", "b", "c"});
  truth.add_edge(0, 1, 1.0f);
  truth.finalize();
  GeneNetwork scored({"a", "b", "c"});
  scored.add_edge(0, 2, 0.9f);
  scored.finalize();
  EXPECT_DOUBLE_EQ(auroc(scored, truth), 0.25);
}

TEST(Auroc, DegenerateTruthsGiveHalf) {
  GeneNetwork empty({"a", "b", "c"});
  empty.finalize();
  GeneNetwork scored({"a", "b", "c"});
  scored.add_edge(0, 1, 1.0f);
  scored.finalize();
  EXPECT_DOUBLE_EQ(auroc(scored, empty), 0.5);
  // Truth = complete graph: no negatives.
  GeneNetwork full({"a", "b", "c"});
  full.add_edge(0, 1, 1.0f);
  full.add_edge(0, 2, 1.0f);
  full.add_edge(1, 2, 1.0f);
  full.finalize();
  EXPECT_DOUBLE_EQ(auroc(scored, full), 0.5);
}

TEST(Auroc, RandomScoresNearHalf) {
  const std::size_t n = 40;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back(std::to_string(i));
  GeneNetwork truth(names);
  GeneNetwork scored(names);
  std::uint64_t state = 12345;
  const auto next = [&] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (next() < 0.1) truth.add_edge(i, j, 1.0f);
      scored.add_edge(i, j, static_cast<float>(next()));
    }
  }
  truth.finalize();
  scored.finalize();
  EXPECT_NEAR(auroc(scored, truth), 0.5, 0.08);
}


TEST(GraphIo, PValueEdgeListHasFourColumnsAndRoundtrips) {
  const GeneNetwork network = small_network();
  std::stringstream stream;
  write_edge_list_with_pvalues(
      network, [](float mi) { return mi > 0.6f ? 0.001 : 0.2; }, stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("null_p_value"), std::string::npos);
  EXPECT_NE(text.find("0.001"), std::string::npos);
  // The standard reader ignores the extra column.
  std::stringstream reread(text);
  const GeneNetwork back = read_edge_list(reread);
  EXPECT_EQ(back.n_edges(), network.n_edges());
  EXPECT_FLOAT_EQ(back.edge_weight(0, 1), 0.9f);
}

}  // namespace
}  // namespace tinge
