# End-to-end elastic-balancing check for the cluster runtime, run as a
# ctest script:
#
#   cmake -DTINGE_CLI=<path> -DWORK_DIR=<dir> -P cluster_elastic_e2e.cmake
#
# Scenarios (the acceptance criteria of the tile-lease layer):
#   * a lease-balanced run is byte-identical to the single-process engine;
#   * with an injected 5x+ straggler, lease balancing must actually move
#     work: the manifest's imbalance_post must come in under its
#     imbalance_pre, and under the static run's imbalance_post on the same
#     seed (the CI gate);
#   * a lease run whose rank 0 is killed mid-sweep leaves a checkpoint
#     journal that resumes on a GROWN (4 -> 8) and a SHRUNK (4 -> 2) world
#     size, byte-identical to the single-process network, under inproc and
#     tcp transports alike.

if(NOT TINGE_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DTINGE_CLI=... -DWORK_DIR=... -P cluster_elastic_e2e.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Large enough that healthy ranks accumulate measurable busy time (~91
# tiles): the imbalance gate compares busy-second ratios, which drown in
# clock noise when every tile is sub-millisecond and the plan is tiny.
set(COMMON --synthetic=200 --permutations=300 --alpha=0.01 --tile=16 --quiet)
set(STRAGGLER --fault=rank=1,tile-delay-ms=20)

function(run_cli)
  execute_process(COMMAND "${TINGE_CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tinge_cli ${ARGN} failed (exit ${rc}):\n${out}\n${err}")
  endif()
endfunction()

function(require_identical reference candidate)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${reference}" "${candidate}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${candidate} differs from ${reference}")
  endif()
endfunction()

function(require_manifest_key path key)
  file(READ "${path}" manifest)
  string(FIND "${manifest}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${path} is missing ${key}")
  endif()
endfunction()

# Pulls a numeric field out of a run manifest into `var` in the caller.
function(manifest_number path key var)
  file(READ "${path}" manifest)
  string(REGEX MATCH "\"${key}\": ([0-9.eE+-]+)" _ "${manifest}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "could not extract ${key} from ${path}")
  endif()
  set(${var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# Kills the run (expected nonzero exit), then checks the journal survived.
function(run_killed journal)
  execute_process(COMMAND "${TINGE_CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  TIMEOUT 120)
  if(rc EQUAL 0)
    message(FATAL_ERROR "killed run reported success:\n${out}")
  endif()
  if(NOT EXISTS "${journal}")
    message(FATAL_ERROR "killed run left no journal at ${journal}:\n${err}")
  endif()
endfunction()

# Baseline: the single-process network this seeded input must produce.
run_cli(${COMMON} --out=${WORK_DIR}/base.tsv)

# ---- straggler gate: lease must beat static on the same seed ---------------

run_cli(${COMMON} --cluster=4 --balance=static ${STRAGGLER}
        --out=${WORK_DIR}/static.tsv --metrics-out=${WORK_DIR}/static.json)
run_cli(${COMMON} --cluster=4 --balance=lease ${STRAGGLER}
        --out=${WORK_DIR}/lease.tsv --metrics-out=${WORK_DIR}/lease.json)
require_identical(${WORK_DIR}/base.tsv ${WORK_DIR}/static.tsv)
require_identical(${WORK_DIR}/base.tsv ${WORK_DIR}/lease.tsv)
require_manifest_key(${WORK_DIR}/lease.json "\"balance\": \"lease\"")
require_manifest_key(${WORK_DIR}/lease.json "\"leases_granted\"")

manifest_number(${WORK_DIR}/lease.json imbalance_pre lease_pre)
manifest_number(${WORK_DIR}/lease.json imbalance_post lease_post)
manifest_number(${WORK_DIR}/lease.json steals lease_steals)
manifest_number(${WORK_DIR}/static.json imbalance_post static_post)
if(NOT lease_post LESS lease_pre)
  message(FATAL_ERROR "lease balancing did not absorb the straggler: "
          "imbalance_post ${lease_post} >= imbalance_pre ${lease_pre}")
endif()
if(NOT lease_post LESS static_post)
  message(FATAL_ERROR "lease imbalance_post ${lease_post} is no better than "
          "static's ${static_post} on the same straggler")
endif()
if(lease_steals EQUAL 0)
  message(FATAL_ERROR "lease run under a straggler recorded zero steals")
endif()

# ---- elastic resume: kill rank 0 mid-sweep, resume on another world --------

foreach(transport inproc tcp)
  set(journal ${WORK_DIR}/${transport}.ckpt)
  foreach(resume_ranks 8 2)
    # The tile-delay keeps rank 0 slow enough that grant traffic (not its
    # own compute) carries its op count to the kill — so the kill lands
    # mid-sweep with tiles still outstanding, not in the release handshake.
    run_killed(${journal} ${COMMON} --cluster=4 --transport=${transport}
               --balance=lease --checkpoint=${journal}
               --fault=rank=0,tile-delay-ms=15,kill-after=20,mode=throw
               --out=${WORK_DIR}/killed.tsv)
    # The journal binds to (dataset, kernel, tile grid) — not the world
    # size — so 4-rank leftovers resume on ${resume_ranks} ranks.
    run_cli(${COMMON} --cluster=${resume_ranks} --transport=${transport}
            --balance=lease --checkpoint=${journal}
            --out=${WORK_DIR}/resumed.tsv)
    require_identical(${WORK_DIR}/base.tsv ${WORK_DIR}/resumed.tsv)
    if(EXISTS "${journal}")
      message(FATAL_ERROR "journal not removed after successful resume")
    endif()
  endforeach()
endforeach()

message(STATUS "cluster elastic e2e: straggler gate held, 4->8 and 4->2 "
        "resumes byte-identical on inproc and tcp")
