// Launcher failure attribution: exit sentinels, reap-order bookkeeping,
// first_failure / describe_worker_exit, and the ECHILD path where workers
// are reaped out from under us (unknown outcome must read as failure).
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/launcher.h"

namespace tinge::cluster {
namespace {

TEST(ClusterLauncherTest, UnreapedWorkerIsAFailureByDefault) {
  // The sentinel state — before (or without) a successful waitpid — must
  // never read as success.
  const WorkerExit exit;
  EXPECT_FALSE(exit.reaped());
  EXPECT_TRUE(exit.failed());
  EXPECT_EQ(exit.exit_code, kWorkerExitUnreaped);
  EXPECT_FALSE(all_workers_succeeded({exit}));
}

TEST(ClusterLauncherTest, NoWorkersIsNotSuccess) {
  EXPECT_FALSE(all_workers_succeeded({}));
}

TEST(ClusterLauncherTest, FirstFailureIsByReapOrderNotRank) {
  // Rank 2 died first (reap_order 0); ranks 0 and 1 were torn down after.
  // Attribution must follow reap order, not rank numbering.
  std::vector<WorkerExit> exits(3);
  exits[0] = {/*rank=*/0, /*exit_code=*/143, /*reap_order=*/2};
  exits[1] = {/*rank=*/1, /*exit_code=*/kWorkerExitPeerFailure,
              /*reap_order=*/1};
  exits[2] = {/*rank=*/2, /*exit_code=*/40, /*reap_order=*/0};
  const WorkerExit* first = first_failure(exits);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rank, 2);
}

TEST(ClusterLauncherTest, CleanExitsAreSkippedByFirstFailure) {
  std::vector<WorkerExit> exits(2);
  exits[0] = {/*rank=*/0, /*exit_code=*/0, /*reap_order=*/0};
  exits[1] = {/*rank=*/1, /*exit_code=*/1, /*reap_order=*/1};
  const WorkerExit* first = first_failure(exits);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rank, 1);

  exits[1].exit_code = 0;
  EXPECT_EQ(first_failure(exits), nullptr);
}

TEST(ClusterLauncherTest, UnreapedFailureWinsOnlyWithoutReapedOnes) {
  // A reaped failure beats an unreaped sentinel (its timing is known)...
  std::vector<WorkerExit> exits(2);
  exits[0] = {/*rank=*/0, /*exit_code=*/kWorkerExitUnreaped,
              /*reap_order=*/-1};
  exits[1] = {/*rank=*/1, /*exit_code=*/9, /*reap_order=*/0};
  const WorkerExit* first = first_failure(exits);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rank, 1);

  // ...but with nothing reaped, the sentinel is all we can report.
  exits[1] = {/*rank=*/1, /*exit_code=*/0, /*reap_order=*/0};
  first = first_failure(exits);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rank, 0);
}

TEST(ClusterLauncherTest, DescribeWorkerExitCoversTheCodeSpace) {
  WorkerExit exit;
  EXPECT_NE(describe_worker_exit(exit).find("never reaped"),
            std::string::npos);
  exit.reap_order = 0;
  exit.exit_code = 0;
  EXPECT_EQ(describe_worker_exit(exit), "exited cleanly");
  exit.exit_code = kWorkerExitPeerFailure;
  EXPECT_NE(describe_worker_exit(exit).find("peer failure"),
            std::string::npos);
  exit.exit_code = 127;
  EXPECT_NE(describe_worker_exit(exit).find("exec"), std::string::npos);
  exit.exit_code = 128 + SIGTERM;
  EXPECT_NE(describe_worker_exit(exit).find("signal 15"), std::string::npos);
  exit.exit_code = 40;
  EXPECT_EQ(describe_worker_exit(exit), "exited with code 40");
}

TEST(ClusterLauncherTest, LaunchReapsAllWorkersInOrder) {
  // The launcher appends --cluster-rank=... etc.; `sh -c 'exit 0' sh`
  // ignores those extra argv words, so /bin/sh stands in for a worker.
  std::vector<WorkerExit> exits =
      launch_workers("/bin/sh", {"-c", "exit 0", "sh"}, 2, "/tmp");
  ASSERT_EQ(exits.size(), 2u);
  EXPECT_TRUE(all_workers_succeeded(exits));
  std::vector<bool> orders(2, false);
  for (const WorkerExit& exit : exits) {
    EXPECT_TRUE(exit.reaped());
    EXPECT_EQ(exit.exit_code, 0);
    ASSERT_GE(exit.reap_order, 0);
    ASSERT_LT(exit.reap_order, 2);
    orders[static_cast<std::size_t>(exit.reap_order)] = true;
  }
  EXPECT_TRUE(orders[0] && orders[1]);  // reap orders are a permutation
}

TEST(ClusterLauncherTest, LaunchReportsAFailedWorkersExitCode) {
  // One worker (no survivors to tear down, so no SIGTERM race on the
  // expected code): its exit status must come back verbatim.
  std::vector<WorkerExit> exits =
      launch_workers("/bin/sh", {"-c", "exit 7", "sh"}, 1, "/tmp");
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_TRUE(exits[0].reaped());
  EXPECT_EQ(exits[0].exit_code, 7);
  EXPECT_FALSE(all_workers_succeeded(exits));
  const WorkerExit* first = first_failure(exits);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rank, 0);
}

TEST(ClusterLauncherTest, EchildLeavesFailureSentinels) {
  // With SIGCHLD set to SIG_IGN the kernel auto-reaps children and waitpid
  // fails with ECHILD: the launcher must report every rank as an unreaped
  // failure rather than hang or claim success.
  struct sigaction previous = {};
  struct sigaction ignore = {};
  ignore.sa_handler = SIG_IGN;
  ASSERT_EQ(::sigaction(SIGCHLD, &ignore, &previous), 0);
  std::vector<WorkerExit> exits =
      launch_workers("/bin/sh", {"-c", "exit 0", "sh"}, 2, "/tmp");
  ::sigaction(SIGCHLD, &previous, nullptr);
  ASSERT_EQ(exits.size(), 2u);
  EXPECT_FALSE(all_workers_succeeded(exits));
  for (const WorkerExit& exit : exits) {
    EXPECT_FALSE(exit.reaped());
    EXPECT_EQ(exit.exit_code, kWorkerExitUnreaped);
  }
  ASSERT_NE(first_failure(exits), nullptr);
}

TEST(ClusterLauncherTest, ScrubPortFilesRemovesOnlyPortArtifacts) {
  // Stale rendezvous state from a crashed run is exactly *.port and
  // *.port.tmp; anything else in the directory is not ours to delete.
  const std::string dir = make_rendezvous_dir();
  for (const char* name : {"rank-0.port", "rank-1.port", "rank-2.port.tmp"})
    ASSERT_TRUE(std::ofstream(dir + "/" + name) << "1234\n");
  ASSERT_TRUE(std::ofstream(dir + "/notes.txt") << "keep me\n");

  scrub_port_files(dir);
  EXPECT_NE(::access((dir + "/rank-0.port").c_str(), F_OK), 0);
  EXPECT_NE(::access((dir + "/rank-1.port").c_str(), F_OK), 0);
  EXPECT_NE(::access((dir + "/rank-2.port.tmp").c_str(), F_OK), 0);
  EXPECT_EQ(::access((dir + "/notes.txt").c_str(), F_OK), 0);

  scrub_port_files(dir + "/does-not-exist");  // quietly a no-op
  remove_rendezvous_dir(dir);
}

TEST(ClusterLauncherTest, RunNoncesAreNonzeroAndDistinct) {
  // Zero means "unstamped" on the wire, so a real nonce must never be 0,
  // and it is parsed back through a signed CLI integer, so the top bit
  // must stay clear.
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t nonce = make_run_nonce();
    EXPECT_NE(nonce, 0u);
    EXPECT_EQ(nonce >> 63, 0u);
  }
  EXPECT_NE(make_run_nonce(), make_run_nonce());
}

TEST(ClusterLauncherTest, FailedLaunchScrubsStalePortFiles) {
  // A launch over a directory holding a crashed run's port files must
  // scrub them before spawning (so workers can't rendezvous with a
  // corpse) and leave the directory clean after the failure too.
  const std::string dir = make_rendezvous_dir();
  ASSERT_TRUE(std::ofstream(dir + "/rank-0.port") << "4242 999\n");

  const std::vector<WorkerExit> exits =
      launch_workers("/bin/false", {}, /*size=*/2, dir);
  EXPECT_FALSE(all_workers_succeeded(exits));
  EXPECT_NE(::access((dir + "/rank-0.port").c_str(), F_OK), 0);
  remove_rendezvous_dir(dir);
}

TEST(ClusterLauncherTest, SiblingBinaryPathResolvesNextToThisBinary) {
  const std::string path = sibling_binary_path("argv0-unused", "neighbor");
  // Resolved via /proc/self/exe: must end with /neighbor and the directory
  // must be this test binary's own directory.
  ASSERT_GE(path.size(), std::string("/neighbor").size());
  EXPECT_EQ(path.substr(path.size() - 9), "/neighbor");
  EXPECT_NE(path.find('/'), std::string::npos);
}

TEST(ClusterLauncherTest, SiblingBinaryPathFallsBackToArgv0) {
  // When /proc/self/exe is unavailable or truncated the argv0 directory is
  // used; with a bare argv0 the sibling lands in ".". We can't break
  // /proc here, but the argv0 fallback's slash handling is still checkable
  // through a relative argv0 (the dir split is shared code).
  const std::string path = sibling_binary_path("./build/tool", "peer");
  EXPECT_EQ(path.substr(path.size() - 5), "/peer");
}

}  // namespace
}  // namespace tinge::cluster
