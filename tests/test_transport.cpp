// Transport conformance suite: every backend behind make_cluster /
// make_transport must deliver identical message semantics — tagged
// point-to-point with (src, tag) matching, FIFO within a match, zero-byte
// payloads, reusable barriers, and exact payload byte accounting. The
// same test body runs against the in-process and the TCP backend.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/launcher.h"
#include "cluster/tcp_transport.h"
#include "cluster/transport.h"

namespace tinge::cluster {
namespace {

std::string kind_label(const ::testing::TestParamInfo<TransportKind>& info) {
  return transport_kind_name(info.param);
}

class TransportConformance : public ::testing::TestWithParam<TransportKind> {
 protected:
  std::unique_ptr<Cluster> cluster(int size) const {
    return make_cluster(GetParam(), size);
  }
  std::unique_ptr<Cluster> cluster(int size,
                                   const TransportOptions& options) const {
    return make_cluster(GetParam(), size, options);
  }
};

TEST_P(TransportConformance, PointToPointRoundtrip) {
  const auto cluster = this->cluster(2);
  cluster->run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_vector(1, std::vector<int>{1, 2, 3}, 7);
      EXPECT_EQ(comm.recv_vector<int>(1, 8), (std::vector<int>{4, 5}));
    } else {
      EXPECT_EQ(comm.recv_vector<int>(0, 7), (std::vector<int>{1, 2, 3}));
      comm.send_vector(0, std::vector<int>{4, 5}, 8);
    }
  });
  EXPECT_EQ(cluster->messages_sent(), 2u);
  EXPECT_EQ(cluster->bytes_transferred(), 5 * sizeof(int));
}

TEST_P(TransportConformance, InterleavedTagsFromSameSource) {
  // recv must match by tag even when messages with other tags from the
  // same source arrived first — they stay queued for their own recv.
  const auto cluster = this->cluster(2);
  cluster->run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_vector(1, std::vector<int>{33}, 3);
      comm.send_vector(1, std::vector<int>{11}, 1);
      comm.send_vector(1, std::vector<int>{22}, 2);
    } else {
      EXPECT_EQ(comm.recv_vector<int>(0, 2).at(0), 22);
      EXPECT_EQ(comm.recv_vector<int>(0, 3).at(0), 33);
      EXPECT_EQ(comm.recv_vector<int>(0, 1).at(0), 11);
    }
  });
}

TEST_P(TransportConformance, FifoWithinOneTag) {
  const auto cluster = this->cluster(2);
  cluster->run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int value : {10, 20, 30})
        comm.send_vector(1, std::vector<int>{value}, 4);
    } else {
      EXPECT_EQ(comm.recv_vector<int>(0, 4).at(0), 10);
      EXPECT_EQ(comm.recv_vector<int>(0, 4).at(0), 20);
      EXPECT_EQ(comm.recv_vector<int>(0, 4).at(0), 30);
    }
  });
}

TEST_P(TransportConformance, ZeroBytePayloads) {
  // Zero-byte messages are real messages: they match their (src, tag) and
  // count toward message (not byte) accounting.
  const auto cluster = this->cluster(2);
  cluster->run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, nullptr, 0, 5);
      comm.send_vector(1, std::vector<int>{42}, 6);
      comm.send(1, nullptr, 0, 5);
    } else {
      EXPECT_TRUE(comm.recv(0, 5).empty());
      EXPECT_EQ(comm.recv_vector<int>(0, 6).at(0), 42);
      EXPECT_TRUE(comm.recv(0, 5).empty());
    }
  });
  EXPECT_EQ(cluster->messages_sent(), 3u);
  EXPECT_EQ(cluster->bytes_transferred(), sizeof(int));
}

TEST_P(TransportConformance, BarrierIsReusable) {
  const auto cluster = this->cluster(4);
  std::atomic<int> counter{0};
  std::atomic<bool> torn{false};
  cluster->run([&](Comm& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      ++counter;
      comm.barrier();
      if (counter.load() < 4 * (phase + 1)) torn = true;
      comm.barrier();
    }
  });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(counter.load(), 40);
}

TEST_P(TransportConformance, ByteAccountingIsExact) {
  // Rank r sends (r + 1) ints around a ring: totals, per-rank traffic and
  // send/recv symmetry must all be exact (control frames excluded).
  const auto cluster = this->cluster(3);
  cluster->run([](Comm& comm) {
    const int r = comm.rank();
    const int next = (r + 1) % 3;
    const int prev = (r + 2) % 3;
    comm.send_vector(next, std::vector<int>(static_cast<std::size_t>(r + 1), r),
                     9);
    const auto received = comm.recv_vector<int>(prev, 9);
    EXPECT_EQ(received.size(), static_cast<std::size_t>(prev + 1));
    comm.barrier();  // barrier traffic must not appear in the accounting
  });
  EXPECT_EQ(cluster->messages_sent(), 3u);
  EXPECT_EQ(cluster->bytes_transferred(), (1 + 2 + 3) * sizeof(int));
  const std::vector<PeerTraffic> traffic = cluster->rank_traffic();
  ASSERT_EQ(traffic.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    const auto& rank = traffic[static_cast<std::size_t>(r)];
    EXPECT_EQ(rank.bytes_sent, (static_cast<std::size_t>(r) + 1) * sizeof(int));
    EXPECT_EQ(rank.messages_sent, 1u);
    EXPECT_EQ(rank.bytes_received,
              (static_cast<std::size_t>((r + 2) % 3) + 1) * sizeof(int));
    EXPECT_EQ(rank.messages_received, 1u);
  }
}

TEST_P(TransportConformance, SelfSendDeliversAndCounts) {
  const auto cluster = this->cluster(2);
  cluster->run([](Comm& comm) {
    comm.send_vector(comm.rank(), std::vector<int>{comm.rank() + 7}, 2);
    EXPECT_EQ(comm.recv_vector<int>(comm.rank(), 2).at(0), comm.rank() + 7);
  });
  EXPECT_EQ(cluster->messages_sent(), 2u);
  EXPECT_EQ(cluster->bytes_transferred(), 2 * sizeof(int));
}

TEST_P(TransportConformance, ExceptionInOneRankPropagates) {
  const auto cluster = this->cluster(2);
  EXPECT_THROW(cluster->run([](Comm& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("rank boom");
               }),
               std::runtime_error);
}

// ---- failure detection (deadlines + dead peers), both backends -------------

TEST_P(TransportConformance, PerCallRecvDeadlineFires) {
  // The peer is alive but silent: the 3-arg recv must give up at its own
  // deadline with TimeoutError, not block on the (infinite) default.
  const auto cluster = this->cluster(2);
  std::atomic<bool> done{false};
  EXPECT_THROW(cluster->run([&](Comm& comm) {
                 if (comm.rank() == 0) {
                   try {
                     comm.recv(1, 1, /*timeout_seconds=*/0.2);
                   } catch (...) {
                     done = true;  // release the silent peer, then rethrow
                     throw;
                   }
                 } else {
                   while (!done)
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                 }
               }),
               TimeoutError);
}

TEST_P(TransportConformance, DefaultRecvDeadlineFromOptions) {
  // The plain 2-arg recv honors TransportOptions::recv_timeout_seconds.
  TransportOptions options;
  options.recv_timeout_seconds = 0.2;
  const auto cluster = this->cluster(2, options);
  std::atomic<bool> done{false};
  EXPECT_THROW(cluster->run([&](Comm& comm) {
                 if (comm.rank() == 0) {
                   try {
                     comm.recv(1, 1);
                   } catch (...) {
                     done = true;
                     throw;
                   }
                 } else {
                   while (!done)
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                 }
               }),
               TimeoutError);
}

TEST_P(TransportConformance, DeadRankFailsPendingRecv) {
  // A finished (or crashed) peer must fail a pending recv instead of
  // deadlocking the survivor — with no deadline configured at all.
  const auto cluster = this->cluster(2);
  EXPECT_THROW(cluster->run([](Comm& comm) {
                 if (comm.rank() == 0)
                   comm.recv(1, 1);  // rank 1 exits without sending
               }),
               PeerFailureError);
}

TEST_P(TransportConformance, DeadRankFailsPendingBarrier) {
  // Same for a barrier: a rank that exits before arriving must fail the
  // waiters, not strand them.
  const auto cluster = this->cluster(2);
  EXPECT_THROW(cluster->run([](Comm& comm) {
                 if (comm.rank() == 0) comm.barrier();  // rank 1 never arrives
               }),
               PeerFailureError);
}

TEST_P(TransportConformance, QueuedMessageFromDeadRankIsStillReceivable) {
  // Matching is checked before liveness: a message the peer sent before
  // dying is delivered, not discarded — only a *missing* match fails.
  const auto cluster = this->cluster(2);
  cluster->run([](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send_vector(0, std::vector<int>{77}, 1);
      return;  // rank 1 is done; its message must survive it
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(comm.recv_vector<int>(1, 1).at(0), 77);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(TransportKind::InProcess,
                                           TransportKind::Tcp),
                         kind_label);

// ---- factory behavior ------------------------------------------------------

TEST(TransportKindNames, RoundtripAndRejection) {
  EXPECT_EQ(parse_transport_kind("inproc"), TransportKind::InProcess);
  EXPECT_EQ(parse_transport_kind("tcp"), TransportKind::Tcp);
  EXPECT_STREQ(transport_kind_name(TransportKind::InProcess), "inproc");
  EXPECT_STREQ(transport_kind_name(TransportKind::Tcp), "tcp");
  EXPECT_THROW(parse_transport_kind("mpi"), std::invalid_argument);
}

TEST(MakeTransport, InprocSingleRankLoopback) {
  const auto transport =
      make_transport(TransportKind::InProcess, TransportOptions{});
  Comm comm(*transport);
  EXPECT_EQ(comm.size(), 1);
  comm.barrier();
  comm.send_vector(0, std::vector<int>{3}, 1);
  EXPECT_EQ(comm.recv_vector<int>(0, 1).at(0), 3);
  EXPECT_EQ(transport->bytes_sent(), sizeof(int));
  EXPECT_EQ(transport->bytes_received(), sizeof(int));
}

TEST(MakeTransport, InprocMultiRankIsRejected) {
  TransportOptions options;
  options.size = 2;
  EXPECT_THROW(make_transport(TransportKind::InProcess, options),
               std::invalid_argument);
}

// ---- TCP-specific behavior -------------------------------------------------

TEST(TcpTransportTest, LateDialerJoinsTheMesh) {
  // Rank 1 (the dialer) starts 300 ms after rank 0 is already listening;
  // rank 0's accept loop must wait for it.
  const std::string dir = make_rendezvous_dir();
  TransportOptions base;
  base.size = 2;
  base.rendezvous_dir = dir;
  base.connect_timeout_seconds = 10.0;
  std::thread late([&base] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    TransportOptions options = base;
    options.rank = 1;
    TcpTransport transport(options);
    Comm comm(transport);
    comm.send_vector(0, std::vector<int>{5}, 1);
    EXPECT_EQ(comm.recv_vector<int>(0, 2).at(0), 6);
  });
  TransportOptions options = base;
  options.rank = 0;
  {
    TcpTransport transport(options);
    Comm comm(transport);
    EXPECT_EQ(comm.recv_vector<int>(1, 1).at(0), 5);
    comm.send_vector(1, std::vector<int>{6}, 2);
    late.join();
  }
  remove_rendezvous_dir(dir);
}

TEST(TcpTransportTest, LateListenerIsRetriedWithBackoff) {
  // Rank 0 (the listener) publishes its port 300 ms after rank 1 started
  // dialing; rank 1 must poll the port file and retry, not fail.
  const std::string dir = make_rendezvous_dir();
  TransportOptions base;
  base.size = 2;
  base.rendezvous_dir = dir;
  base.connect_timeout_seconds = 10.0;
  std::thread dialer([&base] {
    TransportOptions options = base;
    options.rank = 1;
    TcpTransport transport(options);  // starts dialing before rank 0 exists
    Comm comm(transport);
    EXPECT_EQ(comm.recv_vector<int>(0, 3).at(0), 1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  TransportOptions options = base;
  options.rank = 0;
  {
    TcpTransport transport(options);
    Comm comm(transport);
    comm.send_vector(1, std::vector<int>{1}, 3);
    dialer.join();
  }
  remove_rendezvous_dir(dir);
}

TEST(TcpTransportTest, RendezvousTimesOutWithoutPeers) {
  const std::string dir = make_rendezvous_dir();
  TransportOptions options;
  options.rank = 1;  // dials rank 0, which never appears
  options.size = 2;
  options.rendezvous_dir = dir;
  options.connect_timeout_seconds = 0.3;
  EXPECT_THROW(TcpTransport transport(options), std::runtime_error);
  remove_rendezvous_dir(dir);
}

TEST(TcpTransportTest, ConcurrentSendersKeepFramesIntact) {
  // Many threads of one rank hammering send() to the same peer: every
  // frame must land intact (header + payload back-to-back on the stream).
  // Run under TSan this is also the data-race regression test for the
  // per-peer send mutex.
  const auto cluster = make_cluster(TransportKind::Tcp, 2);
  constexpr int kSenders = 4;
  constexpr int kPerSender = 50;
  cluster->run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::thread> senders;
      for (int t = 0; t < kSenders; ++t)
        senders.emplace_back([&comm, t] {
          for (int i = 0; i < kPerSender; ++i)
            comm.send_vector(
                1, std::vector<int>(static_cast<std::size_t>(t % 3 + 1), t),
                /*tag=*/t);
        });
      for (std::thread& sender : senders) sender.join();
      comm.barrier();
    } else {
      for (int t = 0; t < kSenders; ++t)
        for (int i = 0; i < kPerSender; ++i) {
          const auto payload = comm.recv_vector<int>(0, t);
          ASSERT_EQ(payload.size(), static_cast<std::size_t>(t % 3 + 1));
          for (const int value : payload) EXPECT_EQ(value, t);
        }
      comm.barrier();
    }
  });
  EXPECT_EQ(cluster->messages_sent(),
            static_cast<std::uint64_t>(kSenders) * kPerSender);
}

TEST(TcpTransportTest, SendToDepartedPeerFailsCleanlyInsteadOfSigpipe) {
  // A peer closing its end mid-conversation must surface as
  // PeerFailureError on the sender, never as SIGPIPE killing the process
  // (the transport sends with MSG_NOSIGNAL and ignores the signal at
  // init). Rank 1 leaves immediately; rank 0 keeps pushing large frames
  // until the kernel reports the dead connection mid-frame.
  const auto cluster = make_cluster(TransportKind::Tcp, 2);
  EXPECT_THROW(cluster->run([](Comm& comm) {
                 if (comm.rank() == 1) return;  // closes its end right away
                 const std::vector<int> chunk(1 << 18, 7);  // 1 MiB frames
                 for (int i = 0; i < 1000; ++i)
                   comm.send_vector(1, chunk, /*tag=*/i);
               }),
               PeerFailureError);
}

TEST(TcpTransportTest, PortFileNonceRoundtrip) {
  const std::string dir = make_rendezvous_dir();
  const std::string path = dir + "/rank-0.port";
  write_port_file(path, 4242, /*nonce=*/77);
  EXPECT_EQ(read_port_file(path, 77), 4242);   // matching stamp
  EXPECT_EQ(read_port_file(path, 78), -1);     // stale: another run's file
  EXPECT_EQ(read_port_file(path, 0), 4242);    // caller opted out of check
  EXPECT_EQ(read_port_file(dir + "/absent.port", 77), -1);
  remove_rendezvous_dir(dir);
}

TEST(TcpTransportTest, LegacyUnstampedPortFileStillReads) {
  // Port files written before nonce stamping hold just "<port>\n". They
  // must stay readable when no nonce is expected, and be rejected as
  // unverifiable when one is.
  const std::string dir = make_rendezvous_dir();
  const std::string path = dir + "/rank-0.port";
  {
    std::ofstream out(path);
    out << "1234\n";
  }
  EXPECT_EQ(read_port_file(path, 0), 1234);
  EXPECT_EQ(read_port_file(path, 77), -1);
  remove_rendezvous_dir(dir);
}

TEST(TcpTransportTest, StalePortFileFromCrashedRunIsIgnoredByTheMesh) {
  // A prior run crashed and left its port file behind, pointing at a port
  // where nothing (useful) listens. A new run stamped with its own nonce
  // must skip the stale file and keep polling until the real listener
  // publishes — instead of dialing the corpse and hanging.
  const std::string dir = make_rendezvous_dir();

  // The decoy: a socket that listens but never speaks the handshake, on
  // the port the stale file advertises.
  const int decoy = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(decoy, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(decoy, reinterpret_cast<sockaddr*>(&address),
                   sizeof(address)),
            0);
  ASSERT_EQ(::listen(decoy, 1), 0);
  socklen_t length = sizeof(address);
  ASSERT_EQ(::getsockname(decoy, reinterpret_cast<sockaddr*>(&address),
                          &length),
            0);
  write_port_file(dir + "/rank-0.port", ntohs(address.sin_port),
                  /*nonce=*/999);  // the crashed run's stamp

  TransportOptions base;
  base.size = 2;
  base.rendezvous_dir = dir;
  base.connect_timeout_seconds = 10.0;
  base.run_nonce = 1000;  // this run's stamp: 999 must not match
  std::thread dialer([&base] {
    TransportOptions options = base;
    options.rank = 1;
    TcpTransport transport(options);  // must wait out the stale file
    Comm comm(transport);
    EXPECT_EQ(comm.recv_vector<int>(0, 3).at(0), 11);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  TransportOptions options = base;
  options.rank = 0;
  {
    TcpTransport transport(options);  // republishes rank-0.port, nonce 1000
    Comm comm(transport);
    comm.send_vector(1, std::vector<int>{11}, 3);
    dialer.join();
  }
  ::close(decoy);
  remove_rendezvous_dir(dir);
}

TEST(TcpTransportTest, PortFileWriteFailureIsDetected) {
  // write_port_file must report a failed write (e.g. a full disk) instead
  // of silently publishing an empty file and letting peers spin. /dev/full
  // fails the flush exactly like ENOSPC; skip where it doesn't exist.
  if (::access("/dev/full", W_OK) != 0)
    GTEST_SKIP() << "/dev/full not available";
  EXPECT_THROW(write_port_file("/dev/full", 4242), std::runtime_error);
}

}  // namespace
}  // namespace tinge::cluster
