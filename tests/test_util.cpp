// util substrate: contracts, aligned buffers, string helpers, argument
// parser, table rendering, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/aligned.h"
#include "util/args.h"
#include "util/contracts.h"
#include "util/str.h"
#include "util/table.h"
#include "util/timer.h"

namespace tinge {
namespace {

// ---- contracts -------------------------------------------------------------

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    TINGE_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Contracts, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(TINGE_EXPECTS(true));
  EXPECT_NO_THROW(TINGE_ENSURES(2 > 1));
  EXPECT_NO_THROW(TINGE_ASSERT(1 + 1 == 2));
}

// ---- aligned buffers --------------------------------------------------------

TEST(AlignedBuffer, IsAlignedAndZeroInitialized) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kSimdAlignment, 0u);
  for (const float v : buf) EXPECT_EQ(v, 0.0f);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer<double> moved = std::move(buf);
  EXPECT_TRUE(moved.empty());
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  const int* ptr = a.data();
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(AlignedBuffer, CloneIsDeep) {
  AlignedBuffer<int> a(4);
  a[0] = 7;
  AlignedBuffer<int> b = a.clone();
  b[0] = 9;
  EXPECT_EQ(a[0], 7);
  EXPECT_EQ(b[0], 9);
}

TEST(AlignedBuffer, BoundsChecked) {
  AlignedBuffer<int> a(4);
  EXPECT_THROW(a[4], ContractViolation);
}

TEST(AlignedBuffer, FillSetsEveryElement) {
  AlignedBuffer<float> a(33);
  a.fill(2.5f);
  for (const float v : a) EXPECT_EQ(v, 2.5f);
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(0, 16), 0u);
  EXPECT_EQ(round_up(1, 16), 16u);
  EXPECT_EQ(round_up(16, 16), 16u);
  EXPECT_EQ(round_up(17, 16), 32u);
  EXPECT_EQ(round_up(5, 0), 5u);
}

// ---- string helpers ---------------------------------------------------------

TEST(Str, SplitViewKeepsEmptyFields) {
  const auto fields = split_view("a\t\tb\t", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Str, SplitViewSingleField) {
  const auto fields = split_view("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Str, ParseFloatAcceptsMissingMarkers) {
  for (const char* na : {"NA", "NaN", "nan", "", "  "}) {
    const auto v = parse_float(na);
    ASSERT_TRUE(v.has_value()) << na;
    EXPECT_TRUE(std::isnan(*v)) << na;
  }
}

TEST(Str, ParseFloatParsesNumbers) {
  EXPECT_FLOAT_EQ(*parse_float("3.5"), 3.5f);
  EXPECT_FLOAT_EQ(*parse_float("-1e-3"), -1e-3f);
  EXPECT_FLOAT_EQ(*parse_float(" 42 "), 42.0f);
}

TEST(Str, ParseFloatRejectsGarbage) {
  EXPECT_FALSE(parse_float("3.5x").has_value());
  EXPECT_FALSE(parse_float("abc").has_value());
}

TEST(Str, ParseInt) {
  EXPECT_EQ(*parse_int("123"), 123);
  EXPECT_EQ(*parse_int("-5"), -5);
  EXPECT_FALSE(parse_int("12.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Str, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
}

// ---- argument parser ---------------------------------------------------------

TEST(ArgParser, ParsesEqualsAndSpaceForms) {
  ArgParser parser;
  parser.add("genes", "gene count", "100").add("alpha", "level", "0.001");
  const char* argv[] = {"prog", "--genes=500", "--alpha", "0.01"};
  parser.parse(4, argv);
  EXPECT_EQ(parser.get_int("genes"), 500);
  EXPECT_DOUBLE_EQ(parser.get_double("alpha"), 0.01);
}

TEST(ArgParser, DefaultsApplyWhenAbsent) {
  ArgParser parser;
  parser.add("genes", "gene count", "100");
  const char* argv[] = {"prog"};
  parser.parse(1, argv);
  EXPECT_FALSE(parser.has("genes"));
  EXPECT_EQ(parser.get_int("genes"), 100);
}

TEST(ArgParser, FlagsAndPositionals) {
  ArgParser parser;
  parser.add_flag("verbose", "talk more");
  const char* argv[] = {"prog", "input.tsv", "--verbose", "out.tsv"};
  parser.parse(4, argv);
  EXPECT_TRUE(parser.get_flag("verbose"));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.tsv");
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser parser;
  parser.add("genes", "gene count", "100");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser parser;
  parser.add("genes", "gene count", "100");
  const char* argv[] = {"prog", "--genes"};
  EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser parser;
  parser.add_flag("verbose", "talk");
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, NonNumericGetIntThrows) {
  ArgParser parser;
  parser.add("genes", "gene count", "abc");
  const char* argv[] = {"prog"};
  parser.parse(1, argv);
  EXPECT_THROW(parser.get_int("genes"), std::invalid_argument);
}

TEST(ArgParser, UsageListsOptions) {
  ArgParser parser;
  parser.add("genes", "number of genes", "100").add_flag("dpi", "enable DPI");
  const std::string usage = parser.usage("prog", "Does things.");
  EXPECT_NE(usage.find("--genes"), std::string::npos);
  EXPECT_NE(usage.find("--dpi"), std::string::npos);
  EXPECT_NE(usage.find("number of genes"), std::string::npos);
}

// ---- tables -------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("22.5"), std::string::npos);
  EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumericRowFormatting) {
  Table table({"x", "y"});
  table.add_row_numeric({1.23456, 2.0}, 2);
  EXPECT_NE(table.to_string().find("1.23"), std::string::npos);
  EXPECT_EQ(table.rows(), 1u);
}

// ---- timers --------------------------------------------------------------------

TEST(Timer, StopwatchAdvances) {
  Stopwatch watch;
  double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += static_cast<double>(i) * 1e-9;
  EXPECT_GT(watch.seconds(), 0.0);
  EXPECT_GT(x, 0.0);
}

TEST(Timer, ScopedAccumulatorAddsUp) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(sink);
  }
  {
    ScopedAccumulator acc(sink);
  }
  EXPECT_GE(sink, 0.0);
}

TEST(Timer, FormatDurationPicksUnits) {
  EXPECT_NE(format_duration(2e-5).find("us"), std::string::npos);
  EXPECT_NE(format_duration(0.02).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(3.0).find(" s"), std::string::npos);
  EXPECT_NE(format_duration(1320.0).find("min"), std::string::npos);
  EXPECT_NE(format_duration(8000.0).find("h"), std::string::npos);
}

}  // namespace
}  // namespace tinge
