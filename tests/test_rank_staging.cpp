// The memory-side panel knobs (bspline_kernels.h) are all claimed to be
// bit-identical: uint16 rank staging, the packed weight table, software
// prefetch and NUMA-aware tile scheduling change where bytes come from (or
// which thread claims which tile), never which floats are multiplied in
// which order. These tests enforce that claim at every layer — raw panel
// kernels, the engine, the cluster ring sweep and the NUMA scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/ring_mi.h"
#include "core/mi_engine.h"
#include "core/sweep.h"
#include "mi/bspline_mi.h"
#include "preprocess/rank_transform.h"
#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {
namespace {

RankedMatrix random_ranked(std::size_t genes, std::size_t samples,
                           std::uint64_t seed) {
  ExpressionMatrix matrix(genes, samples);
  Xoshiro256 rng(seed);
  for (std::size_t s = 0; s < samples; ++s) {
    const double driver = rng.normal();
    for (std::size_t g = 0; g < genes; ++g) {
      matrix.at(g, s) = static_cast<float>(
          g < genes / 4 ? driver + 0.5 * rng.normal() : rng.normal());
    }
  }
  return RankedMatrix(matrix);
}

// ---- StagedRankMatrix ------------------------------------------------------

TEST(StagedRankMatrix, CanStageExactlyUpToUint16Range) {
  EXPECT_TRUE(StagedRankMatrix::can_stage(0));
  EXPECT_TRUE(StagedRankMatrix::can_stage(1));
  EXPECT_TRUE(StagedRankMatrix::can_stage(65536));  // ranks reach 65535
  EXPECT_FALSE(StagedRankMatrix::can_stage(65537));
}

TEST(StagedRankMatrix, RoundTripsEveryRankLosslessly) {
  const RankedMatrix ranked = random_ranked(12, 130, 42);
  const StagedRankMatrix staged(ranked);
  for (std::size_t g = 0; g < 12; ++g) {
    const auto row32 = ranked.ranks(g);
    const std::uint16_t* row16 = staged.row(g);
    for (std::size_t s = 0; s < row32.size(); ++s)
      ASSERT_EQ(static_cast<std::uint32_t>(row16[s]), row32[s])
          << "gene " << g << " sample " << s;
  }
}

TEST(StagedRankMatrix, BoundarySamplesCountStagesAndRoundTrips) {
  // m = 65536 is the staging ceiling: the largest rank, 65535, is exactly
  // uint16 max. One gene keeps the test cheap; the rank row is the full
  // permutation 0..65535 reversed, hitting both extremes.
  constexpr std::size_t kM = 65536;
  ASSERT_TRUE(StagedRankMatrix::can_stage(kM));
  ExpressionMatrix matrix(2, kM);
  for (std::size_t s = 0; s < kM; ++s) {
    matrix.at(0, s) = static_cast<float>(kM - s);  // strictly decreasing
    matrix.at(1, s) = static_cast<float>(s);       // strictly increasing
  }
  const RankedMatrix ranked(matrix);
  const StagedRankMatrix staged(ranked);
  for (std::size_t g = 0; g < 2; ++g) {
    const auto row32 = ranked.ranks(g);
    const std::uint16_t* row16 = staged.row(g);
    for (std::size_t s = 0; s < kM; ++s)
      ASSERT_EQ(static_cast<std::uint32_t>(row16[s]), row32[s]);
  }
}

// ---- raw panel kernels: uint16 == uint32, every variant x knob combo -------

class PanelKnobIdentity : public ::testing::TestWithParam<MiKernel> {
 protected:
  static constexpr std::size_t kGenes = 20;
  static constexpr std::size_t kSamples = 97;  // odd: exercises tails

  PanelKnobIdentity()
      : estimator_(10, 3, kSamples),
        ranked_(random_ranked(kGenes, kSamples, 7)),
        staged_(ranked_) {}

  BsplineMi estimator_;
  RankedMatrix ranked_;
  StagedRankMatrix staged_;
};

TEST_P(PanelKnobIdentity, EveryKnobComboIsBitIdenticalToBaseline) {
  const MiKernel kernel = GetParam();
  JointHistogram scratch = estimator_.make_scratch();
  double baseline[kMaxPanelWidth];
  double probe[kMaxPanelWidth];

  for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}}) {
    const std::uint32_t* ry32[kMaxPanelWidth];
    const std::uint16_t* ry16[kMaxPanelWidth];
    for (std::size_t p = 0; p < width; ++p) {
      ry32[p] = ranked_.ranks(1 + p).data();
      ry16[p] = staged_.row(1 + p);
    }

    const PanelOptions base{kernel, /*prefetch=*/false, /*packed=*/false};
    joint_entropy_panel(estimator_.table(), ranked_.ranks(0).data(), ry32,
                        width, kSamples, scratch, base, baseline);

    for (const bool prefetch : {false, true}) {
      for (const bool packed : {false, true}) {
        const PanelOptions options{kernel, prefetch, packed};
        joint_entropy_panel(estimator_.table(), ranked_.ranks(0).data(), ry32,
                            width, kSamples, scratch, options, probe);
        for (std::size_t p = 0; p < width; ++p)
          EXPECT_EQ(probe[p], baseline[p])
              << "u32 width=" << width << " prefetch=" << prefetch
              << " packed=" << packed;
        joint_entropy_panel(estimator_.table(), staged_.row(0), ry16, width,
                            kSamples, scratch, options, probe);
        for (std::size_t p = 0; p < width; ++p)
          EXPECT_EQ(probe[p], baseline[p])
              << "u16 width=" << width << " prefetch=" << prefetch
              << " packed=" << packed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, PanelKnobIdentity,
                         ::testing::Values(MiKernel::Scalar,
                                           MiKernel::Unrolled, MiKernel::Simd,
                                           MiKernel::Gather512),
                         [](const auto& param_info) {
                           return std::string(kernel_name(param_info.param));
                         });

TEST(StagedRankMatrix, FirstTouchFillCoversEveryNodeBlock) {
  // The parallel fill must write every gene row exactly once for any
  // (threads, nodes) shape — in particular 1 < threads < nodes, where a
  // naive block partition of tids maps some nodes to no thread and leaves
  // their gene blocks uninitialized (the staged matrix starts poisoned, so
  // a missed row would feed out-of-range indices to the weight table).
  const RankedMatrix ranked = random_ranked(29, 61, 5);
  par::ThreadPool pool(6);
  const struct { int threads, nodes; } shapes[] = {
      {1, 4}, {2, 4}, {3, 5}, {2, 2}, {4, 2}, {5, 3}, {6, 1}};
  for (const auto& shape : shapes) {
    StagedRankMatrix staged(ranked.n_genes(), ranked.n_samples());
    fill_staged_first_touch(staged, ranked, pool, shape.threads, shape.nodes);
    for (std::size_t g = 0; g < ranked.n_genes(); ++g) {
      const auto row32 = ranked.ranks(g);
      const std::uint16_t* row16 = staged.row(g);
      for (std::size_t s = 0; s < row32.size(); ++s)
        ASSERT_EQ(static_cast<std::uint32_t>(row16[s]), row32[s])
            << "threads=" << shape.threads << " nodes=" << shape.nodes
            << " gene " << g << " sample " << s;
    }
  }
}

// ---- engine: staged on/off produce identical networks ----------------------

TEST(EngineStaging, StagedSweepMatchesClassicBitForBit) {
  const RankedMatrix ranked = random_ranked(28, 90, 11);
  const BsplineMi estimator(10, 3, 90);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(3);

  TingeConfig off;
  off.threads = 3;
  off.tile_size = 8;
  off.stage_ranks = false;
  TingeConfig on = off;
  on.stage_ranks = true;

  const GeneNetwork classic = engine.compute_network(0.2, off, pool);
  const GeneNetwork staged = engine.compute_network(0.2, on, pool);
  ASSERT_GT(classic.n_edges(), 0u);
  ASSERT_EQ(staged.n_edges(), classic.n_edges());
  for (std::size_t i = 0; i < classic.n_edges(); ++i)
    EXPECT_EQ(staged.edges()[i], classic.edges()[i]);
}

// ---- cluster ring sweep: staging on/off produce identical networks ---------

TEST(ClusterStaging, RingSweepMatchesWithStagingOnAndOff) {
  const RankedMatrix ranked = random_ranked(24, 72, 31);
  const BsplineMi estimator(10, 3, 72);
  const BsplineStat statistic(estimator);

  TingeConfig off;
  off.stage_ranks = false;
  TingeConfig on;
  on.stage_ranks = true;

  for (const int ranks : {2, 3}) {
    const GeneNetwork classic = cluster::cluster_compute_network(
        statistic, ranked, 0.2, ranks, off);
    const GeneNetwork staged = cluster::cluster_compute_network(
        statistic, ranked, 0.2, ranks, on);
    ASSERT_GT(classic.n_edges(), 0u);
    ASSERT_EQ(staged.n_edges(), classic.n_edges()) << ranks << " ranks";
    for (std::size_t i = 0; i < classic.n_edges(); ++i) {
      EXPECT_EQ(staged.edges()[i].u, classic.edges()[i].u);
      EXPECT_EQ(staged.edges()[i].v, classic.edges()[i].v);
      EXPECT_EQ(staged.edges()[i].weight, classic.edges()[i].weight);
    }
  }
}

// ---- NUMA tile plan and node-queue scheduler -------------------------------

TEST(NumaPlan, GenePartitionIsContiguousAndBalanced) {
  // 2-node split of 10 genes: first half node 0, second half node 1.
  for (std::size_t g = 0; g < 5; ++g)
    EXPECT_EQ(numa_node_of_gene(g, 10, 2), 0) << g;
  for (std::size_t g = 5; g < 10; ++g)
    EXPECT_EQ(numa_node_of_gene(g, 10, 2), 1) << g;
  // Degenerate shapes fall back to node 0.
  EXPECT_EQ(numa_node_of_gene(3, 10, 1), 0);
  EXPECT_EQ(numa_node_of_gene(0, 0, 4), 0);
  // The last gene always lands on the last node (clamped, never out of
  // range even with rounding).
  EXPECT_EQ(numa_node_of_gene(9, 10, 3), 2);
}

TEST(NumaPlan, TilesFollowTheirFirstRowGene) {
  const SweepPlan plan = SweepPlan::triangular(0, 32, 8);
  const NumaTilePlan numa = make_numa_tile_plan(plan, 32, 2, 4);
  ASSERT_EQ(numa.nodes, 2);
  ASSERT_EQ(numa.tile_node.size(), plan.count());
  for (std::size_t t = 0; t < plan.count(); ++t)
    EXPECT_EQ(numa.tile_node[t],
              numa_node_of_gene(plan.tile(t).row_begin, 32, 2))
        << "tile " << t;
  ASSERT_EQ(numa.thread_node.size(), 4u);
  EXPECT_EQ(numa.thread_node[0], 0);
  EXPECT_EQ(numa.thread_node[1], 0);
  EXPECT_EQ(numa.thread_node[2], 1);
  EXPECT_EQ(numa.thread_node[3], 1);
  // No layout supplied: contexts can only use the tid-block fallback.
  EXPECT_TRUE(numa.cpu_node.empty());
}

TEST(NumaPlan, AdoptsCpuTableOnlyWhenLayoutMatchesPlanNodes) {
  const SweepPlan plan = SweepPlan::triangular(0, 32, 8);
  par::NumaLayout layout;
  layout.nodes = 2;
  layout.cpu_node = {0, 0, 1, 1};
  // Matching node count: the cpu->node table rides along so sweep contexts
  // can resolve their home from the CPU they actually run on.
  const NumaTilePlan matched = make_numa_tile_plan(plan, 32, 2, 4, &layout);
  EXPECT_EQ(matched.cpu_node, layout.cpu_node);
  // Synthetic plan nodes != detected nodes: the table describes a different
  // node space and must be dropped in favor of the tid-block fallback.
  const NumaTilePlan synthetic = make_numa_tile_plan(plan, 32, 4, 4, &layout);
  EXPECT_TRUE(synthetic.cpu_node.empty());
}

TEST(NumaScheduler, NodeQueueSweepIsBitIdenticalAndWorkConserving) {
  // Drive run_sweep directly with a synthetic 2-node plan (the test host
  // may have one node): the node-queue scheduler must claim every tile
  // exactly once and produce the same edges as the shared-queue path.
  constexpr std::size_t kGenes = 40;
  constexpr std::size_t kSamples = 64;
  const RankedMatrix ranked = random_ranked(kGenes, kSamples, 23);
  const BsplineMi estimator(10, 3, kSamples);
  const BsplineStat statistic(estimator);
  const SweepPlan plan = SweepPlan::triangular(0, kGenes, 8);
  const PanelPlan panels = plan_panels(estimator, TingeConfig{});
  const auto row = [&ranked](std::size_t g) {
    return ranked.ranks(g).data();
  };
  par::ThreadPool pool(4);

  SweepOptions flat;
  flat.threads = 4;
  EdgeSink flat_sink(0.2, 4);
  const auto flat_counters =
      run_sweep(plan, statistic, row, panels, &pool, flat, flat_sink);
  const std::vector<Edge> flat_edges = [&] {
    std::vector<Edge> edges = flat_sink.take_all();
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    return edges;
  }();
  ASSERT_GT(flat_edges.size(), 0u);

  const NumaTilePlan numa = make_numa_tile_plan(plan, kGenes, 2, 4);
  SweepOptions with_numa = flat;
  with_numa.numa = &numa;
  EdgeSink numa_sink(0.2, 4);
  const auto numa_counters =
      run_sweep(plan, statistic, row, panels, &pool, with_numa, numa_sink);
  std::vector<Edge> numa_edges = numa_sink.take_all();
  std::sort(numa_edges.begin(), numa_edges.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });

  ASSERT_EQ(numa_edges.size(), flat_edges.size());
  for (std::size_t i = 0; i < flat_edges.size(); ++i)
    EXPECT_EQ(numa_edges[i], flat_edges[i]);

  // Work conservation: every tile claimed exactly once, and the local/
  // stolen split accounts for all of them.
  std::uint64_t tiles = 0, local = 0, stolen = 0, pairs = 0;
  for (const SweepCounters& c : numa_counters) {
    tiles += c.tiles;
    local += c.tiles_local;
    stolen += c.tiles_stolen;
    pairs += c.pairs;
  }
  EXPECT_EQ(tiles, plan.count());
  EXPECT_EQ(local + stolen, tiles);
  EXPECT_EQ(pairs, plan.total_pairs());
  // The flat path must not report NUMA claims.
  for (const SweepCounters& c : flat_counters) {
    EXPECT_EQ(c.tiles_local, 0u);
    EXPECT_EQ(c.tiles_stolen, 0u);
  }
}

TEST(NumaScheduler, EngineNumaKnobDoesNotChangeTheNetwork) {
  // On any host (1 node or many) forcing the knob on/off must not change
  // the result — only the tile claim order may differ.
  const RankedMatrix ranked = random_ranked(26, 80, 17);
  const BsplineMi estimator(10, 3, 80);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(4);

  TingeConfig off;
  off.threads = 4;
  off.tile_size = 8;
  off.numa = KnobMode::Off;
  TingeConfig on = off;
  on.numa = KnobMode::On;

  const GeneNetwork base = engine.compute_network(0.2, off, pool);
  const GeneNetwork with_numa = engine.compute_network(0.2, on, pool);
  ASSERT_EQ(with_numa.n_edges(), base.n_edges());
  for (std::size_t i = 0; i < base.n_edges(); ++i)
    EXPECT_EQ(with_numa.edges()[i], base.edges()[i]);
}

}  // namespace
}  // namespace tinge
