// The unified sweep executor (core/sweep.h): every scheduler x sink
// configuration the engine can assemble — flat, teamed, checkpointed with
// resume (under either scheduler) and dense — must produce byte-identical
// results on the same input, for every kernel variant.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "core/checkpoint.h"
#include "core/mi_engine.h"
#include "core/sweep.h"
#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {
namespace {

class SweepExecutorTest : public ::testing::TestWithParam<MiKernel> {
 protected:
  static constexpr std::size_t kGenes = 30;
  static constexpr std::size_t kSamples = 80;
  static constexpr double kThreshold = 0.2;

  SweepExecutorTest() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(123);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix.at(g, s) = static_cast<float>(
            g < 8 ? driver + 0.5 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix);
    dir_ = std::filesystem::temp_directory_path() /
           ("tingex_sweep_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~SweepExecutorTest() override { std::filesystem::remove_all(dir_); }

  TingeConfig config(int team_size = 1) const {
    TingeConfig c;
    c.tile_size = 8;
    c.threads = 2;
    c.team_size = team_size;
    c.kernel = GetParam();
    c.progress_tile_interval = 1;  // failure injection needs per-tile calls
    return c;
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static void expect_identical(const GeneNetwork& a, const GeneNetwork& b) {
    ASSERT_EQ(a.n_edges(), b.n_edges());
    for (std::size_t i = 0; i < a.n_edges(); ++i)
      EXPECT_EQ(a.edges()[i], b.edges()[i]);
  }

  BsplineMi estimator_;
  RankedMatrix ranked_;
  std::filesystem::path dir_;
};

TEST_P(SweepExecutorTest, EverySchedulerAndSinkConfigurationAgrees) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);

  const GeneNetwork plain =
      engine.compute_network(kThreshold, config(), pool);
  ASSERT_GT(plain.n_edges(), 0u);

  // Teamed scheduler, via the config knob and via the named entry point.
  expect_identical(plain,
                   engine.compute_network(kThreshold, config(2), pool));
  expect_identical(
      plain, engine.compute_network_teamed(kThreshold, config(), pool, 2));

  // Journal sink, fresh run, under both schedulers.
  expect_identical(plain, engine.compute_network_checkpointed(
                              kThreshold, config(), pool, path("flat.ckpt")));
  expect_identical(plain,
                   engine.compute_network_checkpointed(
                       kThreshold, config(2), pool, path("teamed.ckpt")));
}

TEST_P(SweepExecutorTest, DenseMatrixReproducesThresholdedEdgeSet) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);

  const GeneNetwork plain =
      engine.compute_network(kThreshold, config(), pool);
  const std::vector<float> dense = engine.compute_dense(config(), pool);

  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < kGenes; ++i) {
    for (std::uint32_t j = i + 1; j < kGenes; ++j) {
      const float mi = dense[i * kGenes + j];
      EXPECT_EQ(mi, dense[j * kGenes + i]);
      if (mi >= static_cast<float>(kThreshold)) edges.push_back({i, j, mi});
    }
  }
  ASSERT_EQ(edges.size(), plain.n_edges());
  for (std::size_t e = 0; e < edges.size(); ++e)
    EXPECT_EQ(edges[e], plain.edges()[e]);
}

TEST_P(SweepExecutorTest, ResumeAgreesUnderEitherScheduler) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const GeneNetwork expected =
      engine.compute_network(kThreshold, config(), pool);

  struct InjectedCrash : std::runtime_error {
    InjectedCrash() : std::runtime_error("injected") {}
  };
  const auto crash_after_three = [](std::size_t done, std::size_t) {
    if (done >= 3) throw InjectedCrash();
  };

  // Crash under the flat scheduler, resume under the teamed one.
  EXPECT_THROW(engine.compute_network_checkpointed(kThreshold, config(), pool,
                                                   path("cross.ckpt"), nullptr,
                                                   crash_after_three),
               InjectedCrash);
  ASSERT_TRUE(std::filesystem::exists(path("cross.ckpt")));
  EngineStats teamed_stats;
  expect_identical(expected, engine.compute_network_checkpointed(
                                 kThreshold, config(2), pool,
                                 path("cross.ckpt"), &teamed_stats));
  EXPECT_GT(teamed_stats.tiles_resumed, 0u);
  EXPECT_EQ(teamed_stats.pairs_computed, kGenes * (kGenes - 1) / 2);

  // Crash under the teamed scheduler, resume under the flat one — the
  // journal is scheduler-agnostic in both directions.
  EXPECT_THROW(engine.compute_network_checkpointed(kThreshold, config(2), pool,
                                                   path("back.ckpt"), nullptr,
                                                   crash_after_three),
               InjectedCrash);
  ASSERT_TRUE(std::filesystem::exists(path("back.ckpt")));
  EngineStats flat_stats;
  expect_identical(expected,
                   engine.compute_network_checkpointed(kThreshold, config(),
                                                       pool, path("back.ckpt"),
                                                       &flat_stats));
  EXPECT_GT(flat_stats.tiles_resumed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SweepExecutorTest,
                         ::testing::Values(MiKernel::Scalar,
                                           MiKernel::Unrolled, MiKernel::Auto),
                         [](const auto& param_info) {
                           return std::string(kernel_name(param_info.param));
                         });

// ---- teamed-mode contract ---------------------------------------------------

TEST(SweepTeamValidation, RejectsTeamSizeNotDividingPoolWidth) {
  ExpressionMatrix matrix(12, 48);
  Xoshiro256 rng(7);
  for (std::size_t g = 0; g < 12; ++g)
    for (std::size_t s = 0; s < 48; ++s)
      matrix.at(g, s) = static_cast<float>(rng.normal());
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(10, 3, 48);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(4);
  TingeConfig config;
  config.threads = 4;

  try {
    engine.compute_network_teamed(0.2, config, pool, 3);
    FAIL() << "team_size 3 over 4 threads must be rejected";
  } catch (const ContractViolation& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("team_size 3"), std::string::npos) << message;
    EXPECT_NE(message.find("divide"), std::string::npos) << message;
  }
  // Same rejection through the config knob.
  config.team_size = 3;
  EXPECT_THROW(engine.compute_network(0.2, config, pool), ContractViolation);
}

TEST(SweepTeamValidation, TeamSizeEqualToPoolWidthIsOneTeam) {
  ExpressionMatrix matrix(20, 64);
  Xoshiro256 rng(11);
  for (std::size_t s = 0; s < 64; ++s) {
    const double driver = rng.normal();
    for (std::size_t g = 0; g < 20; ++g)
      matrix.at(g, s) = static_cast<float>(
          g < 6 ? driver + 0.5 * rng.normal() : rng.normal());
  }
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(10, 3, 64);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(4);
  TingeConfig config;
  config.threads = 4;
  config.tile_size = 8;

  const GeneNetwork plain = engine.compute_network(0.2, config, pool);
  EngineStats stats;
  const GeneNetwork one_team =
      engine.compute_network_teamed(0.2, config, pool, 4, &stats);
  ASSERT_EQ(plain.n_edges(), one_team.n_edges());
  for (std::size_t i = 0; i < plain.n_edges(); ++i)
    EXPECT_EQ(plain.edges()[i], one_team.edges()[i]);
  EXPECT_EQ(stats.pairs_computed, 20u * 19u / 2u);
}

// ---- cancellation -----------------------------------------------------------

class SweepCancellationTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 24;
  static constexpr std::size_t kSamples = 64;

  SweepCancellationTest() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(5);
    for (std::size_t g = 0; g < kGenes; ++g)
      for (std::size_t s = 0; s < kSamples; ++s)
        matrix.at(g, s) = static_cast<float>(rng.normal());
    ranked_ = RankedMatrix(matrix);
  }

  auto row_source() const {
    return [this](std::size_t g) { return ranked_.ranks(g).data(); };
  }

  BsplineMi estimator_;
  BsplineStat statistic_{estimator_};
  RankedMatrix ranked_;
};

TEST_F(SweepCancellationTest, FlatSchedulerAbortsBeforeClaimingTiles) {
  // A pre-tripped flag must abort before any tile is computed.
  const SweepPlan plan = SweepPlan::triangular(0, kGenes, 8);
  const PanelPlan panels = plan_panels(estimator_, TingeConfig{});
  const std::atomic<bool> cancel{true};
  SweepOptions options;
  options.cancel = &cancel;
  EdgeSink sink(0.0, /*contexts=*/1);
  const auto row = row_source();
  EXPECT_THROW(
      run_sweep(plan, statistic_, row, panels, nullptr, options, sink),
      SweepAborted);
}

TEST_F(SweepCancellationTest, FlatSchedulerStopsMidPassAndKeepsJournal) {
  // Trip the flag from the progress callback after 3 tiles: the pass must
  // abort with SweepAborted, and the tiles journaled before the trip stay
  // valid for a resume.
  const SweepPlan plan = SweepPlan::triangular(0, kGenes, 8);
  const PanelPlan panels = plan_panels(estimator_, TingeConfig{});
  ASSERT_GT(plan.count(), 3u);
  std::atomic<bool> cancel{false};
  SweepOptions options;
  options.cancel = &cancel;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tingex_cancel_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  const RunSignature signature{kGenes, kSamples, 8, 10, 3, 0.0};
  {
    CheckpointWriter writer(path, signature);
    JournalSink::Progress progress;
    progress.total = plan.count();
    progress.callback = [&cancel](std::size_t done, std::size_t) {
      if (done >= 3) cancel.store(true);
    };
    JournalSink sink(writer, 0.0, /*contexts=*/1, std::move(progress));
    const auto row = row_source();
    EXPECT_THROW(
        run_sweep(plan, statistic_, row, panels, nullptr, options, sink),
        SweepAborted);
  }
  const CheckpointState state = load_checkpoint(path);
  EXPECT_GE(state.completed_tiles().size(), 3u);
  EXPECT_LT(state.completed_tiles().size(), plan.count());
  std::filesystem::remove(path);
}

TEST_F(SweepCancellationTest, TeamedSchedulerDrainsAllMembersOnAbort) {
  // Pre-tripped flag under the teamed scheduler: the leader poisons the
  // claim counter, every member drains off its barriers (no strand — the
  // test completing at all is the point) and SweepAborted is rethrown.
  const SweepPlan plan = SweepPlan::triangular(0, kGenes, 8);
  const PanelPlan panels = plan_panels(estimator_, TingeConfig{});
  const std::atomic<bool> cancel{true};
  par::ThreadPool pool(4);
  SweepOptions options;
  options.threads = 4;
  options.team_size = 2;
  options.cancel = &cancel;
  EdgeSink sink(0.0, /*contexts=*/4);
  const auto row = row_source();
  EXPECT_THROW(
      run_sweep(plan, statistic_, row, panels, &pool, options, sink),
      SweepAborted);
}

}  // namespace
}  // namespace tinge
