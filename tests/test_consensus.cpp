// Bootstrapped consensus networks: estimator-list parsing, seeded
// determinism, frequency semantics, multi-estimator voting, and the
// pipeline integration (NetworkBuilder --consensus=B, DPI on consensus
// weights).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/consensus.h"
#include "core/network_builder.h"
#include "core/pair_statistic.h"
#include "parallel/thread_pool.h"
#include "stats/rng.h"
#include "synth/expression.h"

namespace tinge {
namespace {

TEST(ConsensusEstimatorList, EmptyStringFallsBackToConfigEstimator) {
  TingeConfig config;
  config.estimator = EstimatorKind::Spearman;
  const std::vector<EstimatorKind> kinds = consensus_estimator_list(config);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], EstimatorKind::Spearman);
}

TEST(ConsensusEstimatorList, ParsesCommaListWithSpaces) {
  TingeConfig config;
  config.consensus_estimators = " histogram, pearson ,phi";
  const std::vector<EstimatorKind> kinds = consensus_estimator_list(config);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], EstimatorKind::Histogram);
  EXPECT_EQ(kinds[1], EstimatorKind::Pearson);
  EXPECT_EQ(kinds[2], EstimatorKind::Phi);
}

TEST(ConsensusEstimatorList, RejectsDuplicatesAndUnknownNames) {
  TingeConfig config;
  config.consensus_estimators = "pearson,pearson";
  EXPECT_THROW(consensus_estimator_list(config), std::invalid_argument);
  config.consensus_estimators = "pearson,mic";
  EXPECT_THROW(consensus_estimator_list(config), std::invalid_argument);
  config.consensus_estimators = " , ,";
  EXPECT_THROW(consensus_estimator_list(config), std::invalid_argument);
}

class ConsensusFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 20;
  static constexpr std::size_t kSamples = 48;

  ConsensusFixture() : working_(kGenes, kSamples) {
    Xoshiro256 rng(2024);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g)
        working_.at(g, s) = static_cast<float>(
            g < 6 ? driver + 0.5 * rng.normal() : rng.normal());
    }
    ranked_ = RankedMatrix(working_);
  }

  TingeConfig config() const {
    TingeConfig c;
    c.consensus_resamples = 5;
    c.permutations = 300;
    c.alpha = 0.05;
    c.threads = 2;
    c.seed = 11;
    return c;
  }

  ExpressionMatrix working_;
  RankedMatrix ranked_;
};

TEST_F(ConsensusFixture, SameSeedGivesIdenticalNetworks) {
  par::ThreadPool pool(2);
  const TingeConfig c = config();
  ConsensusStats first_stats;
  const GeneNetwork first =
      build_consensus_network(working_, ranked_, c, pool, {}, &first_stats);
  const GeneNetwork second =
      build_consensus_network(working_, ranked_, c, pool);
  ASSERT_GT(first.n_edges(), 0u);
  ASSERT_EQ(first.n_edges(), second.n_edges());
  for (std::size_t i = 0; i < first.n_edges(); ++i) {
    EXPECT_EQ(first.edges()[i].u, second.edges()[i].u);
    EXPECT_EQ(first.edges()[i].v, second.edges()[i].v);
    EXPECT_EQ(first.edges()[i].weight, second.edges()[i].weight);
  }
  EXPECT_EQ(first_stats.resamples, 5u);
  EXPECT_EQ(first_stats.estimators, 1u);
  ASSERT_EQ(first_stats.thresholds.size(), 1u);
  EXPECT_EQ(first_stats.kept_edges, first.n_edges());
  EXPECT_GE(first_stats.candidate_edges, first_stats.kept_edges);
}

TEST_F(ConsensusFixture, DifferentSeedsDisagree) {
  // Not a correctness requirement in itself, but if two different seeds
  // vote out byte-identical networks the resampling RNG is not wired in.
  par::ThreadPool pool(2);
  TingeConfig a = config();
  TingeConfig b = config();
  b.seed = 12;
  const GeneNetwork first = build_consensus_network(working_, ranked_, a, pool);
  const GeneNetwork second =
      build_consensus_network(working_, ranked_, b, pool);
  bool differs = first.n_edges() != second.n_edges();
  for (std::size_t i = 0; !differs && i < first.n_edges(); ++i)
    differs = !(first.edges()[i] == second.edges()[i]);
  EXPECT_TRUE(differs);
}

TEST_F(ConsensusFixture, EdgeWeightsAreFrequenciesAboveTheFloor) {
  par::ThreadPool pool(2);
  const TingeConfig c = config();
  const GeneNetwork network =
      build_consensus_network(working_, ranked_, c, pool);
  ASSERT_GT(network.n_edges(), 0u);
  for (const Edge& edge : network.edges()) {
    EXPECT_GE(edge.weight, static_cast<float>(c.consensus_min_frequency));
    EXPECT_LE(edge.weight, 1.0f);
  }
}

TEST_F(ConsensusFixture, UnanimityFloorKeepsOnlyEveryRoundEdges) {
  par::ThreadPool pool(2);
  TingeConfig c = config();
  const GeneNetwork majority =
      build_consensus_network(working_, ranked_, c, pool);
  c.consensus_min_frequency = 1.0;
  const GeneNetwork unanimous =
      build_consensus_network(working_, ranked_, c, pool);
  EXPECT_LE(unanimous.n_edges(), majority.n_edges());
  for (const Edge& edge : unanimous.edges())
    EXPECT_EQ(edge.weight, 1.0f);
}

TEST_F(ConsensusFixture, MultipleEstimatorsVoteOnTheSameResamples) {
  par::ThreadPool pool(2);
  TingeConfig c = config();
  c.consensus_estimators = "bspline,spearman";
  ConsensusStats stats;
  const GeneNetwork network =
      build_consensus_network(working_, ranked_, c, pool, {}, &stats);
  EXPECT_EQ(stats.estimators, 2u);
  ASSERT_EQ(stats.thresholds.size(), 2u);
  EXPECT_EQ(stats.pairs_computed,
            5u * 2u * (kGenes * (kGenes - 1) / 2));
  ASSERT_GT(network.n_edges(), 0u);
  // Frequencies are counts over B*E runs: multiples of 1/10 here.
  for (const Edge& edge : network.edges()) {
    const double scaled = static_cast<double>(edge.weight) * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-4);
  }
}

TEST_F(ConsensusFixture, PipelineRunsConsensusAndDpiOnConsensusWeights) {
  TingeConfig c = config();
  const BuildResult plain = NetworkBuilder(c).build(working_);
  EXPECT_EQ(plain.consensus.resamples, 5u);
  EXPECT_EQ(plain.consensus.kept_edges, plain.network.n_edges());
  ASSERT_GT(plain.network.n_edges(), 0u);
  for (const Edge& edge : plain.network.edges()) EXPECT_LE(edge.weight, 1.0f);

  c.apply_dpi = true;
  c.dpi_tolerance = 0.0;
  const BuildResult filtered = NetworkBuilder(c).build(working_);
  EXPECT_EQ(filtered.consensus.resamples, 5u);
  // DPI prunes the consensus network, so only consensus edges survive and
  // none are added.
  EXPECT_LE(filtered.network.n_edges(), plain.network.n_edges());
  for (const Edge& edge : filtered.network.edges()) {
    bool present = false;
    for (const Edge& original : plain.network.edges())
      present = present || (original.u == edge.u && original.v == edge.v &&
                            original.weight == edge.weight);
    EXPECT_TRUE(present) << edge.u << "-" << edge.v;
  }
}

}  // namespace
}  // namespace tinge
