// The PairStatistic lattice: estimator parsing, B-spline bit-identity
// through the generic interface, the universal null through the generic
// path, cross-path identity (single vs teamed vs cluster) for every
// estimator kind, and checkpoint journals refusing an estimator swap.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <unistd.h>

#include "cluster/ring_mi.h"
#include "core/checkpoint.h"
#include "core/mi_engine.h"
#include "core/null_distribution.h"
#include "core/pair_statistic.h"
#include "parallel/thread_pool.h"
#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {
namespace {

constexpr EstimatorKind kAllKinds[] = {
    EstimatorKind::Bspline,  EstimatorKind::Histogram, EstimatorKind::Ksg,
    EstimatorKind::Pearson,  EstimatorKind::Spearman,  EstimatorKind::Phi,
};

TEST(EstimatorParse, NameRoundTrip) {
  for (const EstimatorKind kind : kAllKinds)
    EXPECT_EQ(parse_estimator(estimator_name(kind)), kind);
}

TEST(EstimatorParse, RejectsUnknownNames) {
  EXPECT_THROW(parse_estimator("mic"), std::invalid_argument);
  EXPECT_THROW(parse_estimator(""), std::invalid_argument);
  EXPECT_THROW(parse_estimator("BSPLINE"), std::invalid_argument);
}

// ---- generic interface vs the raw B-spline estimator ----------------------

class EstimatorBsplineFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 12;
  static constexpr std::size_t kSamples = 128;

  EstimatorBsplineFixture() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(4242);
    for (std::size_t g = 0; g < kGenes; ++g)
      for (std::size_t s = 0; s < kSamples; ++s)
        matrix.at(g, s) = static_cast<float>(rng.normal());
    ranked_ = RankedMatrix(matrix);
  }

  BsplineMi estimator_;
  BsplineStat statistic_{estimator_};
  RankedMatrix ranked_;
};

TEST_F(EstimatorBsplineFixture, EvalPairMatchesBsplineMiBitwise) {
  JointHistogram direct = estimator_.make_scratch();
  const std::unique_ptr<PairScratch> scratch = statistic_.make_scratch();
  for (std::size_t i = 0; i < kGenes; ++i) {
    for (std::size_t j = i + 1; j < kGenes; ++j) {
      const double expected =
          estimator_.mi(ranked_.ranks(i), ranked_.ranks(j), direct);
      const double got = statistic_.eval_pair(
          ranked_.ranks(i).data(), ranked_.ranks(j).data(), i, j, *scratch);
      EXPECT_EQ(expected, got) << "pair (" << i << "," << j << ")";
    }
  }
}

TEST_F(EstimatorBsplineFixture, EvalPanelMatchesPerPairBitwise) {
  const std::unique_ptr<PairScratch> scratch = statistic_.make_scratch();
  TingeConfig config;
  const PanelPlan plan = statistic_.plan(config);
  ASSERT_GE(plan.width, 1);
  PanelOptions options;
  options.kernel = plan.kernel;
  options.prefetch = plan.prefetch;
  options.packed = plan.packed;
  const std::size_t width =
      std::min<std::size_t>(static_cast<std::size_t>(plan.width), kGenes - 1);
  const std::uint32_t* ys[8] = {};
  for (std::size_t p = 0; p < width; ++p)
    ys[p] = ranked_.ranks(1 + p).data();
  double out[8] = {};
  statistic_.eval_panel(ranked_.ranks(0).data(), ys, width, 0, 1, options,
                        *scratch, out);
  for (std::size_t p = 0; p < width; ++p) {
    const double expected = statistic_.eval_pair(
        ranked_.ranks(0).data(), ranked_.ranks(1 + p).data(), 0, 1 + p,
        *scratch);
    EXPECT_EQ(expected, out[p]) << "lane " << p;
  }
}

TEST_F(EstimatorBsplineFixture, GenericNullMatchesLegacyBsplineNull) {
  par::ThreadPool pool(2);
  const EmpiricalDistribution legacy =
      build_null_distribution(estimator_, 500, 77, pool, 2);
  const EmpiricalDistribution generic =
      build_null_distribution(statistic_, 500, 77, pool, 2);
  ASSERT_EQ(legacy.size(), generic.size());
  EXPECT_EQ(legacy.sorted(), generic.sorted());
}

// ---- cross-path identity for every estimator kind -------------------------

class EstimatorIdentityFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 24;
  static constexpr std::size_t kSamples = 64;

  EstimatorIdentityFixture() : matrix_(kGenes, kSamples) {
    Xoshiro256 rng(321);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g)
        matrix_.at(g, s) = static_cast<float>(
            g < 6 ? driver + 0.6 * rng.normal() : rng.normal());
    }
    ranked_ = RankedMatrix(matrix_);
  }

  /// Median of the dense statistic values: a threshold that keeps a
  /// nonempty, nontrivial edge set for any estimator's value scale.
  double median_threshold(const PairStatistic& statistic,
                          const TingeConfig& config,
                          par::ThreadPool& pool) const {
    const MiEngine engine(statistic, ranked_);
    const std::vector<float> dense = engine.compute_dense(config, pool);
    std::vector<float> values;
    for (std::size_t i = 0; i < kGenes; ++i)
      for (std::size_t j = i + 1; j < kGenes; ++j)
        values.push_back(dense[i * kGenes + j]);
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    return values[values.size() / 2];
  }

  ExpressionMatrix matrix_;
  RankedMatrix ranked_;
};

TEST_F(EstimatorIdentityFixture, SingleTeamedAndClusterSweepsAgree) {
  par::ThreadPool pool(4);
  for (const EstimatorKind kind : kAllKinds) {
    SCOPED_TRACE(estimator_name(kind));
    TingeConfig config;
    config.estimator = kind;
    config.tile_size = 8;
    const std::unique_ptr<PairStatistic> statistic =
        make_pair_statistic(config, ranked_, &matrix_);
    const double threshold = median_threshold(*statistic, config, pool);
    const MiEngine engine(*statistic, ranked_);

    config.threads = 1;
    const GeneNetwork expected = engine.compute_network(threshold, config, pool);
    ASSERT_GT(expected.n_edges(), 0u);
    ASSERT_LT(expected.n_edges(), kGenes * (kGenes - 1) / 2);

    config.threads = 4;
    const GeneNetwork threaded = engine.compute_network(threshold, config, pool);
    config.team_size = 2;
    const GeneNetwork teamed = engine.compute_network(threshold, config, pool);
    config.team_size = 1;

    const auto expect_identical = [&](const GeneNetwork& got,
                                      const char* label) {
      ASSERT_EQ(got.n_edges(), expected.n_edges()) << label;
      for (std::size_t i = 0; i < expected.n_edges(); ++i) {
        EXPECT_EQ(got.edges()[i].u, expected.edges()[i].u) << label;
        EXPECT_EQ(got.edges()[i].v, expected.edges()[i].v) << label;
        EXPECT_EQ(got.edges()[i].weight, expected.edges()[i].weight) << label;
      }
    };
    expect_identical(threaded, "threaded");
    expect_identical(teamed, "teamed");
    for (const int ranks : {2, 4}) {
      const GeneNetwork distributed = cluster::cluster_compute_network(
          *statistic, ranked_, threshold, ranks, config);
      expect_identical(distributed, ranks == 2 ? "cluster p=2" : "cluster p=4");
    }
  }
}

// ---- checkpoint journals are estimator-scoped -----------------------------

class EstimatorCheckpointFixture : public EstimatorIdentityFixture {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tingex_est_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(EstimatorCheckpointFixture, ResumeRejectsJournalFromOtherEstimator) {
  par::ThreadPool pool(2);
  TingeConfig config;
  config.tile_size = 8;
  const std::unique_ptr<PairStatistic> bspline =
      make_pair_statistic(config, ranked_, &matrix_);
  const double threshold = 0.05;
  {
    // A journal that matches the run in every dimension — data, tiling,
    // discretization, threshold — except the estimator that scored it.
    CheckpointWriter writer(
        path("est.ckpt"),
        RunSignature{kGenes, kSamples, config.tile_size,
                     bspline->signature_bins(), bspline->signature_order(),
                     threshold,
                     static_cast<std::uint32_t>(EstimatorKind::Histogram)});
    const Edge bogus[] = {{0, 1, 0.5f}};
    writer.append_tile(0, bogus);
  }
  const MiEngine engine(*bspline, ranked_);
  try {
    engine.compute_network_checkpointed(threshold, config, pool,
                                        path("est.ckpt"));
    FAIL() << "estimator swap over a live journal must throw";
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("histogram"), std::string::npos) << message;
    EXPECT_NE(message.find("bspline"), std::string::npos) << message;
  }
}

TEST_F(EstimatorCheckpointFixture, SameEstimatorJournalStillResumes) {
  // Control: the histogram engine resumes its own journal without protest.
  par::ThreadPool pool(2);
  TingeConfig config;
  config.tile_size = 8;
  config.threads = 2;
  // Failure injection needs the callback after every tile, not throttled.
  config.progress_tile_interval = 1;
  config.estimator = EstimatorKind::Histogram;
  const std::unique_ptr<PairStatistic> statistic =
      make_pair_statistic(config, ranked_, &matrix_);
  const MiEngine engine(*statistic, ranked_);
  const double threshold = 0.05;
  const GeneNetwork expected = engine.compute_network(threshold, config, pool);
  struct InjectedCrash : std::runtime_error {
    InjectedCrash() : std::runtime_error("injected") {}
  };
  EXPECT_THROW(engine.compute_network_checkpointed(
                   threshold, config, pool, path("resume.ckpt"), nullptr,
                   [](std::size_t done, std::size_t) {
                     if (done >= 2) throw InjectedCrash();
                   }),
               InjectedCrash);
  EngineStats stats;
  const GeneNetwork resumed = engine.compute_network_checkpointed(
      threshold, config, pool, path("resume.ckpt"), &stats);
  EXPECT_GT(stats.tiles_resumed, 0u);
  ASSERT_EQ(resumed.n_edges(), expected.n_edges());
  for (std::size_t i = 0; i < expected.n_edges(); ++i)
    EXPECT_EQ(resumed.edges()[i], expected.edges()[i]);
}

}  // namespace
}  // namespace tinge
