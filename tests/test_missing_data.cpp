// Missing-data handling across the stack: pairwise-complete MI vs
// imputation, and pipeline robustness under increasing missingness.
#include <gtest/gtest.h>

#include <cmath>

#include "mi/bspline_mi.h"
#include "preprocess/filter.h"
#include "stats/gaussian.h"
#include "stats/rng.h"

namespace tinge {
namespace {

void gaussian_pair_with_missing(std::size_t m, double rho, double missing,
                                std::uint64_t seed, std::vector<float>& x,
                                std::vector<float>& y) {
  Xoshiro256 rng(seed);
  x.resize(m);
  y.resize(m);
  const double noise = std::sqrt(1.0 - rho * rho);
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(rho * u + noise * rng.normal());
    if (rng.uniform() < missing) x[j] = std::nanf("");
    if (rng.uniform() < missing) y[j] = std::nanf("");
  }
}

TEST(PairwiseCompleteMi, MatchesDirectOnCompleteData) {
  std::vector<float> x, y;
  gaussian_pair_with_missing(800, 0.6, 0.0, 3, x, y);
  const double complete = bspline_mi_pairwise_complete(x, y, 10, 3);
  // Rank + direct path on the same full data.
  EXPECT_GT(complete, 0.1);
  EXPECT_TRUE(std::isfinite(complete));
}

TEST(PairwiseCompleteMi, RobustToModerateMissingness) {
  std::vector<float> x, y;
  gaussian_pair_with_missing(3000, 0.7, 0.0, 5, x, y);
  const double full = bspline_mi_pairwise_complete(x, y, 10, 3);
  gaussian_pair_with_missing(3000, 0.7, 0.15, 5, x, y);
  const double holey = bspline_mi_pairwise_complete(x, y, 10, 3);
  EXPECT_NEAR(holey, full, 0.1 * full + 0.03);
}

TEST(PairwiseCompleteMi, BeatsImputationUnderHeavyMissingness) {
  // Median imputation of a strongly dependent pair creates a spike of
  // identical values that dilutes MI; pairwise deletion does not.
  const std::size_t m = 2000;
  std::vector<float> x, y;
  gaussian_pair_with_missing(m, 0.8, 0.25, 7, x, y);

  const double pairwise = bspline_mi_pairwise_complete(x, y, 10, 3);

  // Impute both with their medians (the pipeline's default policy).
  ExpressionMatrix matrix(2, m);
  for (std::size_t j = 0; j < m; ++j) {
    matrix.at(0, j) = x[j];
    matrix.at(1, j) = y[j];
  }
  impute_missing_with_median(matrix);
  std::vector<float> xi(matrix.row(0).begin(), matrix.row(0).end());
  std::vector<float> yi(matrix.row(1).begin(), matrix.row(1).end());
  const double imputed = bspline_mi_pairwise_complete(xi, yi, 10, 3);

  const double truth = gaussian_mi_nats(0.8);
  EXPECT_LT(std::fabs(pairwise - truth), std::fabs(imputed - truth));
}

TEST(PairwiseCompleteMi, IndependentStaysNearZeroWithMissingness) {
  std::vector<float> x, y;
  gaussian_pair_with_missing(2000, 0.0, 0.2, 9, x, y);
  EXPECT_LT(bspline_mi_pairwise_complete(x, y, 10, 3), 0.05);
}

TEST(PairwiseCompleteMi, RequiresEnoughCompletePairs) {
  std::vector<float> x(20, std::nanf("")), y(20, 1.0f);
  for (int i = 0; i < 5; ++i) x[static_cast<std::size_t>(i)] = 0.5f;
  EXPECT_THROW(bspline_mi_pairwise_complete(x, y, 10, 3), ContractViolation);
  std::vector<float> a(10, 1.0f), b(9, 1.0f);
  EXPECT_THROW(bspline_mi_pairwise_complete(a, b, 10, 3), ContractViolation);
}

TEST(PairwiseCompleteMi, AllCompletePairsOnlyCountComplete) {
  // NaN in x at positions where y is fine (and vice versa) must be dropped
  // symmetrically: estimator sees min-complete subset.
  std::vector<float> x(100), y(100);
  Xoshiro256 rng(11);
  for (std::size_t j = 0; j < 100; ++j) {
    x[j] = static_cast<float>(rng.normal());
    y[j] = x[j];
  }
  for (std::size_t j = 0; j < 30; ++j) x[j] = std::nanf("");
  for (std::size_t j = 70; j < 100; ++j) y[j] = std::nanf("");
  // 40 complete pairs of identical values: MI close to the (smoothed)
  // marginal entropy, far above any independent-pair level.
  const double mi = bspline_mi_pairwise_complete(x, y, 8, 3);
  EXPECT_GT(mi, 0.8);
}

}  // namespace
}  // namespace tinge
