// Degenerate-shape edge cases across the stack: empty matrices, zero-sample
// rows, single-element structures — the places off-by-one bugs live.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/tile.h"
#include "data/expression_matrix.h"
#include "data/tsv_io.h"
#include "graph/analysis.h"
#include "graph/metrics.h"
#include "graph/network.h"
#include "mi/joint_histogram.h"
#include "preprocess/filter.h"
#include "preprocess/rank_transform.h"
#include "stats/descriptive.h"

namespace tinge {
namespace {

TEST(EdgeCases, EmptyExpressionMatrix) {
  ExpressionMatrix empty(0, 0);
  EXPECT_EQ(empty.n_genes(), 0u);
  EXPECT_EQ(empty.count_missing(), 0u);
  EXPECT_EQ(empty.find_gene("x"), ExpressionMatrix::npos);
  const ExpressionMatrix selected = empty.select_genes({});
  EXPECT_EQ(selected.n_genes(), 0u);
}

TEST(EdgeCases, MatrixWithZeroSamples) {
  ExpressionMatrix matrix(3, 0);
  EXPECT_EQ(matrix.row(0).size(), 0u);
  EXPECT_EQ(impute_missing_with_median(matrix), 0u);
  const FilterResult filtered = filter_genes(matrix, FilterCriteria{});
  EXPECT_EQ(filtered.matrix.n_genes(), 0u);  // zero variance everywhere
}

TEST(EdgeCases, MatrixWithZeroGenesSerializes) {
  ExpressionMatrix matrix(0, 3);
  std::stringstream stream;
  write_expression_tsv(matrix, stream);
  const ExpressionMatrix back = read_expression_tsv(stream);
  EXPECT_EQ(back.n_genes(), 0u);
  EXPECT_EQ(back.n_samples(), 3u);
}

TEST(EdgeCases, SingleSampleRanking) {
  const float one[] = {42.0f};
  const auto ranks = rank_order(one);
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_FLOAT_EQ(rank_average(one)[0], 0.0f);
}

TEST(EdgeCases, EmptySpanStatistics) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(EdgeCases, TileSetForTwoGenes) {
  const TileSet tiles(2, 1000);
  EXPECT_EQ(tiles.count(), 1u);
  EXPECT_EQ(tiles.total_pairs(), 1u);
  const TileSet one_gene(1, 8);
  EXPECT_EQ(one_gene.total_pairs(), 0u);
  EXPECT_EQ(one_gene.count(), 0u);  // degenerate tiles are dropped
}

TEST(EdgeCases, JointHistogramSingleBin) {
  JointHistogram hist(1);
  EXPECT_EQ(hist.bins(), 1);
  EXPECT_GE(hist.stride(), 1u);
  hist.row(0)[0] = 3.0f;
  EXPECT_DOUBLE_EQ(hist.total_mass(), 3.0);
  hist.clear();
  EXPECT_DOUBLE_EQ(hist.total_mass(), 0.0);
}

TEST(EdgeCases, NetworkWithOneNode) {
  GeneNetwork network({"only"});
  network.finalize();
  EXPECT_EQ(connected_components(network), 1u);
  EXPECT_TRUE(degree_histogram(network).size() == 1);
  EXPECT_EQ(top_hubs(network, 5).size(), 1u);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(network), 0.0);
}

TEST(EdgeCases, EmptyNetworkMetrics) {
  GeneNetwork network(std::vector<std::string>{});
  network.finalize();
  EXPECT_EQ(network.n_nodes(), 0u);
  EXPECT_EQ(connected_components(network), 0u);
  const NetworkSummary summary = summarize_network(network);
  EXPECT_EQ(summary.nodes, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_degree, 0.0);
}

TEST(EdgeCases, AverageAndStableRanksAgreeOnSingletons) {
  const float values[] = {5.0f, 1.0f};
  const auto stable = rank_order(values);
  const auto averaged = rank_average(values);
  EXPECT_EQ(stable[0], 1u);
  EXPECT_FLOAT_EQ(averaged[0], 1.0f);
}

TEST(EdgeCases, SelectAllGenesIsIdentity) {
  ExpressionMatrix matrix(3, 2);
  matrix.at(2, 1) = 7.0f;
  const ExpressionMatrix same = matrix.select_genes({0, 1, 2});
  EXPECT_EQ(same.n_genes(), 3u);
  EXPECT_FLOAT_EQ(same.at(2, 1), 7.0f);
}

TEST(EdgeCases, ThresholdedOnEmptyNetwork) {
  GeneNetwork network({"a", "b"});
  network.finalize();
  const GeneNetwork filtered = network.thresholded(0.5f);
  EXPECT_EQ(filtered.n_edges(), 0u);
  EXPECT_TRUE(filtered.finalized());
}

}  // namespace
}  // namespace tinge
