// Estimator quality: the B-spline estimator against the Gaussian closed
// form, against its direct (non-shared-table) formulation, against the
// histogram baseline; correlation baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mi/bspline_mi.h"
#include "mi/correlation.h"
#include "mi/histogram_mi.h"
#include "preprocess/rank_transform.h"
#include "stats/gaussian.h"
#include "stats/rng.h"

namespace tinge {
namespace {

// Correlated bivariate Gaussian sample of length m.
void gaussian_pair(std::size_t m, double rho, std::uint64_t seed,
                   std::vector<float>& x, std::vector<float>& y) {
  Xoshiro256 rng(seed);
  x.resize(m);
  y.resize(m);
  const double noise = std::sqrt(1.0 - rho * rho);
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.normal();
    const double v = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(rho * u + noise * v);
  }
}

double bspline_mi_of_sample(const std::vector<float>& x,
                            const std::vector<float>& y, int bins, int order) {
  const BsplineMi estimator(bins, order, x.size());
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = rank_order(x);
  const auto ry = rank_order(y);
  return estimator.mi(rx, ry, scratch);
}

TEST(BsplineEstimator, TracksGaussianMiOrdering) {
  // More correlation must mean more estimated MI.
  std::vector<float> x, y;
  double previous = -1.0;
  for (const double rho : {0.0, 0.3, 0.6, 0.9}) {
    gaussian_pair(4000, rho, 77, x, y);
    const double mi = bspline_mi_of_sample(x, y, 10, 3);
    EXPECT_GT(mi, previous) << "rho=" << rho;
    previous = mi;
  }
}

TEST(BsplineEstimator, ApproximatesGaussianMiValue) {
  // With plenty of samples the estimate lands near the analytic value
  // (the B-spline plug-in carries a small positive bias and a smoothing
  // deficit; 25% relative + small absolute slack covers both).
  std::vector<float> x, y;
  for (const double rho : {0.5, 0.7, 0.9}) {
    gaussian_pair(8000, rho, 31, x, y);
    const double truth = gaussian_mi_nats(rho);
    const double mi = bspline_mi_of_sample(x, y, 12, 3);
    EXPECT_NEAR(mi, truth, 0.25 * truth + 0.05) << "rho=" << rho;
  }
}

TEST(BsplineEstimator, IndependentPairsNearZero) {
  std::vector<float> x, y;
  gaussian_pair(5000, 0.0, 13, x, y);
  const double mi = bspline_mi_of_sample(x, y, 10, 3);
  EXPECT_GE(mi, 0.0);
  EXPECT_LT(mi, 0.05);
}

TEST(BsplineEstimator, DetectsNonMonotoneDependence) {
  // y = x^2 + small noise: Pearson ~ 0, but MI must be clearly positive.
  const std::size_t m = 3000;
  Xoshiro256 rng(5);
  std::vector<float> x(m), y(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(u * u + 0.05 * rng.normal());
  }
  const double mi = bspline_mi_of_sample(x, y, 10, 3);
  const double rho = pearson_correlation(x, y);
  EXPECT_LT(std::fabs(rho), 0.1);
  EXPECT_GT(mi, 0.3);
}

TEST(BsplineDirect, AgreesWithSharedTablePath) {
  // The direct estimator on rank-grid values must reproduce the shared
  // table estimator exactly (same weights, same arithmetic up to rounding).
  const std::size_t m = 400;
  Xoshiro256 rng(9);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  std::vector<float> x01(m), y01(m);
  for (std::size_t j = 0; j < m; ++j) {
    x01[j] = rank_to_unit(static_cast<float>(rx[j]), m);
    y01[j] = rank_to_unit(static_cast<float>(ry[j]), m);
  }
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  const double table_mi = estimator.mi(rx, ry, scratch);
  const double direct_mi = bspline_mi_direct(x01, y01, 10, 3);
  EXPECT_NEAR(table_mi, direct_mi, 1e-3);
}

TEST(BsplineDirect, NonNegativeOnArbitraryData) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> x(100), y(100);
    for (std::size_t j = 0; j < 100; ++j) {
      x[j] = rng.uniformf();
      y[j] = rng.uniformf();
    }
    EXPECT_GE(bspline_mi_direct(x, y, 8, 3), -1e-12);
  }
}

TEST(BsplineDirect, RejectsMismatchedLengths) {
  std::vector<float> x(10, 0.5f), y(9, 0.5f);
  EXPECT_THROW(bspline_mi_direct(x, y, 8, 3), ContractViolation);
}

// ---- histogram baseline ------------------------------------------------------

TEST(HistogramMi, PerfectDependenceEqualsLogBins) {
  // ranks_y == ranks_x with equal-frequency bins: MI = H = log(bins).
  const std::size_t m = 1000;
  Xoshiro256 rng(3);
  const auto rx = random_permutation(m, rng);
  const double mi = histogram_mi_from_ranks(rx, rx, 10);
  EXPECT_NEAR(mi, std::log(10.0), 1e-9);
}

TEST(HistogramMi, IndependentNearZero) {
  const std::size_t m = 20000;
  Xoshiro256 rng(4);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  const double mi = histogram_mi_from_ranks(rx, ry, 10);
  EXPECT_GE(mi, 0.0);
  EXPECT_LT(mi, 0.01);
}

TEST(HistogramMi, SymmetricInArguments) {
  const std::size_t m = 500;
  Xoshiro256 rng(6);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  EXPECT_DOUBLE_EQ(histogram_mi_from_ranks(rx, ry, 8),
                   histogram_mi_from_ranks(ry, rx, 8));
}

TEST(HistogramMi, MillerMadowReducesBias) {
  // For independent data, plug-in MI is biased up by ~(b-1)^2/(2m); the
  // corrected estimate must be smaller.
  const std::size_t m = 500;
  Xoshiro256 rng(8);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  const double plugin = histogram_mi_from_ranks(rx, ry, 10);
  const double corrected = histogram_mi_miller_madow(rx, ry, 10);
  EXPECT_LT(corrected, plugin);
}

TEST(HistogramMi, ValueBinningMatchesRankBinningOnGrid) {
  const std::size_t m = 256;
  Xoshiro256 rng(10);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  std::vector<float> x01(m), y01(m);
  for (std::size_t j = 0; j < m; ++j) {
    x01[j] = rank_to_unit(static_cast<float>(rx[j]), m);
    y01[j] = rank_to_unit(static_cast<float>(ry[j]), m);
  }
  EXPECT_NEAR(histogram_mi(x01, y01, 8), histogram_mi_from_ranks(rx, ry, 8),
              1e-6);
}

TEST(HistogramMi, SingleBinIsZero) {
  const std::size_t m = 50;
  Xoshiro256 rng(2);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  EXPECT_NEAR(histogram_mi_from_ranks(rx, ry, 1), 0.0, 1e-12);
}

// ---- correlation baselines ------------------------------------------------------

TEST(Correlation, SpearmanInvariantUnderMonotoneTransform) {
  std::vector<float> x{1, 2, 3, 4, 5, 6};
  std::vector<float> y{1.2f, 2.1f, 2.9f, 4.5f, 5.1f, 6.7f};
  const double base = spearman_correlation(x, y);
  std::vector<float> y_exp(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_exp[i] = std::exp(y[i]);
  EXPECT_NEAR(spearman_correlation(x, y_exp), base, 1e-12);
  EXPECT_NEAR(base, 1.0, 1e-12);
}

TEST(Correlation, SpearmanHandlesTies) {
  std::vector<float> x{1, 2, 2, 3};
  std::vector<float> y{1, 2, 2, 3};
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, ScoreIsAbsoluteValue) {
  EXPECT_DOUBLE_EQ(correlation_score(-0.8), 0.8);
  EXPECT_DOUBLE_EQ(correlation_score(0.3), 0.3);
}

TEST(Correlation, PearsonMissesQuadratic) {
  Xoshiro256 rng(12);
  std::vector<float> x(2000), y(2000);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double u = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(u * u);
  }
  EXPECT_LT(std::fabs(pearson_correlation(x, y)), 0.1);
  EXPECT_LT(std::fabs(spearman_correlation(x, y)), 0.15);
}


TEST(BsplineEstimator, OrderOneIsExactlyHistogramMi) {
  // Spline order 1 degenerates to hard equal-frequency binning of ranks, so
  // the whole pipeline can run the classical histogram-MI baseline by
  // setting spline_order = 1.
  // Exact when bins divides m (otherwise the (r+0.5)/m centering moves a
  // few boundary ranks by one bin relative to the floor(r*b/m) convention).
  const std::size_t m = 640;
  Xoshiro256 rng(44);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  for (const int bins : {4, 8, 16}) {
    const BsplineMi estimator(bins, 1, m);
    JointHistogram scratch = estimator.make_scratch();
    EXPECT_NEAR(estimator.mi(rx, ry, scratch),
                histogram_mi_from_ranks(rx, ry, bins), 2e-4)
        << "bins=" << bins;
  }
  // Non-divisible m: still the same estimator up to boundary ranks.
  const std::size_t m2 = 601;
  const auto rx2 = random_permutation(m2, rng);
  const auto ry2 = random_permutation(m2, rng);
  const BsplineMi estimator(10, 1, m2);
  JointHistogram scratch = estimator.make_scratch();
  EXPECT_NEAR(estimator.mi(rx2, ry2, scratch),
              histogram_mi_from_ranks(rx2, ry2, 10), 5e-3);
}

TEST(BsplineEstimator, HigherOrderReducesIndependenceBias) {
  // Smoothing is the point of the estimator: at independence, higher order
  // means fewer effective degrees of freedom and smaller plug-in bias.
  const std::size_t m = 400;
  Xoshiro256 rng(45);
  double previous = 1e9;
  for (const int order : {1, 2, 3}) {
    double total = 0.0;
    const BsplineMi estimator(12, order, m);
    JointHistogram scratch = estimator.make_scratch();
    for (int trial = 0; trial < 20; ++trial) {
      const auto rx = random_permutation(m, rng);
      const auto ry = random_permutation(m, rng);
      total += estimator.mi(rx, ry, scratch);
    }
    EXPECT_LT(total, previous) << "order=" << order;
    previous = total;
  }
}

}  // namespace
}  // namespace tinge
