// Network-analysis module: hubs, clustering coefficients, power-law fit,
// summary — validated on hand-constructed graphs and generator output.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/analysis.h"
#include "synth/grn.h"

namespace tinge {
namespace {

GeneNetwork make_network(std::size_t n,
                         std::initializer_list<std::pair<int, int>> edges) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("n" + std::to_string(i));
  GeneNetwork network(std::move(names));
  for (const auto& [a, b] : edges)
    network.add_edge(static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(b), 1.0f);
  network.finalize();
  return network;
}

TEST(TopHubs, OrdersByDegree) {
  // star around node 0 plus one extra edge at node 1
  const GeneNetwork network =
      make_network(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}});
  const auto hubs = top_hubs(network, 3);
  ASSERT_EQ(hubs.size(), 3u);
  EXPECT_EQ(hubs[0].node, 0u);
  EXPECT_EQ(hubs[0].degree, 4u);
  EXPECT_EQ(hubs[0].name, "n0");
  EXPECT_EQ(hubs[1].node, 1u);
  EXPECT_EQ(hubs[1].degree, 2u);
}

TEST(TopHubs, CountClampedToNodes) {
  const GeneNetwork network = make_network(3, {{0, 1}});
  EXPECT_EQ(top_hubs(network, 10).size(), 3u);
}

TEST(Clustering, TriangleIsFullyClustered) {
  const GeneNetwork triangle = make_network(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(triangle), 1.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(triangle, 0), 1.0);
}

TEST(Clustering, StarHasZeroClustering) {
  const GeneNetwork star = make_network(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(star), 0.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(star, 0), 0.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(star, 1), 0.0);  // degree 1
}

TEST(Clustering, TriangleWithTailHandComputed) {
  // triangle 0-1-2 plus tail 2-3: triangles=1, triples: deg={2,2,3,1} ->
  // 1+1+3 = 5; C = 3*1/5.
  const GeneNetwork network = make_network(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(network), 0.6);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(network, 2), 1.0 / 3.0);
}

TEST(Clustering, EmptyAndEdgelessGraphs) {
  GeneNetwork empty({"a", "b"});
  empty.finalize();
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(empty), 0.0);
}

TEST(Powerlaw, NotEstimableOnTinyGraphs) {
  const GeneNetwork network = make_network(3, {{0, 1}});
  EXPECT_DOUBLE_EQ(powerlaw_exponent_mle(network), 0.0);
}

TEST(Powerlaw, ScaleFreeGrnLandsInBiologicalRange) {
  GrnParams params;
  params.n_genes = 3000;
  params.mean_regulators = 2.0;
  params.topology = GrnTopology::ScaleFree;
  params.seed = 9;
  const GeneNetwork network = generate_grn(params).to_undirected();
  const double gamma = powerlaw_exponent_mle(network, /*k_min=*/3);
  EXPECT_GT(gamma, 1.5);
  EXPECT_LT(gamma, 4.0);
}

TEST(Powerlaw, ErdosRenyiFitsWorseThanScaleFree) {
  GrnParams params;
  params.n_genes = 3000;
  params.mean_regulators = 2.0;
  params.seed = 9;
  // A true power law gives a k_min-stable exponent; the Poisson-like ER
  // tail decays super-polynomially, so its apparent gamma inflates rapidly
  // as k_min moves into the tail.
  params.topology = GrnTopology::ScaleFree;
  const GeneNetwork scale_free = generate_grn(params).to_undirected();
  const double drift_sf = powerlaw_exponent_mle(scale_free, 8) -
                          powerlaw_exponent_mle(scale_free, 3);
  params.topology = GrnTopology::ErdosRenyi;
  const GeneNetwork erdos = generate_grn(params).to_undirected();
  const double drift_er = powerlaw_exponent_mle(erdos, 8) -
                          powerlaw_exponent_mle(erdos, 3);
  EXPECT_GT(drift_er, drift_sf + 0.5);
}

TEST(Summary, FieldsAreConsistent) {
  const GeneNetwork network =
      make_network(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  const NetworkSummary summary = summarize_network(network);
  EXPECT_EQ(summary.nodes, 6u);
  EXPECT_EQ(summary.edges, 4u);
  EXPECT_EQ(summary.isolated_nodes, 1u);  // node 5
  EXPECT_EQ(summary.components, 3u);      // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(summary.max_degree, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_degree, 8.0 / 6.0);
  EXPECT_GT(summary.clustering, 0.0);
  const std::string text = to_string(summary);
  EXPECT_NE(text.find("nodes:"), std::string::npos);
  EXPECT_NE(text.find("clustering"), std::string::npos);
}

TEST(Summary, RequiresFinalizedNetwork) {
  GeneNetwork network({"a", "b"});
  network.add_edge(0, 1, 1.0f);
  EXPECT_THROW(summarize_network(network), ContractViolation);
  EXPECT_THROW(top_hubs(network, 1), ContractViolation);
}

}  // namespace
}  // namespace tinge
