// Property-style roundtrips: random matrices of many shapes and missing
// fractions must survive TSV and binary serialization exactly (binary) or
// to printed precision (TSV), and networks must survive edge-list I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <tuple>
#include <unistd.h>

#include "data/binary_io.h"
#include "data/tsv_io.h"
#include "graph/graph_io.h"
#include "stats/rng.h"

namespace tinge {
namespace {

ExpressionMatrix random_matrix(std::size_t genes, std::size_t samples,
                               double missing, std::uint64_t seed) {
  ExpressionMatrix matrix(genes, samples);
  Xoshiro256 rng(seed);
  for (std::size_t g = 0; g < genes; ++g) {
    for (std::size_t s = 0; s < samples; ++s) {
      if (rng.uniform() < missing) {
        matrix.at(g, s) = std::nanf("");
      } else {
        // Mix of magnitudes, signs, and exact values.
        const double magnitude = std::pow(10.0, rng.uniform() * 8.0 - 4.0);
        matrix.at(g, s) = static_cast<float>((rng.uniform() - 0.5) * magnitude);
      }
    }
  }
  return matrix;
}

using Shape = std::tuple<int, int, double>;

class MatrixRoundtrip : public ::testing::TestWithParam<Shape> {};

TEST_P(MatrixRoundtrip, BinaryIsExact) {
  const auto [genes, samples, missing] = GetParam();
  const ExpressionMatrix matrix = random_matrix(
      static_cast<std::size_t>(genes), static_cast<std::size_t>(samples),
      missing, 42 + static_cast<std::uint64_t>(genes));
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tingex_rt_" + std::to_string(::getpid()) + "_" +
        std::to_string(genes) + ".tngx"))
          .string();
  write_expression_binary_file(matrix, path);
  const ExpressionMatrix back = read_expression_binary_file(path);
  std::filesystem::remove(path);

  ASSERT_EQ(back.n_genes(), matrix.n_genes());
  ASSERT_EQ(back.n_samples(), matrix.n_samples());
  EXPECT_EQ(back.gene_names(), matrix.gene_names());
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    for (std::size_t s = 0; s < matrix.n_samples(); ++s) {
      const float a = matrix.at(g, s);
      const float b = back.at(g, s);
      if (std::isnan(a)) {
        EXPECT_TRUE(std::isnan(b));
      } else {
        EXPECT_EQ(a, b) << g << "," << s;  // bit-exact
      }
    }
  }
}

TEST_P(MatrixRoundtrip, TsvIsAccurateToPrintedPrecision) {
  const auto [genes, samples, missing] = GetParam();
  const ExpressionMatrix matrix = random_matrix(
      static_cast<std::size_t>(genes), static_cast<std::size_t>(samples),
      missing, 137 + static_cast<std::uint64_t>(samples));
  std::stringstream stream;
  write_expression_tsv(matrix, stream);
  const ExpressionMatrix back = read_expression_tsv(stream);
  ASSERT_EQ(back.n_genes(), matrix.n_genes());
  ASSERT_EQ(back.n_samples(), matrix.n_samples());
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    for (std::size_t s = 0; s < matrix.n_samples(); ++s) {
      const float a = matrix.at(g, s);
      const float b = back.at(g, s);
      if (std::isnan(a)) {
        EXPECT_TRUE(std::isnan(b));
      } else {
        // %.9g round-trips float exactly.
        EXPECT_EQ(b, a) << g << "," << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixRoundtrip,
    ::testing::Values(Shape{1, 1, 0.0}, Shape{1, 50, 0.3}, Shape{50, 1, 0.0},
                      Shape{7, 13, 0.1}, Shape{33, 64, 0.0},
                      Shape{64, 33, 0.5}, Shape{10, 100, 0.9}),
    [](const auto& param_info) {
      return "g" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_m" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 100));
    });

class NetworkRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(NetworkRoundtrip, EdgeListPreservesRandomNetworks) {
  const auto n = static_cast<std::size_t>(GetParam());
  Xoshiro256 rng(n);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i)
    names.push_back("gene_" + std::to_string(i));
  GeneNetwork network(std::move(names));
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j)
      if (rng.uniform() < 0.2)
        network.add_edge(i, j, rng.uniformf() + 0.001f);
  network.finalize();

  std::stringstream stream;
  write_edge_list(network, stream);
  const GeneNetwork back = read_edge_list(stream);
  ASSERT_EQ(back.n_nodes(), network.n_nodes());
  ASSERT_EQ(back.n_edges(), network.n_edges());
  for (const Edge& e : network.edges())
    EXPECT_EQ(back.edge_weight(e.u, e.v), e.weight);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkRoundtrip,
                         ::testing::Values(2, 3, 10, 40));

}  // namespace
}  // namespace tinge
