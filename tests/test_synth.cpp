// Synthetic-data substrate: GRN generator structure, expression simulator
// statistics, and that simulated data actually carries the planted signal.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mi/correlation.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "synth/expression.h"
#include "synth/grn.h"

namespace tinge {
namespace {

TEST(Grn, EdgesAreTopologicallyOrderedAndDistinct) {
  GrnParams params;
  params.n_genes = 300;
  params.seed = 5;
  const Grn grn = generate_grn(params);
  EXPECT_EQ(grn.n_genes, 300u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const GrnEdge& e : grn.edges) {
    EXPECT_LT(e.regulator, e.target);
    EXPECT_LT(e.target, grn.n_genes);
    EXPECT_GT(e.strength, 0.0f);
    EXPECT_LE(e.strength, 1.0f);
    EXPECT_TRUE(e.sign == 1 || e.sign == -1);
    EXPECT_TRUE(seen.emplace(e.regulator, e.target).second)
        << "duplicate edge";
  }
}

TEST(Grn, EveryNonRootGeneHasARegulator) {
  GrnParams params;
  params.n_genes = 100;
  const Grn grn = generate_grn(params);
  std::vector<bool> regulated(grn.n_genes, false);
  for (const GrnEdge& e : grn.edges) regulated[e.target] = true;
  for (std::size_t g = 1; g < grn.n_genes; ++g)
    EXPECT_TRUE(regulated[g]) << "gene " << g << " unregulated";
}

TEST(Grn, MeanInDegreeTracksParameter) {
  GrnParams params;
  params.n_genes = 2000;
  params.mean_regulators = 3.0;
  const Grn grn = generate_grn(params);
  const double mean_in = static_cast<double>(grn.edges.size()) /
                         static_cast<double>(grn.n_genes - 1);
  EXPECT_NEAR(mean_in, 3.0, 0.5);
}

TEST(Grn, ScaleFreeProducesHubs) {
  GrnParams params;
  params.n_genes = 2000;
  params.seed = 7;
  params.topology = GrnTopology::ScaleFree;
  const Grn scale_free = generate_grn(params);
  params.topology = GrnTopology::ErdosRenyi;
  const Grn random_graph = generate_grn(params);

  const auto max_out = [](const Grn& grn) {
    const auto degrees = grn.out_degrees();
    return *std::max_element(degrees.begin(), degrees.end());
  };
  // Preferential attachment must concentrate far more out-degree on the
  // biggest hub than uniform wiring does.
  EXPECT_GT(max_out(scale_free), 2 * max_out(random_graph));
}

TEST(Grn, DeterministicForSeed) {
  GrnParams params;
  params.n_genes = 50;
  params.seed = 123;
  const Grn a = generate_grn(params);
  const Grn b = generate_grn(params);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].regulator, b.edges[i].regulator);
    EXPECT_EQ(a.edges[i].target, b.edges[i].target);
    EXPECT_EQ(a.edges[i].strength, b.edges[i].strength);
  }
}

TEST(Grn, RepressionFractionRespected) {
  GrnParams params;
  params.n_genes = 3000;
  params.repression_fraction = 0.4;
  const Grn grn = generate_grn(params);
  std::size_t repressing = 0;
  for (const GrnEdge& e : grn.edges)
    if (e.sign < 0) ++repressing;
  EXPECT_NEAR(static_cast<double>(repressing) /
                  static_cast<double>(grn.edges.size()),
              0.4, 0.05);
}

TEST(Grn, UndirectedTruthMatchesEdgeSet) {
  GrnParams params;
  params.n_genes = 40;
  const Grn grn = generate_grn(params);
  const GeneNetwork truth = grn.to_undirected();
  EXPECT_EQ(truth.n_nodes(), grn.n_genes);
  EXPECT_LE(truth.n_edges(), grn.edges.size());  // duplicates merge
  for (const GrnEdge& e : grn.edges)
    EXPECT_TRUE(truth.has_edge(e.regulator, e.target));
}

TEST(Grn, RejectsDegenerateParams) {
  GrnParams params;
  params.n_genes = 1;
  EXPECT_THROW(generate_grn(params), ContractViolation);
  params = GrnParams{};
  params.min_strength = 0.0;
  EXPECT_THROW(generate_grn(params), ContractViolation);
}

// ---- expression simulator ----------------------------------------------------------

TEST(ExpressionSim, ShapeAndNames) {
  GrnParams grn_params;
  grn_params.n_genes = 30;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 40;
  const ExpressionMatrix matrix = simulate_expression(grn, expr);
  EXPECT_EQ(matrix.n_genes(), 30u);
  EXPECT_EQ(matrix.n_samples(), 40u);
  EXPECT_EQ(matrix.gene_name(3), "g3");
  EXPECT_EQ(matrix.count_missing(), 0u);
}

TEST(ExpressionSim, MissingFractionApplies) {
  GrnParams grn_params;
  grn_params.n_genes = 50;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 100;
  expr.missing_fraction = 0.1;
  const ExpressionMatrix matrix = simulate_expression(grn, expr);
  const double fraction =
      static_cast<double>(matrix.count_missing()) /
      static_cast<double>(matrix.n_genes() * matrix.n_samples());
  EXPECT_NEAR(fraction, 0.1, 0.02);
}

TEST(ExpressionSim, RootGenesAreStandardNormalish) {
  GrnParams grn_params;
  grn_params.n_genes = 10;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 4000;
  expr.measurement_noise_sd = 0.0;
  const ExpressionMatrix matrix = simulate_expression(grn, expr);
  const Summary s = summarize(matrix.row(0));  // gene 0 is always a root
  EXPECT_NEAR(s.mean, 0.0, 0.06);
  EXPECT_NEAR(s.variance, 1.0, 0.1);
}

TEST(ExpressionSim, RegulatedPairsCorrelateMoreThanRandomPairs) {
  GrnParams grn_params;
  grn_params.n_genes = 60;
  grn_params.seed = 3;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 800;
  // Enough intrinsic noise that correlation decays along indirect paths;
  // with tiny noise a strongly coupled GRN correlates globally.
  expr.noise_sd = 0.8;
  expr.seed = 4;
  const ExpressionMatrix matrix = simulate_expression(grn, expr);

  double regulated = 0.0;
  for (const GrnEdge& e : grn.edges)
    regulated += std::fabs(
        spearman_correlation(matrix.row(e.regulator), matrix.row(e.target)));
  regulated /= static_cast<double>(grn.edges.size());

  // Compare against non-edges between roots of disjoint lineages: just use
  // shuffled pairs and accept the (rare) indirect-path correlations.
  Xoshiro256 rng(55);
  double random_pairs = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto i = static_cast<std::size_t>(rng.below(60));
    auto j = static_cast<std::size_t>(rng.below(60));
    if (j == i) j = (j + 1) % 60;
    random_pairs +=
        std::fabs(spearman_correlation(matrix.row(i), matrix.row(j)));
  }
  random_pairs /= trials;
  EXPECT_GT(regulated, 1.5 * random_pairs);
}

TEST(ExpressionSim, DeterministicForSeed) {
  GrnParams grn_params;
  grn_params.n_genes = 20;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 30;
  const ExpressionMatrix a = simulate_expression(grn, expr);
  const ExpressionMatrix b = simulate_expression(grn, expr);
  for (std::size_t g = 0; g < 20; ++g)
    for (std::size_t s = 0; s < 30; ++s)
      EXPECT_EQ(a.at(g, s), b.at(g, s));
}

TEST(ExpressionSim, LinearModeDiffersFromNonlinear) {
  GrnParams grn_params;
  grn_params.n_genes = 20;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 30;
  expr.nonlinear = false;
  const ExpressionMatrix linear = simulate_expression(grn, expr);
  expr.nonlinear = true;
  const ExpressionMatrix tanh_resp = simulate_expression(grn, expr);
  bool any_diff = false;
  for (std::size_t s = 0; s < 30 && !any_diff; ++s)
    if (linear.at(19, s) != tanh_resp.at(19, s)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(ExpressionSim, RejectsBadParams) {
  GrnParams grn_params;
  grn_params.n_genes = 5;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 1;
  EXPECT_THROW(simulate_expression(grn, expr), ContractViolation);
  expr = ExpressionParams{};
  expr.missing_fraction = 1.0;
  EXPECT_THROW(simulate_expression(grn, expr), ContractViolation);
}

TEST(SyntheticDataset, BundlesConsistentPieces) {
  GrnParams grn_params;
  grn_params.n_genes = 25;
  ExpressionParams expr;
  expr.n_samples = 50;
  const SyntheticDataset dataset = make_synthetic_dataset(grn_params, expr);
  EXPECT_EQ(dataset.expression.n_genes(), dataset.grn.n_genes);
  EXPECT_EQ(dataset.truth.n_nodes(), dataset.grn.n_genes);
  EXPECT_EQ(dataset.expression.gene_names(), dataset.truth.node_names());
}


TEST(ExpressionSim, NonMonotoneEdgesCarryMiButNoCorrelation) {
  // One regulator -> one target with a non-monotone response: Spearman must
  // collapse while the dependency stays visible to MI-style statistics.
  Grn grn;
  grn.n_genes = 2;
  grn.edges.push_back(GrnEdge{0, 1, 1.0f, +1});
  ExpressionParams expr;
  expr.n_samples = 2000;
  expr.noise_sd = 0.15;
  expr.measurement_noise_sd = 0.0;
  expr.nonmonotone_fraction = 1.0;
  const ExpressionMatrix matrix = simulate_expression(grn, expr);
  const double rho =
      std::fabs(spearman_correlation(matrix.row(0), matrix.row(1)));
  EXPECT_LT(rho, 0.12);
  // |regulator| still predicts the target strongly.
  std::vector<float> abs_reg(expr.n_samples);
  for (std::size_t s = 0; s < expr.n_samples; ++s)
    abs_reg[s] = std::fabs(matrix.at(0, s));
  const double rho_abs = std::fabs(spearman_correlation(
      std::span<const float>(abs_reg), matrix.row(1)));
  EXPECT_GT(rho_abs, 0.7);
}

TEST(ExpressionSim, NonMonotoneFractionZeroMatchesOldBehaviour) {
  GrnParams grn_params;
  grn_params.n_genes = 15;
  const Grn grn = generate_grn(grn_params);
  ExpressionParams expr;
  expr.n_samples = 25;
  expr.nonmonotone_fraction = 0.0;
  const ExpressionMatrix a = simulate_expression(grn, expr);
  const ExpressionMatrix b = simulate_expression(grn, expr);
  for (std::size_t g = 0; g < 15; ++g)
    for (std::size_t s = 0; s < 25; ++s) EXPECT_EQ(a.at(g, s), b.at(g, s));
}

TEST(ExpressionSim, RejectsBadNonMonotoneFraction) {
  Grn grn;
  grn.n_genes = 2;
  grn.edges.push_back(GrnEdge{0, 1, 1.0f, +1});
  ExpressionParams expr;
  expr.nonmonotone_fraction = 1.5;
  EXPECT_THROW(simulate_expression(grn, expr), ContractViolation);
}

}  // namespace
}  // namespace tinge
