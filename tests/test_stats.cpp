// Statistics substrate: RNG determinism and distributional sanity,
// descriptive statistics against hand-computed values, quantiles, and the
// Gaussian-MI closed forms the estimator tests rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.h"
#include "stats/gaussian.h"
#include "stats/quantile.h"
#include "stats/rng.h"

namespace tinge {
namespace {

// ---- RNG ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformFloatInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniformf();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
  }
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(3);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, BelowOneAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndSd) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, LongJumpDecorrelatesStreams) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, RandomPermutationIsPermutation) {
  Xoshiro256 rng(5);
  const auto perm = random_permutation(257, rng);
  std::vector<bool> seen(257, false);
  for (const auto v : perm) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]) << "duplicate " << v;
    seen[v] = true;
  }
}

TEST(Rng, ShuffleIsUniformish) {
  // Position of element 0 after shuffling [0,1,2,3] should be ~uniform.
  std::array<int, 4> counts{};
  for (int trial = 0; trial < 4000; ++trial) {
    Xoshiro256 rng(static_cast<std::uint64_t>(trial) + 1000);
    std::vector<int> v{0, 1, 2, 3};
    shuffle(v, rng);
    for (std::size_t pos = 0; pos < 4; ++pos)
      if (v[pos] == 0) ++counts[pos];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Xoshiro256 rng(8);
  const auto sample = sample_without_replacement(100, 30, rng);
  ASSERT_EQ(sample.size(), 30u);
  std::vector<bool> seen(100, false);
  for (const auto v : sample) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, SampleAllElements) {
  Xoshiro256 rng(8);
  const auto sample = sample_without_replacement(10, 10, rng);
  auto sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

// ---- descriptive ----------------------------------------------------------------

TEST(Descriptive, SummaryHandComputed) {
  const float data[] = {1.0f, 2.0f, 3.0f, 4.0f};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.missing, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Descriptive, NansAreCountedAsMissing) {
  const float data[] = {1.0f, std::nanf(""), 3.0f};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.missing, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Descriptive, AllMissing) {
  const float data[] = {std::nanf(""), std::nanf("")};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.min));
}

TEST(Descriptive, PearsonPerfectAndAnti) {
  const float x[] = {1, 2, 3, 4, 5};
  const float y[] = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const float z[] = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Descriptive, PearsonDegenerateIsZero) {
  const float x[] = {1, 1, 1, 1};
  const float y[] = {1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
  const float one[] = {1.0f};
  const float two[] = {2.0f};
  EXPECT_EQ(pearson(std::span<const float>(one), std::span<const float>(two)), 0.0);
}

TEST(Descriptive, PearsonSkipsNanPairs) {
  const float x[] = {1, 2, std::nanf(""), 4};
  const float y[] = {2, 4, 100.0f, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Descriptive, CovarianceHandComputed) {
  const float x[] = {1, 2, 3};
  const float y[] = {2, 4, 6};
  EXPECT_NEAR(covariance(x, y), 2.0, 1e-12);  // var(x)=1, cov=2
}

// ---- quantiles -------------------------------------------------------------------

TEST(Quantile, MatchesType7Interpolation) {
  const double data[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 1.75);
}

TEST(Quantile, SingleElement) {
  const double data[] = {7.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.3), 7.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const double data[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 2.5);
}

TEST(Quantile, UpperTail) {
  const double data[] = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(upper_tail(data, 4.0), 0.4);
  EXPECT_DOUBLE_EQ(upper_tail(data, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(upper_tail(data, 0.0), 1.0);
}

TEST(EmpiricalDistribution, QuantileAndPValue) {
  std::vector<double> sample(99);
  std::iota(sample.begin(), sample.end(), 1.0);  // 1..99
  const EmpiricalDistribution dist(std::move(sample));
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), 99.0);
  EXPECT_NEAR(dist.quantile(0.5), 50.0, 1e-9);
  // p_value uses the (r+1)/(q+1) estimator.
  EXPECT_NEAR(dist.p_value(99.5), 1.0 / 100.0, 1e-12);
  EXPECT_NEAR(dist.p_value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dist.p_value(50.0), (50.0 + 1.0) / 100.0, 1e-12);
}

TEST(EmpiricalDistribution, PValueMonotoneDecreasing) {
  std::vector<double> sample;
  Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) sample.push_back(rng.uniform());
  const EmpiricalDistribution dist(std::move(sample));
  double prev = 1.1;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double p = dist.p_value(x);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

// ---- Gaussian MI closed forms ------------------------------------------------------

TEST(GaussianMi, KnownValues) {
  EXPECT_DOUBLE_EQ(gaussian_mi_nats(0.0), 0.0);
  EXPECT_NEAR(gaussian_mi_nats(0.5), -0.5 * std::log(0.75), 1e-15);
  EXPECT_NEAR(gaussian_mi_bits(0.5), gaussian_mi_nats(0.5) / std::log(2.0), 1e-15);
}

TEST(GaussianMi, InverseRoundtrip) {
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(rho_for_gaussian_mi(gaussian_mi_nats(rho)), rho, 1e-12);
  }
}

TEST(GaussianMi, RejectsDegenerateRho) {
  EXPECT_THROW(gaussian_mi_nats(1.0), ContractViolation);
  EXPECT_THROW(gaussian_mi_nats(-1.0), ContractViolation);
}

}  // namespace
}  // namespace tinge
