// KSG k-NN MI estimator and the digamma special function behind it.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "mi/ksg_mi.h"
#include "stats/gaussian.h"
#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {
namespace {

// ---- digamma -----------------------------------------------------------------

TEST(Digamma, KnownValues) {
  // psi(1) = -gamma (Euler–Mascheroni)
  EXPECT_NEAR(digamma(1.0), -std::numbers::egamma, 1e-10);
  // psi(0.5) = -gamma - 2 ln 2
  EXPECT_NEAR(digamma(0.5), -std::numbers::egamma - 2.0 * std::log(2.0), 1e-10);
  // psi(2) = 1 - gamma
  EXPECT_NEAR(digamma(2.0), 1.0 - std::numbers::egamma, 1e-10);
}

TEST(Digamma, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x
  for (const double x : {0.3, 1.7, 4.2, 11.0, 123.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(Digamma, IntegerHarmonicIdentity) {
  // psi(n) = -gamma + H_{n-1}
  double harmonic = 0.0;
  for (int n = 1; n <= 20; ++n) {
    EXPECT_NEAR(digamma(n), -std::numbers::egamma + harmonic, 1e-10)
        << "n=" << n;
    harmonic += 1.0 / n;
  }
}

TEST(Digamma, RejectsNonPositive) {
  EXPECT_THROW(digamma(0.0), ContractViolation);
  EXPECT_THROW(digamma(-1.0), ContractViolation);
}

// ---- KSG ----------------------------------------------------------------------

void gaussian_pair(std::size_t m, double rho, std::uint64_t seed,
                   std::vector<float>& x, std::vector<float>& y) {
  Xoshiro256 rng(seed);
  x.resize(m);
  y.resize(m);
  const double noise = std::sqrt(1.0 - rho * rho);
  for (std::size_t j = 0; j < m; ++j) {
    const double u = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(rho * u + noise * rng.normal());
  }
}

TEST(KsgMi, NearlyUnbiasedOnGaussians) {
  // KSG's selling point: small bias even at modest m.
  std::vector<float> x, y;
  for (const double rho : {0.3, 0.6, 0.9}) {
    gaussian_pair(1500, rho, 21, x, y);
    const double truth = gaussian_mi_nats(rho);
    EXPECT_NEAR(ksg_mi(x, y, 4), truth, 0.10 * truth + 0.04) << "rho=" << rho;
  }
}

TEST(KsgMi, IndependenceNearZero) {
  std::vector<float> x, y;
  gaussian_pair(1500, 0.0, 5, x, y);
  EXPECT_LT(ksg_mi(x, y, 4), 0.03);
}

TEST(KsgMi, DetectsNonMonotoneDependence) {
  Xoshiro256 rng(8);
  std::vector<float> x(1200), y(1200);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double u = rng.normal();
    x[j] = static_cast<float>(u);
    y[j] = static_cast<float>(u * u + 0.05 * rng.normal());
  }
  EXPECT_GT(ksg_mi(x, y, 4), 0.5);
}

TEST(KsgMi, SymmetricInArguments) {
  std::vector<float> x, y;
  gaussian_pair(400, 0.6, 9, x, y);
  EXPECT_NEAR(ksg_mi(x, y, 4), ksg_mi(y, x, 4), 1e-9);
}

TEST(KsgMi, StableAcrossReasonableK) {
  std::vector<float> x, y;
  gaussian_pair(1200, 0.6, 10, x, y);
  const double mi3 = ksg_mi(x, y, 3);
  const double mi8 = ksg_mi(x, y, 8);
  EXPECT_NEAR(mi3, mi8, 0.05);
}

TEST(KsgMi, HandlesHeavyTies) {
  // Quantized data: exact ties everywhere; jitter must keep the estimate
  // finite and roughly correct.
  Xoshiro256 rng(12);
  std::vector<float> x(800), y(800);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double u = rng.normal();
    x[j] = std::round(static_cast<float>(u) * 4.0f) / 4.0f;
    y[j] = std::round(static_cast<float>(u + 0.3 * rng.normal()) * 4.0f) / 4.0f;
  }
  const double mi = ksg_mi(x, y, 4);
  EXPECT_GT(mi, 0.5);
  EXPECT_TRUE(std::isfinite(mi));
}

TEST(KsgMi, ContractChecks) {
  std::vector<float> x(10, 0.0f), y(9, 0.0f);
  EXPECT_THROW(ksg_mi(x, y, 4), ContractViolation);
  std::vector<float> small(4, 0.0f);
  EXPECT_THROW(ksg_mi(small, small, 4), ContractViolation);
  std::vector<float> ok(30, 0.0f);
  EXPECT_THROW(ksg_mi(ok, ok, 0), ContractViolation);
}

TEST(KsgMi, NonNegativeByConstruction) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> x(100), y(100);
    for (std::size_t j = 0; j < 100; ++j) {
      x[j] = static_cast<float>(rng.normal());
      y[j] = static_cast<float>(rng.normal());
    }
    EXPECT_GE(ksg_mi(x, y, 4), 0.0);
  }
}

}  // namespace
}  // namespace tinge
