// B-spline basis correctness: partition of unity, locality, agreement with
// the plain Cox–de Boor recursion, boundary behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mi/bspline.h"

namespace tinge {
namespace {

TEST(BsplineBasis, RejectsBadConfigurations) {
  EXPECT_THROW(BsplineBasis(2, 3), ContractViolation);   // bins < order
  EXPECT_THROW(BsplineBasis(10, 0), ContractViolation);  // order < 1
  EXPECT_THROW(BsplineBasis(10, 9), ContractViolation);  // order > kMaxOrder
}

TEST(BsplineBasis, Order1IsHardBinning) {
  const BsplineBasis basis(4, 1);
  float w[BsplineBasis::kMaxOrder];
  EXPECT_EQ(basis.evaluate(0.0f, w), 0);
  EXPECT_FLOAT_EQ(w[0], 1.0f);
  EXPECT_EQ(basis.evaluate(0.30f, w), 1);
  EXPECT_FLOAT_EQ(w[0], 1.0f);
  EXPECT_EQ(basis.evaluate(0.99f, w), 3);
  EXPECT_EQ(basis.evaluate(1.0f, w), 3);  // right endpoint closed
}

TEST(BsplineBasis, EvaluateRejectsOutOfDomain) {
  const BsplineBasis basis(10, 3);
  float w[BsplineBasis::kMaxOrder];
  EXPECT_THROW(basis.evaluate(-0.01f, w), ContractViolation);
  EXPECT_THROW(basis.evaluate(1.01f, w), ContractViolation);
}

TEST(BsplineBasis, FirstIndexStaysInRange) {
  const BsplineBasis basis(10, 3);
  float w[BsplineBasis::kMaxOrder];
  for (int i = 0; i <= 1000; ++i) {
    const float z = static_cast<float>(i) / 1000.0f;
    const int first = basis.evaluate(z, w);
    EXPECT_GE(first, 0) << "z=" << z;
    EXPECT_LE(first + basis.order(), basis.bins()) << "z=" << z;
  }
}

TEST(BsplineBasis, EndpointsConcentrateMassOnOuterBins) {
  const BsplineBasis basis(10, 3);
  float w[BsplineBasis::kMaxOrder];
  int first = basis.evaluate(0.0f, w);
  EXPECT_EQ(first, 0);
  EXPECT_NEAR(w[0], 1.0f, 1e-6f);  // clamped knots: B_0(0) = 1
  first = basis.evaluate(1.0f, w);
  EXPECT_EQ(first + basis.order(), basis.bins());
  EXPECT_NEAR(w[basis.order() - 1], 1.0f, 1e-6f);
}

// ---- property sweeps over (bins, order) -----------------------------------

class BsplineProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BsplineProperty, PartitionOfUnity) {
  const auto [bins, order] = GetParam();
  const BsplineBasis basis(bins, order);
  float w[BsplineBasis::kMaxOrder];
  for (int i = 0; i <= 500; ++i) {
    const float z = static_cast<float>(i) / 500.0f;
    basis.evaluate(z, w);
    float sum = 0.0f;
    for (int c = 0; c < order; ++c) {
      EXPECT_GE(w[c], -1e-6f) << "negative weight at z=" << z;
      sum += w[c];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "z=" << z;
  }
}

TEST_P(BsplineProperty, MatchesCoxDeBoorReference) {
  const auto [bins, order] = GetParam();
  const BsplineBasis basis(bins, order);
  float w[BsplineBasis::kMaxOrder];
  for (int i = 0; i <= 200; ++i) {
    const double z = static_cast<double>(i) / 200.0;
    const auto all = basis.evaluate_all(z);
    const int first = basis.evaluate(static_cast<float>(z), w);
    for (int bin = 0; bin < bins; ++bin) {
      const double expected = all[static_cast<std::size_t>(bin)];
      const double actual =
          (bin >= first && bin < first + order)
              ? static_cast<double>(w[bin - first])
              : 0.0;
      EXPECT_NEAR(actual, expected, 1e-6)
          << "bin " << bin << " at z=" << z << " (b=" << bins
          << ", k=" << order << ")";
    }
  }
}

TEST_P(BsplineProperty, ReferencePartitionOfUnity) {
  const auto [bins, order] = GetParam();
  const BsplineBasis basis(bins, order);
  for (int i = 0; i <= 100; ++i) {
    const double z = static_cast<double>(i) / 100.0;
    const auto all = basis.evaluate_all(z);
    double sum = 0.0;
    for (const double v : all) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "z=" << z;
  }
}

TEST_P(BsplineProperty, ContinuityAcrossKnots) {
  const auto [bins, order] = GetParam();
  if (order < 2) GTEST_SKIP() << "order-1 splines are discontinuous by design";
  const BsplineBasis basis(bins, order);
  float w_left[BsplineBasis::kMaxOrder];
  float w_right[BsplineBasis::kMaxOrder];
  // Check value continuity at each interior knot by comparing both sides.
  const double extent = basis.domain_extent();
  for (int knot = 1; knot < bins - order + 1; ++knot) {
    const float z = static_cast<float>(knot / extent);
    const float eps = 1e-5f;
    const int f_left = basis.evaluate(z - eps, w_left);
    const int f_right = basis.evaluate(z + eps, w_right);
    // Compare expanded vectors.
    for (int bin = 0; bin < bins; ++bin) {
      const float left = (bin >= f_left && bin < f_left + order)
                             ? w_left[bin - f_left]
                             : 0.0f;
      const float right = (bin >= f_right && bin < f_right + order)
                              ? w_right[bin - f_right]
                              : 0.0f;
      EXPECT_NEAR(left, right, 1e-3f)
          << "discontinuity at knot " << knot << " bin " << bin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BinsOrders, BsplineProperty,
    ::testing::Values(std::make_tuple(3, 1), std::make_tuple(4, 2),
                      std::make_tuple(10, 3), std::make_tuple(10, 4),
                      std::make_tuple(16, 3), std::make_tuple(27, 4),
                      std::make_tuple(8, 5), std::make_tuple(12, 6),
                      std::make_tuple(16, 8)),
    [](const auto& param_info) {
      return "b" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param));
    });


TEST(SuggestBins, GrowsSlowlyAndStaysBounded) {
  int previous = 0;
  for (const std::size_t m : {10u, 100u, 500u, 3137u, 100000u}) {
    const int bins = suggest_bins(m);
    EXPECT_GE(bins, 4);   // order + 1 with default order 3
    EXPECT_LE(bins, 30);
    EXPECT_GE(bins, previous) << "must be nondecreasing in m";
    previous = bins;
  }
  EXPECT_EQ(suggest_bins(3137), 15);  // ~cbrt(3137)
}

TEST(SuggestBins, RespectsOrderFloor) {
  EXPECT_GE(suggest_bins(10, 6), 7);
  EXPECT_THROW(suggest_bins(1), ContractViolation);
  EXPECT_THROW(suggest_bins(100, 0), ContractViolation);
}

}  // namespace
}  // namespace tinge
