// Heterogeneous executor lanes (core/sweep.h LaneLedger + MiEngine
// --hetero, DESIGN.md §6i):
//   * the LaneLedger in isolation — LPT grant order, fraction-proportional
//     seed batches, skip filtering, end-game stealing, and ~300 seeded
//     random interleavings asserting the conservation contract (every tile
//     claimed exactly once, nothing lost, always drains to done);
//   * bit-identity — lane runs must match the flat scheduler byte for byte
//     across kernel variants, estimators, dense mode and checkpoint resume
//     in either direction (crash flat / resume laned and vice versa);
//   * config validation — the scheduler-precedence rejections and the
//     explicit lane-spec parser;
//   * the partition report — non-degenerate per-lane stats with measured
//     fractions derived from live per-tile timings.
//
// Randomized cases derive from one seed (override with TINGEX_HETERO_SEED);
// failures print the case parameters so a red run replays exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/mi_engine.h"
#include "core/sweep.h"
#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {
namespace {

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("TINGEX_HETERO_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 20260808ull;
}

// ---- LaneLedger in isolation ----------------------------------------------

TEST(LaneLedger, SingleLaneDrainsEveryTileInLptOrder) {
  const SweepPlan plan = SweepPlan::triangular(0, 30, 8);  // 10 tiles
  LaneLedger ledger(plan, 1);
  EXPECT_EQ(ledger.tiles_total(), plan.count());

  std::vector<std::size_t> claimed;
  for (std::size_t t = ledger.next(0); t != LaneLedger::npos;
       t = ledger.next(0)) {
    claimed.push_back(t);
    ledger.complete(0, t);
  }
  ASSERT_EQ(claimed.size(), plan.count());
  // LPT: pair counts never increase along the claim order.
  for (std::size_t i = 1; i < claimed.size(); ++i)
    EXPECT_GE(plan.tile(claimed[i - 1]).pair_count(),
              plan.tile(claimed[i]).pair_count());
  EXPECT_TRUE(ledger.drained());
  EXPECT_TRUE(ledger.done());
  EXPECT_EQ(ledger.tiles_claimed(), plan.count());
  EXPECT_EQ(ledger.tiles_completed(), plan.count());
  EXPECT_EQ(ledger.outstanding(), 0u);
  EXPECT_EQ(ledger.lane_tiles(0), plan.count());
}

TEST(LaneLedger, SeedBatchesFollowThePredictedFractions) {
  const SweepPlan plan = SweepPlan::triangular(0, 80, 8);  // 55 tiles
  LaneLedger ledger(plan, 2, {0.9, 0.1});
  // Seed grants are issued upfront in the constructor: each lane holds half
  // its predicted share before any context claims a tile.
  const std::size_t fast = ledger.lane_pending(0);
  const std::size_t slow = ledger.lane_pending(1);
  // 0.9 * 55 / 2 = 24 vs 0.1 * 55 / 2 = 2.
  EXPECT_GT(fast, 4 * slow);
  EXPECT_GE(slow, 1u);
  EXPECT_EQ(ledger.tiles_granted(), fast + slow);
  EXPECT_EQ(ledger.leases_granted(), 2u);
}

TEST(LaneLedger, SkippedTilesAreNeverGranted) {
  const SweepPlan plan = SweepPlan::triangular(0, 30, 8);
  std::vector<char> skip(plan.count(), 0);
  skip[0] = 1;
  skip[4] = 1;
  LaneLedger ledger(plan, 2, {}, &skip);
  EXPECT_EQ(ledger.tiles_total(), plan.count() - 2);
  std::set<std::size_t> claimed;
  bool drained = false;
  while (!drained) {
    drained = true;
    for (int lane = 0; lane < 2; ++lane) {
      const std::size_t t = ledger.next(lane);
      if (t == LaneLedger::npos) continue;
      drained = false;
      EXPECT_TRUE(claimed.insert(t).second) << "tile " << t << " twice";
      ledger.complete(lane, t);
    }
  }
  EXPECT_TRUE(ledger.done());
  EXPECT_EQ(claimed.size(), plan.count() - 2);
  EXPECT_FALSE(claimed.count(0));
  EXPECT_FALSE(claimed.count(4));
}

TEST(LaneLedger, FastLaneStealsFromTheSlowLanesGrant) {
  const SweepPlan plan = SweepPlan::triangular(0, 80, 8);  // 55 tiles
  // Lane 1 is predicted to own nearly everything, so its upfront seed grant
  // is large; lane 0 drains the ready queue and must then steal from lane
  // 1's pending tiles to keep working. A steal never takes the victim's
  // front tile, so even a lane that hasn't woken yet keeps exactly one.
  LaneLedger ledger(plan, 2, {0.05, 0.95});
  std::size_t lane0 = 0;
  for (std::size_t t = ledger.next(0); t != LaneLedger::npos;
       t = ledger.next(0)) {
    ledger.complete(0, t);
    ++lane0;
  }
  EXPECT_GT(ledger.steals(), 0u);
  EXPECT_GT(lane0, 0u);
  // Lane 1 still holds its reserved front tile — the one guarantee that
  // keeps the measured partition non-degenerate regardless of scheduling.
  EXPECT_EQ(ledger.lane_pending(1), 1u);
  EXPECT_EQ(ledger.tiles_claimed(), lane0);
  EXPECT_EQ(ledger.tiles_claimed(), ledger.tiles_total() - 1);
  // The straggler drains once lane 1 finally runs.
  const std::size_t last = ledger.next(1);
  ASSERT_NE(last, LaneLedger::npos);
  ledger.complete(1, last);
  EXPECT_EQ(ledger.next(0), LaneLedger::npos);
  EXPECT_TRUE(ledger.done());
}

TEST(LaneLedger, PropertyRandomizedInterleavings) {
  std::mt19937_64 rng(soak_seed() ^ 0x1a9e5);
  for (int iteration = 0; iteration < 300; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(soak_seed()));
    const std::size_t n = 8 + rng() % 50;
    const std::size_t tile = 4 + rng() % 12;
    const SweepPlan plan = SweepPlan::triangular(0, n, tile);
    const std::size_t n_lanes = 1 + rng() % 4;

    std::vector<double> fractions;
    if (rng() % 2 == 0) {
      double total = 0.0;
      for (std::size_t l = 0; l < n_lanes; ++l) {
        fractions.push_back(1.0 + static_cast<double>(rng() % 10));
        total += fractions.back();
      }
      for (double& f : fractions) f /= total;
    }

    std::vector<char> skip(plan.count(), 0);
    std::size_t n_skipped = 0;
    if (rng() % 2 == 0) {
      for (std::size_t t = 0; t < plan.count(); ++t) {
        if (rng() % 4 == 0 && n_skipped + 1 < plan.count()) {
          skip[t] = 1;
          ++n_skipped;
        }
      }
    }

    LaneLedger ledger(plan, n_lanes, fractions, &skip);
    ASSERT_EQ(ledger.tiles_total(), plan.count() - n_skipped);

    // Random interleaving: each step picks a lane; it either claims a new
    // tile or completes one it holds. Every claim must be a fresh tile.
    std::set<std::size_t> seen;
    std::vector<std::vector<std::size_t>> held(n_lanes);
    std::size_t completed = 0;
    while (completed < ledger.tiles_total()) {
      const auto lane = static_cast<int>(rng() % n_lanes);
      const auto l = static_cast<std::size_t>(lane);
      if (!held[l].empty() && rng() % 2 == 0) {
        ledger.complete(lane, held[l].back());
        held[l].pop_back();
        ++completed;
        continue;
      }
      const std::size_t t = ledger.next(lane);
      if (t == LaneLedger::npos) {
        if (held[l].empty()) continue;
        ledger.complete(lane, held[l].back());
        held[l].pop_back();
        ++completed;
        continue;
      }
      ASSERT_LT(t, plan.count());
      ASSERT_FALSE(skip[t]) << "skipped tile " << t << " granted";
      ASSERT_TRUE(seen.insert(t).second) << "tile " << t << " claimed twice";
      held[l].push_back(t);
    }

    // Conservation: everything claimable was claimed exactly once and
    // completed; the per-lane tallies cover the whole plan.
    EXPECT_TRUE(ledger.drained());
    EXPECT_TRUE(ledger.done());
    EXPECT_EQ(seen.size(), ledger.tiles_total());
    EXPECT_EQ(ledger.tiles_claimed(), ledger.tiles_total());
    EXPECT_EQ(ledger.tiles_completed(), ledger.tiles_total());
    EXPECT_EQ(ledger.outstanding(), 0u);
    std::uint64_t lane_total = 0;
    for (std::size_t l = 0; l < n_lanes; ++l)
      lane_total += ledger.lane_tiles(static_cast<int>(l));
    EXPECT_EQ(lane_total, ledger.tiles_total());
  }
}

// ---- config validation ----------------------------------------------------

TEST(HeteroConfig, ParseLaneSpecs) {
  const auto lanes = parse_lane_specs("simd:6,scalar:2");
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_EQ(lanes[0].kernel, MiKernel::Simd);
  EXPECT_EQ(lanes[0].threads, 6);
  EXPECT_EQ(lanes[1].kernel, MiKernel::Scalar);
  EXPECT_EQ(lanes[1].threads, 2);

  EXPECT_THROW(parse_lane_specs(""), ContractViolation);
  EXPECT_THROW(parse_lane_specs("simd"), ContractViolation);
  EXPECT_THROW(parse_lane_specs("simd:"), ContractViolation);
  EXPECT_THROW(parse_lane_specs(":4"), ContractViolation);
  EXPECT_THROW(parse_lane_specs("warp:4"), ContractViolation);
  EXPECT_THROW(parse_lane_specs("simd:0"), ContractViolation);
  EXPECT_THROW(parse_lane_specs("simd:4,"), ContractViolation);
  EXPECT_THROW(parse_lane_specs("simd:4x"), ContractViolation);
}

TEST(HeteroConfig, SchedulerPrecedenceRejections) {
  TingeConfig config;
  config.numa = KnobMode::On;
  config.team_size = 2;
  EXPECT_THROW(config.validate(), ContractViolation);  // numa=on vs teams

  config = TingeConfig{};
  config.hetero = "auto";
  config.team_size = 2;
  EXPECT_THROW(config.validate(), ContractViolation);  // lanes vs teams

  config = TingeConfig{};
  config.hetero = "auto";
  config.numa = KnobMode::On;
  EXPECT_THROW(config.validate(), ContractViolation);  // lanes vs numa=on

  config = TingeConfig{};
  config.hetero = "auto";
  config.cluster_ranks = 2;
  EXPECT_THROW(config.validate(), ContractViolation);  // lanes vs cluster

  // numa=auto stays legal under both teams and lanes (it resolves off).
  config = TingeConfig{};
  config.hetero = "auto";
  config.numa = KnobMode::Auto;
  EXPECT_NO_THROW(config.validate());
  config = TingeConfig{};
  config.team_size = 2;
  config.numa = KnobMode::Auto;
  EXPECT_NO_THROW(config.validate());
}

TEST(HeteroConfig, ExplicitSpecMustSumToThreads) {
  TingeConfig config;
  config.hetero = "simd:2,scalar:2";
  config.threads = 0;  // explicit spec needs explicit --threads
  EXPECT_THROW(config.validate(), ContractViolation);
  config.threads = 3;  // 2 + 2 != 3
  EXPECT_THROW(config.validate(), ContractViolation);
  config.threads = 4;
  EXPECT_NO_THROW(config.validate());
}

// ---- bit-identity against the flat scheduler ------------------------------

class HeteroLanesTest : public ::testing::TestWithParam<MiKernel> {
 protected:
  static constexpr std::size_t kGenes = 40;
  static constexpr std::size_t kSamples = 80;
  static constexpr double kThreshold = 0.2;

  HeteroLanesTest() : estimator_(10, 3, kSamples) {
    matrix_ = ExpressionMatrix(kGenes, kSamples);
    Xoshiro256 rng(123);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix_.at(g, s) = static_cast<float>(
            g < 10 ? driver + 0.5 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix_);
    dir_ = std::filesystem::temp_directory_path() /
           ("tingex_hetero_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~HeteroLanesTest() override { std::filesystem::remove_all(dir_); }

  TingeConfig config(const std::string& hetero = "off") const {
    TingeConfig c;
    c.tile_size = 8;
    c.threads = 4;
    c.kernel = GetParam();
    c.hetero = hetero;
    c.progress_tile_interval = 1;
    return c;
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static void expect_identical(const GeneNetwork& a, const GeneNetwork& b) {
    ASSERT_EQ(a.n_edges(), b.n_edges());
    for (std::size_t i = 0; i < a.n_edges(); ++i)
      EXPECT_EQ(a.edges()[i], b.edges()[i]);
  }

  ExpressionMatrix matrix_;
  BsplineMi estimator_;
  RankedMatrix ranked_;
  std::filesystem::path dir_;
};

TEST_P(HeteroLanesTest, LaneRunsAreByteIdenticalToFlat) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(4);

  const GeneNetwork flat = engine.compute_network(kThreshold, config(), pool);
  ASSERT_GT(flat.n_edges(), 0u);

  // Auto lanes, an explicit 2-lane split and a 3-lane split must all agree.
  expect_identical(flat,
                   engine.compute_network(kThreshold, config("auto"), pool));
  expect_identical(flat, engine.compute_network(
                             kThreshold, config("simd:2,scalar:2"), pool));
  expect_identical(
      flat, engine.compute_network(kThreshold,
                                   config("simd:2,unrolled:1,scalar:1"), pool));

  // Repeat runs of the same lane config stay stable (the scheduler is
  // adaptive; the results must not be).
  expect_identical(flat,
                   engine.compute_network(kThreshold, config("auto"), pool));
}

TEST_P(HeteroLanesTest, DenseMatrixAgreesUnderLanes) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(4);
  const std::vector<float> flat = engine.compute_dense(config(), pool);
  const std::vector<float> laned = engine.compute_dense(config("auto"), pool);
  ASSERT_EQ(flat.size(), laned.size());
  for (std::size_t i = 0; i < flat.size(); ++i)
    ASSERT_EQ(flat[i], laned[i]) << "cell " << i;
}

TEST_P(HeteroLanesTest, CheckpointResumeCrossesLaneConfigs) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(4);
  const GeneNetwork expected =
      engine.compute_network(kThreshold, config(), pool);

  struct InjectedCrash : std::runtime_error {
    InjectedCrash() : std::runtime_error("injected") {}
  };
  const auto crash_after_three = [](std::size_t done, std::size_t) {
    if (done >= 3) throw InjectedCrash();
  };

  // Crash under the flat scheduler, resume under lanes.
  EXPECT_THROW(engine.compute_network_checkpointed(kThreshold, config(), pool,
                                                   path("f2l.ckpt"), nullptr,
                                                   crash_after_three),
               InjectedCrash);
  ASSERT_TRUE(std::filesystem::exists(path("f2l.ckpt")));
  EngineStats resumed_stats;
  expect_identical(expected, engine.compute_network_checkpointed(
                                 kThreshold, config("auto"), pool,
                                 path("f2l.ckpt"), &resumed_stats));
  EXPECT_GT(resumed_stats.tiles_resumed, 0u);

  // Crash under lanes, resume flat.
  EXPECT_THROW(engine.compute_network_checkpointed(
                   kThreshold, config("simd:2,scalar:2"), pool,
                   path("l2f.ckpt"), nullptr, crash_after_three),
               InjectedCrash);
  ASSERT_TRUE(std::filesystem::exists(path("l2f.ckpt")));
  expect_identical(expected,
                   engine.compute_network_checkpointed(
                       kThreshold, config(), pool, path("l2f.ckpt")));

  // Crash under one lane split, resume under a different one.
  EXPECT_THROW(engine.compute_network_checkpointed(
                   kThreshold, config("auto"), pool, path("l2l.ckpt"),
                   nullptr, crash_after_three),
               InjectedCrash);
  ASSERT_TRUE(std::filesystem::exists(path("l2l.ckpt")));
  expect_identical(expected, engine.compute_network_checkpointed(
                                 kThreshold, config("scalar:3,simd:1"), pool,
                                 path("l2l.ckpt")));
}

INSTANTIATE_TEST_SUITE_P(Kernels, HeteroLanesTest,
                         ::testing::Values(MiKernel::Auto, MiKernel::Scalar,
                                           MiKernel::Unrolled, MiKernel::Simd),
                         [](const auto& param_info) {
                           return std::string(kernel_name(param_info.param));
                         });

// ---- estimators x lanes ---------------------------------------------------

TEST(HeteroLanesEstimators, EveryEstimatorAgreesWithFlat) {
  constexpr std::size_t kGenes = 30;
  constexpr std::size_t kSamples = 60;
  ExpressionMatrix matrix(kGenes, kSamples);
  Xoshiro256 rng(77);
  for (std::size_t s = 0; s < kSamples; ++s) {
    const double driver = rng.normal();
    for (std::size_t g = 0; g < kGenes; ++g) {
      matrix.at(g, s) = static_cast<float>(
          g < 8 ? driver + 0.5 * rng.normal() : rng.normal());
    }
  }
  const RankedMatrix ranked(matrix);
  par::ThreadPool pool(4);

  for (const EstimatorKind kind :
       {EstimatorKind::Bspline, EstimatorKind::Histogram,
        EstimatorKind::Pearson, EstimatorKind::Spearman}) {
    SCOPED_TRACE(estimator_name(kind));
    TingeConfig config;
    config.estimator = kind;
    config.tile_size = 8;
    config.threads = 4;
    const auto statistic = make_pair_statistic(config, ranked, &matrix);
    const MiEngine engine(*statistic, ranked);

    const std::vector<float> flat = engine.compute_dense(config, pool);
    TingeConfig laned = config;
    laned.hetero = "auto";
    const std::vector<float> lanes = engine.compute_dense(laned, pool);
    ASSERT_EQ(flat.size(), lanes.size());
    for (std::size_t i = 0; i < flat.size(); ++i)
      ASSERT_EQ(flat[i], lanes[i]) << "cell " << i;
  }
}

// ---- partition report -----------------------------------------------------

TEST(HeteroLanesStats, PartitionReportIsNonDegenerate) {
  constexpr std::size_t kGenes = 100;
  constexpr std::size_t kSamples = 400;
  ExpressionMatrix matrix(kGenes, kSamples);
  Xoshiro256 rng(9);
  for (std::size_t g = 0; g < kGenes; ++g)
    for (std::size_t s = 0; s < kSamples; ++s)
      matrix.at(g, s) = static_cast<float>(rng.normal());
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked);
  par::ThreadPool pool(4);

  TingeConfig config;
  config.tile_size = 8;  // 13 gene blocks -> 91 tiles, plenty per lane
  config.threads = 4;
  config.hetero = "auto";

  // Warmup: spins the pool's workers up and stages the ranks, so the
  // measured pass's slow lane cannot lose its share to worker wakeup
  // latency; its tile timings also calibrate the model for the real pass.
  engine.compute_network(/*threshold=*/10.0, config, pool);

  EngineStats stats;
  engine.compute_network(/*threshold=*/10.0, config, pool, &stats);

  // Tile latency sampling covered every computed tile.
  EXPECT_EQ(stats.tiles_timed, stats.tiles);
  EXPECT_GT(stats.tile_seconds_max, 0.0);
  EXPECT_GE(stats.tile_seconds_p95, stats.tile_seconds_p50);
  EXPECT_GE(stats.tile_seconds_max, stats.tile_seconds_p95);

  // Two lanes, both did real work, fractions are genuine distributions.
  ASSERT_EQ(stats.lanes.size(), 2u);
  double predicted = 0.0, measured = 0.0;
  std::uint64_t tiles = 0, pairs = 0;
  for (const EngineStats::LaneStats& lane : stats.lanes) {
    EXPECT_GT(lane.threads, 0);
    EXPECT_GT(lane.tiles, 0u) << lane.label;
    EXPECT_GT(lane.pairs, 0u) << lane.label;
    EXPECT_GT(lane.busy_seconds, 0.0) << lane.label;
    EXPECT_GT(lane.measured_fraction, 0.0) << lane.label;
    EXPECT_GT(lane.observed_gflops, 0.0) << lane.label;
    predicted += lane.predicted_fraction;
    measured += lane.measured_fraction;
    tiles += lane.tiles;
    pairs += lane.pairs;
  }
  EXPECT_NEAR(predicted, 1.0, 1e-9);
  EXPECT_NEAR(measured, 1.0, 1e-9);
  EXPECT_EQ(tiles, stats.tiles);
  EXPECT_EQ(pairs, stats.pairs_computed);
  EXPECT_GT(stats.lane_leases, 0u);

  // A second pass predicts from the first pass's live observations: the
  // engine keeps the perf model, so the seed split is now measurement-based
  // and the prediction must land near what actually happened.
  EngineStats second;
  engine.compute_network(/*threshold=*/10.0, config, pool, &second);
  ASSERT_EQ(second.lanes.size(), 2u);
  for (const EngineStats::LaneStats& lane : second.lanes)
    EXPECT_GT(lane.predicted_fraction, 0.0);
}

}  // namespace
}  // namespace tinge
