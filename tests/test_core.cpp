// Core pipeline components: tiling, universal null distribution, per-pair
// permutation test, the parallel MI engine, DPI filtering, configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/config.h"
#include "core/dpi.h"
#include "core/mi_engine.h"
#include "core/null_distribution.h"
#include "core/permutation_test.h"
#include "core/tile.h"
#include "stats/rng.h"

namespace tinge {
namespace {

// ---- tiles -----------------------------------------------------------------

TEST(TileSet, CoversEveryPairExactlyOnce) {
  for (const std::size_t n : {2u, 5u, 17u, 64u, 100u}) {
    for (const std::size_t tile : {1u, 3u, 16u, 200u}) {
      const TileSet tiles(n, tile);
      std::set<std::pair<std::size_t, std::size_t>> seen;
      for (std::size_t t = 0; t < tiles.count(); ++t) {
        for_each_pair(tiles.tile(t), [&](std::size_t i, std::size_t j) {
          EXPECT_LT(i, j);
          EXPECT_LT(j, n);
          EXPECT_TRUE(seen.emplace(i, j).second)
              << "duplicate pair " << i << "," << j;
        });
      }
      EXPECT_EQ(seen.size(), n * (n - 1) / 2) << "n=" << n << " T=" << tile;
      EXPECT_EQ(tiles.total_pairs(), n * (n - 1) / 2);
    }
  }
}

TEST(TileSet, PairCountMatchesEnumeration) {
  const TileSet tiles(37, 8);
  for (std::size_t t = 0; t < tiles.count(); ++t) {
    std::size_t enumerated = 0;
    for_each_pair(tiles.tile(t), [&](std::size_t, std::size_t) { ++enumerated; });
    EXPECT_EQ(enumerated, tiles.tile(t).pair_count());
  }
}

TEST(TileSet, DiagonalFlag) {
  const TileSet tiles(20, 10);
  ASSERT_EQ(tiles.count(), 3u);  // (0,0), (0,1), (1,1)
  EXPECT_TRUE(tiles.tile(0).diagonal());
  EXPECT_FALSE(tiles.tile(1).diagonal());
  EXPECT_TRUE(tiles.tile(2).diagonal());
}

// ---- universal null ----------------------------------------------------------

TEST(NullDistribution, DeterministicAcrossThreadCounts) {
  const BsplineMi estimator(10, 3, 128);
  par::ThreadPool pool(4);
  const auto null1 =
      build_null_distribution(estimator, 200, 42, pool, 1);
  const auto null4 =
      build_null_distribution(estimator, 200, 42, pool, 4);
  ASSERT_EQ(null1.size(), null4.size());
  for (std::size_t i = 0; i < null1.sorted().size(); ++i)
    EXPECT_DOUBLE_EQ(null1.sorted()[i], null4.sorted()[i]);
}

TEST(NullDistribution, SeedChangesSample) {
  const BsplineMi estimator(10, 3, 64);
  par::ThreadPool pool(2);
  const auto a = build_null_distribution(estimator, 100, 1, pool, 2);
  const auto b = build_null_distribution(estimator, 100, 2, pool, 2);
  EXPECT_NE(a.sorted(), b.sorted());
}

TEST(NullDistribution, ValuesAreValidMi) {
  const BsplineMi estimator(10, 3, 200);
  par::ThreadPool pool(2);
  const auto null = build_null_distribution(estimator, 300, 7, pool, 2);
  for (const double v : null.sorted()) {
    EXPECT_GE(v, -1e-4);
    EXPECT_LT(v, estimator.marginal_entropy());
  }
}

TEST(NullDistribution, ThresholdMonotoneInAlpha) {
  const BsplineMi estimator(10, 3, 128);
  par::ThreadPool pool(2);
  const auto null = build_null_distribution(estimator, 500, 3, pool, 2);
  const double t10 = threshold_for_alpha(null, 0.10);
  const double t05 = threshold_for_alpha(null, 0.05);
  const double t01 = threshold_for_alpha(null, 0.01);
  EXPECT_LE(t10, t05);
  EXPECT_LE(t05, t01);
}

TEST(NullDistribution, TinyAlphaFallsBackToMax) {
  const BsplineMi estimator(10, 3, 64);
  par::ThreadPool pool(2);
  const auto null = build_null_distribution(estimator, 100, 3, pool, 2);
  EXPECT_DOUBLE_EQ(threshold_for_alpha(null, 1e-9), null.max());
}

TEST(NullDistribution, ControlsFalsePositiveRate) {
  // Apply the alpha=0.05 threshold to fresh independent pairs: the
  // rejection rate should be ~5%.
  const std::size_t m = 150;
  const BsplineMi estimator(10, 3, m);
  par::ThreadPool pool(2);
  const auto null = build_null_distribution(estimator, 2000, 11, pool, 2);
  const double threshold = threshold_for_alpha(null, 0.05);

  JointHistogram scratch = estimator.make_scratch();
  Xoshiro256 rng(99);
  int rejected = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    const auto rx = random_permutation(m, rng);
    const auto ry = random_permutation(m, rng);
    if (estimator.mi(rx, ry, scratch) >= threshold) ++rejected;
  }
  const double rate = static_cast<double>(rejected) / trials;
  EXPECT_NEAR(rate, 0.05, 0.035);
}

// ---- per-pair permutation test ---------------------------------------------------

TEST(PermutationTest, DependentPairGetsSmallPValue) {
  const std::size_t m = 120;
  Xoshiro256 rng(17);
  const auto rx = random_permutation(m, rng);
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  const auto result =
      pair_permutation_test(estimator, rx, rx, 199, 5, scratch);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0 / 200.0);
  EXPECT_GT(result.mi, 1.0);
}

TEST(PermutationTest, IndependentPairsGetUniformishPValues) {
  // One independent pair can legitimately draw a small p-value; across ten
  // pairs the median must be comfortably large.
  const std::size_t m = 120;
  Xoshiro256 rng(18);
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  std::vector<double> p_values;
  for (int trial = 0; trial < 10; ++trial) {
    const auto rx = random_permutation(m, rng);
    const auto ry = random_permutation(m, rng);
    p_values.push_back(
        pair_permutation_test(estimator, rx, ry, 199, 5, scratch).p_value);
  }
  std::sort(p_values.begin(), p_values.end());
  EXPECT_GT(p_values[5], 0.10);  // median of ~Uniform(0,1)
}

TEST(PermutationTest, AgreesWithUniversalNull) {
  // The per-pair p-value and the universal-null p-value are estimates of
  // the same quantity after rank transformation.
  const std::size_t m = 100;
  Xoshiro256 rng(19);
  const auto rx = random_permutation(m, rng);
  auto ry = rx;  // strongly dependent but not identical
  Xoshiro256 swap_rng(20);
  for (int swaps = 0; swaps < 30; ++swaps) {
    const auto a = static_cast<std::size_t>(swap_rng.below(m));
    const auto b = static_cast<std::size_t>(swap_rng.below(m));
    std::swap(ry[a], ry[b]);
  }
  const BsplineMi estimator(10, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  par::ThreadPool pool(2);

  const auto pair = pair_permutation_test(estimator, rx, ry, 999, 5, scratch);
  const auto null = build_null_distribution(estimator, 999, 6, pool, 2);
  const double null_p = null.p_value(pair.mi);
  EXPECT_NEAR(pair.p_value, null_p, 0.05);
}

// ---- engine -----------------------------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 40;
  static constexpr std::size_t kSamples = 96;

  EngineFixture() : matrix_(kGenes, kSamples) {
    Xoshiro256 rng(1234);
    // Three correlated blocks + independent remainder.
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver_a = rng.normal();
      const double driver_b = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        double value = rng.normal();
        if (g < 8) value = driver_a + 0.3 * rng.normal();
        else if (g < 16) value = driver_b + 0.3 * rng.normal();
        matrix_.at(g, s) = static_cast<float>(value);
      }
    }
    ranked_ = RankedMatrix(matrix_);
  }

  ExpressionMatrix matrix_;
  RankedMatrix ranked_;
};

TEST_F(EngineFixture, DenseMatrixIsSymmetricZeroDiagonal) {
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked_);
  par::ThreadPool pool(2);
  TingeConfig config;
  config.tile_size = 7;
  const auto dense = engine.compute_dense(config, pool);
  for (std::size_t i = 0; i < kGenes; ++i) {
    EXPECT_EQ(dense[i * kGenes + i], 0.0f);
    for (std::size_t j = 0; j < kGenes; ++j)
      EXPECT_EQ(dense[i * kGenes + j], dense[j * kGenes + i]);
  }
}

TEST_F(EngineFixture, ThreadCountDoesNotChangeResults) {
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked_);
  par::ThreadPool pool(4);
  TingeConfig config;
  config.tile_size = 5;
  config.threads = 1;
  const auto serial = engine.compute_dense(config, pool);
  config.threads = 4;
  const auto parallel = engine.compute_dense(config, pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
}

TEST_F(EngineFixture, TileSizeDoesNotChangeResults) {
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked_);
  par::ThreadPool pool(2);
  TingeConfig config;
  config.tile_size = 3;
  const auto small_tiles = engine.compute_dense(config, pool);
  config.tile_size = 64;
  const auto big_tiles = engine.compute_dense(config, pool);
  EXPECT_EQ(small_tiles, big_tiles);
}

TEST_F(EngineFixture, SchedulesAgree) {
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked_);
  par::ThreadPool pool(4);
  TingeConfig config;
  config.tile_size = 6;
  config.threads = 4;
  config.schedule = par::Schedule::Static;
  const auto a = engine.compute_dense(config, pool);
  config.schedule = par::Schedule::Guided;
  const auto b = engine.compute_dense(config, pool);
  EXPECT_EQ(a, b);
}

TEST_F(EngineFixture, NetworkMatchesDenseThresholding) {
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked_);
  par::ThreadPool pool(2);
  TingeConfig config;
  config.tile_size = 8;
  const double threshold = 0.25;

  EngineStats stats;
  const GeneNetwork network =
      engine.compute_network(threshold, config, pool, &stats);
  const auto dense = engine.compute_dense(config, pool);

  EXPECT_EQ(stats.pairs_computed, kGenes * (kGenes - 1) / 2);
  EXPECT_EQ(stats.edges_emitted, network.n_edges());
  EXPECT_GT(stats.tiles, 0u);

  std::size_t expected_edges = 0;
  for (std::size_t i = 0; i < kGenes; ++i) {
    for (std::size_t j = i + 1; j < kGenes; ++j) {
      const float mi = dense[i * kGenes + j];
      if (mi >= static_cast<float>(threshold)) {
        ++expected_edges;
        EXPECT_FLOAT_EQ(network.edge_weight(static_cast<std::uint32_t>(i),
                                            static_cast<std::uint32_t>(j)),
                        mi);
      }
    }
  }
  EXPECT_EQ(network.n_edges(), expected_edges);
  EXPECT_GT(expected_edges, 0u);  // the correlated blocks must show up
}

TEST_F(EngineFixture, BlockStructureIsRecovered) {
  const BsplineMi estimator(10, 3, kSamples);
  const MiEngine engine(estimator, ranked_);
  par::ThreadPool pool(2);
  TingeConfig config;
  const auto dense = engine.compute_dense(config, pool);
  // Average in-block MI must exceed average cross/background MI clearly.
  double in_block = 0.0, background = 0.0;
  std::size_t n_in = 0, n_bg = 0;
  for (std::size_t i = 0; i < kGenes; ++i) {
    for (std::size_t j = i + 1; j < kGenes; ++j) {
      const bool same_block = (i < 8 && j < 8) || (i >= 8 && i < 16 && j >= 8 && j < 16);
      if (same_block) {
        in_block += dense[i * kGenes + j];
        ++n_in;
      } else if (i >= 16) {
        background += dense[i * kGenes + j];
        ++n_bg;
      }
    }
  }
  EXPECT_GT(in_block / static_cast<double>(n_in),
            5.0 * background / static_cast<double>(n_bg));
}

TEST(MiEngine, RejectsMismatchedEstimator) {
  ExpressionMatrix matrix(4, 32);
  Xoshiro256 rng(1);
  for (std::size_t g = 0; g < 4; ++g)
    for (std::size_t s = 0; s < 32; ++s)
      matrix.at(g, s) = static_cast<float>(rng.normal());
  const RankedMatrix ranked(matrix);
  const BsplineMi estimator(10, 3, 64);  // wrong m
  EXPECT_THROW(MiEngine(estimator, ranked), ContractViolation);
}

// ---- DPI ---------------------------------------------------------------------------

GeneNetwork triangle_network(float w_ab, float w_bc, float w_ac) {
  GeneNetwork network({"a", "b", "c"});
  network.add_edge(0, 1, w_ab);
  network.add_edge(1, 2, w_bc);
  network.add_edge(0, 2, w_ac);
  network.finalize();
  return network;
}

TEST(Dpi, RemovesWeakestTriangleEdge) {
  const GeneNetwork network = triangle_network(0.9f, 0.8f, 0.1f);
  DpiStats stats;
  const GeneNetwork filtered = apply_dpi(network, 0.0, &stats);
  EXPECT_EQ(stats.triangles_examined, 1u);
  EXPECT_EQ(stats.edges_removed, 1u);
  EXPECT_EQ(filtered.n_edges(), 2u);
  EXPECT_FALSE(filtered.has_edge(0, 2));
  EXPECT_TRUE(filtered.has_edge(0, 1));
  EXPECT_TRUE(filtered.has_edge(1, 2));
}

TEST(Dpi, ToleranceKeepsBorderlineEdges) {
  // Weakest edge within 20% of the median edge: survives with tol=0.3.
  const GeneNetwork network = triangle_network(0.9f, 0.5f, 0.45f);
  EXPECT_EQ(apply_dpi(network, 0.0).n_edges(), 2u);
  EXPECT_EQ(apply_dpi(network, 0.3).n_edges(), 3u);
}

TEST(Dpi, NoTrianglesNothingRemoved) {
  GeneNetwork network({"a", "b", "c", "d"});
  network.add_edge(0, 1, 0.9f);
  network.add_edge(1, 2, 0.1f);
  network.add_edge(2, 3, 0.5f);
  network.finalize();
  DpiStats stats;
  const GeneNetwork filtered = apply_dpi(network, 0.0, &stats);
  EXPECT_EQ(stats.triangles_examined, 0u);
  EXPECT_EQ(filtered.n_edges(), 3u);
}

TEST(Dpi, ChainWithIndirectEdge) {
  // True chain a-b-c plus a weaker indirect a-c edge plus unrelated d.
  GeneNetwork network({"a", "b", "c", "d"});
  network.add_edge(0, 1, 1.2f);
  network.add_edge(1, 2, 1.0f);
  network.add_edge(0, 2, 0.4f);  // indirect
  network.add_edge(2, 3, 0.7f);
  network.finalize();
  const GeneNetwork filtered = apply_dpi(network, 0.1);
  EXPECT_FALSE(filtered.has_edge(0, 2));
  EXPECT_TRUE(filtered.has_edge(2, 3));
  EXPECT_EQ(filtered.n_edges(), 3u);
}

TEST(Dpi, PreservesNodeNames) {
  const GeneNetwork network = triangle_network(0.9f, 0.8f, 0.1f);
  const GeneNetwork filtered = apply_dpi(network, 0.0);
  EXPECT_EQ(filtered.node_names(), network.node_names());
}

TEST(Dpi, RequiresFinalizedInput) {
  GeneNetwork network({"a", "b"});
  network.add_edge(0, 1, 1.0f);
  EXPECT_THROW(apply_dpi(network, 0.0), ContractViolation);
}

// ---- config ---------------------------------------------------------------------

TEST(Config, DefaultIsValid) {
  TingeConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, RejectsBadValues) {
  TingeConfig config;
  config.bins = 2;  // < spline_order
  EXPECT_THROW(config.validate(), ContractViolation);
  config = TingeConfig{};
  config.alpha = 0.0;
  EXPECT_THROW(config.validate(), ContractViolation);
  config = TingeConfig{};
  config.permutations = 3;
  EXPECT_THROW(config.validate(), ContractViolation);
  config = TingeConfig{};
  config.tile_size = 0;
  EXPECT_THROW(config.validate(), ContractViolation);
  config = TingeConfig{};
  config.dpi_tolerance = 1.0;
  EXPECT_THROW(config.validate(), ContractViolation);
}


TEST(NullDistribution, NonMultipleOfStreamSizeStillExactCount) {
  // Work is distributed in 64-draw streams; q not a multiple of 64 must
  // still produce exactly q draws, deterministically.
  const BsplineMi estimator(10, 3, 64);
  par::ThreadPool pool(3);
  for (const std::size_t q : {1u, 63u, 65u, 129u}) {
    const auto null = build_null_distribution(estimator, q, 5, pool, 3);
    EXPECT_EQ(null.size(), q);
    const auto again = build_null_distribution(estimator, q, 5, pool, 1);
    EXPECT_EQ(null.sorted(), again.sorted());
  }
}

}  // namespace
}  // namespace tinge
