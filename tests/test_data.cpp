// Expression-matrix container and I/O: layout invariants, TSV and binary
// roundtrips, missing-value handling, malformed-input rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "data/binary_io.h"
#include "data/expression_matrix.h"
#include "data/tsv_io.h"

namespace tinge {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tingex_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST(ExpressionMatrix, DimensionsAndDefaults) {
  ExpressionMatrix m(3, 5);
  EXPECT_EQ(m.n_genes(), 3u);
  EXPECT_EQ(m.n_samples(), 5u);
  EXPECT_GE(m.stride(), 5u);
  EXPECT_EQ(m.stride() % (kSimdAlignment / sizeof(float)), 0u);
  EXPECT_EQ(m.gene_names().size(), 3u);
  EXPECT_EQ(m.sample_names().size(), 5u);
  for (std::size_t g = 0; g < 3; ++g)
    for (const float v : m.row(g)) EXPECT_EQ(v, 0.0f);
}

TEST(ExpressionMatrix, RowsAreAligned) {
  ExpressionMatrix m(4, 7);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(g).data()) %
                  kSimdAlignment,
              0u);
  }
}

TEST(ExpressionMatrix, AtReadsAndWrites) {
  ExpressionMatrix m(2, 3);
  m.at(1, 2) = 4.5f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.5f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 4.5f);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, 3), ContractViolation);
}

TEST(ExpressionMatrix, NameMismatchRejected) {
  EXPECT_THROW(ExpressionMatrix(2, 2, {"a"}, {"s1", "s2"}), ContractViolation);
  EXPECT_THROW(ExpressionMatrix(2, 2, {"a", "b"}, {"s1"}), ContractViolation);
}

TEST(ExpressionMatrix, FindGene) {
  ExpressionMatrix m(2, 2, {"AT1G01010", "AT1G01020"}, {"s1", "s2"});
  EXPECT_EQ(m.find_gene("AT1G01020"), 1u);
  EXPECT_EQ(m.find_gene("missing"), ExpressionMatrix::npos);
}

TEST(ExpressionMatrix, CountMissing) {
  ExpressionMatrix m(2, 3);
  m.at(0, 1) = std::nanf("");
  m.at(1, 2) = std::nanf("");
  EXPECT_EQ(m.count_missing(), 2u);
}

TEST(ExpressionMatrix, CloneIsDeep) {
  ExpressionMatrix m(1, 2);
  m.at(0, 0) = 1.0f;
  ExpressionMatrix copy = m.clone();
  copy.at(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
}

TEST(ExpressionMatrix, SelectGenesPreservesOrderAndNames) {
  ExpressionMatrix m(4, 2, {"a", "b", "c", "d"}, {"s1", "s2"});
  for (std::size_t g = 0; g < 4; ++g) m.at(g, 0) = static_cast<float>(g);
  const ExpressionMatrix sub = m.select_genes({3, 1});
  EXPECT_EQ(sub.n_genes(), 2u);
  EXPECT_EQ(sub.gene_name(0), "d");
  EXPECT_EQ(sub.gene_name(1), "b");
  EXPECT_FLOAT_EQ(sub.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(sub.at(1, 0), 1.0f);
}

TEST(ExpressionMatrix, SelectGenesRejectsBadIndex) {
  ExpressionMatrix m(2, 2);
  EXPECT_THROW(m.select_genes({0, 5}), ContractViolation);
}

// ---- TSV ---------------------------------------------------------------------

TEST(TsvIo, RoundtripWithMissingValues) {
  ExpressionMatrix m(2, 3, {"gA", "gB"}, {"s1", "s2", "s3"});
  m.at(0, 0) = 1.25f;
  m.at(0, 1) = std::nanf("");
  m.at(0, 2) = -3.0f;
  m.at(1, 0) = 0.0f;
  m.at(1, 1) = 100.5f;
  m.at(1, 2) = 1e-4f;

  std::stringstream stream;
  write_expression_tsv(m, stream);
  const ExpressionMatrix back = read_expression_tsv(stream);

  ASSERT_EQ(back.n_genes(), 2u);
  ASSERT_EQ(back.n_samples(), 3u);
  EXPECT_EQ(back.gene_names(), m.gene_names());
  EXPECT_EQ(back.sample_names(), m.sample_names());
  EXPECT_FLOAT_EQ(back.at(0, 0), 1.25f);
  EXPECT_TRUE(std::isnan(back.at(0, 1)));
  EXPECT_FLOAT_EQ(back.at(1, 2), 1e-4f);
}

TEST(TsvIo, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "gene\ts1\ts2\n"
      "# another\n"
      "g1\t1\t2\n");
  const ExpressionMatrix m = read_expression_tsv(in);
  EXPECT_EQ(m.n_genes(), 1u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
}

TEST(TsvIo, RejectsColumnCountMismatch) {
  std::stringstream in("gene\ts1\ts2\ng1\t1\n");
  EXPECT_THROW(read_expression_tsv(in), IoError);
}

TEST(TsvIo, RejectsUnparsableNumber) {
  std::stringstream in("gene\ts1\ng1\tbogus\n");
  EXPECT_THROW(read_expression_tsv(in), IoError);
}

TEST(TsvIo, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_THROW(read_expression_tsv(in), IoError);
}

TEST(TsvIo, RejectsHeaderWithoutSamples) {
  std::stringstream in("gene\n");
  EXPECT_THROW(read_expression_tsv(in), IoError);
}

TEST(TsvIo, RejectsEmptyGeneName) {
  std::stringstream in("gene\ts1\n\t1\n");
  EXPECT_THROW(read_expression_tsv(in), IoError);
}

TEST_F(TempDir, TsvFileRoundtrip) {
  ExpressionMatrix m(1, 2, {"g"}, {"a", "b"});
  m.at(0, 0) = 7.0f;
  write_expression_tsv_file(m, path("x.tsv"));
  const ExpressionMatrix back = read_expression_tsv_file(path("x.tsv"));
  EXPECT_FLOAT_EQ(back.at(0, 0), 7.0f);
}

TEST_F(TempDir, TsvMissingFileThrows) {
  EXPECT_THROW(read_expression_tsv_file(path("absent.tsv")), IoError);
}

// ---- binary --------------------------------------------------------------------

TEST_F(TempDir, BinaryRoundtripExact) {
  ExpressionMatrix m(3, 4, {"x", "y", "z"}, {"s1", "s2", "s3", "s4"});
  float value = 0.0f;
  for (std::size_t g = 0; g < 3; ++g)
    for (std::size_t s = 0; s < 4; ++s) m.at(g, s) = (value += 0.37f);
  m.at(1, 1) = std::nanf("");

  write_expression_binary_file(m, path("m.tngx"));
  const ExpressionMatrix back = read_expression_binary_file(path("m.tngx"));

  ASSERT_EQ(back.n_genes(), 3u);
  ASSERT_EQ(back.n_samples(), 4u);
  EXPECT_EQ(back.gene_names(), m.gene_names());
  for (std::size_t g = 0; g < 3; ++g)
    for (std::size_t s = 0; s < 4; ++s) {
      if (g == 1 && s == 1) {
        EXPECT_TRUE(std::isnan(back.at(g, s)));
      } else {
        EXPECT_EQ(back.at(g, s), m.at(g, s)) << g << "," << s;
      }
    }
}

TEST_F(TempDir, BinaryRejectsWrongMagic) {
  {
    std::ofstream out(path("junk.tngx"), std::ios::binary);
    out << "NOPE and some more bytes to be safe";
  }
  EXPECT_THROW(read_expression_binary_file(path("junk.tngx")), IoError);
}

TEST_F(TempDir, BinaryRejectsTruncation) {
  ExpressionMatrix m(2, 2);
  write_expression_binary_file(m, path("t.tngx"));
  // Truncate the value section.
  const auto full = std::filesystem::file_size(path("t.tngx"));
  std::filesystem::resize_file(path("t.tngx"), full - 8);
  EXPECT_THROW(read_expression_binary_file(path("t.tngx")), IoError);
}

}  // namespace
}  // namespace tinge
