// Device model: published spec numbers, calibration, scaling-curve shape,
// offload partitioning.
#include <gtest/gtest.h>

#include <cmath>

#include "device/device_spec.h"
#include "util/contracts.h"
#include "device/offload.h"
#include "device/perf_model.h"

namespace tinge {
namespace {

TEST(DeviceSpec, PhiMatchesPublishedPeak) {
  const DeviceSpec phi = xeon_phi_5110p();
  EXPECT_EQ(phi.total_threads(), 240);
  EXPECT_EQ(phi.vector_lanes_f32(), 16);
  // 60 cores * 1.053 GHz * 16 lanes * 2 flops ~ 2021 SP GFLOP/s.
  EXPECT_NEAR(phi.peak_sp_gflops(), 2021.8, 5.0);
}

TEST(DeviceSpec, PhiSingleThreadPerCoreIsHalfRate) {
  const DeviceSpec phi = xeon_phi_5110p();
  EXPECT_NEAR(phi.core_sp_gflops(1), 0.5 * phi.core_sp_gflops(2), 1e-9);
  EXPECT_NEAR(phi.core_sp_gflops(4), phi.core_sp_gflops(2), 1e-9);
}

TEST(DeviceSpec, DualXeonMatchesPublishedPeak) {
  const DeviceSpec xeon = dual_xeon_e5_2670();
  EXPECT_EQ(xeon.total_threads(), 32);
  // 16 cores * 2.6 GHz * 8 lanes * 2 flops * 1.1 SMT ~ 732 SP GFLOP/s.
  EXPECT_NEAR(xeon.peak_sp_gflops(), 732.2, 5.0);
}

TEST(DeviceSpec, PhiOutpeaksXeonAsInPaper) {
  EXPECT_GT(xeon_phi_5110p().peak_sp_gflops(),
            2.0 * dual_xeon_e5_2670().peak_sp_gflops());
}

TEST(DeviceSpec, HostDetectionSane) {
  const DeviceSpec host = host_device();
  EXPECT_GE(host.cores, 1);
  EXPECT_GE(host.freq_ghz, 0.1);
  EXPECT_GE(host.vector_bits, 128);
  EXPECT_GT(host.peak_sp_gflops(), 0.0);
}

// ---- workload ------------------------------------------------------------------

TEST(MiWorkload, FlopAccounting) {
  const MiWorkload w{100, 1000, 3, 10};
  // accumulation: 100*1000*9*2 = 1.8e6; entropy: 100*100*12 = 1.2e5
  EXPECT_DOUBLE_EQ(w.flops(), 1.8e6 + 1.2e5);
}

TEST(MiWorkload, AllPairsHelper) {
  const MiWorkload w = MiWorkload::all_pairs(100, 50, 3, 10);
  EXPECT_EQ(w.pairs, 4950u);
  EXPECT_EQ(w.samples, 50u);
}

TEST(MiWorkload, PaperScaleIsTeraflopRange) {
  // 15,575 genes x 3,137 arrays: ~1.2e8 pairs x 3137 samples x 9 FMAs
  // ~ 7e12 flops of essential work (the paper's 22 minutes reflects far
  // lower achieved efficiency than peak — see EXPERIMENTS.md).
  const MiWorkload w = MiWorkload::all_pairs(15575, 3137, 3, 10);
  EXPECT_GT(w.flops(), 5e12);
  EXPECT_LT(w.flops(), 1e13);
}

// ---- perf model -----------------------------------------------------------------

TEST(PerfModel, EfficiencyCalibratedFromMeasurement) {
  const DeviceSpec host = host_device();
  const double half_peak = 0.5 * host.core_sp_gflops(1);
  const PerfModel model(host, half_peak);
  EXPECT_NEAR(model.efficiency(), 0.5, 1e-9);
}

TEST(PerfModel, EfficiencyClamped) {
  const DeviceSpec host = host_device();
  EXPECT_LE(PerfModel(host, 1e9).efficiency(), 1.0);
  EXPECT_GE(PerfModel(host, 1e-9).efficiency(), 0.01);
  EXPECT_THROW(PerfModel(host, 0.0), ContractViolation);
}

TEST(PerfModel, ThroughputMonotoneInThreads) {
  const DeviceSpec phi = xeon_phi_5110p();
  const PerfModel model(host_device(), 10.0);
  double previous = 0.0;
  for (const int threads : {1, 2, 15, 60, 120, 180, 240}) {
    const double rate = model.device_gflops(phi, threads);
    EXPECT_GE(rate, previous) << threads << " threads";
    previous = rate;
  }
}

TEST(PerfModel, PhiNeedsTwoThreadsPerCoreToSaturate) {
  // The paper's signature scaling shape: 60 -> 120 threads nearly doubles
  // throughput; 120 -> 240 adds nothing.
  const DeviceSpec phi = xeon_phi_5110p();
  const PerfModel model(host_device(), 10.0);
  const double t60 = model.device_gflops(phi, 60);
  const double t120 = model.device_gflops(phi, 120);
  const double t240 = model.device_gflops(phi, 240);
  EXPECT_NEAR(t120 / t60, 2.0, 0.01);
  EXPECT_NEAR(t240 / t120, 1.0, 0.01);
}

TEST(PerfModel, ThreadsBeyondDeviceClamp) {
  const DeviceSpec phi = xeon_phi_5110p();
  const PerfModel model(host_device(), 10.0);
  EXPECT_DOUBLE_EQ(model.device_gflops(phi, 240),
                   model.device_gflops(phi, 999));
}

TEST(PerfModel, PredictTimeScalesWithWork) {
  const DeviceSpec phi = xeon_phi_5110p();
  const PerfModel model(host_device(), 10.0);
  const MiWorkload small = MiWorkload::all_pairs(1000, 500, 3, 10);
  MiWorkload big = small;
  big.pairs *= 4;
  const double t_small = model.predict_seconds(phi, small, 240);
  const double t_big = model.predict_seconds(phi, big, 240);
  EXPECT_NEAR(t_big / t_small, 4.0, 0.05);
}

TEST(PerfModel, SerialFloorAddsUp) {
  const DeviceSpec phi = xeon_phi_5110p();
  const PerfModel model(host_device(), 10.0);
  const MiWorkload w = MiWorkload::all_pairs(100, 100, 3, 10);
  const double base = model.predict_seconds(phi, w, 240, 0.0);
  EXPECT_NEAR(model.predict_seconds(phi, w, 240, 2.5), base + 2.5, 1e-12);
}

TEST(PerfModel, ScalingCurveMatchesPointPredictions) {
  const DeviceSpec xeon = dual_xeon_e5_2670();
  const PerfModel model(host_device(), 10.0);
  const MiWorkload w = MiWorkload::all_pairs(2000, 1000, 3, 10);
  const std::vector<int> threads{1, 2, 4, 8, 16, 32};
  const auto curve = model.predict_scaling(xeon, w, threads);
  ASSERT_EQ(curve.size(), threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i)
    EXPECT_DOUBLE_EQ(curve[i], model.predict_seconds(xeon, w, threads[i]));
  EXPECT_GT(curve.front(), curve.back());
}

// ---- live calibration ----------------------------------------------------------

TEST(PerfModel, AssumedEfficiencyCtorClamps) {
  EXPECT_DOUBLE_EQ(PerfModel(0.3).efficiency(), 0.3);
  EXPECT_DOUBLE_EQ(PerfModel(7.0).efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(PerfModel(1e-9).efficiency(), 0.01);
  EXPECT_THROW(PerfModel(0.0), ContractViolation);
  EXPECT_THROW(PerfModel(-1.0), ContractViolation);
}

TEST(PerfModel, ObserveAccumulatesPerLane) {
  PerfModel model(0.3);
  EXPECT_DOUBLE_EQ(model.observed_gflops(0), 0.0);
  EXPECT_EQ(model.observation(5).tiles, 0u);  // out of range reads as empty

  const MiWorkload tile{200, 100, 3, 10};
  model.observe(0, tile, 0.5);
  model.observe(0, tile, 1.5);
  model.observe(1, tile, 1.0);

  const LaneObservation lane0 = model.observation(0);
  EXPECT_EQ(lane0.tiles, 2u);
  EXPECT_EQ(lane0.pairs, 400u);
  EXPECT_DOUBLE_EQ(lane0.seconds, 2.0);
  EXPECT_DOUBLE_EQ(lane0.flops, 2.0 * tile.flops());
  EXPECT_DOUBLE_EQ(model.observed_gflops(0), tile.flops() / 1e9);
  EXPECT_EQ(model.observation(1).tiles, 1u);
}

TEST(PerfModel, CalibratedGflopsPrefersObservations) {
  PerfModel model(0.3);
  const DeviceSpec host = host_device();
  // Unobserved lanes fall back to the static analytic model.
  EXPECT_DOUBLE_EQ(model.calibrated_gflops(0, host, 4),
                   model.device_gflops(host, 4));
  // One observation replaces the model: a tile of known flops in 1 second
  // gives an exact per-thread rate, scaled by the requested thread count.
  const MiWorkload tile{1000, 500, 3, 10};
  model.observe(0, tile, 1.0);
  EXPECT_DOUBLE_EQ(model.calibrated_gflops(0, host, 4),
                   4.0 * tile.flops() / 1e9);
  // Other lanes stay on the static model.
  EXPECT_DOUBLE_EQ(model.calibrated_gflops(1, host, 4),
                   model.device_gflops(host, 4));
}

TEST(Offload, LaneSplitProportionalToRates) {
  const std::vector<double> f = plan_lane_split({3.0, 1.0});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f[0], 0.75, 1e-12);
  EXPECT_NEAR(f[1], 0.25, 1e-12);
  EXPECT_THROW(plan_lane_split({}), ContractViolation);
  EXPECT_THROW(plan_lane_split({1.0, 0.0}), ContractViolation);
}

TEST(Offload, LaneDeviceNarrowsScalarKernels) {
  const DeviceSpec host = host_device();
  EXPECT_EQ(lane_device(host, MiKernel::Scalar).vector_bits, 32);
  EXPECT_EQ(lane_device(host, MiKernel::Unrolled).vector_bits, 32);
  EXPECT_EQ(lane_device(host, MiKernel::Simd).vector_bits, host.vector_bits);
  EXPECT_LT(lane_device(host, MiKernel::Scalar).peak_sp_gflops(),
            lane_device(host, MiKernel::Simd).peak_sp_gflops());
}

// ---- offload -------------------------------------------------------------------

TEST(Offload, FractionsSumToOneAndBalance) {
  const PerfModel model(host_device(), 10.0);
  const DeviceSpec xeon = dual_xeon_e5_2670();
  const DeviceSpec phi = xeon_phi_5110p();
  const MiWorkload w = MiWorkload::all_pairs(5000, 2000, 3, 10);
  const OffloadPlan plan = plan_offload(model, xeon, 32, phi, w);
  EXPECT_NEAR(plan.host_fraction + plan.device_fraction, 1.0, 1e-12);
  EXPECT_GT(plan.device_fraction, plan.host_fraction);  // Phi is faster
  // Both sides finish within a few percent of each other by construction.
  EXPECT_NEAR(plan.host_seconds / plan.device_seconds, 1.0, 0.05);
  EXPECT_GT(plan.speedup_vs_host, 1.5);
}

TEST(Offload, SymmetricDevicesSplitEvenly) {
  const PerfModel model(host_device(), 10.0);
  const DeviceSpec xeon = dual_xeon_e5_2670();
  const MiWorkload w = MiWorkload::all_pairs(1000, 500, 3, 10);
  const OffloadPlan plan = plan_offload(model, xeon, 32, xeon, w);
  EXPECT_NEAR(plan.host_fraction, 0.5, 1e-6);
  EXPECT_NEAR(plan.speedup_vs_host, 2.0, 0.05);
}


TEST(DeviceSpec, KnlMatchesPublishedPeak) {
  const DeviceSpec knl = xeon_phi_7250_knl();
  EXPECT_EQ(knl.total_threads(), 272);
  // 68 cores * 1.4 GHz * 16 lanes * 2 VPUs * 2 flops ~ 6093 SP GFLOP/s.
  EXPECT_NEAR(knl.peak_sp_gflops(), 6092.8, 10.0);
  EXPECT_GT(knl.peak_sp_gflops(), 2.5 * xeon_phi_5110p().peak_sp_gflops());
}

TEST(PerfModel, KnlSaturatesWithTwoThreadsPerCore) {
  const DeviceSpec knl = xeon_phi_7250_knl();
  const PerfModel model(host_device(), 10.0);
  const double t68 = model.device_gflops(knl, 68);
  const double t136 = model.device_gflops(knl, 136);
  const double t272 = model.device_gflops(knl, 272);
  EXPECT_NEAR(t136 / t68, 1.0 / 0.7, 0.01);
  EXPECT_NEAR(t272 / t136, 1.0, 0.01);
}

}  // namespace
}  // namespace tinge
