// Kernel equivalence and correctness: every optimized kernel variant must
// agree with the double-precision reference on random rank profiles, for
// every supported (bins, order) shape.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mi/bspline_kernels.h"
#include "mi/bspline_mi.h"
#include "preprocess/rank_transform.h"
#include "reference_mi.h"
#include "stats/rng.h"

namespace tinge {
namespace {

std::vector<std::uint32_t> random_ranks(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_permutation(m, rng);
}

class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<MiKernel, int, int, int>> {};

TEST_P(KernelEquivalence, MatchesReferenceJointEntropy) {
  const auto [kernel, bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();

  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    const auto rx = random_ranks(m, 101 + trial);
    const auto ry = random_ranks(m, 909 + trial);
    const double reference =
        testref::joint_entropy_reference(rx, ry, bins, order);
    const double actual = estimator.joint_entropy(rx, ry, scratch, kernel);
    EXPECT_NEAR(actual, reference, 5e-4)
        << kernel_name(kernel) << " b=" << bins << " k=" << order
        << " m=" << m;
  }
}

TEST_P(KernelEquivalence, MarginalEntropyMatchesReference) {
  const auto [kernel, bins, order, m_int] = GetParam();
  (void)kernel;
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineMi estimator(bins, order, m);
  EXPECT_NEAR(estimator.marginal_entropy(),
              testref::marginal_entropy_reference(m, bins, order), 1e-6);
}

TEST_P(KernelEquivalence, SelfMiEqualsMarginalEntropy) {
  // MI(X, X) = H(X): joint mass concentrates on the diagonal patch.
  const auto [kernel, bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = random_ranks(m, 7);
  const double h_joint = estimator.joint_entropy(rx, rx, scratch, kernel);
  // H(X,X) = H(X) mathematically, but the B-spline "soft diagonal" adds a
  // small smearing term; verify against the reference instead of exactly H.
  EXPECT_NEAR(h_joint, testref::joint_entropy_reference(rx, rx, bins, order),
              5e-4);
  // Self-MI must dominate the MI of an independent pair by a wide margin
  // (smoothing keeps it below the theoretical H(X) at small m).
  const double mi_self = estimator.mi(rx, rx, scratch, kernel);
  const auto ry = random_ranks(m, 8);
  const double mi_indep = estimator.mi(rx, ry, scratch, kernel);
  // The separation only holds when the histogram is well sampled; with
  // bins^2 ~ m the plug-in bias of the independent pair dominates.
  if (m >= static_cast<std::size_t>(4 * bins * bins)) {
    EXPECT_GT(mi_self, 2.0 * mi_indep);
    EXPECT_GT(mi_self, 0.2 * estimator.marginal_entropy());
  } else {
    EXPECT_GE(mi_self, mi_indep - 0.05);
  }
}

TEST_P(KernelEquivalence, MiIsSymmetric) {
  const auto [kernel, bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = random_ranks(m, 31);
  const auto ry = random_ranks(m, 32);
  const double mi_xy = estimator.mi(rx, ry, scratch, kernel);
  const double mi_yx = estimator.mi(ry, rx, scratch, kernel);
  EXPECT_NEAR(mi_xy, mi_yx, 1e-5);
}

TEST_P(KernelEquivalence, MiOfIndependentPermutationsIsNonNegativeAndSmall) {
  const auto [kernel, bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const auto rx = random_ranks(m, 1000 + trial);
    const auto ry = random_ranks(m, 2000 + trial);
    const double mi = estimator.mi(rx, ry, scratch, kernel);
    EXPECT_GT(mi, -1e-4) << "plug-in MI must be ~non-negative";
    EXPECT_LT(mi, estimator.marginal_entropy())
        << "independent MI must be far below H";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelEquivalence,
    ::testing::Combine(
        ::testing::Values(MiKernel::Scalar, MiKernel::Unrolled, MiKernel::Simd,
                          MiKernel::Replicated, MiKernel::Gather512,
                          MiKernel::Auto),
        ::testing::Values(10, 16, 27),  // bins
        ::testing::Values(1, 3, 4, 6),  // order
        ::testing::Values(64, 333)),    // samples
    [](const auto& param_info) {
      return std::string(kernel_name(std::get<0>(param_info.param))) + "_b" +
             std::to_string(std::get<1>(param_info.param)) + "_k" +
             std::to_string(std::get<2>(param_info.param)) + "_m" +
             std::to_string(std::get<3>(param_info.param));
    });

TEST(KernelScratch, MassConservation) {
  // After accumulation the joint histogram holds total mass m in replica 0.
  const int bins = 10, order = 3;
  const std::size_t m = 200;
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = random_ranks(m, 5);
  const auto ry = random_ranks(m, 6);
  estimator.joint_entropy(rx, ry, scratch, MiKernel::Scalar);
  EXPECT_NEAR(scratch.total_mass(), static_cast<double>(m), 1e-2);
}

TEST(KernelScratch, ReplicatedLeavesMassInFirstReplicaOnly) {
  const int bins = 12, order = 3;
  const std::size_t m = 128;
  const BsplineMi estimator(bins, order, m);
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = random_ranks(m, 5);
  const auto ry = random_ranks(m, 6);
  estimator.joint_entropy(rx, ry, scratch, MiKernel::Replicated);
  double replica0 = 0.0;
  for (int row = 0; row < bins; ++row)
    for (std::size_t c = 0; c < scratch.stride(); ++c)
      replica0 += scratch.row(row, 0)[c];
  EXPECT_NEAR(replica0, static_cast<double>(m), 1e-2);
  EXPECT_NEAR(scratch.total_mass(), static_cast<double>(m), 1e-2);
}

TEST(KernelNames, AreStable) {
  EXPECT_STREQ(kernel_name(MiKernel::Scalar), "scalar");
  EXPECT_STREQ(kernel_name(MiKernel::Unrolled), "unrolled");
  EXPECT_STREQ(kernel_name(MiKernel::Simd), "simd");
  EXPECT_STREQ(kernel_name(MiKernel::Replicated), "replicated");
  EXPECT_STREQ(kernel_name(MiKernel::Auto), "auto");
}

TEST(KernelResolve, AutoPicksReplicatedForSmallOrders) {
  EXPECT_EQ(resolve_kernel(MiKernel::Auto, 3), MiKernel::Replicated);
  EXPECT_EQ(resolve_kernel(MiKernel::Auto, 4), MiKernel::Replicated);
  EXPECT_EQ(resolve_kernel(MiKernel::Auto, 5), MiKernel::Simd);
  EXPECT_EQ(resolve_kernel(MiKernel::Scalar, 3), MiKernel::Scalar);
}

TEST(KernelResolve, Gather512FallsBackWhenUnsupported) {
  // High orders exceed the 4-float weight row the gather kernel packs.
  EXPECT_EQ(resolve_kernel(MiKernel::Gather512, 6), MiKernel::Replicated);
  if (gather512_available()) {
    EXPECT_EQ(resolve_kernel(MiKernel::Gather512, 3), MiKernel::Gather512);
  } else {
    EXPECT_EQ(resolve_kernel(MiKernel::Gather512, 3), MiKernel::Replicated);
  }
}

TEST(KernelGather512, ExactlyMatchesReplicatedUpToSummationOrder) {
  // Both kernels accumulate the same patches into the same replica layout
  // (gather groups of 4 vs round-robin j&3), so per-cell sums agree to
  // float rounding and entropies agree tightly.
  const std::size_t m = 515;  // deliberately not a multiple of 4 (tail path)
  const BsplineMi estimator(12, 3, m);
  JointHistogram scratch = estimator.make_scratch();
  Xoshiro256 rng(3);
  const auto rx = random_permutation(m, rng);
  const auto ry = random_permutation(m, rng);
  const double h_rep =
      estimator.joint_entropy(rx, ry, scratch, MiKernel::Replicated);
  const double h_gather =
      estimator.joint_entropy(rx, ry, scratch, MiKernel::Gather512);
  EXPECT_NEAR(h_rep, h_gather, 1e-5);
}

TEST(KernelContracts, RejectsWrongSampleCount) {
  const BsplineMi estimator(10, 3, 100);
  JointHistogram scratch = estimator.make_scratch();
  const auto rx = random_ranks(50, 1);
  const auto ry = random_ranks(50, 2);
  EXPECT_THROW(estimator.mi(rx, ry, scratch), ContractViolation);
}

}  // namespace
}  // namespace tinge
