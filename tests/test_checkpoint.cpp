// Checkpoint/restart: journal format roundtrips, torn-tail tolerance,
// signature validation, and failure-injected resume of the MI engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/checkpoint.h"
#include "core/mi_engine.h"
#include "data/tsv_io.h"
#include "stats/rng.h"

namespace tinge {
namespace {

class CheckpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tingex_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

RunSignature test_signature() {
  return RunSignature{100, 64, 16, 10, 3, 0.25};
}

TEST_F(CheckpointFixture, RoundtripRecords) {
  const RunSignature signature = test_signature();
  {
    CheckpointWriter writer(path("a.ckpt"), signature);
    const Edge edges1[] = {{0, 1, 0.5f}, {2, 9, 0.75f}};
    writer.append_tile(4, edges1);
    writer.append_tile(7, {});  // a tile can have zero surviving edges
    const Edge edges3[] = {{5, 6, 1.25f}};
    writer.append_tile(2, edges3);
  }
  const CheckpointState state = load_checkpoint(path("a.ckpt"));
  EXPECT_EQ(state.signature, signature);
  EXPECT_FALSE(state.tail_truncated);
  EXPECT_EQ(state.completed_tiles(),
            (std::vector<std::uint64_t>{2, 4, 7}));
  const auto edges = state.all_edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1, 0.5f}));
  EXPECT_EQ(edges[2], (Edge{5, 6, 1.25f}));
}

TEST_F(CheckpointFixture, TornTailIsDiscarded) {
  const RunSignature signature = test_signature();
  {
    CheckpointWriter writer(path("t.ckpt"), signature);
    const Edge edges[] = {{0, 1, 0.5f}};
    writer.append_tile(1, edges);
    writer.append_tile(2, edges);
  }
  // Chop bytes off the final record.
  const auto full = std::filesystem::file_size(path("t.ckpt"));
  std::filesystem::resize_file(path("t.ckpt"), full - 5);
  const CheckpointState state = load_checkpoint(path("t.ckpt"));
  EXPECT_TRUE(state.tail_truncated);
  EXPECT_EQ(state.completed_tiles(), (std::vector<std::uint64_t>{1}));
}

TEST_F(CheckpointFixture, DuplicateTilesKeepFirstRecord) {
  const RunSignature signature = test_signature();
  {
    CheckpointWriter writer(path("d.ckpt"), signature);
    const Edge first[] = {{0, 1, 0.5f}};
    const Edge second[] = {{0, 2, 0.9f}};
    writer.append_tile(3, first);
    writer.append_tile(3, second);  // replay after resume writes again
  }
  const CheckpointState state = load_checkpoint(path("d.ckpt"));
  EXPECT_EQ(state.records.size(), 1u);
  EXPECT_EQ(state.all_edges()[0].v, 1u);
}

TEST_F(CheckpointFixture, TornTailWithGarbageCountDoesNotOverReserve) {
  // A crash can tear the trailing record mid-write, leaving a bogus edge
  // count (e.g. 0xFFFFFFFF) with no payload behind it. The loader must
  // treat it as a torn tail — and must not trust the count enough to
  // pre-allocate gigabytes before discovering the truncation.
  const RunSignature signature = test_signature();
  {
    CheckpointWriter writer(path("g.ckpt"), signature);
    const Edge edges[] = {{0, 1, 0.5f}};
    writer.append_tile(1, edges);
  }
  {
    std::ofstream out(path("g.ckpt"),
                      std::ios::binary | std::ios::app);
    const std::uint64_t tile = 9;
    const std::uint32_t absurd_count = 0xFFFFFFFFu;
    out.write(reinterpret_cast<const char*>(&tile), sizeof(tile));
    out.write(reinterpret_cast<const char*>(&absurd_count),
              sizeof(absurd_count));
    out.write("torn", 4);  // a fraction of the first promised edge
  }
  const CheckpointState state = load_checkpoint(path("g.ckpt"));
  EXPECT_TRUE(state.tail_truncated);
  EXPECT_EQ(state.completed_tiles(), (std::vector<std::uint64_t>{1}));
}

TEST_F(CheckpointFixture, SyncFlushesRecordsToDisk) {
  // sync() (the sweep sink calls it on progress-throttle boundaries) must
  // make everything appended so far durable + loadable while the writer is
  // still open — that is the whole crash-consistency contract.
  const RunSignature signature = test_signature();
  CheckpointWriter writer(path("y.ckpt"), signature);
  const Edge edges[] = {{3, 4, 0.6f}};
  writer.append_tile(11, edges);
  writer.sync();
  const CheckpointState state = load_checkpoint(path("y.ckpt"));
  EXPECT_EQ(state.completed_tiles(), (std::vector<std::uint64_t>{11}));
  EXPECT_FALSE(state.tail_truncated);
  writer.close();
}

TEST_F(CheckpointFixture, RejectsGarbageAndMissingFiles) {
  EXPECT_THROW(load_checkpoint(path("absent.ckpt")), IoError);
  {
    std::ofstream out(path("junk.ckpt"), std::ios::binary);
    out << "this is not a checkpoint at all, not even close";
  }
  EXPECT_THROW(load_checkpoint(path("junk.ckpt")), IoError);
}

TEST_F(CheckpointFixture, SignatureMatching) {
  const RunSignature signature = test_signature();
  { CheckpointWriter writer(path("s.ckpt"), signature); }
  EXPECT_TRUE(checkpoint_matches(path("s.ckpt"), signature));
  RunSignature other = signature;
  other.threshold = 0.5;
  EXPECT_FALSE(checkpoint_matches(path("s.ckpt"), other));
  other = signature;
  other.n_genes = 101;
  EXPECT_FALSE(checkpoint_matches(path("s.ckpt"), other));
  EXPECT_FALSE(checkpoint_matches(path("missing.ckpt"), signature));
}

// ---- engine integration -----------------------------------------------------

class EngineCheckpointFixture : public CheckpointFixture {
 protected:
  static constexpr std::size_t kGenes = 36;
  static constexpr std::size_t kSamples = 96;

  EngineCheckpointFixture()
      : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(77);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix.at(g, s) = static_cast<float>(
            g < 10 ? driver + 0.4 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix);
  }

  TingeConfig config() const {
    TingeConfig c;
    c.tile_size = 6;
    c.threads = 2;
    // Failure injection needs the callback after every tile, not throttled.
    c.progress_tile_interval = 1;
    return c;
  }

  BsplineMi estimator_;
  RankedMatrix ranked_;
};

TEST_F(EngineCheckpointFixture, FreshRunMatchesPlainEngineAndCleansUp) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const double threshold = 0.2;

  const GeneNetwork plain =
      engine.compute_network(threshold, config(), pool);
  EngineStats stats;
  const GeneNetwork checkpointed = engine.compute_network_checkpointed(
      threshold, config(), pool, path("run.ckpt"), &stats);

  ASSERT_EQ(plain.n_edges(), checkpointed.n_edges());
  for (std::size_t i = 0; i < plain.n_edges(); ++i)
    EXPECT_EQ(plain.edges()[i], checkpointed.edges()[i]);
  EXPECT_EQ(stats.pairs_computed, kGenes * (kGenes - 1) / 2);
  EXPECT_FALSE(std::filesystem::exists(path("run.ckpt")))
      << "checkpoint must be removed after success";
}

TEST_F(EngineCheckpointFixture, ResumesAfterInjectedCrash) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const double threshold = 0.2;
  const GeneNetwork expected =
      engine.compute_network(threshold, config(), pool);

  // Crash after 5 tiles.
  struct InjectedCrash : std::runtime_error {
    InjectedCrash() : std::runtime_error("injected") {}
  };
  EXPECT_THROW(engine.compute_network_checkpointed(
                   threshold, config(), pool, path("crash.ckpt"), nullptr,
                   [](std::size_t done, std::size_t) {
                     if (done >= 5) throw InjectedCrash();
                   }),
               InjectedCrash);
  ASSERT_TRUE(std::filesystem::exists(path("crash.ckpt")));
  const CheckpointState partial = load_checkpoint(path("crash.ckpt"));
  EXPECT_GE(partial.completed_tiles().size(), 5u);
  const std::size_t total_tiles = TileSet(kGenes, 6).count();
  EXPECT_LT(partial.completed_tiles().size(), total_tiles);

  // Resume: must recompute only the remainder and agree exactly.
  std::size_t resumed_new_tiles = 0;
  EngineStats stats;
  const GeneNetwork resumed = engine.compute_network_checkpointed(
      threshold, config(), pool, path("crash.ckpt"), &stats,
      [&](std::size_t, std::size_t) { ++resumed_new_tiles; });

  ASSERT_EQ(expected.n_edges(), resumed.n_edges());
  for (std::size_t i = 0; i < expected.n_edges(); ++i)
    EXPECT_EQ(expected.edges()[i], resumed.edges()[i]);
  // pairs_computed covers the full pass; the replayed subset is broken out
  // so resumed and fresh runs report the same totals.
  EXPECT_EQ(stats.pairs_computed, kGenes * (kGenes - 1) / 2);
  EXPECT_GT(stats.pairs_resumed, 0u);
  EXPECT_LT(stats.pairs_resumed, stats.pairs_computed);
  EXPECT_EQ(stats.tiles_resumed, partial.completed_tiles().size());
  EXPECT_EQ(resumed_new_tiles + partial.completed_tiles().size(), total_tiles);
}

TEST_F(EngineCheckpointFixture, RepeatedCrashesEventuallyComplete) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  const double threshold = 0.2;
  const GeneNetwork expected =
      engine.compute_network(threshold, config(), pool);

  // Crash after every 4 new tiles until the run fits in the budget.
  GeneNetwork result;
  int attempts = 0;
  while (true) {
    ++attempts;
    ASSERT_LT(attempts, 50) << "resume is not making progress";
    try {
      std::size_t new_tiles = 0;
      result = engine.compute_network_checkpointed(
          threshold, config(), pool, path("flaky.ckpt"), nullptr,
          [&](std::size_t, std::size_t) {
            if (++new_tiles > 4) throw std::runtime_error("injected");
          });
      break;
    } catch (const std::runtime_error&) {
      continue;
    }
  }
  ASSERT_EQ(expected.n_edges(), result.n_edges());
  for (std::size_t i = 0; i < expected.n_edges(); ++i)
    EXPECT_EQ(expected.edges()[i], result.edges()[i]);
  EXPECT_GT(attempts, 2);
}

TEST_F(EngineCheckpointFixture, MismatchedCheckpointIsIgnored) {
  const MiEngine engine(estimator_, ranked_);
  par::ThreadPool pool(2);
  // A checkpoint from a different threshold must not be resumed from.
  {
    CheckpointWriter writer(path("other.ckpt"),
                            RunSignature{kGenes, kSamples, 6, 10, 3, 0.9});
    const Edge bogus[] = {{0, 1, 99.0f}};
    writer.append_tile(0, bogus);
  }
  const GeneNetwork network = engine.compute_network_checkpointed(
      0.2, config(), pool, path("other.ckpt"));
  const GeneNetwork expected = engine.compute_network(0.2, config(), pool);
  EXPECT_EQ(network.n_edges(), expected.n_edges());
  for (const Edge& e : network.edges()) EXPECT_LT(e.weight, 10.0f);
}

}  // namespace
}  // namespace tinge
