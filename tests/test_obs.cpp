// The observability substrate: metrics registry semantics (monotonic
// counters, race-free concurrent increments, histogram quantiles),
// trace-span nesting, and JSON round-tripping — the pieces the run
// manifest and the golden-run regression test are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace tinge::obs {
namespace {

// ---- counters / gauges ----------------------------------------------------

TEST(Metrics, CounterStartsAtZeroAndIsMonotonic) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  EXPECT_EQ(counter.value(), 1u);
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    counter.add(static_cast<std::uint64_t>(i));
    EXPECT_GE(counter.value(), last);
    last = counter.value();
  }
}

TEST(Metrics, ConcurrentCounterIncrementsAreRaceFree) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  par::ThreadPool pool(kThreads);
  pool.run(kThreads, [&](int /*tid*/, int /*width*/) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
  });
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

// ---- histograms -----------------------------------------------------------

TEST(Metrics, HistogramQuantilesAreNearestRank) {
  Histogram histogram;
  EXPECT_EQ(histogram.quantile(0.5), 0.0);  // empty
  for (int v = 100; v >= 1; --v) histogram.record(v);  // unsorted insert
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum(), 5050.0);
  EXPECT_EQ(histogram.quantile(0.0), 1.0);
  EXPECT_EQ(histogram.quantile(0.5), 50.0);
  EXPECT_EQ(histogram.quantile(0.9), 90.0);
  EXPECT_EQ(histogram.quantile(0.99), 99.0);
  EXPECT_EQ(histogram.quantile(1.0), 100.0);

  const HistogramSummary summary = histogram.summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.min, 1.0);
  EXPECT_EQ(summary.max, 100.0);
  EXPECT_EQ(summary.p50, 50.0);
  EXPECT_EQ(summary.p90, 90.0);
  EXPECT_EQ(summary.p99, 99.0);
}

TEST(Metrics, ConcurrentHistogramRecordsLoseNothing) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  par::ThreadPool pool(kThreads);
  pool.run(kThreads, [&](int tid, int /*width*/) {
    for (int i = 0; i < kPerThread; ++i)
      histogram.record(static_cast<double>(tid));
  });
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.sum(), (0.0 + 1.0 + 2.0 + 3.0) * kPerThread);
}

// ---- registry -------------------------------------------------------------

TEST(Metrics, RegistryGetOrCreateReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(&registry.gauge("x.gauge"), &registry.gauge("x.gauge"));
  EXPECT_EQ(&registry.histogram("x.hist"), &registry.histogram("x.hist"));
}

TEST(Metrics, SnapshotCapturesAllInstruments) {
  MetricsRegistry registry;
  registry.counter("a").add(3);
  registry.gauge("b").set(2.5);
  registry.histogram("c").record(1.0);
  registry.histogram("c").record(3.0);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.count("a"), 1u);
  EXPECT_EQ(snapshot.counters.at("a"), 3u);
  EXPECT_EQ(snapshot.gauges.at("b"), 2.5);
  EXPECT_EQ(snapshot.histograms.at("c").count, 2u);
  EXPECT_EQ(snapshot.histograms.at("c").sum, 4.0);
}

TEST(Metrics, SnapshotDeltaDiffsCountersAndDropsUnmoved) {
  MetricsRegistry registry;
  registry.counter("moved").add(10);
  registry.counter("still").add(5);
  const MetricsSnapshot before = registry.snapshot();
  registry.counter("moved").add(7);
  registry.counter("fresh").add(2);
  registry.gauge("g").set(1.5);
  const MetricsSnapshot after = registry.snapshot();

  const MetricsSnapshot delta = snapshot_delta(before, after);
  EXPECT_EQ(delta.counters.at("moved"), 7u);
  EXPECT_EQ(delta.counters.at("fresh"), 2u);
  EXPECT_EQ(delta.counters.count("still"), 0u);  // unmoved entries dropped
  EXPECT_EQ(delta.gauges.at("g"), 1.5);          // gauges keep `after`
}

// ---- trace spans ----------------------------------------------------------

TEST(Trace, SpansNestIntoTheStageTree) {
  Trace trace;
  {
    const TraceSpan outer(trace, "outer");
    { const TraceSpan inner_a(trace, "inner_a"); }
    { const TraceSpan inner_b(trace, "inner_b"); }
  }
  { const TraceSpan sibling(trace, "sibling"); }
  trace.finish();

  const SpanNode& root = trace.root();
  EXPECT_EQ(root.name, "run");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "outer");
  EXPECT_EQ(root.children[1]->name, "sibling");
  ASSERT_EQ(root.children[0]->children.size(), 2u);
  EXPECT_EQ(root.children[0]->children[0]->name, "inner_a");
  EXPECT_EQ(root.children[0]->children[1]->name, "inner_b");

  // A parent span covers its children.
  const SpanNode& outer = *root.children[0];
  EXPECT_GE(outer.seconds,
            outer.children[0]->seconds + outer.children[1]->seconds);
  EXPECT_GE(root.seconds, outer.seconds);
}

TEST(Trace, FindSpanAndSecondsLookups) {
  Trace trace;
  {
    const TraceSpan a(trace, "alpha");
    { const TraceSpan b(trace, "beta"); }
  }
  trace.finish();
  ASSERT_NE(find_span(trace.root(), "beta"), nullptr);
  EXPECT_EQ(find_span(trace.root(), "beta")->name, "beta");
  EXPECT_EQ(find_span(trace.root(), "missing"), nullptr);
  EXPECT_GE(span_seconds(trace.root(), "alpha"),
            span_seconds(trace.root(), "beta"));
  EXPECT_EQ(span_seconds(trace.root(), "missing"), 0.0);
}

TEST(Trace, FinishIsIdempotentAndCoversLateSpans) {
  Trace trace;
  { const TraceSpan early(trace, "early"); }
  trace.finish();
  const double first = trace.root().seconds;
  { const TraceSpan late(trace, "late"); }
  trace.finish();
  EXPECT_GE(trace.root().seconds, first);
  EXPECT_EQ(trace.root().children.size(), 2u);
}

TEST(Trace, FormatTraceListsEveryStage) {
  Trace trace;
  {
    const TraceSpan outer(trace, "mi_sweep");
    { const TraceSpan inner(trace, "panel"); }
  }
  trace.finish();
  const std::string text = format_trace(trace.root());
  EXPECT_NE(text.find("run"), std::string::npos);
  EXPECT_NE(text.find("mi_sweep"), std::string::npos);
  EXPECT_NE(text.find("panel"), std::string::npos);
  EXPECT_NE(text.find('%'), std::string::npos);
}

// ---- JSON -----------------------------------------------------------------

TEST(Json, DumpParseRoundTripPreservesTheDocument) {
  Json document = Json::object();
  document["int"] = Json(42);
  document["big"] = Json(std::uint64_t{1} << 52);
  document["negative"] = Json(-17);
  document["pi"] = Json(3.141592653589793);
  document["tiny"] = Json(5.0e-324);
  document["flag"] = Json(true);
  document["off"] = Json(false);
  document["nothing"] = Json(nullptr);
  document["text"] = Json("plain");
  document["escapes"] = Json(std::string("quote\" slash\\ tab\t nl\n ctl\x01"));
  Json list = Json::array();
  list.push_back(Json(1));
  list.push_back(Json("two"));
  list.push_back(Json::object());
  document["list"] = std::move(list);

  const Json reparsed = Json::parse(document.dump());
  EXPECT_EQ(reparsed, document);
  EXPECT_EQ(reparsed.at("int").as_int(), 42);
  EXPECT_EQ(reparsed.at("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(reparsed.at("escapes").as_string(),
            "quote\" slash\\ tab\t nl\n ctl\x01");
  EXPECT_EQ(reparsed.at("list").size(), 3u);
}

TEST(Json, InsertionOrderIsStable) {
  Json document = Json::object();
  document["zebra"] = Json(1);
  document["alpha"] = Json(2);
  document["middle"] = Json(3);
  const std::string text = document.dump();
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("middle"));
  // Re-parsing keeps the order too.
  const Json reparsed = Json::parse(text);
  ASSERT_EQ(reparsed.members().size(), 3u);
  EXPECT_EQ(reparsed.members()[0].first, "zebra");
  EXPECT_EQ(reparsed.members()[2].first, "middle");
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, ParseHandlesUnicodeEscapes) {
  const Json parsed = Json::parse("\"a\\u00e9b\\u0041\"");
  EXPECT_EQ(parsed.as_string(), "a\xc3\xa9"
                                "bA");
}

// ---- manifest serialization helpers --------------------------------------

TEST(Manifest, SpanTreeSerializesRecursively) {
  Trace trace;
  {
    const TraceSpan outer(trace, "preprocess");
    { const TraceSpan inner(trace, "impute"); }
  }
  trace.finish();
  const Json json = span_to_json(trace.root());
  EXPECT_EQ(json.at("name").as_string(), "run");
  ASSERT_EQ(json.at("children").size(), 1u);
  const Json& outer = json.at("children").at(0);
  EXPECT_EQ(outer.at("name").as_string(), "preprocess");
  EXPECT_EQ(outer.at("children").at(0).at("name").as_string(), "impute");
  EXPECT_GE(outer.at("seconds").as_double(),
            outer.at("children").at(0).at("seconds").as_double());
}

TEST(Manifest, MetricsSnapshotSerializesAllThreeKinds) {
  MetricsRegistry registry;
  registry.counter("c.events").add(9);
  registry.gauge("g.width").set(8.0);
  registry.histogram("h.seconds").record(0.25);

  const Json json = metrics_to_json(registry.snapshot());
  EXPECT_EQ(json.at("counters").at("c.events").as_int(), 9);
  EXPECT_EQ(json.at("gauges").at("g.width").as_double(), 8.0);
  EXPECT_EQ(json.at("histograms").at("h.seconds").at("count").as_int(), 1);
  EXPECT_EQ(json.at("histograms").at("h.seconds").at("max").as_double(), 0.25);
}

TEST(Metrics, SnapshotIsSafeAgainstConcurrentWriters) {
  // The serve daemon snapshots the registry per metrics query and per
  // sweep-progress event while every handler thread is still recording.
  // Writers deliberately hammer the *same* instrument names so the
  // get-or-create path races with enumeration; under TSan this is the
  // regression test for snapshot synchronization.
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kIterations = 2000;
  std::atomic<int> running{kWriters};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&registry, &running, w] {
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        registry.counter("race.count").add();
        registry.gauge("race.level").set(static_cast<double>(w));
        registry.histogram("race.seconds")
            .record(static_cast<double>(i) * 1e-6);
      }
      running.fetch_sub(1);
    });
  while (running.load() > 0) {
    const MetricsSnapshot snap = registry.snapshot();
    // A torn read would show a counter above the final total.
    const auto it = snap.counters.find("race.count");
    if (it != snap.counters.end()) {
      EXPECT_LE(it->second, kWriters * kIterations);
    }
  }
  for (std::thread& writer : writers) writer.join();
  const MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counters.at("race.count"), kWriters * kIterations);
  EXPECT_EQ(final_snap.histograms.at("race.seconds").count,
            kWriters * kIterations);
}

TEST(Manifest, JsonFileRoundTrip) {
  Json document = Json::object();
  document["key"] = Json("value");
  const std::string path = testing::TempDir() + "tingex_obs_roundtrip.json";
  write_json_file(document, path);
  EXPECT_EQ(read_json_file(path), document);
  std::remove(path.c_str());
  EXPECT_THROW(read_json_file(path), std::runtime_error);
}

}  // namespace
}  // namespace tinge::obs
