// Shared weight table invariants: per-rank weights are a valid local
// partition of unity, bins stay in range, marginal entropy behaves, and the
// table agrees with direct basis evaluation for every rank.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mi/weight_table.h"
#include "preprocess/rank_transform.h"

namespace tinge {
namespace {

class WeightTableProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WeightTableProperty, RowsSumToOneAndStayInRange) {
  const auto [bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineBasis basis(bins, order);
  const WeightTable table(m, basis);

  EXPECT_EQ(table.n_samples(), m);
  EXPECT_EQ(table.bins(), bins);
  EXPECT_EQ(table.order(), order);
  EXPECT_GE(table.weight_stride(), static_cast<std::size_t>(order));
  EXPECT_EQ(table.weight_stride() % 4, 0u);

  for (std::size_t r = 0; r < m; ++r) {
    const auto weights = table.weights(r);
    float sum = 0.0f;
    for (int c = 0; c < order; ++c) {
      EXPECT_GE(weights[static_cast<std::size_t>(c)], -1e-6f);
      sum += weights[static_cast<std::size_t>(c)];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "rank " << r;
    // Padding beyond `order` must be zero (kernels load it blindly).
    for (std::size_t c = static_cast<std::size_t>(order);
         c < table.weight_stride(); ++c)
      EXPECT_EQ(weights[c], 0.0f);
    const std::int32_t first = table.first_bin(r);
    EXPECT_GE(first, 0);
    EXPECT_LE(first + order, bins);
  }
}

TEST_P(WeightTableProperty, MatchesDirectBasisEvaluation) {
  const auto [bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineBasis basis(bins, order);
  const WeightTable table(m, basis);
  float direct[BsplineBasis::kMaxOrder];
  for (std::size_t r = 0; r < m; ++r) {
    const int first =
        basis.evaluate(rank_to_unit(static_cast<float>(r), m), direct);
    EXPECT_EQ(table.first_bin(r), first);
    const auto weights = table.weights(r);
    for (int c = 0; c < order; ++c)
      EXPECT_EQ(weights[static_cast<std::size_t>(c)], direct[c]);
  }
}

TEST_P(WeightTableProperty, MarginalEntropyBounded) {
  const auto [bins, order, m_int] = GetParam();
  const auto m = static_cast<std::size_t>(m_int);
  const BsplineBasis basis(bins, order);
  const WeightTable table(m, basis);
  // 0 < H <= log(bins); ranks spread uniformly, so H is near log(bins)
  // whenever m >> bins.
  EXPECT_GT(table.marginal_entropy(), 0.0);
  EXPECT_LE(table.marginal_entropy(), std::log(static_cast<double>(bins)) + 1e-9);
  if (m >= static_cast<std::size_t>(20 * bins)) {
    EXPECT_GT(table.marginal_entropy(),
              0.9 * std::log(static_cast<double>(bins)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WeightTableProperty,
    ::testing::Values(std::make_tuple(10, 3, 2), std::make_tuple(10, 3, 10),
                      std::make_tuple(10, 3, 1000),
                      std::make_tuple(16, 1, 64), std::make_tuple(16, 4, 64),
                      std::make_tuple(27, 4, 512), std::make_tuple(8, 8, 97),
                      std::make_tuple(30, 6, 313)),
    [](const auto& param_info) {
      return "b" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param)) + "_m" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(WeightTable, MoreBinsMoreMarginalEntropy) {
  const std::size_t m = 1000;
  double previous = 0.0;
  for (const int bins : {5, 10, 20}) {
    const BsplineBasis basis(bins, 3);
    const WeightTable table(m, basis);
    EXPECT_GT(table.marginal_entropy(), previous);
    previous = table.marginal_entropy();
  }
}

TEST(WeightTable, RejectsDegenerateSampleCount) {
  const BsplineBasis basis(10, 3);
  EXPECT_THROW(WeightTable(1, basis), ContractViolation);
  EXPECT_THROW(WeightTable(0, basis), ContractViolation);
}

}  // namespace
}  // namespace tinge
