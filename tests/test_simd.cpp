// SIMD substrate: every wrapper type must agree with scalar semantics, and
// the vectorized log/entropy paths must match libm within estimator noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "simd/feature.h"
#include "simd/math.h"
#include "simd/simd.h"
#include "stats/rng.h"
#include "util/aligned.h"

namespace tinge {
namespace {

template <typename V>
class SimdOps : public ::testing::Test {};

using VectorTypes =
    ::testing::Types<simd::F32x4, simd::F32x8, simd::F32x16,
                     simd::ScalarF32<4>, simd::ScalarF32<8>,
                     simd::ScalarF32<16>>;
TYPED_TEST_SUITE(SimdOps, VectorTypes);

TYPED_TEST(SimdOps, BroadcastAndStore) {
  using V = TypeParam;
  float out[V::width];
  V::broadcast(3.25f).storeu(out);
  for (int i = 0; i < V::width; ++i) EXPECT_FLOAT_EQ(out[i], 3.25f);
}

TYPED_TEST(SimdOps, ZeroIsZero) {
  using V = TypeParam;
  float out[V::width];
  V::zero().storeu(out);
  for (int i = 0; i < V::width; ++i) EXPECT_FLOAT_EQ(out[i], 0.0f);
}

TYPED_TEST(SimdOps, LoadAddMulStoreRoundtrip) {
  using V = TypeParam;
  float a[V::width], b[V::width], out[V::width];
  for (int i = 0; i < V::width; ++i) {
    a[i] = static_cast<float>(i) + 0.5f;
    b[i] = 2.0f - static_cast<float>(i) * 0.25f;
  }
  (V::loadu(a) + V::loadu(b)).storeu(out);
  for (int i = 0; i < V::width; ++i) EXPECT_FLOAT_EQ(out[i], a[i] + b[i]);
  (V::loadu(a) * V::loadu(b)).storeu(out);
  for (int i = 0; i < V::width; ++i) EXPECT_FLOAT_EQ(out[i], a[i] * b[i]);
  (V::loadu(a) - V::loadu(b)).storeu(out);
  for (int i = 0; i < V::width; ++i) EXPECT_FLOAT_EQ(out[i], a[i] - b[i]);
}

TYPED_TEST(SimdOps, FmaddMatchesScalar) {
  using V = TypeParam;
  float a[V::width], b[V::width], c[V::width], out[V::width];
  for (int i = 0; i < V::width; ++i) {
    a[i] = 0.1f * static_cast<float>(i + 1);
    b[i] = 1.0f - 0.05f * static_cast<float>(i);
    c[i] = static_cast<float>(i);
  }
  V::fmadd(V::loadu(a), V::loadu(b), V::loadu(c)).storeu(out);
  for (int i = 0; i < V::width; ++i)
    EXPECT_NEAR(out[i], a[i] * b[i] + c[i], 1e-6f);
}

TYPED_TEST(SimdOps, ReduceAdd) {
  using V = TypeParam;
  float a[V::width];
  float expected = 0.0f;
  for (int i = 0; i < V::width; ++i) {
    a[i] = static_cast<float>(i) * 0.75f - 1.0f;
    expected += a[i];
  }
  EXPECT_NEAR(V::loadu(a).reduce_add(), expected, 1e-5f);
}

TYPED_TEST(SimdOps, AlignedLoadStore) {
  using V = TypeParam;
  AlignedBuffer<float> buf(static_cast<std::size_t>(V::width) * 2);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<float>(i);
  const V v = V::load(buf.data());
  v.store(buf.data() + V::width);
  for (int i = 0; i < V::width; ++i)
    EXPECT_FLOAT_EQ(buf[static_cast<std::size_t>(V::width + i)],
                    static_cast<float>(i));
}

TYPED_TEST(SimdOps, LogPositiveMatchesLibm) {
  using V = TypeParam;
  const float probes[] = {1e-30f, 1e-12f, 1e-6f, 0.001f, 0.09f, 0.5f,
                          0.9999f, 1.0f,  1.5f,  2.0f,   777.0f, 3e8f};
  for (const float x : probes) {
    float in[V::width], out[V::width];
    for (int i = 0; i < V::width; ++i)
      in[i] = x * (1.0f + 0.01f * static_cast<float>(i));
    log_positive(V::loadu(in)).storeu(out);
    for (int i = 0; i < V::width; ++i) {
      const float expected = std::log(in[i]);
      EXPECT_NEAR(out[i], expected, std::abs(expected) * 3e-6f + 3e-6f)
          << "x=" << in[i];
    }
  }
}

TYPED_TEST(SimdOps, NegXlogxHandlesZeroAndNegatives) {
  using V = TypeParam;
  float in[V::width], out[V::width];
  for (int i = 0; i < V::width; ++i) in[i] = 0.0f;
  in[0] = 0.5f;                       // -0.5*log(0.5) = 0.3466
  if (V::width > 1) in[1] = -0.25f;   // negative -> 0 by convention
  if (V::width > 2) in[2] = 1.0f;     // -1*log(1) = 0
  neg_xlogx(V::loadu(in)).storeu(out);
  EXPECT_NEAR(out[0], 0.34657359f, 1e-6f);
  if (V::width > 1) EXPECT_FLOAT_EQ(out[1], 0.0f);
  if (V::width > 2) EXPECT_NEAR(out[2], 0.0f, 1e-7f);
  for (int i = 3; i < V::width; ++i) EXPECT_FLOAT_EQ(out[i], 0.0f);
}

TEST(SimdMath, EntropySumMatchesScalarReference) {
  for (const std::size_t count : {1u, 7u, 16u, 33u, 100u, 257u}) {
    std::vector<float> p(count);
    double expected = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      p[i] = (i % 5 == 0) ? 0.0f
                          : static_cast<float>(i + 1) /
                                static_cast<float>(count * count);
      if (p[i] > 0.0f)
        expected -= static_cast<double>(p[i]) * std::log(static_cast<double>(p[i]));
    }
    EXPECT_NEAR(simd::entropy_sum(p.data(), count), expected, 1e-5)
        << "count=" << count;
  }
}

TEST(SimdMath, EntropySumOfUniformDistribution) {
  // -sum (1/n) log(1/n) = log n.
  const std::size_t n = 64;
  std::vector<float> p(n, 1.0f / static_cast<float>(n));
  EXPECT_NEAR(simd::entropy_sum(p.data(), n), std::log(static_cast<double>(n)),
              1e-5);
}

TEST(SimdFeature, ReportMentionsCompiledIsa) {
  const std::string report = simd::isa_report();
  EXPECT_NE(report.find(simd::kNativeIsa), std::string::npos);
  EXPECT_NE(report.find("lanes"), std::string::npos);
}

TEST(SimdFeature, RuntimeDetectionConsistentWithBuild) {
  const auto features = simd::detect_cpu_features();
#if defined(__AVX512F__)
  EXPECT_TRUE(features.avx512f) << "binary compiled for AVX-512 on a non-AVX-512 CPU";
#endif
#if defined(__AVX2__)
  EXPECT_TRUE(features.avx2);
#endif
#if defined(__SSE2__)
  EXPECT_TRUE(features.sse2);
#endif
}

TEST(SimdConfig, NativeWidthIsPowerOfTwo) {
  EXPECT_GT(simd::kNativeFloatWidth, 0);
  EXPECT_EQ(simd::kNativeFloatWidth & (simd::kNativeFloatWidth - 1), 0);
}


// ---- parameterized log-accuracy sweep over exponent decades -----------------

class LogAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(LogAccuracy, NativeVectorLogWithinToleranceAcrossDecade) {
  using V = simd::NativeF32;
  const int decade = GetParam();
  const float base = std::pow(10.0f, static_cast<float>(decade));
  float in[V::width], out[V::width];
  // 64 probes spread across the decade.
  for (int probe = 0; probe < 64; probe += V::width) {
    for (int i = 0; i < V::width; ++i) {
      const float frac =
          static_cast<float>(probe + i) / 64.0f * 9.0f + 1.0f;  // [1, 10)
      in[i] = base * frac;
    }
    log_positive(V::loadu(in)).storeu(out);
    for (int i = 0; i < V::width; ++i) {
      const float expected = std::log(in[i]);
      EXPECT_NEAR(out[i], expected, std::fabs(expected) * 4e-6f + 4e-6f)
          << "x=" << in[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Decades, LogAccuracy,
                         ::testing::Values(-30, -20, -10, -4, -1, 0, 1, 4, 10,
                                           20, 30),
                         [](const auto& param_info) {
                           const int d = param_info.param;
                           return d < 0 ? "em" + std::to_string(-d)
                                        : "e" + std::to_string(d);
                         });

TEST(SimdMath, EntropySumInvariantUnderPermutation) {
  // The histogram entropy must not depend on cell order (up to float
  // reassociation; tolerance covers it).
  std::vector<float> p(128);
  Xoshiro256 rng(3);
  float total = 0.0f;
  for (auto& v : p) {
    v = rng.uniformf();
    total += v;
  }
  for (auto& v : p) v /= total;
  const double forward = simd::entropy_sum(p.data(), p.size());
  std::reverse(p.begin(), p.end());
  const double backward = simd::entropy_sum(p.data(), p.size());
  EXPECT_NEAR(forward, backward, 1e-5);
}

}  // namespace
}  // namespace tinge
