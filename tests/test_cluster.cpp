// Cluster baseline: the message-passing substrate and the distributed
// ring all-pairs MI driver, validated against the single-chip engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "cluster/inproc_transport.h"
#include "cluster/ring_mi.h"
#include "cluster/sharded_pipeline.h"
#include "core/mi_engine.h"
#include "core/network_builder.h"
#include "stats/rng.h"
#include "synth/expression.h"

namespace tinge::cluster {
namespace {

// ---- transport -----------------------------------------------------------------

TEST(Comm, PointToPointRoundtrip) {
  InProcessCluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> payload{1, 2, 3};
      comm.send_vector(1, payload, 7);
      const auto reply = comm.recv_vector<int>(1, 8);
      EXPECT_EQ(reply, (std::vector<int>{4, 5}));
    } else {
      const auto received = comm.recv_vector<int>(0, 7);
      EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
      comm.send_vector(0, std::vector<int>{4, 5}, 8);
    }
  });
  EXPECT_EQ(cluster.messages_sent(), 2u);
  EXPECT_EQ(cluster.bytes_transferred(), 3 * sizeof(int) + 2 * sizeof(int));
}

TEST(Comm, TagAndSourceMatching) {
  // Messages delivered out of interest order must still match correctly.
  InProcessCluster cluster(3);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const auto from2 = comm.recv_vector<int>(2, 5);   // sent "late"
      const auto from1 = comm.recv_vector<int>(1, 5);
      EXPECT_EQ(from1.at(0), 111);
      EXPECT_EQ(from2.at(0), 222);
      const auto tagged = comm.recv_vector<int>(1, 9);
      EXPECT_EQ(tagged.at(0), 999);
    } else if (comm.rank() == 1) {
      comm.send_vector(0, std::vector<int>{999}, 9);  // different tag first
      comm.send_vector(0, std::vector<int>{111}, 5);
    } else {
      comm.send_vector(0, std::vector<int>{222}, 5);
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  InProcessCluster cluster(4);
  std::atomic<int> counter{0};
  std::atomic<bool> torn{false};
  cluster.run([&](Comm& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      ++counter;
      comm.barrier();
      if (counter.load() < 4 * (phase + 1)) torn = true;
      comm.barrier();
    }
  });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(counter.load(), 40);
}

TEST(Comm, EmptyMessages) {
  InProcessCluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, nullptr, 0, 1);
    } else {
      EXPECT_TRUE(comm.recv(0, 1).empty());
    }
  });
}

TEST(Comm, ExceptionInOneRankPropagates) {
  InProcessCluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("rank boom");
               }),
               std::runtime_error);
}

TEST(Comm, SingleRankClusterWorks) {
  InProcessCluster cluster(1);
  int visits = 0;
  cluster.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

// ---- ownership rule ---------------------------------------------------------------

TEST(BlockPairOwner, EveryPairOwnedExactlyOnceAndBalanced) {
  for (const int p : {2, 3, 4, 5, 8, 9}) {
    std::vector<int> owned(static_cast<std::size_t>(p), 0);
    for (int a = 0; a < p; ++a) {
      for (int b = a; b < p; ++b) {
        const int owner = block_pair_owner(a, b, p);
        EXPECT_TRUE(owner == a || owner == b);
        ++owned[static_cast<std::size_t>(owner)];
      }
    }
    const int total = std::accumulate(owned.begin(), owned.end(), 0);
    EXPECT_EQ(total, p * (p + 1) / 2);
    const auto [lo, hi] = std::minmax_element(owned.begin(), owned.end());
    EXPECT_LE(*hi - *lo, 1) << "p=" << p;  // classic rule balances to +-1
  }
}

// ---- distributed driver -------------------------------------------------------------

class RingMiFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 30;
  static constexpr std::size_t kSamples = 64;

  RingMiFixture() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(99);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g) {
        matrix.at(g, s) = static_cast<float>(
            g < 8 ? driver + 0.5 * rng.normal() : rng.normal());
      }
    }
    ranked_ = RankedMatrix(matrix);
  }

  GeneNetwork single_chip(double threshold) const {
    const MiEngine engine(estimator_, ranked_);
    par::ThreadPool pool(1);
    TingeConfig config;
    config.threads = 1;
    return engine.compute_network(threshold, config, pool);
  }

  BsplineMi estimator_;
  BsplineStat statistic_{estimator_};
  RankedMatrix ranked_;
};

TEST_F(RingMiFixture, MatchesSingleChipEngineForEveryRankCount) {
  const double threshold = 0.2;
  const GeneNetwork expected = single_chip(threshold);
  ASSERT_GT(expected.n_edges(), 0u);
  TingeConfig config;
  for (const int ranks : {1, 2, 3, 4, 7}) {
    ClusterStats stats;
    const GeneNetwork distributed = cluster_compute_network(
        statistic_, ranked_, threshold, ranks, config, &stats);
    ASSERT_EQ(distributed.n_edges(), expected.n_edges()) << ranks << " ranks";
    for (std::size_t i = 0; i < expected.n_edges(); ++i) {
      EXPECT_EQ(distributed.edges()[i].u, expected.edges()[i].u);
      EXPECT_EQ(distributed.edges()[i].v, expected.edges()[i].v);
      EXPECT_EQ(distributed.edges()[i].weight, expected.edges()[i].weight);
    }
    EXPECT_EQ(stats.pairs_total, kGenes * (kGenes - 1) / 2);
    EXPECT_EQ(stats.ranks, ranks);
  }
}

TEST_F(RingMiFixture, SingleRankMovesNoBlockData) {
  TingeConfig config;
  ClusterStats stats;
  cluster_compute_network(statistic_, ranked_, 0.2, 1, config, &stats);
  EXPECT_EQ(stats.bytes_transferred, 0u);  // no ring, results stay on rank 0
}

TEST_F(RingMiFixture, CommunicationGrowsWithRankCount) {
  TingeConfig config;
  ClusterStats stats2, stats4;
  cluster_compute_network(statistic_, ranked_, 0.2, 2, config, &stats2);
  cluster_compute_network(statistic_, ranked_, 0.2, 4, config, &stats4);
  EXPECT_GT(stats2.bytes_transferred, 0u);
  // Ring volume ~ (P-1) * n * m * 4 bytes: quadruples 2 -> 4... at least grows.
  EXPECT_GT(stats4.bytes_transferred, stats2.bytes_transferred);
  EXPECT_GT(stats4.messages, stats4.ranks - 1u);
}

TEST_F(RingMiFixture, LoadIsReasonablyBalanced) {
  TingeConfig config;
  ClusterStats stats;
  cluster_compute_network(statistic_, ranked_, 0.2, 5, config, &stats);
  ASSERT_EQ(stats.pairs_per_rank.size(), 5u);
  EXPECT_LT(stats.imbalance(), 2.5);  // small blocks: diagonal skew allowed
}

TEST_F(RingMiFixture, MoreRanksThanGenesStillCorrect) {
  ExpressionMatrix tiny(3, 64);
  Xoshiro256 rng(5);
  for (std::size_t g = 0; g < 3; ++g)
    for (std::size_t s = 0; s < 64; ++s)
      tiny.at(g, s) = static_cast<float>(rng.normal());
  const RankedMatrix ranked(tiny);
  TingeConfig config;
  ClusterStats stats;
  const GeneNetwork network = cluster_compute_network(
      statistic_, ranked, -1.0, 6, config, &stats);
  EXPECT_EQ(network.n_edges(), 3u);  // all pairs kept at threshold < 0
  EXPECT_EQ(stats.pairs_total, 3u);
}

TEST_F(RingMiFixture, TcpTransportMatchesSingleChipEngine) {
  const double threshold = 0.2;
  const GeneNetwork expected = single_chip(threshold);
  ASSERT_GT(expected.n_edges(), 0u);
  TingeConfig config;
  for (const int ranks : {2, 4}) {
    ClusterStats stats;
    const GeneNetwork distributed =
        cluster_compute_network(statistic_, ranked_, threshold, ranks, config,
                                &stats, TransportKind::Tcp);
    ASSERT_EQ(distributed.n_edges(), expected.n_edges()) << ranks << " ranks";
    for (std::size_t i = 0; i < expected.n_edges(); ++i) {
      EXPECT_EQ(distributed.edges()[i].u, expected.edges()[i].u);
      EXPECT_EQ(distributed.edges()[i].v, expected.edges()[i].v);
      EXPECT_EQ(distributed.edges()[i].weight, expected.edges()[i].weight);
    }
    EXPECT_EQ(stats.transport, "tcp");
    EXPECT_GT(stats.bytes_transferred, 0u);
    ASSERT_EQ(stats.bytes_per_rank.size(), static_cast<std::size_t>(ranks));
  }
}

// ---- sharded full pipeline ---------------------------------------------------

TEST(ShardedPipeline, MatchesSingleProcessBuilderOnBothTransports) {
  GrnParams grn;
  grn.n_genes = 40;
  ExpressionParams arrays;
  arrays.n_samples = 64;
  const ExpressionMatrix expression =
      simulate_expression(generate_grn(grn), arrays);

  TingeConfig config;
  config.permutations = 200;
  config.alpha = 0.01;
  config.threads = 1;
  NetworkBuilder builder(config);
  const BuildResult expected = builder.build(expression);
  ASSERT_GT(expected.network.n_edges(), 0u);

  for (const TransportKind kind :
       {TransportKind::InProcess, TransportKind::Tcp}) {
    const auto cluster = make_cluster(kind, 3);
    ShardedBuildResult result;
    cluster->run([&](Comm& comm) {
      ShardedBuildResult local = sharded_build(comm, expression, config);
      if (comm.rank() == 0) result = std::move(local);
    });
    EXPECT_EQ(result.threshold, expected.threshold);
    EXPECT_EQ(result.marginal_entropy, expected.marginal_entropy);
    EXPECT_EQ(result.genes_used, expected.genes_used);
    ASSERT_EQ(result.network.n_edges(), expected.network.n_edges())
        << transport_kind_name(kind);
    for (std::size_t i = 0; i < expected.network.n_edges(); ++i) {
      EXPECT_EQ(result.network.edges()[i].u, expected.network.edges()[i].u);
      EXPECT_EQ(result.network.edges()[i].v, expected.network.edges()[i].v);
      EXPECT_EQ(result.network.edges()[i].weight,
                expected.network.edges()[i].weight);
    }
    EXPECT_EQ(result.cluster.ranks, 3);
    EXPECT_EQ(result.cluster.transport, transport_kind_name(kind));
    EXPECT_GT(result.cluster.bytes_transferred, 0u);
    ASSERT_EQ(result.cluster.bytes_per_rank.size(), 3u);
    EXPECT_EQ(result.pairs_total,
              expected.genes_used * (expected.genes_used - 1) / 2);

    // The manifest section carries the traffic accounting.
    const obs::Json manifest = make_cluster_run_manifest(result, config);
    const std::string document = manifest.dump();
    EXPECT_NE(document.find("\"cluster\""), std::string::npos);
    EXPECT_NE(document.find("\"bytes_per_rank\""), std::string::npos);
    EXPECT_NE(document.find("\"imbalance\""), std::string::npos);
  }
}

TEST(ShardedPipeline, FailureManifestAttributesTheFirstFailedRank) {
  TingeConfig config;
  config.cluster_ranks = 3;
  config.cluster_transport = "tcp";
  std::vector<WorkerExit> exits(3);
  exits[0] = {/*rank=*/0, /*exit_code=*/143, /*reap_order=*/2};
  exits[1] = {/*rank=*/1, /*exit_code=*/40, /*reap_order=*/0};
  exits[2] = {/*rank=*/2, /*exit_code=*/kWorkerExitPeerFailure,
              /*reap_order=*/1};
  const obs::Json manifest = make_cluster_failure_manifest(
      config, exits, "tinge_cli --synthetic=60 --cluster=3");
  const std::string document = manifest.dump();
  EXPECT_NE(document.find("\"status\": \"failed\""), std::string::npos)
      << document;
  EXPECT_NE(document.find("\"first_failed_rank\": 1"), std::string::npos)
      << document;
  EXPECT_NE(document.find("exited with code 40"), std::string::npos);
  EXPECT_NE(document.find("peer failure"), std::string::npos);
  EXPECT_NE(document.find("\"resume_command\""), std::string::npos);

  // No resume command -> the key is omitted, not emitted empty.
  const obs::Json bare = make_cluster_failure_manifest(config, exits, "");
  EXPECT_EQ(bare.dump().find("resume_command"), std::string::npos);
}

}  // namespace
}  // namespace tinge::cluster
