// Golden-run regression: one pinned pipeline configuration whose manifest
// must keep its shape. Guards the manifest schema (stage-tree names and
// order, resolved kernel/panel fields, scheduler accounting) and pins the
// run's own numbers — edge count, threshold, pair totals — to the values
// the in-memory BuildResult reports, plus exact determinism across reruns.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "core/network_builder.h"
#include "core/run_manifest.h"
#include "obs/manifest.h"
#include "synth/expression.h"

namespace tinge {
namespace {

SyntheticDataset golden_dataset() {
  GrnParams grn;
  grn.n_genes = 48;
  grn.mean_regulators = 1.5;
  grn.seed = 77;
  ExpressionParams expr;
  expr.n_samples = 200;
  expr.noise_sd = 1.0;
  expr.seed = 78;
  return make_synthetic_dataset(grn, expr);
}

// Everything that could float is pinned: the scalar kernel (no ISA
// dispatch), an explicit panel width, a fixed thread count and seed.
TingeConfig golden_config() {
  TingeConfig config;
  config.permutations = 500;
  config.alpha = 1e-2;
  config.threads = 2;
  config.tile_size = 16;
  config.kernel = MiKernel::Scalar;
  config.panel_width = 2;
  config.apply_dpi = true;
  config.dpi_tolerance = 0.15;
  return config;
}

BuildResult golden_build() {
  return NetworkBuilder(golden_config()).build(golden_dataset().expression);
}

class GoldenRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new BuildResult(golden_build());
    manifest_ = new obs::Json(make_run_manifest(*result_, golden_config()));
  }
  static void TearDownTestSuite() {
    delete manifest_;
    manifest_ = nullptr;
    delete result_;
    result_ = nullptr;
  }

  static BuildResult* result_;
  static obs::Json* manifest_;
};

BuildResult* GoldenRun::result_ = nullptr;
obs::Json* GoldenRun::manifest_ = nullptr;

TEST_F(GoldenRun, SchemaVersionAndConfigEcho) {
  const obs::Json& manifest = *manifest_;
  EXPECT_EQ(manifest.at("schema_version").as_int(), kManifestSchemaVersion);
  EXPECT_EQ(manifest.at("tool").as_string(), "tingex");
  const obs::Json& config = manifest.at("config");
  EXPECT_EQ(config.at("bins").as_int(), 10);
  EXPECT_EQ(config.at("spline_order").as_int(), 3);
  EXPECT_EQ(config.at("alpha").as_double(), 1e-2);
  EXPECT_EQ(config.at("permutations").as_int(), 500);
  EXPECT_EQ(config.at("threads").as_int(), 2);
  EXPECT_EQ(config.at("tile_size").as_int(), 16);
  EXPECT_EQ(config.at("kernel").as_string(), "scalar");
  EXPECT_EQ(config.at("schedule").as_string(), "dynamic");
  EXPECT_EQ(config.at("panel_width").as_int(), 2);
  // Memory-side knobs echo their configured (not resolved) values.
  EXPECT_EQ(config.at("stage_ranks").as_bool(), true);
  EXPECT_EQ(config.at("packed_table").as_string(), "auto");
  EXPECT_EQ(config.at("prefetch").as_string(), "auto");
  EXPECT_EQ(config.at("numa").as_string(), "auto");
  EXPECT_EQ(config.at("seed").as_int(), 20140519);
  EXPECT_EQ(config.at("apply_dpi").as_bool(), true);
}

TEST_F(GoldenRun, ResolvedKernelAndPanelArePinned) {
  const obs::Json& resolved = manifest_->at("resolved");
  EXPECT_EQ(resolved.at("kernel").as_string(), "scalar");
  EXPECT_EQ(resolved.at("panel_width").as_int(), 2);
}

TEST_F(GoldenRun, StageTreeShapeIsPinned) {
  const obs::Json& stages = manifest_->at("stages");
  EXPECT_EQ(stages.at("name").as_string(), "run");
  const obs::Json& children = stages.at("children");
  // The pipeline-truth stage order, dpi included (golden config enables it).
  ASSERT_EQ(children.size(), 6u);
  EXPECT_EQ(children.at(0).at("name").as_string(), "preprocess");
  EXPECT_EQ(children.at(1).at("name").as_string(), "weight_table");
  EXPECT_EQ(children.at(2).at("name").as_string(), "null");
  EXPECT_EQ(children.at(3).at("name").as_string(), "threshold");
  EXPECT_EQ(children.at(4).at("name").as_string(), "mi_sweep");
  EXPECT_EQ(children.at(5).at("name").as_string(), "dpi");

  const obs::Json& preprocess = children.at(0).at("children");
  ASSERT_EQ(preprocess.size(), 3u);
  EXPECT_EQ(preprocess.at(0).at("name").as_string(), "impute");
  EXPECT_EQ(preprocess.at(1).at("name").as_string(), "filter");
  EXPECT_EQ(preprocess.at(2).at("name").as_string(), "rank");

  // Every stage carries a non-negative wall time bounded by the root.
  const double total = stages.at("seconds").as_double();
  for (const obs::Json& stage : children.elements()) {
    EXPECT_GE(stage.at("seconds").as_double(), 0.0);
    EXPECT_LE(stage.at("seconds").as_double(), total);
  }
}

TEST_F(GoldenRun, ResultSectionMatchesTheInMemoryRun) {
  const obs::Json& section = manifest_->at("result");
  EXPECT_EQ(static_cast<std::size_t>(section.at("edges").as_int()),
            result_->network.n_edges());
  EXPECT_EQ(section.at("threshold").as_double(), result_->threshold);
  EXPECT_EQ(section.at("marginal_entropy").as_double(),
            result_->marginal_entropy);
  EXPECT_EQ(static_cast<std::size_t>(section.at("pairs_computed").as_int()),
            result_->engine.pairs_computed);
  EXPECT_GT(result_->network.n_edges(), 0u);

  const obs::Json& dataset = manifest_->at("dataset");
  EXPECT_EQ(dataset.at("genes_in").as_int(), 48);
  EXPECT_EQ(dataset.at("genes_used").as_int(), 48);
  EXPECT_EQ(dataset.at("samples").as_int(), 200);
}

TEST_F(GoldenRun, EngineSectionCarriesSchedulerAccounting) {
  const obs::Json& engine = manifest_->at("engine");
  EXPECT_EQ(engine.at("kernel").as_string(), "scalar");
  EXPECT_EQ(engine.at("panel_width").as_int(), 2);
  EXPECT_EQ(static_cast<std::size_t>(engine.at("pairs_computed").as_int()),
            std::size_t{48} * 47 / 2);
  EXPECT_EQ(engine.at("pairs_resumed").as_int(), 0);
  EXPECT_EQ(engine.at("tiles_resumed").as_int(), 0);
  EXPECT_EQ(engine.at("tiles").as_int(), 6);  // 48/16 = 3 -> 3*4/2 tiles
  EXPECT_GT(engine.at("panels_swept").as_int(), 0);
  const double fill = engine.at("panel_fill_ratio").as_double();
  EXPECT_GT(fill, 0.0);
  EXPECT_LE(fill, 1.0);

  // Per-context scheduler outcome: one slot per pool context, and the
  // slots account for every tile and every pair of the pass.
  const obs::Json& tiles = engine.at("tiles_per_thread");
  const obs::Json& pairs = engine.at("pairs_per_thread");
  ASSERT_EQ(tiles.size(), 2u);
  ASSERT_EQ(pairs.size(), 2u);
  std::int64_t tile_sum = 0, pair_sum = 0;
  for (const obs::Json& v : tiles.elements()) tile_sum += v.as_int();
  for (const obs::Json& v : pairs.elements()) pair_sum += v.as_int();
  EXPECT_EQ(tile_sum, engine.at("tiles").as_int());
  EXPECT_EQ(pair_sum, engine.at("pairs_computed").as_int());
}

TEST_F(GoldenRun, PoolSectionAccountsEveryWorker) {
  const obs::Json& pool = manifest_->at("pool");
  EXPECT_GT(pool.at("lifetime_seconds").as_double(), 0.0);
  const obs::Json& workers = pool.at("workers");
  ASSERT_EQ(workers.size(), 2u);
  for (std::size_t tid = 0; tid < workers.size(); ++tid) {
    const obs::Json& worker = workers.at(tid);
    EXPECT_EQ(static_cast<std::size_t>(worker.at("tid").as_int()), tid);
    EXPECT_GE(worker.at("busy_seconds").as_double(), 0.0);
    EXPECT_GE(worker.at("idle_seconds").as_double(), 0.0);
  }
  // The caller context (tid 0) participates in every region.
  EXPECT_GT(workers.at(0).at("busy_seconds").as_double(), 0.0);
}

TEST_F(GoldenRun, MetricsDeltaCoversTheInstrumentedLayers) {
  const obs::Json& counters = manifest_->at("metrics").at("counters");
  EXPECT_EQ(counters.at("engine.runs").as_int(), 1);
  EXPECT_EQ(static_cast<std::size_t>(
                counters.at("engine.pairs_computed").as_int()),
            result_->engine.pairs_computed);
  EXPECT_EQ(counters.at("null.builds").as_int(), 1);
  EXPECT_EQ(counters.at("null.draws").as_int(), 500);
  EXPECT_EQ(counters.find("checkpoint.journals_written"), nullptr);
}

TEST_F(GoldenRun, ManifestRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "tingex_golden_manifest.json";
  write_run_manifest(*result_, golden_config(), path);
  const obs::Json reread = obs::read_json_file(path);
  EXPECT_EQ(reread, *manifest_);
  std::remove(path.c_str());
}

TEST_F(GoldenRun, RerunIsBitIdenticalIncludingManifestNumbers) {
  const BuildResult again = golden_build();
  EXPECT_EQ(again.threshold, result_->threshold);
  EXPECT_EQ(again.marginal_entropy, result_->marginal_entropy);
  ASSERT_EQ(again.network.n_edges(), result_->network.n_edges());
  for (std::size_t i = 0; i < again.network.n_edges(); ++i)
    EXPECT_EQ(again.network.edges()[i], result_->network.edges()[i]);

  // The deterministic sections of a second manifest are byte-identical.
  const obs::Json manifest = make_run_manifest(again, golden_config());
  EXPECT_EQ(manifest.at("config").dump(), manifest_->at("config").dump());
  EXPECT_EQ(manifest.at("resolved").dump(), manifest_->at("resolved").dump());
  EXPECT_EQ(manifest.at("dataset").dump(), manifest_->at("dataset").dump());
  EXPECT_EQ(manifest.at("result").dump(), manifest_->at("result").dump());
}

}  // namespace
}  // namespace tinge
