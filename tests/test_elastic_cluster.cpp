// Elastic cluster: the rank-0 tile-lease protocol and its
// partition-independent checkpoint journal, proven by a randomized
// fault x topology soak.
//
// Layers under test, bottom up:
//   * LeaseLedger in isolation — a seeded property sweep model-checks the
//     grant/complete/reclaim state machine over hundreds of random
//     interleavings (every tile granted exactly once at a time, none lost,
//     work conserved when a holder dies);
//   * checkpoint conformance — a 4-rank journal restores on 1, 2 and 8
//     ranks, through duplicate-record and torn-tail corruption, and the
//     on-disk v1 byte format is pinned;
//   * the full sweep — lease_sweep over {2,3,4,8} ranks x {inproc,tcp}
//     x {healthy, straggler, worker-kill, master-kill + resume}, always
//     asserting byte-identity against the single-process engine and
//     lease-counter reconciliation (granted = completed + reclaimed).
//
// Every randomized case derives from one seed (override with the
// TINGEX_ELASTIC_SEED environment variable); failures print the case's
// parameters so a red run replays exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "cluster/faulty_transport.h"
#include "cluster/lease_mi.h"
#include "cluster/ring_mi.h"
#include "core/checkpoint.h"
#include "core/mi_engine.h"
#include "core/sweep.h"
#include "parallel/thread_pool.h"
#include "stats/rng.h"

namespace tinge::cluster {
namespace {

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("TINGEX_ELASTIC_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 20260808ull;
}

// ---- LeaseLedger in isolation -------------------------------------------------

TEST(LeaseLedger, GrantsInLptOrderAndCompletes) {
  const SweepPlan plan = SweepPlan::triangular(0, 30, 8);  // 10 tiles
  LeaseLedger ledger(plan);
  EXPECT_EQ(ledger.tiles_total(), plan.count());
  EXPECT_FALSE(ledger.done());

  const auto first = ledger.grant(1, 3);
  ASSERT_EQ(first.size(), 3u);
  // LPT: the first grants carry the largest pair counts in the plan.
  std::size_t max_pairs = 0;
  for (std::size_t t = 0; t < plan.count(); ++t)
    max_pairs = std::max(max_pairs, plan.tile(t).pair_count());
  EXPECT_EQ(plan.tile(static_cast<std::size_t>(first[0])).pair_count(),
            max_pairs);
  for (std::size_t i = 1; i < first.size(); ++i)
    EXPECT_GE(plan.tile(static_cast<std::size_t>(first[i - 1])).pair_count(),
              plan.tile(static_cast<std::size_t>(first[i])).pair_count());

  for (const std::uint64_t t : first) ledger.complete(1, t);
  while (!ledger.drained())
    for (const std::uint64_t t : ledger.grant(0, 2)) ledger.complete(0, t);
  EXPECT_TRUE(ledger.done());
  EXPECT_EQ(ledger.leases_granted(), plan.count());
  EXPECT_EQ(ledger.tiles_completed(), plan.count());
  EXPECT_EQ(ledger.tiles_reclaimed(), 0u);
}

TEST(LeaseLedger, ReclaimRequeuesAtTheFront) {
  const SweepPlan plan = SweepPlan::triangular(0, 30, 8);
  LeaseLedger ledger(plan);
  const auto doomed = ledger.grant(2, 2);
  ASSERT_EQ(doomed.size(), 2u);
  const auto reclaimed = ledger.reclaim(2);
  EXPECT_EQ(std::set<std::uint64_t>(reclaimed.begin(), reclaimed.end()),
            std::set<std::uint64_t>(doomed.begin(), doomed.end()));
  // The dead rank's tiles preempt the LPT tail: the very next grant hands
  // them out again, lowest index first.
  const auto regrant = ledger.grant(0, 2);
  std::vector<std::uint64_t> expected(reclaimed);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(regrant, expected);
  EXPECT_EQ(ledger.tiles_reclaimed(), 2u);
}

TEST(LeaseLedger, ResumedTilesAreNeverGranted) {
  const SweepPlan plan = SweepPlan::triangular(0, 30, 8);
  std::vector<char> resumed(plan.count(), 0);
  resumed[0] = 1;
  resumed[4] = 1;
  LeaseLedger ledger(plan, &resumed);
  EXPECT_EQ(ledger.tiles_resumed(), 2u);
  std::set<std::uint64_t> granted;
  while (!ledger.drained())
    for (const std::uint64_t t : ledger.grant(0, 4)) {
      granted.insert(t);
      ledger.complete(0, t);
    }
  EXPECT_TRUE(ledger.done());
  EXPECT_EQ(granted.size(), plan.count() - 2);
  EXPECT_FALSE(granted.count(0));
  EXPECT_FALSE(granted.count(4));
}

/// ~500 seeded random interleavings of grant/complete/reclaim against an
/// independent model of who holds what. The protocol's work-conservation
/// contract must hold in every trace: a tile is never granted while leased
/// or done, a holder's death loses nothing, and the ledger always drains
/// to done with granted = completed + reclaimed.
TEST(LeaseLedger, PropertyRandomizedInterleavings) {
  std::mt19937_64 rng(soak_seed() ^ 0x1ed9e4);
  for (int iteration = 0; iteration < 500; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(soak_seed()));
    const std::size_t n = 8 + rng() % 50;
    const std::size_t tile = 4 + rng() % 12;
    const SweepPlan plan = SweepPlan::triangular(0, n, tile);
    const int ranks = 1 + static_cast<int>(rng() % 5);

    std::vector<char> resumed(plan.count(), 0);
    std::size_t n_resumed = 0;
    if (rng() % 2 == 0)
      for (std::size_t t = 0; t < plan.count(); ++t)
        if (rng() % 4 == 0) {
          resumed[t] = 1;
          ++n_resumed;
        }
    LeaseLedger ledger(plan, &resumed);
    ASSERT_EQ(ledger.tiles_resumed(), n_resumed);

    // Model state: which rank holds which tiles, and which are done.
    std::vector<std::set<std::uint64_t>> held(static_cast<std::size_t>(ranks));
    std::set<std::uint64_t> done_tiles;
    std::size_t model_reclaims = 0;

    std::size_t guard = 0;
    const std::size_t guard_limit = 64 * plan.count() + 256;
    while (!ledger.done()) {
      ASSERT_LT(guard++, guard_limit) << "ledger failed to drain";
      const int rank = static_cast<int>(rng() % ranks);
      const int action = static_cast<int>(rng() % 8);
      if (action < 3 && !ledger.drained()) {
        for (const std::uint64_t t : ledger.grant(rank, 1 + rng() % 4)) {
          // Never a tile someone holds, never one already done or resumed.
          for (const auto& holdings : held) ASSERT_FALSE(holdings.count(t));
          ASSERT_FALSE(done_tiles.count(t));
          ASSERT_FALSE(resumed[static_cast<std::size_t>(t)]);
          held[static_cast<std::size_t>(rank)].insert(t);
        }
      } else if (action < 4 && ranks > 1 &&
                 !held[static_cast<std::size_t>(rank)].empty()) {
        // Holder death: everything it held must come back, exactly once.
        const auto reclaimed = ledger.reclaim(rank);
        ASSERT_EQ(std::set<std::uint64_t>(reclaimed.begin(), reclaimed.end()),
                  held[static_cast<std::size_t>(rank)]);
        model_reclaims += reclaimed.size();
        held[static_cast<std::size_t>(rank)].clear();
      } else if (!held[static_cast<std::size_t>(rank)].empty()) {
        const std::uint64_t t = *held[static_cast<std::size_t>(rank)].begin();
        ledger.complete(rank, t);
        held[static_cast<std::size_t>(rank)].erase(t);
        done_tiles.insert(t);
      } else if (ledger.drained()) {
        // Drained with this rank idle: force progress through another rank
        // (exactly what the master's blocking-recv path does).
        const int holder = ledger.lowest_holder();
        if (holder >= 0) {
          const std::uint64_t t =
              *held[static_cast<std::size_t>(holder)].begin();
          ledger.complete(holder, t);
          held[static_cast<std::size_t>(holder)].erase(t);
          done_tiles.insert(t);
        }
      }
    }
    EXPECT_EQ(done_tiles.size() + n_resumed, plan.count());
    EXPECT_EQ(ledger.tiles_completed(), done_tiles.size());
    EXPECT_EQ(ledger.tiles_reclaimed(), model_reclaims);
    EXPECT_EQ(ledger.leases_granted(),
              ledger.tiles_completed() + ledger.tiles_reclaimed());
    EXPECT_EQ(ledger.outstanding(), 0u);
  }
}

// ---- ClusterStats imbalance regression ---------------------------------------

TEST(ClusterStats, ImbalanceIgnoresRanksThatComputedNothing) {
  ClusterStats stats;
  // Regression: a rank with zero pairs (more ranks than gene blocks) used
  // to turn the ratio into max/0 garbage.
  stats.pairs_per_rank = {0, 100, 50};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 2.0);
  stats.pairs_per_rank = {0, 0, 100};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);  // one active rank: balanced
  stats.pairs_per_rank = {0, 0, 0};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
  stats.pairs_per_rank.clear();
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

TEST(ClusterStats, WallImbalanceUsesBusySecondsOfActiveRanks) {
  ClusterStats stats;
  stats.pairs_per_rank = {100, 100, 0, 100};
  stats.busy_seconds_per_rank = {1.0, 4.0, 9.0, 2.0};  // idle rank excluded
  EXPECT_DOUBLE_EQ(stats.imbalance_post(), 4.0);
  // Rates: 100, 25, 50 pairs/s over the active ranks.
  EXPECT_DOUBLE_EQ(stats.imbalance_pre(), 4.0);
  stats.busy_seconds_per_rank = {1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats.imbalance_post(), 1.0);
}

// ---- the full elastic sweep ---------------------------------------------------

class ElasticClusterFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kGenes = 30;
  static constexpr std::size_t kSamples = 64;
  static constexpr double kThreshold = 0.2;

  ElasticClusterFixture() : estimator_(10, 3, kSamples) {
    ExpressionMatrix matrix(kGenes, kSamples);
    Xoshiro256 rng(99);
    for (std::size_t s = 0; s < kSamples; ++s) {
      const double driver = rng.normal();
      for (std::size_t g = 0; g < kGenes; ++g)
        matrix.at(g, s) = static_cast<float>(
            g < 8 ? driver + 0.5 * rng.normal() : rng.normal());
    }
    ranked_ = RankedMatrix(matrix);
    config_.threads = 1;
    config_.tile_size = 8;  // 10 tiles: enough to steal, fast to sweep
    config_.cluster_balance = "lease";
    dir_ = std::filesystem::temp_directory_path() /
           ("tingex_elastic_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~ElasticClusterFixture() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  GeneNetwork single_chip() const {
    const MiEngine engine(estimator_, ranked_);
    par::ThreadPool pool(1);
    return engine.compute_network(kThreshold, config_, pool);
  }

  RunSignature lease_signature() const {
    return RunSignature{
        kGenes,
        kSamples,
        config_.tile_size,
        static_cast<std::uint32_t>(estimator_.basis().bins()),
        static_cast<std::uint32_t>(estimator_.basis().order()),
        kThreshold};
  }

  struct LeaseRun {
    GeneNetwork network;
    LeaseSweepReport report;
    bool completed = false;  ///< rank 0 delivered a merged network
    bool faulted = false;    ///< Cluster::run rethrew an exception
  };

  /// Runs lease_sweep on `ranks` endpoints; each rank wraps its transport
  /// in the FaultPlan (if any) whose `rank` field names it, so a test can
  /// straggle one rank while op-kill another.
  LeaseRun run_lease(int ranks, TransportKind kind,
                     const std::vector<FaultPlan>& faults = {},
                     const std::string& checkpoint = "") {
    TingeConfig config = config_;
    config.checkpoint_path = checkpoint;
    LeaseRun out;
    const auto cluster = make_cluster(kind, ranks);
    try {
      cluster->run([&](Comm& comm) {
        const FaultPlan* own = nullptr;
        for (const FaultPlan& plan : faults)
          if (plan.rank == comm.rank() || plan.rank < 0) own = &plan;
        LeaseSweepReport report;
        GeneNetwork network = [&] {
          if (own != nullptr) {
            FaultyTransport faulty(comm.transport(), *own);
            Comm endpoint(faulty);
            return lease_sweep(endpoint, statistic_, ranked_, kThreshold,
                               config, &report);
          }
          return lease_sweep(comm, statistic_, ranked_, kThreshold, config,
                             &report);
        }();
        if (comm.rank() == 0) {
          out.network = std::move(network);
          out.report = report;
          out.completed = true;
        }
      });
    } catch (const std::runtime_error&) {
      // An injected kill (or the PeerFailureError it caused elsewhere) is
      // rethrown by Cluster::run after every rank joined; a completed
      // rank-0 result is still valid — exactly tinge_cli's contract.
      out.faulted = true;
    }
    return out;
  }

  /// A master fault that fires in every schedule: rank 0 always executes at
  /// least ranks-1 data ops (the release-phase empty grants if nothing
  /// else), so a kill at that count is guaranteed, and the straggle keeps
  /// rank 0 slow enough that in practice the kill lands mid-sweep on a
  /// grant send, leaving a partial journal.
  static FaultPlan master_midsweep_kill(int ranks) {
    FaultPlan fault;
    fault.rank = 0;
    fault.tile_delay_ms = 15.0;
    fault.kill_after = ranks - 1;
    fault.kill_mode = KillMode::Throw;
    return fault;
  }

  /// Slows rank 0's self-tiles so worker requests always find tiles left to
  /// grant — the deterministic stage for worker-kill and straggler tests.
  static FaultPlan master_straggle(double delay_ms = 20.0) {
    FaultPlan fault;
    fault.rank = 0;
    fault.tile_delay_ms = delay_ms;
    return fault;
  }

  void expect_identical(const GeneNetwork& actual,
                        const GeneNetwork& expected) {
    ASSERT_EQ(actual.n_edges(), expected.n_edges());
    for (std::size_t i = 0; i < expected.n_edges(); ++i) {
      EXPECT_EQ(actual.edges()[i].u, expected.edges()[i].u);
      EXPECT_EQ(actual.edges()[i].v, expected.edges()[i].v);
      EXPECT_EQ(actual.edges()[i].weight, expected.edges()[i].weight);
    }
  }

  /// granted = completed + reclaimed, and completed covers the whole plan
  /// minus what the journal resumed: no tile lost, none double-counted.
  void expect_work_conserved(const LeaseSweepReport& report) {
    EXPECT_EQ(report.leases_granted,
              report.tiles_total - report.tiles_resumed +
                  report.tiles_reclaimed);
    std::size_t pairs = 0;
    for (const std::size_t p : report.pairs_per_rank) pairs += p;
    EXPECT_EQ(pairs + report.pairs_resumed, kGenes * (kGenes - 1) / 2);
  }

  BsplineMi estimator_;
  BsplineStat statistic_{estimator_};
  RankedMatrix ranked_;
  TingeConfig config_;
  std::filesystem::path dir_;
};

TEST_F(ElasticClusterFixture, MatchesEngineAcrossRanksAndTransports) {
  const GeneNetwork expected = single_chip();
  ASSERT_GT(expected.n_edges(), 0u);
  for (const TransportKind kind :
       {TransportKind::InProcess, TransportKind::Tcp}) {
    for (const int ranks : {2, 3, 4, 8}) {
      SCOPED_TRACE(std::string(transport_kind_name(kind)) + " x " +
                   std::to_string(ranks));
      LeaseRun run = run_lease(ranks, kind);
      ASSERT_TRUE(run.completed);
      EXPECT_FALSE(run.faulted);
      expect_identical(run.network, expected);
      expect_work_conserved(run.report);
      EXPECT_TRUE(run.report.dead_ranks.empty());
      EXPECT_EQ(run.report.tiles_reclaimed, 0u);
    }
  }
}

TEST_F(ElasticClusterFixture, WorkerDeathIsSurvivedOnBothTransports) {
  const GeneNetwork expected = single_chip();
  for (const TransportKind kind :
       {TransportKind::InProcess, TransportKind::Tcp}) {
    SCOPED_TRACE(transport_kind_name(kind));
    // Rank 1 dies on its third data op: request sent, grant received, tile
    // computed — killed reporting it. The lease is outstanding, so rank 0
    // must reclaim and recompute that tile. The master straggle guarantees
    // rank 1's request is served while tiles remain (rank 0 can't drain the
    // queue solo in under ~200 ms).
    FaultPlan fault;
    fault.rank = 1;
    fault.kill_after = 3;
    fault.kill_mode = KillMode::Throw;
    LeaseRun run = run_lease(4, kind, {master_straggle(), fault});
    ASSERT_TRUE(run.completed);
    EXPECT_TRUE(run.faulted);  // the victim's InjectedFault surfaces
    expect_identical(run.network, expected);
    expect_work_conserved(run.report);
    EXPECT_EQ(run.report.dead_ranks, std::vector<int>{1});
    EXPECT_GE(run.report.tiles_reclaimed, 1u);
  }
}

TEST_F(ElasticClusterFixture, StragglerLosesWorkToFasterRanks) {
  const GeneNetwork expected = single_chip();
  FaultPlan fault;
  fault.rank = 1;
  fault.tile_delay_ms = 25.0;  // dwarfs a sub-ms tile: a 25x+ straggler
  LeaseRun run = run_lease(4, TransportKind::InProcess, {fault});
  ASSERT_TRUE(run.completed);
  expect_identical(run.network, expected);
  expect_work_conserved(run.report);
  EXPECT_GT(run.report.steals, 0u);
  // The straggler ends with at most its fair share of pairs — stealing
  // moved the rest — while every tile still got computed exactly once.
  std::size_t total = 0;
  for (const std::size_t p : run.report.pairs_per_rank) total += p;
  EXPECT_LE(run.report.pairs_per_rank.at(1), total / 4);
}

TEST_F(ElasticClusterFixture, ResumesOnGrownAndShrunkWorldSizes) {
  const GeneNetwork expected = single_chip();
  for (const int resume_ranks : {8, 2, 4, 1}) {
    SCOPED_TRACE("resume on " + std::to_string(resume_ranks));
    const std::string journal = path("kill.ckpt");
    // A 4-rank lease run whose master dies mid-sweep leaves a journal of
    // whatever tiles completed before the kill.
    LeaseRun killed = run_lease(4, TransportKind::InProcess,
                                {master_midsweep_kill(4)}, journal);
    EXPECT_TRUE(killed.faulted);
    EXPECT_FALSE(killed.completed);
    ASSERT_TRUE(std::filesystem::exists(journal));

    // The journal binds to (dataset, basis, tile grid) only — never the
    // world size — so any rank count resumes it.
    LeaseRun resumed =
        run_lease(resume_ranks, TransportKind::InProcess, {}, journal);
    ASSERT_TRUE(resumed.completed);
    expect_identical(resumed.network, expected);
    expect_work_conserved(resumed.report);
    EXPECT_FALSE(std::filesystem::exists(journal))
        << "journal must be removed after a successful resume";
  }
}

TEST_F(ElasticClusterFixture, ResumeToleratesDuplicateRecordsAndTornTail) {
  const GeneNetwork expected = single_chip();
  const std::string journal = path("corrupt.ckpt");
  const SweepPlan plan = SweepPlan::triangular(0, kGenes, config_.tile_size);
  const PanelPlan panels = plan_panels(estimator_, config_);
  const std::unique_ptr<PairScratch> scratch = statistic_.make_scratch();
  const auto row = [&](std::size_t g) { return ranked_.ranks(g).data(); };
  const auto tile_edges = [&](std::size_t t) {
    EdgeSink sink(kThreshold, 1);
    SweepCounters counters;
    detail::sweep_tile(statistic_, row, plan.tile(t), panels, 0, 1, *scratch,
                       counters, sink, 0);
    return sink.take_all();
  };

  // Corrupt the journal the two ways a crash can: a tile journaled twice
  // (rewrite after replay) and a torn final record (killed mid-fwrite).
  {
    CheckpointWriter writer(journal, lease_signature());
    writer.append_tile(0, tile_edges(0));
    writer.append_tile(5, tile_edges(5));
    writer.append_tile(0, tile_edges(0));  // duplicate
  }
  {
    std::ofstream torn(journal, std::ios::binary | std::ios::app);
    const std::uint64_t half_record = 99;  // index without its edge count
    torn.write(reinterpret_cast<const char*>(&half_record),
               sizeof(half_record) - 3);
  }

  LeaseRun resumed = run_lease(2, TransportKind::InProcess, {}, journal);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.report.tiles_resumed, 2u);  // duplicate counted once
  expect_identical(resumed.network, expected);
  expect_work_conserved(resumed.report);
}

TEST_F(ElasticClusterFixture, EngineStyleJournalSeedsTheLeaseSweep) {
  // A journal written with the engine's signature recipe (basis-derived
  // bins/order) seeds the lease ledger: partition independence includes
  // p == 1. Tile records are computed through the same kernel path the
  // engine journals, so the merged network stays byte-identical.
  const GeneNetwork expected = single_chip();
  const std::string journal = path("engine.ckpt");
  const SweepPlan plan =
      SweepPlan::triangular(0, kGenes, config_.tile_size);
  const PanelPlan panels = plan_panels(estimator_, config_);
  const std::unique_ptr<PairScratch> scratch = statistic_.make_scratch();
  const auto row = [&](std::size_t g) { return ranked_.ranks(g).data(); };
  {
    CheckpointWriter writer(journal, lease_signature());
    for (const std::size_t t : {std::size_t{0}, std::size_t{3}}) {
      EdgeSink sink(kThreshold, 1);
      SweepCounters counters;
      detail::sweep_tile(statistic_, row, plan.tile(t), panels, 0, 1, *scratch,
                         counters, sink, 0);
      writer.append_tile(t, sink.take_all());
    }
  }
  LeaseRun resumed = run_lease(3, TransportKind::InProcess, {}, journal);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.report.tiles_resumed, 2u);
  expect_identical(resumed.network, expected);
  expect_work_conserved(resumed.report);
}

TEST_F(ElasticClusterFixture, MismatchedSignatureJournalIsIgnored) {
  const GeneNetwork expected = single_chip();
  const std::string journal = path("stale.ckpt");
  RunSignature stale = lease_signature();
  stale.tile_size += 1;  // a different tile grid: indices are meaningless
  {
    CheckpointWriter writer(journal, stale);
    const Edge poison[] = {{0, 1, 99.0f}};
    writer.append_tile(0, poison);
  }
  LeaseRun run = run_lease(2, TransportKind::InProcess, {}, journal);
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.report.tiles_resumed, 0u);  // full recompute, no poison
  expect_identical(run.network, expected);
}

TEST_F(ElasticClusterFixture, PinnedV1JournalBytesStillLoad) {
  // Byte-level backward compatibility: this is a version-1 journal
  // assembled field by field (magic, version, 40-byte packed signature,
  // one record). If the on-disk layout ever shifts, this fails before any
  // user's resume does.
  const std::string journal = path("pinned.ckpt");
  {
    std::ofstream out(journal, std::ios::binary);
    out.write("TNGC", 4);
    const std::uint32_t version = 1;
    out.write(reinterpret_cast<const char*>(&version), 4);
    const std::uint64_t n_genes = kGenes, n_samples = kSamples, tile = 8;
    const std::uint32_t bins = 10, order = 3;
    const double threshold = kThreshold;
    out.write(reinterpret_cast<const char*>(&n_genes), 8);
    out.write(reinterpret_cast<const char*>(&n_samples), 8);
    out.write(reinterpret_cast<const char*>(&tile), 8);
    out.write(reinterpret_cast<const char*>(&bins), 4);
    out.write(reinterpret_cast<const char*>(&order), 4);
    out.write(reinterpret_cast<const char*>(&threshold), 8);
    const std::uint64_t tile_index = 2;
    const std::uint32_t edge_count = 1;
    const std::uint32_t u = 1, v = 2;
    const float weight = 0.5f;
    out.write(reinterpret_cast<const char*>(&tile_index), 8);
    out.write(reinterpret_cast<const char*>(&edge_count), 4);
    out.write(reinterpret_cast<const char*>(&u), 4);
    out.write(reinterpret_cast<const char*>(&v), 4);
    out.write(reinterpret_cast<const char*>(&weight), 4);
  }
  const CheckpointState state = load_checkpoint(journal);
  EXPECT_TRUE(state.signature == lease_signature());
  ASSERT_EQ(state.records.size(), 1u);
  EXPECT_EQ(state.records[0].tile_index, 2u);
  ASSERT_EQ(state.records[0].edges.size(), 1u);
  EXPECT_EQ(state.records[0].edges[0], (Edge{1, 2, 0.5f}));
}

/// The headline soak: randomized fault x topology x resume-world-size
/// matrix, every case asserting byte-identity and work conservation.
TEST_F(ElasticClusterFixture, RandomizedFaultTopologySoak) {
  const GeneNetwork expected = single_chip();
  std::mt19937_64 rng(soak_seed());
  const int kCases = 14;
  for (int c = 0; c < kCases; ++c) {
    const int ranks_pool[] = {2, 3, 4, 8};
    const int ranks = ranks_pool[rng() % 4];
    // tcp costs real sockets per case: sample it, don't saturate on it.
    const TransportKind kind =
        rng() % 4 == 0 ? TransportKind::Tcp : TransportKind::InProcess;
    const int scenario = static_cast<int>(rng() % 4);
    SCOPED_TRACE("case " + std::to_string(c) + ": seed " +
                 std::to_string(soak_seed()) + ", ranks " +
                 std::to_string(ranks) + ", " + transport_kind_name(kind) +
                 ", scenario " + std::to_string(scenario));
    if (scenario == 0) {  // healthy
      LeaseRun run = run_lease(ranks, kind);
      ASSERT_TRUE(run.completed);
      expect_identical(run.network, expected);
      expect_work_conserved(run.report);
    } else if (scenario == 1) {  // straggler-delay
      FaultPlan fault;
      fault.rank = 1 + static_cast<int>(rng() % (ranks - 1 > 0
                                                     ? ranks - 1
                                                     : 1));
      if (fault.rank >= ranks) fault.rank = ranks - 1;
      fault.tile_delay_ms = 5.0 + static_cast<double>(rng() % 20);
      LeaseRun run = run_lease(ranks, kind, {fault});
      ASSERT_TRUE(run.completed);
      expect_identical(run.network, expected);
      expect_work_conserved(run.report);
    } else if (scenario == 2 && ranks > 1) {  // kill a worker mid-sweep
      // A worker always executes at least two data ops (its first request
      // and the grant answering it), so a kill at 1..3 is guaranteed to
      // fire; the master straggle keeps tiles available at op 3 so the
      // victim can die holding a lease.
      FaultPlan fault;
      fault.rank = 1 + static_cast<int>(rng() % (ranks - 1));
      fault.kill_after = 1 + static_cast<long long>(rng() % 3);
      fault.kill_mode = KillMode::Throw;
      LeaseRun run = run_lease(ranks, kind, {master_straggle(10.0), fault});
      ASSERT_TRUE(run.completed);
      EXPECT_TRUE(run.faulted);
      expect_identical(run.network, expected);
      expect_work_conserved(run.report);
    } else {  // kill rank 0, resume on a random (grow/shrink/same) world
      const std::string journal = path("soak.ckpt");
      LeaseRun killed =
          run_lease(ranks, kind, {master_midsweep_kill(ranks)}, journal);
      EXPECT_TRUE(killed.faulted);
      ASSERT_TRUE(std::filesystem::exists(journal));
      const int resume_ranks = ranks_pool[rng() % 4];
      LeaseRun resumed = run_lease(resume_ranks, kind, {}, journal);
      ASSERT_TRUE(resumed.completed);
      expect_identical(resumed.network, expected);
      expect_work_conserved(resumed.report);
      EXPECT_FALSE(std::filesystem::exists(journal));
    }
  }
}

}  // namespace
}  // namespace tinge::cluster
