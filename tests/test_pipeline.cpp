// End-to-end integration: the full NetworkBuilder pipeline on synthetic
// regulatory data — recovery of planted structure, determinism, missing-value
// robustness, DPI interaction, stage accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <unistd.h>

#include "core/network_builder.h"
#include "graph/metrics.h"
#include "synth/expression.h"

namespace tinge {
namespace {

SyntheticDataset standard_dataset(std::size_t genes = 60,
                                  std::size_t samples = 300,
                                  double missing = 0.0) {
  GrnParams grn_params;
  grn_params.n_genes = genes;
  grn_params.mean_regulators = 1.5;
  grn_params.seed = 11;
  ExpressionParams expr;
  expr.n_samples = samples;
  // Moderate intrinsic noise keeps correlation local to direct regulatory
  // edges; with near-deterministic propagation the whole GRN inter-correlates
  // and precision against the *direct-edge* truth becomes meaningless.
  expr.noise_sd = 1.0;
  expr.missing_fraction = missing;
  expr.seed = 12;
  return make_synthetic_dataset(grn_params, expr);
}

TingeConfig fast_config() {
  TingeConfig config;
  config.permutations = 500;
  config.alpha = 1e-2;
  config.threads = 2;
  config.tile_size = 16;
  return config;
}

TEST(Pipeline, RecoversPlantedStructureWellAboveChance) {
  const SyntheticDataset dataset = standard_dataset();
  const NetworkBuilder builder(fast_config());
  const BuildResult result = builder.build(dataset.expression);

  ASSERT_GT(result.network.n_edges(), 0u);
  const Confusion confusion = compare_networks(result.network, dataset.truth);
  const double chance = static_cast<double>(dataset.truth.n_edges()) /
                        static_cast<double>(60 * 59 / 2);
  // A relevance network keeps statistically dependent pairs, which includes
  // genuine indirect (distance-2) dependencies — so precision against the
  // direct-edge truth is judged relative to chance, not in absolute terms
  // (DPI, tested below, is the step that prunes indirect edges).
  EXPECT_GT(confusion.recall(), 0.5);
  EXPECT_GT(confusion.precision(), 1.5 * chance);

  const double aupr = average_precision(result.network, dataset.truth);
  EXPECT_GT(aupr, 5.0 * chance);
}

TEST(Pipeline, ReportsStageTimesAndStats) {
  const SyntheticDataset dataset = standard_dataset(40, 150);
  const NetworkBuilder builder(fast_config());
  const BuildResult result = builder.build(dataset.expression);

  EXPECT_EQ(result.genes_in, 40u);
  EXPECT_EQ(result.genes_used, 40u);
  EXPECT_GT(result.threshold, 0.0);
  EXPECT_GT(result.marginal_entropy, 0.0);
  EXPECT_EQ(result.engine.pairs_computed, 40u * 39u / 2u);
  EXPECT_GE(result.times.total, result.times.mi_pass);
  EXPECT_GT(result.times.null_build, 0.0);
  EXPECT_GT(result.times.preprocess, 0.0);
}

TEST(Pipeline, DeterministicAcrossThreadCounts) {
  const SyntheticDataset dataset = standard_dataset(30, 120);
  TingeConfig config = fast_config();
  config.threads = 1;
  const BuildResult serial = NetworkBuilder(config).build(dataset.expression);
  config.threads = 4;
  const BuildResult parallel = NetworkBuilder(config).build(dataset.expression);

  EXPECT_DOUBLE_EQ(serial.threshold, parallel.threshold);
  ASSERT_EQ(serial.network.n_edges(), parallel.network.n_edges());
  const auto se = serial.network.edges();
  const auto pe = parallel.network.edges();
  for (std::size_t i = 0; i < se.size(); ++i) {
    EXPECT_EQ(se[i].u, pe[i].u);
    EXPECT_EQ(se[i].v, pe[i].v);
    EXPECT_EQ(se[i].weight, pe[i].weight);
  }
}

TEST(Pipeline, KernelChoiceDoesNotChangeTheNetworkEdgeSet) {
  const SyntheticDataset dataset = standard_dataset(30, 120);
  TingeConfig config = fast_config();
  config.kernel = MiKernel::Scalar;
  const BuildResult scalar = NetworkBuilder(config).build(dataset.expression);
  config.kernel = MiKernel::Replicated;
  const BuildResult simd = NetworkBuilder(config).build(dataset.expression);
  // Float summation order differs, so weights may differ in the last ulp;
  // the edge sets must still coincide away from the threshold boundary.
  ASSERT_EQ(scalar.network.n_edges(), simd.network.n_edges());
  for (std::size_t i = 0; i < scalar.network.n_edges(); ++i) {
    EXPECT_EQ(scalar.network.edges()[i].u, simd.network.edges()[i].u);
    EXPECT_EQ(scalar.network.edges()[i].v, simd.network.edges()[i].v);
    EXPECT_NEAR(scalar.network.edges()[i].weight,
                simd.network.edges()[i].weight, 1e-4);
  }
}

TEST(Pipeline, HandlesMissingValues) {
  const SyntheticDataset dataset = standard_dataset(50, 250, /*missing=*/0.05);
  ASSERT_GT(dataset.expression.count_missing(), 0u);
  const NetworkBuilder builder(fast_config());
  const BuildResult result = builder.build(dataset.expression);
  EXPECT_GT(result.imputed_cells, 0u);
  const Confusion confusion = compare_networks(result.network, dataset.truth);
  EXPECT_GT(confusion.recall(), 0.4);  // modest degradation allowed
}

TEST(Pipeline, DropsConstantGenes) {
  SyntheticDataset dataset = standard_dataset(30, 100);
  // Flatten two genes.
  for (std::size_t s = 0; s < 100; ++s) {
    dataset.expression.at(4, s) = 1.0f;
    dataset.expression.at(9, s) = -2.5f;
  }
  const NetworkBuilder builder(fast_config());
  const BuildResult result = builder.build(dataset.expression);
  EXPECT_EQ(result.genes_in, 30u);
  EXPECT_EQ(result.genes_used, 28u);
}

TEST(Pipeline, DpiPrunesEdgesWithoutKillingRecall) {
  const SyntheticDataset dataset = standard_dataset();
  TingeConfig config = fast_config();
  const BuildResult plain = NetworkBuilder(config).build(dataset.expression);
  config.apply_dpi = true;
  config.dpi_tolerance = 0.15;
  const BuildResult pruned = NetworkBuilder(config).build(dataset.expression);

  EXPECT_LT(pruned.network.n_edges(), plain.network.n_edges());
  EXPECT_GT(pruned.dpi_stats.edges_removed, 0u);
  const double recall_plain =
      compare_networks(plain.network, dataset.truth).recall();
  const double recall_pruned =
      compare_networks(pruned.network, dataset.truth).recall();
  EXPECT_GT(recall_pruned, 0.5 * recall_plain);
  // DPI is meant to raise precision on chain-heavy truths.
  EXPECT_GE(compare_networks(pruned.network, dataset.truth).precision(),
            compare_networks(plain.network, dataset.truth).precision() - 0.02);
}

TEST(Pipeline, StricterAlphaYieldsFewerEdges) {
  const SyntheticDataset dataset = standard_dataset(40, 200);
  TingeConfig config = fast_config();
  config.alpha = 0.05;
  const BuildResult lax = NetworkBuilder(config).build(dataset.expression);
  config.alpha = 1e-3;
  config.permutations = 3000;
  const BuildResult strict = NetworkBuilder(config).build(dataset.expression);
  EXPECT_LT(strict.network.n_edges(), lax.network.n_edges());
  EXPECT_GT(strict.threshold, lax.threshold);
}

TEST(Pipeline, LoggerReceivesStageMessages) {
  const SyntheticDataset dataset = standard_dataset(20, 80);
  NetworkBuilder builder(fast_config());
  std::vector<std::string> messages;
  builder.set_logger([&](std::string_view m) { messages.emplace_back(m); });
  builder.build(dataset.expression);
  ASSERT_GE(messages.size(), 4u);
  EXPECT_NE(messages[0].find("preprocess"), std::string::npos);
  EXPECT_NE(messages[1].find("weight table"), std::string::npos);
  EXPECT_NE(messages[2].find("null"), std::string::npos);
  EXPECT_NE(messages[3].find("mi pass"), std::string::npos);
}

TEST(Pipeline, MoveOverloadAvoidsCopy) {
  SyntheticDataset dataset = standard_dataset(20, 80);
  const NetworkBuilder builder(fast_config());
  const BuildResult result = builder.build(std::move(dataset.expression));
  EXPECT_GT(result.network.n_nodes(), 0u);
}

TEST(Pipeline, TooFewUsableGenesFails) {
  ExpressionMatrix constant(3, 50);  // all zero variance
  const NetworkBuilder builder(fast_config());
  EXPECT_THROW(builder.build(constant), ContractViolation);
}

TEST(Pipeline, InvalidConfigRejectedAtConstruction) {
  TingeConfig config;
  config.alpha = 2.0;
  EXPECT_THROW(NetworkBuilder{config}, ContractViolation);
}


TEST(Pipeline, CheckpointPathProducesIdenticalNetworkAndCleansUp) {
  const SyntheticDataset dataset = standard_dataset(30, 120);
  TingeConfig config = fast_config();
  const BuildResult plain = NetworkBuilder(config).build(dataset.expression);

  const std::string ckpt = std::filesystem::temp_directory_path() /
                           ("tingex_builder_" + std::to_string(::getpid()) +
                            ".ckpt");
  config.checkpoint_path = ckpt;
  const BuildResult journaled =
      NetworkBuilder(config).build(dataset.expression);

  ASSERT_EQ(plain.network.n_edges(), journaled.network.n_edges());
  for (std::size_t i = 0; i < plain.network.n_edges(); ++i)
    EXPECT_EQ(plain.network.edges()[i], journaled.network.edges()[i]);
  EXPECT_FALSE(std::filesystem::exists(ckpt));
}


TEST(Pipeline, ExposesNullDistributionForPValues) {
  const SyntheticDataset dataset = standard_dataset(25, 100);
  const BuildResult result = NetworkBuilder(fast_config()).build(dataset.expression);
  ASSERT_NE(result.null, nullptr);
  EXPECT_EQ(result.null->size(), fast_config().permutations);
  // Every kept edge is at or beyond the threshold, so its p-value is at
  // most alpha (up to quantile interpolation).
  for (const Edge& e : result.network.edges()) {
    EXPECT_LE(result.null->p_value(e.weight), fast_config().alpha * 2.0);
  }
}

}  // namespace
}  // namespace tinge
