// Preprocessing: rank transforms (both tie policies), value transforms,
// imputation and gene filtering.
#include <gtest/gtest.h>

#include <cmath>

#include "preprocess/filter.h"
#include "preprocess/rank_transform.h"
#include "preprocess/transforms.h"

namespace tinge {
namespace {

// ---- rank_order ---------------------------------------------------------------

TEST(RankOrder, SimpleOrdering) {
  const float values[] = {3.0f, 1.0f, 2.0f};
  const auto ranks = rank_order(values);
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{2, 0, 1}));
}

TEST(RankOrder, IsAPermutation) {
  const float values[] = {5, 5, 1, 9, 5, 2, 2};
  const auto ranks = rank_order(values);
  std::vector<bool> seen(ranks.size(), false);
  for (const auto r : ranks) {
    ASSERT_LT(r, ranks.size());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(RankOrder, TiesBrokenBySampleOrder) {
  const float values[] = {2.0f, 2.0f, 2.0f};
  const auto ranks = rank_order(values);
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(RankOrder, RejectsNan) {
  const float values[] = {1.0f, std::nanf("")};
  EXPECT_THROW(rank_order(values), ContractViolation);
}

TEST(RankOrder, MonotoneTransformInvariance) {
  const float values[] = {0.3f, -2.0f, 7.5f, 1.1f, 0.0f};
  float cubed[5];
  for (int i = 0; i < 5; ++i) cubed[i] = values[i] * values[i] * values[i];
  EXPECT_EQ(rank_order(values), rank_order(cubed));
}

// ---- rank_average ----------------------------------------------------------------

TEST(RankAverage, TiesGetMeanRank) {
  const float values[] = {1.0f, 2.0f, 2.0f, 3.0f};
  const auto ranks = rank_average(values);
  EXPECT_FLOAT_EQ(ranks[0], 0.0f);
  EXPECT_FLOAT_EQ(ranks[1], 1.5f);
  EXPECT_FLOAT_EQ(ranks[2], 1.5f);
  EXPECT_FLOAT_EQ(ranks[3], 3.0f);
}

TEST(RankAverage, NoTiesMatchesRankOrder) {
  const float values[] = {9, 3, 7, 1};
  const auto avg = rank_average(values);
  const auto ord = rank_order(values);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(avg[i], static_cast<float>(ord[i]));
}

TEST(RankAverage, AllTied) {
  const float values[] = {4.0f, 4.0f, 4.0f, 4.0f, 4.0f};
  for (const float r : rank_average(values)) EXPECT_FLOAT_EQ(r, 2.0f);
}

TEST(RankToUnit, StaysInOpenUnitInterval) {
  const std::size_t m = 10;
  for (std::size_t r = 0; r < m; ++r) {
    const float z = rank_to_unit(static_cast<float>(r), m);
    EXPECT_GT(z, 0.0f);
    EXPECT_LT(z, 1.0f);
  }
  EXPECT_FLOAT_EQ(rank_to_unit(0.0f, 10), 0.05f);
  EXPECT_FLOAT_EQ(rank_to_unit(9.0f, 10), 0.95f);
}

// ---- RankedMatrix -----------------------------------------------------------------

TEST(RankedMatrix, RanksEachGeneIndependently) {
  ExpressionMatrix m(2, 3, {"a", "b"}, {"s1", "s2", "s3"});
  m.at(0, 0) = 5;  m.at(0, 1) = 1;  m.at(0, 2) = 3;
  m.at(1, 0) = -1; m.at(1, 1) = -2; m.at(1, 2) = -3;
  const RankedMatrix ranked(m);
  EXPECT_EQ(ranked.n_genes(), 2u);
  EXPECT_EQ(ranked.n_samples(), 3u);
  const auto r0 = ranked.ranks(0);
  EXPECT_EQ(r0[0], 2u);
  EXPECT_EQ(r0[1], 0u);
  EXPECT_EQ(r0[2], 1u);
  const auto r1 = ranked.ranks(1);
  EXPECT_EQ(r1[0], 2u);
  EXPECT_EQ(r1[1], 1u);
  EXPECT_EQ(r1[2], 0u);
  EXPECT_EQ(ranked.gene_names()[1], "b");
}

TEST(RankTransformInPlace, StableProducesGridValues) {
  ExpressionMatrix m(1, 4);
  m.at(0, 0) = 10; m.at(0, 1) = 0; m.at(0, 2) = 5; m.at(0, 3) = 7;
  rank_transform_in_place(m, TiePolicy::StableOrder);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.875f);  // rank 3 of 4 -> (3+0.5)/4
  EXPECT_FLOAT_EQ(m.at(0, 1), 0.125f);
}

TEST(RankTransformInPlace, AverageTiesShareValue) {
  ExpressionMatrix m(1, 4);
  m.at(0, 0) = 1; m.at(0, 1) = 1; m.at(0, 2) = 2; m.at(0, 3) = 3;
  rank_transform_in_place(m, TiePolicy::Average);
  EXPECT_FLOAT_EQ(m.at(0, 0), m.at(0, 1));
}

// ---- transforms ------------------------------------------------------------------

TEST(Transforms, Log2Transform) {
  ExpressionMatrix m(1, 3);
  m.at(0, 0) = 0.0f;
  m.at(0, 1) = 1.0f;
  m.at(0, 2) = 7.0f;
  log2_transform(m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 3.0f);
}

TEST(Transforms, Log2ClampsNegativesAndKeepsNan) {
  ExpressionMatrix m(1, 2);
  m.at(0, 0) = -5.0f;
  m.at(0, 1) = std::nanf("");
  log2_transform(m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_TRUE(std::isnan(m.at(0, 1)));
}

TEST(Transforms, StandardizeProducesZeroMeanUnitSd) {
  ExpressionMatrix m(1, 5);
  for (std::size_t s = 0; s < 5; ++s)
    m.at(0, s) = static_cast<float>(s) * 2.0f + 3.0f;
  standardize(m);
  double sum = 0.0, sum2 = 0.0;
  for (const float v : m.row(0)) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum, 0.0, 1e-5);
  EXPECT_NEAR(sum2 / 4.0, 1.0, 1e-5);  // unbiased variance
}

TEST(Transforms, StandardizeConstantGeneBecomesZero) {
  ExpressionMatrix m(1, 3);
  for (std::size_t s = 0; s < 3; ++s) m.at(0, s) = 9.0f;
  standardize(m);
  for (const float v : m.row(0)) EXPECT_FLOAT_EQ(v, 0.0f);
}

// ---- imputation ------------------------------------------------------------------

TEST(Impute, MedianFillsNans) {
  ExpressionMatrix m(1, 5);
  m.at(0, 0) = 1; m.at(0, 1) = std::nanf(""); m.at(0, 2) = 3;
  m.at(0, 3) = 100; m.at(0, 4) = 2;
  const std::size_t imputed = impute_missing_with_median(m);
  EXPECT_EQ(imputed, 1u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.5f);  // median of {1,3,100,2}
  EXPECT_EQ(m.count_missing(), 0u);
}

TEST(Impute, OddCountMedian) {
  ExpressionMatrix m(1, 4);
  m.at(0, 0) = 5; m.at(0, 1) = std::nanf(""); m.at(0, 2) = 1; m.at(0, 3) = 9;
  impute_missing_with_median(m);
  EXPECT_FLOAT_EQ(m.at(0, 1), 5.0f);
}

TEST(Impute, AllMissingGeneBecomesZero) {
  ExpressionMatrix m(1, 3);
  for (std::size_t s = 0; s < 3; ++s) m.at(0, s) = std::nanf("");
  EXPECT_EQ(impute_missing_with_median(m), 3u);
  for (const float v : m.row(0)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Impute, CompleteDataUntouched) {
  ExpressionMatrix m(2, 3);
  m.at(0, 0) = 1.5f;
  EXPECT_EQ(impute_missing_with_median(m), 0u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
}

// ---- filtering -------------------------------------------------------------------

TEST(Filter, DropsConstantGenes) {
  ExpressionMatrix m(3, 4, {"varying", "constant", "varying2"},
                     {"s1", "s2", "s3", "s4"});
  for (std::size_t s = 0; s < 4; ++s) {
    m.at(0, s) = static_cast<float>(s);
    m.at(1, s) = 2.0f;
    m.at(2, s) = static_cast<float>(s) * -1.0f;
  }
  const FilterResult result = filter_genes(m, FilterCriteria{});
  EXPECT_EQ(result.matrix.n_genes(), 2u);
  EXPECT_EQ(result.dropped_low_variance, 1u);
  EXPECT_EQ(result.kept, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(result.matrix.gene_name(0), "varying");
}

TEST(Filter, DropsMostlyMissingGenes) {
  ExpressionMatrix m(2, 4);
  for (std::size_t s = 0; s < 4; ++s) m.at(0, s) = static_cast<float>(s);
  m.at(1, 0) = 1.0f;
  for (std::size_t s = 1; s < 4; ++s) m.at(1, s) = std::nanf("");
  FilterCriteria criteria;
  criteria.max_missing_fraction = 0.5;
  const FilterResult result = filter_genes(m, criteria);
  EXPECT_EQ(result.matrix.n_genes(), 1u);
  EXPECT_EQ(result.dropped_missing, 1u);
}

TEST(Filter, VarianceThresholdIsConfigurable) {
  ExpressionMatrix m(1, 4);
  for (std::size_t s = 0; s < 4; ++s)
    m.at(0, s) = 1.0f + 0.001f * static_cast<float>(s);
  FilterCriteria strict;
  strict.min_variance = 1.0;
  EXPECT_EQ(filter_genes(m, strict).matrix.n_genes(), 0u);
  FilterCriteria lax;
  lax.min_variance = 1e-12;
  EXPECT_EQ(filter_genes(m, lax).matrix.n_genes(), 1u);
}

}  // namespace
}  // namespace tinge
