// Minimal command-line argument parser shared by the examples, benchmarks
// and the CLI tool.
//
// Grammar:  --name=value | --name value | --flag
// Unknown option names throw, so typos in experiment scripts fail loudly
// instead of silently running the default configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tinge {

class ArgParser {
 public:
  /// Declares an option before parse(). `help` is shown by usage().
  ArgParser& add(const std::string& name, const std::string& help,
                 const std::string& default_value = "");

  /// Declares a boolean flag (present => true).
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown or malformed
  /// options. Positional arguments are collected in positional().
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable usage text built from the declared options.
  std::string usage(const std::string& program, const std::string& summary) const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  Option& find(const std::string& name);
  const Option& find(const std::string& name) const;

  std::map<std::string, Option> options_;
  std::vector<std::string> declared_order_;
  std::vector<std::string> positional_;
};

}  // namespace tinge
