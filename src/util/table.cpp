#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/contracts.h"
#include "util/str.h"

namespace tinge {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  return cell.find_first_not_of("0123456789+-.eEx%u ") == std::string::npos;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TINGE_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TINGE_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double value : cells)
    formatted.push_back(strprintf("%.*f", precision, value));
  add_row(std::move(formatted));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = looks_numeric(row[c]);
      out += "  ";
      if (right) out.append(pad, ' ');
      out += row[c];
      if (!right) out.append(pad, ' ');
    }
    out += '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace tinge
