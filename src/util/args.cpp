#include "util/args.h"

#include <stdexcept>

#include "util/str.h"

namespace tinge {

ArgParser& ArgParser::add(const std::string& name, const std::string& help,
                          const std::string& default_value) {
  if (options_.count(name) == 0) declared_order_.push_back(name);
  options_[name] = Option{help, default_value, /*is_flag=*/false, /*seen=*/false};
  return *this;
}

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& help) {
  if (options_.count(name) == 0) declared_order_.push_back(name);
  options_[name] = Option{help, "false", /*is_flag=*/true, /*seen=*/false};
  return *this;
}

ArgParser::Option& ArgParser::find(const std::string& name) {
  const auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("unknown option --" + name);
  return it->second;
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("unknown option --" + name);
  return it->second;
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    std::string name(arg.substr(0, eq));
    Option& opt = find(name);
    opt.seen = true;
    if (opt.is_flag) {
      if (eq != std::string_view::npos)
        throw std::invalid_argument("flag --" + name + " does not take a value");
      opt.value = "true";
    } else if (eq != std::string_view::npos) {
      opt.value = std::string(arg.substr(eq + 1));
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + name + " expects a value");
      opt.value = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const { return find(name).seen; }

std::string ArgParser::get(const std::string& name) const { return find(name).value; }

long long ArgParser::get_int(const std::string& name) const {
  const auto parsed = parse_int(find(name).value);
  if (!parsed)
    throw std::invalid_argument("option --" + name + " is not an integer: " +
                                find(name).value);
  return *parsed;
}

double ArgParser::get_double(const std::string& name) const {
  const auto parsed = parse_double(find(name).value);
  if (!parsed)
    throw std::invalid_argument("option --" + name + " is not a number: " +
                                find(name).value);
  return *parsed;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name).value == "true";
}

std::string ArgParser::usage(const std::string& program,
                             const std::string& summary) const {
  std::string out = summary + "\n\nUsage: " + program + " [options]\n\nOptions:\n";
  for (const auto& name : declared_order_) {
    const Option& opt = options_.at(name);
    out += "  --" + name;
    if (!opt.is_flag) out += "=<" + (opt.value.empty() ? "value" : opt.value) + ">";
    out += "\n      " + opt.help + "\n";
  }
  return out;
}

}  // namespace tinge
