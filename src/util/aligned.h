// Cache-line / vector-register aligned storage.
//
// All hot arrays in the MI kernels (expression rows, B-spline weight tables,
// joint histograms) are allocated through AlignedBuffer so that 512-bit
// aligned loads/stores are always legal and rows never straddle cache lines
// shared with another thread's data (false-sharing avoidance).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/contracts.h"

namespace tinge {

/// Alignment used for all SIMD-visible allocations. 64 bytes covers both a
/// full cache line and a 512-bit vector register.
inline constexpr std::size_t kSimdAlignment = 64;

/// Rounds `n` up to the next multiple of `multiple` (a power of two or not).
constexpr std::size_t round_up(std::size_t n, std::size_t multiple) {
  return multiple == 0 ? n : ((n + multiple - 1) / multiple) * multiple;
}

/// Raw 64-byte-aligned allocation of `count` T, padded to a whole number of
/// cache lines. The memory is NOT initialized — no page of it is touched —
/// so the caller controls which thread (and therefore, under first-touch
/// NUMA policy, which node) faults each page in. Free with aligned_free.
template <typename T>
T* aligned_alloc_uninit(std::size_t count) {
  if (count == 0) return nullptr;
  const std::size_t bytes = round_up(count * sizeof(T), kSimdAlignment);
  T* data = static_cast<T*>(std::aligned_alloc(kSimdAlignment, bytes));
  if (data == nullptr) throw std::bad_alloc();
  return data;
}

inline void aligned_free(void* p) noexcept { std::free(p); }

/// Tag selecting AlignedBuffer's uninitialized (first-touch-deferred)
/// constructor.
struct Uninitialized {};
inline constexpr Uninitialized kUninitialized{};

/// A fixed-size, 64-byte-aligned, zero-initialized array of trivially
/// copyable T. Movable, non-copyable (hot buffers should not be copied by
/// accident; use explicit clone()).
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    data_ = aligned_alloc_uninit<T>(count);
    for (std::size_t i = 0; i < count; ++i) data_[i] = T{};
  }

  /// Allocates without touching the memory: pages fault in on first write,
  /// which under Linux's first-touch policy places them on the writing
  /// thread's NUMA node. Caller must initialize every element it reads.
  AlignedBuffer(std::size_t count, Uninitialized) : size_(count) {
    if (count == 0) return;
    data_ = aligned_alloc_uninit<T>(count);
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Deep copy; deliberately spelled out rather than a copy constructor.
  AlignedBuffer clone() const {
    AlignedBuffer copy(size_);
    for (std::size_t i = 0; i < size_; ++i) copy.data_[i] = data_[i];
    return copy;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) {
    TINGE_EXPECTS(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    TINGE_EXPECTS(i < size_);
    return data_[i];
  }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  void fill(const T& value) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tinge
