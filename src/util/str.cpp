#include "util/str.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace tinge {

std::vector<std::string_view> split_view(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      fields.push_back(text.substr(begin));
      break;
    }
    fields.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::optional<float> parse_float(std::string_view text) {
  text = trim(text);
  if (text.empty() || text == "NA" || text == "na" || text == "NaN" ||
      text == "nan" || text == "NAN") {
    return std::nanf("");
  }
  float value = 0.0f;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty() || text == "NA" || text == "na" || text == "NaN" ||
      text == "nan" || text == "NAN") {
    return std::nan("");
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tinge
