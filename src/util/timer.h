// Wall-clock timing utilities used by the pipeline stage breakdown (Table T1)
// and by every benchmark harness.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace tinge {

/// Monotonic stopwatch. Constructed running.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds elapsed time to an accumulator on destruction; lets stage timers
/// nest naturally around early returns and exceptions.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += watch_.seconds(); }

 private:
  double& sink_;
  Stopwatch watch_;
};

/// "1.2 s", "34 ms", "21.8 min" — human-readable durations for reports.
inline std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  }
  return buf;
}

}  // namespace tinge
