// Small string helpers shared by the TSV parser, the argument parser and the
// report printers. Kept deliberately allocation-light: the TSV reader calls
// split_view() once per line of a potentially multi-gigabyte file.
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tinge {

/// Splits `text` on `sep` without copying. Adjacent separators produce empty
/// fields (TSV semantics: a missing value is an empty cell, not absence of a
/// column).
std::vector<std::string_view> split_view(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Locale-independent float parse. Returns nullopt on garbage; "NA", "NaN",
/// "nan" and the empty string parse as a quiet NaN (missing microarray spot).
std::optional<float> parse_float(std::string_view text);

/// Double-precision variant of parse_float (same missing-value handling).
std::optional<double> parse_double(std::string_view text);

/// Locale-independent integer parse.
std::optional<long long> parse_int(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tinge
