// Column-aligned plain-text tables. Every benchmark harness prints its
// paper-style rows through this so the output of `for b in build/bench/*`
// is uniform and diff-able across runs.
#pragma once

#include <string>
#include <vector>

namespace tinge {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with fixed precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule and right-aligned numeric-looking cells.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tinge
