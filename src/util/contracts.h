// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Contracts are *always on*: whole-genome runs take minutes to hours, so the
// relative cost of argument checking is nil, while a silently corrupted
// mutual-information matrix is very expensive to debug.
#pragma once

#include <stdexcept>
#include <string>

namespace tinge {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: `" + expr + "` at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace tinge

#define TINGE_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tinge::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define TINGE_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tinge::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define TINGE_ASSERT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tinge::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
