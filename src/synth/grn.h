// Ground-truth gene regulatory network generator.
//
// The paper's Arabidopsis compendium is not redistributable, so experiments
// run on synthetic data. The generator produces a directed acyclic GRN —
// genes indexed in topological order, edges from lower-indexed regulators —
// with either scale-free in/out structure (preferential attachment; real
// GRNs are hub-dominated) or Erdős–Rényi wiring as a control. Unlike the
// paper's setting, this gives every inferred network a scoreable truth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.h"

namespace tinge {

struct GrnEdge {
  std::uint32_t regulator = 0;  ///< always < target (topological order)
  std::uint32_t target = 0;
  float strength = 0.0f;  ///< in (0, 1]
  int sign = +1;          ///< +1 activation, -1 repression
};

struct Grn {
  std::size_t n_genes = 0;
  std::vector<GrnEdge> edges;

  /// The undirected skeleton as a finalized GeneNetwork (edge weight =
  /// strength) — the ground truth that inferred networks are scored against.
  GeneNetwork to_undirected() const;

  /// regulator-out-degree per gene (hubs show here for scale-free GRNs).
  std::vector<std::size_t> out_degrees() const;
};

enum class GrnTopology { ScaleFree, ErdosRenyi };

struct GrnParams {
  std::size_t n_genes = 200;
  double mean_regulators = 2.0;  ///< average in-degree of non-root genes
  GrnTopology topology = GrnTopology::ScaleFree;
  double min_strength = 0.5;
  double max_strength = 1.0;
  double repression_fraction = 0.3;  ///< fraction of edges with sign -1
  std::uint64_t seed = 1;
};

Grn generate_grn(const GrnParams& params);

}  // namespace tinge
