// Steady-state expression simulator over a ground-truth GRN.
//
// Each simulated microarray is one draw of the structural model, evaluated
// in topological order (the GRN generator guarantees regulator < target):
//
//   root genes:      x_g = N(0, 1)
//   regulated genes: x_g = sum_r s_r * sign_r * f(x_r) / sqrt(#regulators)
//                          + noise_sd * N(0, 1)
//
// with response f(u) = tanh(gain * u) (saturating, the biologically
// motivated nonlinearity that breaks pure-correlation methods) or identity.
// A measurement layer then adds array noise and optionally knocks out spots
// (NaN), reproducing the artifacts the preprocessing stage must handle.
#pragma once

#include <cstdint>

#include "data/expression_matrix.h"
#include "synth/grn.h"

namespace tinge {

struct ExpressionParams {
  std::size_t n_samples = 500;
  /// Intrinsic (biological) noise. The default keeps correlation localized
  /// around direct regulatory edges; much smaller values make propagation
  /// near-deterministic and the whole GRN inter-correlates.
  double noise_sd = 0.75;
  double measurement_noise_sd = 0.1;  ///< array noise added to every spot
  bool nonlinear = true;              ///< tanh response vs linear
  double response_gain = 1.5;         ///< gain inside tanh
  /// Fraction of regulatory edges whose response is NON-MONOTONE
  /// (f(u) = tanh(g*u)^2 - mean, a symmetric dosage-style response).
  /// Such edges carry mutual information but essentially zero Pearson or
  /// Spearman correlation — the dependency class that motivates MI-based
  /// inference over correlation networks in the first place.
  double nonmonotone_fraction = 0.0;
  double missing_fraction = 0.0;      ///< probability a spot reads NaN
  std::uint64_t seed = 2;
};

ExpressionMatrix simulate_expression(const Grn& grn,
                                     const ExpressionParams& params);

/// One-call synthetic benchmark dataset: GRN + expression + truth network.
struct SyntheticDataset {
  Grn grn;
  ExpressionMatrix expression;
  GeneNetwork truth;
};

SyntheticDataset make_synthetic_dataset(const GrnParams& grn_params,
                                        const ExpressionParams& expr_params);

}  // namespace tinge
