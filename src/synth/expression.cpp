#include "synth/expression.h"

#include <cmath>
#include <vector>

#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {

ExpressionMatrix simulate_expression(const Grn& grn,
                                     const ExpressionParams& params) {
  TINGE_EXPECTS(params.n_samples >= 2);
  TINGE_EXPECTS(params.noise_sd >= 0.0);
  TINGE_EXPECTS(params.measurement_noise_sd >= 0.0);
  TINGE_EXPECTS(params.missing_fraction >= 0.0 && params.missing_fraction < 1.0);
  TINGE_EXPECTS(params.nonmonotone_fraction >= 0.0 &&
                params.nonmonotone_fraction <= 1.0);

  std::vector<std::string> names;
  names.reserve(grn.n_genes);
  for (std::size_t g = 0; g < grn.n_genes; ++g)
    names.push_back("g" + std::to_string(g));
  std::vector<std::string> samples;
  samples.reserve(params.n_samples);
  for (std::size_t s = 0; s < params.n_samples; ++s)
    samples.push_back("array" + std::to_string(s));

  ExpressionMatrix matrix(grn.n_genes, params.n_samples, std::move(names),
                          std::move(samples));

  // Per-gene regulator lists (edges are regulator < target, so evaluating
  // genes in index order is a topological sweep).
  std::vector<std::vector<const GrnEdge*>> regulators(grn.n_genes);
  for (const GrnEdge& e : grn.edges) regulators[e.target].push_back(&e);

  Xoshiro256 rng(params.seed);

  // Per-edge response kind, drawn once so every sample sees the same
  // regulatory functions. tanh(g*u)^2 is centered so a non-monotone edge
  // contributes ~zero linear signal while staying fully informative.
  std::vector<bool> edge_nonmonotone(grn.edges.size(), false);
  if (params.nonmonotone_fraction > 0.0) {
    for (std::size_t e = 0; e < grn.edges.size(); ++e)
      edge_nonmonotone[e] = rng.uniform() < params.nonmonotone_fraction;
  }
  // Flags in the same per-target order as `regulators` (both follow edge
  // order).
  std::vector<std::vector<bool>> gene_edge_nonmonotone(grn.n_genes);
  for (std::size_t e = 0; e < grn.edges.size(); ++e)
    gene_edge_nonmonotone[grn.edges[e].target].push_back(edge_nonmonotone[e]);

  std::vector<double> x(grn.n_genes);
  const auto response = [&](double u) {
    return params.nonlinear ? std::tanh(params.response_gain * u) : u;
  };
  // E[tanh(g*Z)^2] for Z~N(0,1), g=1.5 is ~0.62; exact centering is not
  // required — any constant keeps the edge non-monotone and near-zero-r.
  const double nonmono_center = 0.62;
  const auto response_nonmonotone = [&](double u) {
    const double t = std::tanh(params.response_gain * u);
    return t * t - nonmono_center;
  };

  for (std::size_t s = 0; s < params.n_samples; ++s) {
    for (std::size_t g = 0; g < grn.n_genes; ++g) {
      const auto& regs = regulators[g];
      if (regs.empty()) {
        x[g] = rng.normal();
      } else {
        double drive = 0.0;
        for (std::size_t r = 0; r < regs.size(); ++r) {
          const GrnEdge* e = regs[r];
          const double f = gene_edge_nonmonotone[g][r]
                               ? response_nonmonotone(x[e->regulator])
                               : response(x[e->regulator]);
          drive += static_cast<double>(e->strength) * e->sign * f;
        }
        drive /= std::sqrt(static_cast<double>(regs.size()));
        x[g] = drive + params.noise_sd * rng.normal();
      }
    }
    for (std::size_t g = 0; g < grn.n_genes; ++g) {
      double measured = x[g] + params.measurement_noise_sd * rng.normal();
      if (params.missing_fraction > 0.0 &&
          rng.uniform() < params.missing_fraction) {
        matrix.at(g, s) = std::nanf("");
      } else {
        matrix.at(g, s) = static_cast<float>(measured);
      }
    }
  }
  return matrix;
}

SyntheticDataset make_synthetic_dataset(const GrnParams& grn_params,
                                        const ExpressionParams& expr_params) {
  SyntheticDataset dataset;
  dataset.grn = generate_grn(grn_params);
  dataset.expression = simulate_expression(dataset.grn, expr_params);
  dataset.truth = dataset.grn.to_undirected();
  return dataset;
}

}  // namespace tinge
