#include "synth/grn.h"

#include <algorithm>
#include <unordered_set>

#include "stats/rng.h"
#include "util/contracts.h"

namespace tinge {

GeneNetwork Grn::to_undirected() const {
  std::vector<std::string> names;
  names.reserve(n_genes);
  for (std::size_t g = 0; g < n_genes; ++g)
    names.push_back("g" + std::to_string(g));
  GeneNetwork network(std::move(names));
  for (const GrnEdge& e : edges)
    network.add_edge(e.regulator, e.target, e.strength);
  network.finalize();
  return network;
}

std::vector<std::size_t> Grn::out_degrees() const {
  std::vector<std::size_t> degree(n_genes, 0);
  for (const GrnEdge& e : edges) ++degree[e.regulator];
  return degree;
}

namespace {

float draw_strength(const GrnParams& params, Xoshiro256& rng) {
  return static_cast<float>(params.min_strength +
                            rng.uniform() *
                                (params.max_strength - params.min_strength));
}

int draw_sign(const GrnParams& params, Xoshiro256& rng) {
  return rng.uniform() < params.repression_fraction ? -1 : +1;
}

Grn generate_scale_free(const GrnParams& params, Xoshiro256& rng) {
  Grn grn;
  grn.n_genes = params.n_genes;

  // Preferential attachment over regulator out-degree: the pool holds one
  // entry per gene plus one per regulatory edge it already owns, so hubs
  // keep acquiring targets — the mechanism behind scale-free GRNs.
  std::vector<std::uint32_t> pool;
  pool.reserve(params.n_genes * 3);
  pool.push_back(0);

  std::unordered_set<std::uint32_t> chosen;
  for (std::uint32_t gene = 1; gene < params.n_genes; ++gene) {
    // In-degree ~ Uniform{1, ..., 2*mean-1} (mean = mean_regulators),
    // clipped to the number of available regulators.
    const auto max_in =
        std::max<std::uint64_t>(1, 2 * static_cast<std::uint64_t>(
                                         params.mean_regulators + 0.5) -
                                       1);
    std::size_t in_degree =
        static_cast<std::size_t>(1 + rng.below(max_in));
    in_degree = std::min<std::size_t>(in_degree, gene);

    chosen.clear();
    std::size_t attempts = 0;
    while (chosen.size() < in_degree && attempts < 64 * in_degree) {
      ++attempts;
      const std::uint32_t candidate =
          pool[static_cast<std::size_t>(rng.below(pool.size()))];
      if (candidate < gene) chosen.insert(candidate);
    }
    // Degenerate pools (tiny graphs) fall back to uniform choice.
    while (chosen.size() < in_degree)
      chosen.insert(static_cast<std::uint32_t>(rng.below(gene)));

    for (const std::uint32_t regulator : chosen) {
      grn.edges.push_back(GrnEdge{regulator, gene, draw_strength(params, rng),
                                  draw_sign(params, rng)});
      pool.push_back(regulator);
    }
    pool.push_back(gene);
  }
  return grn;
}

Grn generate_erdos_renyi(const GrnParams& params, Xoshiro256& rng) {
  Grn grn;
  grn.n_genes = params.n_genes;
  // Edge probability chosen so the expected in-degree of non-root genes
  // matches mean_regulators.
  const double p =
      params.n_genes > 1
          ? std::min(1.0, params.mean_regulators /
                              (static_cast<double>(params.n_genes - 1) / 2.0))
          : 0.0;
  for (std::uint32_t target = 1; target < params.n_genes; ++target) {
    for (std::uint32_t regulator = 0; regulator < target; ++regulator) {
      if (rng.uniform() < p) {
        grn.edges.push_back(GrnEdge{regulator, target,
                                    draw_strength(params, rng),
                                    draw_sign(params, rng)});
      }
    }
  }
  return grn;
}

}  // namespace

Grn generate_grn(const GrnParams& params) {
  TINGE_EXPECTS(params.n_genes >= 2);
  TINGE_EXPECTS(params.mean_regulators >= 0.5);
  TINGE_EXPECTS(params.min_strength > 0.0 &&
                params.min_strength <= params.max_strength);
  TINGE_EXPECTS(params.repression_fraction >= 0.0 &&
                params.repression_fraction <= 1.0);
  Xoshiro256 rng(params.seed);
  Grn grn = params.topology == GrnTopology::ScaleFree
                ? generate_scale_free(params, rng)
                : generate_erdos_renyi(params, rng);
  TINGE_ENSURES(std::all_of(grn.edges.begin(), grn.edges.end(),
                            [](const GrnEdge& e) {
                              return e.regulator < e.target;
                            }));
  return grn;
}

}  // namespace tinge
