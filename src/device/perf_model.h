// Analytic performance model for the MI workload on modeled devices.
//
// Purpose (see DESIGN.md §2): reproduce the *shape* of the paper's
// Xeon-vs-Phi comparison and its thread-scaling curves without the
// discontinued hardware. The model is deliberately simple and fully stated:
//
//   work(pair)  = m * k^2 FMAs (histogram accumulation)
//               + b^2 * C_log FMA-equivalents (entropy pass; C_log is the
//                 polynomial cost of one vector log, ~12 FMA-equivalents)
//   time(n, T)  = total_flops / (efficiency * flops(device, T)) + t_serial
//
// where flops(device, T) distributes T threads over cores (compact up to
// threads_per_core) using the device's SMT throughput curve, and
// `efficiency` — the fraction of peak the kernel actually achieves — is
// *calibrated once from a measured host run* of the very same kernel, then
// carried to the modeled devices. This transfers "how efficient is this
// code" from real measurement and takes "how fast is that machine" from the
// published spec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "device/device_spec.h"

namespace tinge {

struct MiWorkload {
  std::size_t pairs = 0;    ///< n*(n-1)/2 plus any permutation draws
  std::size_t samples = 0;  ///< m
  int order = 3;            ///< k
  int bins = 10;            ///< b

  /// FMA-equivalents per log evaluation in the entropy pass.
  static constexpr double kLogCost = 12.0;

  double flops() const {
    const double accum = static_cast<double>(pairs) *
                         static_cast<double>(samples) * order * order * 2.0;
    const double entropy = static_cast<double>(pairs) *
                           static_cast<double>(bins) * bins * kLogCost;
    return accum + entropy;
  }

  static MiWorkload all_pairs(std::size_t n_genes, std::size_t samples,
                              int order, int bins) {
    return MiWorkload{n_genes * (n_genes - 1) / 2, samples, order, bins};
  }
};

/// Accumulated live measurements of one executor lane (see
/// PerfModel::observe). `seconds` sums per-tile wall times across the
/// lane's contexts, so it is busy time, not lane wall time — gflops() is
/// therefore a *per-busy-thread* rate; multiply by the lane's thread count
/// for the lane's aggregate throughput.
struct LaneObservation {
  std::uint64_t tiles = 0;
  std::uint64_t pairs = 0;
  double seconds = 0.0;  ///< summed per-tile wall seconds (busy time)
  double flops = 0.0;    ///< summed MiWorkload::flops of the observed tiles

  /// Per-busy-thread FLOP rate of the observed tiles (0 until any exist).
  double gflops() const {
    return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
  }
};

class PerfModel {
 public:
  /// `measured_gflops` is the single-thread FLOP rate the real kernel
  /// achieved on `host` (from bench_mi_kernels). Efficiency is clamped to
  /// [0.01, 1].
  PerfModel(const DeviceSpec& host, double measured_gflops);

  /// Static-constant calibration: assume the kernel reaches this fraction
  /// of peak on every modeled device. The lane scheduler starts here and
  /// replaces the assumption with live observe() feedback as tiles finish.
  explicit PerfModel(double assumed_efficiency);

  /// Fraction of peak the calibrated kernel achieves.
  double efficiency() const { return efficiency_; }

  /// Deliverable FLOP rate of `device` with `threads` busy threads
  /// (compact placement; threads beyond total contexts are clamped).
  double device_gflops(const DeviceSpec& device, int threads) const;

  /// Predicted seconds for `workload` on `device` with `threads` threads.
  /// `serial_seconds` models the non-parallel pipeline portion.
  double predict_seconds(const DeviceSpec& device, const MiWorkload& workload,
                         int threads, double serial_seconds = 0.0) const;

  /// Predicted strong-scaling curve: seconds for each thread count.
  std::vector<double> predict_scaling(const DeviceSpec& device,
                                      const MiWorkload& workload,
                                      const std::vector<int>& thread_counts,
                                      double serial_seconds = 0.0) const;

  // --- live calibration (DESIGN.md §6i) ---------------------------------
  //
  // The lane scheduler reports every finished tile here; predictions for a
  // lane then prefer its measured rate over the static efficiency constant.
  // Thread-safe: worker contexts call observe() concurrently.

  /// Records one finished tile of `lane`: `tile` describes its workload
  /// (pairs set to the tile's pair count), `seconds` its wall time on the
  /// context that swept it.
  void observe(int lane, const MiWorkload& tile, double seconds);

  /// The lane's accumulated observations (all-zero until any exist).
  LaneObservation observation(int lane) const;

  /// Per-busy-thread GFLOP/s the lane actually achieved (0 = unobserved).
  double observed_gflops(int lane) const;

  /// Deliverable GFLOP/s of `device` running `threads` threads for `lane`:
  /// the lane's live rate scaled by its thread count once observations
  /// exist, the static device_gflops model before that.
  double calibrated_gflops(int lane, const DeviceSpec& device,
                           int threads) const;

 private:
  double efficiency_;
  mutable std::mutex observed_mutex_;
  std::vector<LaneObservation> observed_;
};

}  // namespace tinge
