// Analytic performance model for the MI workload on modeled devices.
//
// Purpose (see DESIGN.md §2): reproduce the *shape* of the paper's
// Xeon-vs-Phi comparison and its thread-scaling curves without the
// discontinued hardware. The model is deliberately simple and fully stated:
//
//   work(pair)  = m * k^2 FMAs (histogram accumulation)
//               + b^2 * C_log FMA-equivalents (entropy pass; C_log is the
//                 polynomial cost of one vector log, ~12 FMA-equivalents)
//   time(n, T)  = total_flops / (efficiency * flops(device, T)) + t_serial
//
// where flops(device, T) distributes T threads over cores (compact up to
// threads_per_core) using the device's SMT throughput curve, and
// `efficiency` — the fraction of peak the kernel actually achieves — is
// *calibrated once from a measured host run* of the very same kernel, then
// carried to the modeled devices. This transfers "how efficient is this
// code" from real measurement and takes "how fast is that machine" from the
// published spec.
#pragma once

#include <cstddef>
#include <vector>

#include "device/device_spec.h"

namespace tinge {

struct MiWorkload {
  std::size_t pairs = 0;    ///< n*(n-1)/2 plus any permutation draws
  std::size_t samples = 0;  ///< m
  int order = 3;            ///< k
  int bins = 10;            ///< b

  /// FMA-equivalents per log evaluation in the entropy pass.
  static constexpr double kLogCost = 12.0;

  double flops() const {
    const double accum = static_cast<double>(pairs) *
                         static_cast<double>(samples) * order * order * 2.0;
    const double entropy = static_cast<double>(pairs) *
                           static_cast<double>(bins) * bins * kLogCost;
    return accum + entropy;
  }

  static MiWorkload all_pairs(std::size_t n_genes, std::size_t samples,
                              int order, int bins) {
    return MiWorkload{n_genes * (n_genes - 1) / 2, samples, order, bins};
  }
};

class PerfModel {
 public:
  /// `measured_gflops` is the single-thread FLOP rate the real kernel
  /// achieved on `host` (from bench_mi_kernels). Efficiency is clamped to
  /// [0.01, 1].
  PerfModel(const DeviceSpec& host, double measured_gflops);

  /// Fraction of peak the calibrated kernel achieves.
  double efficiency() const { return efficiency_; }

  /// Deliverable FLOP rate of `device` with `threads` busy threads
  /// (compact placement; threads beyond total contexts are clamped).
  double device_gflops(const DeviceSpec& device, int threads) const;

  /// Predicted seconds for `workload` on `device` with `threads` threads.
  /// `serial_seconds` models the non-parallel pipeline portion.
  double predict_seconds(const DeviceSpec& device, const MiWorkload& workload,
                         int threads, double serial_seconds = 0.0) const;

  /// Predicted strong-scaling curve: seconds for each thread count.
  std::vector<double> predict_scaling(const DeviceSpec& device,
                                      const MiWorkload& workload,
                                      const std::vector<int>& thread_counts,
                                      double serial_seconds = 0.0) const;

 private:
  double efficiency_;
};

}  // namespace tinge
