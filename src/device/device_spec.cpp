#include "device/device_spec.h"

#include <fstream>

#include "simd/simd.h"
#include "util/contracts.h"
#include "util/str.h"

namespace tinge {

double DeviceSpec::core_sp_gflops(int threads_on_core) const {
  TINGE_EXPECTS(threads_on_core >= 1 && threads_on_core <= 4);
  return freq_ghz * vector_lanes_f32() * fma_per_cycle * 2.0 *
         smt_throughput[static_cast<std::size_t>(threads_on_core - 1)];
}

DeviceSpec xeon_phi_5110p() {
  DeviceSpec spec;
  spec.name = "Xeon Phi 5110P";
  spec.cores = 60;  // 61 physical; one is reserved for the uOS
  spec.threads_per_core = 4;
  spec.freq_ghz = 1.053;
  spec.vector_bits = 512;
  spec.fma_per_cycle = 1;
  // In-order core: a single thread issues a vector op at most every other
  // cycle; two or more resident threads saturate the VPU.
  spec.smt_throughput = {0.5, 1.0, 1.0, 1.0};
  return spec;
}

DeviceSpec dual_xeon_e5_2670() {
  DeviceSpec spec;
  spec.name = "2x Xeon E5-2670";
  spec.cores = 16;
  spec.threads_per_core = 2;
  spec.freq_ghz = 2.6;
  spec.vector_bits = 256;
  spec.fma_per_cycle = 1;  // separate mul + add ports ~ one 2-flop FMA/cycle
  spec.smt_throughput = {1.0, 1.1, 1.1, 1.1};
  return spec;
}

DeviceSpec xeon_phi_7250_knl() {
  DeviceSpec spec;
  spec.name = "Xeon Phi 7250 (KNL)";
  spec.cores = 68;
  spec.threads_per_core = 4;
  spec.freq_ghz = 1.4;
  spec.vector_bits = 512;
  spec.fma_per_cycle = 2;  // two VPUs per core
  // Out-of-order core: one thread sustains ~70% of the dual-VPU issue rate;
  // two threads saturate.
  spec.smt_throughput = {0.7, 1.0, 1.0, 1.0};
  return spec;
}

namespace {
double parse_host_freq_ghz() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (starts_with(line, "cpu MHz")) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        const auto mhz = parse_float(trim(std::string_view(line).substr(colon + 1)));
        if (mhz && *mhz > 100.0f) return static_cast<double>(*mhz) / 1000.0;
      }
    }
  }
  return 2.5;
}
}  // namespace

DeviceSpec host_device() {
  const par::Topology topo = par::detect_host_topology();
  DeviceSpec spec;
  spec.name = "host";
  spec.cores = topo.cores;
  spec.threads_per_core = std::min(topo.threads_per_core, 4);
  spec.freq_ghz = parse_host_freq_ghz();
  spec.vector_bits = simd::kNativeFloatWidth * 32;
  spec.fma_per_cycle = 2;  // modern big cores dual-issue FMA
  spec.smt_throughput = {1.0, 1.1, 1.1, 1.1};
  return spec;
}

}  // namespace tinge
