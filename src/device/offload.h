// Host/coprocessor work partitioning.
//
// The paper runs the Phi in native mode, but its discussion (and the TINGe
// lineage) covers splitting the pair space between the host Xeon and the
// coprocessor. With no physical coprocessor, this module computes the
// throughput-proportional partition from the perf model and — for code-path
// exercise — executes both partitions on the local thread pool, tagging
// which tiles would have gone where. The partition math (the part that
// generalizes) is real; the co-execution is simulated and labeled as such.
#pragma once

#include <cstddef>
#include <vector>

#include "device/perf_model.h"
#include "mi/bspline_kernels.h"

namespace tinge {

struct OffloadPlan {
  double host_fraction = 0.0;    ///< share of pairs kept on the host
  double device_fraction = 0.0;  ///< share sent to the coprocessor
  double host_seconds = 0.0;     ///< predicted time of the host share
  double device_seconds = 0.0;   ///< predicted time of the device share
  double combined_seconds = 0.0; ///< max of the two (they overlap)
  double speedup_vs_host = 0.0;  ///< host-only time / combined
};

/// Splits `workload` between `host` (using `host_threads`) and `device`
/// (fully subscribed) proportionally to modeled throughput, so both sides
/// finish together.
OffloadPlan plan_offload(const PerfModel& model, const DeviceSpec& host,
                         int host_threads, const DeviceSpec& device,
                         const MiWorkload& workload);

/// Throughput-proportional split of one workload across N executors:
/// fractions[i] = rate_i / sum(rates), so all of them finish together when
/// the rates hold. `lane_gflops` entries must be positive. This is the
/// N-lane generalization plan_offload's host/device partition is a special
/// case of, and what seeds the lane ledger's initial tile grants.
std::vector<double> plan_lane_split(const std::vector<double>& lane_gflops);

/// Models one executor lane's kernel variant as a device of its own: the
/// scalar and unrolled kernels drive a single 32-bit FP lane per issue (a
/// coprocessor-without-vectors stand-in), every SIMD panel kernel keeps the
/// host's full vector width. Core counts and frequency stay the host's —
/// the lanes share one physical machine; only deliverable vector width
/// differs.
DeviceSpec lane_device(const DeviceSpec& host, MiKernel kernel);

}  // namespace tinge
