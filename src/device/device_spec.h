// Device descriptions for the performance model.
//
// The paper's hardware — an Intel Xeon Phi 5110P coprocessor and a
// dual-socket Xeon E5-2670 host — is long discontinued. DESIGN.md §2
// documents the substitution: the *code paths* (threading shape, 512-bit
// kernels) run for real on the host, while the *paper-scale comparisons*
// (experiment T2) come from an analytic model over these specs, calibrated
// against measured host throughput (device/perf_model.h).
//
// Spec numbers below are the published ones for the two machines in the
// paper's evaluation.
#pragma once

#include <array>
#include <string>

#include "parallel/topology.h"

namespace tinge {

struct DeviceSpec {
  std::string name;
  int cores = 1;
  int threads_per_core = 1;
  double freq_ghz = 1.0;
  int vector_bits = 128;
  int fma_per_cycle = 1;  ///< vector FMA issues per core per cycle

  /// Relative core throughput when t in 1..4 hardware threads are resident.
  /// The Phi's in-order cores cannot issue back-to-back vector ops from one
  /// thread (mu[0] = 0.5 — the reason the paper needs >= 2 threads/core);
  /// out-of-order Xeons start at 1.0 and gain a little from SMT.
  std::array<double, 4> smt_throughput = {1.0, 1.0, 1.0, 1.0};

  int total_threads() const { return cores * threads_per_core; }
  int vector_lanes_f32() const { return vector_bits / 32; }

  /// Peak single-precision GFLOP/s with every core saturated
  /// (2 flops per FMA lane).
  double peak_sp_gflops() const {
    return cores * freq_ghz * vector_lanes_f32() * fma_per_cycle * 2.0 *
           smt_throughput[static_cast<std::size_t>(threads_per_core - 1)];
  }

  /// Peak of a single core running `threads_on_core` hardware threads.
  double core_sp_gflops(int threads_on_core) const;

  par::Topology topology() const {
    return par::Topology{cores, threads_per_core};
  }
};

/// Intel Xeon Phi 5110P: 60 usable cores x 4 threads, 1.053 GHz, 512-bit.
DeviceSpec xeon_phi_5110p();

/// Dual-socket Intel Xeon E5-2670 (Sandy Bridge): 16 cores x 2 HT,
/// 2.6 GHz, 256-bit AVX (mul+add, no FMA — modeled as fma_per_cycle=1 with
/// the 2-flop convention since mul and add issue in parallel).
DeviceSpec dual_xeon_e5_2670();

/// Intel Xeon Phi 7250 "Knights Landing" (the 5110P's successor, where this
/// code line would have migrated next): 68 out-of-order cores x 4 threads,
/// 1.4 GHz, two 512-bit VPUs per core. Included for the forward-looking
/// panel of bench_device_model.
DeviceSpec xeon_phi_7250_knl();

/// The machine this process runs on, with frequency parsed from
/// /proc/cpuinfo when available (fallback 2.5 GHz) and the vector width the
/// binary was compiled for.
DeviceSpec host_device();

}  // namespace tinge
