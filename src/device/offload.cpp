#include "device/offload.h"

#include <algorithm>

#include "util/contracts.h"

namespace tinge {

OffloadPlan plan_offload(const PerfModel& model, const DeviceSpec& host,
                         int host_threads, const DeviceSpec& device,
                         const MiWorkload& workload) {
  const double host_rate = model.device_gflops(host, host_threads);
  const double device_rate =
      model.device_gflops(device, device.total_threads());
  TINGE_EXPECTS(host_rate > 0.0 && device_rate > 0.0);

  OffloadPlan plan;
  plan.host_fraction = host_rate / (host_rate + device_rate);
  plan.device_fraction = 1.0 - plan.host_fraction;

  MiWorkload host_share = workload;
  host_share.pairs =
      static_cast<std::size_t>(plan.host_fraction *
                               static_cast<double>(workload.pairs));
  MiWorkload device_share = workload;
  device_share.pairs = workload.pairs - host_share.pairs;

  plan.host_seconds = model.predict_seconds(host, host_share, host_threads);
  plan.device_seconds =
      model.predict_seconds(device, device_share, device.total_threads());
  plan.combined_seconds = std::max(plan.host_seconds, plan.device_seconds);
  const double host_only =
      model.predict_seconds(host, workload, host_threads);
  plan.speedup_vs_host =
      plan.combined_seconds > 0.0 ? host_only / plan.combined_seconds : 0.0;
  return plan;
}

}  // namespace tinge
