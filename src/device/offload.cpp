#include "device/offload.h"

#include <algorithm>

#include "util/contracts.h"

namespace tinge {

OffloadPlan plan_offload(const PerfModel& model, const DeviceSpec& host,
                         int host_threads, const DeviceSpec& device,
                         const MiWorkload& workload) {
  const double host_rate = model.device_gflops(host, host_threads);
  const double device_rate =
      model.device_gflops(device, device.total_threads());
  TINGE_EXPECTS(host_rate > 0.0 && device_rate > 0.0);

  OffloadPlan plan;
  const std::vector<double> fractions =
      plan_lane_split({host_rate, device_rate});
  plan.host_fraction = fractions[0];
  plan.device_fraction = fractions[1];

  MiWorkload host_share = workload;
  host_share.pairs =
      static_cast<std::size_t>(plan.host_fraction *
                               static_cast<double>(workload.pairs));
  MiWorkload device_share = workload;
  device_share.pairs = workload.pairs - host_share.pairs;

  plan.host_seconds = model.predict_seconds(host, host_share, host_threads);
  plan.device_seconds =
      model.predict_seconds(device, device_share, device.total_threads());
  plan.combined_seconds = std::max(plan.host_seconds, plan.device_seconds);
  const double host_only =
      model.predict_seconds(host, workload, host_threads);
  plan.speedup_vs_host =
      plan.combined_seconds > 0.0 ? host_only / plan.combined_seconds : 0.0;
  return plan;
}

std::vector<double> plan_lane_split(const std::vector<double>& lane_gflops) {
  TINGE_EXPECTS(!lane_gflops.empty());
  double total = 0.0;
  for (const double rate : lane_gflops) {
    TINGE_EXPECTS(rate > 0.0);
    total += rate;
  }
  std::vector<double> fractions;
  fractions.reserve(lane_gflops.size());
  for (const double rate : lane_gflops) fractions.push_back(rate / total);
  return fractions;
}

DeviceSpec lane_device(const DeviceSpec& host, MiKernel kernel) {
  DeviceSpec device = host;
  device.name = host.name + "/" + kernel_name(kernel);
  switch (kernel) {
    case MiKernel::Scalar:
    case MiKernel::Unrolled:
      device.vector_bits = 32;  // one f32 lane per issue
      break;
    case MiKernel::Simd:
    case MiKernel::Replicated:
    case MiKernel::Gather512:
    case MiKernel::Auto:
      break;  // full host vector width
  }
  return device;
}

}  // namespace tinge
