#include "device/perf_model.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace tinge {

PerfModel::PerfModel(const DeviceSpec& host, double measured_gflops) {
  TINGE_EXPECTS(measured_gflops > 0.0);
  const double single_thread_peak = host.core_sp_gflops(1);
  efficiency_ = std::clamp(measured_gflops / single_thread_peak, 0.01, 1.0);
}

PerfModel::PerfModel(double assumed_efficiency) {
  TINGE_EXPECTS(assumed_efficiency > 0.0);
  efficiency_ = std::clamp(assumed_efficiency, 0.01, 1.0);
}

void PerfModel::observe(int lane, const MiWorkload& tile, double seconds) {
  TINGE_EXPECTS(lane >= 0);
  TINGE_EXPECTS(seconds >= 0.0);
  const std::lock_guard<std::mutex> lock(observed_mutex_);
  if (observed_.size() <= static_cast<std::size_t>(lane))
    observed_.resize(static_cast<std::size_t>(lane) + 1);
  LaneObservation& slot = observed_[static_cast<std::size_t>(lane)];
  ++slot.tiles;
  slot.pairs += tile.pairs;
  slot.seconds += seconds;
  slot.flops += tile.flops();
}

LaneObservation PerfModel::observation(int lane) const {
  TINGE_EXPECTS(lane >= 0);
  const std::lock_guard<std::mutex> lock(observed_mutex_);
  if (static_cast<std::size_t>(lane) >= observed_.size())
    return LaneObservation{};
  return observed_[static_cast<std::size_t>(lane)];
}

double PerfModel::observed_gflops(int lane) const {
  return observation(lane).gflops();
}

double PerfModel::calibrated_gflops(int lane, const DeviceSpec& device,
                                    int threads) const {
  const LaneObservation seen = observation(lane);
  if (seen.seconds > 0.0 && seen.flops > 0.0)
    return seen.gflops() * threads;
  return device_gflops(device, threads);
}

double PerfModel::device_gflops(const DeviceSpec& device, int threads) const {
  TINGE_EXPECTS(threads >= 1);
  threads = std::min(threads, device.total_threads());
  // Compact placement: fill cores with one thread each, then add SMT
  // siblings round-robin — matching how the paper saturates the Phi.
  const int full_rounds = threads / device.cores;       // complete SMT layers
  const int remainder = threads % device.cores;         // cores with +1 thread
  double total = 0.0;
  if (full_rounds >= 1) {
    const int deep = std::min(full_rounds + (remainder > 0 ? 1 : 0), 4);
    const int shallow = std::min(std::max(full_rounds, 1), 4);
    total += remainder * device.core_sp_gflops(deep);
    total += (device.cores - remainder) * device.core_sp_gflops(shallow);
  } else {
    total = remainder * device.core_sp_gflops(1);
  }
  return efficiency_ * total;
}

double PerfModel::predict_seconds(const DeviceSpec& device,
                                  const MiWorkload& workload, int threads,
                                  double serial_seconds) const {
  const double rate = device_gflops(device, threads) * 1e9;
  TINGE_EXPECTS(rate > 0.0);
  return workload.flops() / rate + serial_seconds;
}

std::vector<double> PerfModel::predict_scaling(
    const DeviceSpec& device, const MiWorkload& workload,
    const std::vector<int>& thread_counts, double serial_seconds) const {
  std::vector<double> seconds;
  seconds.reserve(thread_counts.size());
  for (const int threads : thread_counts)
    seconds.push_back(
        predict_seconds(device, workload, threads, serial_seconds));
  return seconds;
}

}  // namespace tinge
