#include "mi/phi_mixing.h"

#include <cmath>
#include <vector>

#include "util/contracts.h"

namespace tinge {

namespace {

/// phi(Y|X) from a b x b joint count table: for each occupied x-bin, the
/// total-variation distance between P(Y | X = x) and P(Y).
double phi_from_counts(const std::vector<double>& joint,
                       const std::vector<double>& row_totals,
                       const std::vector<double>& col_totals, std::size_t b,
                       double m) {
  double phi = 0.0;
  for (std::size_t bx = 0; bx < b; ++bx) {
    const double n_x = row_totals[bx];
    if (n_x <= 0.0) continue;
    double tv = 0.0;
    for (std::size_t by = 0; by < b; ++by)
      tv += std::abs(joint[bx * b + by] / n_x - col_totals[by] / m);
    phi = std::max(phi, 0.5 * tv);
  }
  return phi;
}

}  // namespace

double phi_mixing_from_ranks(std::span<const std::uint32_t> ranks_x,
                             std::span<const std::uint32_t> ranks_y,
                             int bins) {
  TINGE_EXPECTS(ranks_x.size() == ranks_y.size());
  TINGE_EXPECTS(ranks_x.size() >= 2);
  TINGE_EXPECTS(bins >= 1);
  const std::size_t m = ranks_x.size();
  const auto b = static_cast<std::size_t>(bins);
  std::vector<double> joint(b * b, 0.0), px(b, 0.0), py(b, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t bx = static_cast<std::size_t>(ranks_x[j]) * b / m;
    const std::size_t by = static_cast<std::size_t>(ranks_y[j]) * b / m;
    joint[bx * b + by] += 1.0;
    px[bx] += 1.0;
    py[by] += 1.0;
  }
  return phi_from_counts(joint, px, py, b, static_cast<double>(m));
}

double phi_mixing_symmetric(std::span<const std::uint32_t> ranks_x,
                            std::span<const std::uint32_t> ranks_y,
                            int bins) {
  TINGE_EXPECTS(ranks_x.size() == ranks_y.size());
  TINGE_EXPECTS(ranks_x.size() >= 2);
  TINGE_EXPECTS(bins >= 1);
  const std::size_t m = ranks_x.size();
  const auto b = static_cast<std::size_t>(bins);
  std::vector<double> joint(b * b, 0.0), px(b, 0.0), py(b, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t bx = static_cast<std::size_t>(ranks_x[j]) * b / m;
    const std::size_t by = static_cast<std::size_t>(ranks_y[j]) * b / m;
    joint[bx * b + by] += 1.0;
    px[bx] += 1.0;
    py[by] += 1.0;
  }
  const double md = static_cast<double>(m);
  const double phi_yx = phi_from_counts(joint, px, py, b, md);
  // phi(X|Y) reuses the same table transposed.
  std::vector<double> transposed(b * b, 0.0);
  for (std::size_t bx = 0; bx < b; ++bx)
    for (std::size_t by = 0; by < b; ++by)
      transposed[by * b + bx] = joint[bx * b + by];
  const double phi_xy = phi_from_counts(transposed, py, px, b, md);
  return std::max(phi_yx, phi_xy);
}

}  // namespace tinge
