// Kraskov–Stögbauer–Grassberger (KSG, 2004) k-nearest-neighbour mutual
// information estimator — the modern continuous-MI gold standard, included
// as an accuracy baseline for the estimator ablation (A1).
//
// Why it is a baseline and not a pipeline kernel: one KSG evaluation is
// O(m^2) here (exact max-norm k-NN without spatial indexing) versus the
// B-spline kernel's table-driven O(m*k^2); at 1.2e8 gene pairs that
// difference is the whole ballgame — which is precisely the trade the
// paper's estimator choice embodies.
//
// Estimator (KSG type 1):
//   I(X;Y) = psi(k) + psi(m) - < psi(n_x + 1) + psi(n_y + 1) >
// where, per sample i, eps_i is the max-norm distance to its k-th nearest
// neighbour and n_x/n_y count samples strictly within eps_i along each axis.
#pragma once

#include <cstddef>
#include <span>

namespace tinge {

/// Digamma function for positive arguments (recurrence + asymptotic
/// series; |error| < 1e-10 for x >= 1). Exposed for tests.
double digamma(double x);

/// KSG-1 MI estimate (nats) with k neighbours. Requires k >= 1 and
/// x.size() == y.size() > k. Exact ties in either coordinate are broken by
/// a deterministic index-based epsilon so the k-NN structure is well
/// defined on rank-transformed (all-distinct) or raw data alike.
double ksg_mi(std::span<const float> x, std::span<const float> y, int k = 4);

}  // namespace tinge
