#include "mi/bspline_kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "simd/math.h"
#include "simd/simd.h"
#include "stats/rng.h"
#include "util/contracts.h"
#include "util/timer.h"

namespace tinge {

namespace {

// --------------------------------------------------------------------------
// Accumulation variants. Each clears exactly the histogram region it uses.
// --------------------------------------------------------------------------

void accumulate_scalar(const WeightTable& table, const std::uint32_t* rx,
                       const std::uint32_t* ry, std::size_t m, float* hist,
                       std::size_t hist_stride) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const float* wy = weights + ryj * ws;
    float* base = hist + static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                  static_cast<std::size_t>(first_bin[ryj]);
    for (int a = 0; a < k; ++a) {
      const float wxa = wx[a];
      float* row = base + static_cast<std::size_t>(a) * hist_stride;
      for (int c = 0; c < k; ++c) row[c] += wxa * wy[c];
    }
  }
}

template <int K>
void accumulate_unrolled(const WeightTable& table, const std::uint32_t* rx,
                         const std::uint32_t* ry, std::size_t m, float* hist,
                         std::size_t hist_stride) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const float* wy = weights + ryj * ws;
    float* base = hist + static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                  static_cast<std::size_t>(first_bin[ryj]);
#pragma GCC unroll 8
    for (int a = 0; a < K; ++a) {
      const float wxa = wx[a];
      float* row = base + static_cast<std::size_t>(a) * hist_stride;
#pragma GCC unroll 8
      for (int c = 0; c < K; ++c) row[c] += wxa * wy[c];
    }
  }
}

// One broadcast*vector FMA per histogram row touched; V covers the padded
// weight row (4 floats for order <= 4, 8 for order <= 8).
template <typename V>
void accumulate_simd_impl(const WeightTable& table, const std::uint32_t* rx,
                          const std::uint32_t* ry, std::size_t m, float* hist,
                          std::size_t hist_stride, std::size_t replica_offset_mask,
                          std::size_t replica_cells) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const V wyv = V::loadu(weights + ryj * ws);
    float* base = hist + (j & replica_offset_mask) * replica_cells +
                  static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                  static_cast<std::size_t>(first_bin[ryj]);
    for (int a = 0; a < k; ++a) {
      float* row = base + static_cast<std::size_t>(a) * hist_stride;
      const V updated = V::fmadd(V::broadcast(wx[a]), wyv, V::loadu(row));
      updated.storeu(row);
    }
  }
}

template <typename V>
void accumulate_simd(const WeightTable& table, const std::uint32_t* rx,
                     const std::uint32_t* ry, std::size_t m, float* hist,
                     std::size_t hist_stride) {
  accumulate_simd_impl<V>(table, rx, ry, m, hist, hist_stride,
                          /*replica_offset_mask=*/0, /*replica_cells=*/0);
}

void merge_replicas(float* hist, std::size_t replica_cells);

template <typename V>
void accumulate_replicated(const WeightTable& table, const std::uint32_t* rx,
                           const std::uint32_t* ry, std::size_t m, float* hist,
                           std::size_t hist_stride) {
  const std::size_t replica_cells =
      static_cast<std::size_t>(table.bins()) * hist_stride;
  accumulate_simd_impl<V>(table, rx, ry, m, hist, hist_stride,
                          /*replica_offset_mask=*/kHistogramReplicas - 1,
                          replica_cells);
  // replica_cells is a multiple of the histogram row stride, which is a
  // multiple of 16 floats — safe for full-width aligned steps.
  merge_replicas(hist, replica_cells);
}

#if defined(__AVX512F__)
// Four samples per iteration, one 512-bit gather/FMA/scatter triple per row
// offset. Sample g of a group owns replica g; the 16 scattered addresses of
// an iteration are therefore pairwise distinct by construction. Requires
// order <= 4 (weight rows padded to 4 floats).
void accumulate_gather512(const WeightTable& table, const std::uint32_t* rx,
                          const std::uint32_t* ry, std::size_t m, float* hist,
                          std::size_t hist_stride) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  TINGE_EXPECTS(k <= 4);
  TINGE_EXPECTS(ws == 4);
  const auto replica_cells =
      static_cast<std::int32_t>(static_cast<std::size_t>(table.bins()) *
                                hist_stride);
  const auto stride_i32 = static_cast<std::int32_t>(hist_stride);

  // lane -> group id (0,0,0,0,1,1,1,1,...) for broadcasting per-sample
  // scalars into their lane group.
  const __m512i group_of_lane = _mm512_set_epi32(3, 3, 3, 3, 2, 2, 2, 2,
                                                 1, 1, 1, 1, 0, 0, 0, 0);
  // lane -> column offset within the weight row (0,1,2,3 repeating).
  const __m512i column_of_lane = _mm512_set_epi32(3, 2, 1, 0, 3, 2, 1, 0,
                                                  3, 2, 1, 0, 3, 2, 1, 0);
  const __m512i replica_base = _mm512_mullo_epi32(
      group_of_lane, _mm512_set1_epi32(replica_cells));

  const std::size_t groups = m / 4;
  for (std::size_t gi = 0; gi < groups; ++gi) {
    const std::size_t j = gi * 4;
    // Per-group scalars packed into the low 4 lanes, then spread by group.
    alignas(16) std::int32_t base4[4];
    alignas(64) float wy_rows[16];
    const float* wx_rows[4];
    for (int g = 0; g < 4; ++g) {
      const std::uint32_t rxg = rx[j + static_cast<std::size_t>(g)];
      const std::uint32_t ryg = ry[j + static_cast<std::size_t>(g)];
      base4[g] = first_bin[rxg] * stride_i32 + first_bin[ryg];
      const float* wy = weights + ryg * ws;
      for (int c = 0; c < 4; ++c) wy_rows[g * 4 + c] = wy[c];
      wx_rows[g] = weights + rxg * ws;
    }
    const __m512i base = _mm512_add_epi32(
        _mm512_add_epi32(
            _mm512_permutexvar_epi32(
                group_of_lane,
                _mm512_castsi128_si512(_mm_load_si128(
                    reinterpret_cast<const __m128i*>(base4)))),
            column_of_lane),
        replica_base);
    const __m512 wy_vec = _mm512_load_ps(wy_rows);

    for (int a = 0; a < k; ++a) {
      // wx[a] of each sample broadcast into its lane group.
      alignas(16) float wx4[4] = {wx_rows[0][a], wx_rows[1][a],
                                  wx_rows[2][a], wx_rows[3][a]};
      const __m512 wx_vec = _mm512_permutexvar_ps(
          group_of_lane, _mm512_castps128_ps512(_mm_load_ps(wx4)));
      const __m512i indices =
          _mm512_add_epi32(base, _mm512_set1_epi32(a * stride_i32));
      const __m512 patch = _mm512_i32gather_ps(indices, hist, 4);
      const __m512 updated = _mm512_fmadd_ps(wx_vec, wy_vec, patch);
      _mm512_i32scatter_ps(hist, indices, updated, 4);
    }
  }

  // Tail samples take the 128-bit replicated path (replica j & 3).
  const std::size_t tail_begin = groups * 4;
  for (std::size_t j = tail_begin; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const simd::F32x4 wyv = simd::F32x4::loadu(weights + ryj * ws);
    float* base_ptr = hist +
                      (j & 3) * static_cast<std::size_t>(replica_cells) +
                      static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                      static_cast<std::size_t>(first_bin[ryj]);
    for (int a = 0; a < k; ++a) {
      float* row = base_ptr + static_cast<std::size_t>(a) * hist_stride;
      simd::F32x4::fmadd(simd::F32x4::broadcast(wx[a]), wyv,
                         simd::F32x4::loadu(row))
          .storeu(row);
    }
  }
}
#endif  // __AVX512F__

// Reduce the replicas into replica 0 and zero the rest (shared by the
// Replicated and Gather512 kernels).
void merge_replicas(float* hist, std::size_t replica_cells) {
  using W = simd::NativeF32;
  constexpr std::size_t lanes = static_cast<std::size_t>(W::width);
  const W zero = W::zero();
  for (std::size_t i = 0; i < replica_cells; i += lanes) {
    W acc = W::load(hist + i);
    for (int r = 1; r < kHistogramReplicas; ++r) {
      float* replica = hist + static_cast<std::size_t>(r) * replica_cells + i;
      acc = acc + W::load(replica);
      zero.store(replica);
    }
    acc.store(hist + i);
  }
}

double entropy_from_region(const float* cells, std::size_t count, std::size_t m) {
  const double neg_sum = simd::entropy_sum(cells, count);
  return neg_sum / static_cast<double>(m) + std::log(static_cast<double>(m));
}

// --------------------------------------------------------------------------
// Panel accumulation: one row gene against `width` column genes, one sweep
// over the m samples. Region p of `hist` (region_cells floats apart) is the
// joint histogram of pair (x, y_p). For a fixed region every variant issues
// the per-pair kernel's float operations in the same order, so the panel is
// bit-identical to the per-pair path; only the rx-side table lookups and the
// histogram clears are shared across the panel.
//
// All panel variants are templated on the rank element type RankT (uint32
// classic, uint16 staged) — the index arithmetic is identical, only the
// bytes streamed per sample halve. The scalar/FMA/gather512 ladder
// additionally takes a Prefetch flag (table-row prefetches for sample
// j + kPrefetchDistance: the rank streams are sequential and hardware-
// prefetched, but the rank-indexed table rows are not), and the FMA ladder
// a Packed flag (read the interleaved [weights | first_bin] rows).
// --------------------------------------------------------------------------

inline void prefetch_read(const void* p) { __builtin_prefetch(p, 0, 3); }

template <typename RankT, bool Prefetch>
void panel_accumulate_scalar(const WeightTable& table, const RankT* rx,
                             const RankT* const* ry, std::size_t width,
                             std::size_t m, float* hist,
                             std::size_t hist_stride,
                             std::size_t region_cells) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  for (std::size_t j = 0; j < m; ++j) {
    if constexpr (Prefetch) {
      const std::size_t jn = j + kPrefetchDistance;
      if (jn < m) {
        prefetch_read(weights + static_cast<std::size_t>(rx[jn]) * ws);
        for (std::size_t p = 0; p < width; ++p)
          prefetch_read(weights + static_cast<std::size_t>(ry[p][jn]) * ws);
      }
    }
    const std::size_t rxj = rx[j];
    const float* wx = weights + rxj * ws;
    const std::size_t x_base =
        static_cast<std::size_t>(first_bin[rxj]) * hist_stride;
    for (std::size_t p = 0; p < width; ++p) {
      const std::size_t ryj = ry[p][j];
      const float* wy = weights + ryj * ws;
      float* base = hist + p * region_cells + x_base +
                    static_cast<std::size_t>(first_bin[ryj]);
      for (int a = 0; a < k; ++a) {
        const float wxa = wx[a];
        float* row = base + static_cast<std::size_t>(a) * hist_stride;
        for (int c = 0; c < k; ++c) row[c] += wxa * wy[c];
      }
    }
  }
}

template <int K, typename RankT>
void panel_accumulate_unrolled(const WeightTable& table, const RankT* rx,
                               const RankT* const* ry, std::size_t width,
                               std::size_t m, float* hist,
                               std::size_t hist_stride,
                               std::size_t region_cells) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t rxj = rx[j];
    const float* wx = weights + rxj * ws;
    const std::size_t x_base =
        static_cast<std::size_t>(first_bin[rxj]) * hist_stride;
    for (std::size_t p = 0; p < width; ++p) {
      const std::size_t ryj = ry[p][j];
      const float* wy = weights + ryj * ws;
      float* base = hist + p * region_cells + x_base +
                    static_cast<std::size_t>(first_bin[ryj]);
#pragma GCC unroll 8
      for (int a = 0; a < K; ++a) {
        const float wxa = wx[a];
        float* row = base + static_cast<std::size_t>(a) * hist_stride;
#pragma GCC unroll 8
        for (int c = 0; c < K; ++c) row[c] += wxa * wy[c];
      }
    }
  }
}

template <typename V, typename RankT, bool Packed, bool Prefetch>
void panel_accumulate_simd(const WeightTable& table, const RankT* rx,
                           const RankT* const* ry, std::size_t width,
                           std::size_t m, float* hist, std::size_t hist_stride,
                           std::size_t region_cells) {
  // Packed: one interleaved row per rank carries the weights AND the
  // bit-cast first_bin, so a y-side lookup touches one cache-line-bounded
  // row instead of a weight row plus a separate first_bin load. The float
  // values are identical either way — so are the results.
  const float* rows = Packed ? table.packed_data() : table.weights_data();
  const std::size_t row_stride =
      Packed ? table.packed_stride() : table.weight_stride();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t fb_slot = table.packed_first_bin_slot();
  const int k = table.order();
  for (std::size_t j = 0; j < m; ++j) {
    if constexpr (Prefetch) {
      const std::size_t jn = j + kPrefetchDistance;
      if (jn < m) {
        prefetch_read(rows + static_cast<std::size_t>(rx[jn]) * row_stride);
        for (std::size_t p = 0; p < width; ++p)
          prefetch_read(rows +
                        static_cast<std::size_t>(ry[p][jn]) * row_stride);
      }
    }
    const std::size_t rxj = rx[j];
    const float* wx = rows + rxj * row_stride;
    const std::int32_t fbx =
        Packed ? std::bit_cast<std::int32_t>(wx[fb_slot]) : first_bin[rxj];
    const std::size_t x_base = static_cast<std::size_t>(fbx) * hist_stride;
    // The row gene's broadcasts are hoisted once per sample and reused by
    // every panel member — the core of the row-reuse win.
    V wxv[BsplineBasis::kMaxOrder];
    for (int a = 0; a < k; ++a) wxv[a] = V::broadcast(wx[a]);
    for (std::size_t p = 0; p < width; ++p) {
      const std::size_t ryj = ry[p][j];
      const float* wy = rows + ryj * row_stride;
      const V wyv = V::loadu(wy);
      const std::int32_t fby =
          Packed ? std::bit_cast<std::int32_t>(wy[fb_slot]) : first_bin[ryj];
      float* base =
          hist + p * region_cells + x_base + static_cast<std::size_t>(fby);
      for (int a = 0; a < k; ++a) {
        float* row = base + static_cast<std::size_t>(a) * hist_stride;
        V::fmadd(wxv[a], wyv, V::loadu(row)).storeu(row);
      }
    }
  }
}

#if defined(__AVX512F__)
// Four panel members per iteration, one 512-bit gather/FMA/scatter triple
// per row offset (4 members x 4 padded weights = 16 lanes). Members write
// disjoint histogram regions, so the 16 scattered addresses are pairwise
// distinct by construction — no replicas needed, unlike the per-pair
// gather kernel. wx[a] is shared by the whole panel and broadcast to all
// lanes. Requires order <= 4 (weight rows padded to 4 floats).
template <typename RankT, bool Prefetch>
void panel_accumulate_gather512(const WeightTable& table, const RankT* rx,
                                const RankT* const* ry, std::size_t width,
                                std::size_t m, float* hist,
                                std::size_t hist_stride,
                                std::size_t region_cells) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  TINGE_EXPECTS(k <= 4);
  TINGE_EXPECTS(ws == 4);
  const auto stride_i32 = static_cast<std::int32_t>(hist_stride);
  const auto region_i32 = static_cast<std::int32_t>(region_cells);

  // lane -> panel-member slot (0,0,0,0,1,1,1,1,...) and lane -> weight
  // column (0,1,2,3 repeating).
  const __m512i group_of_lane = _mm512_set_epi32(3, 3, 3, 3, 2, 2, 2, 2,
                                                 1, 1, 1, 1, 0, 0, 0, 0);
  const __m512i column_of_lane = _mm512_set_epi32(3, 2, 1, 0, 3, 2, 1, 0,
                                                  3, 2, 1, 0, 3, 2, 1, 0);
  const std::size_t groups = width / 4;

  for (std::size_t j = 0; j < m; ++j) {
    if constexpr (Prefetch) {
      const std::size_t jn = j + kPrefetchDistance;
      if (jn < m) {
        prefetch_read(weights + static_cast<std::size_t>(rx[jn]) * ws);
        for (std::size_t p = 0; p < width; ++p)
          prefetch_read(weights + static_cast<std::size_t>(ry[p][jn]) * ws);
      }
    }
    const std::size_t rxj = rx[j];
    const float* wx = weights + rxj * ws;
    const std::int32_t x_base = first_bin[rxj] * stride_i32;

    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t p0 = g * 4;
      alignas(16) std::int32_t base4[4];
      alignas(64) float wy_rows[16];
      for (int t = 0; t < 4; ++t) {
        const std::size_t ryj = ry[p0 + static_cast<std::size_t>(t)][j];
        base4[t] = static_cast<std::int32_t>(p0 + static_cast<std::size_t>(t)) *
                       region_i32 +
                   x_base + first_bin[ryj];
        const float* wy = weights + ryj * ws;
        for (int c = 0; c < 4; ++c) wy_rows[t * 4 + c] = wy[c];
      }
      const __m512i base = _mm512_add_epi32(
          _mm512_permutexvar_epi32(
              group_of_lane, _mm512_castsi128_si512(_mm_load_si128(
                                 reinterpret_cast<const __m128i*>(base4)))),
          column_of_lane);
      const __m512 wy_vec = _mm512_load_ps(wy_rows);

      for (int a = 0; a < k; ++a) {
        const __m512 wx_vec = _mm512_set1_ps(wx[a]);
        const __m512i indices =
            _mm512_add_epi32(base, _mm512_set1_epi32(a * stride_i32));
        const __m512 patch = _mm512_i32gather_ps(indices, hist, 4);
        const __m512 updated = _mm512_fmadd_ps(wx_vec, wy_vec, patch);
        _mm512_i32scatter_ps(hist, indices, updated, 4);
      }
    }

    // Tail members (width not a multiple of 4): 128-bit FMA path, which
    // produces the same float sequence per region as the gathered lanes.
    for (std::size_t p = groups * 4; p < width; ++p) {
      const std::size_t ryj = ry[p][j];
      const simd::F32x4 wyv = simd::F32x4::loadu(weights + ryj * ws);
      float* base_ptr = hist + p * region_cells +
                        static_cast<std::size_t>(x_base) +
                        static_cast<std::size_t>(first_bin[ryj]);
      for (int a = 0; a < k; ++a) {
        float* row = base_ptr + static_cast<std::size_t>(a) * hist_stride;
        simd::F32x4::fmadd(simd::F32x4::broadcast(wx[a]), wyv,
                           simd::F32x4::loadu(row))
            .storeu(row);
      }
    }
  }
}
#endif  // __AVX512F__

}  // namespace

const char* kernel_name(MiKernel kernel) {
  switch (kernel) {
    case MiKernel::Scalar: return "scalar";
    case MiKernel::Unrolled: return "unrolled";
    case MiKernel::Simd: return "simd";
    case MiKernel::Replicated: return "replicated";
    case MiKernel::Gather512: return "gather512";
    case MiKernel::Auto: return "auto";
  }
  return "?";
}

bool gather512_available() {
#if defined(__AVX512F__)
  return true;
#else
  return false;
#endif
}

MiKernel resolve_kernel(MiKernel kernel, int order) {
  if (kernel == MiKernel::Gather512 && (!gather512_available() || order > 4))
    return MiKernel::Replicated;
  if (kernel != MiKernel::Auto) return kernel;
  return order <= 4 ? MiKernel::Replicated : MiKernel::Simd;
}

MiKernel resolve_panel_kernel(MiKernel kernel, int order) {
  switch (kernel) {
    case MiKernel::Scalar: return MiKernel::Scalar;
    case MiKernel::Unrolled:
      return order <= BsplineBasis::kMaxOrder ? MiKernel::Unrolled
                                              : MiKernel::Scalar;
    case MiKernel::Gather512:
      return gather512_available() && order <= 4 ? MiKernel::Gather512
                                                 : MiKernel::Simd;
    case MiKernel::Simd:
    case MiKernel::Replicated:  // panel interleaving replaces replication
    case MiKernel::Auto:
      return MiKernel::Simd;
  }
  return MiKernel::Simd;
}

MiKernel panel_equivalent_kernel(MiKernel kernel) {
  switch (kernel) {
    case MiKernel::Scalar:
    case MiKernel::Unrolled:
      return kernel;
    case MiKernel::Simd:
    case MiKernel::Replicated:
    case MiKernel::Gather512:
    case MiKernel::Auto:
      return MiKernel::Simd;
  }
  return MiKernel::Simd;
}

namespace {

// One-shot microbenchmark backing resolve_kernel_measured: times the
// FMA-SIMD formulation against the 512-bit gather/scatter one on synthetic
// permutation ranks shaped like the caller's table, and returns the faster
// kernel. Deliberately tiny (a few sweeps per candidate, best-of to shed
// scheduler noise) — it runs once per process per flavor.
MiKernel measure_auto_kernel(const WeightTable& table, bool panel_flavor) {
  JointHistogram scratch = make_kernel_scratch(table);
  const std::size_t m = table.n_samples();
  Xoshiro256 rng(20140519);
  std::vector<std::vector<std::uint32_t>> profiles;
  const std::size_t n_profiles = panel_flavor
                                     ? static_cast<std::size_t>(kMaxPanelWidth) + 1
                                     : 2;
  profiles.reserve(n_profiles);
  for (std::size_t g = 0; g < n_profiles; ++g)
    profiles.push_back(random_permutation(m, rng));

  const MiKernel candidates[2] = {
      panel_flavor ? MiKernel::Simd : MiKernel::Replicated,
      MiKernel::Gather512};
  double best_seconds[2] = {0.0, 0.0};
  const std::uint32_t* ry[kMaxPanelWidth];
  double h_panel[kMaxPanelWidth];
  for (std::size_t p = 0; p < static_cast<std::size_t>(kMaxPanelWidth); ++p)
    ry[p] = profiles[std::min(p + 1, n_profiles - 1)].data();

  constexpr int kRounds = 3;
  constexpr int kSweeps = 4;
  for (int round = 0; round < kRounds; ++round) {
    for (int c = 0; c < 2; ++c) {
      const Stopwatch watch;
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        if (panel_flavor) {
          joint_entropy_panel(table, profiles[0].data(), ry,
                              static_cast<std::size_t>(kMaxPanelWidth), m,
                              scratch, candidates[c], h_panel);
        } else {
          h_panel[0] = joint_entropy(table, profiles[0].data(),
                                     profiles[1].data(), m, scratch,
                                     candidates[c]);
        }
      }
      const double elapsed = watch.seconds();
      if (round == 0 || elapsed < best_seconds[c]) best_seconds[c] = elapsed;
    }
  }
  return best_seconds[1] < best_seconds[0] ? candidates[1] : candidates[0];
}

}  // namespace

MiKernel resolve_kernel_measured(MiKernel kernel, const WeightTable& table,
                                 int panel_width) {
  if (kernel != MiKernel::Auto) return kernel;  // explicit config wins
  const int order = table.order();
  const bool panel_flavor = panel_width > 1;
  if (!gather512_available() || order > 4) {
    return panel_flavor ? resolve_panel_kernel(kernel, order)
                        : resolve_kernel(kernel, order);
  }
  if (panel_flavor) {
    static const MiKernel winner = measure_auto_kernel(table, true);
    return winner;
  }
  static const MiKernel winner = measure_auto_kernel(table, false);
  return winner;
}

int auto_panel_width(const WeightTable& table) {
  // All B joint histograms must stay cache-resident across the whole
  // m-sample sweep: the sweep round-robins the B regions every sample, so
  // an evicted region costs a miss per histogram row touched. Half of a
  // conservative per-core L2 leaves room for the weight table and the B+1
  // rank profiles streaming alongside.
  constexpr std::size_t kPanelCacheBudget = 256 * 1024;  // bytes
  const std::size_t region_bytes = static_cast<std::size_t>(table.bins()) *
                                   JointHistogram::stride_for(table.bins()) *
                                   sizeof(float);
  const std::size_t fit =
      std::max<std::size_t>(1, kPanelCacheBudget / region_bytes);
  return static_cast<int>(
      std::min<std::size_t>(fit, static_cast<std::size_t>(kMaxPanelWidth)));
}

JointHistogram make_kernel_scratch(const WeightTable& table) {
  // Replicated needs kHistogramReplicas stacked copies, the panel kernels
  // up to kMaxPanelWidth regions; every kernel clears exactly the regions
  // it uses, so per-pair and panel calls can share one scratch.
  constexpr int kScratchRegions = kHistogramReplicas > kMaxPanelWidth
                                      ? kHistogramReplicas
                                      : kMaxPanelWidth;
  return JointHistogram(table.bins(), /*max_vector_width=*/16,
                        /*replicas=*/kScratchRegions);
}

double joint_entropy(const WeightTable& table, const std::uint32_t* rx,
                     const std::uint32_t* ry, std::size_t m,
                     JointHistogram& scratch, MiKernel kernel) {
  TINGE_EXPECTS(m == table.n_samples());
  TINGE_EXPECTS(scratch.bins() >= table.bins());
  TINGE_EXPECTS(scratch.replicas() >= kHistogramReplicas);
  const int k = table.order();
  const std::size_t hs = scratch.stride();
  float* hist = scratch.data();
  const std::size_t region_cells = static_cast<std::size_t>(table.bins()) * hs;

  const MiKernel resolved = resolve_kernel(kernel, k);
  const bool uses_replicas = resolved == MiKernel::Replicated ||
                             resolved == MiKernel::Gather512;
  const std::size_t clear_cells =
      uses_replicas
          ? region_cells * static_cast<std::size_t>(kHistogramReplicas)
          : region_cells;
  std::memset(hist, 0, clear_cells * sizeof(float));

  switch (resolved) {
    case MiKernel::Scalar:
      accumulate_scalar(table, rx, ry, m, hist, hs);
      break;
    case MiKernel::Unrolled:
      switch (k) {
        case 1: accumulate_unrolled<1>(table, rx, ry, m, hist, hs); break;
        case 2: accumulate_unrolled<2>(table, rx, ry, m, hist, hs); break;
        case 3: accumulate_unrolled<3>(table, rx, ry, m, hist, hs); break;
        case 4: accumulate_unrolled<4>(table, rx, ry, m, hist, hs); break;
        case 5: accumulate_unrolled<5>(table, rx, ry, m, hist, hs); break;
        case 6: accumulate_unrolled<6>(table, rx, ry, m, hist, hs); break;
        case 7: accumulate_unrolled<7>(table, rx, ry, m, hist, hs); break;
        case 8: accumulate_unrolled<8>(table, rx, ry, m, hist, hs); break;
        default: accumulate_scalar(table, rx, ry, m, hist, hs); break;
      }
      break;
    case MiKernel::Simd:
      if (k <= 4) {
        accumulate_simd<simd::F32x4>(table, rx, ry, m, hist, hs);
      } else {
        accumulate_simd<simd::F32x8>(table, rx, ry, m, hist, hs);
      }
      break;
    case MiKernel::Replicated:
      if (k <= 4) {
        accumulate_replicated<simd::F32x4>(table, rx, ry, m, hist, hs);
      } else {
        accumulate_replicated<simd::F32x8>(table, rx, ry, m, hist, hs);
      }
      break;
    case MiKernel::Gather512:
#if defined(__AVX512F__)
      accumulate_gather512(table, rx, ry, m, hist, hs);
      merge_replicas(hist, region_cells);
#else
      TINGE_ASSERT(false);  // resolve_kernel falls back before dispatch
#endif
      break;
    case MiKernel::Auto:
      TINGE_ASSERT(false);  // resolved above
      break;
  }

  return entropy_from_region(hist, region_cells, m);
}

namespace {

// Folds the runtime packed/prefetch flags into the compile-time template
// parameters of the FMA panel. Packed is only honoured here — the other
// variants read the classic layout (gather512's index math needs the
// separate ws == 4 weight rows).
template <typename V, typename RankT>
void panel_simd_dispatch(bool packed, bool prefetch, const WeightTable& table,
                         const RankT* rx, const RankT* const* ry,
                         std::size_t width, std::size_t m, float* hist,
                         std::size_t hs, std::size_t region_cells) {
  if (packed) {
    if (prefetch) {
      panel_accumulate_simd<V, RankT, true, true>(table, rx, ry, width, m,
                                                  hist, hs, region_cells);
    } else {
      panel_accumulate_simd<V, RankT, true, false>(table, rx, ry, width, m,
                                                   hist, hs, region_cells);
    }
  } else {
    if (prefetch) {
      panel_accumulate_simd<V, RankT, false, true>(table, rx, ry, width, m,
                                                   hist, hs, region_cells);
    } else {
      panel_accumulate_simd<V, RankT, false, false>(table, rx, ry, width, m,
                                                    hist, hs, region_cells);
    }
  }
}

template <typename RankT>
void joint_entropy_panel_impl(const WeightTable& table, const RankT* rx,
                              const RankT* const* ry, std::size_t width,
                              std::size_t m, JointHistogram& scratch,
                              const PanelOptions& options, double* h_out) {
  TINGE_EXPECTS(width >= 1);
  TINGE_EXPECTS(width <= static_cast<std::size_t>(kMaxPanelWidth));
  TINGE_EXPECTS(m == table.n_samples());
  TINGE_EXPECTS(scratch.bins() >= table.bins());
  TINGE_EXPECTS(scratch.replicas() >= static_cast<int>(width));
  const int k = table.order();
  const std::size_t hs = scratch.stride();
  float* hist = scratch.data();
  const std::size_t region_cells = static_cast<std::size_t>(table.bins()) * hs;
  const bool prefetch = options.prefetch;

  // One clear for the whole panel (regions are stacked contiguously).
  std::memset(hist, 0, width * region_cells * sizeof(float));

  switch (resolve_panel_kernel(options.kernel, k)) {
    case MiKernel::Scalar:
      if (prefetch) {
        panel_accumulate_scalar<RankT, true>(table, rx, ry, width, m, hist,
                                             hs, region_cells);
      } else {
        panel_accumulate_scalar<RankT, false>(table, rx, ry, width, m, hist,
                                              hs, region_cells);
      }
      break;
    case MiKernel::Unrolled:
      switch (k) {
        case 1: panel_accumulate_unrolled<1>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 2: panel_accumulate_unrolled<2>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 3: panel_accumulate_unrolled<3>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 4: panel_accumulate_unrolled<4>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 5: panel_accumulate_unrolled<5>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 6: panel_accumulate_unrolled<6>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 7: panel_accumulate_unrolled<7>(table, rx, ry, width, m, hist, hs, region_cells); break;
        case 8: panel_accumulate_unrolled<8>(table, rx, ry, width, m, hist, hs, region_cells); break;
        default:
          panel_accumulate_scalar<RankT, false>(table, rx, ry, width, m, hist,
                                                hs, region_cells);
          break;
      }
      break;
    case MiKernel::Gather512:
#if defined(__AVX512F__)
      if (prefetch) {
        panel_accumulate_gather512<RankT, true>(table, rx, ry, width, m, hist,
                                                hs, region_cells);
      } else {
        panel_accumulate_gather512<RankT, false>(table, rx, ry, width, m,
                                                 hist, hs, region_cells);
      }
      break;
#else
      TINGE_ASSERT(false);  // resolve_panel_kernel falls back before dispatch
      break;
#endif
    case MiKernel::Simd:
      if (k <= 4) {
        panel_simd_dispatch<simd::F32x4>(options.packed, prefetch, table, rx,
                                         ry, width, m, hist, hs, region_cells);
      } else {
        panel_simd_dispatch<simd::F32x8>(options.packed, prefetch, table, rx,
                                         ry, width, m, hist, hs, region_cells);
      }
      break;
    case MiKernel::Replicated:
    case MiKernel::Auto:
      TINGE_ASSERT(false);  // resolve_panel_kernel never returns these
      break;
  }

  // Batched entropy/merge pass: one sweep per region, h_out[p] = H(X, Y_p).
  for (std::size_t p = 0; p < width; ++p)
    h_out[p] = entropy_from_region(hist + p * region_cells, region_cells, m);
}

}  // namespace

void joint_entropy_panel(const WeightTable& table, const std::uint32_t* rx,
                         const std::uint32_t* const* ry, std::size_t width,
                         std::size_t m, JointHistogram& scratch,
                         MiKernel kernel, double* h_out) {
  joint_entropy_panel_impl(table, rx, ry, width, m, scratch,
                           PanelOptions{kernel}, h_out);
}

void joint_entropy_panel(const WeightTable& table, const std::uint32_t* rx,
                         const std::uint32_t* const* ry, std::size_t width,
                         std::size_t m, JointHistogram& scratch,
                         const PanelOptions& options, double* h_out) {
  joint_entropy_panel_impl(table, rx, ry, width, m, scratch, options, h_out);
}

void joint_entropy_panel(const WeightTable& table, const std::uint16_t* rx,
                         const std::uint16_t* const* ry, std::size_t width,
                         std::size_t m, JointHistogram& scratch,
                         const PanelOptions& options, double* h_out) {
  joint_entropy_panel_impl(table, rx, ry, width, m, scratch, options, h_out);
}

namespace {

// One-shot microbenchmark backing prefetch_pays_measured and
// packed_pays_measured: same synthetic permutation setup as
// measure_auto_kernel, timing the two candidate panel configurations
// head-to-head and returning whether `with` beat `without`.
bool measure_policy_wins(const WeightTable& table,
                         const PanelOptions& without, const PanelOptions& with,
                         int width) {
  JointHistogram scratch = make_kernel_scratch(table);
  const std::size_t m = table.n_samples();
  Xoshiro256 rng(20140519);
  const auto w = static_cast<std::size_t>(width);
  std::vector<std::vector<std::uint32_t>> profiles;
  profiles.reserve(w + 1);
  for (std::size_t g = 0; g < w + 1; ++g)
    profiles.push_back(random_permutation(m, rng));
  const std::uint32_t* ry[kMaxPanelWidth];
  double h_panel[kMaxPanelWidth];
  for (std::size_t p = 0; p < w; ++p) ry[p] = profiles[p + 1].data();

  const PanelOptions candidates[2] = {without, with};
  double best_seconds[2] = {0.0, 0.0};
  constexpr int kRounds = 3;
  constexpr int kSweeps = 4;
  for (int round = 0; round < kRounds; ++round) {
    for (int c = 0; c < 2; ++c) {
      const Stopwatch watch;
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        joint_entropy_panel(table, profiles[0].data(), ry, w, m, scratch,
                            candidates[c], h_panel);
      }
      const double elapsed = watch.seconds();
      if (round == 0 || elapsed < best_seconds[c]) best_seconds[c] = elapsed;
    }
  }
  return best_seconds[1] < best_seconds[0];
}

// Memoized verdicts of measure_policy_wins, keyed on everything that
// changes the measurement: which policy is under test, the resolved kernel,
// the table shape (order, bins, m), the panel width and the base packing.
// A process mixing estimators (different m or order — the bench ablations,
// the estimator studies) measures each configuration once instead of
// inheriting the first caller's verdict.
bool measured_policy_cached(int policy, const WeightTable& table,
                            MiKernel resolved, const PanelOptions& without,
                            const PanelOptions& with, int width) {
  using Key =
      std::tuple<int, MiKernel, int, int, std::size_t, int, bool>;
  static std::mutex mutex;
  static std::map<Key, bool> verdicts;
  const Key key{policy,        resolved, table.order(), table.bins(),
                table.n_samples(), width,    without.packed};
  // Measuring under the lock serializes concurrent first calls for the same
  // key; these run once per configuration, before the parallel region.
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = verdicts.find(key);
  if (it == verdicts.end()) {
    it = verdicts
             .emplace(key, measure_policy_wins(table, without, with, width))
             .first;
  }
  return it->second;
}

constexpr int kPolicyPrefetch = 0;
constexpr int kPolicyPacked = 1;

}  // namespace

bool prefetch_pays_measured(const WeightTable& table, const PanelOptions& base,
                            int panel_width) {
  const MiKernel resolved = resolve_panel_kernel(base.kernel, table.order());
  if (resolved == MiKernel::Unrolled) return false;  // flag is a no-op there
  const int width = std::clamp(panel_width, 1, kMaxPanelWidth);
  PanelOptions off = base;
  off.prefetch = false;
  PanelOptions on = base;
  on.prefetch = true;
  return measured_policy_cached(kPolicyPrefetch, table, resolved, off, on,
                                width);
}

bool packed_pays_measured(const WeightTable& table, const PanelOptions& base,
                          int panel_width) {
  // Only the FMA (Simd) panels read the packed rows; everywhere else the
  // flag is a no-op and measuring it would just time noise.
  if (resolve_panel_kernel(base.kernel, table.order()) != MiKernel::Simd)
    return false;
  const int width = std::clamp(panel_width, 1, kMaxPanelWidth);
  PanelOptions off = base;
  off.packed = false;
  PanelOptions on = base;
  on.packed = true;
  return measured_policy_cached(kPolicyPacked, table, MiKernel::Simd, off, on,
                                width);
}

}  // namespace tinge
