#include "mi/bspline_kernels.h"

#include <cmath>
#include <cstring>

#include "simd/math.h"
#include "simd/simd.h"
#include "util/contracts.h"

namespace tinge {

namespace {

// --------------------------------------------------------------------------
// Accumulation variants. Each clears exactly the histogram region it uses.
// --------------------------------------------------------------------------

void accumulate_scalar(const WeightTable& table, const std::uint32_t* rx,
                       const std::uint32_t* ry, std::size_t m, float* hist,
                       std::size_t hist_stride) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const float* wy = weights + ryj * ws;
    float* base = hist + static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                  static_cast<std::size_t>(first_bin[ryj]);
    for (int a = 0; a < k; ++a) {
      const float wxa = wx[a];
      float* row = base + static_cast<std::size_t>(a) * hist_stride;
      for (int c = 0; c < k; ++c) row[c] += wxa * wy[c];
    }
  }
}

template <int K>
void accumulate_unrolled(const WeightTable& table, const std::uint32_t* rx,
                         const std::uint32_t* ry, std::size_t m, float* hist,
                         std::size_t hist_stride) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const float* wy = weights + ryj * ws;
    float* base = hist + static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                  static_cast<std::size_t>(first_bin[ryj]);
#pragma GCC unroll 8
    for (int a = 0; a < K; ++a) {
      const float wxa = wx[a];
      float* row = base + static_cast<std::size_t>(a) * hist_stride;
#pragma GCC unroll 8
      for (int c = 0; c < K; ++c) row[c] += wxa * wy[c];
    }
  }
}

// One broadcast*vector FMA per histogram row touched; V covers the padded
// weight row (4 floats for order <= 4, 8 for order <= 8).
template <typename V>
void accumulate_simd_impl(const WeightTable& table, const std::uint32_t* rx,
                          const std::uint32_t* ry, std::size_t m, float* hist,
                          std::size_t hist_stride, std::size_t replica_offset_mask,
                          std::size_t replica_cells) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const V wyv = V::loadu(weights + ryj * ws);
    float* base = hist + (j & replica_offset_mask) * replica_cells +
                  static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                  static_cast<std::size_t>(first_bin[ryj]);
    for (int a = 0; a < k; ++a) {
      float* row = base + static_cast<std::size_t>(a) * hist_stride;
      const V updated = V::fmadd(V::broadcast(wx[a]), wyv, V::loadu(row));
      updated.storeu(row);
    }
  }
}

template <typename V>
void accumulate_simd(const WeightTable& table, const std::uint32_t* rx,
                     const std::uint32_t* ry, std::size_t m, float* hist,
                     std::size_t hist_stride) {
  accumulate_simd_impl<V>(table, rx, ry, m, hist, hist_stride,
                          /*replica_offset_mask=*/0, /*replica_cells=*/0);
}

void merge_replicas(float* hist, std::size_t replica_cells);

template <typename V>
void accumulate_replicated(const WeightTable& table, const std::uint32_t* rx,
                           const std::uint32_t* ry, std::size_t m, float* hist,
                           std::size_t hist_stride) {
  const std::size_t replica_cells =
      static_cast<std::size_t>(table.bins()) * hist_stride;
  accumulate_simd_impl<V>(table, rx, ry, m, hist, hist_stride,
                          /*replica_offset_mask=*/kHistogramReplicas - 1,
                          replica_cells);
  // replica_cells is a multiple of the histogram row stride, which is a
  // multiple of 16 floats — safe for full-width aligned steps.
  merge_replicas(hist, replica_cells);
}

#if defined(__AVX512F__)
// Four samples per iteration, one 512-bit gather/FMA/scatter triple per row
// offset. Sample g of a group owns replica g; the 16 scattered addresses of
// an iteration are therefore pairwise distinct by construction. Requires
// order <= 4 (weight rows padded to 4 floats).
void accumulate_gather512(const WeightTable& table, const std::uint32_t* rx,
                          const std::uint32_t* ry, std::size_t m, float* hist,
                          std::size_t hist_stride) {
  const float* weights = table.weights_data();
  const std::int32_t* first_bin = table.first_bin_data();
  const std::size_t ws = table.weight_stride();
  const int k = table.order();
  TINGE_EXPECTS(k <= 4);
  TINGE_EXPECTS(ws == 4);
  const auto replica_cells =
      static_cast<std::int32_t>(static_cast<std::size_t>(table.bins()) *
                                hist_stride);
  const auto stride_i32 = static_cast<std::int32_t>(hist_stride);

  // lane -> group id (0,0,0,0,1,1,1,1,...) for broadcasting per-sample
  // scalars into their lane group.
  const __m512i group_of_lane = _mm512_set_epi32(3, 3, 3, 3, 2, 2, 2, 2,
                                                 1, 1, 1, 1, 0, 0, 0, 0);
  // lane -> column offset within the weight row (0,1,2,3 repeating).
  const __m512i column_of_lane = _mm512_set_epi32(3, 2, 1, 0, 3, 2, 1, 0,
                                                  3, 2, 1, 0, 3, 2, 1, 0);
  const __m512i replica_base = _mm512_mullo_epi32(
      group_of_lane, _mm512_set1_epi32(replica_cells));

  const std::size_t groups = m / 4;
  for (std::size_t gi = 0; gi < groups; ++gi) {
    const std::size_t j = gi * 4;
    // Per-group scalars packed into the low 4 lanes, then spread by group.
    alignas(16) std::int32_t base4[4];
    alignas(16) float wy_rows[16];
    const float* wx_rows[4];
    for (int g = 0; g < 4; ++g) {
      const std::uint32_t rxg = rx[j + static_cast<std::size_t>(g)];
      const std::uint32_t ryg = ry[j + static_cast<std::size_t>(g)];
      base4[g] = first_bin[rxg] * stride_i32 + first_bin[ryg];
      const float* wy = weights + ryg * ws;
      for (int c = 0; c < 4; ++c) wy_rows[g * 4 + c] = wy[c];
      wx_rows[g] = weights + rxg * ws;
    }
    const __m512i base = _mm512_add_epi32(
        _mm512_add_epi32(
            _mm512_permutexvar_epi32(
                group_of_lane,
                _mm512_castsi128_si512(_mm_load_si128(
                    reinterpret_cast<const __m128i*>(base4)))),
            column_of_lane),
        replica_base);
    const __m512 wy_vec = _mm512_load_ps(wy_rows);

    for (int a = 0; a < k; ++a) {
      // wx[a] of each sample broadcast into its lane group.
      alignas(16) float wx4[4] = {wx_rows[0][a], wx_rows[1][a],
                                  wx_rows[2][a], wx_rows[3][a]};
      const __m512 wx_vec = _mm512_permutexvar_ps(
          group_of_lane, _mm512_castps128_ps512(_mm_load_ps(wx4)));
      const __m512i indices =
          _mm512_add_epi32(base, _mm512_set1_epi32(a * stride_i32));
      const __m512 patch = _mm512_i32gather_ps(indices, hist, 4);
      const __m512 updated = _mm512_fmadd_ps(wx_vec, wy_vec, patch);
      _mm512_i32scatter_ps(hist, indices, updated, 4);
    }
  }

  // Tail samples take the 128-bit replicated path (replica j & 3).
  const std::size_t tail_begin = groups * 4;
  for (std::size_t j = tail_begin; j < m; ++j) {
    const std::uint32_t rxj = rx[j];
    const std::uint32_t ryj = ry[j];
    const float* wx = weights + rxj * ws;
    const simd::F32x4 wyv = simd::F32x4::loadu(weights + ryj * ws);
    float* base_ptr = hist +
                      (j & 3) * static_cast<std::size_t>(replica_cells) +
                      static_cast<std::size_t>(first_bin[rxj]) * hist_stride +
                      static_cast<std::size_t>(first_bin[ryj]);
    for (int a = 0; a < k; ++a) {
      float* row = base_ptr + static_cast<std::size_t>(a) * hist_stride;
      simd::F32x4::fmadd(simd::F32x4::broadcast(wx[a]), wyv,
                         simd::F32x4::loadu(row))
          .storeu(row);
    }
  }
}
#endif  // __AVX512F__

// Reduce the replicas into replica 0 and zero the rest (shared by the
// Replicated and Gather512 kernels).
void merge_replicas(float* hist, std::size_t replica_cells) {
  using W = simd::NativeF32;
  constexpr std::size_t lanes = static_cast<std::size_t>(W::width);
  const W zero = W::zero();
  for (std::size_t i = 0; i < replica_cells; i += lanes) {
    W acc = W::load(hist + i);
    for (int r = 1; r < kHistogramReplicas; ++r) {
      float* replica = hist + static_cast<std::size_t>(r) * replica_cells + i;
      acc = acc + W::load(replica);
      zero.store(replica);
    }
    acc.store(hist + i);
  }
}

double entropy_from_region(const float* cells, std::size_t count, std::size_t m) {
  const double neg_sum = simd::entropy_sum(cells, count);
  return neg_sum / static_cast<double>(m) + std::log(static_cast<double>(m));
}

}  // namespace

const char* kernel_name(MiKernel kernel) {
  switch (kernel) {
    case MiKernel::Scalar: return "scalar";
    case MiKernel::Unrolled: return "unrolled";
    case MiKernel::Simd: return "simd";
    case MiKernel::Replicated: return "replicated";
    case MiKernel::Gather512: return "gather512";
    case MiKernel::Auto: return "auto";
  }
  return "?";
}

bool gather512_available() {
#if defined(__AVX512F__)
  return true;
#else
  return false;
#endif
}

MiKernel resolve_kernel(MiKernel kernel, int order) {
  if (kernel == MiKernel::Gather512 && (!gather512_available() || order > 4))
    return MiKernel::Replicated;
  if (kernel != MiKernel::Auto) return kernel;
  return order <= 4 ? MiKernel::Replicated : MiKernel::Simd;
}

JointHistogram make_kernel_scratch(const WeightTable& table) {
  // Replicated needs kHistogramReplicas stacked copies; other kernels use
  // the first copy only and never touch (or read zeros from) the rest.
  return JointHistogram(table.bins(), /*max_vector_width=*/16,
                        /*replicas=*/kHistogramReplicas);
}

double joint_entropy(const WeightTable& table, const std::uint32_t* rx,
                     const std::uint32_t* ry, std::size_t m,
                     JointHistogram& scratch, MiKernel kernel) {
  TINGE_EXPECTS(m == table.n_samples());
  TINGE_EXPECTS(scratch.bins() >= table.bins());
  TINGE_EXPECTS(scratch.replicas() >= kHistogramReplicas);
  const int k = table.order();
  const std::size_t hs = scratch.stride();
  float* hist = scratch.data();
  const std::size_t region_cells = static_cast<std::size_t>(table.bins()) * hs;

  const MiKernel resolved = resolve_kernel(kernel, k);
  const bool uses_replicas = resolved == MiKernel::Replicated ||
                             resolved == MiKernel::Gather512;
  const std::size_t clear_cells =
      uses_replicas
          ? region_cells * static_cast<std::size_t>(kHistogramReplicas)
          : region_cells;
  std::memset(hist, 0, clear_cells * sizeof(float));

  switch (resolved) {
    case MiKernel::Scalar:
      accumulate_scalar(table, rx, ry, m, hist, hs);
      break;
    case MiKernel::Unrolled:
      switch (k) {
        case 1: accumulate_unrolled<1>(table, rx, ry, m, hist, hs); break;
        case 2: accumulate_unrolled<2>(table, rx, ry, m, hist, hs); break;
        case 3: accumulate_unrolled<3>(table, rx, ry, m, hist, hs); break;
        case 4: accumulate_unrolled<4>(table, rx, ry, m, hist, hs); break;
        case 5: accumulate_unrolled<5>(table, rx, ry, m, hist, hs); break;
        case 6: accumulate_unrolled<6>(table, rx, ry, m, hist, hs); break;
        case 7: accumulate_unrolled<7>(table, rx, ry, m, hist, hs); break;
        case 8: accumulate_unrolled<8>(table, rx, ry, m, hist, hs); break;
        default: accumulate_scalar(table, rx, ry, m, hist, hs); break;
      }
      break;
    case MiKernel::Simd:
      if (k <= 4) {
        accumulate_simd<simd::F32x4>(table, rx, ry, m, hist, hs);
      } else {
        accumulate_simd<simd::F32x8>(table, rx, ry, m, hist, hs);
      }
      break;
    case MiKernel::Replicated:
      if (k <= 4) {
        accumulate_replicated<simd::F32x4>(table, rx, ry, m, hist, hs);
      } else {
        accumulate_replicated<simd::F32x8>(table, rx, ry, m, hist, hs);
      }
      break;
    case MiKernel::Gather512:
#if defined(__AVX512F__)
      accumulate_gather512(table, rx, ry, m, hist, hs);
      merge_replicas(hist, region_cells);
#else
      TINGE_ASSERT(false);  // resolve_kernel falls back before dispatch
#endif
      break;
    case MiKernel::Auto:
      TINGE_ASSERT(false);  // resolved above
      break;
  }

  return entropy_from_region(hist, region_cells, m);
}

}  // namespace tinge
