// Phi-mixing coefficient as a directed dependence measure (Singh et al.,
// "Finite-Sample Analysis of Phi-Mixing Coefficients", arXiv:1208.4066).
//
//   phi(Y|X) = max_x (1/2) sum_y | P(y|x) - P(y) |
//
// measures how much conditioning on X can move the distribution of Y: 0 iff
// X and Y are independent, bounded by 1. Unlike MI it is a worst-case (not
// average-case) dependence measure, so it flags variables whose influence is
// concentrated in a few states. Estimated here on equal-frequency rank bins
// — the same discretization the histogram MI baseline uses — and
// symmetrized with max(phi(Y|X), phi(X|Y)) to score undirected edges.
#pragma once

#include <cstdint>
#include <span>

namespace tinge {

/// Directed phi-mixing coefficient phi(Y|X) from rank profiles with
/// equal-frequency bins (sample with rank r falls in bin floor(r*bins/m)).
/// Returns a value in [0, 1).
double phi_mixing_from_ranks(std::span<const std::uint32_t> ranks_x,
                             std::span<const std::uint32_t> ranks_y, int bins);

/// Symmetrized edge score: max(phi(Y|X), phi(X|Y)).
double phi_mixing_symmetric(std::span<const std::uint32_t> ranks_x,
                            std::span<const std::uint32_t> ranks_y, int bins);

}  // namespace tinge
