#include "mi/ksg_mi.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.h"

namespace tinge {

double digamma(double x) {
  TINGE_EXPECTS(x > 0.0);
  double result = 0.0;
  // Shift x upward until the asymptotic series is accurate.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6)
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

namespace {
// Deterministic tie-breaking jitter: spreads exactly-equal values apart by
// an amount far below any real measurement resolution.
float jittered(float v, std::size_t index, float scale) {
  return v + scale * static_cast<float>(index);
}
}  // namespace

double ksg_mi(std::span<const float> x, std::span<const float> y, int k) {
  TINGE_EXPECTS(x.size() == y.size());
  TINGE_EXPECTS(k >= 1);
  const std::size_t m = x.size();
  TINGE_EXPECTS(m > static_cast<std::size_t>(k) + 1);

  // Jitter scale relative to data spread.
  const auto spread = [](std::span<const float> v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return std::max(*hi - *lo, 1e-20f);
  };
  const float jitter_x = spread(x) * 1e-9f;
  const float jitter_y = spread(y) * 1e-9f;

  std::vector<float> xv(m), yv(m);
  for (std::size_t i = 0; i < m; ++i) {
    xv[i] = jittered(x[i], i, jitter_x);
    yv[i] = jittered(y[i], i, jitter_y);
  }

  // Sorted copies for O(log m) marginal range counts.
  std::vector<float> xs(xv), ys(yv);
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  const auto count_within = [](const std::vector<float>& sorted, float center,
                               float eps) {
    // strictly within: |v - center| < eps
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(),
                                     center - eps + 0.0f);
    const auto hi = std::lower_bound(sorted.begin(), sorted.end(),
                                     center + eps);
    // exclude values at exactly center±eps via strict predicate on lo side:
    auto lo_strict = lo;
    while (lo_strict != sorted.end() && *lo_strict <= center - eps) ++lo_strict;
    return static_cast<std::size_t>(hi - lo_strict);
  };

  std::vector<float> distances(m);
  double psi_sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    // Exact k-th NN in max-norm (self excluded) via selection.
    std::size_t out = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      distances[out++] = std::max(std::fabs(xv[j] - xv[i]),
                                  std::fabs(yv[j] - yv[i]));
    }
    std::nth_element(distances.begin(),
                     distances.begin() + (k - 1),
                     distances.begin() + static_cast<std::ptrdiff_t>(out));
    const float eps = distances[static_cast<std::size_t>(k - 1)];

    // Counts strictly inside the eps-box along each marginal (self excluded).
    const std::size_t n_x = count_within(xs, xv[i], eps) - 1;
    const std::size_t n_y = count_within(ys, yv[i], eps) - 1;
    psi_sum += digamma(static_cast<double>(n_x) + 1.0) +
               digamma(static_cast<double>(n_y) + 1.0);
  }

  const double mi = digamma(static_cast<double>(k)) +
                    digamma(static_cast<double>(m)) -
                    psi_sum / static_cast<double>(m);
  return std::max(mi, 0.0);
}

}  // namespace tinge
