#include "mi/bspline.h"

#include <algorithm>
#include <cmath>

namespace tinge {

BsplineBasis::BsplineBasis(int bins, int order) : bins_(bins), order_(order) {
  TINGE_EXPECTS(order >= 1);
  TINGE_EXPECTS(order <= kMaxOrder);
  TINGE_EXPECTS(bins >= order);
  // Clamped uniform knots: order copies of 0, interior integers, order
  // copies of bins - order + 1.
  knots_.resize(static_cast<std::size_t>(bins + order));
  for (int i = 0; i < bins + order; ++i) {
    if (i < order) {
      knots_[i] = 0.0;
    } else if (i < bins) {
      knots_[i] = static_cast<double>(i - order + 1);
    } else {
      knots_[i] = static_cast<double>(bins - order + 1);
    }
  }
}

int BsplineBasis::evaluate(float z, float* weights) const {
  TINGE_EXPECTS(z >= 0.0f && z <= 1.0f);
  const double u = static_cast<double>(z) * domain_extent();
  const int k = order_;
  // Knot span s with t_s <= u < t_{s+1}; interior knots are consecutive
  // integers so the span is floor(u) offset by the clamp width.
  const int span =
      std::min(k - 1 + static_cast<int>(u), bins_ - 1);

  // de Boor basis-function algorithm (The NURBS Book, A2.2).
  double left[kMaxOrder];
  double right[kMaxOrder];
  double n[kMaxOrder];
  n[0] = 1.0;
  for (int j = 1; j < k; ++j) {
    left[j] = u - knots_[static_cast<std::size_t>(span + 1 - j)];
    right[j] = knots_[static_cast<std::size_t>(span + j)] - u;
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      const double temp = n[r] / (right[r + 1] + left[j - r]);
      n[r] = saved + right[r + 1] * temp;
      saved = left[j - r] * temp;
    }
    n[j] = saved;
  }
  for (int c = 0; c < k; ++c) weights[c] = static_cast<float>(n[c]);
  return span - k + 1;
}

std::vector<double> BsplineBasis::evaluate_all(double z) const {
  TINGE_EXPECTS(z >= 0.0 && z <= 1.0);
  const double u = z * domain_extent();
  const int n_knots = bins_ + order_;
  const double domain_end = knots_[static_cast<std::size_t>(n_knots - 1)];

  // Order-1 (piecewise constant) seed; the final interval is closed so the
  // right domain endpoint belongs to the last basis function.
  std::vector<double> basis(static_cast<std::size_t>(n_knots - 1), 0.0);
  for (int i = 0; i < n_knots - 1; ++i) {
    const double lo = knots_[static_cast<std::size_t>(i)];
    const double hi = knots_[static_cast<std::size_t>(i + 1)];
    const bool inside =
        (u >= lo && u < hi) || (u == domain_end && hi == domain_end && lo < hi);
    basis[static_cast<std::size_t>(i)] = inside ? 1.0 : 0.0;
  }

  for (int k = 2; k <= order_; ++k) {
    for (int i = 0; i + k < n_knots; ++i) {
      const double t_i = knots_[static_cast<std::size_t>(i)];
      const double t_ik1 = knots_[static_cast<std::size_t>(i + k - 1)];
      const double t_i1 = knots_[static_cast<std::size_t>(i + 1)];
      const double t_ik = knots_[static_cast<std::size_t>(i + k)];
      const double a =
          t_ik1 > t_i ? (u - t_i) / (t_ik1 - t_i) * basis[static_cast<std::size_t>(i)] : 0.0;
      const double b =
          t_ik > t_i1
              ? (t_ik - u) / (t_ik - t_i1) * basis[static_cast<std::size_t>(i + 1)]
              : 0.0;
      basis[static_cast<std::size_t>(i)] = a + b;
    }
  }
  basis.resize(static_cast<std::size_t>(bins_));
  return basis;
}

int suggest_bins(std::size_t m, int order) {
  TINGE_EXPECTS(m >= 2);
  TINGE_EXPECTS(order >= 1 && order <= BsplineBasis::kMaxOrder);
  const int cube_root =
      static_cast<int>(std::lround(std::cbrt(static_cast<double>(m))));
  return std::clamp(cube_root, order + 1, 30);
}

}  // namespace tinge
