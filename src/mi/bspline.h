// B-spline basis functions for the Daub et al. (2004) mutual-information
// estimator, the estimator TINGe and the paper use.
//
// Instead of assigning a sample to exactly one histogram bin (hard binning),
// each sample is spread over up to `order` adjacent bins with weights given
// by B-spline basis functions — a smoothed histogram that sharply reduces
// the estimator's sensitivity to bin placement while keeping the
// O(m * order^2) per-pair cost that makes whole-genome runs feasible.
//
// Basis definition: `bins` basis functions of order k (degree k-1) on a
// clamped uniform knot vector over [0, bins - order + 1]. Inputs are given
// in [0, 1] and scaled internally. At any z, at most `order` consecutive
// basis functions are nonzero and they sum to exactly 1 (partition of
// unity) — the property the whole estimator rests on.
#pragma once

#include <vector>

#include "util/contracts.h"

namespace tinge {

class BsplineBasis {
 public:
  /// Requires 1 <= order <= bins and order <= kMaxOrder.
  BsplineBasis(int bins, int order);

  static constexpr int kMaxOrder = 8;

  int bins() const { return bins_; }
  int order() const { return order_; }

  /// Evaluates the `order` (possibly) nonzero basis functions at z in
  /// [0, 1]. Writes exactly order() weights to `weights` and returns the
  /// index of the first one, i.e. basis function (return + c) has weight
  /// weights[c]. The weights sum to 1.
  int evaluate(float z, float* weights) const;

  /// Reference implementation: all bins() basis values at z via the plain
  /// Cox–de Boor recursion. Used by tests to validate evaluate().
  std::vector<double> evaluate_all(double z) const;

  /// Right end of the internal knot domain: bins - order + 1.
  double domain_extent() const { return static_cast<double>(bins_ - order_ + 1); }

 private:
  int bins_;
  int order_;
  std::vector<double> knots_;  // bins + order clamped uniform knots
};

/// Rule-of-thumb bin count for m samples (Daub et al. keep b small relative
/// to m so each bin stays well populated): b ~ m^(1/3), clamped to
/// [order + 1, 30]. The bins-sweep panel of bench_estimators shows the
/// bias/variance trade this heuristic balances.
int suggest_bins(std::size_t m, int order = 3);

}  // namespace tinge
