#include "mi/correlation.h"

#include <cmath>
#include <vector>

#include "preprocess/rank_transform.h"
#include "stats/descriptive.h"

namespace tinge {

double pearson_correlation(std::span<const float> x, std::span<const float> y) {
  return pearson(x, y);
}

double spearman_correlation(std::span<const float> x, std::span<const float> y) {
  const std::vector<float> rank_x = rank_average(x);
  const std::vector<float> rank_y = rank_average(y);
  return pearson(std::span<const float>(rank_x), std::span<const float>(rank_y));
}

double correlation_score(double r) { return std::fabs(r); }

}  // namespace tinge
