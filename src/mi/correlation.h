// Correlation-based association baselines. Relevance networks built from
// |Pearson| or |Spearman| are the classical alternative to MI networks and
// serve as the cheap baseline in the estimator ablation (A1): they miss the
// non-monotone dependencies MI captures.
#pragma once

#include <span>

namespace tinge {

/// Pearson correlation of raw profiles (NaN pairs dropped).
double pearson_correlation(std::span<const float> x, std::span<const float> y);

/// Spearman rank correlation: Pearson on average-tie ranks. NaN-free input.
double spearman_correlation(std::span<const float> x, std::span<const float> y);

/// |r| as an edge score in [0, 1].
double correlation_score(double r);

}  // namespace tinge
