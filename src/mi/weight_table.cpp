#include "mi/weight_table.h"

#include <cmath>
#include <vector>

#include "preprocess/rank_transform.h"
#include "simd/math.h"

namespace tinge {

WeightTable::WeightTable(std::size_t m, const BsplineBasis& basis)
    : m_(m),
      bins_(basis.bins()),
      order_(basis.order()),
      weight_stride_(round_up(static_cast<std::size_t>(basis.order()), 4)),
      weights_(m * weight_stride_),
      first_bin_(m) {
  TINGE_EXPECTS(m >= 2);
  std::vector<double> marginal(static_cast<std::size_t>(bins_), 0.0);
  float local[BsplineBasis::kMaxOrder];
  for (std::size_t r = 0; r < m_; ++r) {
    const float z = rank_to_unit(static_cast<float>(r), m_);
    const int first = basis.evaluate(z, local);
    first_bin_[r] = first;
    float* row = weights_.data() + r * weight_stride_;
    for (int c = 0; c < order_; ++c) {
      row[static_cast<std::size_t>(c)] = local[c];
      marginal[static_cast<std::size_t>(first + c)] += static_cast<double>(local[c]);
    }
    // padding already zero-initialized by AlignedBuffer
  }

  double h = 0.0;
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (const double mass : marginal) {
    const double p = mass * inv_m;
    if (p > 0.0) h -= p * std::log(p);
  }
  marginal_entropy_ = h;
}

}  // namespace tinge
