#include "mi/weight_table.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "preprocess/rank_transform.h"
#include "simd/math.h"

namespace tinge {

WeightTable::WeightTable(std::size_t m, const BsplineBasis& basis)
    : m_(m),
      bins_(basis.bins()),
      order_(basis.order()),
      weight_stride_(round_up(static_cast<std::size_t>(basis.order()), 4)),
      weights_(m * weight_stride_),
      first_bin_(m) {
  TINGE_EXPECTS(m >= 2);
  std::vector<double> marginal(static_cast<std::size_t>(bins_), 0.0);
  float local[BsplineBasis::kMaxOrder];
  for (std::size_t r = 0; r < m_; ++r) {
    const float z = rank_to_unit(static_cast<float>(r), m_);
    const int first = basis.evaluate(z, local);
    first_bin_[r] = first;
    float* row = weights_.data() + r * weight_stride_;
    for (int c = 0; c < order_; ++c) {
      row[static_cast<std::size_t>(c)] = local[c];
      marginal[static_cast<std::size_t>(first + c)] += static_cast<double>(local[c]);
    }
    // padding already zero-initialized by AlignedBuffer
  }

  double h = 0.0;
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (const double mass : marginal) {
    const double p = mass * inv_m;
    if (p > 0.0) h -= p * std::log(p);
  }
  marginal_entropy_ = h;
  build_packed();
}

void WeightTable::build_packed() {
  packed_stride_ = round_up(weight_stride_ + 1, 8);
  packed_ = AlignedBuffer<float>(m_ * packed_stride_);
  for (std::size_t r = 0; r < m_; ++r) {
    const float* src = weights_.data() + r * weight_stride_;
    float* dst = packed_.data() + r * packed_stride_;
    std::copy(src, src + weight_stride_, dst);
    dst[weight_stride_] = std::bit_cast<float>(first_bin_[r]);
    // trailing padding already zero-initialized
  }
}

WeightTable::WeightTable(std::size_t m, int bins, int order,
                         std::size_t weight_stride,
                         std::span<const float> weights,
                         std::span<const std::int32_t> first_bin,
                         double marginal_entropy)
    : m_(m),
      bins_(bins),
      order_(order),
      weight_stride_(weight_stride),
      weights_(m * weight_stride),
      first_bin_(m),
      marginal_entropy_(marginal_entropy) {
  TINGE_EXPECTS(m >= 2);
  TINGE_EXPECTS(order >= 1 && bins >= order);
  TINGE_EXPECTS(weight_stride >=
                round_up(static_cast<std::size_t>(order), 4));
  TINGE_EXPECTS(weights.size() == m * weight_stride);
  TINGE_EXPECTS(first_bin.size() == m);
  std::copy(weights.begin(), weights.end(), weights_.data());
  std::copy(first_bin.begin(), first_bin.end(), first_bin_.data());
  build_packed();
}

}  // namespace tinge
