// The hot pair kernels: joint entropy of two rank profiles through the
// shared weight table. Everything the paper's Xeon Phi optimization section
// is about happens here.
//
// For each of the m samples the kernel adds an order x order patch of
// weight products into the b x b joint histogram:
//
//     P[ix + a][iy + c] += wx[a] * wy[c]      a, c in [0, order)
//
// Kernel variants (benchmarked against each other in bench_mi_kernels):
//   Scalar     — the textbook triple loop; the paper's baseline.
//   Unrolled   — order known at compile time, inner loops fully unrolled.
//   Simd       — wy is loaded once as a padded vector; each row update is a
//                single broadcast*vector FMA (the paper's VPU formulation).
//   Replicated — Simd plus K-way histogram replication: consecutive samples
//                write to different replicas, breaking the store-to-load
//                dependency chain when neighbouring samples hit the same
//                bins (frequent: ranks are uniform, so adjacent histogram
//                rows are hot). Replicas are reduced before the entropy
//                pass. This mirrors the paper's private-copy trick for
//                vectorizing scatter updates with conflicts.
//   Gather512  — the full-width Phi-style formulation (order <= 4,
//                AVX-512F builds only; resolves to Replicated elsewhere):
//                four samples are packed into one 512-bit register (4
//                samples x 4 padded weights = 16 lanes) and their histogram
//                patches are updated with gather -> FMA -> scatter, one
//                instruction triple per row offset. Each sample in the
//                group writes its own histogram replica, so the scattered
//                indices never collide — the same conflict-free-by-
//                construction trick the paper uses to vectorize scatter
//                updates on the Phi's VPU.
//
// Panel (row-reuse) formulation — joint_entropy_panel:
//   The tiled O(n^2) pass pairs every row gene i with every column gene j of
//   its tile row, yet the per-pair kernels above re-read gene i's rank row,
//   re-derive first_bin[rx[j]] * stride and the wx weight-row pointer, and
//   re-clear/re-reduce scratch once *per pair*. The panel kernel instead
//   fixes one row gene and sweeps the m samples once against B column genes
//   (B <= kMaxPanelWidth), accumulating into B joint-histogram regions:
//   the rx-side work (rank load, weight-row broadcasts, row-base offset) is
//   done once per sample instead of once per pair, and the round-robin
//   across B independent regions breaks the store-to-load dependency chain
//   that the per-pair Replicated kernel needs replica merging for — so the
//   panel path skips the replica merge entirely. One batched entropy pass
//   over the B regions finishes the panel. Variants mirror the per-pair
//   ladder (scalar / unrolled / FMA-SIMD / AVX-512 gather-scatter); for a
//   given region each variant performs the per-pair kernel's float
//   operations in the same order, so panel results are bit-identical to the
//   matching per-pair kernel.
//
// Memory-side panel policies (PanelOptions), independent of the variant
// ladder and bit-identical by construction:
//   * uint16 rank staging — ranks are exact integers < m, so when
//     m <= 65536 the panel entry points also accept uint16 rank rows
//     (StagedRankMatrix in preprocess/rank_transform.h), halving the
//     streamed rank traffic of the O(n^2) sweep. The indices select the
//     same table rows, so results are bit-identical to the uint32 path.
//   * packed table rows — the FMA panels can read the WeightTable's
//     interleaved [weights | first_bin] rows (one cache-line-bounded load
//     per y-side lookup instead of two scattered ones).
//   * software prefetch — the scalar/FMA/gather512 panels can issue
//     prefetches for the table rows of sample j + kPrefetchDistance,
//     covering the rank-indexed (hardware-prefetch-opaque) loads.
//
// All variants return H(X,Y) in nats and produce identical results up to
// float summation order.
#pragma once

#include <cstdint>

#include "mi/joint_histogram.h"
#include "mi/weight_table.h"

namespace tinge {

enum class MiKernel { Scalar, Unrolled, Simd, Replicated, Gather512, Auto };

/// True when this build can run the real 512-bit gather/scatter kernel.
bool gather512_available();

const char* kernel_name(MiKernel kernel);

/// Replica count used by MiKernel::Replicated.
inline constexpr int kHistogramReplicas = 4;

/// Maximum panel width B accepted by joint_entropy_panel. Scratch from
/// make_kernel_scratch always carries this many histogram regions.
inline constexpr int kMaxPanelWidth = 8;

/// Samples of lookahead for the software-prefetch panel variants: far
/// enough to cover L2 latency, near enough that the rows are still resident
/// when their sample arrives.
inline constexpr std::size_t kPrefetchDistance = 16;

/// Memory-side policy of one panel sweep, resolved once per pass (the
/// kernel-policy flag measured-auto picks through, see plan_panels):
/// `prefetch` issues software prefetches for upcoming samples' table rows
/// in the scalar/FMA/gather512 panels; `packed` makes the FMA panels read
/// the interleaved packed table rows. Both leave results bit-identical —
/// they change where bytes come from, not which floats are multiplied.
struct PanelOptions {
  MiKernel kernel = MiKernel::Auto;
  bool prefetch = false;
  bool packed = false;
};

/// Scratch sized for any kernel variant: Replicated needs kHistogramReplicas
/// regions, the panel kernels up to kMaxPanelWidth.
JointHistogram make_kernel_scratch(const WeightTable& table);

/// Joint entropy H(X,Y) in nats of two rank profiles of length m.
/// `scratch` must come from make_kernel_scratch for the same table.
/// Auto resolves to Replicated for order <= 4, else Simd.
double joint_entropy(const WeightTable& table, const std::uint32_t* ranks_x,
                     const std::uint32_t* ranks_y, std::size_t m,
                     JointHistogram& scratch, MiKernel kernel);

/// Batched joint entropy of one row gene against a panel of `width` column
/// genes (1 <= width <= kMaxPanelWidth): h_out[p] = H(X, Y_p) where
/// ranks_y[p] is the p-th column gene's rank profile. The m samples are
/// swept once; the row gene's table lookups are shared across the panel.
/// For every p the result is bit-identical to per-pair joint_entropy with
/// the matching kernel (Scalar/Unrolled exactly; Simd/Replicated/Gather512/
/// Auto all map to the FMA-SIMD accumulation order of MiKernel::Simd, with
/// Gather512 running the 512-bit gather/scatter formulation when available).
void joint_entropy_panel(const WeightTable& table, const std::uint32_t* ranks_x,
                         const std::uint32_t* const* ranks_y, std::size_t width,
                         std::size_t m, JointHistogram& scratch,
                         MiKernel kernel, double* h_out);

/// Full-policy panel entry points: kernel plus the packed/prefetch knobs.
/// The uint16 overload is the staged-rank path (requires every rank < m and
/// m <= 65536, see StagedRankMatrix) and is bit-identical to the uint32
/// overload for the same options.
void joint_entropy_panel(const WeightTable& table, const std::uint32_t* ranks_x,
                         const std::uint32_t* const* ranks_y, std::size_t width,
                         std::size_t m, JointHistogram& scratch,
                         const PanelOptions& options, double* h_out);
void joint_entropy_panel(const WeightTable& table, const std::uint16_t* ranks_x,
                         const std::uint16_t* const* ranks_y, std::size_t width,
                         std::size_t m, JointHistogram& scratch,
                         const PanelOptions& options, double* h_out);

/// The kernel actually run when `kernel` is Auto for this table.
MiKernel resolve_kernel(MiKernel kernel, int order);

/// The panel variant joint_entropy_panel runs for `kernel`: Replicated and
/// Auto map to Simd (panel interleaving already breaks the store-to-load
/// chain replication exists for), Gather512 falls back to Simd when the ISA
/// or order rules it out.
MiKernel resolve_panel_kernel(MiKernel kernel, int order);

/// The per-pair kernel whose float accumulation order reproduces the
/// engine's panel sweep bits for `kernel`: Scalar and Unrolled are exact
/// per-pair equivalents already, while the whole SIMD family (Simd,
/// Replicated, Gather512, Auto — including Auto's measured resolution)
/// shares the panel path's FMA-SIMD accumulation of MiKernel::Simd.
/// Per-pair code that must match the engine bit-for-bit (e.g. the cluster
/// ring sweep) routes its kernel choice through this instead of passing
/// the configured kernel straight to joint_entropy.
MiKernel panel_equivalent_kernel(MiKernel kernel);

/// Auto resolution backed by a one-shot microbenchmark: on AVX-512F builds
/// with order <= 4 the FMA-SIMD and gather/scatter formulations are timed
/// once per process (first table wins; subsequent calls reuse the cached
/// verdict) and the faster one is returned — this is how Auto can select
/// Gather512, which the static policy never does. Panel (panel_width > 1)
/// and per-pair flavors are measured and cached independently. Non-Auto
/// kernels pass through untouched (the config override). Without AVX-512F
/// or for order > 4 this is identical to the static resolution.
MiKernel resolve_kernel_measured(MiKernel kernel, const WeightTable& table,
                                 int panel_width);

/// Measured arm of the prefetch policy flag: times one-shot panel sweeps of
/// `base` against `base` + prefetch (same kernel and packed setting) and
/// returns whether prefetch won. Cached per process like
/// resolve_kernel_measured (first table wins). Always false for panel
/// kernels that ignore the flag (Unrolled).
bool prefetch_pays_measured(const WeightTable& table, const PanelOptions& base,
                            int panel_width);

/// Measured arm of the packed-table policy flag: times `base` against
/// `base` + packed rows and returns whether packed won. Cached per process
/// (first table wins). Always false when the resolved panel kernel is not
/// Simd — only the FMA panels read the packed layout.
bool packed_pays_measured(const WeightTable& table, const PanelOptions& base,
                          int panel_width);

/// Panel width the Auto policy picks for `table`: the largest
/// B <= kMaxPanelWidth whose B joint-histogram regions fit the panel cache
/// budget (histograms must stay resident across the whole m-sample sweep).
int auto_panel_width(const WeightTable& table);

}  // namespace tinge
