// The hot pair kernels: joint entropy of two rank profiles through the
// shared weight table. Everything the paper's Xeon Phi optimization section
// is about happens here.
//
// For each of the m samples the kernel adds an order x order patch of
// weight products into the b x b joint histogram:
//
//     P[ix + a][iy + c] += wx[a] * wy[c]      a, c in [0, order)
//
// Kernel variants (benchmarked against each other in bench_mi_kernels):
//   Scalar     — the textbook triple loop; the paper's baseline.
//   Unrolled   — order known at compile time, inner loops fully unrolled.
//   Simd       — wy is loaded once as a padded vector; each row update is a
//                single broadcast*vector FMA (the paper's VPU formulation).
//   Replicated — Simd plus K-way histogram replication: consecutive samples
//                write to different replicas, breaking the store-to-load
//                dependency chain when neighbouring samples hit the same
//                bins (frequent: ranks are uniform, so adjacent histogram
//                rows are hot). Replicas are reduced before the entropy
//                pass. This mirrors the paper's private-copy trick for
//                vectorizing scatter updates with conflicts.
//   Gather512  — the full-width Phi-style formulation (order <= 4,
//                AVX-512F builds only; resolves to Replicated elsewhere):
//                four samples are packed into one 512-bit register (4
//                samples x 4 padded weights = 16 lanes) and their histogram
//                patches are updated with gather -> FMA -> scatter, one
//                instruction triple per row offset. Each sample in the
//                group writes its own histogram replica, so the scattered
//                indices never collide — the same conflict-free-by-
//                construction trick the paper uses to vectorize scatter
//                updates on the Phi's VPU.
//
// All variants return H(X,Y) in nats and produce identical results up to
// float summation order.
#pragma once

#include <cstdint>

#include "mi/joint_histogram.h"
#include "mi/weight_table.h"

namespace tinge {

enum class MiKernel { Scalar, Unrolled, Simd, Replicated, Gather512, Auto };

/// True when this build can run the real 512-bit gather/scatter kernel.
bool gather512_available();

const char* kernel_name(MiKernel kernel);

/// Replica count used by MiKernel::Replicated.
inline constexpr int kHistogramReplicas = 4;

/// Scratch sized for any kernel variant (Replicated needs replica rows).
JointHistogram make_kernel_scratch(const WeightTable& table);

/// Joint entropy H(X,Y) in nats of two rank profiles of length m.
/// `scratch` must come from make_kernel_scratch for the same table.
/// Auto resolves to Replicated for order <= 4, else Simd.
double joint_entropy(const WeightTable& table, const std::uint32_t* ranks_x,
                     const std::uint32_t* ranks_y, std::size_t m,
                     JointHistogram& scratch, MiKernel kernel);

/// The kernel actually run when `kernel` is Auto for this table.
MiKernel resolve_kernel(MiKernel kernel, int order);

}  // namespace tinge
