#include "mi/histogram_mi.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.h"

namespace tinge {

namespace {

struct JointCounts {
  std::vector<double> joint;  // b x b
  std::vector<double> px, py;
  std::size_t m = 0;
  int bins = 0;

  double mi() const {
    const double inv_m = 1.0 / static_cast<double>(m);
    double h_x = 0.0, h_y = 0.0, h_xy = 0.0;
    for (const double c : px)
      if (c > 0) h_x -= c * inv_m * std::log(c * inv_m);
    for (const double c : py)
      if (c > 0) h_y -= c * inv_m * std::log(c * inv_m);
    for (const double c : joint)
      if (c > 0) h_xy -= c * inv_m * std::log(c * inv_m);
    return h_x + h_y - h_xy;
  }

  double miller_madow_bias() const {
    std::size_t k_xy = 0, k_x = 0, k_y = 0;
    for (const double c : joint)
      if (c > 0) ++k_xy;
    for (const double c : px)
      if (c > 0) ++k_x;
    for (const double c : py)
      if (c > 0) ++k_y;
    return (static_cast<double>(k_xy) - static_cast<double>(k_x) -
            static_cast<double>(k_y) + 1.0) /
           (2.0 * static_cast<double>(m));
  }
};

template <typename BinOfX, typename BinOfY>
JointCounts count(std::size_t m, int bins, BinOfX&& bin_x, BinOfY&& bin_y) {
  JointCounts counts;
  counts.m = m;
  counts.bins = bins;
  const auto b = static_cast<std::size_t>(bins);
  counts.joint.assign(b * b, 0.0);
  counts.px.assign(b, 0.0);
  counts.py.assign(b, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t bx = bin_x(j);
    const std::size_t by = bin_y(j);
    counts.joint[bx * b + by] += 1.0;
    counts.px[bx] += 1.0;
    counts.py[by] += 1.0;
  }
  return counts;
}

std::size_t rank_bin(std::uint32_t rank, std::size_t m, int bins) {
  return static_cast<std::size_t>(rank) * static_cast<std::size_t>(bins) / m;
}

std::size_t value_bin(float v01, int bins) {
  TINGE_EXPECTS(v01 >= 0.0f && v01 <= 1.0f);
  const auto b = static_cast<std::size_t>(bins);
  const auto bin = static_cast<std::size_t>(static_cast<double>(v01) *
                                            static_cast<double>(bins));
  return std::min(bin, b - 1);
}

JointCounts counts_from_ranks(std::span<const std::uint32_t> rx,
                              std::span<const std::uint32_t> ry, int bins) {
  TINGE_EXPECTS(rx.size() == ry.size());
  TINGE_EXPECTS(rx.size() >= 2);
  TINGE_EXPECTS(bins >= 1);
  const std::size_t m = rx.size();
  return count(
      m, bins, [&](std::size_t j) { return rank_bin(rx[j], m, bins); },
      [&](std::size_t j) { return rank_bin(ry[j], m, bins); });
}

}  // namespace

double histogram_mi_from_ranks(std::span<const std::uint32_t> rx,
                               std::span<const std::uint32_t> ry, int bins) {
  return counts_from_ranks(rx, ry, bins).mi();
}

double histogram_mi(std::span<const float> x01, std::span<const float> y01,
                    int bins) {
  TINGE_EXPECTS(x01.size() == y01.size());
  TINGE_EXPECTS(x01.size() >= 2);
  TINGE_EXPECTS(bins >= 1);
  return count(
             x01.size(), bins,
             [&](std::size_t j) { return value_bin(x01[j], bins); },
             [&](std::size_t j) { return value_bin(y01[j], bins); })
      .mi();
}

double histogram_mi_miller_madow(std::span<const std::uint32_t> rx,
                                 std::span<const std::uint32_t> ry, int bins) {
  const JointCounts counts = counts_from_ranks(rx, ry, bins);
  return counts.mi() - counts.miller_madow_bias();
}

}  // namespace tinge
