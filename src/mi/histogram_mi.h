// Baseline MI estimators the B-spline estimator is compared against
// (estimator-quality ablation A1): classic hard-binned plug-in MI, with
// optional Miller–Madow bias correction.
#pragma once

#include <cstdint>
#include <span>

namespace tinge {

/// Plug-in MI (nats) from rank profiles using equal-frequency hard bins:
/// sample with rank r falls in bin floor(r * bins / m). This is the exact
/// hard-binning analogue of the pipeline's estimator.
double histogram_mi_from_ranks(std::span<const std::uint32_t> ranks_x,
                               std::span<const std::uint32_t> ranks_y,
                               int bins);

/// Plug-in MI (nats) on values in [0, 1] with equal-width bins.
double histogram_mi(std::span<const float> x01, std::span<const float> y01,
                    int bins);

/// Miller–Madow corrected variant of histogram_mi_from_ranks: subtracts the
/// first-order bias (K_xy - K_x - K_y + 1) / (2m), where K_* are occupied
/// cell counts. Reduces the positive bias of plug-in MI for small m.
double histogram_mi_miller_madow(std::span<const std::uint32_t> ranks_x,
                                 std::span<const std::uint32_t> ranks_y,
                                 int bins);

}  // namespace tinge
