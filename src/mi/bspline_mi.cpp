#include "mi/bspline_mi.h"

#include <cmath>
#include <vector>

#include "preprocess/rank_transform.h"

namespace tinge {

double bspline_mi_direct(std::span<const float> x01, std::span<const float> y01,
                         int bins, int order) {
  TINGE_EXPECTS(x01.size() == y01.size());
  TINGE_EXPECTS(x01.size() >= 2);
  const BsplineBasis basis(bins, order);
  const std::size_t m = x01.size();
  const auto b = static_cast<std::size_t>(bins);
  const auto k = static_cast<std::size_t>(order);

  // Per-sample weights for both variables.
  std::vector<float> wx(m * k), wy(m * k);
  std::vector<int> fx(m), fy(m);
  for (std::size_t j = 0; j < m; ++j) {
    fx[j] = basis.evaluate(x01[j], wx.data() + j * k);
    fy[j] = basis.evaluate(y01[j], wy.data() + j * k);
  }

  std::vector<double> joint(b * b, 0.0);
  std::vector<double> px(b, 0.0), py(b, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t a = 0; a < k; ++a) {
      const double wxa = wx[j * k + a];
      px[static_cast<std::size_t>(fx[j]) + a] += wxa;
      for (std::size_t c = 0; c < k; ++c) {
        joint[(static_cast<std::size_t>(fx[j]) + a) * b +
              static_cast<std::size_t>(fy[j]) + c] +=
            wxa * static_cast<double>(wy[j * k + c]);
      }
    }
    for (std::size_t c = 0; c < k; ++c)
      py[static_cast<std::size_t>(fy[j]) + c] += wy[j * k + c];
  }

  const double inv_m = 1.0 / static_cast<double>(m);
  const auto entropy = [&](const std::vector<double>& mass) {
    double h = 0.0;
    for (const double cell : mass) {
      const double p = cell * inv_m;
      if (p > 0.0) h -= p * std::log(p);
    }
    return h;
  };
  return entropy(px) + entropy(py) - entropy(joint);
}

double bspline_mi_pairwise_complete(std::span<const float> x,
                                    std::span<const float> y, int bins,
                                    int order) {
  TINGE_EXPECTS(x.size() == y.size());
  std::vector<float> xc, yc;
  xc.reserve(x.size());
  yc.reserve(y.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (!std::isnan(x[j]) && !std::isnan(y[j])) {
      xc.push_back(x[j]);
      yc.push_back(y[j]);
    }
  }
  TINGE_EXPECTS(xc.size() >= 8);
  const std::size_t m = xc.size();
  const auto rx = rank_order(xc);
  const auto ry = rank_order(yc);
  std::vector<float> x01(m), y01(m);
  for (std::size_t j = 0; j < m; ++j) {
    x01[j] = rank_to_unit(static_cast<float>(rx[j]), m);
    y01[j] = rank_to_unit(static_cast<float>(ry[j]), m);
  }
  return bspline_mi_direct(x01, y01, bins, order);
}

}  // namespace tinge
