// The shared rank -> B-spline-weight table.
//
// After the StableOrder rank transform every gene's profile is a permutation
// of the ranks 0..m-1, so the B-spline weights of "the sample with rank r"
// are the same for every gene. This table stores, for each rank r:
//   * first_bin[r]  — index of the first histogram bin the sample touches,
//   * weights[r][0..order) — the basis weights (padded with zeros to a
//     SIMD-friendly stride so kernels can issue full-width loads).
//
// This is the paper's first key restructuring: it removes all per-pair
// B-spline evaluation from the O(n^2) stage and turns the kernel into pure
// table-driven fused multiply-adds. It also makes the marginal entropy a
// single dataset-wide constant, exposed here.
#pragma once

#include <cstdint>
#include <span>

#include "mi/bspline.h"
#include "util/aligned.h"

namespace tinge {

class WeightTable {
 public:
  /// Builds the table for m samples (ranks 0..m-1 mapped to the open unit
  /// interval via (r + 0.5)/m, see rank_transform.h).
  WeightTable(std::size_t m, const BsplineBasis& basis);

  /// Reconstructs a table from its serialized pieces (the cluster pipeline
  /// builds the table once on rank 0 and broadcasts it; receiving ranks use
  /// this instead of recomputing). `weights` must be m * weight_stride
  /// floats and `first_bin` m entries, laid out exactly as weights_data()
  /// / first_bin_data() expose them.
  WeightTable(std::size_t m, int bins, int order, std::size_t weight_stride,
              std::span<const float> weights,
              std::span<const std::int32_t> first_bin,
              double marginal_entropy);

  std::size_t n_samples() const { return m_; }
  int bins() const { return bins_; }
  int order() const { return order_; }

  /// Floats per weight row (>= order, zero padded, multiple of 4).
  std::size_t weight_stride() const { return weight_stride_; }

  const float* weights_data() const { return weights_.data(); }
  const std::int32_t* first_bin_data() const { return first_bin_.data(); }

  std::span<const float> weights(std::size_t rank) const {
    TINGE_EXPECTS(rank < m_);
    return {weights_.data() + rank * weight_stride_, weight_stride_};
  }
  std::int32_t first_bin(std::size_t rank) const {
    TINGE_EXPECTS(rank < m_);
    return first_bin_[rank];
  }

  /// H(X) of the shared marginal distribution (nats). Identical for all
  /// genes by construction; MI(x, y) = 2 * marginal_entropy() - H(x, y).
  double marginal_entropy() const { return marginal_entropy_; }

 private:
  std::size_t m_;
  int bins_;
  int order_;
  std::size_t weight_stride_;
  AlignedBuffer<float> weights_;        // m x weight_stride
  AlignedBuffer<std::int32_t> first_bin_;  // m
  double marginal_entropy_ = 0.0;
};

}  // namespace tinge
