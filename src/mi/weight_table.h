// The shared rank -> B-spline-weight table.
//
// After the StableOrder rank transform every gene's profile is a permutation
// of the ranks 0..m-1, so the B-spline weights of "the sample with rank r"
// are the same for every gene. This table stores, for each rank r:
//   * first_bin[r]  — index of the first histogram bin the sample touches,
//   * weights[r][0..order) — the basis weights (padded with zeros to a
//     SIMD-friendly stride so kernels can issue full-width loads).
//
// This is the paper's first key restructuring: it removes all per-pair
// B-spline evaluation from the O(n^2) stage and turns the kernel into pure
// table-driven fused multiply-adds. It also makes the marginal entropy a
// single dataset-wide constant, exposed here.
//
// Two physical layouts coexist:
//   * classic — weights_ (m x weight_stride floats) and first_bin_ (m
//     int32) as separate arrays. The per-pair kernels and the AVX-512
//     gather/scatter kernel read this.
//   * packed — one interleaved array of m rows of packed_stride floats:
//     [w_0 .. w_{ws-1}, bit_cast<float>(first_bin), zero padding]. A
//     sample's entire y-side lookup (weight row + first bin) is one
//     contiguous, cache-line-bounded load instead of two scattered ones —
//     the stride is padded so a row never straddles a 64-byte line. The
//     FMA panel kernels read this when PanelOptions::packed is set; the
//     float values are identical, so results stay bit-identical.
#pragma once

#include <cstdint>
#include <span>

#include "mi/bspline.h"
#include "util/aligned.h"

namespace tinge {

class WeightTable {
 public:
  /// Builds the table for m samples (ranks 0..m-1 mapped to the open unit
  /// interval via (r + 0.5)/m, see rank_transform.h).
  WeightTable(std::size_t m, const BsplineBasis& basis);

  /// Reconstructs a table from its serialized pieces (the cluster pipeline
  /// builds the table once on rank 0 and broadcasts it; receiving ranks use
  /// this instead of recomputing). `weights` must be m * weight_stride
  /// floats and `first_bin` m entries, laid out exactly as weights_data()
  /// / first_bin_data() expose them.
  WeightTable(std::size_t m, int bins, int order, std::size_t weight_stride,
              std::span<const float> weights,
              std::span<const std::int32_t> first_bin,
              double marginal_entropy);

  std::size_t n_samples() const { return m_; }
  int bins() const { return bins_; }
  int order() const { return order_; }

  /// Floats per weight row (>= order, zero padded, multiple of 4).
  std::size_t weight_stride() const { return weight_stride_; }

  const float* weights_data() const { return weights_.data(); }
  const std::int32_t* first_bin_data() const { return first_bin_.data(); }

  /// Floats per packed row: weight_stride + 1 (the bit-cast first_bin slot)
  /// rounded up to 8, so a row is 32 or 64 bytes and never straddles a
  /// cache line.
  std::size_t packed_stride() const { return packed_stride_; }

  /// The interleaved rows: packed_data()[r * packed_stride() + c] is weight
  /// c of rank r for c < weight_stride(), and bit_cast<float>(first_bin(r))
  /// at c == weight_stride().
  const float* packed_data() const { return packed_.data(); }

  /// Column of the bit-cast first_bin inside a packed row.
  std::size_t packed_first_bin_slot() const { return weight_stride_; }

  std::span<const float> weights(std::size_t rank) const {
    TINGE_EXPECTS(rank < m_);
    return {weights_.data() + rank * weight_stride_, weight_stride_};
  }
  std::int32_t first_bin(std::size_t rank) const {
    TINGE_EXPECTS(rank < m_);
    return first_bin_[rank];
  }

  /// H(X) of the shared marginal distribution (nats). Identical for all
  /// genes by construction; MI(x, y) = 2 * marginal_entropy() - H(x, y).
  double marginal_entropy() const { return marginal_entropy_; }

 private:
  void build_packed();

  std::size_t m_;
  int bins_;
  int order_;
  std::size_t weight_stride_;
  std::size_t packed_stride_ = 0;
  AlignedBuffer<float> weights_;        // m x weight_stride
  AlignedBuffer<std::int32_t> first_bin_;  // m
  AlignedBuffer<float> packed_;         // m x packed_stride, interleaved
  double marginal_entropy_ = 0.0;
};

}  // namespace tinge
