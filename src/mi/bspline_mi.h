// Facade over basis + weight table + kernels: the B-spline mutual
// information estimator on rank profiles, as used by the network pipeline.
#pragma once

#include <memory>
#include <span>

#include "mi/bspline.h"
#include "mi/bspline_kernels.h"
#include "mi/weight_table.h"

namespace tinge {

class BsplineMi {
 public:
  /// bins/order per Daub et al.; m is the number of experiments.
  BsplineMi(int bins, int order, std::size_t m)
      : basis_(bins, order), table_(m, basis_) {}

  /// Wraps a pre-built (e.g. broadcast-received) weight table; see the
  /// WeightTable deserializing constructor.
  explicit BsplineMi(WeightTable table)
      : basis_(table.bins(), table.order()), table_(std::move(table)) {}

  const BsplineBasis& basis() const { return basis_; }
  const WeightTable& table() const { return table_; }
  std::size_t n_samples() const { return table_.n_samples(); }

  /// Shared marginal entropy H(X) (nats).
  double marginal_entropy() const { return table_.marginal_entropy(); }

  /// Per-thread scratch; create one per worker, reuse across pairs.
  JointHistogram make_scratch() const { return make_kernel_scratch(table_); }

  double joint_entropy(std::span<const std::uint32_t> ranks_x,
                       std::span<const std::uint32_t> ranks_y,
                       JointHistogram& scratch,
                       MiKernel kernel = MiKernel::Auto) const {
    TINGE_EXPECTS(ranks_x.size() >= n_samples());
    TINGE_EXPECTS(ranks_y.size() >= n_samples());
    return tinge::joint_entropy(table_, ranks_x.data(), ranks_y.data(),
                                n_samples(), scratch, kernel);
  }

  /// MI(x, y) = 2 * H_marginal - H(x, y), in nats. Non-negative up to
  /// float rounding of the kernel's entropy pass.
  double mi(std::span<const std::uint32_t> ranks_x,
            std::span<const std::uint32_t> ranks_y, JointHistogram& scratch,
            MiKernel kernel = MiKernel::Auto) const {
    const double h_joint = joint_entropy(ranks_x, ranks_y, scratch, kernel);
    return 2.0 * table_.marginal_entropy() - h_joint;
  }

  /// Batched MI of one row gene against `width` column genes (the panel
  /// kernel, see bspline_kernels.h): mi_out[p] = MI(x, y_p). Results are
  /// bit-identical to per-pair mi() with the matching kernel.
  void mi_panel(std::span<const std::uint32_t> ranks_x,
                const std::uint32_t* const* ranks_y, std::size_t width,
                JointHistogram& scratch, MiKernel kernel,
                double* mi_out) const {
    TINGE_EXPECTS(ranks_x.size() >= n_samples());
    tinge::joint_entropy_panel(table_, ranks_x.data(), ranks_y, width,
                               n_samples(), scratch, kernel, mi_out);
    const double h2 = 2.0 * table_.marginal_entropy();
    for (std::size_t p = 0; p < width; ++p) mi_out[p] = h2 - mi_out[p];
  }

  /// Full-policy panel MI: kernel plus the packed/prefetch knobs, for
  /// classic uint32 or staged uint16 rank rows (RankT). All option and
  /// rank-width combinations are bit-identical (see bspline_kernels.h).
  template <typename RankT>
  void mi_panel(const RankT* ranks_x, const RankT* const* ranks_y,
                std::size_t width, JointHistogram& scratch,
                const PanelOptions& options, double* mi_out) const {
    tinge::joint_entropy_panel(table_, ranks_x, ranks_y, width, n_samples(),
                               scratch, options, mi_out);
    const double h2 = 2.0 * table_.marginal_entropy();
    for (std::size_t p = 0; p < width; ++p) mi_out[p] = h2 - mi_out[p];
  }

 private:
  BsplineBasis basis_;
  WeightTable table_;
};

/// Generic (shared-table-free) B-spline MI on values in [0, 1]:
/// evaluates per-sample weights for both variables, forms the joint and the
/// *consistent* marginals, and returns Hx + Hy - Hxy in nats (always >= 0).
/// Used for Average-tie rank data and for estimator validation; this is the
/// path the pipeline avoids by rank-transforming.
double bspline_mi_direct(std::span<const float> x01, std::span<const float> y01,
                         int bins, int order);

/// B-spline MI over pairwise-complete observations: samples where either
/// profile is NaN are dropped, the survivors are rank-transformed, and the
/// direct estimator runs on them. The alternative to median imputation for
/// sparse missingness (pairwise deletion keeps per-pair information exact
/// at the cost of a varying effective m). Requires >= 8 complete pairs.
double bspline_mi_pairwise_complete(std::span<const float> x,
                                    std::span<const float> y, int bins,
                                    int order);

}  // namespace tinge
