// Per-thread joint-histogram scratch for the pair kernels.
//
// Rows are padded so that (a) a full SIMD register starting at any valid
// bin column stays inside the row's allocation (kernels write up to
// weight_stride columns past the first bin), and (b) each row starts on a
// 64-byte boundary. With the paper's b in the 10-30 range one histogram is
// a few KB — it lives in L1 for the whole tile, which is precisely why the
// estimator is compute- rather than memory-bound.
//
// A histogram can carry `replicas` stacked copies (each bins x stride):
// the Replicated kernel writes round-robin into them to break store-to-load
// dependencies and reduces them before the entropy pass.
#pragma once

#include <cstring>
#include <span>

#include "util/aligned.h"

namespace tinge {

class JointHistogram {
 public:
  /// Row stride (floats) a histogram of `bins` bins uses when kernels may
  /// issue stores up to `max_vector_width` floats wide from any bin column.
  /// Exposed so sizing policies (panel width selection) can compute a
  /// histogram's footprint without allocating one.
  static constexpr std::size_t stride_for(int bins, int max_vector_width = 16) {
    return round_up(static_cast<std::size_t>(bins + max_vector_width),
                    kSimdAlignment / sizeof(float));
  }

  /// `max_vector_width` is the widest store a kernel may issue from a bin
  /// column (in floats); padding guarantees such stores stay in bounds.
  explicit JointHistogram(int bins, int max_vector_width = 16, int replicas = 1)
      : bins_(bins),
        replicas_(replicas),
        stride_(stride_for(bins, max_vector_width)),
        cells_(static_cast<std::size_t>(bins) * static_cast<std::size_t>(replicas) *
               stride_) {
    TINGE_EXPECTS(bins >= 1);
    TINGE_EXPECTS(max_vector_width >= 1);
    TINGE_EXPECTS(replicas >= 1);
  }

  int bins() const { return bins_; }
  int replicas() const { return replicas_; }
  std::size_t stride() const { return stride_; }

  /// Cells in one replica (bins * stride).
  std::size_t replica_cells() const {
    return static_cast<std::size_t>(bins_) * stride_;
  }
  /// Cells in the whole allocation.
  std::size_t cell_count() const { return cells_.size(); }

  float* data() { return cells_.data(); }
  const float* data() const { return cells_.data(); }

  float* row(int i, int replica = 0) {
    TINGE_EXPECTS(i >= 0 && i < bins_);
    TINGE_EXPECTS(replica >= 0 && replica < replicas_);
    return cells_.data() + static_cast<std::size_t>(replica) * replica_cells() +
           static_cast<std::size_t>(i) * stride_;
  }
  const float* row(int i, int replica = 0) const {
    return const_cast<JointHistogram*>(this)->row(i, replica);
  }

  void clear() { std::memset(cells_.data(), 0, cells_.size() * sizeof(float)); }

  /// Sum over all cells (diagnostics; equals m after an accumulation pass).
  double total_mass() const {
    double total = 0.0;
    for (std::size_t i = 0; i < cells_.size(); ++i) total += cells_.data()[i];
    return total;
  }

 private:
  int bins_;
  int replicas_;
  std::size_t stride_;
  AlignedBuffer<float> cells_;
};

}  // namespace tinge
