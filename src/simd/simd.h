// Explicit SIMD abstraction.
//
// The paper's central optimization is vectorizing the B-spline
// mutual-information kernel for the Xeon Phi's 512-bit vector processing
// units. The Phi itself is no longer available; this layer reproduces the
// same code structure on modern ISAs:
//
//   * F32x16 — 512-bit (AVX-512F), the width the paper targets,
//   * F32x8  — 256-bit (AVX2+FMA), the paper's Xeon-host configuration,
//   * F32x4  — 128-bit (SSE2), used for the k-wide histogram-row updates,
//   * ScalarF32<W> — portable fallback with identical semantics.
//
// All wrappers share one API (load/loadu/store/storeu/broadcast/zero,
// +,-,*, fmadd, reduce_add) so kernels are written once per *shape* and
// instantiated per width. The aliases at the bottom pick the widest type
// the build supports; kernels dispatch on them at compile time and the
// benchmarks report which path actually ran.
#pragma once

#include <cstddef>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace tinge::simd {

// ---------------------------------------------------------------------------
// Portable scalar fallback (reference semantics for every other backend).
// ---------------------------------------------------------------------------
template <int W>
struct ScalarF32 {
  static constexpr int width = W;
  float lane[W];

  static ScalarF32 zero() {
    ScalarF32 r;
    for (int i = 0; i < W; ++i) r.lane[i] = 0.0f;
    return r;
  }
  static ScalarF32 broadcast(float v) {
    ScalarF32 r;
    for (int i = 0; i < W; ++i) r.lane[i] = v;
    return r;
  }
  static ScalarF32 load(const float* p) { return loadu(p); }
  static ScalarF32 loadu(const float* p) {
    ScalarF32 r;
    for (int i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  void store(float* p) const { storeu(p); }
  void storeu(float* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  friend ScalarF32 operator+(ScalarF32 a, ScalarF32 b) {
    for (int i = 0; i < W; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend ScalarF32 operator-(ScalarF32 a, ScalarF32 b) {
    for (int i = 0; i < W; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend ScalarF32 operator*(ScalarF32 a, ScalarF32 b) {
    for (int i = 0; i < W; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  /// a*b + c
  static ScalarF32 fmadd(ScalarF32 a, ScalarF32 b, ScalarF32 c) {
    for (int i = 0; i < W; ++i) c.lane[i] += a.lane[i] * b.lane[i];
    return c;
  }
  float reduce_add() const {
    float s = 0.0f;
    for (int i = 0; i < W; ++i) s += lane[i];
    return s;
  }
};

// ---------------------------------------------------------------------------
// 128-bit SSE2
// ---------------------------------------------------------------------------
#if defined(__SSE2__)
struct F32x4 {
  static constexpr int width = 4;
  __m128 v;

  F32x4() = default;
  explicit F32x4(__m128 raw) : v(raw) {}

  static F32x4 zero() { return F32x4(_mm_setzero_ps()); }
  static F32x4 broadcast(float x) { return F32x4(_mm_set1_ps(x)); }
  static F32x4 load(const float* p) { return F32x4(_mm_load_ps(p)); }
  static F32x4 loadu(const float* p) { return F32x4(_mm_loadu_ps(p)); }
  void store(float* p) const { _mm_store_ps(p, v); }
  void storeu(float* p) const { _mm_storeu_ps(p, v); }
  friend F32x4 operator+(F32x4 a, F32x4 b) { return F32x4(_mm_add_ps(a.v, b.v)); }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return F32x4(_mm_sub_ps(a.v, b.v)); }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return F32x4(_mm_mul_ps(a.v, b.v)); }
  static F32x4 fmadd(F32x4 a, F32x4 b, F32x4 c) {
#if defined(__FMA__)
    return F32x4(_mm_fmadd_ps(a.v, b.v, c.v));
#else
    return F32x4(_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v));
#endif
  }
  float reduce_add() const {
    __m128 shuf = _mm_shuffle_ps(v, v, _MM_SHUFFLE(2, 3, 0, 1));
    __m128 sums = _mm_add_ps(v, shuf);
    shuf = _mm_movehl_ps(shuf, sums);
    sums = _mm_add_ss(sums, shuf);
    return _mm_cvtss_f32(sums);
  }
};
#else
using F32x4 = ScalarF32<4>;
#endif

// ---------------------------------------------------------------------------
// 256-bit AVX2
// ---------------------------------------------------------------------------
#if defined(__AVX2__)
struct F32x8 {
  static constexpr int width = 8;
  __m256 v;

  F32x8() = default;
  explicit F32x8(__m256 raw) : v(raw) {}

  static F32x8 zero() { return F32x8(_mm256_setzero_ps()); }
  static F32x8 broadcast(float x) { return F32x8(_mm256_set1_ps(x)); }
  static F32x8 load(const float* p) { return F32x8(_mm256_load_ps(p)); }
  static F32x8 loadu(const float* p) { return F32x8(_mm256_loadu_ps(p)); }
  void store(float* p) const { _mm256_store_ps(p, v); }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }
  friend F32x8 operator+(F32x8 a, F32x8 b) { return F32x8(_mm256_add_ps(a.v, b.v)); }
  friend F32x8 operator-(F32x8 a, F32x8 b) { return F32x8(_mm256_sub_ps(a.v, b.v)); }
  friend F32x8 operator*(F32x8 a, F32x8 b) { return F32x8(_mm256_mul_ps(a.v, b.v)); }
  static F32x8 fmadd(F32x8 a, F32x8 b, F32x8 c) {
#if defined(__FMA__)
    return F32x8(_mm256_fmadd_ps(a.v, b.v, c.v));
#else
    return F32x8(_mm256_add_ps(_mm256_mul_ps(a.v, b.v), c.v));
#endif
  }
  float reduce_add() const {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    return F32x4(_mm_add_ps(lo, hi)).reduce_add();
  }
};
#else
using F32x8 = ScalarF32<8>;
#endif

// ---------------------------------------------------------------------------
// 512-bit AVX-512F — the Phi-equivalent vector width.
// ---------------------------------------------------------------------------
#if defined(__AVX512F__)
struct F32x16 {
  static constexpr int width = 16;
  __m512 v;

  F32x16() = default;
  explicit F32x16(__m512 raw) : v(raw) {}

  static F32x16 zero() { return F32x16(_mm512_setzero_ps()); }
  static F32x16 broadcast(float x) { return F32x16(_mm512_set1_ps(x)); }
  static F32x16 load(const float* p) { return F32x16(_mm512_load_ps(p)); }
  static F32x16 loadu(const float* p) { return F32x16(_mm512_loadu_ps(p)); }
  void store(float* p) const { _mm512_store_ps(p, v); }
  void storeu(float* p) const { _mm512_storeu_ps(p, v); }
  friend F32x16 operator+(F32x16 a, F32x16 b) { return F32x16(_mm512_add_ps(a.v, b.v)); }
  friend F32x16 operator-(F32x16 a, F32x16 b) { return F32x16(_mm512_sub_ps(a.v, b.v)); }
  friend F32x16 operator*(F32x16 a, F32x16 b) { return F32x16(_mm512_mul_ps(a.v, b.v)); }
  static F32x16 fmadd(F32x16 a, F32x16 b, F32x16 c) {
    return F32x16(_mm512_fmadd_ps(a.v, b.v, c.v));
  }
  float reduce_add() const { return _mm512_reduce_add_ps(v); }
};
#else
using F32x16 = ScalarF32<16>;
#endif

// ---------------------------------------------------------------------------
// Build-time selection of the widest available float vector.
// ---------------------------------------------------------------------------
#if defined(__AVX512F__)
using NativeF32 = F32x16;
inline constexpr const char* kNativeIsa = "AVX-512";
#elif defined(__AVX2__)
using NativeF32 = F32x8;
inline constexpr const char* kNativeIsa = "AVX2";
#elif defined(__SSE2__)
using NativeF32 = F32x4;
inline constexpr const char* kNativeIsa = "SSE2";
#else
using NativeF32 = ScalarF32<4>;
inline constexpr const char* kNativeIsa = "scalar";
#endif

inline constexpr int kNativeFloatWidth = NativeF32::width;

}  // namespace tinge::simd
