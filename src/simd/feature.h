// Runtime CPU feature detection (for logging/reporting only — kernel
// dispatch is compile-time, see simd.h). The benchmark harnesses print
// this so recorded numbers carry their ISA provenance.
#pragma once

#include <string>

namespace tinge::simd {

struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Queries CPUID (x86) or reports all-false elsewhere.
CpuFeatures detect_cpu_features();

/// e.g. "runtime: SSE2 AVX AVX2 FMA AVX-512F | compiled: AVX-512 (16 lanes)"
std::string isa_report();

}  // namespace tinge::simd
