// Vectorized transcendentals for the entropy pass.
//
// Computing H(X,Y) = -sum p.log(p) over the bxb joint histogram costs one
// logarithm per bin; with b around 16-32 that is several hundred logs per
// gene pair and, at ~20 cycles per scalar logf, rivals the histogram
// accumulation itself. The paper leans on the Phi's vector log (SVML); we
// reproduce it with the classic Cephes polynomial (the sse_mathfun.h
// formulation) on 128/256/512-bit registers.
//
// Domain note: log_positive() is only defined for x > 0 and finite (denormals
// are flushed to the smallest normal). That is exactly the histogram-bin
// domain; neg_xlogx() additionally maps p <= 0 to 0, the standard
// 0*log(0) = 0 convention of entropy.
#pragma once

#include <cmath>

#include "simd/simd.h"

namespace tinge::simd {

namespace detail {
// Cephes logf coefficients (Moshier; as popularized by sse_mathfun.h).
inline constexpr float kLogP0 = 7.0376836292e-2f;
inline constexpr float kLogP1 = -1.1514610310e-1f;
inline constexpr float kLogP2 = 1.1676998740e-1f;
inline constexpr float kLogP3 = -1.2420140846e-1f;
inline constexpr float kLogP4 = 1.4249322787e-1f;
inline constexpr float kLogP5 = -1.6668057665e-1f;
inline constexpr float kLogP6 = 2.0000714765e-1f;
inline constexpr float kLogP7 = -2.4999993993e-1f;
inline constexpr float kLogP8 = 3.3333331174e-1f;
inline constexpr float kLogQ1 = -2.12194440e-4f;  // ln(2) low bits
inline constexpr float kLogQ2 = 0.693359375f;     // ln(2) high bits
inline constexpr float kSqrtHalf = 0.707106781186547524f;
inline constexpr float kMinNormal = 1.17549435e-38f;
}  // namespace detail

/// Scalar reference (and fallback lane implementation).
inline float log_positive(float x) { return std::log(x); }

/// -p*log(p) with the entropy convention 0*log(0) = 0.
inline float neg_xlogx(float p) { return p > 0.0f ? -p * std::log(p) : 0.0f; }

template <int W>
ScalarF32<W> log_positive(ScalarF32<W> x) {
  for (int i = 0; i < W; ++i) x.lane[i] = std::log(x.lane[i]);
  return x;
}

template <int W>
ScalarF32<W> neg_xlogx(ScalarF32<W> p) {
  for (int i = 0; i < W; ++i) p.lane[i] = neg_xlogx(p.lane[i]);
  return p;
}

#if defined(__SSE2__)
inline F32x4 log_positive(F32x4 xv) {
  __m128 x = _mm_max_ps(xv.v, _mm_set1_ps(detail::kMinNormal));
  __m128i emm0 = _mm_srli_epi32(_mm_castps_si128(x), 23);
  // keep mantissa bits, force exponent to that of 0.5
  x = _mm_and_ps(x, _mm_castsi128_ps(_mm_set1_epi32(~0x7f800000)));
  x = _mm_or_ps(x, _mm_set1_ps(0.5f));
  emm0 = _mm_sub_epi32(emm0, _mm_set1_epi32(0x7f));
  __m128 e = _mm_add_ps(_mm_cvtepi32_ps(emm0), _mm_set1_ps(1.0f));
  const __m128 mask = _mm_cmplt_ps(x, _mm_set1_ps(detail::kSqrtHalf));
  const __m128 tmp = _mm_and_ps(x, mask);
  x = _mm_sub_ps(x, _mm_set1_ps(1.0f));
  e = _mm_sub_ps(e, _mm_and_ps(_mm_set1_ps(1.0f), mask));
  x = _mm_add_ps(x, tmp);
  const __m128 z = _mm_mul_ps(x, x);
  __m128 y = _mm_set1_ps(detail::kLogP0);
  const auto step = [&](float c) {
    y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(c));
  };
  step(detail::kLogP1); step(detail::kLogP2); step(detail::kLogP3);
  step(detail::kLogP4); step(detail::kLogP5); step(detail::kLogP6);
  step(detail::kLogP7); step(detail::kLogP8);
  y = _mm_mul_ps(_mm_mul_ps(y, x), z);
  y = _mm_add_ps(y, _mm_mul_ps(e, _mm_set1_ps(detail::kLogQ1)));
  y = _mm_sub_ps(y, _mm_mul_ps(z, _mm_set1_ps(0.5f)));
  x = _mm_add_ps(x, y);
  x = _mm_add_ps(x, _mm_mul_ps(e, _mm_set1_ps(detail::kLogQ2)));
  return F32x4(x);
}

inline F32x4 neg_xlogx(F32x4 p) {
  const __m128 positive = _mm_cmpgt_ps(p.v, _mm_setzero_ps());
  const F32x4 logp = log_positive(F32x4(_mm_max_ps(p.v, _mm_set1_ps(detail::kMinNormal))));
  const __m128 r = _mm_sub_ps(_mm_setzero_ps(), _mm_mul_ps(p.v, logp.v));
  return F32x4(_mm_and_ps(r, positive));
}
#endif  // __SSE2__

#if defined(__AVX2__)
inline F32x8 log_positive(F32x8 xv) {
  __m256 x = _mm256_max_ps(xv.v, _mm256_set1_ps(detail::kMinNormal));
  __m256i emm0 = _mm256_srli_epi32(_mm256_castps_si256(x), 23);
  x = _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(~0x7f800000)));
  x = _mm256_or_ps(x, _mm256_set1_ps(0.5f));
  emm0 = _mm256_sub_epi32(emm0, _mm256_set1_epi32(0x7f));
  __m256 e = _mm256_add_ps(_mm256_cvtepi32_ps(emm0), _mm256_set1_ps(1.0f));
  const __m256 mask = _mm256_cmp_ps(x, _mm256_set1_ps(detail::kSqrtHalf), _CMP_LT_OS);
  const __m256 tmp = _mm256_and_ps(x, mask);
  x = _mm256_sub_ps(x, _mm256_set1_ps(1.0f));
  e = _mm256_sub_ps(e, _mm256_and_ps(_mm256_set1_ps(1.0f), mask));
  x = _mm256_add_ps(x, tmp);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(detail::kLogP0);
  const auto step = [&](float c) {
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(c));
  };
  step(detail::kLogP1); step(detail::kLogP2); step(detail::kLogP3);
  step(detail::kLogP4); step(detail::kLogP5); step(detail::kLogP6);
  step(detail::kLogP7); step(detail::kLogP8);
  y = _mm256_mul_ps(_mm256_mul_ps(y, x), z);
  y = _mm256_fmadd_ps(e, _mm256_set1_ps(detail::kLogQ1), y);
  y = _mm256_fnmadd_ps(z, _mm256_set1_ps(0.5f), y);
  x = _mm256_add_ps(x, y);
  x = _mm256_fmadd_ps(e, _mm256_set1_ps(detail::kLogQ2), x);
  return F32x8(x);
}

inline F32x8 neg_xlogx(F32x8 p) {
  const __m256 positive = _mm256_cmp_ps(p.v, _mm256_setzero_ps(), _CMP_GT_OS);
  const F32x8 logp =
      log_positive(F32x8(_mm256_max_ps(p.v, _mm256_set1_ps(detail::kMinNormal))));
  const __m256 r = _mm256_sub_ps(_mm256_setzero_ps(), _mm256_mul_ps(p.v, logp.v));
  return F32x8(_mm256_and_ps(r, positive));
}
#endif  // __AVX2__

#if defined(__AVX512F__)
inline F32x16 log_positive(F32x16 xv) {
  __m512 x = _mm512_max_ps(xv.v, _mm512_set1_ps(detail::kMinNormal));
  __m512i emm0 = _mm512_srli_epi32(_mm512_castps_si512(x), 23);
  __m512i bits = _mm512_castps_si512(x);
  bits = _mm512_and_si512(bits, _mm512_set1_epi32(~0x7f800000));
  bits = _mm512_or_si512(bits, _mm512_castps_si512(_mm512_set1_ps(0.5f)));
  x = _mm512_castsi512_ps(bits);
  emm0 = _mm512_sub_epi32(emm0, _mm512_set1_epi32(0x7f));
  __m512 e = _mm512_add_ps(_mm512_cvtepi32_ps(emm0), _mm512_set1_ps(1.0f));
  const __mmask16 below = _mm512_cmp_ps_mask(x, _mm512_set1_ps(detail::kSqrtHalf), _CMP_LT_OS);
  const __m512 tmp = _mm512_maskz_mov_ps(below, x);
  x = _mm512_sub_ps(x, _mm512_set1_ps(1.0f));
  e = _mm512_mask_sub_ps(e, below, e, _mm512_set1_ps(1.0f));
  x = _mm512_add_ps(x, tmp);
  const __m512 z = _mm512_mul_ps(x, x);
  __m512 y = _mm512_set1_ps(detail::kLogP0);
  const auto step = [&](float c) {
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(c));
  };
  step(detail::kLogP1); step(detail::kLogP2); step(detail::kLogP3);
  step(detail::kLogP4); step(detail::kLogP5); step(detail::kLogP6);
  step(detail::kLogP7); step(detail::kLogP8);
  y = _mm512_mul_ps(_mm512_mul_ps(y, x), z);
  y = _mm512_fmadd_ps(e, _mm512_set1_ps(detail::kLogQ1), y);
  y = _mm512_fnmadd_ps(z, _mm512_set1_ps(0.5f), y);
  x = _mm512_add_ps(x, y);
  x = _mm512_fmadd_ps(e, _mm512_set1_ps(detail::kLogQ2), x);
  return F32x16(x);
}

inline F32x16 neg_xlogx(F32x16 p) {
  const __mmask16 positive = _mm512_cmp_ps_mask(p.v, _mm512_setzero_ps(), _CMP_GT_OS);
  const F32x16 logp =
      log_positive(F32x16(_mm512_max_ps(p.v, _mm512_set1_ps(detail::kMinNormal))));
  const __m512 r = _mm512_sub_ps(_mm512_setzero_ps(), _mm512_mul_ps(p.v, logp.v));
  return F32x16(_mm512_maskz_mov_ps(positive, r));
}
#endif  // __AVX512F__

/// Sum of -p*log(p) over `count` floats (any alignment, any count).
/// Uses the widest available vector path with a scalar tail.
inline double entropy_sum(const float* p, std::size_t count) {
  using V = NativeF32;
  constexpr std::size_t W = static_cast<std::size_t>(V::width);
  V acc = V::zero();
  std::size_t i = 0;
  for (; i + W <= count; i += W) acc = acc + neg_xlogx(V::loadu(p + i));
  double total = acc.reduce_add();
  for (; i < count; ++i) total += neg_xlogx(p[i]);
  return total;
}

}  // namespace tinge::simd
