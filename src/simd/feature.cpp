#include "simd/feature.h"

#include "simd/simd.h"
#include "util/str.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace tinge::simd {

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx & (1u << 26)) != 0;
    f.avx = (ecx & (1u << 28)) != 0;
    f.fma = (ecx & (1u << 12)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
  }
#endif
  return f;
}

std::string isa_report() {
  const CpuFeatures f = detect_cpu_features();
  std::string runtime;
  if (f.sse2) runtime += " SSE2";
  if (f.avx) runtime += " AVX";
  if (f.avx2) runtime += " AVX2";
  if (f.fma) runtime += " FMA";
  if (f.avx512f) runtime += " AVX-512F";
  if (runtime.empty()) runtime = " none";
  return strprintf("runtime:%s | compiled: %s (%d lanes)", runtime.c_str(),
                   kNativeIsa, kNativeFloatWidth);
}

}  // namespace tinge::simd
