// Empirical quantiles and distribution helpers used by the permutation test:
// the significance threshold I_alpha is the (1-alpha) quantile of the
// permutation-null MI sample.
#pragma once

#include <span>
#include <vector>

namespace tinge {

/// Empirical quantile with linear interpolation (R type-7, the default of
/// most statistics packages). `p` in [0, 1]. The input need not be sorted.
double quantile(std::span<const double> values, double p);

/// Same, but assumes `sorted` is ascending; O(1).
double quantile_sorted(std::span<const double> sorted, double p);

/// Empirical upper-tail probability P(X >= x) of the sample.
double upper_tail(std::span<const double> values, double x);

/// An immutable empirical distribution built once and queried many times
/// (the universal permutation null is exactly this).
class EmpiricalDistribution {
 public:
  explicit EmpiricalDistribution(std::vector<double> sample);

  std::size_t size() const { return sorted_.size(); }
  double min() const;
  double max() const;
  double quantile(double p) const;
  /// P(X >= x) with the +1 correction of Davison & Hinkley (never zero),
  /// the standard p-value estimator for permutation tests.
  double p_value(double x) const;

  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace tinge
