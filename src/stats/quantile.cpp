#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace tinge {

double quantile_sorted(std::span<const double> sorted, double p) {
  TINGE_EXPECTS(!sorted.empty());
  TINGE_EXPECTS(p >= 0.0 && p <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double p) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, p);
}

double upper_tail(std::span<const double> values, double x) {
  TINGE_EXPECTS(!values.empty());
  std::size_t count = 0;
  for (const double v : values)
    if (v >= x) ++count;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  TINGE_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::min() const { return sorted_.front(); }
double EmpiricalDistribution::max() const { return sorted_.back(); }

double EmpiricalDistribution::quantile(double p) const {
  return quantile_sorted(sorted_, p);
}

double EmpiricalDistribution::p_value(double x) const {
  // count of null draws >= x, via binary search on the sorted sample
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  const auto ge = static_cast<std::size_t>(sorted_.end() - it);
  return (static_cast<double>(ge) + 1.0) / (static_cast<double>(sorted_.size()) + 1.0);
}

}  // namespace tinge
