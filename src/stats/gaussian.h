// Closed-form facts about bivariate Gaussians, used to validate the
// mutual-information estimators: for (X, Y) jointly Gaussian with
// correlation rho, the true mutual information is
//     I(X; Y) = -0.5 * ln(1 - rho^2)   [nats].
#pragma once

#include <cmath>

#include "util/contracts.h"

namespace tinge {

/// True MI (in nats) of a bivariate Gaussian with correlation `rho`.
inline double gaussian_mi_nats(double rho) {
  TINGE_EXPECTS(rho > -1.0 && rho < 1.0);
  return -0.5 * std::log(1.0 - rho * rho);
}

/// Same in bits.
inline double gaussian_mi_bits(double rho) {
  return gaussian_mi_nats(rho) / std::log(2.0);
}

/// Inverse: the |rho| that produces a given MI (nats).
inline double rho_for_gaussian_mi(double mi_nats) {
  TINGE_EXPECTS(mi_nats >= 0.0);
  return std::sqrt(1.0 - std::exp(-2.0 * mi_nats));
}

}  // namespace tinge
