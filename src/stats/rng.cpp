#include "stats/rng.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace tinge {

std::vector<std::uint32_t> random_permutation(std::size_t n, Xoshiro256& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  shuffle(perm, rng);
  return perm;
}

std::vector<std::uint32_t> sample_without_replacement(std::size_t n, std::size_t k,
                                                      Xoshiro256& rng) {
  TINGE_EXPECTS(k <= n);
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k);
  std::vector<std::uint32_t> result;
  result.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto candidate = static_cast<std::uint32_t>(rng.below(j + 1));
    if (chosen.insert(candidate).second) {
      result.push_back(candidate);
    } else {
      chosen.insert(static_cast<std::uint32_t>(j));
      result.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return result;
}

}  // namespace tinge
