// Deterministic pseudo-random number generation.
//
// Everything stochastic in the pipeline — permutation-null sampling,
// synthetic network/expression generation, per-pair permutation tests —
// draws from Xoshiro256++ seeded explicitly, so every experiment in
// EXPERIMENTS.md is bit-reproducible. std::mt19937 is avoided because its
// 2.5 KB state is hostile to the per-thread generator arrays used by the
// parallel null-distribution builder.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace tinge {

/// SplitMix64: used only to expand a single user seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of operator(); used to split one seed into
  /// non-overlapping per-thread streams.
  void long_jump() {
    static constexpr std::uint64_t kJump[] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_ = {s0, s1, s2, s3};
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float uniformf() { return static_cast<float>((*this)() >> 40) * 0x1.0p-24f; }

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  std::uint64_t below(std::uint64_t bound) {
    TINGE_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached spare deviate).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * scale;
    has_spare_ = true;
    return u * scale;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(values[i - 1], values[j]);
  }
}

/// Returns {0, 1, ..., n-1} shuffled.
std::vector<std::uint32_t> random_permutation(std::size_t n, Xoshiro256& rng);

/// Samples k distinct indices from [0, n) (Floyd's algorithm).
std::vector<std::uint32_t> sample_without_replacement(std::size_t n, std::size_t k,
                                                      Xoshiro256& rng);

}  // namespace tinge
