// Descriptive statistics over expression profiles. Welford's algorithm is
// used throughout so single-pass summaries of long microarray rows stay
// numerically stable in float.
#pragma once

#include <cstddef>
#include <span>

namespace tinge {

struct Summary {
  std::size_t count = 0;      ///< finite values only
  std::size_t missing = 0;    ///< NaN entries
  double mean = 0.0;
  double variance = 0.0;      ///< unbiased (n-1) sample variance
  double min = 0.0;
  double max = 0.0;
};

/// Single-pass summary; NaNs are counted as missing and excluded.
Summary summarize(std::span<const float> values);

/// Sample mean ignoring NaNs. Returns NaN if no finite values.
double mean(std::span<const float> values);

/// Unbiased sample variance ignoring NaNs. Returns 0 for fewer than 2 values.
double variance(std::span<const float> values);

/// Pearson correlation coefficient of two equal-length profiles.
/// Pairs where either side is NaN are dropped. Returns 0 when degenerate
/// (fewer than 2 complete pairs, or zero variance on either side).
double pearson(std::span<const float> x, std::span<const float> y);

/// Sample covariance (complete pairs only).
double covariance(std::span<const float> x, std::span<const float> y);

}  // namespace tinge
