#include "stats/descriptive.h"

#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace tinge {

Summary summarize(std::span<const float> values) {
  Summary s;
  double m = 0.0, m2 = 0.0;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (const float vf : values) {
    if (std::isnan(vf)) {
      ++s.missing;
      continue;
    }
    const double v = vf;
    ++s.count;
    const double delta = v - m;
    m += delta / static_cast<double>(s.count);
    m2 += delta * (v - m);
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.mean = s.count > 0 ? m : std::nan("");
  s.variance = s.count > 1 ? m2 / static_cast<double>(s.count - 1) : 0.0;
  if (s.count == 0) {
    s.min = std::nan("");
    s.max = std::nan("");
  }
  return s;
}

double mean(std::span<const float> values) { return summarize(values).mean; }

double variance(std::span<const float> values) { return summarize(values).variance; }

namespace {
struct PairedMoments {
  std::size_t n = 0;
  double mean_x = 0.0, mean_y = 0.0;
  double cxx = 0.0, cyy = 0.0, cxy = 0.0;  // scaled co-moments
};

PairedMoments paired_moments(std::span<const float> x, std::span<const float> y) {
  TINGE_EXPECTS(x.size() == y.size());
  PairedMoments pm;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    ++pm.n;
    const double inv_n = 1.0 / static_cast<double>(pm.n);
    const double dx = x[i] - pm.mean_x;
    const double dy = y[i] - pm.mean_y;
    pm.mean_x += dx * inv_n;
    pm.mean_y += dy * inv_n;
    pm.cxx += dx * (x[i] - pm.mean_x);
    pm.cyy += dy * (y[i] - pm.mean_y);
    pm.cxy += dx * (y[i] - pm.mean_y);
  }
  return pm;
}
}  // namespace

double pearson(std::span<const float> x, std::span<const float> y) {
  const PairedMoments pm = paired_moments(x, y);
  if (pm.n < 2) return 0.0;
  const double denom = std::sqrt(pm.cxx * pm.cyy);
  if (denom <= 0.0) return 0.0;
  double r = pm.cxy / denom;
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;
  return r;
}

double covariance(std::span<const float> x, std::span<const float> y) {
  const PairedMoments pm = paired_moments(x, y);
  if (pm.n < 2) return 0.0;
  return pm.cxy / static_cast<double>(pm.n - 1);
}

}  // namespace tinge
