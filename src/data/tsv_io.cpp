#include "data/tsv_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/str.h"

namespace tinge {

ExpressionMatrix read_expression_tsv(std::istream& in) {
  std::string line;

  // Header: first non-comment, non-blank line.
  std::vector<std::string> sample_names;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = split_view(line, '\t');
    if (fields.size() < 2)
      throw IoError("TSV header needs a gene column plus at least one sample");
    for (std::size_t i = 1; i < fields.size(); ++i)
      sample_names.emplace_back(trim(fields[i]));
    break;
  }
  if (sample_names.empty()) throw IoError("TSV input has no header line");

  std::vector<std::string> gene_names;
  std::vector<float> values;  // row-major staging
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = split_view(line, '\t');
    if (fields.size() != sample_names.size() + 1)
      throw IoError(strprintf("line %zu: expected %zu columns, got %zu",
                              line_number, sample_names.size() + 1,
                              fields.size()));
    gene_names.emplace_back(trim(fields[0]));
    if (gene_names.back().empty())
      throw IoError(strprintf("line %zu: empty gene name", line_number));
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const auto value = parse_float(fields[i]);
      if (!value)
        throw IoError(strprintf("line %zu, column %zu: cannot parse '%.*s'",
                                line_number, i + 1,
                                static_cast<int>(fields[i].size()),
                                fields[i].data()));
      values.push_back(*value);
    }
  }

  const std::size_t n_genes = gene_names.size();
  const std::size_t n_samples = sample_names.size();
  ExpressionMatrix matrix(n_genes, n_samples, std::move(gene_names),
                          std::move(sample_names));
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    auto dst = matrix.row(g);
    const float* src = values.data() + g * matrix.n_samples();
    for (std::size_t s = 0; s < matrix.n_samples(); ++s) dst[s] = src[s];
  }
  return matrix;
}

ExpressionMatrix read_expression_tsv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_expression_tsv(in);
}

void write_expression_tsv(const ExpressionMatrix& matrix, std::ostream& out) {
  out << "gene";
  for (const auto& name : matrix.sample_names()) out << '\t' << name;
  out << '\n';
  std::ostringstream row_buffer;
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    row_buffer.str("");
    row_buffer << matrix.gene_name(g);
    for (const float v : matrix.row(g)) {
      if (std::isnan(v)) {
        row_buffer << "\tNA";
      } else {
        row_buffer << '\t' << strprintf("%.9g", static_cast<double>(v));
      }
    }
    row_buffer << '\n';
    out << row_buffer.str();
  }
}

void write_expression_tsv_file(const ExpressionMatrix& matrix,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_expression_tsv(matrix, out);
  if (!out) throw IoError("write to " + path + " failed");
}

}  // namespace tinge
