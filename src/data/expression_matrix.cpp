#include "data/expression_matrix.h"

#include <cmath>

#include "util/str.h"

namespace tinge {

namespace {
std::vector<std::string> default_names(const char* prefix, std::size_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    names.push_back(strprintf("%s%05zu", prefix, i));
  return names;
}

std::size_t padded_stride(std::size_t n_samples) {
  const std::size_t floats_per_line = kSimdAlignment / sizeof(float);
  return round_up(n_samples == 0 ? 1 : n_samples, floats_per_line);
}
}  // namespace

ExpressionMatrix::ExpressionMatrix(std::size_t n_genes, std::size_t n_samples)
    : ExpressionMatrix(n_genes, n_samples, default_names("g", n_genes),
                       default_names("s", n_samples)) {}

ExpressionMatrix::ExpressionMatrix(std::size_t n_genes, std::size_t n_samples,
                                   std::vector<std::string> gene_names,
                                   std::vector<std::string> sample_names)
    : n_genes_(n_genes),
      n_samples_(n_samples),
      stride_(padded_stride(n_samples)),
      values_(n_genes * stride_),
      gene_names_(std::move(gene_names)),
      sample_names_(std::move(sample_names)) {
  TINGE_EXPECTS(gene_names_.size() == n_genes_);
  TINGE_EXPECTS(sample_names_.size() == n_samples_);
}

ExpressionMatrix ExpressionMatrix::clone() const {
  ExpressionMatrix copy(n_genes_, n_samples_, gene_names_, sample_names_);
  for (std::size_t g = 0; g < n_genes_; ++g) {
    const auto src = row(g);
    auto dst = copy.row(g);
    for (std::size_t s = 0; s < n_samples_; ++s) dst[s] = src[s];
  }
  return copy;
}

std::size_t ExpressionMatrix::find_gene(const std::string& name) const {
  for (std::size_t g = 0; g < n_genes_; ++g)
    if (gene_names_[g] == name) return g;
  return npos;
}

std::size_t ExpressionMatrix::count_missing() const {
  std::size_t missing = 0;
  for (std::size_t g = 0; g < n_genes_; ++g)
    for (const float v : row(g))
      if (std::isnan(v)) ++missing;
  return missing;
}

ExpressionMatrix ExpressionMatrix::select_genes(
    const std::vector<std::size_t>& keep) const {
  std::vector<std::string> names;
  names.reserve(keep.size());
  for (const std::size_t g : keep) {
    TINGE_EXPECTS(g < n_genes_);
    names.push_back(gene_names_[g]);
  }
  ExpressionMatrix out(keep.size(), n_samples_, std::move(names), sample_names_);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const auto src = row(keep[i]);
    auto dst = out.row(i);
    for (std::size_t s = 0; s < n_samples_; ++s) dst[s] = src[s];
  }
  return out;
}

}  // namespace tinge
