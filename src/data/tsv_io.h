// TSV expression-matrix I/O in the layout TINGe and most microarray
// compendia use:
//
//   # optional comment lines
//   gene <tab> sample_1 <tab> sample_2 ... sample_m
//   AT1G01010 <tab> 7.31 <tab> NA <tab> 6.90 ...
//
// Empty cells, "NA", "NaN" load as missing values (quiet NaN).
#pragma once

#include <iosfwd>
#include <string>

#include "data/expression_matrix.h"

namespace tinge {

/// Thrown on malformed input (wrong column count, unparsable number, ...).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

ExpressionMatrix read_expression_tsv(std::istream& in);
ExpressionMatrix read_expression_tsv_file(const std::string& path);

void write_expression_tsv(const ExpressionMatrix& matrix, std::ostream& out);
void write_expression_tsv_file(const ExpressionMatrix& matrix,
                               const std::string& path);

}  // namespace tinge
