#include "data/series_matrix.h"

#include <cmath>
#include <fstream>

#include "data/tsv_io.h"  // IoError
#include "util/str.h"

namespace tinge {

namespace {
/// Strips one layer of double quotes if present.
std::string_view unquote(std::string_view field) {
  field = trim(field);
  if (field.size() >= 2 && field.front() == '"' && field.back() == '"')
    field = field.substr(1, field.size() - 2);
  return field;
}

bool is_missing(std::string_view field) {
  return field.empty() || field == "null" || field == "NULL" || field == "NA";
}
}  // namespace

SeriesMatrix read_series_matrix(std::istream& in) {
  SeriesMatrix result;
  std::string line;
  bool in_table = false;
  bool saw_table = false;
  bool table_closed = false;

  std::vector<std::string> sample_names;
  std::vector<std::string> gene_names;
  std::vector<float> values;
  std::size_t line_number = 0;

  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;

    if (trimmed.front() == '!') {
      const std::string_view directive = trimmed.substr(1);
      if (starts_with(directive, "series_matrix_table_begin")) {
        if (saw_table)
          throw IoError("multiple series_matrix tables are not supported");
        in_table = true;
        saw_table = true;
        continue;
      }
      if (starts_with(directive, "series_matrix_table_end")) {
        if (!in_table)
          throw IoError("series_matrix_table_end without a table begin");
        in_table = false;
        table_closed = true;
        continue;
      }
      // Metadata: "!Key<TAB>value[...]" — keep the first value per key.
      const std::size_t tab = directive.find('\t');
      if (tab != std::string_view::npos) {
        const std::string key{directive.substr(0, tab)};
        const auto fields = split_view(directive.substr(tab + 1), '\t');
        if (!fields.empty() && result.metadata.count(key) == 0)
          result.metadata.emplace(key, std::string(unquote(fields[0])));
      }
      continue;
    }

    if (!in_table) continue;  // free text outside the table

    const auto fields = split_view(line, '\t');
    if (sample_names.empty()) {
      // Header row: ID_REF + sample accessions.
      if (fields.size() < 2)
        throw IoError(strprintf("line %zu: series matrix header needs samples",
                                line_number));
      if (unquote(fields[0]) != "ID_REF")
        throw IoError(strprintf("line %zu: expected ID_REF header, got '%s'",
                                line_number,
                                std::string(unquote(fields[0])).c_str()));
      for (std::size_t i = 1; i < fields.size(); ++i)
        sample_names.emplace_back(unquote(fields[i]));
      continue;
    }
    if (fields.size() != sample_names.size() + 1)
      throw IoError(strprintf("line %zu: expected %zu columns, got %zu",
                              line_number, sample_names.size() + 1,
                              fields.size()));
    gene_names.emplace_back(unquote(fields[0]));
    if (gene_names.back().empty())
      throw IoError(strprintf("line %zu: empty probe id", line_number));
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::string_view cell = unquote(fields[i]);
      if (is_missing(cell)) {
        values.push_back(std::nanf(""));
        continue;
      }
      const auto value = parse_float(cell);
      if (!value)
        throw IoError(strprintf("line %zu, column %zu: cannot parse '%s'",
                                line_number, i + 1,
                                std::string(cell).c_str()));
      values.push_back(*value);
    }
  }

  if (!saw_table) throw IoError("no series_matrix_table_begin found");
  if (!table_closed) throw IoError("series matrix table is not terminated");
  if (gene_names.empty()) throw IoError("series matrix table has no rows");

  const std::size_t n_genes = gene_names.size();
  const std::size_t n_samples = sample_names.size();
  ExpressionMatrix matrix(n_genes, n_samples, std::move(gene_names),
                          std::move(sample_names));
  for (std::size_t g = 0; g < n_genes; ++g) {
    auto row = matrix.row(g);
    const float* src = values.data() + g * n_samples;
    for (std::size_t s = 0; s < n_samples; ++s) row[s] = src[s];
  }
  result.expression = std::move(matrix);
  return result;
}

SeriesMatrix read_series_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_series_matrix(in);
}

}  // namespace tinge
