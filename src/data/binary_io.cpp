#include "data/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace tinge {

namespace {
constexpr char kMagic[4] = {'T', 'N', 'G', 'X'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("truncated binary matrix (u32)");
  return v;
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("truncated binary matrix (u64)");
  return v;
}
void write_name(std::ostream& out, const std::string& name) {
  write_u32(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
}
std::string read_name(std::istream& in) {
  const std::uint32_t length = read_u32(in);
  if (length > (1u << 20)) throw IoError("implausible name length in binary matrix");
  std::string name(length, '\0');
  in.read(name.data(), length);
  if (!in) throw IoError("truncated binary matrix (name)");
  return name;
}
}  // namespace

void write_expression_binary_file(const ExpressionMatrix& matrix,
                                  const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u64(out, matrix.n_genes());
  write_u64(out, matrix.n_samples());
  for (const auto& name : matrix.gene_names()) write_name(out, name);
  for (const auto& name : matrix.sample_names()) write_name(out, name);
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    const auto values = matrix.row(g);
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(float)));
  }
  if (!out) throw IoError("write to " + path + " failed");
}

ExpressionMatrix read_expression_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw IoError(path + " is not a TNGX matrix");
  const std::uint32_t version = read_u32(in);
  if (version != kVersion)
    throw IoError("unsupported TNGX version " + std::to_string(version));
  const std::uint64_t n_genes = read_u64(in);
  const std::uint64_t n_samples = read_u64(in);
  std::vector<std::string> gene_names;
  gene_names.reserve(n_genes);
  for (std::uint64_t g = 0; g < n_genes; ++g) gene_names.push_back(read_name(in));
  std::vector<std::string> sample_names;
  sample_names.reserve(n_samples);
  for (std::uint64_t s = 0; s < n_samples; ++s)
    sample_names.push_back(read_name(in));

  ExpressionMatrix matrix(n_genes, n_samples, std::move(gene_names),
                          std::move(sample_names));
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    auto values = matrix.row(g);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
    if (!in) throw IoError("truncated binary matrix (values)");
  }
  return matrix;
}

}  // namespace tinge
