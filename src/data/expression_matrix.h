// The gene expression matrix: n genes x m experiments (microarrays).
//
// Layout matters: the MI kernels stream two gene rows at a time, so rows are
// stored contiguously with a 64-byte-aligned, SIMD-width-padded stride.
// Missing microarray spots are quiet NaNs until preprocessing imputes them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/contracts.h"

namespace tinge {

class ExpressionMatrix {
 public:
  ExpressionMatrix() = default;

  /// Zero-initialized n_genes x n_samples matrix with default names
  /// ("g0001".., "s0001"..).
  ExpressionMatrix(std::size_t n_genes, std::size_t n_samples);

  ExpressionMatrix(std::size_t n_genes, std::size_t n_samples,
                   std::vector<std::string> gene_names,
                   std::vector<std::string> sample_names);

  ExpressionMatrix(ExpressionMatrix&&) = default;
  ExpressionMatrix& operator=(ExpressionMatrix&&) = default;
  ExpressionMatrix(const ExpressionMatrix&) = delete;
  ExpressionMatrix& operator=(const ExpressionMatrix&) = delete;

  ExpressionMatrix clone() const;

  std::size_t n_genes() const { return n_genes_; }
  std::size_t n_samples() const { return n_samples_; }
  std::size_t stride() const { return stride_; }

  /// Expression profile of gene `g` (length n_samples).
  std::span<float> row(std::size_t g) {
    TINGE_EXPECTS(g < n_genes_);
    return {values_.data() + g * stride_, n_samples_};
  }
  std::span<const float> row(std::size_t g) const {
    TINGE_EXPECTS(g < n_genes_);
    return {values_.data() + g * stride_, n_samples_};
  }

  float& at(std::size_t g, std::size_t s) {
    TINGE_EXPECTS(g < n_genes_ && s < n_samples_);
    return values_.data()[g * stride_ + s];
  }
  float at(std::size_t g, std::size_t s) const {
    TINGE_EXPECTS(g < n_genes_ && s < n_samples_);
    return values_.data()[g * stride_ + s];
  }

  const std::vector<std::string>& gene_names() const { return gene_names_; }
  const std::vector<std::string>& sample_names() const { return sample_names_; }
  const std::string& gene_name(std::size_t g) const {
    TINGE_EXPECTS(g < n_genes_);
    return gene_names_[g];
  }

  /// Index of the named gene, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_gene(const std::string& name) const;

  /// Total missing (NaN) entries.
  std::size_t count_missing() const;

  /// New matrix containing only the genes in `keep` (order preserved).
  ExpressionMatrix select_genes(const std::vector<std::size_t>& keep) const;

 private:
  std::size_t n_genes_ = 0;
  std::size_t n_samples_ = 0;
  std::size_t stride_ = 0;  // floats per row, padded to the SIMD alignment
  AlignedBuffer<float> values_;
  std::vector<std::string> gene_names_;
  std::vector<std::string> sample_names_;
};

}  // namespace tinge
