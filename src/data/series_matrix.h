// GEO Series Matrix ingestion.
//
// Real microarray compendia (the Arabidopsis data the paper uses came from
// public repositories of this kind) ship as NCBI GEO "Series Matrix" files:
// a block of "!key<TAB>value" metadata lines surrounding one expression
// table:
//
//   !Series_title  "..."
//   ...
//   !series_matrix_table_begin
//   "ID_REF"  "GSM1"  "GSM2" ...
//   "AT1G01010"  7.31  6.90 ...
//   ...
//   !series_matrix_table_end
//
// This reader extracts the expression table (quoted or bare fields, null /
// empty cells as missing) plus the metadata keys, making public datasets a
// drop-in input for the pipeline.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "data/expression_matrix.h"

namespace tinge {

struct SeriesMatrix {
  ExpressionMatrix expression;
  /// First value of each metadata key (without the leading '!').
  std::map<std::string, std::string> metadata;
};

SeriesMatrix read_series_matrix(std::istream& in);
SeriesMatrix read_series_matrix_file(const std::string& path);

}  // namespace tinge
