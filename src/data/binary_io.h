// Binary expression-matrix format for large runs: loading a
// 15,575 x 3,137 float matrix from TSV costs more than some analyses.
//
// Layout (little-endian):
//   magic "TNGX" | u32 version | u64 n_genes | u64 n_samples
//   gene names   (u32 length + bytes, per gene)
//   sample names (u32 length + bytes, per sample)
//   raw float32 values, row-major, unpadded
#pragma once

#include <string>

#include "data/expression_matrix.h"
#include "data/tsv_io.h"  // IoError

namespace tinge {

void write_expression_binary_file(const ExpressionMatrix& matrix,
                                  const std::string& path);

ExpressionMatrix read_expression_binary_file(const std::string& path);

}  // namespace tinge
