// The TCP socket transport backend: ranks are real OS processes (or
// threads) on localhost, messages are length-prefixed frames over
// stream sockets, and wall-clock includes real kernel/network time.
//
// Rendezvous is file-based (no coordinator process): every rank binds an
// ephemeral 127.0.0.1 port and publishes it atomically as
// `<rendezvous_dir>/rank<r>.port`; rank r dials every lower rank (polling
// for the port file and retrying refused connections with exponential
// backoff, so late-starting workers join cleanly) and accepts from every
// higher rank. A per-endpoint receiver thread drains every connection into
// a (src, tag)-matched mailbox, which makes send() non-blocking in
// practice and recv() robust to interleaved tags — the same semantics the
// in-process backend has, test-enforced by the conformance suite.
//
// Barrier is message-based (gather-to-0 then release) using control frames
// in the reserved negative tag space; control traffic is excluded from the
// payload byte accounting so both backends report the same quantity.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/transport.h"

namespace tinge::cluster {

class TcpTransport final : public Transport {
 public:
  /// Binds, rendezvouses and connects the full peer mesh; throws
  /// std::runtime_error if the mesh is not up within
  /// options.connect_timeout_seconds.
  explicit TcpTransport(const TransportOptions& options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  int rank() const override { return rank_; }
  int size() const override { return size_; }
  TransportKind kind() const override { return TransportKind::Tcp; }

  /// Thread-safe per endpoint: concurrent sends to the same peer are
  /// serialized by a per-peer mutex so frames never interleave on the wire.
  void send(int dest, const void* data, std::size_t bytes, int tag) override;

  /// Blocks until a matching message arrives. Throws PeerFailureError if
  /// the peer's connection closes with no matching message queued (a died
  /// or finished peer must not deadlock the survivors) and TimeoutError
  /// once the options' default recv deadline expires.
  std::vector<std::byte> recv(int src, int tag) override;
  std::vector<std::byte> recv(int src, int tag,
                              double timeout_seconds) override;

  /// Non-blocking mailbox probe (see Transport::try_recv). Throws
  /// PeerFailureError when the peer's connection is closed with no
  /// matching message queued, mirroring recv.
  std::optional<std::vector<std::byte>> try_recv(int src, int tag) override;

  void barrier() override;

  std::vector<PeerTraffic> peer_traffic() const override;

 private:
  struct Message {
    int src = 0;
    int tag = 0;
    std::vector<std::byte> payload;
  };

  struct Peer {
    int fd = -1;
    bool open = false;
    PeerTraffic traffic;
    /// Serializes header+payload writes to this peer's socket: without it
    /// two concurrent senders interleave bytes mid-frame and corrupt the
    /// stream. Heap-held so Peer stays movable for the roster vector.
    std::unique_ptr<std::mutex> send_mutex;
  };

  void rendezvous(const TransportOptions& options);
  void send_frame(int dest, std::uint32_t frame_kind, int tag,
                  const void* data, std::size_t bytes);
  std::vector<std::byte> wait_for(int src, int tag, bool count,
                                  double timeout_seconds);
  void receiver_loop();
  void close_all();

  int rank_ = 0;
  int size_ = 1;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  double default_recv_timeout_ = 0.0;

  mutable std::mutex mailbox_mutex_;  // guards mailbox_, peers_[*].open/traffic
  std::condition_variable mailbox_cv_;
  std::deque<Message> mailbox_;
  std::vector<Peer> peers_;

  std::atomic<bool> stopping_{false};
  std::thread receiver_;
};

/// Cluster runtime over the TCP backend: N rank-threads in this process,
/// each with a real socket endpoint rendezvoused through a fresh temporary
/// directory (removed after the run). Real framing, real kernel path, one
/// process — what bench_cluster_baseline's tcp mode and the conformance
/// tests use; multi-process execution goes through launcher.h instead.
std::unique_ptr<Cluster> make_loopback_tcp_cluster(
    int size, const TransportOptions& options);

/// Writes "<port> <nonce>\n" to exactly `path`, verifying every stdio
/// call, and throws std::runtime_error carrying the real errno cause on
/// failure (a full disk must not silently publish an empty port file).
/// Exposed for the rendezvous code and its regression tests; the atomic
/// publish path writes to a temp name through this and then renames.
void write_port_file(const std::string& path, int port,
                     std::uint64_t nonce = 0);

/// Reads a published port file back. Returns the port, or -1 when the file
/// is missing/unreadable or when `expected_nonce` != 0 and the file's
/// stamped nonce differs — i.e. the file is debris from another run and
/// its port must not be dialed. expected_nonce == 0 accepts any file
/// (including pre-nonce files with no stamp).
int read_port_file(const std::string& path, std::uint64_t expected_nonce);

}  // namespace tinge::cluster
