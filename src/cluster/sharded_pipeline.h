// The full TINGe pipeline as one rank of a cluster: everything the
// single-process NetworkBuilder does, sharded over a Comm endpoint so it
// runs identically on in-process rank-threads and on real TCP worker
// processes.
//
// Stage plan (deterministic, so the result is byte-identical to the
// single-process engine for the same inputs — test-enforced):
//   * every rank loads the expression matrix and preprocesses locally
//     (impute -> filter -> rank transform is deterministic, so this costs
//     no communication and no reproducibility);
//   * rank 0 builds the shared B-spline weight table and broadcasts it
//     (receivers reconstruct via WeightTable's deserializing constructor);
//   * rank 0 draws the universal permutation null, derives I_alpha and
//     broadcasts the threshold (the null is deterministic for a seed
//     regardless of thread count, so computing it once is both cheaper and
//     exactly what the single-process pipeline produces);
//   * all ranks run the TINGe-classic ring MI sweep (ring_mi.h); rank 0
//     merges, optionally applies DPI, and gathers per-rank traffic.
#pragma once

#include <memory>
#include <string>

#include "cluster/ring_mi.h"
#include "core/config.h"
#include "core/dpi.h"
#include "core/null_distribution.h"
#include "core/run_manifest.h"
#include "data/expression_matrix.h"
#include "graph/network.h"

namespace tinge::cluster {

struct ShardedBuildResult {
  /// Merged, thresholded (and optionally DPI-filtered) network on rank 0;
  /// empty finalized network on other ranks.
  GeneNetwork network;
  /// The universal permutation null (rank 0 only).
  std::shared_ptr<const EmpiricalDistribution> null;
  double threshold = 0.0;
  double marginal_entropy = 0.0;
  std::size_t genes_in = 0;
  std::size_t genes_used = 0;
  std::size_t samples = 0;
  std::size_t imputed_cells = 0;
  std::size_t pairs_total = 0;  ///< rank 0 only
  DpiStats dpi_stats;
  /// Communication accounting for the whole sharded run (rank 0 only;
  /// other ranks carry just their own totals in bytes_per_rank[rank]).
  ClusterStats cluster;
  double seconds = 0.0;
};

/// Runs this rank's share of the pipeline. Collective: every rank of
/// `comm`'s cluster must call it with the same expression matrix and
/// config.
ShardedBuildResult sharded_build(Comm& comm,
                                 const ExpressionMatrix& expression,
                                 const TingeConfig& config);

/// Maps the cluster stats + pair counts into the core manifest section.
ClusterManifest to_cluster_manifest(const ClusterStats& stats);

/// Manifest document for a sharded run (mode "cluster"): config echo,
/// dataset and result sections as in the single-process manifest, plus the
/// "cluster" section with per-rank bytes and imbalance. Call on rank 0.
obs::Json make_cluster_run_manifest(const ShardedBuildResult& result,
                                    const TingeConfig& config);

/// make_cluster_run_manifest + obs::write_json_file.
void write_cluster_run_manifest(const ShardedBuildResult& result,
                                const TingeConfig& config,
                                const std::string& path);

}  // namespace tinge::cluster
