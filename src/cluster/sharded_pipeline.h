// The full TINGe pipeline as one rank of a cluster: everything the
// single-process NetworkBuilder does, sharded over a Comm endpoint so it
// runs identically on in-process rank-threads and on real TCP worker
// processes.
//
// Stage plan (deterministic, so the result is byte-identical to the
// single-process engine for the same inputs — test-enforced):
//   * every rank loads the expression matrix and preprocesses locally
//     (impute -> filter -> rank transform is deterministic, so this costs
//     no communication and no reproducibility);
//   * rank 0 builds the shared B-spline weight table and broadcasts it
//     (receivers reconstruct via WeightTable's deserializing constructor);
//   * rank 0 draws the universal permutation null, derives I_alpha and
//     broadcasts the threshold (the null is deterministic for a seed
//     regardless of thread count, so computing it once is both cheaper and
//     exactly what the single-process pipeline produces);
//   * all ranks run the MI sweep — the TINGe-classic ring (ring_mi.h) at
//     p > 1, the tiled multithreaded engine at p == 1; rank 0 merges,
//     optionally applies DPI, and gathers per-rank traffic.
//
// At one rank over the self-loop transport this IS the single-process
// pipeline: NetworkBuilder::run delegates here, grafting its trace, logger,
// pool and engine stats on via LocalPipelineHooks, so the two orchestrations
// are one code path.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/launcher.h"
#include "cluster/ring_mi.h"
#include "core/config.h"
#include "core/consensus.h"
#include "core/dpi.h"
#include "core/null_distribution.h"
#include "core/run_manifest.h"
#include "data/expression_matrix.h"
#include "graph/network.h"

namespace tinge {
struct EngineStats;
namespace obs {
class Trace;
}  // namespace obs
namespace par {
class ThreadPool;
}  // namespace par
}  // namespace tinge

namespace tinge::cluster {

struct ShardedBuildResult {
  /// Merged, thresholded (and optionally DPI-filtered) network on rank 0;
  /// empty finalized network on other ranks.
  GeneNetwork network;
  /// The universal permutation null (rank 0 only).
  std::shared_ptr<const EmpiricalDistribution> null;
  double threshold = 0.0;
  double marginal_entropy = 0.0;
  std::size_t genes_in = 0;
  std::size_t genes_used = 0;
  std::size_t samples = 0;
  std::size_t imputed_cells = 0;
  std::size_t pairs_total = 0;  ///< rank 0 only
  DpiStats dpi_stats;
  /// Consensus-mode accounting (zero unless config.consensus_resamples > 0,
  /// which implies the single-rank pipeline).
  ConsensusStats consensus;
  /// Communication accounting for the whole sharded run (rank 0 only;
  /// other ranks carry just their own totals in bytes_per_rank[rank]).
  ClusterStats cluster;
  double seconds = 0.0;
};

/// Optional grafts from a local caller. NetworkBuilder::run is a 1-rank
/// sharded_build over the self-loop transport; it threads its trace, pool,
/// engine stats and logger through here so the delegated build produces
/// exactly the spans, log lines and stats its own orchestration used to.
/// Everything may be left null/empty (the cluster CLI path does).
struct LocalPipelineHooks {
  /// Stage spans (preprocess(impute, filter, rank), weight_table, null,
  /// threshold, mi_sweep, dpi) are opened on this trace when non-null.
  obs::Trace* trace = nullptr;
  /// Thread pool for the null build and the p == 1 engine sweep; when null
  /// a pool is created lazily from config.threads / the host topology.
  par::ThreadPool* pool = nullptr;
  /// Filled by the p == 1 engine sweep when non-null (untouched at p > 1 —
  /// the ring ranks are single-threaded and report via ClusterStats).
  EngineStats* engine = nullptr;
  /// Stage announcement sink (NetworkBuilder's logger format).
  std::function<void(std::string_view)> log;
  /// Optional cancellation flag threaded into the ring MI sweep (p > 1):
  /// every rank polls it between tiles and throws SweepAborted on trip.
  /// How a worker that caught SIGTERM abandons a doomed multi-minute sweep
  /// instead of computing to the bitter end.
  const std::atomic<bool>* cancel = nullptr;
};

/// Runs this rank's share of the pipeline. Collective: every rank of
/// `comm`'s cluster must call it with the same expression matrix and
/// config. At comm.size() == 1 the MI sweep is the tiled multithreaded
/// engine (honoring config.checkpoint_path and config.team_size) rather
/// than the ring — this is the single-process pipeline.
ShardedBuildResult sharded_build(Comm& comm,
                                 const ExpressionMatrix& expression,
                                 const TingeConfig& config,
                                 const LocalPipelineHooks& hooks = {});

/// Move-in overload: preprocessing mutates the matrix in place instead of
/// cloning it (NetworkBuilder's rvalue build path).
ShardedBuildResult sharded_build(Comm& comm, ExpressionMatrix&& expression,
                                 const TingeConfig& config,
                                 const LocalPipelineHooks& hooks = {});

/// Maps the cluster stats + pair counts into the core manifest section.
ClusterManifest to_cluster_manifest(const ClusterStats& stats);

/// Manifest document for a sharded run (mode "cluster"): config echo,
/// dataset and result sections as in the single-process manifest, plus the
/// "cluster" section with per-rank bytes and imbalance. Call on rank 0.
obs::Json make_cluster_run_manifest(const ShardedBuildResult& result,
                                    const TingeConfig& config);

/// make_cluster_run_manifest + obs::write_json_file.
void write_cluster_run_manifest(const ShardedBuildResult& result,
                                const TingeConfig& config,
                                const std::string& path);

/// Manifest document for a *failed* cluster run (mode "cluster", status
/// "failed"): config echo plus a "failure" section naming the rank that
/// failed first, a human-readable cause per worker, and the resume command
/// line (empty string = no checkpoint to resume from). Written by the
/// launcher so a dead 22-minute run leaves an attributable record, not
/// just scrollback.
obs::Json make_cluster_failure_manifest(const TingeConfig& config,
                                        const std::vector<WorkerExit>& exits,
                                        const std::string& resume_command);

/// make_cluster_failure_manifest + obs::write_json_file.
void write_cluster_failure_manifest(const TingeConfig& config,
                                    const std::vector<WorkerExit>& exits,
                                    const std::string& resume_command,
                                    const std::string& path);

}  // namespace tinge::cluster
