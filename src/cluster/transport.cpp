#include "cluster/transport.h"

#include <deque>
#include <stdexcept>

#include "cluster/inproc_transport.h"
#include "cluster/tcp_transport.h"
#include "obs/metrics.h"
#include "util/str.h"

namespace tinge::cluster {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::InProcess: return "inproc";
    case TransportKind::Tcp: return "tcp";
  }
  return "unknown";
}

TransportKind parse_transport_kind(std::string_view name) {
  if (name == "inproc") return TransportKind::InProcess;
  if (name == "tcp") return TransportKind::Tcp;
  throw std::invalid_argument(
      strprintf("unknown transport '%.*s' (expected inproc|tcp)",
                static_cast<int>(name.size()), name.data()));
}

std::uint64_t Transport::bytes_sent() const {
  std::uint64_t total = 0;
  for (const PeerTraffic& peer : peer_traffic()) total += peer.bytes_sent;
  return total;
}

std::uint64_t Transport::bytes_received() const {
  std::uint64_t total = 0;
  for (const PeerTraffic& peer : peer_traffic()) total += peer.bytes_received;
  return total;
}

std::uint64_t Transport::messages_sent() const {
  std::uint64_t total = 0;
  for (const PeerTraffic& peer : peer_traffic()) total += peer.messages_sent;
  return total;
}

std::uint64_t Transport::messages_received() const {
  std::uint64_t total = 0;
  for (const PeerTraffic& peer : peer_traffic())
    total += peer.messages_received;
  return total;
}

void Transport::publish_metrics() const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::vector<PeerTraffic> peers = peer_traffic();
  PeerTraffic total;
  for (std::size_t peer = 0; peer < peers.size(); ++peer) {
    total += peers[peer];
    // Per-peer counters are only interesting when non-zero; skipping the
    // silent peers keeps the registry proportional to actual topology.
    if (peers[peer].messages_sent == 0 && peers[peer].messages_received == 0)
      continue;
    registry.counter(strprintf("cluster.transport.peer%zu.bytes_sent", peer))
        .add(peers[peer].bytes_sent);
    registry
        .counter(strprintf("cluster.transport.peer%zu.bytes_received", peer))
        .add(peers[peer].bytes_received);
  }
  registry.counter("cluster.transport.bytes_sent").add(total.bytes_sent);
  registry.counter("cluster.transport.bytes_received")
      .add(total.bytes_received);
  registry.counter("cluster.transport.messages_sent").add(total.messages_sent);
  registry.counter("cluster.transport.messages_received")
      .add(total.messages_received);
  registry.gauge("cluster.transport.rank").set(rank());
  registry.gauge("cluster.transport.ranks").set(size());
}

void publish_cluster_run_metrics(TransportKind kind, int ranks,
                                 std::uint64_t bytes, std::uint64_t messages,
                                 double seconds) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("cluster.runs").add(1);
  registry.counter("cluster.bytes_transferred").add(bytes);
  registry.counter("cluster.messages_sent").add(messages);
  registry.gauge("cluster.ranks").set(ranks);
  registry.histogram("cluster.run_seconds").record(seconds);
  registry
      .counter(strprintf("cluster.%s.runs", transport_kind_name(kind)))
      .add(1);
}

namespace {

/// The one-rank cluster: a self-loop mailbox. Lets a single worker process
/// run the same SPMD code path as a real cluster of size 1.
class LocalTransport final : public Transport {
 public:
  LocalTransport() = default;

  int rank() const override { return 0; }
  int size() const override { return 1; }
  TransportKind kind() const override { return TransportKind::InProcess; }

  void send(int dest, const void* data, std::size_t bytes, int tag) override {
    TINGE_EXPECTS(dest == 0);
    Message message;
    message.tag = tag;
    message.payload.resize(bytes);
    if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);
    mailbox_.push_back(std::move(message));
    traffic_.bytes_sent += bytes;
    ++traffic_.messages_sent;
  }

  std::vector<std::byte> recv(int src, int tag) override {
    TINGE_EXPECTS(src == 0);
    for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
      if (it->tag == tag) {
        std::vector<std::byte> payload = std::move(it->payload);
        mailbox_.erase(it);
        traffic_.bytes_received += payload.size();
        ++traffic_.messages_received;
        return payload;
      }
    }
    throw std::runtime_error(
        "LocalTransport::recv would deadlock: no queued self-message "
        "matches the requested tag");
  }

  /// A self-loop recv either matches immediately or never will, so the
  /// deadline is moot — delegate to the immediate-error path.
  std::vector<std::byte> recv(int src, int tag,
                              double /*timeout_seconds*/) override {
    return recv(src, tag);
  }

  std::optional<std::vector<std::byte>> try_recv(int src, int tag) override {
    TINGE_EXPECTS(src == 0);
    for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
      if (it->tag == tag) {
        std::vector<std::byte> payload = std::move(it->payload);
        mailbox_.erase(it);
        traffic_.bytes_received += payload.size();
        ++traffic_.messages_received;
        return payload;
      }
    }
    return std::nullopt;
  }

  void barrier() override {}

  std::vector<PeerTraffic> peer_traffic() const override {
    return {traffic_};
  }

 private:
  struct Message {
    int tag = 0;
    std::vector<std::byte> payload;
  };
  std::deque<Message> mailbox_;
  PeerTraffic traffic_;
};

}  // namespace

std::unique_ptr<Cluster> make_cluster(TransportKind kind, int size,
                                      const TransportOptions& options) {
  TINGE_EXPECTS(size >= 1);
  switch (kind) {
    case TransportKind::InProcess:
      return std::make_unique<InProcessCluster>(size, options);
    case TransportKind::Tcp:
      return make_loopback_tcp_cluster(size, options);
  }
  throw std::invalid_argument("make_cluster: unknown transport kind");
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const TransportOptions& options) {
  TINGE_EXPECTS(options.size >= 1);
  TINGE_EXPECTS(options.rank >= 0 && options.rank < options.size);
  switch (kind) {
    case TransportKind::InProcess:
      if (options.size != 1)
        throw std::invalid_argument(
            "make_transport(inproc) joins a single-rank cluster only; use "
            "make_cluster(TransportKind::InProcess, n) for n rank-threads");
      return std::make_unique<LocalTransport>();
    case TransportKind::Tcp:
      return std::make_unique<TcpTransport>(options);
  }
  throw std::invalid_argument("make_transport: unknown transport kind");
}

}  // namespace tinge::cluster
