// Elastic distributed all-pairs MI: rank-0 tile leases with work stealing.
//
// The TINGe-classic ring (ring_mi.h) assigns block pairs statically, so the
// slowest rank gates every sweep and a checkpoint binds to the world size
// that wrote it. The lease protocol fixes both at once by changing what is
// distributed: not gene blocks, but tiles of the *global* single-process
// sweep plan (SweepPlan::triangular(0, n, tile_size) — the exact tile index
// space the engine's checkpoint journal uses).
//
//   * Every rank holds the full ranked matrix (it is loaded and ranked
//     locally anyway), so any rank can compute any tile.
//   * Rank 0 owns a LeaseLedger over the plan. Workers request a lease
//     when their local queue drains; rank 0 grants a batch from the ready
//     queue in LPT order (largest pair_count first — the hot diagonal
//     tiles go out early so no rank is left holding a big tile at the
//     end), computes tiles itself between polls, and reclaims the leases
//     of any rank that dies (PeerFailureError on its probe), re-queueing
//     them at the front of the ready queue.
//   * Completed tiles come back as (tile, busy_us, edges) messages; rank 0
//     merges, journals (config.checkpoint_path), and accounts per-rank
//     pairs and busy seconds.
//
// Because the tile index space is the single-process engine's, the journal
// is partition-independent: a checkpoint written by a 4-rank lease run (or
// by the p == 1 engine) seeds the ledger of a 2- or 8-rank resume, and the
// merged network is byte-identical to the single-process one in all cases
// (GeneNetwork::finalize sorts, so assignment order cannot show).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/transport.h"
#include "core/config.h"
#include "core/pair_statistic.h"
#include "core/sweep.h"
#include "graph/network.h"
#include "preprocess/rank_transform.h"

namespace tinge::cluster {

// Lease protocol tags, above the ring (1..p, 10000/10001) and the sharded
// collectives (20000..20004).
constexpr int kTagLeaseRequest = 30000;  ///< worker -> 0, empty payload
constexpr int kTagLeaseGrant = 30001;    ///< 0 -> worker, u64 tile indices
constexpr int kTagTileDone = 30002;      ///< worker -> 0, packed TileDone

/// Rank 0's global tile ledger: which plan tiles are ready, leased (and to
/// whom), or done. Single-threaded — the master loop is the only caller —
/// and transport-free, so the property test can model-check it over
/// arbitrary request/grant/reclaim interleavings in isolation.
///
/// Invariants (TINGE-enforced and test-enforced):
///   * every tile is granted to at most one holder at a time;
///   * a tile leaves the ledger only through complete();
///   * leases_granted == tiles_completed + tiles_reclaimed + outstanding
///     at every point, so when the ledger is done and nothing is
///     outstanding, granted = completed + reclaimed (work conservation).
class LeaseLedger {
 public:
  /// `resumed`, when non-null, flags plan tiles already journaled by a
  /// previous attempt (one char per plan tile, as in ResumeState::done);
  /// they start Done and are never granted. Ready tiles are ordered LPT:
  /// descending pair_count, ties by ascending tile index.
  explicit LeaseLedger(const SweepPlan& plan,
                       const std::vector<char>* resumed = nullptr);

  /// Leases up to `max_tiles` ready tiles to `rank`, in ready order.
  /// Returns the granted tile indices (empty when the ready queue is dry).
  std::vector<std::uint64_t> grant(int rank, std::size_t max_tiles);

  /// Marks a leased tile complete. The tile must be leased to `rank`.
  void complete(int rank, std::uint64_t tile);

  /// Revokes every lease held by `rank` (it died or timed out): the tiles
  /// return to the *front* of the ready queue — someone idled waiting on
  /// them — in ascending index order. Returns the reclaimed indices.
  std::vector<std::uint64_t> reclaim(int rank);

  /// No ready tiles left to grant (outstanding leases may remain).
  bool drained() const { return ready_.empty(); }
  /// Every plan tile is done (completed now or resumed from the journal).
  bool done() const { return completed_ + resumed_ == slots_.size(); }
  /// Tiles currently out on lease.
  std::size_t outstanding() const { return outstanding_; }
  /// Lowest rank currently holding a lease, or -1 when none is out.
  int lowest_holder() const;

  std::size_t tiles_total() const { return slots_.size(); }
  std::size_t tiles_resumed() const { return resumed_; }
  std::size_t tiles_completed() const { return completed_; }
  std::size_t tiles_reclaimed() const { return reclaimed_; }
  /// Tile-grants issued, re-grants of reclaimed tiles included.
  std::size_t leases_granted() const { return granted_; }

 private:
  enum class State : char { Ready, Leased, Done };
  struct Slot {
    State state = State::Ready;
    int holder = -1;
  };

  std::deque<std::uint64_t> ready_;
  std::vector<Slot> slots_;
  std::size_t resumed_ = 0;
  std::size_t completed_ = 0;
  std::size_t reclaimed_ = 0;
  std::size_t granted_ = 0;
  std::size_t outstanding_ = 0;
};

/// What the lease sweep reports to the pipeline (rank 0 only; workers get
/// a default-constructed report).
struct LeaseSweepReport {
  std::vector<std::size_t> pairs_per_rank;
  /// Wall seconds each rank spent inside tile compute (straggle sleeps
  /// included — that is the point: the straggler's tiles cost more).
  std::vector<double> busy_seconds_per_rank;
  std::size_t leases_granted = 0;
  /// Tiles computed by a rank other than the static ring rule's owner —
  /// the work the protocol actually moved.
  std::size_t steals = 0;
  std::size_t tiles_reclaimed = 0;
  std::size_t tiles_total = 0;
  std::size_t tiles_resumed = 0;
  std::size_t pairs_resumed = 0;
  /// Ranks whose leases were reclaimed (died or timed out mid-sweep).
  std::vector<int> dead_ranks;
};

/// One rank's share of the lease-balanced distributed sweep. Collective
/// over `comm`; every rank passes the same inputs. Returns the merged,
/// finalized network on rank 0 (byte-identical to the single-process
/// engine) and an empty finalized network elsewhere.
///
/// Rank 0 honors config.checkpoint_path: completed tiles are journaled
/// with the engine's world-size-free RunSignature, an existing matching
/// journal seeds the ledger (resume on ANY world size), and the journal is
/// removed on success. `cancel` is polled between tiles on every rank.
GeneNetwork lease_sweep(Comm& comm, const PairStatistic& statistic,
                        const RankedMatrix& ranked, double threshold,
                        const TingeConfig& config,
                        LeaseSweepReport* report = nullptr,
                        const std::atomic<bool>* cancel = nullptr);

}  // namespace tinge::cluster
