// The framed stream protocol shared by every socket endpoint in the
// system: the rank-to-rank TCP transport (tcp_transport.h) and the serve
// daemon's client connections (serve_server.h) speak the same wire format,
// so the framing — header layout, full-write/full-read loops and the
// SIGPIPE discipline — lives here exactly once.
//
// A frame is a fixed 24-byte header followed by `bytes` payload bytes:
//
//   u32 magic "TNGX" | u32 kind | i32 tag | u32 reserved | u64 bytes
//
// Writes use MSG_NOSIGNAL so a peer that disconnected mid-conversation
// surfaces as a SocketError (errno EPIPE/ECONNRESET) instead of a SIGPIPE
// killing the whole process — the transport maps that onto its
// PeerFailureError taxonomy, the serve daemon onto a dropped client.
// ignore_sigpipe() additionally masks the signal process-wide once, as a
// belt-and-braces guard for platforms or code paths without MSG_NOSIGNAL.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace tinge::cluster {

inline constexpr std::uint32_t kFrameMagic = 0x544E4758;  // "TNGX"

// Frame kinds. 0..15 are reserved for the rank mesh; the serve protocol
// uses 16+ (separate connections, but disjoint numbering keeps a stray
// cross-dial diagnosable).
inline constexpr std::uint32_t kFrameData = 0;
inline constexpr std::uint32_t kFrameBarrierArrive = 1;
inline constexpr std::uint32_t kFrameBarrierRelease = 2;
inline constexpr std::uint32_t kFrameHello = 3;
inline constexpr std::uint32_t kFrameServeRequest = 16;
inline constexpr std::uint32_t kFrameServeResponse = 17;
inline constexpr std::uint32_t kFrameServeEvent = 18;

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t kind = kFrameData;
  std::int32_t tag = 0;
  std::uint32_t reserved = 0;
  std::uint64_t bytes = 0;
};
static_assert(sizeof(FrameHeader) == 24);
static_assert(std::is_trivially_copyable_v<FrameHeader>);

/// A socket write failed. Carries the errno so callers can distinguish a
/// vanished peer (peer_gone(): EPIPE, ECONNRESET — the expected way a
/// client or rank disappears) from a genuinely broken socket.
class SocketError : public std::runtime_error {
 public:
  SocketError(const std::string& what, int errno_value);

  int code() const { return errno_; }
  bool peer_gone() const;

 private:
  int errno_;
};

/// Ignores SIGPIPE process-wide, exactly once. Every socket endpoint calls
/// this at construction: MSG_NOSIGNAL already covers send(), but a signal
/// must never depend on every future call site remembering the flag.
void ignore_sigpipe();

/// Writes exactly `bytes`, retrying EINTR. Throws SocketError on failure
/// (MSG_NOSIGNAL: a disconnected peer is EPIPE, not a process kill).
void write_full(int fd, const void* data, std::size_t bytes);

/// Reads exactly `bytes`; false on EOF or error (a torn frame counts as a
/// closed connection — the peer is gone mid-message).
bool read_full(int fd, void* data, std::size_t bytes);

/// Writes one whole frame (header + optional payload). The caller owns any
/// per-connection serialization (concurrent writers to one fd must hold
/// the same lock or frames interleave mid-stream).
void write_frame(int fd, std::uint32_t kind, std::int32_t tag,
                 const void* payload, std::size_t bytes);

/// Reads one whole frame into header/payload. Returns false on EOF, a torn
/// frame, a bad magic, or a payload above `max_payload_bytes` (a garbage
/// header must not allocate gigabytes) — all of which mean "stop talking
/// to this connection".
bool read_frame(int fd, FrameHeader& header, std::vector<std::byte>& payload,
                std::size_t max_payload_bytes = std::size_t(1) << 32);

}  // namespace tinge::cluster
