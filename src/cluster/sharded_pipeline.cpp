#include "cluster/sharded_pipeline.h"

#include <cstdint>
#include <utility>

#include "obs/manifest.h"
#include "parallel/thread_pool.h"
#include "preprocess/filter.h"
#include "preprocess/rank_transform.h"
#include "util/timer.h"

namespace tinge::cluster {

namespace {

// Collective tags, far above the ring sweep's range (ring uses 1..p and
// 10000/10001).
constexpr int kTagTableMeta = 20000;
constexpr int kTagTableWeights = 20001;
constexpr int kTagTableFirstBin = 20002;
constexpr int kTagThreshold = 20003;
constexpr int kTagTraffic = 20004;

struct TableMeta {
  std::uint64_t m = 0;
  std::int32_t bins = 0;
  std::int32_t order = 0;
  std::uint64_t weight_stride = 0;
  double marginal_entropy = 0.0;
};
static_assert(std::is_trivially_copyable_v<TableMeta>);

struct TrafficReport {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
};
static_assert(std::is_trivially_copyable_v<TrafficReport>);

/// Rank 0 builds the weight table; everyone else receives it. Keeps every
/// rank's estimator bit-identical without re-deriving the basis per rank.
BsplineMi broadcast_estimator(Comm& comm, const RankedMatrix& ranked,
                              const TingeConfig& config) {
  const int p = comm.size();
  if (comm.rank() == 0) {
    BsplineMi estimator(config.bins, config.spline_order, ranked.n_samples());
    const WeightTable& table = estimator.table();
    TableMeta meta;
    meta.m = table.n_samples();
    meta.bins = table.bins();
    meta.order = table.order();
    meta.weight_stride = table.weight_stride();
    meta.marginal_entropy = table.marginal_entropy();
    const std::vector<float> weights(
        table.weights_data(),
        table.weights_data() + meta.m * meta.weight_stride);
    const std::vector<std::int32_t> first_bin(
        table.first_bin_data(), table.first_bin_data() + meta.m);
    for (int dest = 1; dest < p; ++dest) {
      comm.send_vector(dest, std::vector<TableMeta>{meta}, kTagTableMeta);
      comm.send_vector(dest, weights, kTagTableWeights);
      comm.send_vector(dest, first_bin, kTagTableFirstBin);
    }
    return estimator;
  }
  const TableMeta meta =
      comm.recv_vector<TableMeta>(0, kTagTableMeta).at(0);
  const std::vector<float> weights =
      comm.recv_vector<float>(0, kTagTableWeights);
  const std::vector<std::int32_t> first_bin =
      comm.recv_vector<std::int32_t>(0, kTagTableFirstBin);
  WeightTable table(static_cast<std::size_t>(meta.m), meta.bins, meta.order,
                    static_cast<std::size_t>(meta.weight_stride), weights,
                    first_bin, meta.marginal_entropy);
  return BsplineMi(std::move(table));
}

}  // namespace

ShardedBuildResult sharded_build(Comm& comm,
                                 const ExpressionMatrix& expression,
                                 const TingeConfig& config) {
  config.validate();
  const Stopwatch watch;
  const int r = comm.rank();
  const int p = comm.size();

  ShardedBuildResult result;
  result.genes_in = expression.n_genes();

  // Stage 1: rank-local preprocessing (deterministic on every rank).
  ExpressionMatrix working = expression.clone();
  result.imputed_cells = impute_missing_with_median(working);
  FilterResult filtered = filter_genes(working, config.filter);
  TINGE_EXPECTS(filtered.matrix.n_genes() >= 2);
  result.genes_used = filtered.matrix.n_genes();
  working = std::move(filtered.matrix);
  const RankedMatrix ranked(working);
  result.samples = ranked.n_samples();

  // Stage 2: shared weight table, built once and broadcast.
  const BsplineMi estimator = broadcast_estimator(comm, ranked, config);
  result.marginal_entropy = estimator.marginal_entropy();

  // Stage 3: universal permutation null on rank 0, threshold broadcast.
  // build_null_distribution is deterministic for a seed regardless of
  // thread count, so one rank computing it reproduces the single-process
  // pipeline exactly.
  if (r == 0) {
    const int pool_threads =
        config.threads > 0 ? config.threads
                           : par::detect_host_topology().total_threads();
    par::ThreadPool pool(pool_threads);
    result.null = std::make_shared<EmpiricalDistribution>(
        build_null_distribution(estimator, config.permutations, config.seed,
                                pool, config.threads, config.kernel));
    result.threshold = threshold_for_alpha(*result.null, config.alpha);
    for (int dest = 1; dest < p; ++dest)
      comm.send_vector(dest, std::vector<double>{result.threshold},
                       kTagThreshold);
  } else {
    result.threshold = comm.recv_vector<double>(0, kTagThreshold).at(0);
  }

  // Stage 4: the distributed ring MI sweep.
  std::vector<std::size_t> pairs_per_rank;
  result.network =
      ring_sweep(comm, estimator, ranked, result.threshold, config,
                 &pairs_per_rank);

  // Stage 5: DPI on the merged network (rank 0 only).
  if (r == 0 && config.apply_dpi)
    result.network =
        apply_dpi(result.network, config.dpi_tolerance, &result.dpi_stats);

  // Traffic gather: snapshot local totals first so the gather itself is
  // not part of the reported algorithm traffic.
  TrafficReport own;
  own.bytes_sent = comm.transport().bytes_sent();
  own.messages_sent = comm.transport().messages_sent();
  result.cluster.ranks = p;
  result.cluster.transport = transport_kind_name(comm.transport().kind());
  result.cluster.bytes_per_rank.assign(static_cast<std::size_t>(p), 0);
  result.cluster.bytes_per_rank[static_cast<std::size_t>(r)] = own.bytes_sent;
  if (r == 0) {
    result.cluster.bytes_transferred = own.bytes_sent;
    result.cluster.messages = own.messages_sent;
    for (int src = 1; src < p; ++src) {
      const TrafficReport peer =
          comm.recv_vector<TrafficReport>(src, kTagTraffic).at(0);
      result.cluster.bytes_per_rank[static_cast<std::size_t>(src)] =
          peer.bytes_sent;
      result.cluster.bytes_transferred += peer.bytes_sent;
      result.cluster.messages += peer.messages_sent;
    }
    result.cluster.pairs_per_rank = pairs_per_rank;
    for (const std::size_t count : pairs_per_rank)
      result.pairs_total += count;
    result.cluster.pairs_total = result.pairs_total;
  } else {
    comm.send_vector(0, std::vector<TrafficReport>{own}, kTagTraffic);
  }

  // Everyone leaves together (a finished rank closing its endpoint early
  // would look like a failure to peers still mid-recv on TCP).
  comm.barrier();
  comm.transport().publish_metrics();
  result.seconds = watch.seconds();
  result.cluster.seconds = result.seconds;
  return result;
}

ClusterManifest to_cluster_manifest(const ClusterStats& stats) {
  ClusterManifest manifest;
  manifest.transport = stats.transport;
  manifest.ranks = stats.ranks;
  manifest.bytes_transferred = stats.bytes_transferred;
  manifest.messages = stats.messages;
  manifest.bytes_per_rank = stats.bytes_per_rank;
  manifest.pairs_per_rank.reserve(stats.pairs_per_rank.size());
  for (const std::size_t pairs : stats.pairs_per_rank)
    manifest.pairs_per_rank.push_back(static_cast<std::uint64_t>(pairs));
  manifest.imbalance = stats.imbalance();
  manifest.seconds = stats.seconds;
  return manifest;
}

obs::Json make_cluster_run_manifest(const ShardedBuildResult& result,
                                    const TingeConfig& config) {
  obs::Json manifest = obs::Json::object();
  manifest["schema_version"] = obs::Json(kManifestSchemaVersion);
  manifest["tool"] = obs::Json(std::string("tingex"));
  manifest["mode"] = obs::Json(std::string("cluster"));
  manifest["config"] = config_to_json(config);

  obs::Json dataset = obs::Json::object();
  dataset["genes_in"] = obs::Json(result.genes_in);
  dataset["genes_used"] = obs::Json(result.genes_used);
  dataset["samples"] = obs::Json(result.samples);
  dataset["imputed_cells"] = obs::Json(result.imputed_cells);
  manifest["dataset"] = std::move(dataset);

  obs::Json run_result = obs::Json::object();
  run_result["edges"] = obs::Json(result.network.n_edges());
  run_result["threshold"] = obs::Json(result.threshold);
  run_result["marginal_entropy"] = obs::Json(result.marginal_entropy);
  run_result["pairs_computed"] = obs::Json(result.pairs_total);
  if (result.dpi_stats.triangles_examined > 0 ||
      result.dpi_stats.edges_removed > 0) {
    run_result["dpi_triangles_examined"] =
        obs::Json(result.dpi_stats.triangles_examined);
    run_result["dpi_edges_removed"] =
        obs::Json(result.dpi_stats.edges_removed);
  }
  manifest["result"] = std::move(run_result);

  manifest["cluster"] = cluster_to_json(to_cluster_manifest(result.cluster));
  return manifest;
}

void write_cluster_run_manifest(const ShardedBuildResult& result,
                                const TingeConfig& config,
                                const std::string& path) {
  obs::write_json_file(make_cluster_run_manifest(result, config), path);
}

}  // namespace tinge::cluster
