#include "cluster/sharded_pipeline.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "cluster/lease_mi.h"
#include "core/mi_engine.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "preprocess/filter.h"
#include "preprocess/rank_transform.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge::cluster {

namespace {

// A stage span that exists only when a local caller grafted a trace on;
// the cluster CLI path runs span-free.
class OptionalSpan {
 public:
  OptionalSpan(obs::Trace* trace, const char* name) {
    if (trace != nullptr) span_.emplace(*trace, name);
  }

 private:
  std::optional<obs::TraceSpan> span_;
};

// Collective tags, far above the ring sweep's range (ring uses 1..p and
// 10000/10001).
constexpr int kTagTableMeta = 20000;
constexpr int kTagTableWeights = 20001;
constexpr int kTagTableFirstBin = 20002;
constexpr int kTagThreshold = 20003;
constexpr int kTagTraffic = 20004;

struct TableMeta {
  std::uint64_t m = 0;
  std::int32_t bins = 0;
  std::int32_t order = 0;
  std::uint64_t weight_stride = 0;
  double marginal_entropy = 0.0;
};
static_assert(std::is_trivially_copyable_v<TableMeta>);

struct TrafficReport {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
};
static_assert(std::is_trivially_copyable_v<TrafficReport>);

/// Rank 0 builds the weight table; everyone else receives it. Keeps every
/// rank's estimator bit-identical without re-deriving the basis per rank.
BsplineMi broadcast_estimator(Comm& comm, const RankedMatrix& ranked,
                              const TingeConfig& config) {
  const int p = comm.size();
  if (comm.rank() == 0) {
    BsplineMi estimator(config.bins, config.spline_order, ranked.n_samples());
    const WeightTable& table = estimator.table();
    TableMeta meta;
    meta.m = table.n_samples();
    meta.bins = table.bins();
    meta.order = table.order();
    meta.weight_stride = table.weight_stride();
    meta.marginal_entropy = table.marginal_entropy();
    const std::vector<float> weights(
        table.weights_data(),
        table.weights_data() + meta.m * meta.weight_stride);
    const std::vector<std::int32_t> first_bin(
        table.first_bin_data(), table.first_bin_data() + meta.m);
    for (int dest = 1; dest < p; ++dest) {
      comm.send_vector(dest, std::vector<TableMeta>{meta}, kTagTableMeta);
      comm.send_vector(dest, weights, kTagTableWeights);
      comm.send_vector(dest, first_bin, kTagTableFirstBin);
    }
    return estimator;
  }
  const TableMeta meta =
      comm.recv_vector<TableMeta>(0, kTagTableMeta).at(0);
  const std::vector<float> weights =
      comm.recv_vector<float>(0, kTagTableWeights);
  const std::vector<std::int32_t> first_bin =
      comm.recv_vector<std::int32_t>(0, kTagTableFirstBin);
  WeightTable table(static_cast<std::size_t>(meta.m), meta.bins, meta.order,
                    static_cast<std::size_t>(meta.weight_stride), weights,
                    first_bin, meta.marginal_entropy);
  return BsplineMi(std::move(table));
}

}  // namespace

ShardedBuildResult sharded_build(Comm& comm,
                                 const ExpressionMatrix& expression,
                                 const TingeConfig& config,
                                 const LocalPipelineHooks& hooks) {
  return sharded_build(comm, expression.clone(), config, hooks);
}

ShardedBuildResult sharded_build(Comm& comm, ExpressionMatrix&& expression,
                                 const TingeConfig& config,
                                 const LocalPipelineHooks& hooks) {
  config.validate();
  const Stopwatch watch;
  const int r = comm.rank();
  const int p = comm.size();

  ShardedBuildResult result;
  result.genes_in = expression.n_genes();

  // The null build and the p == 1 engine sweep share one pool: the
  // caller's when grafted, otherwise one created on first use.
  std::unique_ptr<par::ThreadPool> owned_pool;
  const auto ensure_pool = [&]() -> par::ThreadPool& {
    if (hooks.pool != nullptr) return *hooks.pool;
    if (!owned_pool) {
      const int pool_threads =
          config.threads > 0 ? config.threads
                             : par::detect_host_topology().total_threads();
      owned_pool = std::make_unique<par::ThreadPool>(pool_threads);
    }
    return *owned_pool;
  };

  // Stage 1: rank-local preprocessing (deterministic on every rank).
  ExpressionMatrix working = std::move(expression);
  RankedMatrix ranked;
  {
    const OptionalSpan span(hooks.trace, "preprocess");
    std::size_t dropped_low_variance = 0, dropped_missing = 0;
    {
      const OptionalSpan impute_span(hooks.trace, "impute");
      result.imputed_cells = impute_missing_with_median(working);
    }
    {
      const OptionalSpan filter_span(hooks.trace, "filter");
      FilterResult filtered = filter_genes(working, config.filter);
      result.genes_used = filtered.matrix.n_genes();
      dropped_low_variance = filtered.dropped_low_variance;
      dropped_missing = filtered.dropped_missing;
      TINGE_EXPECTS(filtered.matrix.n_genes() >= 2);
      working = std::move(filtered.matrix);
    }
    {
      const OptionalSpan rank_span(hooks.trace, "rank");
      ranked = RankedMatrix(working);
    }
    result.samples = ranked.n_samples();
    if (hooks.log)
      hooks.log(strprintf("preprocess: %zu/%zu genes kept (%zu low-variance, "
                          "%zu missing dropped), %zu cells imputed",
                          result.genes_used, result.genes_in,
                          dropped_low_variance, dropped_missing,
                          result.imputed_cells));
  }

  // Stage 2: the pair statistic. B-spline keeps the shared weight table,
  // built once on rank 0 and broadcast (bit-identical ranks without
  // re-deriving the basis); every other estimator is derived locally per
  // rank from the (deterministic) preprocessed data, so nothing crosses
  // the wire.
  const std::unique_ptr<PairStatistic> statistic = [&] {
    const OptionalSpan span(hooks.trace, "weight_table");
    if (config.estimator == EstimatorKind::Bspline)
      return std::unique_ptr<PairStatistic>(std::make_unique<BsplineStat>(
          broadcast_estimator(comm, ranked, config), config.kernel));
    return make_pair_statistic(config, ranked, &working);
  }();
  result.marginal_entropy = statistic->marginal_entropy();
  if (hooks.log) {
    if (config.estimator == EstimatorKind::Bspline)
      hooks.log(strprintf("weight table: b=%d k=%d m=%zu, H_marginal=%.4f "
                          "nats",
                          config.bins, config.spline_order,
                          ranked.n_samples(), result.marginal_entropy));
    else
      hooks.log(strprintf("estimator: %s, m=%zu", statistic->name(),
                          ranked.n_samples()));
  }

  // Stage 3: universal permutation null on rank 0, threshold broadcast.
  // build_null_distribution is deterministic for a seed regardless of
  // thread count, so one rank computing it reproduces the single-process
  // pipeline exactly.
  if (r == 0) {
    {
      const OptionalSpan span(hooks.trace, "null");
      result.null = std::make_shared<EmpiricalDistribution>(
          build_null_distribution(*statistic, config.permutations,
                                  config.seed, ensure_pool(),
                                  config.threads));
    }
    {
      const OptionalSpan span(hooks.trace, "threshold");
      result.threshold = threshold_for_alpha(*result.null, config.alpha);
      obs::MetricsRegistry::global().gauge("null.threshold")
          .set(result.threshold);
      if (hooks.log)
        hooks.log(strprintf("null: q=%zu draws, I_alpha(%.2e)=%.5f nats",
                            config.permutations, config.alpha,
                            result.threshold));
    }
    for (int dest = 1; dest < p; ++dest)
      comm.send_vector(dest, std::vector<double>{result.threshold},
                       kTagThreshold);
  } else {
    result.threshold = comm.recv_vector<double>(0, kTagThreshold).at(0);
  }

  // Stage 4: the all-pairs MI sweep. A single-rank cluster IS the
  // single-process pipeline, so it runs the tiled multithreaded engine
  // (checkpointing and teamed scheduling included); p > 1 runs the sweep
  // config.cluster_balance selects — the TINGe-classic static ring, or the
  // elastic rank-0 tile-lease protocol (lease_mi.h), one single-threaded
  // sweep per rank either way.
  const bool lease = p > 1 && config.cluster_balance == "lease";
  std::vector<std::size_t> pairs_per_rank;
  std::vector<double> busy_per_rank;
  LeaseSweepReport lease_report;
  {
    const OptionalSpan span(hooks.trace, "mi_sweep");
    if (p == 1 && config.consensus_resamples > 0) {
      // Consensus mode: B bootstrap resamples x the selected estimators,
      // every member sweep through the same engine. The stage-3 null and
      // threshold above stay reported (they are the primary estimator's
      // full-data values); the per-member thresholds live in
      // result.consensus.thresholds.
      result.network = build_consensus_network(
          working, ranked, config, ensure_pool(), hooks.log,
          &result.consensus);
      pairs_per_rank.assign(1, result.consensus.pairs_computed);
      if (hooks.log)
        hooks.log(strprintf(
            "consensus pass: %zu members, %zu candidate edges, %zu kept",
            result.consensus.resamples * result.consensus.estimators,
            result.consensus.candidate_edges, result.consensus.kept_edges));
    } else if (p == 1) {
      const MiEngine engine(*statistic, ranked);
      EngineStats local_stats;
      EngineStats* stats =
          hooks.engine != nullptr ? hooks.engine : &local_stats;
      if (config.checkpoint_path.empty()) {
        result.network = engine.compute_network(result.threshold, config,
                                                ensure_pool(), stats);
      } else {
        result.network = engine.compute_network_checkpointed(
            result.threshold, config, ensure_pool(), config.checkpoint_path,
            stats);
      }
      pairs_per_rank.assign(1, stats->pairs_computed);
      if (hooks.log)
        hooks.log(strprintf(
            "mi pass: kernel=%s panel=%d, %zu pairs, %zu significant "
            "edges (%.2f%%)",
            stats->kernel, stats->panel_width, stats->pairs_computed,
            result.network.n_edges(),
            stats->pairs_computed > 0
                ? 100.0 * static_cast<double>(result.network.n_edges()) /
                      static_cast<double>(stats->pairs_computed)
                : 0.0));
    } else if (lease) {
      result.network = lease_sweep(comm, *statistic, ranked, result.threshold,
                                   config, &lease_report, hooks.cancel);
      pairs_per_rank = lease_report.pairs_per_rank;
      busy_per_rank = lease_report.busy_seconds_per_rank;
      if (r == 0) {
        obs::MetricsRegistry::global().counter("cluster.lease.granted")
            .add(lease_report.leases_granted);
        obs::MetricsRegistry::global().counter("cluster.lease.steals")
            .add(lease_report.steals);
        obs::MetricsRegistry::global().counter("cluster.lease.reclaimed")
            .add(lease_report.tiles_reclaimed);
        if (hooks.log)
          hooks.log(strprintf(
              "lease sweep: %zu tiles (%zu resumed), %zu leases, %zu steals, "
              "%zu reclaimed, %zu dead ranks",
              lease_report.tiles_total, lease_report.tiles_resumed,
              lease_report.leases_granted, lease_report.steals,
              lease_report.tiles_reclaimed, lease_report.dead_ranks.size()));
      }
    } else {
      result.network = ring_sweep(comm, *statistic, ranked, result.threshold,
                                  config, &pairs_per_rank, hooks.cancel,
                                  &busy_per_rank);
    }
  }

  // Stage 5: DPI on the merged network (rank 0 only).
  if (r == 0 && config.apply_dpi) {
    const OptionalSpan span(hooks.trace, "dpi");
    result.network =
        apply_dpi(result.network, config.dpi_tolerance, &result.dpi_stats);
    if (hooks.log)
      hooks.log(strprintf("dpi: %zu triangles, %zu edges removed, %zu edges "
                          "remain",
                          result.dpi_stats.triangles_examined,
                          result.dpi_stats.edges_removed,
                          result.network.n_edges()));
  }

  // Traffic gather: snapshot local totals first so the gather itself is
  // not part of the reported algorithm traffic. Under lease balancing the
  // sweep may have outlived dead ranks, so rank 0 skips peers the lease
  // master declared dead and treats a gather-time PeerFailureError as one
  // more late death rather than a pipeline failure.
  TrafficReport own;
  own.bytes_sent = comm.transport().bytes_sent();
  own.messages_sent = comm.transport().messages_sent();
  result.cluster.ranks = p;
  result.cluster.transport = transport_kind_name(comm.transport().kind());
  result.cluster.balance = lease ? "lease" : "static";
  result.cluster.bytes_per_rank.assign(static_cast<std::size_t>(p), 0);
  result.cluster.bytes_per_rank[static_cast<std::size_t>(r)] = own.bytes_sent;
  if (r == 0) {
    result.cluster.bytes_transferred = own.bytes_sent;
    result.cluster.messages = own.messages_sent;
    for (int src = 1; src < p; ++src) {
      const bool known_dead =
          std::find(lease_report.dead_ranks.begin(),
                    lease_report.dead_ranks.end(),
                    src) != lease_report.dead_ranks.end();
      if (known_dead) continue;
      try {
        const TrafficReport peer =
            comm.recv_vector<TrafficReport>(src, kTagTraffic).at(0);
        result.cluster.bytes_per_rank[static_cast<std::size_t>(src)] =
            peer.bytes_sent;
        result.cluster.bytes_transferred += peer.bytes_sent;
        result.cluster.messages += peer.messages_sent;
      } catch (const PeerFailureError&) {
        if (!lease) throw;
        lease_report.dead_ranks.push_back(src);
      }
    }
    result.cluster.pairs_per_rank = pairs_per_rank;
    result.cluster.busy_seconds_per_rank = busy_per_rank;
    result.cluster.leases_granted = lease_report.leases_granted;
    result.cluster.steals = lease_report.steals;
    result.cluster.tiles_reclaimed = lease_report.tiles_reclaimed;
    result.cluster.dead_ranks = lease_report.dead_ranks;
    for (const std::size_t count : pairs_per_rank)
      result.pairs_total += count;
    result.cluster.pairs_total = result.pairs_total;
  } else {
    comm.send_vector(0, std::vector<TrafficReport>{own}, kTagTraffic);
  }

  // Everyone leaves together (a finished rank closing its endpoint early
  // would look like a failure to peers still mid-recv on TCP). At one rank
  // there is no peer to wait for, and publishing the self-loop transport's
  // cluster.* counters would dirty the delegated single-process run's
  // metrics delta. Lease mode skips the barrier: a rank that died
  // mid-sweep would deadlock the survivors inside it, and the lease
  // protocol's release handshake already sequenced everyone's exit.
  if (p > 1) {
    if (!lease) comm.barrier();
    comm.transport().publish_metrics();
  }
  result.seconds = watch.seconds();
  result.cluster.seconds = result.seconds;
  return result;
}

ClusterManifest to_cluster_manifest(const ClusterStats& stats) {
  ClusterManifest manifest;
  manifest.transport = stats.transport;
  manifest.ranks = stats.ranks;
  manifest.balance = stats.balance;
  manifest.bytes_transferred = stats.bytes_transferred;
  manifest.messages = stats.messages;
  manifest.bytes_per_rank = stats.bytes_per_rank;
  manifest.pairs_per_rank.reserve(stats.pairs_per_rank.size());
  for (const std::size_t pairs : stats.pairs_per_rank)
    manifest.pairs_per_rank.push_back(static_cast<std::uint64_t>(pairs));
  manifest.busy_seconds_per_rank = stats.busy_seconds_per_rank;
  manifest.imbalance = stats.imbalance();
  manifest.imbalance_pre = stats.imbalance_pre();
  manifest.imbalance_post = stats.imbalance_post();
  manifest.leases_granted = static_cast<std::uint64_t>(stats.leases_granted);
  manifest.steals = static_cast<std::uint64_t>(stats.steals);
  manifest.tiles_reclaimed =
      static_cast<std::uint64_t>(stats.tiles_reclaimed);
  manifest.dead_ranks = stats.dead_ranks;
  manifest.seconds = stats.seconds;
  return manifest;
}

obs::Json make_cluster_run_manifest(const ShardedBuildResult& result,
                                    const TingeConfig& config) {
  obs::Json manifest = obs::Json::object();
  manifest["schema_version"] = obs::Json(kManifestSchemaVersion);
  manifest["tool"] = obs::Json(std::string("tingex"));
  manifest["mode"] = obs::Json(std::string("cluster"));
  manifest["config"] = config_to_json(config);

  obs::Json dataset = obs::Json::object();
  dataset["genes_in"] = obs::Json(result.genes_in);
  dataset["genes_used"] = obs::Json(result.genes_used);
  dataset["samples"] = obs::Json(result.samples);
  dataset["imputed_cells"] = obs::Json(result.imputed_cells);
  manifest["dataset"] = std::move(dataset);

  obs::Json run_result = obs::Json::object();
  run_result["edges"] = obs::Json(result.network.n_edges());
  run_result["threshold"] = obs::Json(result.threshold);
  run_result["marginal_entropy"] = obs::Json(result.marginal_entropy);
  run_result["pairs_computed"] = obs::Json(result.pairs_total);
  if (result.dpi_stats.triangles_examined > 0 ||
      result.dpi_stats.edges_removed > 0) {
    run_result["dpi_triangles_examined"] =
        obs::Json(result.dpi_stats.triangles_examined);
    run_result["dpi_edges_removed"] =
        obs::Json(result.dpi_stats.edges_removed);
  }
  if (result.consensus.resamples > 0) {
    obs::Json consensus = obs::Json::object();
    consensus["resamples"] = obs::Json(result.consensus.resamples);
    consensus["estimators"] = obs::Json(result.consensus.estimators);
    consensus["candidate_edges"] =
        obs::Json(result.consensus.candidate_edges);
    consensus["kept_edges"] = obs::Json(result.consensus.kept_edges);
    obs::Json thresholds = obs::Json::array();
    for (const double t : result.consensus.thresholds)
      thresholds.push_back(obs::Json(t));
    consensus["thresholds"] = std::move(thresholds);
    run_result["consensus"] = std::move(consensus);
  }
  manifest["result"] = std::move(run_result);

  manifest["cluster"] = cluster_to_json(to_cluster_manifest(result.cluster));
  return manifest;
}

void write_cluster_run_manifest(const ShardedBuildResult& result,
                                const TingeConfig& config,
                                const std::string& path) {
  obs::write_json_file(make_cluster_run_manifest(result, config), path);
}

obs::Json make_cluster_failure_manifest(const TingeConfig& config,
                                        const std::vector<WorkerExit>& exits,
                                        const std::string& resume_command) {
  obs::Json manifest = obs::Json::object();
  manifest["schema_version"] = obs::Json(kManifestSchemaVersion);
  manifest["tool"] = obs::Json(std::string("tingex"));
  manifest["mode"] = obs::Json(std::string("cluster"));
  manifest["status"] = obs::Json(std::string("failed"));
  manifest["config"] = config_to_json(config);

  obs::Json failure = obs::Json::object();
  const WorkerExit* first = first_failure(exits);
  failure["first_failed_rank"] =
      obs::Json(first != nullptr ? first->rank : -1);
  failure["first_failed_cause"] = obs::Json(
      first != nullptr ? describe_worker_exit(*first) : std::string());
  obs::Json workers = obs::Json::array();
  for (const WorkerExit& exit : exits) {
    obs::Json worker = obs::Json::object();
    worker["rank"] = obs::Json(exit.rank);
    worker["exit_code"] = obs::Json(exit.exit_code);
    worker["reap_order"] = obs::Json(exit.reap_order);
    worker["outcome"] = obs::Json(describe_worker_exit(exit));
    workers.push_back(std::move(worker));
  }
  failure["workers"] = std::move(workers);
  if (!resume_command.empty())
    failure["resume_command"] = obs::Json(resume_command);
  manifest["failure"] = std::move(failure);
  return manifest;
}

void write_cluster_failure_manifest(const TingeConfig& config,
                                    const std::vector<WorkerExit>& exits,
                                    const std::string& resume_command,
                                    const std::string& path) {
  obs::write_json_file(make_cluster_failure_manifest(config, exits,
                                                     resume_command),
                       path);
}

}  // namespace tinge::cluster
