// Compatibility umbrella for the pre-redesign single-header cluster API.
//
// The message-passing substrate now lives behind the pluggable Transport
// interface (transport.h) with two backends: the in-process rank-thread
// simulation (inproc_transport.h) and real framed TCP sockets
// (tcp_transport.h). `Comm` is the rank-handle facade in transport.h;
// construct backends through make_cluster()/make_transport() instead of
// naming them directly.
#pragma once

#include "cluster/inproc_transport.h"
#include "cluster/transport.h"
