// Message-passing substrate for the cluster baseline.
//
// The paper's pitch is that one chip replaces the cluster that TINGe-classic
// (Zola et al.) needed. To make that comparison concrete we implement the
// cluster algorithm too — over an in-process transport: every "rank" is a
// thread, messages are real buffer copies through per-rank mailboxes, and
// every transferred byte is counted. The interface is a deliberately tiny
// MPI-flavoured subset (ranked SPMD, tagged point-to-point, barrier), so the
// distributed driver reads like the MPI code it models; a real MPI backend
// would slot behind the same interface.
//
// DESIGN.md §2: this is a *simulated* cluster — it measures communication
// volume and algorithmic structure exactly, and latency/bandwidth not at
// all (everything is a memcpy). That is the honest scope: the experiment it
// feeds (bench_cluster_baseline) reports bytes moved and balance, not
// network time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/contracts.h"

namespace tinge::cluster {

class InProcessCluster;

/// Per-rank handle passed to the SPMD body. Methods are called by the
/// owning rank-thread only.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Buffered, tagged point-to-point send (never blocks; the message is
  /// copied into the destination mailbox).
  void send(int dest, const void* data, std::size_t bytes, int tag);

  /// Blocks until a message with (src, tag) arrives; returns its payload.
  std::vector<std::byte> recv(int src, int tag);

  /// All ranks must arrive before any proceeds. Reusable.
  void barrier();

  template <typename T>
  void send_vector(int dest, const std::vector<T>& values, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, values.data(), values.size() * sizeof(T), tag);
  }

  template <typename T>
  std::vector<T> recv_vector(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv(src, tag);
    TINGE_ENSURES(raw.size() % sizeof(T) == 0);
    std::vector<T> values(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
    return values;
  }

 private:
  friend class InProcessCluster;
  Comm(InProcessCluster* cluster, int rank, int size)
      : cluster_(cluster), rank_(rank), size_(size) {}

  InProcessCluster* cluster_;
  int rank_;
  int size_;
};

/// Owns the mailboxes and rank-threads for one SPMD execution.
class InProcessCluster {
 public:
  explicit InProcessCluster(int size);

  int size() const { return size_; }

  /// Runs body(comm) on `size` rank-threads; returns when all complete.
  /// Exceptions from any rank are rethrown on the caller (first wins).
  void run(const std::function<void(Comm&)>& body);

  /// Total payload bytes moved through send() across all run() calls.
  std::uint64_t bytes_transferred() const {
    return bytes_transferred_.load(std::memory_order_relaxed);
  }
  /// Total messages sent.
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 private:
  friend class Comm;

  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void deliver(int dest, Message message);
  std::vector<std::byte> wait_for(int rank, int src, int tag);
  void barrier_wait();

  const int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> bytes_transferred_{0};
  std::atomic<std::uint64_t> messages_sent_{0};

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace tinge::cluster
