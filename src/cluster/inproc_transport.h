// The in-process transport backend: every "rank" is a thread, messages are
// real buffer copies through per-rank mailboxes, and every transferred byte
// is counted. This is the *simulated* cluster of DESIGN.md §2 — it measures
// communication volume and algorithmic structure exactly, and
// latency/bandwidth not at all (everything is a memcpy). The TCP backend
// (tcp_transport.h) fills the same Transport interface with a real network
// path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cluster/transport.h"

namespace tinge::cluster {

/// Owns the mailboxes and rank-threads for SPMD executions over the
/// in-process transport.
class InProcessCluster final : public Cluster {
 public:
  /// `options` supplies the default recv/barrier deadline
  /// (recv_timeout_seconds; <= 0 waits forever). rank/size/rendezvous
  /// fields are ignored — the cluster owns all ranks.
  explicit InProcessCluster(int size, const TransportOptions& options = {});

  int size() const override { return size_; }
  TransportKind kind() const override { return TransportKind::InProcess; }

  /// Runs body(comm) on `size` rank-threads; returns when all complete.
  /// Exceptions from any rank are rethrown on the caller (first wins).
  void run(const std::function<void(Comm&)>& body) override;

  std::uint64_t bytes_transferred() const override {
    return bytes_transferred_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  std::vector<PeerTraffic> rank_traffic() const override {
    return last_rank_traffic_;
  }

 private:
  friend class InProcessTransport;

  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void deliver(int dest, Message message);
  std::vector<std::byte> wait_for(int rank, int src, int tag,
                                  double timeout_seconds);
  /// Non-blocking mailbox probe for `rank`: a queued (src, tag) match, or
  /// nullopt; throws PeerFailureError when src is done with no match left.
  std::optional<std::vector<std::byte>> try_take(int rank, int src, int tag);
  void barrier_wait(int rank);
  /// Marks `rank` as finished for this run() and wakes every waiter so
  /// pending recvs/barriers on it fail fast instead of hanging.
  void mark_rank_done(int rank);
  /// First rank already marked done, or -1 when all are still running.
  int first_done_rank() const;

  const int size_;
  const double default_recv_timeout_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> bytes_transferred_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::vector<PeerTraffic> last_rank_traffic_;

  /// Done-roster for the current run(): rank_done_[r] flips once rank r's
  /// body has returned (or thrown). A recv from a done rank with no
  /// matching message queued can never complete — wait_for turns it into
  /// PeerFailureError instead of a hang. Reset at each run() start.
  std::vector<std::atomic<bool>> rank_done_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

/// One rank's endpoint onto an InProcessCluster's mailboxes. Created by
/// InProcessCluster::run for each rank-thread; also constructible directly
/// when a test wants to drive endpoints without the thread harness.
class InProcessTransport final : public Transport {
 public:
  InProcessTransport(InProcessCluster& hub, int rank)
      : hub_(&hub),
        rank_(rank),
        peer_traffic_(static_cast<std::size_t>(hub.size())) {
    TINGE_EXPECTS(rank >= 0 && rank < hub.size());
  }

  int rank() const override { return rank_; }
  int size() const override { return hub_->size(); }
  TransportKind kind() const override { return TransportKind::InProcess; }

  void send(int dest, const void* data, std::size_t bytes, int tag) override;
  std::vector<std::byte> recv(int src, int tag) override;
  std::vector<std::byte> recv(int src, int tag,
                              double timeout_seconds) override;
  std::optional<std::vector<std::byte>> try_recv(int src, int tag) override;
  void barrier() override { hub_->barrier_wait(rank_); }

  std::vector<PeerTraffic> peer_traffic() const override {
    std::lock_guard<std::mutex> lock(traffic_mutex_);
    return peer_traffic_;
  }

 private:
  InProcessCluster* hub_;
  int rank_;
  /// Counters are normally owned by the rank-thread, but the conformance
  /// suite drives concurrent sends from helper threads, so a small mutex
  /// keeps them coherent (this is the simulated backend — the overhead is
  /// irrelevant).
  mutable std::mutex traffic_mutex_;
  std::vector<PeerTraffic> peer_traffic_;
};

}  // namespace tinge::cluster
