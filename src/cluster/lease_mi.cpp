#include "cluster/lease_mi.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "cluster/faulty_transport.h"
#include "cluster/ring_mi.h"
#include "util/timer.h"

namespace tinge::cluster {

LeaseLedger::LeaseLedger(const SweepPlan& plan,
                         const std::vector<char>* resumed) {
  TINGE_EXPECTS(resumed == nullptr || resumed->size() == plan.count());
  slots_.resize(plan.count());
  std::vector<std::uint64_t> order;
  order.reserve(plan.count());
  for (std::size_t t = 0; t < plan.count(); ++t) {
    if (resumed != nullptr && (*resumed)[t]) {
      slots_[t].state = State::Done;
      ++resumed_;
    } else {
      order.push_back(static_cast<std::uint64_t>(t));
    }
  }
  // LPT order: biggest tiles first (descending pair_count, ties by index).
  // The full-size diagonal-band tiles go out while every rank still has
  // work, so the sweep never ends with one rank alone on a big tile.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return plan.tile(static_cast<std::size_t>(a)).pair_count() >
                            plan.tile(static_cast<std::size_t>(b)).pair_count();
                   });
  ready_.assign(order.begin(), order.end());
}

std::vector<std::uint64_t> LeaseLedger::grant(int rank,
                                              std::size_t max_tiles) {
  TINGE_EXPECTS(rank >= 0);
  std::vector<std::uint64_t> granted;
  while (granted.size() < max_tiles && !ready_.empty()) {
    const std::uint64_t t = ready_.front();
    ready_.pop_front();
    Slot& slot = slots_[static_cast<std::size_t>(t)];
    TINGE_ENSURES(slot.state == State::Ready);
    slot.state = State::Leased;
    slot.holder = rank;
    granted.push_back(t);
  }
  granted_ += granted.size();
  outstanding_ += granted.size();
  return granted;
}

void LeaseLedger::complete(int rank, std::uint64_t tile) {
  TINGE_EXPECTS(static_cast<std::size_t>(tile) < slots_.size());
  Slot& slot = slots_[static_cast<std::size_t>(tile)];
  TINGE_EXPECTS(slot.state == State::Leased && slot.holder == rank);
  slot.state = State::Done;
  slot.holder = -1;
  ++completed_;
  --outstanding_;
}

std::vector<std::uint64_t> LeaseLedger::reclaim(int rank) {
  std::vector<std::uint64_t> reclaimed;
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    Slot& slot = slots_[t];
    if (slot.state == State::Leased && slot.holder == rank) {
      slot.state = State::Ready;
      slot.holder = -1;
      reclaimed.push_back(static_cast<std::uint64_t>(t));
    }
  }
  // Front of the queue, ascending index: these tiles already made someone
  // wait once, so they preempt the LPT tail.
  for (auto it = reclaimed.rbegin(); it != reclaimed.rend(); ++it)
    ready_.push_front(*it);
  reclaimed_ += reclaimed.size();
  outstanding_ -= reclaimed.size();
  return reclaimed;
}

int LeaseLedger::lowest_holder() const {
  int lowest = -1;
  for (const Slot& slot : slots_) {
    if (slot.state != State::Leased) continue;
    if (lowest < 0 || slot.holder < lowest) lowest = slot.holder;
  }
  return lowest;
}

namespace {

/// Wire format of a kTagTileDone message:
///   u64 tile_index | u64 busy_us | Edge (u32, u32, f32) x count
struct TileDoneHeader {
  std::uint64_t tile = 0;
  std::uint64_t busy_us = 0;
};
static_assert(std::is_trivially_copyable_v<TileDoneHeader>);
static_assert(std::is_trivially_copyable_v<Edge> && sizeof(Edge) == 12);

std::vector<std::byte> pack_tile_done(std::uint64_t tile,
                                      std::uint64_t busy_us,
                                      const std::vector<Edge>& edges) {
  TileDoneHeader header{tile, busy_us};
  std::vector<std::byte> wire(sizeof(header) + edges.size() * sizeof(Edge));
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!edges.empty())
    std::memcpy(wire.data() + sizeof(header), edges.data(),
                edges.size() * sizeof(Edge));
  return wire;
}

struct TileDone {
  std::uint64_t tile = 0;
  double busy_seconds = 0.0;
  std::vector<Edge> edges;
};

TileDone unpack_tile_done(const std::vector<std::byte>& wire) {
  TINGE_EXPECTS(wire.size() >= sizeof(TileDoneHeader) &&
                (wire.size() - sizeof(TileDoneHeader)) % sizeof(Edge) == 0);
  TileDoneHeader header;
  std::memcpy(&header, wire.data(), sizeof(header));
  TileDone done;
  done.tile = header.tile;
  done.busy_seconds = static_cast<double>(header.busy_us) * 1e-6;
  done.edges.resize((wire.size() - sizeof(header)) / sizeof(Edge));
  if (!done.edges.empty())
    std::memcpy(done.edges.data(), wire.data() + sizeof(header),
                wire.size() - sizeof(header));
  return done;
}

void straggle(double delay_ms) {
  if (delay_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
}

/// One tile's edges through the exact engine kernel path (bit-identical to
/// the single-process sweep, so merge order is the only variable — and
/// GeneNetwork::finalize sorts that away).
template <typename RowSource>
std::vector<Edge> compute_tile_edges(const PairStatistic& statistic,
                                     RowSource& row, const Tile& tile,
                                     const PanelPlan& panels, double threshold,
                                     PairScratch& scratch) {
  EdgeSink sink(threshold, /*contexts=*/1);
  SweepCounters counters;
  detail::sweep_tile(statistic, row, tile, panels, /*phase=*/0, /*stride=*/1,
                     scratch, counters, sink, /*tid=*/0);
  return sink.take_all();
}

/// The static ring rule's owner for a tile of the global plan — what the
/// steal counter compares actual assignment against. Tiles never span the
/// contiguous ceil(n/p) block boundaries' pair regions ambiguously for
/// this purpose: the owning blocks are read off the tile's first row/col.
int static_tile_owner(const Tile& tile, std::size_t n_genes, int ranks) {
  const std::size_t per =
      (n_genes + static_cast<std::size_t>(ranks) - 1) /
      static_cast<std::size_t>(ranks);
  const auto block_of = [&](std::size_t g) {
    return static_cast<int>(std::min(g / per,
                                     static_cast<std::size_t>(ranks - 1)));
  };
  const int a = block_of(tile.row_begin);
  const int b = block_of(tile.col_begin);
  return block_pair_owner(std::min(a, b), std::max(a, b), ranks);
}

template <typename RowSource>
GeneNetwork lease_worker(Comm& comm, const PairStatistic& statistic,
                         RowSource& row, const RankedMatrix& ranked,
                         const SweepPlan& plan, const PanelPlan& panels,
                         double threshold, double straggle_ms,
                         const std::atomic<bool>* cancel) {
  const std::unique_ptr<PairScratch> scratch = statistic.make_scratch();
  while (true) {
    comm.send(0, nullptr, 0, kTagLeaseRequest);
    const std::vector<std::uint64_t> granted =
        comm.recv_vector<std::uint64_t>(0, kTagLeaseGrant);
    if (granted.empty()) break;  // released: the ledger has nothing left
    for (const std::uint64_t t : granted) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
        throw SweepAborted();
      const Stopwatch tile_watch;
      straggle(straggle_ms);
      const std::vector<Edge> edges = compute_tile_edges(
          statistic, row, plan.tile(static_cast<std::size_t>(t)), panels,
          threshold, *scratch);
      const auto busy_us =
          static_cast<std::uint64_t>(tile_watch.seconds() * 1e6);
      const std::vector<std::byte> wire = pack_tile_done(t, busy_us, edges);
      comm.send(0, wire.data(), wire.size(), kTagTileDone);
    }
  }
  GeneNetwork network(ranked.gene_names());
  network.finalize();
  return network;
}

template <typename RowSource>
GeneNetwork lease_master(Comm& comm, const PairStatistic& statistic,
                         RowSource& row, const RankedMatrix& ranked,
                         const SweepPlan& plan, const PanelPlan& panels,
                         double threshold, const TingeConfig& config,
                         double straggle_ms, LeaseSweepReport* report,
                         const std::atomic<bool>* cancel) {
  const int p = comm.size();
  const std::size_t n = ranked.n_genes();

  // Partition-independent resume: the signature binds (dataset, statistic
  // parameters, tile grid, threshold) only — no world size — so journals
  // from any rank count, the p == 1 engine included, seed this ledger, and
  // a journal this run writes resumes on any world size.
  // Signature parameters come from the statistic, exactly as the p == 1
  // engine's checkpointed path derives them, so the two journal families
  // are interchangeable even when config and statistic disagree.
  RunSignature signature;
  signature.n_genes = n;
  signature.n_samples = ranked.n_samples();
  signature.tile_size = config.tile_size;
  signature.bins = statistic.signature_bins();
  signature.order = statistic.signature_order();
  signature.threshold = threshold;
  signature.estimator = static_cast<std::uint32_t>(statistic.kind());
  ResumeState resume;
  std::unique_ptr<CheckpointWriter> writer;
  if (!config.checkpoint_path.empty()) {
    // Load before constructing the writer — the writer truncates.
    resume = load_resume_state(config.checkpoint_path, signature, plan);
    writer =
        std::make_unique<CheckpointWriter>(config.checkpoint_path, signature);
    for (const TileRecord& record : resume.records)
      writer->append_tile(record.tile_index, record.edges);
  }
  LeaseLedger ledger(plan,
                     config.checkpoint_path.empty() ? nullptr : &resume.done);

  GeneNetwork network(ranked.gene_names());
  for (const TileRecord& record : resume.records)
    network.add_edges(record.edges);

  std::vector<char> dead(static_cast<std::size_t>(p), 0);
  std::vector<char> pending(static_cast<std::size_t>(p), 0);
  std::vector<std::size_t> pairs(static_cast<std::size_t>(p), 0);
  std::vector<double> busy(static_cast<std::size_t>(p), 0.0);
  std::vector<int> dead_ranks;
  std::size_t steals = 0;
  std::size_t pairs_computed = 0;
  const std::unique_ptr<PairScratch> scratch = statistic.make_scratch();

  const auto mark_dead = [&](int src) {
    if (dead[static_cast<std::size_t>(src)]) return;
    dead[static_cast<std::size_t>(src)] = 1;
    dead_ranks.push_back(src);
    ledger.reclaim(src);
  };

  const auto account = [&](int src, std::uint64_t t, double busy_seconds,
                           const std::vector<Edge>& edges) {
    ledger.complete(src, t);
    const Tile& tile = plan.tile(static_cast<std::size_t>(t));
    pairs[static_cast<std::size_t>(src)] += tile.pair_count();
    pairs_computed += tile.pair_count();
    busy[static_cast<std::size_t>(src)] += busy_seconds;
    if (static_tile_owner(tile, n, p) != src) ++steals;
    network.add_edges(edges);
    if (writer) writer->append_tile(t, edges);
  };

  const auto handle_done = [&](int src, const std::vector<std::byte>& wire) {
    const TileDone done = unpack_tile_done(wire);
    account(src, done.tile, done.busy_seconds, done.edges);
  };

  // A grant send can race the peer's death (tcp write error / inproc
  // done-roster): treat any transport failure as that peer dying, but let
  // rank 0's own injected kill play out.
  const auto send_grant = [&](int dest,
                              const std::vector<std::uint64_t>& tiles) {
    try {
      comm.send_vector(dest, tiles, kTagLeaseGrant);
      return true;
    } catch (const InjectedFault&) {
      throw;
    } catch (const std::runtime_error&) {
      return false;
    }
  };

  const auto grant_batch = [&]() -> std::size_t {
    int live = 1;
    for (int s = 1; s < p; ++s)
      if (!dead[static_cast<std::size_t>(s)]) ++live;
    const std::size_t ready = ledger.tiles_total() - ledger.tiles_resumed() -
                              ledger.tiles_completed() - ledger.outstanding();
    return std::clamp<std::size_t>(
        ready / (4 * static_cast<std::size_t>(live)), 1, 8);
  };

  while (!ledger.done()) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      throw SweepAborted();
    // 1. Poll every live worker: drain completions, then note a lease
    //    request. Per-(src, tag) FIFO means every TileDone a worker sent
    //    before its request is visible before the request is.
    for (int src = 1; src < p; ++src) {
      if (dead[static_cast<std::size_t>(src)]) continue;
      try {
        while (const auto wire = comm.try_recv(src, kTagTileDone))
          handle_done(src, *wire);
        if (!pending[static_cast<std::size_t>(src)] &&
            comm.try_recv(src, kTagLeaseRequest))
          pending[static_cast<std::size_t>(src)] = 1;
      } catch (const PeerFailureError&) {
        mark_dead(src);
      }
    }
    // 2. Serve pending requests while tiles are ready. A drained-but-not-
    //    done ledger defers the request: if an outstanding holder dies,
    //    its reclaimed tiles go to whoever waited.
    for (int src = 1; src < p && !ledger.drained(); ++src) {
      if (dead[static_cast<std::size_t>(src)] ||
          !pending[static_cast<std::size_t>(src)])
        continue;
      const std::vector<std::uint64_t> batch =
          ledger.grant(src, grant_batch());
      if (send_grant(src, batch)) {
        pending[static_cast<std::size_t>(src)] = 0;
      } else {
        mark_dead(src);  // reclaim() re-queues the batch at the front
      }
    }
    // 3. Self-work: rank 0 takes one tile at a time between polls, so it
    //    contributes compute while staying responsive to requests.
    if (!ledger.drained()) {
      for (const std::uint64_t t : ledger.grant(0, 1)) {
        const Stopwatch tile_watch;
        straggle(straggle_ms);
        const std::vector<Edge> edges = compute_tile_edges(
            statistic, row, plan.tile(static_cast<std::size_t>(t)), panels,
            threshold, *scratch);
        account(0, t, tile_watch.seconds(), edges);
      }
      continue;  // re-poll promptly
    }
    // 4. Drained with leases outstanding: block on the lowest live holder
    //    instead of spinning. TimeoutError is a PeerFailureError, so a
    //    stuck straggler's leases are reclaimed and recomputed here too.
    if (!ledger.done()) {
      const int holder = ledger.lowest_holder();
      TINGE_ENSURES(holder > 0);
      try {
        handle_done(holder, comm.recv(holder, kTagTileDone));
      } catch (const PeerFailureError&) {
        mark_dead(holder);
      }
    }
  }

  // Release: answer every live worker's final request with an empty grant.
  // A rank that dies this late has nothing outstanding to reclaim.
  for (int src = 1; src < p; ++src) {
    if (dead[static_cast<std::size_t>(src)]) continue;
    try {
      if (!pending[static_cast<std::size_t>(src)])
        comm.recv(src, kTagLeaseRequest);
      if (!send_grant(src, {})) mark_dead(src);
    } catch (const InjectedFault&) {
      throw;
    } catch (const PeerFailureError&) {
      mark_dead(src);
    }
  }

  // Work conservation, the protocol's contract: every tile in the plan is
  // accounted exactly once, and every grant either completed or was
  // reclaimed — no tile lost to a dead rank, none computed twice.
  TINGE_ENSURES(ledger.done());
  TINGE_ENSURES(ledger.leases_granted() ==
                ledger.tiles_completed() + ledger.tiles_reclaimed());
  TINGE_ENSURES(pairs_computed + resume.pairs_resumed ==
                n * (n - 1) / 2);

  network.finalize();
  if (writer) {
    writer->close();
    writer.reset();
    std::remove(config.checkpoint_path.c_str());
  }

  if (report != nullptr) {
    report->pairs_per_rank = std::move(pairs);
    report->busy_seconds_per_rank = std::move(busy);
    report->leases_granted = ledger.leases_granted();
    report->steals = steals;
    report->tiles_reclaimed = ledger.tiles_reclaimed();
    report->tiles_total = ledger.tiles_total();
    report->tiles_resumed = ledger.tiles_resumed();
    report->pairs_resumed = resume.pairs_resumed;
    report->dead_ranks = std::move(dead_ranks);
  }
  return network;
}

}  // namespace

GeneNetwork lease_sweep(Comm& comm, const PairStatistic& statistic,
                        const RankedMatrix& ranked, double threshold,
                        const TingeConfig& config, LeaseSweepReport* report,
                        const std::atomic<bool>* cancel) {
  TINGE_EXPECTS(statistic.n_samples() == ranked.n_samples());
  const std::size_t m = ranked.n_samples();
  // The GLOBAL tile plan — identical to the single-process engine's, which
  // is what makes the checkpoint journal world-size-free.
  const SweepPlan plan =
      SweepPlan::triangular(0, ranked.n_genes(), config.tile_size);
  const PanelPlan panels = statistic.plan(config);
  const double straggle_ms = straggle_delay_ms(comm.transport());
  if (report != nullptr) *report = {};

  if (config.stage_ranks && StagedRankMatrix::can_stage(m)) {
    const StagedRankMatrix staged(ranked);
    const auto row = [&](std::size_t g) { return staged.row(g); };
    return comm.rank() == 0
               ? lease_master(comm, statistic, row, ranked, plan, panels,
                              threshold, config, straggle_ms, report, cancel)
               : lease_worker(comm, statistic, row, ranked, plan, panels,
                              threshold, straggle_ms, cancel);
  }
  const auto row = [&](std::size_t g) { return ranked.ranks(g).data(); };
  return comm.rank() == 0
             ? lease_master(comm, statistic, row, ranked, plan, panels,
                            threshold, config, straggle_ms, report, cancel)
             : lease_worker(comm, statistic, row, ranked, plan, panels,
                            threshold, straggle_ms, cancel);
}

}  // namespace tinge::cluster
