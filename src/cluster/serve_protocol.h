// Wire protocol of the tinge_serve query daemon (DESIGN.md §6j).
//
// Serve traffic rides the same framed transport as the mesh
// (cluster/framing.h): every message is one frame whose kind is
// kFrameServeRequest / kFrameServeResponse / kFrameServeEvent and whose tag
// is a client-chosen request id, echoed back verbatim so a client can match
// responses (and streamed events) to the request that caused them.
//
// A request frame's payload is a ServeRequestHeader followed by
// `header.count` uint32 items whose meaning depends on the kind (see
// QueryKind). A response frame's payload is a ServeResponseHeader followed
// by `header.count` elements: doubles for MiPairs, ServeEdge records for
// the graph queries, raw UTF-8 bytes for Metrics / SweepJob summaries and
// error messages. Event frames (SweepJob progress) carry plain UTF-8 JSON.
//
// All integers are host byte order — the daemon serves loopback / one
// machine, exactly like the mesh transport it reuses.
#pragma once

#include <cstdint>
#include <type_traits>

namespace tinge::cluster {

/// What a serve request asks for. The numeric values are the wire encoding:
/// append new kinds, never renumber.
enum class QueryKind : std::uint32_t {
  Ping = 0,      ///< liveness probe; empty payload, empty response
  MiPairs,       ///< payload: 2*n interleaved gene ids (a0 b0 a1 b1 ...);
                 ///< response: n doubles, bit-identical to the batch sweep
  Neighborhood,  ///< payload: 1 gene id; k = max neighbors by weight (0=all);
                 ///< response: ServeEdge records
  TopEdges,      ///< k = edge count wanted; response: ServeEdge records
  Subgraph,      ///< payload: n gene ids; response: every network edge with
                 ///< both endpoints in the set
  SweepJob,      ///< re-run the thresholded network sweep; progress streamed
                 ///< as ServeEvent frames, final response is a JSON summary
  Metrics,       ///< response: live metrics-registry snapshot as JSON
  Shutdown,      ///< ask the daemon to exit its serve loop
};

/// Human-readable QueryKind name ("mi_pairs", ...); "?" for junk values.
const char* query_kind_name(QueryKind kind);

/// `estimator` value meaning "whatever the daemon was built with".
inline constexpr std::uint32_t kEstimatorDefault = 0xFFFFFFFFu;

/// Fixed-size head of every request payload. `estimator` is a
/// tinge::EstimatorKind value (or kEstimatorDefault) and only matters for
/// MiPairs — the graph queries answer from the already-built network.
/// `k` is the per-kind limit (Neighborhood / TopEdges); `count` is the
/// number of uint32 payload items that follow.
struct ServeRequestHeader {
  std::uint32_t kind = 0;  ///< QueryKind
  std::uint32_t estimator = kEstimatorDefault;
  std::uint32_t k = 0;
  std::uint32_t count = 0;
};
static_assert(sizeof(ServeRequestHeader) == 16);
static_assert(std::is_trivially_copyable_v<ServeRequestHeader>);

/// Response status codes.
inline constexpr std::uint32_t kServeOk = 0;
inline constexpr std::uint32_t kServeError = 1;

/// Fixed-size head of every response payload. On kServeError the payload is
/// `count` bytes of UTF-8 error message regardless of kind.
struct ServeResponseHeader {
  std::uint32_t status = kServeOk;
  std::uint32_t kind = 0;  ///< echoes the request's QueryKind
  std::uint64_t count = 0;  ///< elements (doubles / edges / bytes) following
};
static_assert(sizeof(ServeResponseHeader) == 16);
static_assert(std::is_trivially_copyable_v<ServeResponseHeader>);

/// One network edge on the wire (graph-query responses). Weight is the MI
/// (nats) exactly as the batch pipeline stored it.
struct ServeEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  float weight = 0.0f;
};
static_assert(sizeof(ServeEdge) == 12);
static_assert(std::is_trivially_copyable_v<ServeEdge>);

}  // namespace tinge::cluster
