#include "cluster/launcher.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>

#include "util/str.h"

namespace tinge::cluster {

std::string make_rendezvous_dir() {
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir == nullptr || tmpdir[0] == '\0') tmpdir = "/tmp";
  std::string pattern = strprintf("%s/tingex-rdv-XXXXXX", tmpdir);
  if (::mkdtemp(pattern.data()) == nullptr)
    throw std::runtime_error(strprintf("mkdtemp(%s): %s", pattern.c_str(),
                                       std::strerror(errno)));
  return pattern;
}

void remove_rendezvous_dir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle != nullptr) {
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(handle);
  }
  ::rmdir(dir.c_str());
}

namespace {

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

void scrub_port_files(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (ends_with(name, ".port") || ends_with(name, ".port.tmp"))
      ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(handle);
}

std::uint64_t make_run_nonce() {
  std::random_device device;
  std::uint64_t nonce = (static_cast<std::uint64_t>(device()) << 32) ^
                        static_cast<std::uint64_t>(device());
  nonce ^= static_cast<std::uint64_t>(::getpid()) << 48;
  nonce ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // Keep it in the positive signed-64 range: the nonce rides through a
  // command-line flag parsed with a signed integer parser.
  nonce &= (std::uint64_t(1) << 63) - 1;
  // 0 means "accept any port file" to the transport, so a nonce must never
  // be 0 — that would disable exactly the check it exists to arm.
  return nonce != 0 ? nonce : 1;
}

std::vector<WorkerExit> launch_workers(
    const std::string& program, const std::vector<std::string>& common_args,
    int size, const std::string& rendezvous_dir) {
  std::vector<pid_t> pids(static_cast<std::size_t>(size), -1);
  std::vector<WorkerExit> exits(static_cast<std::size_t>(size));

  // A reused rendezvous directory may still hold port files from a mesh
  // that crashed before cleaning up; this run's workers must never read
  // them. The nonce stamp is the second line of defense (a concurrently
  // crashed run could re-litter after this scrub).
  scrub_port_files(rendezvous_dir);
  const std::uint64_t nonce = make_run_nonce();

  for (int rank = 0; rank < size; ++rank) {
    std::vector<std::string> args;
    args.push_back(program);
    args.insert(args.end(), common_args.begin(), common_args.end());
    args.push_back(strprintf("--cluster-rank=%d", rank));
    args.push_back(strprintf("--cluster-size=%d", size));
    args.push_back("--rendezvous=" + rendezvous_dir);
    args.push_back(strprintf("--rendezvous-nonce=%llu",
                             static_cast<unsigned long long>(nonce)));

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      // Could not spawn the full mesh: tear down what we started and fail.
      for (int started = 0; started < rank; ++started)
        ::kill(pids[static_cast<std::size_t>(started)], SIGTERM);
      for (int started = 0; started < rank; ++started)
        ::waitpid(pids[static_cast<std::size_t>(started)], nullptr, 0);
      throw std::runtime_error(
          strprintf("fork failed for worker rank %d: %s", rank,
                    std::strerror(errno)));
    }
    if (pid == 0) {
      ::execv(program.c_str(), argv.data());
      std::fprintf(stderr, "exec %s: %s\n", program.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    pids[static_cast<std::size_t>(rank)] = pid;
    exits[static_cast<std::size_t>(rank)].rank = rank;
  }

  // Reap in completion order so one crashed worker fails the run promptly
  // instead of after the survivors' rendezvous/recv timeouts. Every
  // exits[] entry starts at the kWorkerExitUnreaped sentinel: if waitpid
  // fails outright (ECHILD — something else reaped our children), the
  // unreaped ranks must report as failures, not as default successes.
  int remaining = size;
  int reap_counter = 0;
  bool terminated_survivors = false;
  while (remaining > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;  // ECHILD: nothing left to reap; sentinels mark the rest
    }
    int rank = -1;
    for (int r = 0; r < size; ++r)
      if (pids[static_cast<std::size_t>(r)] == pid) rank = r;
    if (rank < 0) continue;  // not one of ours (caller had other children)
    --remaining;
    WorkerExit& exit = exits[static_cast<std::size_t>(rank)];
    exit.reap_order = reap_counter++;
    if (WIFEXITED(status))
      exit.exit_code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
      exit.exit_code = 128 + WTERMSIG(status);
    else
      exit.exit_code = -1;
    if (exit.exit_code != 0 && !terminated_survivors) {
      terminated_survivors = true;
      for (int r = 0; r < size; ++r) {
        if (r == rank) continue;
        const pid_t survivor = pids[static_cast<std::size_t>(r)];
        if (survivor > 0) ::kill(survivor, SIGTERM);
      }
    }
  }
  if (remaining > 0) {
    // waitpid gave up with workers outstanding: best-effort teardown so an
    // unreapable (but possibly live) mesh does not outlive the launcher.
    for (int r = 0; r < size; ++r) {
      if (!exits[static_cast<std::size_t>(r)].reaped() &&
          pids[static_cast<std::size_t>(r)] > 0)
        ::kill(pids[static_cast<std::size_t>(r)], SIGTERM);
    }
  }
  // Abnormal exit: workers killed mid-rendezvous had no chance to tidy up,
  // and their published ports are now dead. Scrub so a later run against
  // the same directory starts clean even without the nonce check.
  if (!all_workers_succeeded(exits)) scrub_port_files(rendezvous_dir);
  return exits;
}

bool all_workers_succeeded(const std::vector<WorkerExit>& exits) {
  for (const WorkerExit& exit : exits)
    if (exit.exit_code != 0) return false;
  return !exits.empty();
}

const WorkerExit* first_failure(const std::vector<WorkerExit>& exits) {
  const WorkerExit* first = nullptr;
  for (const WorkerExit& exit : exits) {
    if (!exit.failed() || !exit.reaped()) continue;
    if (first == nullptr || exit.reap_order < first->reap_order) first = &exit;
  }
  if (first != nullptr) return first;
  for (const WorkerExit& exit : exits)
    if (exit.failed()) return &exit;  // unreaped (sentinel) failures
  return nullptr;
}

std::string describe_worker_exit(const WorkerExit& exit) {
  if (!exit.reaped())
    return "was never reaped (outcome unknown; treated as failed)";
  if (exit.exit_code == 0) return "exited cleanly";
  if (exit.exit_code == kWorkerExitPeerFailure)
    return strprintf("observed a peer failure (exit code %d)",
                     kWorkerExitPeerFailure);
  if (exit.exit_code == 127) return "could not exec the worker binary (127)";
  if (exit.exit_code > 128)
    return strprintf("killed by signal %d (%s)", exit.exit_code - 128,
                     strsignal(exit.exit_code - 128));
  return strprintf("exited with code %d", exit.exit_code);
}

std::string sibling_binary_path(const char* argv0, const std::string& name) {
  char self[4096];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  std::string dir;
  // readlink does not NUL-terminate and silently truncates at the buffer
  // size; a full buffer means the path *may* be cut short, so fall back to
  // argv0 rather than exec a mangled prefix.
  if (len > 0 && len < static_cast<ssize_t>(sizeof(self) - 1)) {
    self[len] = '\0';
    dir = self;
  } else if (argv0 != nullptr) {
    dir = argv0;
  }
  const std::size_t slash = dir.rfind('/');
  dir = (slash == std::string::npos) ? "." : dir.substr(0, slash);
  return dir + "/" + name;
}

}  // namespace tinge::cluster
