#include "cluster/ring_mi.h"

#include <algorithm>

#include "util/timer.h"

namespace tinge::cluster {

double ClusterStats::imbalance() const {
  if (pairs_per_rank.empty()) return 1.0;
  const auto [lo, hi] =
      std::minmax_element(pairs_per_rank.begin(), pairs_per_rank.end());
  if (*lo == 0) return static_cast<double>(*hi);
  return static_cast<double>(*hi) / static_cast<double>(*lo);
}

int block_pair_owner(int a, int b, int ranks) {
  TINGE_EXPECTS(0 <= a && a <= b && b < ranks);
  if (a == b) return a;
  return (a + b) % 2 == 0 ? a : b;
}

namespace {

constexpr int kTagRing = 1;       // + step
constexpr int kTagEdges = 10000;
constexpr int kTagPairCount = 10001;

struct Block {
  std::uint32_t id = 0;
  std::size_t first_gene = 0;
  std::size_t gene_count = 0;
  std::vector<std::uint32_t> ranks;  // gene_count x m, row-major
};

std::size_t block_begin(std::size_t n, int ranks, int block) {
  const std::size_t per = (n + static_cast<std::size_t>(ranks) - 1) /
                          static_cast<std::size_t>(ranks);
  return std::min(n, per * static_cast<std::size_t>(block));
}

Block load_block(const RankedMatrix& ranked, int ranks, std::uint32_t id) {
  Block block;
  block.id = id;
  block.first_gene = block_begin(ranked.n_genes(), ranks, static_cast<int>(id));
  const std::size_t end =
      block_begin(ranked.n_genes(), ranks, static_cast<int>(id) + 1);
  block.gene_count = end - block.first_gene;
  const std::size_t m = ranked.n_samples();
  block.ranks.resize(block.gene_count * m);
  for (std::size_t g = 0; g < block.gene_count; ++g) {
    const auto row = ranked.ranks(block.first_gene + g);
    std::copy(row.begin(), row.end(), block.ranks.begin() + g * m);
  }
  return block;
}

// Wire format: [id, first_gene, gene_count] as u32 then the rank data.
std::vector<std::uint32_t> pack_block(const Block& block) {
  std::vector<std::uint32_t> wire;
  wire.reserve(3 + block.ranks.size());
  wire.push_back(block.id);
  wire.push_back(static_cast<std::uint32_t>(block.first_gene));
  wire.push_back(static_cast<std::uint32_t>(block.gene_count));
  wire.insert(wire.end(), block.ranks.begin(), block.ranks.end());
  return wire;
}

Block unpack_block(const std::vector<std::uint32_t>& wire) {
  TINGE_EXPECTS(wire.size() >= 3);
  Block block;
  block.id = wire[0];
  block.first_gene = wire[1];
  block.gene_count = wire[2];
  block.ranks.assign(wire.begin() + 3, wire.end());
  TINGE_ENSURES(block.gene_count == 0 ||
                block.ranks.size() % block.gene_count == 0);
  return block;
}

}  // namespace

GeneNetwork ring_sweep(Comm& comm, const BsplineMi& estimator,
                       const RankedMatrix& ranked, double threshold,
                       const TingeConfig& config,
                       std::vector<std::size_t>* pairs_per_rank_out) {
  TINGE_EXPECTS(estimator.n_samples() == ranked.n_samples());
  const std::size_t m = ranked.n_samples();
  const float threshold_f = static_cast<float>(threshold);
  const int r = comm.rank();
  const int p = comm.size();
  // The engine computes MI with panel sweeps, where every SIMD-family
  // kernel (including Auto's measured resolution) shares one accumulation
  // order; pick the per-pair kernel that reproduces those bits so the
  // sharded network is byte-identical to the single-chip one.
  const MiKernel kernel = panel_equivalent_kernel(config.kernel);

  // "Local load" of the resident block (not communication).
  const Block resident = load_block(ranked, p, static_cast<std::uint32_t>(r));

  JointHistogram scratch = estimator.make_scratch();
  std::vector<Edge> edges;
  std::size_t pairs = 0;

  const auto compute_cross = [&](const Block& a, const Block& b) {
    for (std::size_t i = 0; i < a.gene_count; ++i) {
      const std::uint32_t* ri = a.ranks.data() + i * m;
      const auto gi = static_cast<std::uint32_t>(a.first_gene + i);
      for (std::size_t j = 0; j < b.gene_count; ++j) {
        const std::uint32_t* rj = b.ranks.data() + j * m;
        const auto gj = static_cast<std::uint32_t>(b.first_gene + j);
        // Kernel arguments in global gene order: the joint histogram is
        // mathematically symmetric but its float summation order is not,
        // and results must be bit-identical to the single-chip engine.
        const double h =
            gi < gj ? joint_entropy(estimator.table(), ri, rj, m, scratch,
                                    kernel)
                    : joint_entropy(estimator.table(), rj, ri, m, scratch,
                                    kernel);
        const float mi =
            static_cast<float>(2.0 * estimator.marginal_entropy() - h);
        ++pairs;
        if (mi >= threshold_f) {
          edges.push_back(gi < gj ? Edge{gi, gj, mi} : Edge{gj, gi, mi});
        }
      }
    }
  };

  // Diagonal (within-block) pairs.
  for (std::size_t i = 0; i < resident.gene_count; ++i) {
    const std::uint32_t* ri = resident.ranks.data() + i * m;
    const auto gi = static_cast<std::uint32_t>(resident.first_gene + i);
    for (std::size_t j = i + 1; j < resident.gene_count; ++j) {
      const std::uint32_t* rj = resident.ranks.data() + j * m;
      const auto gj = static_cast<std::uint32_t>(resident.first_gene + j);
      const double h =
          joint_entropy(estimator.table(), ri, rj, m, scratch, kernel);
      const float mi =
          static_cast<float>(2.0 * estimator.marginal_entropy() - h);
      ++pairs;
      if (mi >= threshold_f) edges.push_back(Edge{gi, gj, mi});
    }
  }

  // Ring pipeline: forward the traveling block, compute owned pairs.
  Block traveling = resident;
  for (int step = 1; step < p; ++step) {
    const int next = (r + 1) % p;
    const int prev = (r - 1 + p) % p;
    comm.send_vector(next, pack_block(traveling), kTagRing + step);
    traveling =
        unpack_block(comm.recv_vector<std::uint32_t>(prev, kTagRing + step));
    const int a = std::min(r, static_cast<int>(traveling.id));
    const int b = std::max(r, static_cast<int>(traveling.id));
    if (a != b && block_pair_owner(a, b, p) == r)
      compute_cross(resident, traveling);
  }

  // Results to rank 0; rank 0 merges in rank order (0, 1, ..., p-1) so the
  // edge list is deterministic regardless of arrival order.
  GeneNetwork network(ranked.gene_names());
  if (r == 0) {
    std::vector<std::size_t> pairs_per_rank(static_cast<std::size_t>(p), 0);
    network.add_edges(edges);
    pairs_per_rank[0] = pairs;
    std::size_t total_pairs = pairs;
    for (int src = 1; src < p; ++src) {
      network.add_edges(comm.recv_vector<Edge>(src, kTagEdges));
      const auto count = comm.recv_vector<std::uint64_t>(src, kTagPairCount);
      pairs_per_rank[static_cast<std::size_t>(src)] =
          static_cast<std::size_t>(count.at(0));
      total_pairs += pairs_per_rank[static_cast<std::size_t>(src)];
    }
    network.finalize();
    TINGE_ENSURES(total_pairs ==
                  ranked.n_genes() * (ranked.n_genes() - 1) / 2);
    if (pairs_per_rank_out != nullptr)
      *pairs_per_rank_out = std::move(pairs_per_rank);
  } else {
    comm.send_vector(0, edges, kTagEdges);
    comm.send_vector(
        0, std::vector<std::uint64_t>{static_cast<std::uint64_t>(pairs)},
        kTagPairCount);
    network.finalize();
  }
  return network;
}

GeneNetwork cluster_compute_network(const BsplineMi& estimator,
                                    const RankedMatrix& ranked,
                                    double threshold, int ranks,
                                    const TingeConfig& config,
                                    ClusterStats* stats, TransportKind kind,
                                    const TransportOptions& options) {
  TINGE_EXPECTS(ranks >= 1);
  const Stopwatch watch;

  const std::unique_ptr<Cluster> cluster = make_cluster(kind, ranks, options);
  GeneNetwork network(ranked.gene_names());
  std::vector<std::size_t> pairs_per_rank;

  cluster->run([&](Comm& comm) {
    std::vector<std::size_t> pairs;
    GeneNetwork merged =
        ring_sweep(comm, estimator, ranked, threshold, config, &pairs);
    if (comm.rank() == 0) {  // only rank 0 touches the shared result
      network = std::move(merged);
      pairs_per_rank = std::move(pairs);
    }
  });

  std::size_t total_pairs = 0;
  for (const std::size_t count : pairs_per_rank) total_pairs += count;

  if (stats != nullptr) {
    stats->ranks = ranks;
    stats->transport = transport_kind_name(kind);
    stats->bytes_transferred = cluster->bytes_transferred();
    stats->messages = cluster->messages_sent();
    stats->bytes_per_rank.clear();
    for (const PeerTraffic& rank : cluster->rank_traffic())
      stats->bytes_per_rank.push_back(rank.bytes_sent);
    stats->pairs_per_rank = pairs_per_rank;
    stats->pairs_total = total_pairs;
    stats->seconds = watch.seconds();
  }
  return network;
}

}  // namespace tinge::cluster
