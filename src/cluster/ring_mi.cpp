#include "cluster/ring_mi.h"

#include <algorithm>

#include "cluster/faulty_transport.h"
#include "cluster/lease_mi.h"
#include "core/sweep.h"
#include "util/timer.h"

namespace tinge::cluster {

namespace {

/// max/min over the values that pass `active` (1.0 when fewer than two do,
/// so a run where work landed on a single rank reads "balanced" rather
/// than dividing by an idle rank's zero).
template <typename T, typename Pred>
double active_spread(const std::vector<T>& values, Pred active) {
  double lo = 0.0;
  double hi = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!active(i)) continue;
    const double v = static_cast<double>(values[i]);
    if (count == 0 || v < lo) lo = v;
    if (count == 0 || v > hi) hi = v;
    ++count;
  }
  if (count < 2 || lo <= 0.0) return 1.0;
  return hi / lo;
}

}  // namespace

double ClusterStats::imbalance() const {
  return active_spread(pairs_per_rank,
                       [&](std::size_t i) { return pairs_per_rank[i] > 0; });
}

double ClusterStats::imbalance_pre() const {
  // Per-rank compute rate: pairs per busy second, over ranks that did both.
  std::vector<double> rate(pairs_per_rank.size(), 0.0);
  for (std::size_t i = 0;
       i < pairs_per_rank.size() && i < busy_seconds_per_rank.size(); ++i)
    if (pairs_per_rank[i] > 0 && busy_seconds_per_rank[i] > 0.0)
      rate[i] = static_cast<double>(pairs_per_rank[i]) /
                busy_seconds_per_rank[i];
  return active_spread(rate, [&](std::size_t i) { return rate[i] > 0.0; });
}

double ClusterStats::imbalance_post() const {
  return active_spread(busy_seconds_per_rank, [&](std::size_t i) {
    return i < pairs_per_rank.size() && pairs_per_rank[i] > 0 &&
           busy_seconds_per_rank[i] > 0.0;
  });
}

int block_pair_owner(int a, int b, int ranks) {
  TINGE_EXPECTS(0 <= a && a <= b && b < ranks);
  if (a == b) return a;
  return (a + b) % 2 == 0 ? a : b;
}

namespace {

constexpr int kTagRing = 1;       // + step
constexpr int kTagEdges = 10000;
constexpr int kTagPairCount = 10001;

struct Block {
  std::uint32_t id = 0;
  std::size_t first_gene = 0;
  std::size_t gene_count = 0;
  std::vector<std::uint32_t> ranks;  // gene_count x m, row-major
  /// uint16 staged copy of `ranks` (config.stage_ranks and m <= 65536):
  /// the sweep streams these rows instead, halving the per-pair rank
  /// traffic. Local only — the wire format stays u32.
  std::vector<std::uint16_t> ranks16;
};

void stage_block(Block& block) {
  block.ranks16.resize(block.ranks.size());
  for (std::size_t i = 0; i < block.ranks.size(); ++i)
    block.ranks16[i] = static_cast<std::uint16_t>(block.ranks[i]);
}

std::size_t block_begin(std::size_t n, int ranks, int block) {
  const std::size_t per = (n + static_cast<std::size_t>(ranks) - 1) /
                          static_cast<std::size_t>(ranks);
  return std::min(n, per * static_cast<std::size_t>(block));
}

Block load_block(const RankedMatrix& ranked, int ranks, std::uint32_t id) {
  Block block;
  block.id = id;
  block.first_gene = block_begin(ranked.n_genes(), ranks, static_cast<int>(id));
  const std::size_t end =
      block_begin(ranked.n_genes(), ranks, static_cast<int>(id) + 1);
  block.gene_count = end - block.first_gene;
  const std::size_t m = ranked.n_samples();
  block.ranks.resize(block.gene_count * m);
  for (std::size_t g = 0; g < block.gene_count; ++g) {
    const auto row = ranked.ranks(block.first_gene + g);
    std::copy(row.begin(), row.end(), block.ranks.begin() + g * m);
  }
  return block;
}

// Wire format: [id, first_gene, gene_count] as u32 then the rank data.
std::vector<std::uint32_t> pack_block(const Block& block) {
  std::vector<std::uint32_t> wire;
  wire.reserve(3 + block.ranks.size());
  wire.push_back(block.id);
  wire.push_back(static_cast<std::uint32_t>(block.first_gene));
  wire.push_back(static_cast<std::uint32_t>(block.gene_count));
  wire.insert(wire.end(), block.ranks.begin(), block.ranks.end());
  return wire;
}

Block unpack_block(const std::vector<std::uint32_t>& wire) {
  TINGE_EXPECTS(wire.size() >= 3);
  Block block;
  block.id = wire[0];
  block.first_gene = wire[1];
  block.gene_count = wire[2];
  block.ranks.assign(wire.begin() + 3, wire.end());
  TINGE_ENSURES(block.gene_count == 0 ||
                block.ranks.size() % block.gene_count == 0);
  return block;
}

}  // namespace

GeneNetwork ring_sweep(Comm& comm, const PairStatistic& statistic,
                       const RankedMatrix& ranked, double threshold,
                       const TingeConfig& config,
                       std::vector<std::size_t>* pairs_per_rank_out,
                       const std::atomic<bool>* cancel,
                       std::vector<double>* busy_seconds_out) {
  TINGE_EXPECTS(statistic.n_samples() == ranked.n_samples());
  const std::size_t m = ranked.n_samples();
  const int r = comm.rank();
  const int p = comm.size();
  // The same panel plan as the single-chip engine: panel results are
  // bit-identical to per-pair evaluation (for B-spline, to joint_entropy
  // with the matching kernel) and independent of tile/panel grouping, so
  // the sharded network is byte-identical to the single-chip one even
  // though the rank-block tiles cut the pair space differently.
  const PanelPlan panels = statistic.plan(config);

  // uint16 staging mirrors the single-chip engine's (bit-identical — the
  // narrower indices select the same table rows).
  const bool staged =
      config.stage_ranks && StagedRankMatrix::can_stage(m);

  // "Local load" of the resident block (not communication).
  Block resident = load_block(ranked, p, static_cast<std::uint32_t>(r));
  if (staged) stage_block(resident);

  // One thread per rank, no pool (classic flat-MPI TINGe); edges accumulate
  // across all of this rank's run_sweep calls in one sink. A fault-plan
  // straggler (tile-delay-ms) sleeps inside tile compute via StraggleSink,
  // and busy-seconds accounting measures it — that is the imbalance the
  // lease balancer is benchmarked against.
  SweepOptions options;
  options.cancel = cancel;
  EdgeSink edge_sink(threshold, /*contexts=*/1);
  const double straggle_ms = straggle_delay_ms(comm.transport());
  StraggleSink<EdgeSink> sink(edge_sink, straggle_ms);
  std::size_t pairs = 0;
  double busy_seconds = 0.0;

  // Sweeps the upper-triangle/rectangle plan over the two blocks' buffers.
  // Rows are always the lower-gene-range block, so kernel arguments stay in
  // global gene order — the joint histogram is mathematically symmetric but
  // its float summation order is not.
  const auto sweep_blocks = [&](const SweepPlan& plan, const Block& lo,
                                const Block& hi) {
    const Stopwatch busy_watch;
    if (staged) {
      const auto row = [&](std::size_t g) {
        const Block& block = g >= hi.first_gene ? hi : lo;
        return block.ranks16.data() + (g - block.first_gene) * m;
      };
      pairs += run_sweep(plan, statistic, row, panels, /*pool=*/nullptr,
                         options, sink)[0]
                   .pairs;
    } else {
      const auto row = [&](std::size_t g) {
        const Block& block = g >= hi.first_gene ? hi : lo;
        return block.ranks.data() + (g - block.first_gene) * m;
      };
      pairs += run_sweep(plan, statistic, row, panels, /*pool=*/nullptr,
                         options, sink)[0]
                   .pairs;
    }
    busy_seconds += busy_watch.seconds();
  };

  // Diagonal (within-block) pairs.
  sweep_blocks(SweepPlan::triangular(resident.first_gene,
                                     resident.first_gene + resident.gene_count,
                                     config.tile_size),
               resident, resident);

  // Ring pipeline: forward the traveling block, compute owned pairs.
  Block traveling = resident;
  for (int step = 1; step < p; ++step) {
    const int next = (r + 1) % p;
    const int prev = (r - 1 + p) % p;
    comm.send_vector(next, pack_block(traveling), kTagRing + step);
    traveling =
        unpack_block(comm.recv_vector<std::uint32_t>(prev, kTagRing + step));
    if (staged) stage_block(traveling);
    const int a = std::min(r, static_cast<int>(traveling.id));
    const int b = std::max(r, static_cast<int>(traveling.id));
    if (a != b && block_pair_owner(a, b, p) == r) {
      const Block& lo =
          resident.first_gene < traveling.first_gene ? resident : traveling;
      const Block& hi =
          resident.first_gene < traveling.first_gene ? traveling : resident;
      sweep_blocks(
          SweepPlan::rectangular(lo.first_gene, lo.first_gene + lo.gene_count,
                                 hi.first_gene, hi.first_gene + hi.gene_count,
                                 config.tile_size),
          lo, hi);
    }
  }
  std::vector<Edge> edges = edge_sink.take_all();

  // Results to rank 0; rank 0 merges in rank order (0, 1, ..., p-1) so the
  // edge list is deterministic regardless of arrival order. The count
  // message carries {pairs, busy_us} so rank 0 can report wall imbalance,
  // not just pair imbalance.
  GeneNetwork network(ranked.gene_names());
  if (r == 0) {
    std::vector<std::size_t> pairs_per_rank(static_cast<std::size_t>(p), 0);
    std::vector<double> busy_per_rank(static_cast<std::size_t>(p), 0.0);
    network.add_edges(edges);
    pairs_per_rank[0] = pairs;
    busy_per_rank[0] = busy_seconds;
    std::size_t total_pairs = pairs;
    for (int src = 1; src < p; ++src) {
      network.add_edges(comm.recv_vector<Edge>(src, kTagEdges));
      const auto count = comm.recv_vector<std::uint64_t>(src, kTagPairCount);
      pairs_per_rank[static_cast<std::size_t>(src)] =
          static_cast<std::size_t>(count.at(0));
      busy_per_rank[static_cast<std::size_t>(src)] =
          static_cast<double>(count.at(1)) * 1e-6;
      total_pairs += pairs_per_rank[static_cast<std::size_t>(src)];
    }
    network.finalize();
    TINGE_ENSURES(total_pairs ==
                  ranked.n_genes() * (ranked.n_genes() - 1) / 2);
    if (pairs_per_rank_out != nullptr)
      *pairs_per_rank_out = std::move(pairs_per_rank);
    if (busy_seconds_out != nullptr) *busy_seconds_out = std::move(busy_per_rank);
  } else {
    comm.send_vector(0, edges, kTagEdges);
    comm.send_vector(
        0,
        std::vector<std::uint64_t>{
            static_cast<std::uint64_t>(pairs),
            static_cast<std::uint64_t>(busy_seconds * 1e6)},
        kTagPairCount);
    network.finalize();
  }
  return network;
}

GeneNetwork cluster_compute_network(const PairStatistic& statistic,
                                    const RankedMatrix& ranked,
                                    double threshold, int ranks,
                                    const TingeConfig& config,
                                    ClusterStats* stats, TransportKind kind,
                                    const TransportOptions& options) {
  TINGE_EXPECTS(ranks >= 1);
  const Stopwatch watch;

  const std::unique_ptr<Cluster> cluster = make_cluster(kind, ranks, options);
  GeneNetwork network(ranked.gene_names());
  std::vector<std::size_t> pairs_per_rank;
  std::vector<double> busy_per_rank;
  LeaseSweepReport lease_report;
  const bool lease = config.cluster_balance == "lease";

  cluster->run([&](Comm& comm) {
    if (lease) {
      LeaseSweepReport report;
      GeneNetwork merged =
          lease_sweep(comm, statistic, ranked, threshold, config, &report);
      if (comm.rank() == 0) {  // only rank 0 touches the shared result
        network = std::move(merged);
        pairs_per_rank = std::move(report.pairs_per_rank);
        busy_per_rank = std::move(report.busy_seconds_per_rank);
        report.pairs_per_rank.clear();
        report.busy_seconds_per_rank.clear();
        lease_report = std::move(report);
      }
      return;
    }
    std::vector<std::size_t> pairs;
    std::vector<double> busy;
    GeneNetwork merged = ring_sweep(comm, statistic, ranked, threshold, config,
                                    &pairs, /*cancel=*/nullptr, &busy);
    if (comm.rank() == 0) {
      network = std::move(merged);
      pairs_per_rank = std::move(pairs);
      busy_per_rank = std::move(busy);
    }
  });

  std::size_t total_pairs = 0;
  for (const std::size_t count : pairs_per_rank) total_pairs += count;

  if (stats != nullptr) {
    stats->ranks = ranks;
    stats->transport = transport_kind_name(kind);
    stats->balance = lease ? "lease" : "static";
    stats->bytes_transferred = cluster->bytes_transferred();
    stats->messages = cluster->messages_sent();
    stats->bytes_per_rank.clear();
    for (const PeerTraffic& rank : cluster->rank_traffic())
      stats->bytes_per_rank.push_back(rank.bytes_sent);
    stats->pairs_per_rank = pairs_per_rank;
    stats->busy_seconds_per_rank = busy_per_rank;
    stats->pairs_total = total_pairs;
    stats->seconds = watch.seconds();
    stats->leases_granted = lease_report.leases_granted;
    stats->steals = lease_report.steals;
    stats->tiles_reclaimed = lease_report.tiles_reclaimed;
    stats->dead_ranks = lease_report.dead_ranks;
  }
  return network;
}

}  // namespace tinge::cluster
