#include "cluster/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "cluster/framing.h"
#include "cluster/launcher.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge::cluster {

namespace {

// Internal mailbox tags for control frames; the public API requires
// tag >= 0, so these can never collide with algorithm traffic.
constexpr int kTagBarrierArrive = -1;
constexpr int kTagBarrierRelease = -2;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(
      strprintf("%s: %s", what.c_str(), std::strerror(errno)));
}

std::string port_file_path(const std::string& dir, int rank) {
  return strprintf("%s/rank%d.port", dir.c_str(), rank);
}

/// Atomic publish: write-to-temp + rename, so a polling peer never reads
/// a half-written port number. write_port_file verifies the write, so a
/// full disk fails here with the real cause instead of renaming an empty
/// file into place and letting peers spin until their connect timeout.
void publish_port(const std::string& dir, int rank, int port,
                  std::uint64_t nonce) {
  const std::string path = port_file_path(dir, rank);
  const std::string tmp = path + ".tmp";
  try {
    write_port_file(tmp, port, nonce);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("tcp rendezvous: rename " + path);
}

}  // namespace

void write_port_file(const std::string& path, int port, std::uint64_t nonce) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) throw_errno("tcp rendezvous: open " + path);
  const bool wrote =
      std::fprintf(file, "%d %llu\n", port,
                   static_cast<unsigned long long>(nonce)) > 0 &&
      std::fflush(file) == 0;
  const int saved_errno = errno;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    errno = wrote ? errno : saved_errno;
    throw_errno("tcp rendezvous: write " + path);
  }
}

int read_port_file(const std::string& path, std::uint64_t expected_nonce) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return -1;
  int port = -1;
  unsigned long long nonce = 0;
  const int fields = std::fscanf(file, "%d %llu", &port, &nonce);
  std::fclose(file);
  if (fields < 1) return -1;
  // A file stamped by a different run (or an unstamped pre-nonce file when
  // a nonce is required) is debris from a crashed prior mesh — its port is
  // dead or, worse, now owned by an unrelated process. Never dial it.
  if (expected_nonce != 0 &&
      (fields < 2 || nonce != static_cast<unsigned long long>(expected_nonce)))
    return -1;
  return port;
}

TcpTransport::TcpTransport(const TransportOptions& options)
    : rank_(options.rank),
      size_(options.size),
      default_recv_timeout_(options.recv_timeout_seconds),
      peers_(static_cast<std::size_t>(options.size)) {
  TINGE_EXPECTS(size_ >= 1);
  TINGE_EXPECTS(rank_ >= 0 && rank_ < size_);
  // MSG_NOSIGNAL covers send(); this covers everything else (and any
  // platform where the flag is advisory). A client that vanishes mid-write
  // must surface as an error, never as a process-killing SIGPIPE.
  ignore_sigpipe();
  for (Peer& peer : peers_) peer.send_mutex = std::make_unique<std::mutex>();
  if (size_ > 1 && options.rendezvous_dir.empty())
    throw std::invalid_argument(
        "TcpTransport: multi-rank mesh needs options.rendezvous_dir");
  if (::pipe(wake_pipe_) != 0) throw_errno("tcp transport: pipe");
  try {
    if (size_ > 1) {
      rendezvous(options);
      receiver_ = std::thread([this] { receiver_loop(); });
    }
  } catch (...) {
    close_all();
    throw;
  }
}

void TcpTransport::rendezvous(const TransportOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.connect_timeout_seconds));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("tcp rendezvous: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: no fixed ports, no collisions
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("tcp rendezvous: bind");
  if (::listen(listen_fd_, size_) != 0) throw_errno("tcp rendezvous: listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0)
    throw_errno("tcp rendezvous: getsockname");
  publish_port(options.rendezvous_dir, rank_, ntohs(addr.sin_port),
               options.run_nonce);

  // Dial every lower rank, polling for its port file and retrying refused
  // connections with exponential backoff — a worker that starts seconds
  // late (cold process spawn, slow filesystem) still joins the mesh.
  for (int peer = 0; peer < rank_; ++peer) {
    double backoff_ms = 5.0;
    int fd = -1;
    while (fd < 0) {
      const int port =
          read_port_file(port_file_path(options.rendezvous_dir, peer),
                         options.run_nonce);
      if (port > 0) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("tcp rendezvous: socket");
        sockaddr_in peer_addr{};
        peer_addr.sin_family = AF_INET;
        peer_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        peer_addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&peer_addr),
                      sizeof(peer_addr)) != 0) {
          ::close(fd);
          fd = -1;
        }
      }
      if (fd < 0) {
        if (std::chrono::steady_clock::now() > deadline)
          throw std::runtime_error(strprintf(
              "tcp rendezvous: rank %d timed out dialing rank %d", rank_,
              peer));
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2.0, 200.0);
      }
    }
    // Nagle coalescing holds a small frame back ~40 ms waiting for the
    // delayed ACK of the previous one — fatal for the lease protocol,
    // whose request/grant messages are a few bytes each. Every frame here
    // is already a complete message, so flush eagerly.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    FrameHeader hello;
    hello.kind = kFrameHello;
    hello.tag = rank_;
    write_full(fd, &hello, sizeof(hello));
    peers_[static_cast<std::size_t>(peer)].fd = fd;
    peers_[static_cast<std::size_t>(peer)].open = true;
  }

  // Accept one connection from every higher rank; its hello frame says
  // which one. A dialed-but-unfinished connection sits in the listen
  // backlog, so dial/accept ordering across ranks cannot deadlock.
  int expected = size_ - 1 - rank_;
  while (expected > 0) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0)
      throw std::runtime_error(strprintf(
          "tcp rendezvous: rank %d timed out waiting for %d peer(s)", rank_,
          expected));
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                            remaining.count(), 1000)));
    if (ready < 0 && errno != EINTR) throw_errno("tcp rendezvous: poll");
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw_errno("tcp rendezvous: accept");
    }
    FrameHeader hello{};
    if (!read_full(fd, &hello, sizeof(hello)) ||
        hello.magic != kFrameMagic || hello.kind != kFrameHello ||
        hello.tag <= rank_ || hello.tag >= size_) {
      ::close(fd);  // stray connection; not one of our peers
      continue;
    }
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Peer& peer = peers_[static_cast<std::size_t>(hello.tag)];
    peer.fd = fd;
    peer.open = true;
    --expected;
  }
  ::close(listen_fd_);  // mesh complete; nobody else may join
  listen_fd_ = -1;
}

void TcpTransport::receiver_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fd_rank.push_back(-1);
    {
      std::lock_guard<std::mutex> lock(mailbox_mutex_);
      for (int peer = 0; peer < size_; ++peer) {
        if (peer == rank_) continue;
        const Peer& entry = peers_[static_cast<std::size_t>(peer)];
        if (!entry.open) continue;
        fds.push_back(pollfd{entry.fd, POLLIN, 0});
        fd_rank.push_back(peer);
      }
    }
    if (fds.size() == 1) break;  // every peer hung up; nothing to drain
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) {
      char drained[16];
      [[maybe_unused]] const ssize_t n =
          ::read(wake_pipe_[0], drained, sizeof(drained));
      continue;  // shutdown request; re-check stopping_
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const int src = fd_rank[i];
      FrameHeader header{};
      Message message;
      bool ok = read_full(fds[i].fd, &header, sizeof(header)) &&
                header.magic == kFrameMagic;
      if (ok) {
        message.src = src;
        switch (header.kind) {
          case kFrameData: message.tag = header.tag; break;
          case kFrameBarrierArrive: message.tag = kTagBarrierArrive; break;
          case kFrameBarrierRelease: message.tag = kTagBarrierRelease; break;
          default: ok = false; break;
        }
      }
      if (ok && header.bytes > 0) {
        message.payload.resize(header.bytes);
        ok = read_full(fds[i].fd, message.payload.data(), header.bytes);
      }
      {
        std::lock_guard<std::mutex> lock(mailbox_mutex_);
        if (ok) {
          mailbox_.push_back(std::move(message));
        } else {
          // Peer hung up (or sent garbage): stop polling it. The fd stays
          // open until our destructor so a concurrent send() cannot race a
          // reused descriptor.
          peers_[static_cast<std::size_t>(src)].open = false;
        }
      }
      mailbox_cv_.notify_all();
    }
  }
  // recv() waiters must observe the roster change and fail instead of
  // sleeping forever once nothing can arrive anymore.
  {
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    for (int peer = 0; peer < size_; ++peer)
      if (peer != rank_) peers_[static_cast<std::size_t>(peer)].open = false;
  }
  mailbox_cv_.notify_all();
}

void TcpTransport::send_frame(int dest, std::uint32_t frame_kind, int tag,
                              const void* data, std::size_t bytes) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    const Peer& peer = peers_[static_cast<std::size_t>(dest)];
    if (!peer.open)
      throw PeerFailureError(
          strprintf("tcp transport: rank %d sending to disconnected rank %d",
                    rank_, dest),
          rank_, dest);
    fd = peer.fd;
  }
  try {
    // One frame = one critical section: header and payload must hit the
    // stream back-to-back or a concurrent sender's bytes land mid-frame.
    std::lock_guard<std::mutex> send_lock(
        *peers_[static_cast<std::size_t>(dest)].send_mutex);
    write_frame(fd, frame_kind, tag, data, bytes);
  } catch (const SocketError& error) {
    // The peer vanished mid-conversation (EPIPE/ECONNRESET under
    // MSG_NOSIGNAL — without which this would have been a process-killing
    // SIGPIPE). Retire the connection so later sends and recv waiters fail
    // fast, and surface it in the transport's own failure taxonomy.
    {
      std::lock_guard<std::mutex> lock(mailbox_mutex_);
      peers_[static_cast<std::size_t>(dest)].open = false;
    }
    mailbox_cv_.notify_all();
    throw PeerFailureError(
        strprintf("tcp transport: rank %d send to rank %d failed (%s)",
                  rank_, dest, error.what()),
        rank_, dest);
  }
}

void TcpTransport::send(int dest, const void* data, std::size_t bytes,
                        int tag) {
  TINGE_EXPECTS(dest >= 0 && dest < size_);
  TINGE_EXPECTS(tag >= 0);
  if (dest == rank_) {
    Message message;
    message.src = rank_;
    message.tag = tag;
    message.payload.resize(bytes);
    if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);
    {
      std::lock_guard<std::mutex> lock(mailbox_mutex_);
      mailbox_.push_back(std::move(message));
      Peer& self = peers_[static_cast<std::size_t>(rank_)];
      self.traffic.bytes_sent += bytes;
      ++self.traffic.messages_sent;
    }
    mailbox_cv_.notify_all();
    return;
  }
  send_frame(dest, kFrameData, tag, data, bytes);
  std::lock_guard<std::mutex> lock(mailbox_mutex_);
  Peer& peer = peers_[static_cast<std::size_t>(dest)];
  peer.traffic.bytes_sent += bytes;
  ++peer.traffic.messages_sent;
}

std::vector<std::byte> TcpTransport::recv(int src, int tag) {
  return recv(src, tag, default_recv_timeout_);
}

std::vector<std::byte> TcpTransport::recv(int src, int tag,
                                          double timeout_seconds) {
  TINGE_EXPECTS(src >= 0 && src < size_);
  TINGE_EXPECTS(tag >= 0);
  return wait_for(src, tag, /*count=*/true, timeout_seconds);
}

std::vector<std::byte> TcpTransport::wait_for(int src, int tag, bool count,
                                              double timeout_seconds) {
  const bool deadline_armed = timeout_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_armed ? timeout_seconds
                                                       : 0.0));
  std::unique_lock<std::mutex> lock(mailbox_mutex_);
  while (true) {
    // Match by (src, tag), FIFO within a match — identical semantics to
    // the in-process mailbox, interleaved tags included.
    for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        std::vector<std::byte> payload = std::move(it->payload);
        mailbox_.erase(it);
        if (count) {
          Peer& peer = peers_[static_cast<std::size_t>(src)];
          peer.traffic.bytes_received += payload.size();
          ++peer.traffic.messages_received;
        }
        return payload;
      }
    }
    if (src == rank_)
      throw std::runtime_error(
          "tcp transport: self-recv with no matching queued self-message "
          "would deadlock");
    if (!peers_[static_cast<std::size_t>(src)].open)
      throw PeerFailureError(
          strprintf("tcp transport: rank %d's connection to rank %d closed "
                    "with no message matching tag %d",
                    rank_, src, tag),
          rank_, src);
    if (!deadline_armed) {
      mailbox_cv_.wait(lock);
    } else if (mailbox_cv_.wait_until(lock, deadline) ==
               std::cv_status::timeout) {
      throw TimeoutError(
          strprintf("tcp transport: rank %d timed out after %.1fs waiting "
                    "for tag %d from rank %d (peer alive but silent)",
                    rank_, timeout_seconds, tag, src),
          rank_, src);
    }
  }
}

std::optional<std::vector<std::byte>> TcpTransport::try_recv(int src,
                                                             int tag) {
  TINGE_EXPECTS(src >= 0 && src < size_);
  TINGE_EXPECTS(tag >= 0);
  std::lock_guard<std::mutex> lock(mailbox_mutex_);
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      std::vector<std::byte> payload = std::move(it->payload);
      mailbox_.erase(it);
      Peer& peer = peers_[static_cast<std::size_t>(src)];
      peer.traffic.bytes_received += payload.size();
      ++peer.traffic.messages_received;
      return payload;
    }
  }
  // Match first, then liveness — a closed peer's already-queued messages
  // drain normally; an empty probe on a closed connection can never
  // complete, so surface the failure now instead of on some later recv.
  if (src != rank_ && !peers_[static_cast<std::size_t>(src)].open)
    throw PeerFailureError(
        strprintf("tcp transport: rank %d's connection to rank %d closed "
                  "with no message matching tag %d",
                  rank_, src, tag),
        rank_, src);
  return std::nullopt;
}

void TcpTransport::barrier() {
  if (size_ == 1) return;
  // Flat gather-to-0 / release-from-0 over control frames. FIFO matching
  // per (src, tag) makes back-to-back barriers reusable without
  // generation counters. The default recv deadline applies to each wait,
  // so a rank that never arrives fails the barrier instead of hanging it.
  if (rank_ == 0) {
    for (int src = 1; src < size_; ++src)
      wait_for(src, kTagBarrierArrive, /*count=*/false,
               default_recv_timeout_);
    for (int dest = 1; dest < size_; ++dest)
      send_frame(dest, kFrameBarrierRelease, 0, nullptr, 0);
  } else {
    send_frame(0, kFrameBarrierArrive, 0, nullptr, 0);
    wait_for(0, kTagBarrierRelease, /*count=*/false, default_recv_timeout_);
  }
}

std::vector<PeerTraffic> TcpTransport::peer_traffic() const {
  std::lock_guard<std::mutex> lock(mailbox_mutex_);
  std::vector<PeerTraffic> traffic;
  traffic.reserve(peers_.size());
  for (const Peer& peer : peers_) traffic.push_back(peer.traffic);
  return traffic;
}

void TcpTransport::close_all() {
  for (Peer& peer : peers_) {
    if (peer.fd >= 0) {
      ::close(peer.fd);
      peer.fd = -1;
    }
    peer.open = false;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int end = 0; end < 2; ++end) {
    if (wake_pipe_[end] >= 0) {
      ::close(wake_pipe_[end]);
      wake_pipe_[end] = -1;
    }
  }
}

TcpTransport::~TcpTransport() {
  stopping_.store(true, std::memory_order_release);
  {
    // Unblock a receiver stuck mid-frame: shutdown (not close — the fd
    // must stay valid under the receiver) makes its reads return.
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    for (int peer = 0; peer < size_; ++peer) {
      if (peer == rank_) continue;
      const Peer& entry = peers_[static_cast<std::size_t>(peer)];
      if (entry.fd >= 0) ::shutdown(entry.fd, SHUT_RDWR);
    }
  }
  if (wake_pipe_[1] >= 0) {
    const char wake = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &wake, 1);
  }
  if (receiver_.joinable()) receiver_.join();
  close_all();
}

namespace {

/// N rank-threads in this process, each with a real TcpTransport endpoint.
class LoopbackTcpCluster final : public Cluster {
 public:
  LoopbackTcpCluster(int size, TransportOptions options)
      : size_(size), options_(std::move(options)) {}

  int size() const override { return size_; }
  TransportKind kind() const override { return TransportKind::Tcp; }

  void run(const std::function<void(Comm&)>& body) override {
    const bool own_dir = options_.rendezvous_dir.empty();
    const std::string dir =
        own_dir ? make_rendezvous_dir() : options_.rendezvous_dir;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(size_));
    std::mutex state_mutex;
    std::exception_ptr first_error;
    std::vector<PeerTraffic> traffic(static_cast<std::size_t>(size_));
    const Stopwatch watch;
    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([&, r, dir] {
        try {
          TransportOptions options = options_;
          options.rank = r;
          options.size = size_;
          options.rendezvous_dir = dir;
          TcpTransport transport(options);
          Comm comm(transport);
          try {
            body(comm);
          } catch (...) {
            std::lock_guard<std::mutex> lock(state_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          // Snapshot before the endpoint closes; destruction then unblocks
          // any peer still waiting on this rank (their recv throws).
          PeerTraffic total;
          for (const PeerTraffic& peer : transport.peer_traffic())
            total += peer;
          std::lock_guard<std::mutex> lock(state_mutex);
          traffic[static_cast<std::size_t>(r)] = total;
        } catch (...) {
          std::lock_guard<std::mutex> lock(state_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (own_dir) remove_rendezvous_dir(dir);

    std::uint64_t run_bytes = 0, run_messages = 0;
    for (const PeerTraffic& rank : traffic) {
      run_bytes += rank.bytes_sent;
      run_messages += rank.messages_sent;
    }
    bytes_transferred_ += run_bytes;
    messages_sent_ += run_messages;
    rank_traffic_ = std::move(traffic);
    publish_cluster_run_metrics(TransportKind::Tcp, size_, run_bytes,
                                run_messages, watch.seconds());
    if (first_error) std::rethrow_exception(first_error);
  }

  std::uint64_t bytes_transferred() const override {
    return bytes_transferred_;
  }
  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::vector<PeerTraffic> rank_traffic() const override {
    return rank_traffic_;
  }

 private:
  int size_;
  TransportOptions options_;
  std::uint64_t bytes_transferred_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::vector<PeerTraffic> rank_traffic_;
};

}  // namespace

std::unique_ptr<Cluster> make_loopback_tcp_cluster(
    int size, const TransportOptions& options) {
  TINGE_EXPECTS(size >= 1);
  return std::make_unique<LoopbackTcpCluster>(size, options);
}

}  // namespace tinge::cluster
