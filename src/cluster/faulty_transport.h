// Fault injection for the cluster runtime: a decorator over any Transport
// backend that delays, drops, or kills according to a deterministic plan.
//
// This is the test harness for the fault-tolerance layer — recv deadlines,
// dead-peer detection, launcher failure attribution and checkpoint resume
// are all exercised by wrapping a real backend in a FaultyTransport and
// letting the injected fault play out. The plan is seeded and counted in
// data operations (send/recv calls), not wall-clock, so a given plan kills
// the same rank at the same point of the pipeline on every run.
//
// Two kill modes cover the two execution shapes:
//   * Throw — the injected fault raises InjectedFault out of the rank body;
//     right for in-process rank-thread clusters, where survivors then see
//     PeerFailureError through the done-roster.
//   * Exit — ::_exit(exit_code), no unwinding, no atexit; right for real
//     worker processes, where the kernel closes the sockets and survivors
//     see PeerFailureError through the closed connection.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "cluster/transport.h"

namespace tinge::cluster {

/// The exception a KillMode::Throw fault raises out of the faulted rank.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(const std::string& what, int rank)
      : std::runtime_error(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

enum class KillMode {
  Throw,  ///< raise InjectedFault from the faulted data op
  Exit,   ///< ::_exit(exit_code): simulated process crash, no unwinding
};

/// A deterministic fault schedule. Counts are in *data operations* — each
/// send() or recv() on the wrapped endpoint is one op — so the same plan
/// hits the same pipeline point every run regardless of timing.
struct FaultPlan {
  /// Rank the plan applies to; -1 applies it to every wrapped endpoint.
  int rank = -1;
  /// Fixed sleep before every data op, plus a deterministic per-op jitter
  /// drawn uniformly from [0, jitter_ms) using `seed`.
  double delay_ms = 0.0;
  double jitter_ms = 0.0;
  /// Per-tile *compute* sleep on the armed rank: the straggler fault. The
  /// transport cannot slow computation by delaying messages (the ring
  /// couples wall time across ranks), so the sweeps query this through
  /// tile_delay_ms() and sleep inside tile compute instead.
  double tile_delay_ms = 0.0;
  /// After this many sends, further sends are silently swallowed (the
  /// classic lost-message fault; peers block until their recv deadline).
  /// < 0 disables.
  long long drop_after = -1;
  /// Kill (per kill_mode) when the data-op count reaches this value.
  /// < 0 disables.
  long long kill_after = -1;
  /// Alternative to kill_after: kill this far through the expected op
  /// count of a sharded ring run — resolve with resolve_kill_fraction()
  /// once the cluster size is known. < 0 disables.
  double kill_at_fraction = -1.0;
  KillMode kill_mode = KillMode::Throw;
  /// Exit status for KillMode::Exit. Distinct from the worker's real exit
  /// codes so the launcher report shows the kill was the injected one.
  int exit_code = 40;
  std::uint64_t seed = 0x7461636974;
};

/// Parses a comma-separated spec like
///   "rank=1,kill-after=4,mode=exit"
///   "rank=2,delay-ms=5,jitter-ms=3,seed=99"
///   "rank=1,kill-at=0.5,mode=throw"
///   "rank=1,tile-delay-ms=20"
/// Keys: rank, delay-ms, jitter-ms, tile-delay-ms, drop-after, kill-after,
/// kill-at, mode (throw|exit), exit-code, seed. Throws
/// std::invalid_argument on an unknown key or malformed value so CLI typos
/// fail loudly.
FaultPlan parse_fault_plan(const std::string& spec);

/// Resolves plan.kill_at_fraction into plan.kill_after using the expected
/// per-rank data-op count of the sharded ring pipeline at `cluster_size`
/// ranks (broadcast prologue + 2(P-1) ring ops + edge gather). No-op when
/// kill_at_fraction < 0 or kill_after is already set.
void resolve_kill_fraction(FaultPlan& plan, int cluster_size);

/// The decorator: forwards everything to `inner`, injecting the plan's
/// faults on the way. Non-owning — `inner` must outlive it. The plan is
/// inert when plan.rank names a different rank than inner.rank().
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, const FaultPlan& plan);

  int rank() const override { return inner_->rank(); }
  int size() const override { return inner_->size(); }
  TransportKind kind() const override { return inner_->kind(); }

  void send(int dest, const void* data, std::size_t bytes, int tag) override;
  std::vector<std::byte> recv(int src, int tag) override;
  std::vector<std::byte> recv(int src, int tag,
                              double timeout_seconds) override;
  std::optional<std::vector<std::byte>> try_recv(int src, int tag) override;
  void barrier() override;

  std::vector<PeerTraffic> peer_traffic() const override {
    return inner_->peer_traffic();
  }

  /// True when the plan applies to this endpoint's rank.
  bool armed() const { return armed_; }
  /// The per-tile compute sleep this endpoint should suffer (0 when the
  /// plan targets a different rank). Sweeps dynamic_cast the transport to
  /// find this — the straggler fault lives in compute, not messaging.
  double tile_delay_ms() const { return armed_ ? plan_.tile_delay_ms : 0.0; }
  /// Data ops observed so far (sends + recvs), fault-armed or not.
  long long ops() const { return ops_; }
  /// Sends swallowed by the drop fault so far.
  long long dropped_sends() const { return dropped_sends_; }

 private:
  void before_op();

  Transport* inner_;
  FaultPlan plan_;
  bool armed_ = false;
  long long ops_ = 0;
  long long sends_ = 0;
  long long dropped_sends_ = 0;
};

/// The per-tile compute straggle the fault plan imposes on this endpoint:
/// the plan's tile_delay_ms when `transport` is a FaultyTransport armed on
/// its rank, 0 otherwise. How the sweeps locate the straggler fault
/// without depending on the decorator being present.
double straggle_delay_ms(const Transport& transport);

/// Sink decorator that sleeps before every tile — the compute-side
/// straggler fault. Wraps any sweep sink; inert at delay 0.
template <typename Inner>
class StraggleSink {
 public:
  StraggleSink(Inner& inner, double delay_ms)
      : inner_(&inner), delay_ms_(delay_ms) {}

  void tile_begin(int tid, std::size_t t) {
    if (delay_ms_ > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms_));
    inner_->tile_begin(tid, t);
  }
  void pair(int tid, std::size_t i, std::size_t j, double mi) {
    inner_->pair(tid, i, j, mi);
  }
  void tile_end(int tid, std::size_t t, int team_width) {
    inner_->tile_end(tid, t, team_width);
  }

 private:
  Inner* inner_;
  double delay_ms_;
};

}  // namespace tinge::cluster
