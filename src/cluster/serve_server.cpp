#include "cluster/serve_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <exception>
#include <future>
#include <unordered_set>
#include <utility>

#include "cluster/framing.h"
#include "cluster/tcp_transport.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "parallel/topology.h"
#include "preprocess/filter.h"
#include "util/contracts.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge::cluster {

namespace {

/// Serve requests are small (a pair list, a gene set); anything bigger is a
/// confused or hostile client, not a query.
constexpr std::size_t kMaxRequestBytes = std::size_t(1) << 26;

void throw_socket_errno(const char* what) {
  throw std::runtime_error(strprintf("serve: %s failed: %s", what,
                                     std::strerror(errno)));
}

}  // namespace

// ---------------------------------------------------------------------------
// ServeState

ServeState::ServeState(ExpressionMatrix&& expression,
                       const TingeConfig& config, const ServeOptions& options)
    : config_(config),
      working_(std::move(expression)),
      cache_(options.cache_bytes),
      dataset_id_(options.dataset_id) {
  if (options.threads > 0) config_.threads = options.threads;
  config_.validate();

  // The build below runs the single-process pipeline stages in exactly the
  // order sharded_build's p == 1 path does — impute, filter, rank,
  // statistic, null, threshold, sweep — so everything the daemon serves is
  // bit-identical to what the batch pipeline would have written.
  impute_missing_with_median(working_);
  {
    FilterResult filtered = filter_genes(working_, config_.filter);
    TINGE_EXPECTS(filtered.matrix.n_genes() >= 2);
    working_ = std::move(filtered.matrix);
  }
  ranked_ = RankedMatrix(working_);

  const int pool_threads = config_.threads > 0
                               ? config_.threads
                               : par::detect_host_topology().total_threads();
  pool_ = std::make_unique<par::ThreadPool>(pool_threads);

  EstimatorSlot primary;
  primary.statistic = make_pair_statistic(config_, ranked_, &working_);

  null_ = std::make_shared<EmpiricalDistribution>(build_null_distribution(
      *primary.statistic, config_.permutations, config_.seed, *pool_,
      config_.threads));
  threshold_ = threshold_for_alpha(*null_, config_.alpha);
  obs::MetricsRegistry::global().gauge("null.threshold").set(threshold_);

  const MiEngine engine(*primary.statistic, ranked_);
  if (config_.checkpoint_path.empty()) {
    network_ =
        engine.compute_network(threshold_, config_, *pool_, &build_stats_);
  } else {
    // keep_checkpoint: the completed journal stays behind, so the next
    // daemon start replays it (build_stats_.tiles_resumed == tiles) instead
    // of recomputing the triangle.
    network_ = engine.compute_network_checkpointed(
        threshold_, config_, *pool_, config_.checkpoint_path, &build_stats_,
        {}, /*keep_checkpoint=*/true);
  }
  adjacency_ = std::make_unique<Adjacency>(network_);

  primary.engine = std::make_unique<MiQueryEngine>(
      *primary.statistic, ranked_, config_, pool_.get(), cache_, dataset_id_);
  estimators_.emplace(config_.estimator, std::move(primary));
}

MiQueryEngine& ServeState::query_engine(EstimatorKind estimator) {
  std::lock_guard<std::mutex> lock(estimators_mutex_);
  auto it = estimators_.find(estimator);
  if (it == estimators_.end()) {
    TingeConfig config = config_;
    config.estimator = estimator;
    EstimatorSlot slot;
    slot.statistic = make_pair_statistic(config, ranked_, &working_);
    slot.engine = std::make_unique<MiQueryEngine>(
        *slot.statistic, ranked_, config, pool_.get(), cache_, dataset_id_);
    it = estimators_.emplace(estimator, std::move(slot)).first;
  }
  return *it->second.engine;
}

EngineStats ServeState::run_sweep_job(
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::lock_guard<std::mutex> job_lock(sweep_job_mutex_);
  const PairStatistic* statistic = nullptr;
  {
    std::lock_guard<std::mutex> lock(estimators_mutex_);
    statistic = estimators_.at(config_.estimator).statistic.get();
  }
  const MiEngine engine(*statistic, ranked_);
  EngineStats stats;
  if (config_.checkpoint_path.empty()) {
    // The plain engine has no per-tile callback; report the endpoints so a
    // client still sees the job start and finish.
    if (progress) progress(0, 1);
    engine.compute_network(threshold_, config_, *pool_, &stats);
    if (progress) progress(1, 1);
  } else {
    engine.compute_network_checkpointed(threshold_, config_, *pool_,
                                        config_.checkpoint_path, &stats,
                                        progress, /*keep_checkpoint=*/true);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// PairBatcher

struct PairBatcher::Pending {
  EstimatorKind estimator;
  std::vector<GenePair> pairs;
  std::promise<std::vector<double>> promise;
};

PairBatcher::PairBatcher(ServeState& state, double flush_deadline_ms)
    : state_(state),
      flush_deadline_(std::chrono::microseconds(
          static_cast<long long>(std::max(0.0, flush_deadline_ms) * 1e3))),
      thread_([this] { worker(); }) {}

PairBatcher::~PairBatcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queued_.notify_all();
  thread_.join();
}

std::vector<double> PairBatcher::query(EstimatorKind estimator,
                                       std::vector<GenePair> pairs) {
  auto pending = std::make_shared<Pending>();
  pending->estimator = estimator;
  pending->pairs = std::move(pairs);
  std::future<std::vector<double>> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_)
      throw std::runtime_error("serve: pair batcher is shutting down");
    queue_.push_back(std::move(pending));
  }
  queued_.notify_all();
  return future.get();
}

void PairBatcher::worker() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queued_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      // The batch window: the first queued query opens it, everything that
      // arrives before the flush deadline rides along.
      if (flush_deadline_.count() > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() + flush_deadline_;
        queued_.wait_until(lock, deadline, [&] { return stop_; });
      }
      batch.assign(queue_.begin(), queue_.end());
      queue_.clear();
    }
    if (batch.empty()) continue;
    batches_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global().counter("serve.batcher.flushes").add(1);

    // Group by estimator: one planner invocation per estimator answers the
    // whole group, so pairs from different clients share tiles and sweeps.
    std::map<EstimatorKind, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < batch.size(); ++i)
      groups[batch[i]->estimator].push_back(i);
    for (const auto& [estimator, members] : groups) {
      std::vector<GenePair> pairs;
      for (const std::size_t i : members)
        pairs.insert(pairs.end(), batch[i]->pairs.begin(),
                     batch[i]->pairs.end());
      try {
        MiQueryEngine& engine = state_.query_engine(estimator);
        const std::vector<double> values = engine.pair_values(pairs);
        std::size_t cursor = 0;
        for (const std::size_t i : members) {
          const std::size_t n = batch[i]->pairs.size();
          batch[i]->promise.set_value(std::vector<double>(
              values.begin() + cursor, values.begin() + cursor + n));
          cursor += n;
        }
      } catch (...) {
        // One bad pair poisons its whole estimator group (the planner
        // validates before sweeping, so nothing was half-computed); each
        // member sees the original exception.
        for (const std::size_t i : members)
          batch[i]->promise.set_exception(std::current_exception());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ServeServer

ServeServer::ServeServer(ServeState& state, const ServeOptions& options)
    : state_(state),
      options_(options),
      batcher_(state, options.flush_deadline_ms) {
  ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_socket_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw_socket_errno("bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    throw_socket_errno("listen");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(listen_fd_);
    throw_socket_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);
  if (!options_.port_file.empty())
    write_port_file(options_.port_file, port_, options_.run_nonce);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServeServer::~ServeServer() { stop(); }

void ServeServer::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] { return shutdown_; });
}

void ServeServer::stop() {
  if (stopping_.exchange(true)) {
    // Already stopped (or stopping on another thread): just make sure the
    // accept thread is gone before returning.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const int fd : client_fds_)
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& thread : client_threads_)
    if (thread.joinable()) thread.join();
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (int& fd : client_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
}

void ServeServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or irrecoverable
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const std::uint64_t client_id = next_client_id_.fetch_add(1);
    std::lock_guard<std::mutex> lock(clients_mutex_);
    const std::size_t slot = client_fds_.size();
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd, client_id, slot] {
      handle_client(fd, client_id);
      // Close under the clients lock and clear the slot so stop() neither
      // double-closes nor shuts down a recycled fd number.
      std::lock_guard<std::mutex> slot_lock(clients_mutex_);
      ::close(fd);
      client_fds_[slot] = -1;
    });
  }
}

void ServeServer::handle_client(int fd, std::uint64_t client_id) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("serve.clients.accepted").add(1);
  std::mutex send_mutex;
  FrameHeader header;
  std::vector<std::byte> payload;
  for (;;) {
    // false = clean EOF, torn frame or garbage header — either way the
    // client is done; the daemon shrugs and keeps serving everyone else.
    if (!read_frame(fd, header, payload, kMaxRequestBytes)) break;
    if (header.kind != kFrameServeRequest ||
        payload.size() < sizeof(ServeRequestHeader)) {
      registry.counter("serve.clients.protocol_errors").add(1);
      break;
    }
    ServeRequestHeader request;
    std::memcpy(&request, payload.data(), sizeof(request));
    try {
      serve_request(fd, send_mutex, header.tag, client_id, request, payload);
    } catch (const SocketError&) {
      // Peer vanished mid-response (EPIPE/ECONNRESET thanks to
      // MSG_NOSIGNAL) — drop the client, not the daemon.
      registry.counter("serve.clients.disconnects").add(1);
      break;
    }
  }
  clients_served_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Sends one response frame: header + `count` payload elements of
/// `elem_bytes` each, under the per-client send lock.
void send_response(int fd, std::mutex& send_mutex, std::int32_t tag,
                   QueryKind kind, std::uint32_t status, const void* data,
                   std::uint64_t count, std::size_t elem_bytes) {
  ServeResponseHeader header;
  header.status = status;
  header.kind = static_cast<std::uint32_t>(kind);
  header.count = count;
  std::vector<std::byte> frame(sizeof(header) + count * elem_bytes);
  std::memcpy(frame.data(), &header, sizeof(header));
  if (count > 0)
    std::memcpy(frame.data() + sizeof(header), data, count * elem_bytes);
  std::lock_guard<std::mutex> lock(send_mutex);
  write_frame(fd, kFrameServeResponse, tag, frame.data(), frame.size());
}

void send_error(int fd, std::mutex& send_mutex, std::int32_t tag,
                QueryKind kind, const std::string& message) {
  send_response(fd, send_mutex, tag, kind, kServeError, message.data(),
                message.size(), 1);
}

/// The uint32 items following the request header.
std::vector<std::uint32_t> request_items(const ServeRequestHeader& request,
                                         const std::vector<std::byte>& payload) {
  const std::size_t bytes = std::size_t(request.count) * sizeof(std::uint32_t);
  if (payload.size() < sizeof(ServeRequestHeader) + bytes)
    throw std::runtime_error("serve: request payload shorter than its count");
  std::vector<std::uint32_t> items(request.count);
  if (request.count > 0)
    std::memcpy(items.data(), payload.data() + sizeof(ServeRequestHeader),
                bytes);
  return items;
}

/// Descending by weight, ties broken by node ids so responses are
/// deterministic.
bool edge_heavier(const ServeEdge& x, const ServeEdge& y) {
  if (x.weight != y.weight) return x.weight > y.weight;
  if (x.u != y.u) return x.u < y.u;
  return x.v < y.v;
}

}  // namespace

void ServeServer::serve_request(int fd, std::mutex& send_mutex,
                                std::int32_t tag, std::uint64_t client_id,
                                const ServeRequestHeader& request,
                                const std::vector<std::byte>& payload) {
  auto& registry = obs::MetricsRegistry::global();
  const QueryKind kind = static_cast<QueryKind>(request.kind);
  const Stopwatch watch;
  try {
    switch (kind) {
      case QueryKind::Ping: {
        send_response(fd, send_mutex, tag, kind, kServeOk, nullptr, 0, 1);
        break;
      }
      case QueryKind::MiPairs: {
        const std::vector<std::uint32_t> items =
            request_items(request, payload);
        if (items.size() % 2 != 0)
          throw std::runtime_error(
              "serve: mi_pairs payload must be interleaved (a, b) ids");
        std::vector<GenePair> pairs(items.size() / 2);
        for (std::size_t i = 0; i < pairs.size(); ++i)
          pairs[i] = GenePair{items[2 * i], items[2 * i + 1]};
        EstimatorKind estimator = state_.config().estimator;
        if (request.estimator != kEstimatorDefault) {
          if (request.estimator >
              static_cast<std::uint32_t>(EstimatorKind::Phi))
            throw std::runtime_error(
                strprintf("serve: unknown estimator id %u", request.estimator));
          estimator = static_cast<EstimatorKind>(request.estimator);
        }
        const std::vector<double> values =
            batcher_.query(estimator, std::move(pairs));
        send_response(fd, send_mutex, tag, kind, kServeOk, values.data(),
                      values.size(), sizeof(double));
        break;
      }
      case QueryKind::Neighborhood: {
        const std::vector<std::uint32_t> items =
            request_items(request, payload);
        if (items.size() != 1)
          throw std::runtime_error(
              "serve: neighborhood takes exactly one gene id");
        const std::uint32_t gene = items[0];
        if (gene >= state_.network().n_nodes())
          throw std::runtime_error(strprintf(
              "serve: gene %u out of range (network has %zu nodes)", gene,
              state_.network().n_nodes()));
        std::vector<ServeEdge> edges;
        for (const auto& neighbor : state_.adjacency().neighbors(gene))
          edges.push_back(ServeEdge{gene, neighbor.node, neighbor.weight});
        std::sort(edges.begin(), edges.end(), edge_heavier);
        if (request.k > 0 && edges.size() > request.k)
          edges.resize(request.k);
        send_response(fd, send_mutex, tag, kind, kServeOk, edges.data(),
                      edges.size(), sizeof(ServeEdge));
        break;
      }
      case QueryKind::TopEdges: {
        std::vector<ServeEdge> edges;
        edges.reserve(state_.network().n_edges());
        for (const Edge& edge : state_.network().edges())
          edges.push_back(ServeEdge{edge.u, edge.v, edge.weight});
        std::sort(edges.begin(), edges.end(), edge_heavier);
        if (request.k > 0 && edges.size() > request.k)
          edges.resize(request.k);
        send_response(fd, send_mutex, tag, kind, kServeOk, edges.data(),
                      edges.size(), sizeof(ServeEdge));
        break;
      }
      case QueryKind::Subgraph: {
        const std::vector<std::uint32_t> items =
            request_items(request, payload);
        const std::unordered_set<std::uint32_t> wanted(items.begin(),
                                                       items.end());
        std::vector<ServeEdge> edges;
        for (const Edge& edge : state_.network().edges())
          if (wanted.count(edge.u) != 0 && wanted.count(edge.v) != 0)
            edges.push_back(ServeEdge{edge.u, edge.v, edge.weight});
        send_response(fd, send_mutex, tag, kind, kServeOk, edges.data(),
                      edges.size(), sizeof(ServeEdge));
        break;
      }
      case QueryKind::SweepJob: {
        // Progress events stream the live metrics-registry view of the
        // pass: tiles done plus the engine/serve counters as they move.
        const auto progress = [&](std::size_t done, std::size_t total) {
          const obs::MetricsSnapshot snapshot = registry.snapshot();
          obs::Json event = obs::Json::object();
          event["done"] = static_cast<double>(done);
          event["total"] = static_cast<double>(total);
          event["metrics"] = obs::metrics_to_json(snapshot);
          const std::string text = event.dump();
          std::lock_guard<std::mutex> lock(send_mutex);
          write_frame(fd, kFrameServeEvent, tag, text.data(), text.size());
        };
        const EngineStats stats = state_.run_sweep_job(progress);
        obs::Json summary = obs::Json::object();
        summary["pairs"] = static_cast<double>(stats.pairs_computed);
        summary["edges"] = static_cast<double>(stats.edges_emitted);
        summary["tiles"] = static_cast<double>(stats.tiles);
        summary["tiles_resumed"] = static_cast<double>(stats.tiles_resumed);
        summary["seconds"] = stats.seconds;
        summary["kernel"] = stats.kernel;
        summary["estimator"] = stats.estimator;
        const std::string text = summary.dump();
        send_response(fd, send_mutex, tag, kind, kServeOk, text.data(),
                      text.size(), 1);
        break;
      }
      case QueryKind::Metrics: {
        const std::string text =
            obs::metrics_to_json(registry.snapshot()).dump();
        send_response(fd, send_mutex, tag, kind, kServeOk, text.data(),
                      text.size(), 1);
        break;
      }
      case QueryKind::Shutdown: {
        send_response(fd, send_mutex, tag, kind, kServeOk, nullptr, 0, 1);
        {
          std::lock_guard<std::mutex> lock(shutdown_mutex_);
          shutdown_ = true;
        }
        shutdown_cv_.notify_all();
        break;
      }
      default:
        throw std::runtime_error(
            strprintf("serve: unknown query kind %u", request.kind));
    }
  } catch (const SocketError&) {
    throw;  // handled by handle_client: the peer is gone
  } catch (const std::exception& error) {
    send_error(fd, send_mutex, tag, kind, error.what());
  }
  // Per-client accounting: who asked, what, and how long it took. The
  // histograms feed the p50/p95/p99 the bench and the load tests report.
  const double seconds = watch.seconds();
  registry.counter("serve.queries").add(1);
  registry.counter(strprintf("serve.queries.%s", query_kind_name(kind)))
      .add(1);
  registry.counter(strprintf("serve.client.%llu.queries",
                             static_cast<unsigned long long>(client_id)))
      .add(1);
  registry.histogram("serve.query.seconds").record(seconds);
  registry.histogram(strprintf("serve.client.%llu.seconds",
                               static_cast<unsigned long long>(client_id)))
      .record(seconds);
}

}  // namespace tinge::cluster
