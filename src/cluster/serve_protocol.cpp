#include "cluster/serve_protocol.h"

namespace tinge::cluster {

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::Ping: return "ping";
    case QueryKind::MiPairs: return "mi_pairs";
    case QueryKind::Neighborhood: return "neighborhood";
    case QueryKind::TopEdges: return "top_edges";
    case QueryKind::Subgraph: return "subgraph";
    case QueryKind::SweepJob: return "sweep_job";
    case QueryKind::Metrics: return "metrics";
    case QueryKind::Shutdown: return "shutdown";
  }
  return "?";
}

}  // namespace tinge::cluster
