#include "cluster/faulty_transport.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/str.h"

namespace tinge::cluster {

namespace {

/// splitmix64: tiny, stateless, and plenty for jitter — the same (seed, op)
/// pair always yields the same delay.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

long long parse_count(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty())
    throw std::invalid_argument(
        strprintf("fault plan: %s wants an integer, got '%s'", key.c_str(),
                  value.c_str()));
  return parsed;
}

double parse_real(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty())
    throw std::invalid_argument(
        strprintf("fault plan: %s wants a number, got '%s'", key.c_str(),
                  value.c_str()));
  return parsed;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument(
          strprintf("fault plan: expected key=value, got '%s'", item.c_str()));
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "rank") {
      plan.rank = static_cast<int>(parse_count(key, value));
    } else if (key == "delay-ms") {
      plan.delay_ms = parse_real(key, value);
    } else if (key == "jitter-ms") {
      plan.jitter_ms = parse_real(key, value);
    } else if (key == "tile-delay-ms") {
      plan.tile_delay_ms = parse_real(key, value);
    } else if (key == "drop-after") {
      plan.drop_after = parse_count(key, value);
    } else if (key == "kill-after") {
      plan.kill_after = parse_count(key, value);
    } else if (key == "kill-at") {
      plan.kill_at_fraction = parse_real(key, value);
      if (plan.kill_at_fraction < 0.0 || plan.kill_at_fraction > 1.0)
        throw std::invalid_argument(
            strprintf("fault plan: kill-at wants a fraction in [0, 1], got "
                      "'%s'",
                      value.c_str()));
    } else if (key == "mode") {
      if (value == "throw")
        plan.kill_mode = KillMode::Throw;
      else if (value == "exit")
        plan.kill_mode = KillMode::Exit;
      else
        throw std::invalid_argument(strprintf(
            "fault plan: mode wants throw|exit, got '%s'", value.c_str()));
    } else if (key == "exit-code") {
      plan.exit_code = static_cast<int>(parse_count(key, value));
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_count(key, value));
    } else {
      throw std::invalid_argument(
          strprintf("fault plan: unknown key '%s' (expected rank, delay-ms, "
                    "jitter-ms, tile-delay-ms, drop-after, kill-after, "
                    "kill-at, mode, exit-code, seed)",
                    key.c_str()));
    }
  }
  return plan;
}

void resolve_kill_fraction(FaultPlan& plan, int cluster_size) {
  if (plan.kill_at_fraction < 0.0 || plan.kill_after >= 0) return;
  // Expected per-rank data ops of the sharded ring pipeline: ~2 broadcast
  // recvs (weight table, threshold), 2 ops per ring step over P-1 steps,
  // and ~2 gather ops at the end. The point is landing mid-sweep, not
  // op-exact placement.
  const long long expected = 2 + 2ll * (cluster_size - 1) + 2;
  plan.kill_after = static_cast<long long>(plan.kill_at_fraction *
                                           static_cast<double>(expected));
  if (plan.kill_after < 1) plan.kill_after = 1;
}

FaultyTransport::FaultyTransport(Transport& inner, const FaultPlan& plan)
    : inner_(&inner),
      plan_(plan),
      armed_(plan.rank < 0 || plan.rank == inner.rank()) {}

void FaultyTransport::before_op() {
  ++ops_;
  if (!armed_) return;
  if (plan_.delay_ms > 0.0 || plan_.jitter_ms > 0.0) {
    double ms = plan_.delay_ms;
    if (plan_.jitter_ms > 0.0) {
      const std::uint64_t draw =
          mix64(plan_.seed ^ static_cast<std::uint64_t>(ops_));
      ms += plan_.jitter_ms *
            (static_cast<double>(draw >> 11) / 9007199254740992.0);
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
  if (plan_.kill_after >= 0 && ops_ >= plan_.kill_after) {
    if (plan_.kill_mode == KillMode::Exit) {
      // Simulated crash: no unwinding, no atexit, sockets closed by the
      // kernel — exactly what survivors of a real worker death observe.
      ::_exit(plan_.exit_code);
    }
    throw InjectedFault(
        strprintf("injected fault: rank %d killed at data op %lld",
                  inner_->rank(), ops_),
        inner_->rank());
  }
}

void FaultyTransport::send(int dest, const void* data, std::size_t bytes,
                           int tag) {
  before_op();
  ++sends_;
  if (armed_ && plan_.drop_after >= 0 && sends_ > plan_.drop_after) {
    ++dropped_sends_;
    return;
  }
  inner_->send(dest, data, bytes, tag);
}

std::vector<std::byte> FaultyTransport::recv(int src, int tag) {
  before_op();
  return inner_->recv(src, tag);
}

std::vector<std::byte> FaultyTransport::recv(int src, int tag,
                                             double timeout_seconds) {
  before_op();
  return inner_->recv(src, tag, timeout_seconds);
}

std::optional<std::vector<std::byte>> FaultyTransport::try_recv(int src,
                                                                int tag) {
  // Deliberately NOT a data op: the lease master polls try_recv an
  // unbounded, timing-dependent number of times, so counting polls would
  // make op-counted kill plans fire at a different pipeline point on every
  // run — the opposite of what a deterministic fault schedule is for.
  return inner_->try_recv(src, tag);
}

void FaultyTransport::barrier() {
  // Barriers are not data ops (their count varies between pipeline
  // variants), but a kill-armed plan still fires here so a faulted rank
  // cannot slip through a barrier-only phase alive.
  if (armed_ && plan_.kill_after >= 0 && ops_ >= plan_.kill_after) {
    if (plan_.kill_mode == KillMode::Exit) ::_exit(plan_.exit_code);
    throw InjectedFault(
        strprintf("injected fault: rank %d killed at barrier after data op "
                  "%lld",
                  inner_->rank(), ops_),
        inner_->rank());
  }
  inner_->barrier();
}

double straggle_delay_ms(const Transport& transport) {
  const auto* faulty = dynamic_cast<const FaultyTransport*>(&transport);
  return faulty != nullptr ? faulty->tile_delay_ms() : 0.0;
}

}  // namespace tinge::cluster
