#include "cluster/serve_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

#include "cluster/framing.h"
#include "cluster/tcp_transport.h"
#include "obs/json.h"
#include "util/str.h"

namespace tinge::cluster {

ServeClient::ServeClient(const std::string& host, int port) {
  ignore_sigpipe();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(strprintf("serve client: socket failed: %s",
                                       std::strerror(errno)));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error(
        strprintf("serve client: bad host address '%s'", host.c_str()));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    throw std::runtime_error(
        strprintf("serve client: connect to %s:%d failed: %s", host.c_str(),
                  port, std::strerror(saved)));
  }
}

ServeClient ServeClient::from_port_file(const std::string& path,
                                        std::uint64_t expected_nonce) {
  const int port = read_port_file(path, expected_nonce);
  if (port <= 0)
    throw std::runtime_error(strprintf(
        "serve client: no usable port file at %s", path.c_str()));
  return ServeClient("127.0.0.1", port);
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), next_tag_(other.next_tag_) {
  other.fd_ = -1;
}

ServeClient::Reply ServeClient::roundtrip(
    QueryKind kind, std::uint32_t estimator, std::uint32_t k,
    std::span<const std::uint32_t> items,
    const std::function<void(const std::string&)>& on_event) {
  const std::int32_t tag = next_tag_++;
  ServeRequestHeader request;
  request.kind = static_cast<std::uint32_t>(kind);
  request.estimator = estimator;
  request.k = k;
  request.count = static_cast<std::uint32_t>(items.size());
  std::vector<std::byte> frame(sizeof(request) +
                               items.size() * sizeof(std::uint32_t));
  std::memcpy(frame.data(), &request, sizeof(request));
  if (!items.empty())
    std::memcpy(frame.data() + sizeof(request), items.data(),
                items.size() * sizeof(std::uint32_t));
  write_frame(fd_, kFrameServeRequest, tag, frame.data(), frame.size());

  FrameHeader header;
  std::vector<std::byte> payload;
  for (;;) {
    if (!read_frame(fd_, header, payload))
      throw std::runtime_error(
          "serve client: connection closed while awaiting response");
    if (header.tag != tag) continue;  // stale event from a prior request
    if (header.kind == kFrameServeEvent) {
      if (on_event)
        on_event(std::string(reinterpret_cast<const char*>(payload.data()),
                             payload.size()));
      continue;
    }
    if (header.kind != kFrameServeResponse ||
        payload.size() < sizeof(ServeResponseHeader))
      throw std::runtime_error("serve client: malformed response frame");
    Reply reply;
    std::memcpy(&reply.header, payload.data(), sizeof(reply.header));
    reply.body.assign(payload.begin() + sizeof(reply.header), payload.end());
    if (reply.header.status != kServeOk)
      throw std::runtime_error(strprintf(
          "serve error: %s",
          std::string(reinterpret_cast<const char*>(reply.body.data()),
                      reply.body.size())
              .c_str()));
    return reply;
  }
}

void ServeClient::ping() { roundtrip(QueryKind::Ping, kEstimatorDefault, 0, {}); }

std::vector<double> ServeClient::mi_pairs(std::span<const GenePair> pairs) {
  return mi_pairs(pairs, static_cast<EstimatorKind>(kEstimatorDefault));
}

std::vector<double> ServeClient::mi_pairs(std::span<const GenePair> pairs,
                                          EstimatorKind estimator) {
  std::vector<std::uint32_t> items;
  items.reserve(pairs.size() * 2);
  for (const GenePair& pair : pairs) {
    items.push_back(pair.a);
    items.push_back(pair.b);
  }
  const Reply reply = roundtrip(QueryKind::MiPairs,
                                static_cast<std::uint32_t>(estimator), 0,
                                items);
  std::vector<double> values(reply.header.count);
  if (reply.body.size() < values.size() * sizeof(double))
    throw std::runtime_error("serve client: short mi_pairs response");
  std::memcpy(values.data(), reply.body.data(),
              values.size() * sizeof(double));
  return values;
}

std::vector<ServeEdge> ServeClient::edge_query(
    QueryKind kind, std::uint32_t k, std::span<const std::uint32_t> items) {
  const Reply reply = roundtrip(kind, kEstimatorDefault, k, items);
  std::vector<ServeEdge> edges(reply.header.count);
  if (reply.body.size() < edges.size() * sizeof(ServeEdge))
    throw std::runtime_error("serve client: short edge response");
  if (!edges.empty())
    std::memcpy(edges.data(), reply.body.data(),
                edges.size() * sizeof(ServeEdge));
  return edges;
}

std::vector<ServeEdge> ServeClient::neighborhood(std::uint32_t gene,
                                                 std::uint32_t k) {
  const std::uint32_t items[1] = {gene};
  return edge_query(QueryKind::Neighborhood, k, items);
}

std::vector<ServeEdge> ServeClient::top_edges(std::uint32_t k) {
  return edge_query(QueryKind::TopEdges, k, {});
}

std::vector<ServeEdge> ServeClient::subgraph(
    std::span<const std::uint32_t> genes) {
  return edge_query(QueryKind::Subgraph, 0, genes);
}

std::string ServeClient::metrics_json() {
  const Reply reply = roundtrip(QueryKind::Metrics, kEstimatorDefault, 0, {});
  return std::string(reinterpret_cast<const char*>(reply.body.data()),
                     reply.body.size());
}

SweepJobResult ServeClient::sweep_job(
    const std::function<void(const std::string&)>& on_event) {
  const Reply reply =
      roundtrip(QueryKind::SweepJob, kEstimatorDefault, 0, {}, on_event);
  const obs::Json summary = obs::Json::parse(
      std::string_view(reinterpret_cast<const char*>(reply.body.data()),
                       reply.body.size()));
  SweepJobResult result;
  result.pairs = static_cast<std::size_t>(summary.at("pairs").as_int());
  result.edges = static_cast<std::size_t>(summary.at("edges").as_int());
  result.tiles = static_cast<std::size_t>(summary.at("tiles").as_int());
  result.tiles_resumed =
      static_cast<std::size_t>(summary.at("tiles_resumed").as_int());
  result.seconds = summary.at("seconds").as_double();
  result.kernel = summary.at("kernel").as_string();
  result.estimator = summary.at("estimator").as_string();
  return result;
}

void ServeClient::shutdown_server() {
  roundtrip(QueryKind::Shutdown, kEstimatorDefault, 0, {});
}

}  // namespace tinge::cluster
