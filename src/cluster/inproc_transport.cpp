#include "cluster/inproc_transport.h"

#include <cstring>
#include <exception>
#include <thread>

#include "util/timer.h"

namespace tinge::cluster {

void InProcessTransport::send(int dest, const void* data, std::size_t bytes,
                              int tag) {
  TINGE_EXPECTS(dest >= 0 && dest < size());
  InProcessCluster::Message message;
  message.src = rank_;
  message.tag = tag;
  message.payload.resize(bytes);
  if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);
  hub_->deliver(dest, std::move(message));
  PeerTraffic& peer = peer_traffic_[static_cast<std::size_t>(dest)];
  peer.bytes_sent += bytes;
  ++peer.messages_sent;
}

std::vector<std::byte> InProcessTransport::recv(int src, int tag) {
  TINGE_EXPECTS(src >= 0 && src < size());
  std::vector<std::byte> payload = hub_->wait_for(rank_, src, tag);
  PeerTraffic& peer = peer_traffic_[static_cast<std::size_t>(src)];
  peer.bytes_received += payload.size();
  ++peer.messages_received;
  return payload;
}

InProcessCluster::InProcessCluster(int size) : size_(size) {
  TINGE_EXPECTS(size >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void InProcessCluster::deliver(int dest, Message message) {
  bytes_transferred_.fetch_add(message.payload.size(),
                               std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

std::vector<std::byte> InProcessCluster::wait_for(int rank, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    // Match by (src, tag), FIFO within a match: interleaved tags from the
    // same source are skipped over and stay queued for their own recv.
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        std::vector<std::byte> payload = std::move(it->payload);
        box.messages.erase(it);
        return payload;
      }
    }
    box.cv.wait(lock);
  }
}

void InProcessCluster::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != my_generation; });
  }
}

void InProcessCluster::run(const std::function<void(Comm&)>& body) {
  std::vector<std::unique_ptr<InProcessTransport>> endpoints;
  endpoints.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    endpoints.push_back(std::make_unique<InProcessTransport>(*this, r));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // Byte/message accounting is kept on the cluster's own atomics in the hot
  // path; this SPMD execution publishes its delta to the registry on exit.
  const std::uint64_t bytes_before = bytes_transferred();
  const std::uint64_t messages_before = messages_sent();
  const Stopwatch watch;
  for (int r = 0; r < size_; ++r) {
    InProcessTransport& endpoint = *endpoints[static_cast<std::size_t>(r)];
    threads.emplace_back([&endpoint, &body, &error_mutex, &first_error] {
      Comm comm(endpoint);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  last_rank_traffic_.assign(static_cast<std::size_t>(size_), PeerTraffic{});
  for (int r = 0; r < size_; ++r) {
    for (const PeerTraffic& peer :
         endpoints[static_cast<std::size_t>(r)]->peer_traffic())
      last_rank_traffic_[static_cast<std::size_t>(r)] += peer;
  }

  publish_cluster_run_metrics(TransportKind::InProcess, size_,
                              bytes_transferred() - bytes_before,
                              messages_sent() - messages_before,
                              watch.seconds());
  // Drain leftover messages so a failed run cannot poison the next one.
  if (first_error) {
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box->mutex);
      box->messages.clear();
    }
    std::rethrow_exception(first_error);
  }
}

}  // namespace tinge::cluster
